"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.data import (
    feature_vectors,
    galaxy_mock,
    gaussian_clusters,
    join_values,
    liquid_configuration,
    sdh_bucket_probabilities,
    uniform_points,
)


def test_uniform_shape_and_range():
    pts = uniform_points(500, dims=3, box=7.0, seed=1)
    assert pts.shape == (500, 3)
    assert pts.min() >= 0 and pts.max() <= 7.0


def test_uniform_deterministic():
    assert np.array_equal(
        uniform_points(50, seed=9), uniform_points(50, seed=9)
    )
    assert not np.array_equal(
        uniform_points(50, seed=9), uniform_points(50, seed=10)
    )


def test_uniform_validation():
    with pytest.raises(ValueError):
        uniform_points(0)
    with pytest.raises(ValueError):
        uniform_points(10, dims=0)


def test_gaussian_clusters_are_clustered():
    pts = gaussian_clusters(600, dims=3, n_clusters=3, spread=0.2, seed=2)
    uni = uniform_points(600, dims=3, seed=2)
    # clustered data has far more close pairs
    from repro.cpu_ref import brute

    assert brute.pcf_count(pts, 0.5) > 5 * brute.pcf_count(uni, 0.5)


def test_liquid_configuration_in_box():
    pts, box = liquid_configuration(343, density=0.8, seed=3)
    assert pts.shape == (343, 3)
    assert pts.min() >= 0 and pts.max() <= box
    # density honoured: N / box^3 ~ requested
    assert 343 / box**3 == pytest.approx(0.8, rel=0.05)


def test_liquid_has_minimum_separation():
    pts, box = liquid_configuration(216, density=0.7, jitter=0.02, seed=4)
    from scipy.spatial.distance import pdist

    spacing = (1 / 0.7) ** (1 / 3)
    assert pdist(pts).min() > 0.5 * spacing


def test_galaxy_mock_in_box():
    pts = galaxy_mock(400, box=60.0, seed=5)
    assert pts.shape == (400, 3)
    assert pts.min() >= 0 and pts.max() <= 60.0


def test_feature_vectors_nonnegative():
    v = feature_vectors(100, dims=8, seed=6)
    assert (v >= 0).all()
    sparse = feature_vectors(100, dims=8, sparsity=0.9, seed=6)
    assert (sparse == 0).mean() > 0.7


def test_join_values_duplicates():
    vals = join_values(1000, duplicates=0.3, seed=7)
    _, counts = np.unique(vals, return_counts=True)
    assert (counts > 1).sum() > 50


def test_sdh_bucket_probabilities_normalized():
    p = sdh_bucket_probabilities(200, box=10.0)
    assert p.shape == (200,)
    assert p.sum() == pytest.approx(1.0)
    assert (p > 0).all()
    # distance pdf of a uniform box peaks mid-range, vanishes at extremes
    assert p[:3].sum() < 0.01
    assert np.argmax(p) > 30


def test_sdh_bucket_probabilities_deterministic():
    assert np.array_equal(
        sdh_bucket_probabilities(64), sdh_bucket_probabilities(64)
    )
