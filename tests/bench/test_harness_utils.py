"""Unit tests for the bench harness utilities."""

import pytest

from repro.bench import FigureData, PAPER_SIZES, Series, crossover, geometric_sizes
from repro.bench.harness import Series


def make_fig():
    fig = FigureData(name="t", x_label="n", x_values=[1.0, 2.0, 3.0])
    fig.add("a", [2.0, 4.0, 6.0])
    fig.add("b", [1.0, 2.0, 3.0])
    return fig


def test_add_checks_length():
    fig = FigureData(name="t", x_label="n", x_values=[1.0, 2.0])
    with pytest.raises(ValueError, match="values"):
        fig.add("a", [1.0])


def test_speedup_over():
    fig = make_fig()
    sp = fig.speedup_over("b")
    assert sp["a"] == [0.5, 0.5, 0.5]
    assert sp["b"] == [1.0, 1.0, 1.0]


def test_series_ratio_checks_length():
    with pytest.raises(ValueError, match="lengths"):
        Series("a", [1.0]).ratio_to(Series("b", [1.0, 2.0]))


def test_render_contains_all_series():
    text = make_fig().render()
    assert "a (s)" in text and "b (s)" in text
    assert text.count("\n") >= 4


def test_geometric_sizes():
    sizes = geometric_sizes(100_000, 1_600_000, 5)
    assert len(sizes) == 5
    assert all(s % 1024 == 0 for s in sizes)
    assert sizes == sorted(sizes)


def test_paper_sizes_span_plot_range():
    assert PAPER_SIZES[0] >= 100_000
    assert PAPER_SIZES[-1] <= 1_700_000


def test_crossover():
    xs = [1, 2, 3, 4]
    assert crossover(xs, [5, 4, 2, 1], [3, 3, 3, 3]) == 3
    assert crossover(xs, [5, 5, 5, 5], [3, 3, 3, 3]) is None
