"""Shape tests for the reproduced profiler tables (Tables II-IV)."""

import pytest

from repro.bench import (
    table2_pcf_utilization,
    table3_sdh_bandwidth,
    table4_sdh_utilization,
)


@pytest.fixture(scope="module")
def table2():
    reports, text = table2_pcf_utilization(n=1_048_576)
    return {r.kernel: r for r in reports}, text


@pytest.fixture(scope="module")
def table3():
    reports, text = table3_sdh_bandwidth(n=512_000)
    return {r.kernel: r for r in reports}, text


class TestTable2:
    def test_naive_is_memory_starved(self, table2):
        reps, _ = table2
        # paper: Naive at 15% arithmetic, memory-dominated
        assert reps["Naive"].utilization["arith"] < 0.2
        assert reps["Naive"].dominant == "global"

    def test_cached_kernels_compute_bound(self, table2):
        reps, _ = table2
        # paper: SHM-SHM / Reg-SHM over 50% arithmetic ("compute bound")
        assert reps["SHM-SHM"].utilization["arith"] > 0.4
        assert reps["Reg-SHM"].utilization["arith"] > 0.45
        assert reps["Reg-SHM"].dominant == "compute"

    def test_reg_shm_around_35pct_shared(self, table2):
        reps, _ = table2
        assert 0.2 < reps["Reg-SHM"].utilization["shared"] < 0.45

    def test_reg_roc_high_data_cache(self, table2):
        reps, _ = table2
        # paper: 65% data-cache utilization, lowest arithmetic of the
        # cached kernels
        assert reps["Reg-ROC"].utilization["roc"] > 0.6
        assert (
            reps["Reg-ROC"].utilization["arith"]
            < reps["Reg-SHM"].utilization["arith"]
        )

    def test_render_contains_rows(self, table2):
        _, text = table2
        for k in ("Naive", "SHM-SHM", "Reg-SHM", "Reg-ROC"):
            assert k in text


class TestTable3:
    def test_naive_uses_no_shared_memory(self, table3):
        reps, _ = table3
        assert reps["Naive"].achieved_bandwidth.get("shared", 0.0) == 0.0

    def test_privatized_kernels_drive_shared_bandwidth(self, table3):
        reps, _ = table3
        shm_out = reps["Reg-SHM-Out"].achieved_bandwidth["shared"]
        naive_out = reps["Naive-Out"].achieved_bandwidth["shared"]
        assert shm_out > 1e12  # TB/s class, as in the paper's 2.86 TB/s
        assert shm_out > 3 * naive_out

    def test_roc_kernel_has_data_cache_traffic(self, table3):
        reps, _ = table3
        assert reps["Reg-ROC-Out"].achieved_bandwidth["roc"] > 1e11
        assert reps["Reg-SHM-Out"].achieved_bandwidth.get("roc", 0.0) == 0.0

    def test_ordering_matches_paper_rows(self, table3):
        """Paper Table III orderings: Reg-SHM-Out has the highest shared
        bandwidth; Naive-Out the highest global load."""
        reps, _ = table3
        assert (
            reps["Reg-SHM-Out"].achieved_bandwidth["shared"]
            >= reps["Reg-ROC-Out"].achieved_bandwidth["shared"]
        )
        assert (
            reps["Naive-Out"].achieved_bandwidth["global"]
            > reps["Reg-SHM-Out"].achieved_bandwidth["global"]
        )


class TestTable4:
    @pytest.fixture(scope="class")
    def table4(self):
        reports, text = table4_sdh_utilization(n=512_000)
        return {r.kernel: r for r in reports}, text

    def test_naive_negligible_arithmetic(self, table4):
        reps, _ = table4
        # paper: 5% arithmetic, memory maxed
        assert reps["Naive"].utilization["arith"] < 0.1

    def test_out_kernels_around_25pct_arith(self, table4):
        reps, _ = table4
        for k in ("Reg-SHM-Out", "Reg-ROC-Out"):
            assert 0.15 < reps[k].utilization["arith"] < 0.35

    def test_reg_shm_out_shared_bound(self, table4):
        reps, _ = table4
        # paper: 95.33% shared-memory utilization
        assert reps["Reg-SHM-Out"].utilization["shared"] > 0.75
        assert reps["Reg-SHM-Out"].dominant == "shared"

    def test_reg_roc_out_splits_roc_and_shared(self, table4):
        reps, _ = table4
        u = reps["Reg-ROC-Out"].utilization
        assert u["roc"] > 0.25 and u["shared"] > 0.4
