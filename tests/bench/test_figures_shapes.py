"""Shape tests for the reproduced figures.

These encode the paper's qualitative claims as assertions: who wins, by
roughly what factor, and where the knees fall.  They are the repository's
statement of reproduction success (EXPERIMENTS.md records the numbers).
"""

import numpy as np
import pytest

from repro.bench import (
    fig2_pcf_kernels,
    fig4_sdh_kernels,
    fig5_output_size,
    fig7_load_balance,
    fig9_shuffle,
)

SIZES = (204_800, 409_600, 819_200, 1_638_400)


@pytest.fixture(scope="module")
def fig2():
    return fig2_pcf_kernels(sizes=SIZES)


@pytest.fixture(scope="module")
def fig4():
    return fig4_sdh_kernels(sizes=SIZES)


class TestFig2:
    def test_quadratic_growth(self, fig2):
        t = fig2.series["Register-SHM"].values
        # 8x the points -> ~64x the time
        assert t[-1] / t[0] == pytest.approx(64.0, rel=0.15)

    def test_register_shm_wins(self, fig2):
        for label, s in fig2.series.items():
            if label != "Register-SHM":
                assert all(
                    a <= b for a, b in zip(fig2.series["Register-SHM"].values, s.values)
                ), label

    def test_speedups_match_paper(self, fig2):
        """Paper: Reg-SHM 5.5x avg (max 6), SHM-SHM 5.3x, Reg-ROC 4.7x."""
        sp = fig2.speedup_over("Naive")
        assert np.mean(sp["Register-SHM"]) == pytest.approx(5.5, rel=0.1)
        assert np.mean(sp["SHM-SHM"]) == pytest.approx(5.3, rel=0.1)
        assert np.mean(sp["Register-ROC"]) == pytest.approx(4.7, rel=0.1)

    def test_ordering(self, fig2):
        sp = fig2.speedup_over("Naive")
        assert np.mean(sp["Register-SHM"]) > np.mean(sp["SHM-SHM"]) > np.mean(
            sp["Register-ROC"]
        ) > 1.0


class TestFig4:
    def test_all_gpu_kernels_beat_cpu(self, fig4):
        cpu = fig4.series["CPU"].values
        for label, s in fig4.series.items():
            if label != "CPU":
                assert all(v < c for v, c in zip(s.values, cpu)), label

    def test_best_kernel_about_50x_cpu(self, fig4):
        sp = fig4.speedup_over("Reg-ROC-Out")  # ratios of others to best
        cpu_speedup = [
            c / v
            for c, v in zip(
                fig4.series["CPU"].values, fig4.series["Reg-ROC-Out"].values
            )
        ]
        assert np.mean(cpu_speedup) == pytest.approx(50.0, rel=0.15)

    def test_least_optimized_about_3_5x_cpu(self, fig4):
        ratio = [
            c / v
            for c, v in zip(
                fig4.series["CPU"].values, fig4.series["Register-SHM"].values
            )
        ]
        assert np.mean(ratio) == pytest.approx(3.5, rel=0.2)

    def test_privatization_about_order_of_magnitude(self, fig4):
        """Section IV-D: kernels without output privatization run ~an
        order of magnitude slower; Reg-ROC-Out ~11x Register-SHM."""
        ratio = [
            a / b
            for a, b in zip(
                fig4.series["Register-SHM"].values,
                fig4.series["Reg-ROC-Out"].values,
            )
        ]
        assert 8.0 < np.mean(ratio) < 16.0

    def test_global_atomic_kernels_run_close_together(self, fig4):
        """Paper: the three kernels without privatization run at almost
        the same speed (the output path dominates)."""
        a = np.array(fig4.series["Register-SHM"].values)
        b = np.array(fig4.series["Register-ROC"].values)
        assert np.allclose(a, b, rtol=0.1)

    def test_roc_beats_shm_for_type2(self, fig4):
        assert all(
            r < s
            for r, s in zip(
                fig4.series["Reg-ROC-Out"].values,
                fig4.series["Reg-SHM-Out"].values,
            )
        )


class TestFig5:
    @pytest.fixture(scope="class")
    def fig5(self):
        return fig5_output_size(n=512_000)

    def test_occupancy_steps_down(self, fig5):
        occ = fig5.series["occupancy %"].values
        assert occ[0] == 100.0
        assert occ[-1] == 50.0
        assert all(a >= b for a, b in zip(occ, occ[1:]))

    def test_runtime_steps_up_with_occupancy_drops(self, fig5):
        x = fig5.x_values
        t = dict(zip(x, fig5.series["time"].values))
        assert t[5000] > 1.4 * t[2500]

    def test_small_bucket_contention_penalty(self, fig5):
        x = fig5.x_values
        t = dict(zip(x, fig5.series["time"].values))
        assert t[16] > 1.8 * t[1000]

    def test_u_shape(self, fig5):
        t = fig5.series["time"].values
        best = int(np.argmin(t))
        assert 0 < best < len(t) - 1


class TestFig7:
    @pytest.fixture(scope="class")
    def fig7(self):
        return fig7_load_balance(sizes=(614_400, 1_228_800, 3_072_000))

    def test_gain_12_to_13_percent(self, fig7):
        """Paper: 'a 12%-13% improvement can be seen'."""
        plain = fig7.series["Register-SHM"].values
        lb = fig7.series["Register-SHM-LB"].values
        for p, l in zip(plain, lb):
            assert 1.10 <= p / l <= 1.14

    def test_linear_in_n(self, fig7):
        # the intra-block pass is O(N B): 5x the points, 5x the time
        t = fig7.series["Register-SHM"].values
        assert t[-1] / t[0] == pytest.approx(5.0, rel=0.1)


class TestFig9:
    @pytest.fixture(scope="class")
    def fig9(self):
        return fig9_shuffle(sizes=SIZES[:3])

    def test_shuffle_close_to_cache_tiling(self, fig9):
        """Paper: 'almost the same performance as tiling with read-only
        cache and tiling with shared memory'."""
        sh = np.array(fig9.series["Shuffle"].values)
        shm = np.array(fig9.series["Reg-SHM-Out"].values)
        roc = np.array(fig9.series["Reg-ROC-Out"].values)
        assert np.allclose(sh, shm, rtol=0.15)
        assert np.allclose(sh, roc, rtol=0.25)

    def test_all_an_order_over_cpu(self, fig9):
        cpu = np.array(fig9.series["CPU"].values)
        for label in ("Shuffle", "Reg-SHM-Out", "Reg-ROC-Out"):
            assert (cpu / np.array(fig9.series[label].values) > 10).all()
