"""The paper's conclusions must be architecture-robust: rerun the key
shapes on the other device presets (Fermi / Kepler / GM204)."""

import math

import numpy as np
import pytest

from repro import apps
from repro.core import make_kernel, plan_kernel
from repro.gpusim import FERMI_M2090, GTX_980, TESLA_K40, TITAN_X

MAXD = 10.0 * math.sqrt(3.0)
DEVICES = [TITAN_X, GTX_980, TESLA_K40, FERMI_M2090]


@pytest.mark.parametrize("spec", DEVICES, ids=lambda s: s.name.split(" (")[0])
class TestShapesAcrossDevices:
    def test_register_shm_beats_naive_everywhere(self, spec):
        problem = apps.pcf.make_problem(1.0)
        naive = make_kernel(problem, "naive", "register", 256)
        reg = make_kernel(problem, "register-shm", "register", 256)
        n = 500_000
        assert reg.simulate(n, spec=spec).seconds < naive.simulate(n, spec=spec).seconds / 3

    def test_privatization_wins_everywhere(self, spec):
        problem = apps.sdh.make_problem(2500, MAXD, box=10.0)
        direct = make_kernel(problem, "register-shm", "global-atomic", 256)
        private = make_kernel(problem, "register-shm", "privatized-shm", 256)
        n = 500_000
        assert (
            private.simulate(n, spec=spec).seconds
            < direct.simulate(n, spec=spec).seconds / 4
        )

    def test_planner_never_picks_naive(self, spec):
        problem = apps.sdh.make_problem(1000, MAXD, box=10.0)
        plan = plan_kernel(problem, 500_000, spec=spec, block_sizes=(128, 256))
        assert plan.chosen.kernel.input.name != "Naive"


def test_fermi_planner_excludes_shuffle():
    problem = apps.pcf.make_problem(1.0)
    plan = plan_kernel(problem, 200_000, spec=FERMI_M2090)
    assert all("Shuffle" != c.kernel.input.name for c in plan.ranking)


def test_newer_devices_are_faster():
    """Sanity on the presets: Titan X > GTX 980 > K40 > Fermi raw speed."""
    problem = apps.sdh.make_problem(2500, MAXD, box=10.0)
    times = []
    for spec in DEVICES:
        kernel = make_kernel(problem, "register-shm", "privatized-shm", 256)
        times.append(kernel.simulate(500_000, spec=spec).seconds)
    assert times == sorted(times)


def test_fig5_steps_shift_with_smaller_shared_memory():
    """On a 48KB/SM device the occupancy staircase starts at smaller
    histograms than on the paper's 96KB Titan X."""
    problem_small = apps.sdh.make_problem(2000, MAXD)
    kernel = make_kernel(problem_small, "register-roc", "privatized-shm", 256)
    occ_titan = kernel.occupancy(TITAN_X).occupancy
    occ_kepler = kernel.occupancy(TESLA_K40).occupancy
    assert occ_kepler < occ_titan
