"""Tests for the real threaded host implementations against the oracles."""

import math

import numpy as np
import pytest

from repro.cpu_ref import brute, vectorized
from repro.data import uniform_points

MAXD = 10.0 * math.sqrt(3.0)


@pytest.fixture(scope="module")
def pts():
    return uniform_points(700, dims=3, box=10.0, seed=13)


@pytest.mark.parametrize("n_threads", [1, 2, 4])
def test_sdh_threaded(pts, n_threads):
    got = vectorized.sdh_histogram(pts, 50, MAXD / 50, n_threads=n_threads, chunk=128)
    assert np.array_equal(got, brute.sdh_histogram(pts, 50, MAXD / 50))


def test_sdh_chunk_invariance(pts):
    a = vectorized.sdh_histogram(pts, 32, MAXD / 32, chunk=64)
    b = vectorized.sdh_histogram(pts, 32, MAXD / 32, chunk=701)
    assert np.array_equal(a, b)


@pytest.mark.parametrize("n_threads", [1, 3])
def test_pcf_threaded(pts, n_threads):
    assert vectorized.pcf_count(pts, 2.0, n_threads=n_threads) == brute.pcf_count(
        pts, 2.0
    )


def test_knn_threaded(pts):
    d, ids = vectorized.knn(pts, 5, n_threads=2)
    rd, _ = brute.knn(pts, 5)
    assert np.allclose(d, rd)


def test_knn_k_validation(pts):
    with pytest.raises(ValueError):
        vectorized.knn(pts[:4], 4)


def test_kde_threaded(pts):
    got = vectorized.kde_estimate(pts, 1.3, n_threads=2)
    assert np.allclose(got, brute.kde_estimate(pts, 1.3))


def test_brute_rdf_tail_near_one():
    pts = uniform_points(1500, dims=3, box=12.0, seed=5)
    g = brute.rdf(pts, 24, 4.0, 12.0**3)
    assert 0.75 < g[6:18].mean() < 1.1


def test_brute_pss_scores_bounded(pts):
    s = brute.pss_scores(pts[:50])
    assert (np.abs(s) <= 1.0 + 1e-9).all()
    assert np.allclose(np.diag(s), 0.0)
