"""Unit tests for the OpenMP-model loop schedulers."""

import numpy as np
import pytest

from repro.cpusim import (
    dynamic_schedule,
    guided_schedule,
    make_schedule,
    static_schedule,
    triangular_weight,
)


def assert_exact_cover(assignment, n_iters):
    chunks = assignment.coverage()
    assert chunks[0][0] == 0
    assert chunks[-1][1] == n_iters
    for (s1, e1), (s2, e2) in zip(chunks, chunks[1:]):
        assert e1 == s2, "chunks must tile the space with no gaps/overlaps"


@pytest.mark.parametrize("n,t", [(100, 4), (101, 4), (7, 16), (1000, 16)])
def test_static_default_covers(n, t):
    assert_exact_cover(static_schedule(n, t), n)


def test_static_default_is_one_block_per_thread():
    a = static_schedule(100, 4)
    assert all(len(c) <= 1 for c in a.per_thread)
    assert a.iterations_of(0) == 25


def test_static_chunked_round_robin():
    a = static_schedule(100, 4, chunk=10)
    assert_exact_cover(a, 100)
    # thread 0 gets chunks 0, 4, 8 -> starts 0, 400.., i.e. 0-10, 40-50, 80-90
    assert a.chunks_of(0) == [(0, 10), (40, 50), (80, 90)]


@pytest.mark.parametrize("n,t,chunk", [(100, 4, 7), (1000, 16, 64), (5, 8, 2)])
def test_dynamic_covers(n, t, chunk):
    assert_exact_cover(dynamic_schedule(n, t, chunk=chunk), n)


def test_dynamic_balances_triangular_load():
    n, t = 2000, 8
    a = dynamic_schedule(n, t, chunk=25, weight_fn=triangular_weight(n))
    work = a.thread_work(triangular_weight(n))
    assert work.max() / work.mean() < 1.1


@pytest.mark.parametrize("n,t", [(100, 4), (10_000, 16), (33, 8)])
def test_guided_covers(n, t):
    assert_exact_cover(guided_schedule(n, t), n)


def test_guided_chunks_decay():
    a = guided_schedule(10_000, 8, min_chunk=16)
    sizes = [e - s for s, e in sorted(a.coverage())]
    # geometric decay until the floor
    assert sizes[0] > sizes[len(sizes) // 2] >= 16
    assert all(x >= 16 or i == len(sizes) - 1 for i, x in enumerate(sizes))


def test_guided_first_chunk_is_remaining_over_2t():
    a = guided_schedule(16_000, 8)
    first = sorted(a.coverage())[0]
    assert first == (0, 1000)  # 16000 / (2*8)


def test_guided_balances_triangular_load():
    n = 4096
    a = guided_schedule(n, 16, min_chunk=16, weight_fn=triangular_weight(n))
    work = a.thread_work(triangular_weight(n))
    assert work.max() / work.mean() < 1.15


def test_static_imbalanced_on_triangular():
    """The reason the paper tunes schedulers: static contiguous gives the
    first thread nearly 2x the mean pair load."""
    n = 4096
    a = static_schedule(n, 16)
    work = a.thread_work(triangular_weight(n))
    assert work.max() / work.mean() > 1.7
    assert np.argmax(work) == 0


def test_triangular_weight_total():
    n = 100
    w = triangular_weight(n)
    assert w(0, n) == n * (n - 1) / 2
    assert w(0, 10) + w(10, n) == w(0, n)


def test_make_schedule_dispatch():
    a = make_schedule("static", 10, 2)
    assert a.n_threads == 2
    with pytest.raises(KeyError, match="unknown scheduler"):
        make_schedule("fair", 10, 2)


def test_invalid_args():
    with pytest.raises(ValueError):
        static_schedule(-1, 2)
    with pytest.raises(ValueError):
        static_schedule(10, 0)
    with pytest.raises(ValueError):
        dynamic_schedule(10, 2, chunk=0)
    with pytest.raises(ValueError):
        guided_schedule(10, 2, min_chunk=0)


def test_zero_iterations():
    a = guided_schedule(0, 4)
    assert a.total_chunks() == 0
