"""Unit tests for thread-affinity policies."""

import pytest

from repro.cpusim import (
    CpuSpec,
    XEON_E5_2640V2,
    balanced_affinity,
    compact_affinity,
    make_affinity,
    scatter_affinity,
)

SPEC = XEON_E5_2640V2


def test_spec_shape():
    assert SPEC.physical_cores == 8
    assert SPEC.hardware_threads == 16
    assert SPEC.clock_hz == 2.0e9


def test_spec_slot_validation():
    with pytest.raises(ValueError):
        SPEC.slot(8, 0)
    with pytest.raises(ValueError):
        SPEC.slot(0, 2)
    assert SPEC.slot(3, 1) == (0, 7)


def test_compact_fills_cores_first():
    m = compact_affinity(SPEC, 4)
    # threads 0,1 share core 0; threads 2,3 share core 1
    assert [m.core_of(t) for t in range(4)] == [0, 0, 1, 1]
    assert m.threads_per_core_used(SPEC)[:2] == [2, 2]


def test_scatter_spreads_across_cores():
    m = scatter_affinity(SPEC, 4)
    assert [m.core_of(t) for t in range(4)] == [0, 1, 2, 3]


def test_scatter_wraps_to_siblings():
    m = scatter_affinity(SPEC, 10)
    assert m.core_of(8) == 0 and m.placements[8][1] == 1


def test_balanced_even_distribution():
    m = balanced_affinity(SPEC, 12)
    counts = m.threads_per_core_used(SPEC)
    assert max(counts) - min(counts) <= 1
    assert sum(counts) == 12


def test_balanced_keeps_neighbours_adjacent():
    m = balanced_affinity(SPEC, 12)
    # consecutive ids sit on the same or the next core
    cores = [m.core_of(t) for t in range(12)]
    assert all(0 <= b - a <= 1 for a, b in zip(cores, cores[1:]))


def test_effective_parallelism_ordering():
    """At 8 threads: compact wastes cores (4 x 1.3 = 5.2 equivalents),
    scatter/balanced use all 8 — the reason the paper avoids compact."""
    compact = compact_affinity(SPEC, 8).effective_parallelism(SPEC)
    scatter = scatter_affinity(SPEC, 8).effective_parallelism(SPEC)
    balanced = balanced_affinity(SPEC, 8).effective_parallelism(SPEC)
    assert compact == pytest.approx(4 * 1.3)
    assert scatter == pytest.approx(8.0)
    assert balanced == pytest.approx(8.0)


def test_full_machine_all_policies_equal():
    vals = {
        p: make_affinity(p, SPEC, 16).effective_parallelism(SPEC)
        for p in ("compact", "scatter", "balanced")
    }
    assert len(set(vals.values())) == 1


def test_too_many_threads():
    with pytest.raises(ValueError, match="exceed"):
        compact_affinity(SPEC, 17)


def test_unknown_policy():
    with pytest.raises(KeyError, match="unknown affinity"):
        make_affinity("random", SPEC, 4)
