"""Unit tests for the CPU 2-BS runner (the OpenMP baseline model)."""

import math

import numpy as np
import pytest

from repro import apps
from repro.cpusim import CpuTwoBodyRunner
from repro.cpu_ref import brute

MAXD = 10.0 * math.sqrt(3.0)


@pytest.fixture
def sdh64(small_points):
    return apps.sdh.make_problem(64, MAXD), brute.sdh_histogram(
        small_points, 64, MAXD / 64
    )


@pytest.mark.parametrize("scheduler", ["static", "dynamic", "guided"])
def test_sdh_correct_under_every_scheduler(small_points, sdh64, scheduler):
    problem, ref = sdh64
    runner = CpuTwoBodyRunner(problem, scheduler=scheduler)
    result, info = runner.run(small_points)
    assert np.array_equal(result, ref)
    assert info.scheduler == scheduler


@pytest.mark.parametrize("n_threads", [1, 3, 8, 16])
def test_thread_count_invariance(small_points, sdh64, n_threads):
    problem, ref = sdh64
    result, _ = CpuTwoBodyRunner(problem, n_threads=n_threads).run(small_points)
    assert np.array_equal(result, ref)


def test_scalar_sum_problem(small_points, pcf_problem):
    result, _ = CpuTwoBodyRunner(pcf_problem).run(small_points)
    assert int(round(result)) == brute.pcf_count(small_points, 2.0)


def test_unsupported_kind_rejected():
    problem = apps.knn.make_problem(3)
    with pytest.raises(ValueError, match="supports"):
        CpuTwoBodyRunner(problem)


def test_wrong_dims_rejected(small_points):
    problem = apps.sdh.make_problem(16, MAXD, dims=5)
    with pytest.raises(ValueError, match="5-d"):
        CpuTwoBodyRunner(problem).run(small_points)


def test_guided_beats_static_makespan(sdh64):
    problem, _ = sdh64
    static = CpuTwoBodyRunner(problem, scheduler="static").simulate(20_000)
    guided = CpuTwoBodyRunner(problem, scheduler="guided").simulate(20_000)
    assert guided.seconds < static.seconds
    assert guided.imbalance < static.imbalance


def test_compact_affinity_slower_at_half_threads(sdh64):
    problem, _ = sdh64
    compact = CpuTwoBodyRunner(problem, n_threads=8, affinity="compact").simulate(20_000)
    balanced = CpuTwoBodyRunner(problem, n_threads=8, affinity="balanced").simulate(20_000)
    assert compact.seconds > balanced.seconds * 1.2


def test_simulate_matches_run_info(small_points, sdh64):
    problem, _ = sdh64
    runner = CpuTwoBodyRunner(problem)
    sim = runner.simulate(len(small_points))
    _, info = runner.run(small_points)
    assert sim.seconds == info.seconds
    assert (sim.thread_pairs == info.thread_pairs).all()


def test_paper_scale_timing_pin(sdh64):
    """Fig. 4's CPU anchor: ~300s at N=1M on the modeled Xeon."""
    problem, _ = sdh64
    secs = CpuTwoBodyRunner(problem).simulate(1_000_000).seconds
    assert 200 < secs < 450


def test_cycles_per_pair_override(sdh64, small_points):
    problem, _ = sdh64
    fast = CpuTwoBodyRunner(problem, cycles_per_pair=1.0).simulate(100_000)
    slow = CpuTwoBodyRunner(problem, cycles_per_pair=10.0).simulate(100_000)
    assert slow.seconds > fast.seconds * 5
