"""Smoke tests: every example script must run end-to-end."""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parents[1] / "examples"


def run_example(name, argv=()):
    path = EXAMPLES / name
    old_argv = sys.argv
    sys.argv = [str(path), *argv]
    try:
        runpy.run_path(str(path), run_name="__main__")
    except SystemExit as exc:  # argparse-based scripts exit 0
        assert exc.code in (0, None)
    finally:
        sys.argv = old_argv


def test_quickstart(capsys):
    run_example("quickstart.py")
    out = capsys.readouterr().out
    assert "Reg-ROC-Out" in out
    assert "plan for" in out


def test_molecular_rdf(capsys):
    run_example("molecular_rdf.py")
    out = capsys.readouterr().out
    assert "first coordination shell" in out


def test_astro_correlation(capsys):
    run_example("astro_correlation.py")
    out = capsys.readouterr().out
    assert "clustering signal detected" in out


def test_recommender_similarity(capsys):
    run_example("recommender_similarity.py")
    out = capsys.readouterr().out
    assert "top substitute recommendations" in out
    assert "band join" in out


def test_outlier_detection(capsys):
    run_example("outlier_detection.py")
    out = capsys.readouterr().out
    assert "detector agreement" in out


@pytest.mark.slow
def test_reproduce_paper_quick(capsys):
    run_example("reproduce_paper.py", argv=["--quick"])
    out = capsys.readouterr().out
    assert "Fig. 2" in out and "Fig. 9" in out
