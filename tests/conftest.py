"""Shared fixtures for the test suite."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import apps, data
from repro.gpusim import Device, TITAN_X


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_points():
    """300 uniform 3-D points in a 10-unit box (ragged vs B=64/128)."""
    return data.uniform_points(300, dims=3, box=10.0, seed=7)


@pytest.fixture
def aligned_points():
    """256 points: exactly one 256-block, power-of-two for tiling edges."""
    return data.uniform_points(256, dims=3, box=10.0, seed=11)


@pytest.fixture
def device():
    return Device(TITAN_X)


@pytest.fixture
def sdh_problem():
    """64-bucket SDH over the 10-unit box diagonal."""
    return apps.sdh.make_problem(64, 10.0 * math.sqrt(3.0), dims=3)


@pytest.fixture
def pcf_problem():
    return apps.pcf.make_problem(2.0, dims=3)


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked slow (larger functional simulations)",
    )


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: larger functional simulations")


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow"):
        return
    skip = pytest.mark.skip(reason="needs --run-slow")
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip)
