"""Unit tests for pairwise distance / kernel functions."""

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro.core import (
    CHEBYSHEV,
    COSINE,
    DOT,
    EUCLIDEAN,
    JACCARD,
    MANHATTAN,
    SQ_EUCLIDEAN,
    gaussian_kernel,
    get_pair_function,
    polynomial_kernel,
)


@pytest.fixture
def blocks(rng):
    A = rng.normal(size=(20, 3))
    B = rng.normal(size=(15, 3))
    return A, B


def test_euclidean_matches_scipy(blocks):
    A, B = blocks
    assert np.allclose(EUCLIDEAN(A.T, B.T), cdist(A, B))


def test_sq_euclidean(blocks):
    A, B = blocks
    assert np.allclose(SQ_EUCLIDEAN(A.T, B.T), cdist(A, B, "sqeuclidean"))


def test_sq_euclidean_never_negative(rng):
    # the a^2+b^2-2ab form cancels catastrophically at large magnitudes:
    # the clip must keep it non-negative, and the residual must stay tiny
    # relative to the scale of real distances
    A = rng.normal(size=(5, 3)) * 1e8
    d = SQ_EUCLIDEAN(A.T, A.T)
    assert (d >= 0).all()
    assert np.diag(d).max() <= 1e-9 * d.max()


def test_manhattan(blocks):
    A, B = blocks
    assert np.allclose(MANHATTAN(A.T, B.T), cdist(A, B, "cityblock"))


def test_chebyshev(blocks):
    A, B = blocks
    assert np.allclose(CHEBYSHEV(A.T, B.T), cdist(A, B, "chebyshev"))


def test_dot(blocks):
    A, B = blocks
    assert np.allclose(DOT(A.T, B.T), A @ B.T)


def test_cosine(blocks):
    A, B = blocks
    assert np.allclose(COSINE(A.T, B.T), cdist(A, B, "cosine"))


def test_cosine_zero_vector_safe():
    A = np.zeros((2, 3))
    out = COSINE(A.T[:, :1].reshape(3, -1) * 0, A.T)
    assert np.isfinite(out).all()


def test_jaccard_binary_vectors():
    A = np.array([[1, 1, 0, 0]], dtype=float)
    B = np.array([[1, 0, 1, 0]], dtype=float)
    # weighted Jaccard: min-sum 1, max-sum 3 -> distance 2/3
    assert np.allclose(JACCARD(A.T, B.T), 2.0 / 3.0)


def test_jaccard_identical_is_zero(rng):
    A = np.abs(rng.normal(size=(6, 4)))
    assert np.allclose(np.diag(JACCARD(A.T, A.T)), 0.0)


def test_gaussian_kernel(blocks):
    A, B = blocks
    k = gaussian_kernel(0.7)
    ref = np.exp(-cdist(A, B, "sqeuclidean") / (2 * 0.49))
    assert np.allclose(k(A.T, B.T), ref)


def test_gaussian_kernel_rejects_bad_bandwidth():
    with pytest.raises(ValueError):
        gaussian_kernel(0.0)


def test_polynomial_kernel(blocks):
    A, B = blocks
    k = polynomial_kernel(3, c=2.0)
    assert np.allclose(k(A.T, B.T), (A @ B.T + 2.0) ** 3)
    with pytest.raises(ValueError):
        polynomial_kernel(0)


def test_dimension_mismatch_raises(blocks):
    A, B = blocks
    with pytest.raises(ValueError, match="dimension mismatch"):
        EUCLIDEAN(A.T, B.T[:2])


def test_registry_lookup():
    assert get_pair_function("euclidean") is EUCLIDEAN
    with pytest.raises(KeyError, match="unknown pair function"):
        get_pair_function("hamming")


def test_symmetry_flags():
    assert EUCLIDEAN.symmetric
    d = EUCLIDEAN(np.ones((3, 4)), np.ones((3, 4)))
    assert d.shape == (4, 4)
