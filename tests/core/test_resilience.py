"""Differential recovery tests for the resilience supervisor.

The acceptance bar: for every application, a run under the chaos fault
plan (transient allocation failure + worker crash + corrupted shard + one
dead device) produces results **bit-identical** to the fault-free run,
the report enumerates each injected fault with a recovery action, and the
same seed reproduces the same fault sequence and report.

``REPRO_FAULT_SEED`` (CI matrix) narrows the seed sweep to one value;
``REPRO_SIM_WORKERS`` sets the engine width (with 1 worker the serial
engine runs, so block/merge fault sites are structurally silent — the
tests only require recovery actions for faults that actually fired).
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

from repro.apps import gram, join, kde, pcf, sdh
from repro.core import make_kernel, run
from repro.core.distances import DOT
from repro.core.resilience import (
    DEGRADATION_LADDER,
    ResilienceReport,
    RetryPolicy,
    degrade_kernel,
    expected_pair_count,
    resilient_run,
    verify_result,
)
from repro.data import uniform_points
from repro.gpusim import FaultKind, FaultPlan, OutputCorruptionError

SEEDS = (
    [int(os.environ["REPRO_FAULT_SEED"])]
    if os.environ.get("REPRO_FAULT_SEED")
    else [0, 1, 2]
)
WORKERS = int(os.environ.get("REPRO_SIM_WORKERS") or 2)

#: injected fault kind -> the supervisor action that must answer it
EXPECTED_ACTION = {
    FaultKind.ALLOC_TRANSIENT: "retry-transient",
    FaultKind.WORKER_CRASH: "re-executed-blocks",
    FaultKind.CORRUPT_SHARD: "re-execute-corrupt",
    FaultKind.DEVICE_DEAD: "failover",
}

N = 150
BLOCK = 32  # 5 blocks: enough stripes for 2 devices plus failover


def _points():
    return uniform_points(N, dims=3, box=8.0, seed=11)


def _apps():
    box_diag = 8.0 * math.sqrt(3.0)
    cases = []
    p = sdh.make_problem(32, box_diag, dims=3)
    cases.append(("sdh", p, make_kernel(p, "register-shm", "privatized-shm",
                                        block_size=BLOCK)))
    # the RDF pipeline is SDH with an overflow bucket (apps/rdf.py)
    p = sdh.make_problem(33, box_diag + box_diag / 32, dims=3)
    cases.append(("rdf", p, make_kernel(p, "register-shm", "privatized-shm",
                                        block_size=BLOCK)))
    p = pcf.make_problem(2.5)
    cases.append(("pcf", p, make_kernel(p, block_size=BLOCK)))
    p = kde.make_problem(1.0, dims=3)
    cases.append(("kde", p, make_kernel(p, "register-shm", "register",
                                        block_size=BLOCK)))
    p = gram.make_problem(DOT, dims=3)
    cases.append(("gram", p, make_kernel(p, "register-shm", "global-direct",
                                         block_size=BLOCK)))
    p = join.make_problem(1.2, dims=3)
    cases.append(("join", p, make_kernel(p, "register-shm", "global-direct",
                                         block_size=BLOCK)))
    return cases


APPS = _apps()
RUN_KW = dict(num_devices=2, workers=WORKERS, batch_tiles=2,
              retry=RetryPolicy(sleep=False))


def _identical(a, b) -> bool:
    if np.isscalar(a):
        return a == b
    return np.array_equal(np.asarray(a), np.asarray(b))


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name,problem,kernel", APPS,
                         ids=[c[0] for c in APPS])
def test_differential_recovery(name, problem, kernel, seed):
    pts = _points()
    clean = resilient_run(problem, pts, kernel=kernel, faults=None, **RUN_KW)
    faulty = resilient_run(problem, pts, kernel=kernel, faults=seed, **RUN_KW)

    # bit-identical result despite allocation failure, worker crash,
    # corrupted shard and a dead device
    assert _identical(clean.result, faulty.result)
    assert clean.report.faults == []
    assert faulty.recovered

    # every fault that fired is answered by its recovery action
    fired = {e.kind for e in faulty.report.faults}
    assert FaultKind.ALLOC_TRANSIENT in fired
    assert FaultKind.DEVICE_DEAD in fired
    if WORKERS > 1:  # block/merge fault sites need the parallel engine
        assert FaultKind.WORKER_CRASH in fired
        assert FaultKind.CORRUPT_SHARD in fired
    actions = set(faulty.report.actions())
    for kind in fired:
        assert EXPECTED_ACTION[kind] in actions, (
            f"{kind.value} fired but {EXPECTED_ACTION[kind]} missing "
            f"from {sorted(actions)}"
        )
    assert "verified" in actions


@pytest.mark.parametrize("seed", SEEDS)
def test_same_seed_same_fault_sequence_and_report(seed):
    name, problem, kernel = APPS[0]
    pts = _points()
    a = resilient_run(problem, pts, kernel=kernel, faults=seed, **RUN_KW)
    b = resilient_run(problem, pts, kernel=kernel, faults=seed, **RUN_KW)
    assert a.report.to_dict() == b.report.to_dict()
    assert _identical(a.result, b.result)


def test_single_device_supervised_matches_plain_run(sdh_problem,
                                                    small_points):
    kernel = make_kernel(sdh_problem, "register-shm", "privatized-shm",
                         block_size=64)
    plain = run(sdh_problem, small_points, kernel=kernel, workers=WORKERS,
                batch_tiles=2)
    supervised = resilient_run(
        sdh_problem, small_points, kernel=kernel, num_devices=1,
        faults=0, workers=WORKERS, batch_tiles=2,
        retry=RetryPolicy(sleep=False),
    )
    assert np.array_equal(plain.result, supervised.result)
    assert supervised.plan is None


def test_runner_faults_argument_routes_through_supervisor(sdh_problem,
                                                          small_points):
    kernel = make_kernel(sdh_problem, "register-shm", "privatized-shm",
                         block_size=64)
    baseline = run(sdh_problem, small_points, kernel=kernel,
                   workers=WORKERS, batch_tiles=2)
    res = run(sdh_problem, small_points, kernel=kernel, faults=1, retries=3,
              workers=WORKERS, batch_tiles=2)
    assert isinstance(res.resilience, ResilienceReport)
    assert np.array_equal(baseline.result, res.result)
    assert baseline.resilience is None


# -- verification & degradation units ----------------------------------------
def test_verify_result_catches_histogram_mass_mismatch(sdh_problem):
    hist = np.zeros(64, dtype=np.int64)
    hist[3] = 10
    verify_result(sdh_problem, hist, expected_pairs=10)
    with pytest.raises(OutputCorruptionError):
        verify_result(sdh_problem, hist, expected_pairs=10 + (1 << 30))


def test_verify_result_catches_nan_and_asymmetry():
    p = gram.make_problem(DOT, dims=3)
    good = np.ones((4, 4))
    verify_result(p, good)
    bad = good.copy()
    bad[1, 2] = np.nan
    with pytest.raises(OutputCorruptionError):
        verify_result(p, bad)
    askew = good.copy()
    askew[1, 2] = 7.0
    with pytest.raises(OutputCorruptionError):
        verify_result(p, askew)


def test_verify_result_catches_bad_pairs():
    p = join.make_problem(1.0, dims=3)
    verify_result(p, np.array([[0, 1], [2, 5]]), n=6)
    with pytest.raises(OutputCorruptionError):  # i >= j
        verify_result(p, np.array([[3, 1]]), n=6)
    with pytest.raises(OutputCorruptionError):  # out of bounds
        verify_result(p, np.array([[0, 1 << 30]]), n=6)
    with pytest.raises(OutputCorruptionError):  # duplicates
        verify_result(p, np.array([[0, 1], [0, 1]]), n=6)


def test_expected_pair_count_partitions_over_stripes():
    full = expected_pair_count(N, BLOCK)
    assert full == N * (N - 1) // 2
    split = (expected_pair_count(N, BLOCK, [0, 1])
             + expected_pair_count(N, BLOCK, [2, 3, 4]))
    assert split == full
    # full-row kernels see each pair from both endpoints
    assert expected_pair_count(N, BLOCK, full_rows=True) == N * (N - 1)


def test_degradation_ladder_walks_to_naive(sdh_problem):
    kernel = make_kernel(sdh_problem, "register-roc", "privatized-shm",
                         block_size=64)
    seen = [kernel.input.name.lower()]
    while True:
        kernel = degrade_kernel(kernel)
        if kernel is None:
            break
        seen.append(kernel.input.name.lower())
        assert kernel.output.name == "privatized-shm"  # output preserved
        assert kernel.block_size == 64
    assert tuple(seen) == DEGRADATION_LADDER


def test_degraded_kernels_agree(sdh_problem, small_points):
    results = []
    kernel = make_kernel(sdh_problem, "register-roc", "privatized-shm",
                         block_size=64)
    while kernel is not None:
        res = run(sdh_problem, small_points, kernel=kernel)
        results.append(res.result)
        kernel = degrade_kernel(kernel)
    for r in results[1:]:
        assert np.array_equal(results[0], r)


# -- report serialization ------------------------------------------------------
#
# Checkpoint payloads persist the recovery stream and restore it on
# resume, so the JSON form must round-trip exactly: same event order,
# same bytes on re-serialization, lifecycle kept separate from the
# deterministic fault/recovery history.


def _supervised_report(seed=4):
    problem = sdh.make_problem(64, 10.0 * math.sqrt(3.0), dims=3)
    kernel = make_kernel(problem, "register-roc", "privatized-shm",
                         block_size=32)
    rr = resilient_run(problem, _points(), kernel=kernel, faults=seed,
                       workers=WORKERS, retry=RetryPolicy(sleep=False))
    return rr.report


def test_report_json_round_trip_is_byte_stable():
    report = _supervised_report()
    report.record_lifecycle("checkpoint-write", detail="chunk 0", chunk=0)
    text = report.to_json()
    clone = ResilienceReport.from_json(text)
    assert clone.to_json() == text
    # and a second hop stays fixed
    assert ResilienceReport.from_json(clone.to_json()).to_json() == text


def test_report_round_trip_preserves_event_order():
    report = _supervised_report()
    clone = ResilienceReport.from_dict(report.to_full_dict())
    assert clone.actions() == report.actions()
    assert [f.as_dict() for f in clone.faults] == \
        [f.as_dict() for f in report.faults]
    assert clone.seed == report.seed


def test_lifecycle_lives_only_in_full_dict():
    report = ResilienceReport()
    report.record("retry-transient", 0, "attempt 1")
    report.record_lifecycle("deadline-breach", detail="budget spent")
    assert "lifecycle" not in report.to_dict()
    full = report.to_full_dict()
    assert [e["action"] for e in full["lifecycle"]] == ["deadline-breach"]
    clone = ResilienceReport.from_dict(full)
    assert clone.lifecycle_actions() == ["deadline-breach"]
    # a to_dict-only hop drops lifecycle but keeps the recovery stream
    partial = ResilienceReport.from_dict(report.to_dict())
    assert partial.actions() == ["retry-transient"]
    assert partial.lifecycle_actions() == []


def test_report_determinism_across_runs_survives_round_trip():
    a = ResilienceReport.from_json(_supervised_report().to_json())
    b = ResilienceReport.from_json(_supervised_report().to_json())
    assert a.to_json() == b.to_json()
