"""The paper's Eqs. 1-7 and the exact access-count layer.

The load-bearing checks are the cross-validations: the exact closed forms
must equal the functional simulator's counters access-for-access, and the
paper's printed formulas must agree with the exact layer on the dominant
terms they model.
"""

import numpy as np
import pytest

from repro import apps
from repro.core import (
    exact_naive,
    exact_register_roc,
    exact_register_shm,
    exact_shm_shm,
    exact_shuffle,
    global_access_reduction,
    make_kernel,
    paper_eq1_num_blocks,
    paper_eq2_naive_global,
    paper_eq3_tiled_global,
    paper_eq4_shm_shm_shared,
    paper_eq5_register_shm_shared,
    paper_eq6_update_stage,
    paper_eq7_reduction_stage,
)
from repro.gpusim import Device, MemSpace

N, B, DIMS = 256, 64, 3


@pytest.fixture
def run_kernel(aligned_points):
    # a Type-I problem with register output: its output stage touches no
    # cache, so the counters isolate exactly the input-stage accesses the
    # exact_* formulas model
    problem = apps.pcf.make_problem(2.0)

    def _run(inp, out="register"):
        dev = Device()
        kernel = make_kernel(problem, inp, out, block_size=B)
        kernel.execute(dev, aligned_points)
        return dev.launches[0].counters  # main launch only

    return _run


def test_eq1():
    assert paper_eq1_num_blocks(2048, 256) == 8.0


def test_eq2_matches_exact_naive():
    # Eq. 2 counts datum accesses; the exact layer counts elements
    assert exact_naive(N, DIMS).global_reads == DIMS * paper_eq2_naive_global(N)


def test_eq3_counts_tile_loads():
    # Eq. 3 models anchor loads + R-tile streams (not the intra reload)
    exact = exact_register_shm(N, B, DIMS)
    eq3 = DIMS * paper_eq3_tiled_global(N, B)
    # exact includes the intra-pass L reload (N more datum loads)
    assert exact.global_reads == eq3 + DIMS * N


def test_eq4_eq5_ratio():
    # "Register-SHM cuts the number of accesses ... by half"
    assert paper_eq4_shm_shm_shared(N, B) == 2 * paper_eq5_register_shm_shared(N, B)


def test_eq5_matches_exact_reads():
    assert exact_register_shm(N, B, DIMS).shm_reads == DIMS * paper_eq5_register_shm_shared(N, B)


def test_eq4_matches_exact_reads():
    assert exact_shm_shm(N, B, DIMS).shm_reads == DIMS * paper_eq4_shm_shm_shared(N, B)


def test_roc_reads_equal_register_shm_reads():
    # Section IV-B: "the number of accesses to this memory is the same as
    # the number of accesses of Register-SHM to shared memory"
    assert (
        exact_register_roc(N, B, DIMS).roc_reads
        == exact_register_shm(N, B, DIMS).shm_reads
    )


def test_eq6_is_one_atomic_per_pair():
    assert paper_eq6_update_stage(N, B, 2.0) == N * (N - 1) / 2 * 2.0


def test_eq7_structure():
    assert paper_eq7_reduction_stage(10, 4, 1.0, 2.0, 3.0) == 10 * (4 * 6.0 + 1.0)


def test_global_access_reduction_headline():
    # Section IV-D: output-path global accesses drop from N^2-scale to
    # Hs(2M + 1)
    before, after = global_access_reduction(512_000, 256, 2500)
    assert before == 512_000 * 511_999 // 2
    assert after == 2500 * (2 * 2000 + 1)
    assert after < before / 10_000


# -- exact layer vs functional counters -----------------------------------------

def test_exact_naive_matches_functional(run_kernel):
    c = run_kernel("naive")
    assert c.read_count(MemSpace.GLOBAL) == exact_naive(N, DIMS).global_reads


def test_exact_shm_shm_matches_functional(run_kernel):
    c = run_kernel("shm-shm")
    e = exact_shm_shm(N, B, DIMS)
    assert c.read_count(MemSpace.GLOBAL) == e.global_reads
    assert c.read_count(MemSpace.SHARED) == e.shm_reads
    assert c.write_count(MemSpace.SHARED) == e.shm_writes


def test_exact_register_shm_matches_functional(run_kernel):
    c = run_kernel("register-shm")
    e = exact_register_shm(N, B, DIMS)
    assert c.read_count(MemSpace.GLOBAL) == e.global_reads
    assert c.read_count(MemSpace.SHARED) == e.shm_reads
    assert c.write_count(MemSpace.SHARED) == e.shm_writes


def test_exact_register_roc_matches_functional(run_kernel):
    c = run_kernel("register-roc")
    e = exact_register_roc(N, B, DIMS)
    assert c.read_count(MemSpace.GLOBAL) == e.global_reads
    assert c.read_count(MemSpace.ROC) == e.roc_reads


def test_exact_shuffle_matches_functional(run_kernel):
    c = run_kernel("shuffle")
    e = exact_shuffle(N, B, DIMS)
    assert c.read_count(MemSpace.GLOBAL) == e.global_reads
    assert c.read_count(MemSpace.REGISTER) == e.shuffles


def test_exact_layer_handles_ragged_blocks(small_points):
    """N=300, B=64: the ragged last block must still match."""
    problem = apps.pcf.make_problem(2.0)
    dev = Device()
    kernel = make_kernel(problem, "register-shm", "register", block_size=64)
    kernel.execute(dev, small_points)
    c = dev.launches[0].counters
    e = exact_register_shm(300, 64, 3)
    assert c.read_count(MemSpace.GLOBAL) == e.global_reads
    assert c.read_count(MemSpace.SHARED) == e.shm_reads
