"""Unit tests for the end-to-end runner."""

import numpy as np
import pytest

from repro.core import estimate, make_kernel, run
from repro.cpu_ref import brute
from repro.gpusim import Device


def test_run_returns_result_and_report(small_points, pcf_problem):
    res = run(pcf_problem, small_points)
    assert int(round(res.result)) == brute.pcf_count(small_points, 2.0)
    assert res.seconds > 0
    assert res.report.kernel == res.kernel.name
    assert res.record.blocks_run == res.kernel.geometry(300).num_blocks


def test_run_uses_measured_counters(small_points, pcf_problem):
    res = run(pcf_problem, small_points)
    assert res.report.counters is res.record.counters


def test_run_with_explicit_kernel(small_points, pcf_problem):
    kernel = make_kernel(pcf_problem, "register-roc", "register", block_size=128)
    res = run(pcf_problem, small_points, kernel=kernel)
    assert res.kernel is kernel


def test_run_with_auto_plan(small_points, pcf_problem):
    res = run(pcf_problem, small_points, auto_plan=True)
    assert int(round(res.result)) == brute.pcf_count(small_points, 2.0)
    assert res.kernel.input.name != "Naive"


def test_run_reuses_supplied_device(small_points, pcf_problem):
    dev = Device()
    run(pcf_problem, small_points, device=dev)
    assert len(dev.launches) >= 1


def test_estimate_needs_no_data(pcf_problem):
    report = estimate(pcf_problem, 1_000_000)
    assert report.seconds > 0
    assert report.n == 1_000_000


def test_estimate_scales_quadratically(pcf_problem):
    a = estimate(pcf_problem, 200_000).seconds
    b = estimate(pcf_problem, 400_000).seconds
    assert b / a == pytest.approx(4.0, rel=0.1)
