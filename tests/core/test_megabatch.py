"""Differential tests for the mega-batch execution path.

Contract (the GIL-ceiling PR): ``backend="megabatch"`` stacks every
surviving post-pruning partner tile of an anchor block into one staged
evaluation per kernel stage — changing only *how often the interpreter is
dispatched*, never an output bit, a counter, a sync count or a pruning
decision.  Every test compares a mega-batch run against the sequential
tile-at-a-time engine (the reference the parallel-engine suite pins).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import apps
from repro.core.bounds import spatial_sort
from repro.core.distances import EUCLIDEAN
from repro.core.kernels import make_kernel
from repro.core.kernels.megabatch import MEGA_PANEL_COLUMNS, PanelStack
from repro.data import gaussian_clusters
from repro.gpusim import Device, TITAN_X

BLOCK = 64

#: every composition family the mega fold must reproduce bit-for-bit
COMPOSITIONS = [
    *[("sdh", inp, out, False)
      for inp in ("naive", "shm-shm", "register-shm", "register-roc", "shuffle")
      for out in ("global-atomic", "privatized-shm")],
    ("sdh", "register-roc", "privatized-shm", True),  # cyclic intra schedule
    *[("pcf", inp, "register", False)
      for inp in ("naive", "shm-shm", "register-shm", "register-roc", "shuffle")],
    ("pcf", "register-shm", "global-atomic", False),
    ("kde", "register-shm", "register", False),     # full-row per-point sums
    ("knn", "register-roc", "register", False),     # TOPK order statistics
    ("gram", "register-shm", "global-direct", False),
    ("join", "register-shm", "global-direct", False),  # EMIT_PAIRS tickets
]


def _problem(name: str):
    if name == "sdh":
        return apps.sdh.make_problem(64, 10.0 * math.sqrt(3.0), dims=3)
    if name == "pcf":
        return apps.pcf.make_problem(2.0, dims=3)
    if name == "kde":
        return apps.kde.make_problem(1.5, dims=3)
    if name == "knn":
        return apps.knn.make_problem(4, dims=3)
    if name == "gram":
        return apps.gram.make_problem(EUCLIDEAN, dims=3)
    if name == "join":
        return apps.join.make_problem(1.0, dims=3)
    raise KeyError(name)


def _run(problem, inp, out, lb, points, *, backend, workers=1, prune=False):
    kernel = make_kernel(
        problem, inp, out, block_size=BLOCK, load_balanced=lb, prune=prune
    )
    return kernel.execute(
        Device(TITAN_X), points, workers=workers, backend=backend
    )


def _assert_result_equal(expected, got):
    if isinstance(expected, tuple):
        assert isinstance(got, tuple) and len(got) == len(expected)
        for e, g in zip(expected, got):
            _assert_result_equal(e, g)
        return
    if isinstance(expected, float):
        assert got == pytest.approx(expected, rel=1e-12, abs=1e-12)
        return
    e = np.asarray(expected)
    g = np.asarray(got)
    assert e.shape == g.shape
    if np.issubdtype(e.dtype, np.integer) or e.dtype == bool:
        np.testing.assert_array_equal(e, g)
    else:
        np.testing.assert_allclose(e, g, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("prob,inp,out,lb", COMPOSITIONS)
@pytest.mark.parametrize("workers", [1, 4])
def test_megabatch_matches_sequential(small_points, prob, inp, out, lb, workers):
    problem = _problem(prob)
    base_result, base_record = _run(
        problem, inp, out, lb, small_points, backend="sequential"
    )
    result, record = _run(
        problem, inp, out, lb, small_points, backend="megabatch",
        workers=workers,
    )
    assert record.counters == base_record.counters, (
        f"{prob}/{inp}/{out}: counters diverge\n"
        f"  sequential: {base_record.counters.as_dict()}\n"
        f"  megabatch:  {record.counters.as_dict()}"
    )
    assert record.counters.atomic_conflict_issues == \
        base_record.counters.atomic_conflict_issues
    assert record.counters.atomic_conflict_degree == pytest.approx(
        base_record.counters.atomic_conflict_degree, rel=1e-9
    )
    assert record.blocks_run == base_record.blocks_run
    assert record.sync_counts == base_record.sync_counts
    assert record.max_shared_bytes == base_record.max_shared_bytes
    _assert_result_equal(base_result, result)


def test_megabatch_preserves_pruning_decisions():
    """Pruning classifies tiles before stacking, so the mega path must skip
    and bulk-resolve exactly the same tiles — identical PruneStats, bits."""
    pts = gaussian_clusters(600, dims=3, n_clusters=8, box=60.0, spread=0.4,
                            seed=42)
    pts = pts[spatial_sort(pts)]
    problem = apps.sdh.make_problem(32, 8.0)  # most tiles beyond max
    base_result, base_record = _run(
        problem, "register-roc", "privatized-shm", False, pts,
        backend="sequential", prune=True,
    )
    result, record = _run(
        problem, "register-roc", "privatized-shm", False, pts,
        backend="megabatch", prune=True,
    )
    assert base_record.prune is not None
    assert base_record.prune.tiles_pruned > 0  # the pruner actually fired
    assert record.prune == base_record.prune
    assert record.counters == base_record.counters
    np.testing.assert_array_equal(base_result, result)


def test_megabatch_pruned_pcf_bulk_updates():
    pts = gaussian_clusters(600, dims=3, n_clusters=8, box=60.0, spread=0.4,
                            seed=42)
    pts = pts[spatial_sort(pts)]
    problem = apps.pcf.make_problem(2.0)
    base_result, base_record = _run(
        problem, "register-shm", "register", False, pts,
        backend="sequential", prune=True,
    )
    result, record = _run(
        problem, "register-shm", "register", False, pts,
        backend="megabatch", prune=True,
    )
    assert record.prune == base_record.prune
    assert base_record.prune.tiles_skipped > 0
    _assert_result_equal(base_result, result)


def test_megabatch_rides_thread_engine(small_points):
    """With workers > 1 the mega kernel body runs on the block-parallel
    engine; the record reports the block engine it rode."""
    problem = _problem("sdh")
    _, rec1 = _run(problem, "register-roc", "privatized-shm", False,
                   small_points, backend="megabatch", workers=1)
    _, rec4 = _run(problem, "register-roc", "privatized-shm", False,
                   small_points, backend="megabatch", workers=4)
    assert rec1.backend == "sequential"
    assert rec4.backend == "threads"
    assert rec4.workers == min(4, rec4.blocks_run)


def test_emitted_pairs_identical_under_megabatch(small_points):
    problem = _problem("join")
    base, _ = _run(problem, "register-shm", "global-direct", False,
                   small_points, backend="sequential")
    got, _ = _run(problem, "register-shm", "global-direct", False,
                  small_points, backend="megabatch")
    np.testing.assert_array_equal(base, got)


# -- PanelStack ---------------------------------------------------------------

def test_panel_stack_covers_all_columns_contiguously():
    rng = np.random.default_rng(5)
    anchors = rng.uniform(0.0, 10.0, (3, 8))
    partners = np.asfortranarray(rng.uniform(0.0, 10.0, (3, 1200)))
    stack = PanelStack(EUCLIDEAN, anchors, partners, panel_cols=512)
    full = stack.materialize()
    seen = 0
    for start, panel in stack.panels():
        assert start == seen
        # panel evaluation is bit-identical to the full evaluation: the
        # pair functions are elementwise in the partner columns
        np.testing.assert_array_equal(
            panel, full[:, start:start + panel.shape[1]]
        )
        seen += panel.shape[1]
    assert seen == stack.total_cols == 1200


def test_panel_stack_single_panel_skips_copy():
    rng = np.random.default_rng(6)
    anchors = rng.uniform(0.0, 10.0, (3, 4))
    partners = rng.uniform(0.0, 10.0, (3, 100))
    stack = PanelStack(EUCLIDEAN, anchors, partners, panel_cols=512)
    panels = list(stack.panels())
    assert len(panels) == 1
    np.testing.assert_array_equal(panels[0][1], stack.materialize())


def test_default_panel_width_is_cache_sized():
    assert PanelStack(EUCLIDEAN, np.zeros((3, 1)), np.zeros((3, 1))).panel_cols \
        == MEGA_PANEL_COLUMNS
    assert MEGA_PANEL_COLUMNS >= 128
