"""Bound-soundness tests for the tile-pruning layer (core/bounds.py).

The pruning engine's whole correctness story rests on one invariant: for
every inter-block tile, every *computed* pairwise value lies inside the
certified ``[dmin, dmax]`` interval.  These tests check that invariant
directly against brute-force pairwise distances, per metric, on adversarial
data (clustered, collinear, ragged tails, negative coordinates).
"""

import numpy as np
import pytest

from repro import apps
from repro.core.bounds import (
    SUPPORTED_METRICS,
    TilePruner,
    block_bounds,
    prune_stats,
    spatial_sort,
    tile_distance_bounds,
)
from repro.data import gaussian_clusters, uniform_points


def _pairwise(pts: np.ndarray, metric: str) -> np.ndarray:
    diff = np.abs(pts[:, None, :] - pts[None, :, :])
    if metric == "euclidean":
        return np.sqrt((diff * diff).sum(axis=2))
    if metric == "manhattan":
        return diff.sum(axis=2)
    return diff.max(axis=2)


DATASETS = [
    uniform_points(300, dims=3, box=10.0, seed=3),
    gaussian_clusters(400, dims=3, n_clusters=5, box=20.0, spread=0.3, seed=1),
    # negative coordinates and a degenerate (collinear) dimension
    np.stack([np.linspace(-50, 50, 257), np.zeros(257), np.zeros(257)], axis=1),
]


class TestBlockBounds:
    def test_boxes_cover_their_blocks(self):
        pts = uniform_points(300, dims=3, box=10.0, seed=3)
        soa = pts.T.copy()
        lo, hi = block_bounds(soa, 64)
        assert lo.shape == hi.shape == (3, 5)  # 4 full blocks + tail of 44
        for b in range(5):
            chunk = soa[:, b * 64 : (b + 1) * 64]
            assert np.array_equal(lo[:, b], chunk.min(axis=1))
            assert np.array_equal(hi[:, b], chunk.max(axis=1))

    def test_ragged_tail_of_one(self):
        soa = np.arange(9, dtype=np.float64).reshape(1, 9)
        lo, hi = block_bounds(soa, 4)
        assert lo.shape == (1, 3)
        assert lo[0, 2] == hi[0, 2] == 8.0  # tail block = single point


class TestTileDistanceBounds:
    @pytest.mark.parametrize("metric", SUPPORTED_METRICS)
    @pytest.mark.parametrize("pts", DATASETS, ids=["uniform", "clusters", "line"])
    @pytest.mark.parametrize("block_size", [64, 100])
    def test_bounds_contain_all_pair_distances(self, pts, metric, block_size):
        order = spatial_sort(pts)
        pts = np.asarray(pts, dtype=np.float64)[order]
        soa = pts.T.copy()
        lo, hi = block_bounds(soa, block_size)
        dist = _pairwise(pts, metric)
        m = lo.shape[1]
        for b in range(m):
            dmin, dmax = tile_distance_bounds(lo, hi, b, metric=metric)
            sl_b = slice(b * block_size, (b + 1) * block_size)
            for r in range(m):
                sl_r = slice(r * block_size, (r + 1) * block_size)
                tile = dist[sl_b, sl_r]
                assert tile.min() >= dmin[r] - 1e-12, (b, r)
                assert tile.max() <= dmax[r] + 1e-12, (b, r)

    def test_diagonal_tile_lower_bound_is_zero(self):
        pts = DATASETS[1]
        soa = np.asarray(pts, dtype=np.float64).T.copy()
        lo, hi = block_bounds(soa, 64)
        for b in range(lo.shape[1]):
            dmin, _ = tile_distance_bounds(lo, hi, b)
            assert dmin[b] == 0.0

    def test_pad_widens_interval(self):
        soa = np.asarray(DATASETS[0], dtype=np.float64).T.copy()
        lo, hi = block_bounds(soa, 64)
        tight_lo, tight_hi = tile_distance_bounds(lo, hi, 0, pad=0.0)
        wide_lo, wide_hi = tile_distance_bounds(lo, hi, 0, pad=1.0)
        assert np.all(wide_lo <= tight_lo)
        assert np.all(wide_hi >= tight_hi)
        assert np.all(wide_lo >= 0.0)  # padding never goes negative

    def test_unknown_metric_rejected(self):
        lo = hi = np.zeros((2, 2))
        with pytest.raises(ValueError, match="unsupported pruning metric"):
            tile_distance_bounds(lo, hi, 0, metric="cosine")


class TestTilePruner:
    def test_requires_pruning_spec(self):
        import dataclasses

        problem = dataclasses.replace(
            apps.sdh.make_problem(16, 10.0), pruning=None
        )
        soa = np.zeros((3, 32))
        with pytest.raises(ValueError, match="no PruningSpec"):
            TilePruner(soa, 16, problem)

    def test_skip_and_bulk_disjoint_and_off_diagonal(self):
        pts = gaussian_clusters(
            600, dims=3, n_clusters=4, box=40.0, spread=0.2, seed=2
        )
        pts = pts[spatial_sort(pts)]
        problem = apps.pcf.make_problem(1.0)
        pruner = TilePruner(pts.T.copy(), 64, problem)
        saw_skip = False
        for b in range(pruner.num_blocks):
            cls = pruner.classify(b)
            assert not np.any(cls.skip & cls.bulk)
            assert not cls.skip[b] and not cls.bulk[b]
            saw_skip |= bool(cls.skip.any())
        assert saw_skip  # well-separated clusters must skip far tiles

    def test_stats_match_manual_aggregation(self):
        pts = gaussian_clusters(
            500, dims=3, n_clusters=4, box=30.0, spread=0.3, seed=5
        )
        pts = pts[spatial_sort(pts)]
        problem = apps.pcf.make_problem(1.5)
        pruner = TilePruner(pts.T.copy(), 64, problem)
        stats = pruner.stats(full_rows=False)
        m = pruner.num_blocks
        pairs_s = 0
        for b in range(m):
            cls = pruner.classify(b)
            for r in range(b + 1, m):
                if cls.skip[r]:
                    pairs_s += int(pruner.sizes[b] * pruner.sizes[r])
        assert stats.pairs_skipped == pairs_s
        assert stats.tiles == m * (m - 1) // 2
        assert stats.tiles_pruned == stats.tiles_skipped + stats.tiles_bulk
        assert stats.pairs_pruned == stats.pairs_skipped + stats.pairs_bulk
        assert 0.0 <= stats.prune_fraction <= 1.0

    def test_anchor_subset_stats_partition(self):
        """blocks= stripes: stats over disjoint anchor sets sum to the
        whole-grid stats (the supervisor/multi-GPU merge invariant)."""
        pts = gaussian_clusters(
            500, dims=3, n_clusters=4, box=30.0, spread=0.3, seed=5
        )
        pts = pts[spatial_sort(pts)]
        problem = apps.pcf.make_problem(1.5)
        whole = prune_stats(pts, 64, problem)
        m = (len(pts) + 63) // 64
        half = m // 2
        a = prune_stats(pts, 64, problem, anchors=range(half))
        b = prune_stats(pts, 64, problem, anchors=range(half, m))
        assert a.tiles + b.tiles == whole.tiles
        assert a.pairs_skipped + b.pairs_skipped == whole.pairs_skipped
        assert a.pairs_bulk + b.pairs_bulk == whole.pairs_bulk


class TestSpatialSort:
    def test_is_a_permutation(self):
        pts = gaussian_clusters(333, dims=3, n_clusters=7, seed=9)
        order = spatial_sort(pts)
        assert sorted(order.tolist()) == list(range(333))

    def test_1d_input(self):
        vals = np.array([5.0, 1.0, 3.0, 2.0, 4.0])
        order = spatial_sort(vals)
        assert np.array_equal(vals[order], np.sort(vals))

    def test_improves_prunability_on_shuffled_clusters(self):
        pts = gaussian_clusters(
            800, dims=3, n_clusters=6, box=60.0, spread=0.25, seed=3
        )
        problem = apps.pcf.make_problem(1.0)
        before = prune_stats(pts, 64, problem)
        after = prune_stats(pts[spatial_sort(pts)], 64, problem)
        assert after.tiles_pruned > before.tiles_pruned
