"""Unit tests for block decomposition and pair schedules."""

import numpy as np
import pytest

from repro.core import (
    BlockDecomposition,
    cyclic_pair_list,
    cyclic_schedule,
    cyclic_trips,
    triangular_pair_mask,
    triangular_trips,
)
from repro.gpusim import LaunchConfigError


class TestBlockDecomposition:
    def test_exact_division(self):
        dec = BlockDecomposition(256, 64)
        assert dec.num_blocks == 4
        assert dec.block_range(3) == (192, 256)
        assert dec.padded_n == 256

    def test_ragged_last_block(self):
        dec = BlockDecomposition(300, 64)
        assert dec.num_blocks == 5
        assert dec.block_size_of(4) == 44
        assert dec.padded_n == 320

    def test_block_indices(self):
        dec = BlockDecomposition(100, 32)
        assert (dec.block_indices(3) == np.arange(96, 100)).all()

    def test_out_of_range_block(self):
        dec = BlockDecomposition(100, 32)
        with pytest.raises(IndexError):
            dec.block_range(4)

    def test_inter_block_pairs_upper_triangle(self):
        dec = BlockDecomposition(256, 64)
        pairs = list(dec.inter_block_pairs())
        assert len(pairs) == 6
        assert all(b < i for b, i in pairs)
        assert dec.num_inter_block_tile_loads() == 6

    def test_total_pairs(self):
        assert BlockDecomposition(300, 64).total_pairs() == 300 * 299 // 2

    def test_invalid_args(self):
        with pytest.raises(LaunchConfigError):
            BlockDecomposition(0, 64)
        with pytest.raises(LaunchConfigError):
            BlockDecomposition(10, 0)


class TestTriangularMask:
    def test_square(self):
        m = triangular_pair_mask(4)
        assert m.sum() == 6
        assert not m.diagonal().any()
        assert m[0, 3] and not m[3, 0]

    def test_rectangular(self):
        m = triangular_pair_mask(3, 5)
        assert m.shape == (3, 5)
        assert m[2, 4] and not m[2, 1]


class TestCyclicSchedule:
    @pytest.mark.parametrize("b", [4, 8, 32, 64, 256])
    def test_covers_every_pair_exactly_once(self, b):
        pairs = cyclic_pair_list(b)
        canon = {tuple(sorted(p)) for p in pairs.tolist()}
        assert len(canon) == b * (b - 1) // 2  # all pairs
        assert len(pairs) == b * (b - 1) // 2  # no duplicates

    def test_iteration_count(self):
        sched = cyclic_schedule(64)
        assert len(sched) == 32

    def test_last_iteration_half_active(self):
        sched = cyclic_schedule(8)
        last = sched[-1]
        assert (last[4:] == -1).all()
        assert (last[:4] >= 0).all()

    def test_partner_formula(self):
        sched = cyclic_schedule(8)
        # iteration j: thread t pairs with (t + j) % B
        assert (sched[0] == (np.arange(8) + 1) % 8).all()

    def test_odd_block_rejected(self):
        with pytest.raises(LaunchConfigError):
            cyclic_schedule(7)

    def test_trip_counts_match_schedule(self):
        b = 32
        trips = np.zeros(b, dtype=int)
        for partners in cyclic_schedule(b):
            trips += partners >= 0
        assert (trips == cyclic_trips(b)).all()

    def test_triangular_trips(self):
        assert (triangular_trips(4) == [3, 2, 1, 0]).all()
