"""Tests for the multi-GPU extension (the paper's Section V future work)."""

import math

import numpy as np
import pytest

from repro import apps
from repro.core import MultiGpuRunner, make_kernel, plan_shards
from repro.cpu_ref import brute
from repro.gpusim import Device

MAXD = 10.0 * math.sqrt(3.0)


class TestShardPlan:
    def test_covers_all_rows(self):
        plan = plan_shards(10_000, 4)
        assert plan.boundaries[0][0] == 0
        assert plan.boundaries[-1][1] == 10_000
        for (s1, e1), (s2, e2) in zip(plan.boundaries, plan.boundaries[1:]):
            assert e1 == s2

    def test_pairs_partition_total(self):
        n = 5000
        plan = plan_shards(n, 3)
        assert sum(plan.pairs_of(d) for d in range(3)) == n * (n - 1) // 2

    def test_balanced_by_pairs_not_rows(self):
        plan = plan_shards(100_000, 4)
        assert plan.imbalance() < 1.02
        # first stripe (heavy rows) must be shorter than the last
        first = plan.boundaries[0][1] - plan.boundaries[0][0]
        last = plan.boundaries[-1][1] - plan.boundaries[-1][0]
        assert first < last

    def test_single_device_degenerate(self):
        plan = plan_shards(100, 1)
        assert plan.boundaries == [(0, 100)]

    def test_validation(self):
        with pytest.raises(ValueError):
            plan_shards(100, 0)
        with pytest.raises(ValueError):
            plan_shards(1, 2)

    def test_more_devices_than_rows_clamps(self):
        # only rows 0..3 carry pairs (row 4 anchors none), so 10 requested
        # devices collapse to at most 4 non-empty covering stripes
        plan = plan_shards(5, 10)
        assert 1 <= plan.num_devices <= 4
        assert plan.boundaries[0][0] == 0
        assert plan.boundaries[-1][1] == 5
        for (s1, e1), (s2, e2) in zip(plan.boundaries, plan.boundaries[1:]):
            assert e1 == s2
        assert all(e > s for s, e in plan.boundaries)
        assert all(plan.pairs_of(d) > 0 for d in range(plan.num_devices))

    def test_two_points_many_devices_single_stripe(self):
        plan = plan_shards(2, 8)
        assert plan.boundaries == [(0, 2)]

    def test_rows_subrange_covers_and_partitions(self):
        n = 100
        plan = plan_shards(n, 3, rows=(20, 60))
        assert plan.boundaries[0][0] == 20
        assert plan.boundaries[-1][1] == 60
        for (s1, e1), (s2, e2) in zip(plan.boundaries, plan.boundaries[1:]):
            assert e1 == s2
        whole = int((n - 1 - np.arange(20, 60)).sum())
        assert sum(plan.pairs_of(d) for d in range(plan.num_devices)) == whole

    def test_rows_pairless_tail_single_stripe(self):
        # the last row anchors no pairs: one degenerate stripe, no devices
        plan = plan_shards(100, 4, rows=(99, 100))
        assert plan.boundaries == [(99, 100)]

    def test_rows_validation(self):
        for bad in [(-1, 5), (5, 5), (7, 3), (0, 101)]:
            with pytest.raises(ValueError):
                plan_shards(100, 2, rows=bad)


@pytest.fixture
def sdh_kernel():
    problem = apps.sdh.make_problem(64, MAXD)
    return make_kernel(problem, "register-roc", "privatized-shm", block_size=64)


class TestMultiGpuExecution:
    @pytest.mark.parametrize("devices", [1, 2, 3, 4])
    def test_sdh_matches_single_device(self, small_points, sdh_kernel, devices):
        ref, _ = sdh_kernel.execute(Device(), small_points)
        multi = MultiGpuRunner(sdh_kernel, num_devices=devices)
        out = multi.execute(small_points)
        assert np.array_equal(out.result, ref)
        assert len(out.per_device_seconds) == devices

    def test_pcf_scalar(self, small_points):
        problem = apps.pcf.make_problem(2.0)
        kernel = make_kernel(problem, "register-shm", "register", block_size=64)
        out = MultiGpuRunner(kernel, num_devices=3).execute(small_points)
        assert int(round(out.result)) == brute.pcf_count(small_points, 2.0)

    def test_kde_per_point(self, small_points):
        problem = apps.kde.make_problem(1.0)
        kernel = make_kernel(problem, "register-shm", "register", block_size=64)
        out = MultiGpuRunner(kernel, num_devices=2).execute(small_points)
        assert np.allclose(out.result, brute.kde_estimate(small_points, 1.0))

    def test_join_pairs(self, rng):
        vals = rng.uniform(0, 100, 200).reshape(-1, 1)
        problem = apps.join.make_problem(5.0, dims=1)
        kernel = make_kernel(problem, "register-shm", "global-direct", block_size=64)
        out = MultiGpuRunner(kernel, num_devices=3).execute(vals)
        got = np.sort(out.result, axis=1)
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        assert np.array_equal(got, brute.band_join(vals.ravel(), 5.0))

    def test_matrix(self, rng):
        pts = rng.normal(size=(120, 4))
        problem = apps.gram.make_problem(apps.gram.gaussian_kernel(1.0), dims=4)
        kernel = make_kernel(problem, "register-shm", "global-direct", block_size=64)
        out = MultiGpuRunner(kernel, num_devices=2).execute(pts)
        ref = brute.gram_matrix(pts, 1.0)
        np.fill_diagonal(ref, 0.0)
        assert np.allclose(out.result, ref)

    def test_topk_rejected(self):
        problem = apps.knn.make_problem(4)
        kernel = make_kernel(problem, "register-shm", "register", block_size=64)
        with pytest.raises(ValueError, match="TOPK"):
            MultiGpuRunner(kernel, num_devices=2)


class TestMultiGpuScaling:
    def test_near_linear_speedup(self, sdh_kernel):
        one = MultiGpuRunner(sdh_kernel, num_devices=1).simulate(1_000_000)
        four = MultiGpuRunner(sdh_kernel, num_devices=4).simulate(1_000_000)
        speedup = one.seconds / four.seconds
        assert 3.3 < speedup <= 4.05

    def test_transfer_term_counted(self, sdh_kernel):
        out = MultiGpuRunner(sdh_kernel, num_devices=2).simulate(1_000_000)
        assert out.transfer_seconds > 0
        assert out.seconds > max(out.per_device_seconds)

    def test_merge_term_counted(self, sdh_kernel):
        """Partial histograms must be all-reduced after the stripes finish;
        ``simulate`` used to ignore that cost entirely."""
        out = MultiGpuRunner(sdh_kernel, num_devices=4).simulate(1_000_000)
        assert out.merge_seconds > 0
        assert out.seconds == pytest.approx(
            max(out.per_device_seconds) + out.transfer_seconds
            + out.merge_seconds
        )

    def test_merge_free_on_single_device(self, sdh_kernel):
        out = MultiGpuRunner(sdh_kernel, num_devices=1).simulate(1_000_000)
        assert out.merge_seconds == 0.0

    def test_execute_prices_merge_like_simulate(self, small_points,
                                                sdh_kernel):
        """The functional path and the analytical path agree on the merge
        term for the same (n, devices) point."""
        runner = MultiGpuRunner(sdh_kernel, num_devices=3)
        executed = runner.execute(small_points)
        simulated = runner.simulate(len(small_points))
        assert executed.merge_seconds == pytest.approx(
            simulated.merge_seconds)
        assert executed.merge_seconds > 0

    def test_merge_grows_with_device_count(self, sdh_kernel):
        """A star all-reduce over the PCIe fabric serializes through the
        host: more devices means strictly more merge rounds."""
        costs = [
            MultiGpuRunner(sdh_kernel, num_devices=p)
            .simulate(1_000_000).merge_seconds
            for p in (2, 3, 4)
        ]
        assert costs[0] < costs[1] < costs[2]
