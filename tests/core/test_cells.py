"""Differential tests for the uniform-grid cell-list engine (DESIGN.md §11).

The contract under test: enabling ``cells=True`` changes *how many tiles*
the engine examines — never a single output bit.  Every test compares a
cell-list run against its tile-engine twin (same data, same kernel shape)
and demands exact equality — for histogram, scalar-sum and pair-emitting
outputs; per-point sums get the engine's usual re-association tolerance —
across execution backends, fault injection and checkpoint kill-resume.
The companion consistency checks pin the analytical model:
``traffic(n, cells=record.cells)`` must predict the cell launch's
functional counters access-for-access.

Satellite regressions ride along: the RDF top-bucket clamp (a
beyond-``r_max`` pair reached through a corner neighbor must land in the
dropped overflow bucket, and an under-covering cutoff must be refused at
construction), and periodic minimum image (wrap-around pairs must be
found; axis-aligned tile bounds are provably contradicted under a
periodic metric, which is why a periodic problem may not carry a
PruningSpec).
"""

from __future__ import annotations

import dataclasses
import os
import signal

import numpy as np
import pytest

from repro import apps
from repro.core import make_kernel, plan_kernel, run
from repro.core.bounds import (
    array_fingerprint,
    block_bounds,
    spatial_sort,
    tile_distance_bounds,
)
from repro.core.cells import (
    CellStats,
    cell_stats,
    cells_eligible,
    cells_worthwhile,
    get_cell_index,
    merge_cell_stats,
    resolve_cells,
)
from repro.core.checkpoint import CheckpointConfig, CheckpointStore
from repro.core.problem import CellSpec, as_soa
from repro.data import gaussian_clusters, uniform_points
from repro.gpusim import Device

#: clustered, spatially sorted dataset spanning many 64-point blocks in a
#: box much wider than the cutoffs below, so most cell pairs are
#: non-adjacent and the grid actually skips work
N_CLUSTERED = 1600
BLOCK = 64
BOX = 60.0


@pytest.fixture(scope="module")
def clustered_points():
    pts = gaussian_clusters(
        N_CLUSTERED, dims=3, n_clusters=8, box=BOX, spread=0.4, seed=42
    )
    return pts[spatial_sort(pts)]


@pytest.fixture(scope="module")
def uniform_pts():
    return uniform_points(1200, dims=3, box=BOX, seed=9)


def _sdh_problem(bins=32, maxd=8.0):
    """SDH whose histogram range equals the cell cutoff: every
    beyond-cutoff pair clamps into the (one) top bucket."""
    return apps.sdh.make_problem(bins, maxd, cell_cutoff=maxd)


def _run_pair(problem, inp, out, points, block_size=BLOCK, **kw):
    """Execute the tile-engine and cell-engine twins; returns both
    results and both launch records."""
    base = make_kernel(problem, inp, out, block_size=block_size)
    celled = make_kernel(problem, inp, out, block_size=block_size, cells=True)
    res_b, rec_b = base.execute(Device(), points, **kw)
    res_c, rec_c = celled.execute(Device(), points, **kw)
    return res_b, res_c, rec_b, rec_c


class TestBitIdentity:
    """Cell-engine output == tile-engine output, bit for bit."""

    def test_sdh_histogram_clamp(self, clustered_points):
        hist, hist_c, rec_b, rec_c = _run_pair(
            _sdh_problem(), "register-roc", "privatized-shm", clustered_points
        )
        assert np.array_equal(hist, hist_c)
        assert rec_b.cells is None
        assert isinstance(rec_c.cells, CellStats)
        assert rec_c.cells.pairs_skipped > 0
        assert rec_c.cells.residual_folds > 0  # clamp folds happened
        # histogram mass is preserved exactly by the residual folds
        n = len(clustered_points)
        assert hist_c.sum() == n * (n - 1) // 2

    def test_sdh_global_atomic_output(self, clustered_points):
        hist, hist_c, _, _ = _run_pair(
            _sdh_problem(), "register-shm", "global-atomic", clustered_points
        )
        assert np.array_equal(hist, hist_c)

    def test_pcf_count(self, clustered_points):
        problem = apps.pcf.make_problem(2.0)
        cnt, cnt_c, _, rec_c = _run_pair(
            problem, "register-shm", "register", clustered_points
        )
        assert cnt == cnt_c
        assert rec_c.cells.tiles_skipped > 0
        assert rec_c.cells.residual_folds == 0  # beyond="zero": no folds

    def test_rdf_curve(self, clustered_points):
        r, g, res = apps.rdf.compute(
            clustered_points, 24, 6.0, box_volume=BOX**3
        )
        r_c, g_c, res_c = apps.rdf.compute(
            clustered_points, 24, 6.0, box_volume=BOX**3, cells="force"
        )
        assert np.array_equal(r, r_c)
        assert np.array_equal(g, g_c)
        assert res_c.record.cells.pairs_skipped > 0
        assert "+cells" in res_c.kernel.name

    def test_join_pair_set(self, clustered_points):
        pts = clustered_points[:600]
        problem = apps.join.make_problem(1.5, dims=3)
        base = make_kernel(problem, "register-shm", "global-direct",
                           block_size=BLOCK)
        celled = make_kernel(problem, "register-shm", "global-direct",
                             block_size=BLOCK, cells=True)
        pairs, _ = apps.join.spatial_join(pts, 1.5, kernel=base)
        pairs_c, res_c = apps.join.spatial_join(pts, 1.5, kernel=celled)
        assert np.array_equal(pairs, pairs_c)
        assert res_c.record.cells.tiles_skipped > 0

    def test_kde_allclose_and_internally_exact(self):
        # per-point sums re-associate when tiles are regrouped, so the
        # cell engine gets the same allclose bar the batched engine gets
        # against the tile engine — but within the cell engine the result
        # is one canonical float ordering, identical across backends
        pts = gaussian_clusters(
            800, dims=3, n_clusters=4, box=200.0, spread=0.2, seed=7
        )
        pts = pts[spatial_sort(pts)]
        dens, _ = apps.kde.density(pts, bandwidth=0.05)
        dens_c, res_c = apps.kde.density(pts, bandwidth=0.05, cells="force")
        np.testing.assert_allclose(dens_c, dens, rtol=1e-12)
        assert res_c.record.cells.pairs_skipped > 0

    def test_uniform_dense_still_identical(self):
        """One occupied cell is the degenerate case — still exact."""
        pts = uniform_points(500, dims=3, box=4.0, seed=0)
        problem = _sdh_problem(bins=64, maxd=4.0 * np.sqrt(3.0))
        hist, hist_c, _, rec_c = _run_pair(
            problem, "register-roc", "privatized-shm", pts
        )
        assert np.array_equal(hist, hist_c)
        assert rec_c.cells.tiles_skipped == 0

    def test_cells_compose_with_prune(self, clustered_points):
        """+prune+cells: bounds pruning classifies the surviving
        adjacency tiles; output stays exact."""
        problem = _sdh_problem()
        base = make_kernel(problem, "register-roc", "privatized-shm",
                           block_size=BLOCK)
        both = make_kernel(problem, "register-roc", "privatized-shm",
                           block_size=BLOCK, prune=True, cells=True)
        assert "+prune+cells" in both.name
        hist, _ = base.execute(Device(), clustered_points)
        hist_b, rec_b = both.execute(Device(), clustered_points)
        assert np.array_equal(hist, hist_b)
        assert rec_b.cells is not None and rec_b.prune is not None


class TestBackends:
    """One canonical answer across every host execution engine."""

    BACKENDS = ("sequential", "threads", "processes", "megabatch")

    @pytest.fixture(scope="class")
    def reference(self, clustered_points):
        problem = _sdh_problem()
        kernel = make_kernel(problem, "register-roc", "privatized-shm",
                             block_size=BLOCK, cells=True)
        res = run(problem, clustered_points, kernel=kernel,
                  backend="sequential", trace=True)
        return problem, res

    @pytest.mark.parametrize("backend", BACKENDS[1:])
    def test_backend_identity(self, backend, clustered_points, reference):
        problem, ref = reference
        kernel = make_kernel(problem, "register-roc", "privatized-shm",
                             block_size=BLOCK, cells=True)
        res = run(problem, clustered_points, kernel=kernel,
                  backend=backend, workers=2, trace=True)
        assert np.array_equal(res.result, ref.result)
        assert res.record.counters == ref.record.counters
        assert res.record.cells == ref.record.cells

    def test_trace_deterministic(self, clustered_points, reference):
        problem, ref = reference
        kernel = make_kernel(problem, "register-roc", "privatized-shm",
                             block_size=BLOCK, cells=True)
        again = run(problem, clustered_points, kernel=kernel,
                    backend="sequential", trace=True)
        assert again.trace.chrome_json() == ref.trace.chrome_json()
        # the cell-index build is a first-class span
        assert ref.trace.find("cell-index")

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_workers(self, clustered_points, workers):
        hist, hist_c, _, _ = _run_pair(
            _sdh_problem(), "register-roc", "privatized-shm",
            clustered_points, workers=workers,
        )
        assert np.array_equal(hist, hist_c)

    @pytest.mark.parametrize("batch_tiles", [1, 3, 8])
    def test_tile_batching(self, clustered_points, batch_tiles):
        problem = apps.pcf.make_problem(2.0)
        cnt, cnt_c, _, _ = _run_pair(
            problem, "register-shm", "register", clustered_points,
            batch_tiles=batch_tiles,
        )
        assert cnt == cnt_c

    def test_blocks_stripes_merge(self, clustered_points):
        """Disjoint blocks= stripes of a cell run merge to the full
        result, and the per-stripe CellStats merge to the full stats."""
        problem = _sdh_problem()
        kernel = make_kernel(problem, "register-roc", "privatized-shm",
                             block_size=BLOCK, cells=True)
        full, rec_full = kernel.execute(Device(), clustered_points)
        m = (len(clustered_points) + BLOCK - 1) // BLOCK
        half = m // 2
        merged, parts = None, []
        for stripe in (range(half), range(half, m)):
            part, rec = kernel.execute(
                Device(), clustered_points, blocks=list(stripe)
            )
            merged = part if merged is None else merged + part
            parts.append(rec.cells)
            # the record's stats cover exactly this stripe's anchors
            assert rec.cells == cell_stats(
                clustered_points, BLOCK, problem, anchors=list(stripe)
            )
        assert np.array_equal(merged, full)
        assert merge_cell_stats(parts) == rec_full.cells


class TestFaultsAndResume:
    """Cell runs survive the chaos plan and kill-resume bit-identically."""

    def test_fault_injection_recovers_exact(self, clustered_points):
        problem = _sdh_problem()
        kernel = make_kernel(problem, "register-roc", "privatized-shm",
                             block_size=BLOCK, cells=True)
        clean = run(problem, clustered_points, kernel=kernel, workers=2)
        faulty = run(problem, clustered_points, kernel=kernel, workers=2,
                     faults=7, retries=3)
        assert np.array_equal(clean.result, faulty.result)
        assert faulty.resilience is not None
        assert faulty.record.cells == clean.record.cells

    @pytest.mark.parametrize("backend", ["sequential", "processes"])
    def test_kill_and_resume_differential(self, backend, clustered_points,
                                          tmp_path):
        problem = _sdh_problem()

        def _go(store, after_chunk=None, resume=False):
            kernel = make_kernel(problem, "register-roc", "privatized-shm",
                                 block_size=BLOCK, cells=True)
            return run(
                problem, clustered_points, kernel=kernel, trace=True,
                backend=backend, workers=2, resume=resume,
                checkpoint_dir=CheckpointConfig(
                    store, every=4, after_chunk=after_chunk
                ),
            )

        clean = _go(tmp_path / "clean")

        def killer(index, entry):
            if index == 1:
                os.kill(os.getpid(), signal.SIGKILL)

        pid = os.fork()
        if pid == 0:  # pragma: no cover - child is SIGKILLed mid-run
            try:
                _go(tmp_path / "kill", after_chunk=killer)
            finally:
                os._exit(1)
        _, status = os.waitpid(pid, 0)
        assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
        assert CheckpointStore(tmp_path / "kill").exists()

        resumed = _go(tmp_path / "kill", resume=True)
        assert np.array_equal(clean.result, resumed.result)
        assert clean.record.counters == resumed.record.counters
        assert clean.record.cells == resumed.record.cells
        assert clean.trace.chrome_json() == resumed.trace.chrome_json()


class TestWorkReduction:
    """The grid must actually remove work on spread-out data."""

    def test_strictly_fewer_pair_evaluations(self, clustered_points):
        from repro.gpusim import MemSpace

        _, _, rec_b, rec_c = _run_pair(
            _sdh_problem(), "register-roc", "privatized-shm", clustered_points
        )

        def evals(rec):
            c = rec.counters
            return c.reads[MemSpace.ROC] + c.reads[MemSpace.SHARED]

        assert evals(rec_c) < evals(rec_b)
        # the counter delta is exactly dims * skipped pair population
        assert evals(rec_b) - evals(rec_c) == 3 * rec_c.cells.pairs_skipped

    def test_stats_match_pure_prediction(self, clustered_points):
        """Launch-recorded stats equal what cell_stats() predicts from
        the data alone (adjacency is execution-independent)."""
        problem = _sdh_problem()
        _, _, _, rec_c = _run_pair(
            problem, "register-roc", "privatized-shm", clustered_points
        )
        assert rec_c.cells == cell_stats(clustered_points, BLOCK, problem)

    def test_examined_fraction_shrinks_with_box(self):
        """Same n, bigger box: density falls, examined fraction falls."""
        problem = apps.pcf.make_problem(2.0)
        fracs = []
        for box in (20.0, 80.0):
            pts = uniform_points(1000, dims=3, box=box, seed=3)
            fracs.append(
                cell_stats(pts, BLOCK, problem).examined_fraction
            )
        assert fracs[1] < fracs[0]


class TestModelConsistency:
    """traffic(n, cells=stats) predicts the functional counters."""

    @pytest.mark.parametrize(
        "inp,out",
        [
            ("register-roc", "privatized-shm"),
            ("register-shm", "global-atomic"),
            ("register-shm", "register"),
            ("register-shm", "global-direct"),
        ],
    )
    def test_counter_agreement(self, clustered_points, inp, out):
        if out == "register":
            problem = apps.pcf.make_problem(2.0)
        elif out == "global-direct":
            problem = apps.join.make_problem(1.5, dims=3)
        else:
            problem = _sdh_problem()
        kernel = make_kernel(problem, inp, out, block_size=BLOCK, cells=True)
        dev = Device()
        kernel.execute(dev, clustered_points)
        rec = dev.launches[0]
        got = rec.counters.as_dict()
        want = kernel.traffic(
            len(clustered_points), cells=rec.cells
        ).expected_counters().as_dict()
        if out == "global-direct":
            # emitted-pair writes are selectivity-expected, not exact
            # (true of the tile engine too); the per-examined-tile ticket
            # atomics are the part the cell engine must predict exactly
            got.pop("writes"), want.pop("writes")
        assert got == want

    def test_simulate_reports_cell_extras(self, clustered_points):
        problem = _sdh_problem()
        kernel = make_kernel(problem, "register-roc", "privatized-shm",
                             block_size=BLOCK, cells=True)
        _, rec = kernel.execute(Device(), clustered_points)
        report = kernel.simulate(len(clustered_points), cells=rec.cells)
        assert report.extras["cells_pairs_skipped"] == rec.cells.pairs_skipped
        assert report.extras["cells_tiles_skipped"] == rec.cells.tiles_skipped
        # skipping most tiles must beat the full-tiling prediction
        base = make_kernel(problem, "register-roc", "privatized-shm",
                           block_size=BLOCK)
        assert report.seconds < base.simulate(len(clustered_points)).seconds


class TestPeriodic:
    """Minimum-image wrapping: cell adjacency wraps at the box faces."""

    L = 40.0

    @pytest.fixture(scope="class")
    def periodic_pts(self):
        # 13^3 wrapped cells at cutoff 3: blocks are Morton-compact, so
        # far block pairs actually fall outside the wrapped adjacency
        rng = np.random.default_rng(11)
        pts = rng.uniform(0.0, self.L, size=(1500, 3))
        # pin pairs hugging opposite faces: within cutoff only by wrapping
        pts[:10, 0] = rng.uniform(0.0, 0.2, size=10)
        pts[10:20, 0] = rng.uniform(self.L - 0.2, self.L, size=10)
        return pts

    def _brute_hist(self, pts, bins, maxd):
        delta = pts[:, None, :] - pts[None, :, :]
        delta -= self.L * np.round(delta / self.L)
        d = np.sqrt((delta**2).sum(axis=-1))
        iu = np.triu_indices(len(pts), k=1)
        width = maxd / bins
        idx = np.minimum((d[iu] / width).astype(np.int64), bins - 1)
        return np.bincount(idx, minlength=bins)

    def test_matches_brute_force_minimum_image(self, periodic_pts):
        bins, maxd = 16, 3.0
        problem = apps.sdh.make_problem(
            bins, maxd, cell_cutoff=maxd, periodic_box=self.L
        )
        kernel = make_kernel(problem, "register-roc", "privatized-shm",
                             block_size=BLOCK, cells=True)
        hist, rec = kernel.execute(Device(), periodic_pts)
        assert np.array_equal(hist, self._brute_hist(periodic_pts, bins, maxd))
        assert rec.cells.pairs_skipped > 0

    def test_wrap_pairs_found(self, periodic_pts):
        """The pinned face-hugging pairs are < cutoff only through the
        boundary; a non-wrapping engine would misplace them."""
        bins, maxd = 16, 3.0
        problem = apps.sdh.make_problem(
            bins, maxd, cell_cutoff=maxd, periodic_box=self.L
        )
        kernel = make_kernel(problem, "register-roc", "privatized-shm",
                             block_size=BLOCK, cells=True)
        hist, _ = kernel.execute(Device(), periodic_pts)
        # same data, non-periodic declaration: strictly more mass lands
        # in the clamped top bucket (the wrap pairs read as far apart)
        flat = apps.sdh.make_problem(bins, maxd, cell_cutoff=maxd)
        kernel_f = make_kernel(flat, "register-roc", "privatized-shm",
                               block_size=BLOCK, cells=True)
        hist_f, _ = kernel_f.execute(Device(), periodic_pts)
        assert hist_f[-1] > hist[-1]
        assert hist[: bins - 1].sum() > hist_f[: bins - 1].sum()

    def test_tile_engine_agrees_under_periodic_metric(self, periodic_pts):
        """Both engines evaluate the same minimum-image pair function;
        only the adjacency certificate differs."""
        problem = apps.sdh.make_problem(
            16, 3.0, cell_cutoff=3.0, periodic_box=self.L
        )
        hist, hist_c, _, _ = _run_pair(
            problem, "register-roc", "privatized-shm", periodic_pts
        )
        assert np.array_equal(hist, hist_c)

    def test_periodic_box_forbids_pruning_spec(self):
        with pytest.raises(ValueError, match="periodic"):
            dataclasses.replace(
                apps.pcf.make_problem(2.0),
                cells=CellSpec(cutoff=2.0, beyond="zero", box=self.L),
            )

    def test_axis_aligned_bounds_contradicted_by_wrapping(self, periodic_pts):
        """Why the guard above exists: the non-periodic tile bound
        certifies the face-hugging blocks as beyond-cutoff, but their
        minimum-image distance is inside it — a pruning skip would be
        wrong.  tile_distance_bounds must never be consulted under a
        periodic metric."""
        soa = as_soa(periodic_pts[:20])  # the two pinned face groups
        lo, hi = block_bounds(soa, 10)
        dmin, _ = tile_distance_bounds(lo, hi, 0)
        delta = periodic_pts[0] - periodic_pts[10]
        delta -= self.L * np.round(delta / self.L)
        wrapped = float(np.sqrt((delta**2).sum()))
        assert dmin[1] > wrapped  # the certificate lies under wrapping


class TestClampRegression:
    """Satellite: the RDF overflow bucket vs the cell cutoff."""

    def test_corner_neighbor_beyond_rmax_lands_in_clamp(self):
        """A pair beyond r_max whose cells are corner-adjacent IS
        examined (partner tiles run in full) and must land in the
        dropped overflow bucket — not in any analyzed bin."""
        r_max, bins = 1.0, 4
        # two points along a cell diagonal: distance 1.2 * r_max, but
        # their cells share a corner, so the tile is examined
        probe = np.array([
            [0.9, 0.9, 0.9],
            [0.9 + 1.2 / np.sqrt(3.0)] * 3,
        ])
        rng = np.random.default_rng(5)
        pts = np.vstack([probe, rng.uniform(0.0, 10.0, size=(2000, 3))])
        r, g, res = apps.rdf.compute(pts, bins, r_max, box_volume=1000.0)
        r_c, g_c, res_c = apps.rdf.compute(
            pts, bins, r_max, box_volume=1000.0, cells="force"
        )
        assert np.array_equal(g, g_c)
        st = res_c.record.cells
        # every inter-block pair is accounted for, examined or skipped
        assert st.tiles_examined > 0 and st.pairs_skipped > 0
        assert st.pairs_examined + st.pairs_skipped == st.pairs

    def test_under_covering_cutoff_refused(self):
        """A cell cutoff that does not cover the histogram range would
        scatter beyond-cutoff pairs across several buckets — the kernel
        must refuse it at construction, not mis-bin at runtime."""
        problem = apps.sdh.make_problem(32, 10.0, cell_cutoff=3.0)
        with pytest.raises(ValueError, match="does not cover"):
            make_kernel(problem, "register-roc", "privatized-shm", cells=True)

    def test_rdf_extra_bucket_covers_exactly(self):
        """rdf.compute's bins+1 / r_max+width construction keeps the
        clamp bin valid: probing distances beyond r_max all map to the
        (dropped) overflow bucket."""
        problem = apps.sdh.make_problem(
            25, 5.0 + 0.2, cell_cutoff=5.0
        )  # what rdf.compute(bins=25-1=24... ) builds, spelled out
        kernel = make_kernel(
            problem, "register-roc", "privatized-shm", cells=True
        )
        assert kernel is not None


class TestGuardsAndSelection:
    def test_cells_without_spec_raises(self):
        problem = dataclasses.replace(apps.pcf.make_problem(2.0), cells=None)
        with pytest.raises(ValueError, match="no CellSpec"):
            make_kernel(problem, "register-shm", "register", cells=True)

    def test_unsupported_kind_raises(self):
        problem = apps.knn.make_problem(4)
        problem = dataclasses.replace(
            problem, cells=CellSpec(cutoff=1.0, beyond="zero")
        )
        with pytest.raises(ValueError):
            make_kernel(problem, "register-shm", "register", cells=True)

    def test_run_force_on_ineligible_raises(self, uniform_pts):
        problem = dataclasses.replace(apps.pcf.make_problem(2.0), cells=None)
        with pytest.raises(ValueError):
            run(problem, uniform_pts, cells="force")

    def test_run_off_never_engages(self, uniform_pts):
        problem = apps.pcf.make_problem(2.0)
        res = run(problem, uniform_pts, cells="off")
        assert not res.kernel.cells
        assert res.record.cells is None

    def test_run_auto_engages_when_worthwhile(self, clustered_points):
        problem = apps.pcf.make_problem(2.0)
        res = run(problem, clustered_points, cells="auto")
        assert res.kernel.cells  # sparse box: grid predicted a win
        assert res.manifest["cells"] is True

    def test_run_auto_declines_dense_data(self):
        pts = uniform_points(400, dims=3, box=2.0, seed=1)
        problem = apps.pcf.make_problem(2.0)  # cutoff spans the box
        res = run(problem, pts, cells="auto")
        assert not res.kernel.cells
        assert res.record.cells is None

    def test_resolve_cells_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_CELLS", raising=False)
        assert resolve_cells(None) is False
        monkeypatch.setenv("REPRO_SIM_CELLS", "on")
        assert resolve_cells(None) == "auto"
        monkeypatch.setenv("REPRO_SIM_CELLS", "force")
        assert resolve_cells(None) == "force"
        assert resolve_cells("off") is False
        assert resolve_cells(True) == "auto"
        with pytest.raises(ValueError, match="off/on/auto/force"):
            resolve_cells("banana")

    def test_kernel_name_tagged(self):
        problem = apps.pcf.make_problem(1.0)
        kernel = make_kernel(problem, "register-shm", "register", cells=True)
        assert kernel.name.endswith("+cells")

    def test_eligibility_reasons(self):
        ok, why = cells_eligible(apps.pcf.make_problem(1.0))
        assert ok
        ok, why = cells_eligible(
            dataclasses.replace(apps.pcf.make_problem(1.0), cells=None)
        )
        assert not ok and "no CellSpec" in why


class TestMemoization:
    """Satellite: geometry built once per (dataset, block size, spec)."""

    def test_cell_index_memoized(self, clustered_points):
        spec = apps.pcf.make_problem(2.0).cells
        soa = as_soa(clustered_points)
        a = get_cell_index(soa, BLOCK, spec)
        b = get_cell_index(soa, BLOCK, spec)
        assert a is b
        # a different spec is a different index
        c = get_cell_index(
            soa, BLOCK, dataclasses.replace(spec, cutoff=3.0)
        )
        assert c is not a

    def test_block_bounds_memoized(self, clustered_points):
        soa = as_soa(clustered_points)
        la, ha = block_bounds(soa, BLOCK)
        lb, hb = block_bounds(soa, BLOCK)
        assert la is lb and ha is hb
        assert not la.flags.writeable

    def test_spatial_sort_memoized(self, clustered_points):
        a = spatial_sort(clustered_points)
        b = spatial_sort(clustered_points)
        assert a is b

    def test_fingerprint_tracks_content(self, clustered_points):
        fp = array_fingerprint(clustered_points)
        assert fp == array_fingerprint(clustered_points.copy())
        bumped = clustered_points.copy()
        bumped[0, 0] += 1.0
        assert fp != array_fingerprint(bumped)


class TestPlanner:
    def test_planner_prices_cell_candidates(self, clustered_points):
        problem = _sdh_problem()
        plan = plan_kernel(problem, len(clustered_points),
                           points=clustered_points)
        labels = [c.label for c in plan.ranking]
        assert any("+cells" in lbl for lbl in labels)
        best = plan.ranking[0]
        if best.kernel.cells:
            assert best.cells is not None and best.cells.pairs_skipped > 0

    def test_planner_without_points_has_no_cell_candidates(self):
        plan = plan_kernel(_sdh_problem(), 1024)
        assert not any("+cells" in c.label for c in plan.ranking)

    def test_worthwhile_heuristic_shape(self, clustered_points):
        st = cell_stats(clustered_points, BLOCK, apps.pcf.make_problem(2.0))
        assert cells_worthwhile(st)
        dense = cell_stats(
            uniform_points(300, dims=3, box=2.0, seed=2),
            BLOCK, apps.pcf.make_problem(2.0),
        )
        assert not cells_worthwhile(dense)
