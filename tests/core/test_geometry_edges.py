"""Edge-case tests for ``compute_geometry`` against brute-force tile
enumeration (satellite of the bounds-pruning PR: the pruned effective
geometry subtracts from these counts, so the base counts must be exact
in every degenerate shape — block_size > n, n == 1, ragged tails of 1).
"""

import pytest

from repro.core.kernels.base import block_sizes, compute_geometry


def brute_geometry(n: int, block_size: int, full_rows: bool):
    """Enumerate every (anchor, partner) tile the engine would visit."""
    sizes = [
        min(block_size, n - s) for s in range(0, n, block_size)
    ] or [0]
    m = len(sizes)
    inter = intra = tiles = 0
    for b in range(m):
        for r in range(m):
            if r == b:
                if full_rows:
                    intra += sizes[b] * (sizes[b] - 1)
                else:
                    intra += sizes[b] * (sizes[b] - 1) // 2
            elif full_rows or r > b:
                inter += sizes[b] * sizes[r]
                tiles += sizes[r]
    return inter, intra, tiles, m


CASES = [
    (1, 64),      # single point: no pairs at all
    (1, 1),       # single point, single-point blocks
    (2, 64),      # one tiny block
    (40, 64),     # block_size > n
    (64, 64),     # exactly one full block
    (65, 64),     # ragged tail of exactly 1
    (129, 64),    # two full blocks + tail of 1
    (129, 128),
    (7, 2),       # many blocks, tail of 1
    (300, 64),    # the suite's standard ragged shape
    (256, 32),    # aligned, many blocks
]


@pytest.mark.parametrize("n,block_size", CASES)
@pytest.mark.parametrize("full_rows", [False, True])
def test_matches_brute_force(n, block_size, full_rows):
    geom = compute_geometry(n, block_size, full_rows)
    inter, intra, tiles, m = brute_geometry(n, block_size, full_rows)
    assert geom.inter_pairs == inter
    assert geom.intra_pairs == intra
    assert geom.tile_loads_points == tiles
    assert geom.num_blocks == m
    # the two pair populations partition all ordered/unordered pairs
    total = n * (n - 1) if full_rows else n * (n - 1) // 2
    assert geom.pairs == total


@pytest.mark.parametrize("n,block_size", CASES)
def test_block_sizes_partition_n(n, block_size):
    sizes = block_sizes(n, block_size)
    assert sizes.sum() == n
    assert (sizes > 0).all()
    assert (sizes[:-1] == block_size).all()  # only the tail may be ragged


def test_single_point_has_no_pairs():
    for full in (False, True):
        geom = compute_geometry(1, 64, full)
        assert geom.pairs == 0
        assert geom.tile_loads_points == 0
        assert geom.num_blocks == 1


def test_block_larger_than_n_is_one_block():
    geom = compute_geometry(40, 64, False)
    assert geom.num_blocks == 1
    assert geom.inter_pairs == 0
    assert geom.intra_pairs == 40 * 39 // 2
    assert geom.tile_loads_points == 0
