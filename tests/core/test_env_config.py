"""Tests for the engine environment overrides.

``REPRO_SIM_TILE_BATCH`` (from the pruning PR: the parse moved into a
memoized helper and malformed values raise a named error instead of a
bare ``int()`` ValueError), ``REPRO_SIM_WORKERS`` (same treatment) and
``REPRO_SIM_BACKEND`` (execution backend selection).
"""

import numpy as np
import pytest

from repro import apps
from repro.core.cluster import (
    CLUSTER_ENV,
    ClusterSpec,
    DEFAULT_NODES,
    NODES_ENV,
    TOPOLOGIES,
    _cluster_from_env,
    _nodes_from_env,
    resolve_cluster,
)
from repro.core.kernels.base import TILE_BATCH_ENV, _tile_batch_from_env
from repro.gpusim import BACKEND_ENV, BACKENDS, Device, WORKERS_ENV
from repro.gpusim.parallel import (
    _workers_from_env,
    resolve_backend,
    resolve_workers,
)


def _kernel():
    problem = apps.pcf.make_problem(2.0)
    return apps.pcf.default_kernel(problem, block_size=64)


class TestParseHelper:
    def test_unset_means_auto(self, monkeypatch):
        monkeypatch.delenv(TILE_BATCH_ENV, raising=False)
        assert _tile_batch_from_env() is None

    @pytest.mark.parametrize("raw", ["auto", "AUTO", "  auto  ", ""])
    def test_auto_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(TILE_BATCH_ENV, raw)
        assert _tile_batch_from_env() is None

    def test_positive_integer(self, monkeypatch):
        monkeypatch.setenv(TILE_BATCH_ENV, "7")
        assert _tile_batch_from_env() == 7

    @pytest.mark.parametrize("raw", ["fast", "3.5", "1e3", "batch=4"])
    def test_malformed_names_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv(TILE_BATCH_ENV, raw)
        with pytest.raises(ValueError) as exc:
            _tile_batch_from_env()
        msg = str(exc.value)
        assert TILE_BATCH_ENV in msg and "auto" in msg and raw in msg

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_non_positive_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(TILE_BATCH_ENV, raw)
        with pytest.raises(ValueError, match=TILE_BATCH_ENV):
            _tile_batch_from_env()

    def test_memoization_tracks_changes(self, monkeypatch):
        """The cache is keyed on the raw string, so monkeypatched changes
        are picked up immediately — no stale value survives."""
        monkeypatch.setenv(TILE_BATCH_ENV, "3")
        assert _tile_batch_from_env() == 3
        assert _tile_batch_from_env() == 3  # cached hit
        monkeypatch.setenv(TILE_BATCH_ENV, "5")
        assert _tile_batch_from_env() == 5
        monkeypatch.delenv(TILE_BATCH_ENV)
        assert _tile_batch_from_env() is None


class TestEngineUsesEnv:
    def test_env_batch_matches_explicit(self, monkeypatch, small_points):
        kernel = _kernel()
        res_explicit, _ = kernel.execute(Device(), small_points, batch_tiles=3)
        monkeypatch.setenv(TILE_BATCH_ENV, "3")
        res_env, _ = kernel.execute(Device(), small_points)
        assert np.array_equal(res_explicit, res_env)

    def test_malformed_env_fails_at_launch(self, monkeypatch, small_points):
        monkeypatch.setenv(TILE_BATCH_ENV, "fast")
        with pytest.raises(ValueError, match=TILE_BATCH_ENV):
            _kernel().execute(Device(), small_points)


class TestWorkersEnv:
    def test_unset_means_default_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert _workers_from_env() is None
        assert resolve_workers(None, 16) == 1

    @pytest.mark.parametrize("raw", ["auto", "AUTO", " auto "])
    def test_auto_means_per_core(self, monkeypatch, raw):
        monkeypatch.setenv(WORKERS_ENV, raw)
        assert _workers_from_env() == 0
        assert resolve_workers(None, 16) >= 1

    def test_explicit_count_clamped_to_grid(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "3")
        assert resolve_workers(None, 16) == 3
        assert resolve_workers(None, 2) == 2

    @pytest.mark.parametrize("raw", ["fast", "3.5", "two", "-2"])
    def test_malformed_names_the_variable(self, monkeypatch, raw):
        """The historical failure mode was a bare ``int()`` ValueError (or
        silently treating a negative as valid); both now raise an error
        naming the variable, the offending value and the accepted forms."""
        monkeypatch.setenv(WORKERS_ENV, raw)
        with pytest.raises(ValueError) as exc:
            _workers_from_env()
        msg = str(exc.value)
        assert WORKERS_ENV in msg and "auto" in msg and raw in msg

    def test_memoization_tracks_changes(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "2")
        assert _workers_from_env() == 2
        assert _workers_from_env() == 2  # cached hit
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert _workers_from_env() == 4
        monkeypatch.delenv(WORKERS_ENV)
        assert _workers_from_env() is None

    def test_malformed_env_fails_at_launch(self, monkeypatch, small_points):
        monkeypatch.setenv(WORKERS_ENV, "many")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            _kernel().execute(Device(), small_points)


class TestClusterEnv:
    def test_unset_means_off(self, monkeypatch):
        monkeypatch.delenv(CLUSTER_ENV, raising=False)
        monkeypatch.delenv(NODES_ENV, raising=False)
        assert _cluster_from_env() is None
        assert resolve_cluster(None) is None

    @pytest.mark.parametrize("raw", ["", "0", "off", "FALSE", " no "])
    def test_off_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(CLUSTER_ENV, raw)
        assert _cluster_from_env() is None

    @pytest.mark.parametrize("raw", ["1", "on", "AUTO", " true ", "yes"])
    def test_on_spellings_mean_ring(self, monkeypatch, raw):
        monkeypatch.setenv(CLUSTER_ENV, raw)
        assert _cluster_from_env() == "ring"

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_topology_spellings(self, monkeypatch, topology):
        monkeypatch.setenv(CLUSTER_ENV, f"  {topology.upper()} ")
        assert _cluster_from_env() == topology
        spec = resolve_cluster(None)
        assert spec is not None and spec.topology == topology
        assert spec.nodes == DEFAULT_NODES

    @pytest.mark.parametrize("raw", ["mesh", "2", "ring,tree", "fast"])
    def test_malformed_names_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv(CLUSTER_ENV, raw)
        with pytest.raises(ValueError) as exc:
            _cluster_from_env()
        msg = str(exc.value)
        assert CLUSTER_ENV in msg and raw in msg
        for topology in TOPOLOGIES:
            assert topology in msg

    def test_memoization_tracks_changes(self, monkeypatch):
        monkeypatch.setenv(CLUSTER_ENV, "ring")
        assert _cluster_from_env() == "ring"
        assert _cluster_from_env() == "ring"  # cached hit
        monkeypatch.setenv(CLUSTER_ENV, "star")
        assert _cluster_from_env() == "star"
        monkeypatch.delenv(CLUSTER_ENV)
        assert _cluster_from_env() is None

    def test_explicit_false_bypasses_env(self, monkeypatch):
        monkeypatch.setenv(CLUSTER_ENV, "ring")
        monkeypatch.setenv(NODES_ENV, "5")
        assert resolve_cluster(False) is None

    def test_explicit_spec_bypasses_env(self, monkeypatch):
        monkeypatch.setenv(CLUSTER_ENV, "star")
        spec = ClusterSpec(nodes=2, topology="tree")
        assert resolve_cluster(spec) is spec


class TestNodesEnv:
    def test_unset_means_default(self, monkeypatch):
        monkeypatch.delenv(NODES_ENV, raising=False)
        assert _nodes_from_env() is None
        spec = resolve_cluster(True)
        assert spec.nodes == DEFAULT_NODES

    def test_positive_count(self, monkeypatch):
        monkeypatch.setenv(NODES_ENV, " 6 ")
        assert _nodes_from_env() == 6
        monkeypatch.setenv(CLUSTER_ENV, "tree")
        spec = resolve_cluster(None)
        assert spec.nodes == 6 and spec.topology == "tree"

    def test_nodes_alone_enable_the_cluster(self, monkeypatch):
        monkeypatch.delenv(CLUSTER_ENV, raising=False)
        monkeypatch.setenv(NODES_ENV, "3")
        spec = resolve_cluster(None)
        assert spec is not None and spec.nodes == 3
        assert spec.topology == "ring"

    @pytest.mark.parametrize("raw", ["many", "3.5", "0", "-2"])
    def test_malformed_names_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv(NODES_ENV, raw)
        with pytest.raises(ValueError) as exc:
            _nodes_from_env()
        msg = str(exc.value)
        assert NODES_ENV in msg and raw in msg and "positive" in msg

    def test_memoization_tracks_changes(self, monkeypatch):
        monkeypatch.setenv(NODES_ENV, "2")
        assert _nodes_from_env() == 2
        assert _nodes_from_env() == 2  # cached hit
        monkeypatch.setenv(NODES_ENV, "8")
        assert _nodes_from_env() == 8
        monkeypatch.delenv(NODES_ENV)
        assert _nodes_from_env() is None

    def test_explicit_nodes_override_env(self, monkeypatch):
        monkeypatch.setenv(NODES_ENV, "8")
        assert resolve_cluster(True, nodes=2).nodes == 2
        assert resolve_cluster(3).nodes == 3


class TestBackendEnv:
    def test_unset_means_auto(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV, raising=False)
        assert resolve_backend() == "auto"

    @pytest.mark.parametrize("name", BACKENDS)
    def test_env_spellings(self, monkeypatch, name):
        monkeypatch.setenv(BACKEND_ENV, f"  {name.upper()} ")
        assert resolve_backend() == name

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "processes")
        assert resolve_backend("threads") == "threads"

    def test_malformed_env_names_the_variable(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "gpu")
        with pytest.raises(ValueError) as exc:
            resolve_backend()
        msg = str(exc.value)
        assert BACKEND_ENV in msg and "gpu" in msg
        for name in BACKENDS:
            assert name in msg

    def test_unknown_explicit_name_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            resolve_backend("cluster")

    def test_memoization_tracks_changes(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV, "threads")
        assert resolve_backend() == "threads"
        monkeypatch.setenv(BACKEND_ENV, "megabatch")
        assert resolve_backend() == "megabatch"
        monkeypatch.delenv(BACKEND_ENV)
        assert resolve_backend() == "auto"

    def test_env_backend_matches_explicit(self, monkeypatch, small_points):
        kernel = _kernel()
        res_explicit, _ = kernel.execute(
            Device(), small_points, backend="megabatch"
        )
        monkeypatch.setenv(BACKEND_ENV, "megabatch")
        res_env, _ = kernel.execute(Device(), small_points)
        assert res_explicit == res_env
