"""Tests for the ``REPRO_SIM_TILE_BATCH`` environment override (satellite
of the pruning PR: the parse moved into a memoized helper and malformed
values now raise a named error instead of a bare ``int()`` ValueError).
"""

import numpy as np
import pytest

from repro import apps
from repro.core.kernels.base import TILE_BATCH_ENV, _tile_batch_from_env
from repro.gpusim import Device


def _kernel():
    problem = apps.pcf.make_problem(2.0)
    return apps.pcf.default_kernel(problem, block_size=64)


class TestParseHelper:
    def test_unset_means_auto(self, monkeypatch):
        monkeypatch.delenv(TILE_BATCH_ENV, raising=False)
        assert _tile_batch_from_env() is None

    @pytest.mark.parametrize("raw", ["auto", "AUTO", "  auto  ", ""])
    def test_auto_spellings(self, monkeypatch, raw):
        monkeypatch.setenv(TILE_BATCH_ENV, raw)
        assert _tile_batch_from_env() is None

    def test_positive_integer(self, monkeypatch):
        monkeypatch.setenv(TILE_BATCH_ENV, "7")
        assert _tile_batch_from_env() == 7

    @pytest.mark.parametrize("raw", ["fast", "3.5", "1e3", "batch=4"])
    def test_malformed_names_the_variable(self, monkeypatch, raw):
        monkeypatch.setenv(TILE_BATCH_ENV, raw)
        with pytest.raises(ValueError) as exc:
            _tile_batch_from_env()
        msg = str(exc.value)
        assert TILE_BATCH_ENV in msg and "auto" in msg and raw in msg

    @pytest.mark.parametrize("raw", ["0", "-3"])
    def test_non_positive_rejected(self, monkeypatch, raw):
        monkeypatch.setenv(TILE_BATCH_ENV, raw)
        with pytest.raises(ValueError, match=TILE_BATCH_ENV):
            _tile_batch_from_env()

    def test_memoization_tracks_changes(self, monkeypatch):
        """The cache is keyed on the raw string, so monkeypatched changes
        are picked up immediately — no stale value survives."""
        monkeypatch.setenv(TILE_BATCH_ENV, "3")
        assert _tile_batch_from_env() == 3
        assert _tile_batch_from_env() == 3  # cached hit
        monkeypatch.setenv(TILE_BATCH_ENV, "5")
        assert _tile_batch_from_env() == 5
        monkeypatch.delenv(TILE_BATCH_ENV)
        assert _tile_batch_from_env() is None


class TestEngineUsesEnv:
    def test_env_batch_matches_explicit(self, monkeypatch, small_points):
        kernel = _kernel()
        res_explicit, _ = kernel.execute(Device(), small_points, batch_tiles=3)
        monkeypatch.setenv(TILE_BATCH_ENV, "3")
        res_env, _ = kernel.execute(Device(), small_points)
        assert np.array_equal(res_explicit, res_env)

    def test_malformed_env_fails_at_launch(self, monkeypatch, small_points):
        monkeypatch.setenv(TILE_BATCH_ENV, "fast")
        with pytest.raises(ValueError, match=TILE_BATCH_ENV):
            _kernel().execute(Device(), small_points)
