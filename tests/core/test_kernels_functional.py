"""Oracle tests: every (input x output) kernel composition produces
bit-identical results to the brute-force reference.

This is the reproduction's correctness backbone: if the tiling, the
L-overwrites-R buffer reuse, the cyclic load-balanced schedule, the
privatized histogram + reduction, or the shuffle accounting broke the
math, these tests catch it.
"""

import math

import numpy as np
import pytest

from repro import apps
from repro.core import PAPER_PCF, PAPER_SDH, make_kernel
from repro.cpu_ref import brute
from repro.gpusim import Device, GpuSimError, FERMI_M2090

MAXD = 10.0 * math.sqrt(3.0)


@pytest.fixture
def sdh_ref(small_points):
    return brute.sdh_histogram(small_points, 64, MAXD / 64)


class TestSdhKernels:
    @pytest.mark.parametrize("display,inp,out", PAPER_SDH)
    def test_matches_oracle(self, small_points, sdh_ref, display, inp, out):
        problem = apps.sdh.make_problem(64, MAXD)
        kernel = make_kernel(problem, inp, out, block_size=64, name=display)
        result, _ = kernel.execute(Device(), small_points)
        assert np.array_equal(result, sdh_ref), display

    @pytest.mark.parametrize("block_size", [32, 64, 96, 128, 256])
    def test_block_size_invariance(self, small_points, sdh_ref, block_size):
        problem = apps.sdh.make_problem(64, MAXD)
        kernel = make_kernel(
            problem, "register-shm", "privatized-shm", block_size=block_size
        )
        result, _ = kernel.execute(Device(), small_points)
        assert np.array_equal(result, sdh_ref)

    def test_load_balanced_schedule_same_result(self, small_points, sdh_ref):
        problem = apps.sdh.make_problem(64, MAXD)
        kernel = make_kernel(
            problem, "register-shm", "privatized-shm",
            block_size=64, load_balanced=True,
        )
        result, _ = kernel.execute(Device(), small_points)
        assert np.array_equal(result, sdh_ref)

    def test_load_balanced_on_aligned_block(self, aligned_points):
        problem = apps.sdh.make_problem(32, MAXD)
        ref = brute.sdh_histogram(aligned_points, 32, MAXD / 32)
        for lb in (False, True):
            kernel = make_kernel(
                problem, "register-roc", "privatized-shm",
                block_size=128, load_balanced=lb,
            )
            result, _ = kernel.execute(Device(), aligned_points)
            assert np.array_equal(result, ref)

    def test_histogram_mass_is_all_pairs(self, small_points):
        hist, _ = apps.sdh.compute(small_points, bins=50)
        n = len(small_points)
        assert hist.sum() == n * (n - 1) // 2

    def test_single_block_dataset(self):
        pts = np.random.default_rng(0).uniform(0, 10, (40, 3))
        problem = apps.sdh.make_problem(16, MAXD)
        kernel = make_kernel(problem, "register-shm", "privatized-shm", block_size=64)
        result, _ = kernel.execute(Device(), pts)
        assert np.array_equal(result, brute.sdh_histogram(pts, 16, MAXD / 16))

    def test_two_points(self):
        pts = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])
        problem = apps.sdh.make_problem(8, 8.0)
        kernel = make_kernel(problem, "naive", "global-atomic", block_size=32)
        result, _ = kernel.execute(Device(), pts)
        assert result[3] == 1 and result.sum() == 1


class TestPcfKernels:
    @pytest.mark.parametrize("display,inp,out", PAPER_PCF)
    def test_matches_oracle(self, small_points, display, inp, out):
        problem = apps.pcf.make_problem(2.0)
        kernel = make_kernel(problem, inp, out, block_size=64, name=display)
        result, _ = kernel.execute(Device(), small_points)
        assert int(round(result)) == brute.pcf_count(small_points, 2.0), display

    def test_global_atomic_scalar_output(self, small_points):
        problem = apps.pcf.make_problem(2.0)
        kernel = make_kernel(problem, "register-shm", "global-atomic", block_size=64)
        result, _ = kernel.execute(Device(), small_points)
        assert int(round(result)) == brute.pcf_count(small_points, 2.0)

    def test_zero_radius_counts_nothing(self, small_points):
        count, _ = apps.pcf.count_pairs(small_points, 1e-12)
        assert count == 0

    def test_huge_radius_counts_everything(self, small_points):
        count, _ = apps.pcf.count_pairs(small_points, 1e6)
        n = len(small_points)
        assert count == n * (n - 1) // 2


class TestShuffleGating:
    def test_shuffle_rejected_on_fermi(self, small_points):
        problem = apps.sdh.make_problem(16, MAXD)
        kernel = make_kernel(problem, "shuffle", "privatized-shm", block_size=64)
        with pytest.raises(GpuSimError, match="predates Kepler"):
            kernel.execute(Device(FERMI_M2090), small_points)


class TestValidation:
    def test_wrong_dims_rejected(self, small_points):
        problem = apps.sdh.make_problem(16, MAXD, dims=2)
        kernel = make_kernel(problem, "register-shm", "privatized-shm", block_size=64)
        with pytest.raises(ValueError, match="expects 2-d"):
            kernel.execute(Device(), small_points)

    def test_unknown_strategies(self, sdh_problem):
        with pytest.raises(KeyError, match="unknown input strategy"):
            make_kernel(sdh_problem, "warp-magic")
        with pytest.raises(KeyError, match="unknown output strategy"):
            make_kernel(sdh_problem, "naive", "telepathy")

    def test_incompatible_output_strategy(self, sdh_problem):
        # register output cannot hold a histogram
        with pytest.raises(ValueError, match="does not support"):
            make_kernel(sdh_problem, "naive", "register")

    def test_bad_block_size(self, sdh_problem):
        with pytest.raises(ValueError, match="block size"):
            make_kernel(sdh_problem, "naive", "global-atomic", block_size=0)

    def test_out_of_range_bin_raises(self, small_points):
        # a histogram map that produces an illegal bucket must fault loudly
        bad = apps.sdh.make_problem(16, 0.5)  # max distance far too small,
        # but the app clamps -- so build a deliberately broken problem:
        import dataclasses

        broken = dataclasses.replace(
            bad, output=dataclasses.replace(
                bad.output, map_fn=lambda d: (d * 100).astype(np.int64)
            )
        )
        kernel = make_kernel(broken, "naive", "global-atomic", block_size=64)
        with pytest.raises(IndexError, match="bin index"):
            kernel.execute(Device(), small_points)
