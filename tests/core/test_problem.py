"""Unit tests for problem descriptors and SoA layout."""

import numpy as np
import pytest

from repro.core import (
    EUCLIDEAN,
    OutputClass,
    OutputSpec,
    TwoBodyProblem,
    UpdateKind,
    as_aos,
    as_soa,
)


def spec(kind=UpdateKind.SCALAR_SUM, **kw):
    defaults = dict(
        klass=OutputClass.TYPE_I, kind=kind, size_fn=lambda n: 1
    )
    defaults.update(kw)
    return OutputSpec(**defaults)


def test_total_pairs():
    p = TwoBodyProblem("t", 3, EUCLIDEAN, spec())
    assert p.total_pairs(10) == 45
    assert p.total_pairs(1) == 0


def test_histogram_requires_bins():
    with pytest.raises(ValueError, match="bin count"):
        TwoBodyProblem(
            "t", 3, EUCLIDEAN, spec(UpdateKind.HISTOGRAM, klass=OutputClass.TYPE_II)
        )


def test_topk_requires_k():
    with pytest.raises(ValueError, match="positive k"):
        TwoBodyProblem("t", 3, EUCLIDEAN, spec(UpdateKind.TOPK))


def test_dims_must_be_positive():
    with pytest.raises(ValueError, match="dims"):
        TwoBodyProblem("t", 0, EUCLIDEAN, spec())


def test_output_size_fn():
    s = spec(UpdateKind.HISTOGRAM, klass=OutputClass.TYPE_II, bins=64,
             size_fn=lambda n: 64)
    assert s.size(1000) == 64


class TestSoA:
    def test_roundtrip(self, rng):
        pts = rng.normal(size=(10, 3))
        soa = as_soa(pts)
        assert soa.shape == (3, 10)
        assert np.allclose(as_aos(soa), pts)

    def test_one_dimensional_input(self):
        v = np.arange(5.0)
        soa = as_soa(v)
        assert soa.shape == (1, 5)

    def test_contiguous_per_dimension(self, rng):
        # "multiple arrays of single-dimension values" (Section IV-A):
        # each dimension's values must be contiguous for coalesced access
        soa = as_soa(rng.normal(size=(100, 3)))
        assert soa.flags["C_CONTIGUOUS"]
        assert soa[0].flags["C_CONTIGUOUS"]

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            as_soa(np.zeros((2, 3, 4)))
