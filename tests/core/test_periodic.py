"""Tests for the periodic (minimum-image) distance extension."""

import numpy as np
import pytest

from repro import apps
from repro.core import EUCLIDEAN, make_kernel, periodic_euclidean
from repro.core.problem import OutputClass, OutputSpec, TwoBodyProblem, UpdateKind
from repro.gpusim import Device


def test_wraps_across_boundary():
    fn = periodic_euclidean(10.0)
    a = np.array([[0.5, 0.5, 0.5]]).T
    b = np.array([[9.5, 0.5, 0.5]]).T
    assert fn(a, b)[0, 0] == pytest.approx(1.0)  # through the wall, not 9


def test_interior_matches_euclidean(rng):
    pts = rng.uniform(4.0, 6.0, size=(20, 3))  # far from every wall
    fn = periodic_euclidean(10.0)
    # atol covers EUCLIDEAN's dot-product cancellation on the diagonal
    assert np.allclose(fn(pts.T, pts.T), EUCLIDEAN(pts.T, pts.T), atol=1e-6)


def test_max_distance_is_half_diagonal(rng):
    fn = periodic_euclidean(10.0)
    pts = rng.uniform(0, 10, size=(50, 3))
    d = fn(pts.T, pts.T)
    assert d.max() <= np.sqrt(3) * 5.0 + 1e-9


def test_validation():
    with pytest.raises(ValueError):
        periodic_euclidean(0.0)


def test_periodic_sdh_through_kernel(rng):
    """A periodic SDH problem runs through the ordinary kernel machinery."""
    box = 10.0
    pts = rng.uniform(0, box, size=(200, 3))
    bins = 32
    width = box * np.sqrt(3) / 2 / bins
    spec = OutputSpec(
        klass=OutputClass.TYPE_II,
        kind=UpdateKind.HISTOGRAM,
        size_fn=lambda n: bins,
        map_fn=lambda d: np.minimum((d / width).astype(np.int64), bins - 1),
        bins=bins,
    )
    problem = TwoBodyProblem("periodic-sdh", 3, periodic_euclidean(box), spec)
    kernel = make_kernel(problem, "register-roc", "privatized-shm", block_size=64)
    result, _ = kernel.execute(Device(), pts)
    # brute periodic reference
    delta = pts[:, None, :] - pts[None, :, :]
    delta -= box * np.round(delta / box)
    d = np.sqrt((delta**2).sum(axis=2))
    iu = np.triu_indices(len(pts), 1)
    ref = np.bincount(
        np.minimum((d[iu] / width).astype(np.int64), bins - 1), minlength=bins
    )
    assert np.array_equal(result, ref)
    assert result.sum() == 200 * 199 // 2
