"""Tests for cross-dataset (A x B) kernels and their app wrappers."""

import math

import numpy as np
import pytest
from scipy.spatial.distance import cdist

from repro import apps, data
from repro.core import CrossKernel
from repro.gpusim import Device

MAXD = 10.0 * math.sqrt(3.0)


@pytest.fixture
def ab():
    return (
        data.uniform_points(150, 3, 10.0, seed=21),
        data.uniform_points(220, 3, 10.0, seed=22),
    )


class TestCrossKernel:
    @pytest.mark.parametrize(
        "inp", ["naive", "shm-shm", "register-shm", "register-roc"]
    )
    def test_histogram_matches_reference(self, ab, inp):
        A, B = ab
        problem = apps.sdh.make_problem(32, MAXD)
        kernel = CrossKernel(problem, inp, block_size=64)
        dev = Device()
        hist, rec = kernel.execute(dev, A, B)
        d = cdist(A, B).ravel()
        ref = np.bincount(
            np.minimum((d / (MAXD / 32)).astype(np.int64), 31), minlength=32
        )
        assert np.array_equal(hist, ref)
        assert hist.sum() == len(A) * len(B)  # every cross pair once
        got = rec.counters.as_dict()
        assert got == kernel.traffic(len(A), len(B)).expected_counters().as_dict()

    def test_scalar_sum(self, ab):
        A, B = ab
        problem = apps.pcf.make_problem(2.0)
        kernel = CrossKernel(problem, "register-roc", block_size=64)
        count, _ = kernel.execute(Device(), A, B)
        assert int(round(count)) == int((cdist(A, B) <= 2.0).sum())

    def test_matrix(self, ab):
        A, B = ab
        problem = apps.gram.make_problem(apps.gram.gaussian_kernel(1.0), dims=3)
        kernel = CrossKernel(problem, "register-shm", block_size=64)
        dev = Device()
        M, rec = kernel.execute(dev, A, B)
        assert M.shape == (150, 220)
        assert np.allclose(M, np.exp(-cdist(A, B, "sqeuclidean") / 2.0))
        got = rec.counters.as_dict()
        assert got == kernel.traffic(150, 220).expected_counters().as_dict()

    def test_topk(self, ab):
        A, B = ab
        problem = apps.knn.make_problem(5)
        kernel = CrossKernel(problem, "register-shm", block_size=64)
        (dists, ids), _ = kernel.execute(Device(), A, B)
        full = cdist(A, B)
        ref = np.sort(full, axis=1)[:, :5]
        assert np.allclose(dists, ref)
        rows = np.arange(150)[:, None]
        assert np.allclose(full[rows, ids], dists)

    def test_shuffle_not_supported(self):
        problem = apps.pcf.make_problem(1.0)
        with pytest.raises(ValueError, match="cross kernels support"):
            CrossKernel(problem, "shuffle")

    def test_dims_checked(self, ab):
        A, B = ab
        problem = apps.pcf.make_problem(1.0, dims=2)
        kernel = CrossKernel(problem)
        with pytest.raises(ValueError, match="2-d"):
            kernel.execute(Device(), A, B)

    def test_simulate_scales_with_product(self):
        problem = apps.sdh.make_problem(100, MAXD)
        kernel = CrossKernel(problem, "register-roc")
        a = kernel.simulate(100_000, 100_000).seconds
        b = kernel.simulate(200_000, 200_000).seconds
        assert b / a == pytest.approx(4.0, rel=0.1)


class TestCrossAppWrappers:
    def test_cross_band_join(self):
        va = data.join_values(120, seed=31)
        vb = data.join_values(90, seed=32)
        pairs = apps.join.cross_band_join(va, vb, 2.0)
        ii, jj = np.nonzero(np.abs(va[:, None] - vb[None, :]) <= 2.0)
        ref = np.stack([ii, jj], axis=1)
        ref = ref[np.lexsort((ref[:, 1], ref[:, 0]))]
        assert np.array_equal(pairs, ref)

    def test_knn_query(self, ab):
        A, B = ab
        d, ids = apps.knn.query(A[:40], B, k=3)
        ref = np.sort(cdist(A[:40], B), axis=1)[:, :3]
        assert np.allclose(d, ref)
        with pytest.raises(ValueError, match="corpus"):
            apps.knn.query(A, B[:2], k=3)

    def test_gram_cross(self, ab):
        A, B = ab
        M = apps.gram.cross(A[:50], B[:60], bandwidth=2.0)
        assert np.allclose(M, np.exp(-cdist(A[:50], B[:60], "sqeuclidean") / 8.0))

    def test_pcf_cross_count(self, ab):
        A, B = ab
        dr = apps.pcf.cross_count(A, B, 2.0)
        assert dr == int((cdist(A, B) <= 2.0).sum())

    def test_landy_szalay_detects_clustering(self):
        galaxies = data.galaxy_mock(500, box=50.0, seed=41)
        randoms = data.uniform_points(500, 3, 50.0, seed=42)
        xi = apps.pcf.landy_szalay(galaxies, randoms, radius=2.0)
        assert xi > 0.5
        control = data.uniform_points(500, 3, 50.0, seed=43)
        xi0 = apps.pcf.landy_szalay(control, randoms, radius=5.0)
        assert abs(xi0) < 0.3
