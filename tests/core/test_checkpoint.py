"""Checkpoint/resume differential tests (DESIGN.md Section 10).

The acceptance bar: a checkpointed run that is SIGKILLed mid-flight and
resumed produces **bit-identical** outputs, counters, prune stats,
resilience reports and exported Chrome traces to the same checkpointed
configuration run uninterrupted — across every execution backend, with
and without pruning and fault injection.  Deadline breaches and
cancellations leave valid resumable stores; mismatched or corrupted
stores are refused, never silently merged.

The kill tests fork a real child process and let ``after_chunk`` —
called only once a chunk payload and manifest are durably on disk —
SIGKILL it, so what the resume sees is a genuine torn-process store.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.apps import knn
from repro.core import ClusterSpec, RetryPolicy, make_kernel, run
from repro.core.checkpoint import (
    CheckpointConfig,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointMismatch,
    CheckpointStore,
    chunk_plan,
)
from repro.core.lifecycle import (
    CancelToken,
    Deadline,
    DeadlineExceeded,
    RunCancelled,
)

BLOCK = 32  # 300 points -> 10 anchor blocks -> 5 chunks at every=2
EVERY = 2


def _kern(problem, prune=False):
    return make_kernel(problem, "register-roc", "privatized-shm",
                       block_size=BLOCK, prune=prune)


def _run(problem, pts, *, store=None, every=EVERY, after_chunk=None,
         prune=False, faults=None, **kw):
    if store is not None:
        kw["checkpoint_dir"] = CheckpointConfig(
            store, every=every, after_chunk=after_chunk
        )
    if faults is not None:
        kw.setdefault("retries", 3)
    return run(problem, pts, kernel=_kern(problem, prune=prune),
               faults=faults, trace=True, **kw)


def _signature(res):
    """Everything the determinism contract says must match."""
    return {
        "counters": res.record.counters,
        "sync": list(res.record.sync_counts),
        "blocks": res.record.blocks_run,
        "prune": res.record.prune,
        "trace": res.trace.chrome_json(),
        "resilience": (res.resilience.to_dict()
                       if res.resilience is not None else None),
    }


def _assert_same(a, b):
    assert np.array_equal(a.result, b.result)
    sa, sb = _signature(a), _signature(b)
    assert sa["counters"] == sb["counters"]
    assert sa["sync"] == sb["sync"]
    assert sa["blocks"] == sb["blocks"]
    assert sa["prune"] == sb["prune"]
    assert sa["trace"] == sb["trace"]
    assert sa["resilience"] == sb["resilience"]


def _fork_and_kill(fn):
    """Run ``fn`` in a forked child; assert it died by SIGKILL."""
    pid = os.fork()
    if pid == 0:  # pragma: no cover - child is SIGKILLed mid-run
        try:
            fn()
        finally:
            # the child must never fall through into the pytest session
            os._exit(1)
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL


def _lifecycle_actions(res_or_report):
    report = getattr(res_or_report, "resilience", res_or_report)
    return [e.action for e in report.lifecycle]


# -- units -------------------------------------------------------------------


def test_chunk_plan_partitions_blocks():
    plan = chunk_plan(10, 4)
    assert plan == [[0, 1, 2, 3], [4, 5, 6, 7], [8, 9]]
    assert chunk_plan(3, 8) == [[0, 1, 2]]
    with pytest.raises(ValueError):
        chunk_plan(0, 4)
    with pytest.raises(ValueError):
        chunk_plan(10, 0)


def test_checkpoint_config_validation(tmp_path):
    with pytest.raises(ValueError):
        CheckpointConfig(tmp_path, every=0)
    cfg = CheckpointConfig.coerce(str(tmp_path))
    assert cfg.dir == tmp_path and cfg.every == 8
    assert CheckpointConfig.coerce(cfg) is cfg
    override = CheckpointConfig.coerce(cfg, every=3)
    assert override.every == 3 and override.dir == cfg.dir


def test_deadline_fake_clock():
    clock = [0.0]
    dl = Deadline(1.0, clock=lambda: clock[0])
    assert dl.remaining() == pytest.approx(1.0)
    assert dl.fits(0.5) and not dl.fits(1.5)
    dl.check()  # within budget
    clock[0] = 1.5
    assert dl.expired
    with pytest.raises(DeadlineExceeded):
        dl.check()
    with pytest.raises(ValueError):
        Deadline(0.0)
    assert Deadline.coerce(None) is None
    assert Deadline.coerce(dl) is dl
    assert isinstance(Deadline.coerce(2.0), Deadline)


def test_cancel_token():
    tok = CancelToken()
    assert not tok.cancelled
    tok.check()
    tok.cancel()
    assert tok.cancelled
    with pytest.raises(RunCancelled):
        tok.check()


# -- checkpointed == plain ---------------------------------------------------


@pytest.mark.parametrize("backend", ["sequential", "threads", "processes",
                                     "megabatch"])
def test_checkpointed_matches_plain(backend, sdh_problem, small_points,
                                    tmp_path):
    plain = _run(sdh_problem, small_points, backend=backend, workers=2)
    ckpt = _run(sdh_problem, small_points, store=tmp_path / "ck",
                backend=backend, workers=2)
    assert np.array_equal(plain.result, ckpt.result)
    # chunked counters differ benignly (per-chunk finalize); the outputs
    # and the pair mass they carry must not
    assert ckpt.record.blocks_run == plain.record.blocks_run


def test_idempotent_restart_loads_all_chunks(sdh_problem, small_points,
                                             tmp_path):
    first = _run(sdh_problem, small_points, store=tmp_path / "ck")
    again = _run(sdh_problem, small_points, store=tmp_path / "ck")
    assert np.array_equal(first.result, again.result)
    assert first.record.counters == again.record.counters
    actions = _lifecycle_actions(again)
    assert actions.count("checkpoint-load") == 5
    assert "resumed" in actions and "checkpoint-write" not in actions


# -- kill-and-resume differential --------------------------------------------

SCENARIOS = [
    (backend, prune, faults)
    for backend in ("sequential", "threads", "processes", "megabatch")
    for prune in (False, True)
    for faults in (None, 5)
]


@pytest.mark.parametrize("backend,prune,faults", SCENARIOS)
def test_kill_and_resume_differential(backend, prune, faults, sdh_problem,
                                      small_points, tmp_path):
    clean = _run(sdh_problem, small_points, store=tmp_path / "clean",
                 backend=backend, workers=2, prune=prune, faults=faults)

    def killer(index, entry):
        if index == 1:
            os.kill(os.getpid(), signal.SIGKILL)

    _fork_and_kill(lambda: _run(
        sdh_problem, small_points, store=tmp_path / "kill",
        after_chunk=killer, backend=backend, workers=2, prune=prune,
        faults=faults,
    ))
    store = CheckpointStore(tmp_path / "kill")
    assert store.exists()
    assert len(store.load_manifest()["chunks"]) == 2  # killed after chunk 1

    resumed = _run(sdh_problem, small_points, store=tmp_path / "kill",
                   backend=backend, workers=2, prune=prune, faults=faults,
                   resume=True)
    _assert_same(clean, resumed)
    actions = _lifecycle_actions(resumed)
    assert actions.count("checkpoint-load") == 2
    assert actions.count("checkpoint-write") == 3


# -- deadline / cancel -------------------------------------------------------


def test_deadline_breach_leaves_resumable_store(sdh_problem, small_points,
                                                tmp_path):
    clean = _run(sdh_problem, small_points, store=tmp_path / "clean")
    clock = [0.0]
    dl = Deadline(1.0, clock=lambda: clock[0])

    def tick(index, entry):
        clock[0] += 0.4  # chunk 2's pre-check sees the budget spent

    with pytest.raises(DeadlineExceeded) as err:
        _run(sdh_problem, small_points, store=tmp_path / "dl",
             after_chunk=tick, deadline=dl)
    exc = err.value
    assert exc.checkpoint == tmp_path / "dl"
    assert "deadline-breach" in _lifecycle_actions(exc.report)
    assert "checkpoint-exit" in _lifecycle_actions(exc.report)

    resumed = _run(sdh_problem, small_points, store=tmp_path / "dl",
                   resume=True)
    _assert_same(clean, resumed)


def test_deadline_breach_before_first_chunk_is_resumable(
        sdh_problem, small_points, tmp_path):
    clean = _run(sdh_problem, small_points, store=tmp_path / "clean")
    clock = [5.0]
    dl = Deadline(1.0, clock=lambda: clock[0])
    clock[0] = 10.0  # already spent before any chunk runs
    with pytest.raises(DeadlineExceeded) as err:
        _run(sdh_problem, small_points, store=tmp_path / "dl", deadline=dl)
    store = CheckpointStore(tmp_path / "dl")
    assert err.value.checkpoint == store.dir
    assert store.exists() and store.load_manifest()["chunks"] == []
    resumed = _run(sdh_problem, small_points, store=tmp_path / "dl",
                   resume=True)
    _assert_same(clean, resumed)


def test_cancel_mid_run_then_resume(sdh_problem, small_points, tmp_path):
    clean = _run(sdh_problem, small_points, store=tmp_path / "clean")
    tok = CancelToken()

    def trip(index, entry):
        if index == 1:
            tok.cancel()

    with pytest.raises(RunCancelled) as err:
        _run(sdh_problem, small_points, store=tmp_path / "cx",
             after_chunk=trip, cancel=tok)
    assert "cancelled" in _lifecycle_actions(err.value.report)
    resumed = _run(sdh_problem, small_points, store=tmp_path / "cx",
                   resume=True)
    _assert_same(clean, resumed)


# -- simulated cluster -------------------------------------------------------

CLUSTER = ClusterSpec(nodes=4)
NO_SLEEP = RetryPolicy(sleep=False)


def test_cluster_kill_and_resume_under_node_loss(sdh_problem, small_points,
                                                 tmp_path):
    """A checkpointed cluster run that loses a node to the chaos plan and
    is then SIGKILLed mid-flight must resume to the bit-identical result,
    with the node-loss recovery replayed deterministically."""
    # seed 11's chaos plan kills node 1 — a node that is actually striped
    # work under 2-block chunks, so the loss fires inside a chunk
    kw = dict(cluster=CLUSTER, faults=11, retries=NO_SLEEP)
    clean = _run(sdh_problem, small_points, store=tmp_path / "clean", **kw)
    actions = [e.action for e in clean.resilience.events]
    assert "node-lost" in actions and "re-stripe" in actions

    def killer(index, entry):
        if index == 1:
            os.kill(os.getpid(), signal.SIGKILL)

    _fork_and_kill(lambda: _run(
        sdh_problem, small_points, store=tmp_path / "kill",
        after_chunk=killer, **kw,
    ))
    store = CheckpointStore(tmp_path / "kill")
    assert store.exists()
    assert len(store.load_manifest()["chunks"]) == 2  # killed after chunk 1

    resumed = _run(sdh_problem, small_points, store=tmp_path / "kill",
                   resume=True, **kw)
    _assert_same(clean, resumed)
    assert resumed.cluster is not None
    assert resumed.cluster.nodes == CLUSTER.nodes
    assert resumed.cluster.seconds > 0.0


def test_cluster_resume_carries_timing_cursor(sdh_problem, small_points,
                                              tmp_path):
    """The per-node cost cursor is part of the store: a resumed run reports
    the same modelled node/merge seconds as the uninterrupted one."""
    kw = dict(cluster=CLUSTER, retries=NO_SLEEP)
    clean = _run(sdh_problem, small_points, store=tmp_path / "clean", **kw)
    resumed = _run(sdh_problem, small_points, store=tmp_path / "clean",
                   resume=True, **kw)
    _assert_same(clean, resumed)
    assert resumed.cluster.as_dict() == clean.cluster.as_dict()


def test_changed_cluster_spec_is_refused(sdh_problem, small_points, tmp_path):
    """A store written under one ClusterSpec must not be resumed under
    another — re-striping geometry is part of the fingerprint."""
    _run(sdh_problem, small_points, store=tmp_path / "ck", cluster=CLUSTER)
    with pytest.raises(CheckpointMismatch):
        _run(sdh_problem, small_points, store=tmp_path / "ck",
             cluster=ClusterSpec(nodes=8))
    with pytest.raises(CheckpointMismatch):
        _run(sdh_problem, small_points, store=tmp_path / "ck",
             cluster=ClusterSpec(nodes=4, topology="star"))
    # dropping the cluster entirely is a mismatch too, not a silent merge
    with pytest.raises(CheckpointMismatch):
        _run(sdh_problem, small_points, store=tmp_path / "ck")


# -- store safety ------------------------------------------------------------


def test_mismatched_configuration_is_refused(sdh_problem, small_points,
                                             tmp_path):
    _run(sdh_problem, small_points, store=tmp_path / "ck", workers=2)
    with pytest.raises(CheckpointMismatch):
        _run(sdh_problem, small_points, store=tmp_path / "ck", workers=3)


def test_corrupt_chunk_is_refused(sdh_problem, small_points, tmp_path):
    _run(sdh_problem, small_points, store=tmp_path / "ck")
    victim = tmp_path / "ck" / "chunk-000001.pkl"
    victim.write_bytes(victim.read_bytes()[:-1] + b"\x00")
    with pytest.raises(CheckpointCorrupt):
        _run(sdh_problem, small_points, store=tmp_path / "ck", resume=True)


def test_resume_without_manifest_is_refused(sdh_problem, small_points,
                                            tmp_path):
    with pytest.raises(CheckpointError):
        _run(sdh_problem, small_points, store=tmp_path / "nope", resume=True)


def test_resume_true_needs_checkpoint_dir(sdh_problem, small_points):
    with pytest.raises(ValueError, match="resume=True needs checkpoint_dir"):
        run(sdh_problem, small_points, resume=True)


def test_resume_inherits_chunk_size(sdh_problem, small_points, tmp_path):
    first = _run(sdh_problem, small_points, store=tmp_path / "ck", every=2)
    # a bare run(resume=path) must pick up every=2 from the manifest, not
    # re-fingerprint at the default chunking and refuse the store
    again = run(sdh_problem, small_points, kernel=_kern(sdh_problem),
                resume=tmp_path / "ck", trace=True)
    assert np.array_equal(first.result, again.result)
    assert first.record.counters == again.record.counters


def test_topk_output_is_rejected(small_points, tmp_path):
    problem = knn.make_problem(4)
    with pytest.raises(CheckpointError, match="TOPK"):
        run(problem, small_points, checkpoint_dir=tmp_path / "ck")
