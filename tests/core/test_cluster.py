"""The simulated multi-node cluster layer (``repro.core.cluster``).

The contract under test is the module's re-striping invariant: every
seeded node-level fault schedule — permanent node loss, flaky links,
link degradation, stragglers, topology degradation all the way to the
star floor — produces outputs **bit-identical** to the fault-free
single-node reference, across backends × pruning × cells ×
checkpoint/resume, while the communication cost model (ring/tree/star
all-reduce pricing) stays deterministic and physically sensible.

``REPRO_FAULT_SEED`` (CI matrix) narrows the chaos-seed sweeps to one
value; ``REPRO_SIM_CLUSTER`` may force a topology — every test that
builds a reference pins ``cluster`` explicitly, so a forced topology
only changes which merge schedule the differentials exercise.
"""

import math
import os

import numpy as np
import pytest

from repro import apps, data
from repro.core import make_kernel, run
from repro.core.cluster import (
    ClusterSpec,
    ClusterState,
    ClusterTiming,
    TOPOLOGIES,
    cluster_run,
    merge_seconds,
    merge_steps,
    payload_bytes,
    resolve_cluster,
    simulate_cluster,
)
from repro.core.lifecycle import Deadline, DeadlineExceeded
from repro.core.problem import UpdateKind
from repro.core.resilience import ResilienceReport, RetryPolicy
from repro.gpusim import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    NodeLostError,
    link_key,
)

NO_SLEEP = RetryPolicy(sleep=False)

CHAOS_SEEDS = (
    [int(os.environ["REPRO_FAULT_SEED"])]
    if os.environ.get("REPRO_FAULT_SEED")
    else [1, 2, 3, 4, 5]
)
RESTRIPE_SEEDS = (
    CHAOS_SEEDS if os.environ.get("REPRO_FAULT_SEED") else list(range(1, 9))
)


@pytest.fixture
def points():
    return data.uniform_points(900, dims=3, box=10.0, seed=7)


@pytest.fixture
def problem():
    return apps.sdh.make_problem(64, 10.0 * math.sqrt(3.0), dims=3)


def small_kernel(problem, **kw):
    """Block size 64 -> enough anchor blocks to stripe over many nodes."""
    return make_kernel(problem, block_size=64, **kw)


# -- spec & schedules ---------------------------------------------------------

class TestClusterSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="at least one node"):
            ClusterSpec(nodes=0)
        with pytest.raises(ValueError, match="topology"):
            ClusterSpec(nodes=2, topology="mesh")
        with pytest.raises(ValueError, match="bandwidth"):
            ClusterSpec(nodes=2, bandwidth=0)
        with pytest.raises(ValueError, match="latency"):
            ClusterSpec(nodes=2, latency=-1)

    def test_descriptor_is_plain_and_complete(self):
        desc = ClusterSpec(nodes=3, topology="tree").descriptor()
        assert desc["nodes"] == 3 and desc["topology"] == "tree"
        assert set(desc) == {
            "nodes", "topology", "bandwidth", "latency", "heartbeat_timeout"
        }

    def test_resolve_passthrough_and_values(self):
        spec = ClusterSpec(nodes=2)
        assert resolve_cluster(spec) is spec
        assert resolve_cluster(False) is None
        assert resolve_cluster(3).nodes == 3
        assert resolve_cluster("star").topology == "star"
        with pytest.raises(ValueError, match="cluster="):
            resolve_cluster("mesh")


class TestMergeSchedules:
    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8])
    def test_ring_round_count_and_fraction(self, p):
        rounds = merge_steps("ring", list(range(p)))
        assert len(rounds) == 2 * (p - 1)
        for rnd in rounds:
            assert len(rnd) == p
            assert all(abs(f - 1 / p) < 1e-12 for _, _, f in rnd)

    @pytest.mark.parametrize("p", [2, 3, 4, 5, 8])
    def test_tree_round_count(self, p):
        rounds = merge_steps("tree", list(range(p)))
        assert len(rounds) == 2 * math.ceil(math.log2(p))
        # the up-phase reaches the root: every non-root node sends once
        senders = {src for rnd in rounds[:len(rounds) // 2]
                   for src, _, _ in rnd}
        assert senders == set(range(1, p))

    @pytest.mark.parametrize("p", [2, 3, 5])
    def test_star_serializes_through_coordinator(self, p):
        alive = list(range(10, 10 + p))
        rounds = merge_steps("star", alive)
        assert len(rounds) == 2 * (p - 1)
        assert all(len(rnd) == 1 for rnd in rounds)
        coord = alive[0]
        assert all(coord in (s, d) for rnd in rounds for s, d, _ in rnd)

    def test_single_node_needs_no_transfers(self):
        for topology in TOPOLOGIES:
            assert merge_steps(topology, [0]) == []

    def test_schedules_skip_dead_nodes(self):
        rounds = merge_steps("ring", [0, 2, 3])
        touched = {x for rnd in rounds for s, d, _ in rnd for x in (s, d)}
        assert touched == {0, 2, 3}

    def test_ring_beats_star_at_scale(self):
        """Bandwidth-optimality sanity: for large payloads the ring's
        1/p fractions beat the star's serialized full payloads."""
        spec = ClusterSpec(nodes=8)
        payload = 1e8
        ring = merge_seconds(spec, payload, topology="ring")
        star = merge_seconds(spec, payload, topology="star")
        assert ring < star

    def test_latency_dominates_small_payloads(self):
        """For tiny payloads the tree's O(log p) rounds beat the ring's
        O(p) rounds — the latency regime."""
        spec = ClusterSpec(nodes=16)
        tree = merge_seconds(spec, 8.0, topology="tree")
        ring = merge_seconds(spec, 8.0, topology="ring")
        assert tree < ring

    def test_payload_bytes_by_kind(self, problem):
        assert payload_bytes(problem, 500) == 64 * 8
        pcf = apps.pcf.make_problem(2.0)
        assert payload_bytes(pcf, 500) == 8.0


# -- bit-identity under chaos -------------------------------------------------

class TestBitIdentity:
    @pytest.mark.parametrize("seed", CHAOS_SEEDS)
    @pytest.mark.parametrize("nodes", [2, 3, 5, 8])
    def test_every_chaos_schedule_matches_fault_free(
        self, problem, points, seed, nodes
    ):
        """The tentpole property: any seeded node-loss/flaky-link/
        straggler schedule yields the fault-free reference bits."""
        ref = run(problem, points, kernel=small_kernel(problem))
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=nodes),
            kernel=small_kernel(problem), faults=seed, retry=NO_SLEEP,
        )
        assert np.array_equal(res.result, ref.result)
        actions = {e.action for e in res.report.events}
        assert "verified" in actions
        if res.state.dead:
            assert {"node-lost", "re-stripe"} <= actions

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_every_topology_matches(self, problem, points, topology):
        ref = run(problem, points, kernel=small_kernel(problem))
        res = cluster_run(
            problem, points,
            cluster=ClusterSpec(nodes=4, topology=topology),
            kernel=small_kernel(problem), faults=3, retry=NO_SLEEP,
        )
        assert np.array_equal(res.result, ref.result)

    @pytest.mark.parametrize(
        "backend", ["sequential", "threads", "processes", "megabatch"]
    )
    def test_all_backends_match(self, problem, points, backend):
        ref = run(problem, points, kernel=small_kernel(problem))
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=3),
            kernel=small_kernel(problem), faults=2, retry=NO_SLEEP,
            backend=backend, workers=2,
        )
        assert np.array_equal(res.result, ref.result)

    def test_pruning_stats_survive_chaos(self, points):
        """PruneStats fold across stripes and re-striping exactly as in
        the fault-free cluster run (same stripe partitioning after the
        same seeded loss), and the output still matches the reference."""
        # a short histogram range makes beyond-max tiles bulk-clamp, so
        # the pruner has real work to account for
        problem = apps.sdh.make_problem(64, 4.0, dims=3)
        ref = run(problem, points, kernel=small_kernel(problem, prune=True))
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=4),
            kernel=small_kernel(problem, prune=True), faults=4,
            retry=NO_SLEEP,
        )
        assert np.array_equal(res.result, ref.result)
        total = sum(
            r.prune.tiles for r in res.records if r.prune is not None
        )
        assert total > 0

    def test_cells_survive_chaos(self, points):
        problem = apps.sdh.make_problem(
            32, 4.0, dims=3, cell_cutoff=4.0
        )
        ref = run(problem, points, kernel=small_kernel(problem, cells=True))
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=3),
            kernel=small_kernel(problem, cells=True), faults=5,
            retry=NO_SLEEP,
        )
        assert np.array_equal(res.result, ref.result)

    @pytest.mark.parametrize("kind", ["scalar", "per-point", "pairs"])
    def test_other_output_kinds(self, points, kind):
        if kind == "scalar":
            problem = apps.pcf.make_problem(3.0)
        elif kind == "per-point":
            problem = apps.kde.make_problem(1.0, dims=3)
        else:
            problem = apps.join.make_problem(2.0, dims=3)
        ref = run(problem, points, kernel=small_kernel(problem))
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=4),
            kernel=small_kernel(problem), faults=1, retry=NO_SLEEP,
        )
        if problem.output.kind is UpdateKind.SCALAR_SUM:
            assert res.result == ref.result
        else:
            assert np.array_equal(res.result, ref.result)

    def test_topk_rejected(self, points):
        problem = apps.knn.make_problem(4)
        with pytest.raises(ValueError, match="TOPK"):
            cluster_run(
                problem, points, cluster=ClusterSpec(nodes=2),
                kernel=make_kernel(problem),
            )


# -- elastic re-striping invariants ------------------------------------------

class TestRestriping:
    @pytest.mark.parametrize("seed", RESTRIPE_SEEDS)
    @pytest.mark.parametrize("nodes", [2, 4, 8])
    def test_every_pair_exactly_once_after_node_loss(
        self, problem, points, seed, nodes
    ):
        """Property: after any seeded loss schedule, the executed stripe
        ranges still partition the block grid — equivalently, the
        histogram mass equals the full pair count (each unordered pair
        lands in exactly one bucket exactly once)."""
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=nodes),
            kernel=small_kernel(problem), faults=seed, retry=NO_SLEEP,
        )
        n = len(points)
        assert int(res.result.sum()) == n * (n - 1) // 2

    def test_forced_node_loss_restripes_onto_survivors(
        self, problem, points
    ):
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(FaultKind.NODE_DEAD, node=2, count=None)],
        )
        ref = run(problem, points, kernel=small_kernel(problem))
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=4),
            kernel=small_kernel(problem), faults=plan, retry=NO_SLEEP,
        )
        assert np.array_equal(res.result, ref.result)
        assert res.state.dead == [2]
        lost = [e for e in res.report.events if e.action == "node-lost"]
        stripes = [e for e in res.report.events if e.action == "re-stripe"]
        assert lost and stripes
        # the re-striped ranges partition the lost range exactly
        s, e = stripes[0].data["blocks"]
        subs = sorted(tuple(r) for r in stripes[0].data["stripes"])
        assert subs[0][0] == s and subs[-1][1] == e
        for (a, b), (c, _) in zip(subs, subs[1:]):
            assert b == c
        assert 2 not in stripes[0].data["survivors"]

    def test_all_nodes_lost_raises(self, problem, points):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(FaultKind.NODE_DEAD, node=m, count=None)
                for m in range(2)
            ],
        )
        with pytest.raises(NodeLostError, match="all 2 cluster nodes"):
            cluster_run(
                problem, points, cluster=ClusterSpec(nodes=2),
                kernel=small_kernel(problem), faults=plan, retry=NO_SLEEP,
            )

    def test_straggler_below_timeout_is_absorbed(self, problem, points):
        cluster = ClusterSpec(nodes=2, heartbeat_timeout=0.25)
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(
                    FaultKind.NODE_STRAGGLER, node=1, delay_seconds=0.1
                )
            ],
        )
        res = cluster_run(
            problem, points, cluster=cluster,
            kernel=small_kernel(problem), faults=plan, retry=NO_SLEEP,
        )
        assert res.state.dead == []
        # the lag lands in the straggler's simulated compute time
        assert res.timing.node_seconds[1] > 0.1

    def test_straggler_beyond_timeout_is_evicted(self, problem, points):
        cluster = ClusterSpec(nodes=2, heartbeat_timeout=0.25)
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(
                    FaultKind.NODE_STRAGGLER, node=1, delay_seconds=0.5
                )
            ],
        )
        ref = run(problem, points, kernel=small_kernel(problem))
        res = cluster_run(
            problem, points, cluster=cluster,
            kernel=small_kernel(problem), faults=plan, retry=NO_SLEEP,
        )
        assert res.state.dead == [1]
        actions = [e.action for e in res.report.events]
        assert "heartbeat-timeout" in actions
        assert np.array_equal(res.result, ref.result)

    def test_deadline_gates_restriping(self, problem, points):
        """Re-striping estimates the lost work from measured chunk wall
        time and refuses when the budget cannot fit it."""
        plan = FaultPlan(
            seed=0,
            specs=[FaultSpec(FaultKind.NODE_DEAD, node=1, count=None)],
        )
        # a frozen clock keeps the per-block deadline polls green (the
        # budget never drains) so the failure can only come from the
        # re-stripe gate's fits() refusal
        deadline = Deadline(1e-7, clock=lambda: 0.0)
        with pytest.raises(DeadlineExceeded, match="re-striping"):
            cluster_run(
                problem, points, cluster=ClusterSpec(nodes=2),
                kernel=small_kernel(problem), faults=plan,
                retry=NO_SLEEP, deadline=deadline,
            )


# -- topology degradation -----------------------------------------------------

class TestTopologyDegradation:
    def _flaky_forever(self, a, b):
        return FaultPlan(
            seed=0,
            specs=[
                FaultSpec(
                    FaultKind.LINK_FLAKY, link=link_key(a, b), count=None
                )
            ],
        )

    def test_ring_degrades_to_tree(self, problem, points):
        """An exhausted ring link falls back to the tree schedule; if
        the tree avoids that link, the merge completes there."""
        # ring over [0,1,2,3] uses links 0-1,1-2,2-3,3-0; the binomial
        # tree uses 0-1,2-3,0-2 — so poison 3-0 (ring-only)
        ref = run(problem, points, kernel=small_kernel(problem))
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=4),
            kernel=small_kernel(problem),
            faults=self._flaky_forever(3, 0), retry=NO_SLEEP,
        )
        assert res.state.topology == "tree"
        assert res.state.dead == []
        actions = [e.action for e in res.report.events]
        assert "degrade-topology" in actions
        assert np.array_equal(res.result, ref.result)

    def test_degrades_to_star_floor_and_loses_the_node(
        self, problem, points
    ):
        """A poisoned coordinator link survives no topology: ring ->
        tree -> star all need 0-1, so node 1 is declared unreachable,
        its parts discarded and its rows re-striped — output still
        bit-identical."""
        ref = run(problem, points, kernel=small_kernel(problem))
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=3),
            kernel=small_kernel(problem),
            faults=self._flaky_forever(0, 1), retry=NO_SLEEP,
        )
        assert res.state.topology == "star"
        assert res.state.dead == [1]
        actions = [e.action for e in res.report.events]
        assert actions.count("degrade-topology") == 2
        assert "node-lost" in actions and "re-stripe" in actions
        assert np.array_equal(res.result, ref.result)

    def test_transient_flakes_retry_in_place(self, problem, points):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(FaultKind.LINK_FLAKY, link=link_key(0, 1),
                          count=2)
            ],
        )
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=2),
            kernel=small_kernel(problem), faults=plan, retry=NO_SLEEP,
        )
        assert res.state.topology == "ring"  # recovered without degrading
        retries = [e for e in res.report.events
                   if e.action == "link-retry"]
        assert len(retries) == 2
        assert all(e.data["link"] == "0-1" for e in retries)
        assert res.timing.link_retries == 2

    def test_degraded_link_slows_the_merge(self, problem, points):
        plan = FaultPlan(
            seed=0,
            specs=[
                FaultSpec(FaultKind.LINK_DEGRADED, link=link_key(0, 1),
                          factor=1000.0)
            ],
        )
        clean = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=2),
            kernel=small_kernel(problem), retry=NO_SLEEP,
        )
        slow = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=2),
            kernel=small_kernel(problem), faults=plan, retry=NO_SLEEP,
        )
        assert slow.timing.merge_seconds > clean.timing.merge_seconds
        assert np.array_equal(slow.result, clean.result)


# -- cost model & state -------------------------------------------------------

class TestCostModel:
    def test_timing_accumulates_and_round_trips(self):
        t = ClusterTiming(3)
        t.add_compute(0, 1.0)
        t.add_compute(1, 2.0)
        t.merge_seconds = 0.5
        t.transfers = 4
        t.bytes_moved = 1024.0
        t.link_retries = 1
        assert t.seconds == 2.5
        back = ClusterTiming.from_dict(t.as_dict())
        assert back.as_dict() == t.as_dict()

    def test_state_round_trips(self):
        s = ClusterState(topology="tree")
        s.lose(2)
        s.lose(0)
        back = ClusterState.from_dict(s.as_dict())
        assert back.dead == [0, 2] and back.topology == "tree"
        assert back.alive(4) == [1, 3]

    def test_cluster_run_prices_compute_and_merge(
        self, problem, points
    ):
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=3),
            kernel=small_kernel(problem), retry=NO_SLEEP,
        )
        assert res.timing.merge_seconds > 0
        assert res.timing.transfers > 0
        assert res.timing.bytes_moved > 0
        busy = [s for s in res.timing.node_seconds.values() if s > 0]
        assert len(busy) >= 2
        assert res.timing.seconds >= max(busy)

    def test_simulate_cluster_scaling_shape(self, problem):
        """More nodes -> less compute per node; losing a node mid-run
        costs a bounded slowdown (the acceptance-curve generator)."""
        kernel = make_kernel(problem)
        n = 200_000  # O(n^2) compute amortizes the O(n) input broadcast
        t1 = simulate_cluster(kernel, n, ClusterSpec(nodes=1))
        t8 = simulate_cluster(kernel, n, ClusterSpec(nodes=8))
        assert t8["seconds"] < t1["seconds"]
        eff = t1["seconds"] / (8 * t8["seconds"])
        assert eff > 0.8  # the ISSUE's scaling-efficiency floor
        loss = simulate_cluster(
            kernel, n, ClusterSpec(nodes=8), lost_node=3, lost_at=0.5
        )
        slowdown = loss["seconds"] / t8["seconds"]
        assert 1.0 < slowdown < 1.25

    def test_tracer_gets_cluster_spans(self, problem, points):
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        cluster_run(
            problem, points, cluster=ClusterSpec(nodes=2),
            kernel=small_kernel(problem), retry=NO_SLEEP, tracer=tracer,
        )
        spans = [s for s in tracer.all_spans() if s.cat == "cluster"]
        names = {s.name for s in spans}
        assert any(n.startswith("cluster:node") for n in names)
        assert "cluster:merge" in names


# -- report round-trip --------------------------------------------------------

class TestReportRoundTrip:
    def test_node_loss_events_round_trip_json(self, problem, points):
        res = cluster_run(
            problem, points, cluster=ClusterSpec(nodes=4),
            kernel=small_kernel(problem), faults=2, retry=NO_SLEEP,
        )
        assert res.state.dead  # seed 2 kills a node at 4 nodes
        back = ResilienceReport.from_json(res.report.to_json())
        assert back.to_json() == res.report.to_json()
        actions = [e.action for e in back.events]
        assert "node-lost" in actions and "re-stripe" in actions
        lost = next(e for e in back.events if e.action == "node-lost")
        assert lost.data["blocks"]
        node_faults = [
            f for f in back.faults if f.kind is FaultKind.NODE_DEAD
        ]
        assert node_faults and node_faults[0].node is not None


# -- run() integration --------------------------------------------------------

class TestRunIntegration:
    def test_run_cluster_matches_and_carries_model(
        self, problem, points
    ):
        ref = run(problem, points)
        res = run(problem, points, cluster=3, retries=NO_SLEEP)
        assert np.array_equal(res.result, ref.result)
        assert res.cluster is not None and res.cluster.nodes == 3
        assert res.manifest["cluster"]["nodes"] == 3
        assert res.metrics.gauge_value("cluster.nodes") == 3.0
        assert res.metrics.gauge_value("cluster.merge_seconds") > 0
        assert res.metrics.gauge_value("cluster.node.0.seconds") > 0

    def test_run_env_selection(self, problem, points, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CLUSTER", "tree")
        monkeypatch.setenv("REPRO_SIM_NODES", "2")
        ref = run(problem, points, cluster=False)
        assert ref.cluster is None
        res = run(problem, points, retries=NO_SLEEP)
        assert res.cluster is not None and res.cluster.nodes == 2
        assert np.array_equal(res.result, ref.result)

    def test_run_topk_with_explicit_cluster_raises(self, points):
        problem = apps.knn.make_problem(4)
        with pytest.raises(ValueError, match="TOPK"):
            run(problem, points, cluster=2)

    def test_run_topk_under_env_falls_back(self, points, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_CLUSTER", "ring")
        problem = apps.knn.make_problem(4)
        res = run(problem, points)  # env-driven: silently single-node
        assert res.cluster is None
