"""Tests for the prefix-scan kernel and the two-pass Type-III pipeline."""

import math

import numpy as np
import pytest

from repro import apps, data
from repro.core.kernels import SCAN_BLOCK, TwoPassJoinKernel, exclusive_scan
from repro.cpu_ref import brute
from repro.gpusim import Device, MemSpace


class TestExclusiveScan:
    @pytest.mark.parametrize(
        "n", [1, 2, SCAN_BLOCK - 1, SCAN_BLOCK, SCAN_BLOCK + 1, 1000, 66_000]
    )
    def test_matches_cumsum(self, n, rng):
        arr = rng.integers(0, 100, n)
        dev = Device()
        g = dev.to_device(arr.astype(np.int64))
        out, total, _ = exclusive_scan(dev, g)
        ref = np.concatenate([[0], np.cumsum(arr)[:-1]])
        assert np.array_equal(dev.to_host(out), ref)
        assert total == arr.sum()

    def test_zeros(self):
        dev = Device()
        g = dev.to_device(np.zeros(500, dtype=np.int64))
        out, total, _ = exclusive_scan(dev, g)
        assert total == 0
        assert not dev.to_host(out).any()

    def test_empty_rejected(self):
        dev = Device()
        g = dev.to_device(np.zeros(1, dtype=np.int64))
        # size-1 works; size-0 arrays cannot be allocated meaningfully
        out, total, _ = exclusive_scan(dev, g)
        assert total == 0

    def test_recursion_depth_two(self, rng):
        # > SCAN_BLOCK^2 elements forces a second recursion level
        n = SCAN_BLOCK * SCAN_BLOCK + 5
        arr = rng.integers(0, 3, n)
        dev = Device()
        out, total, records = exclusive_scan(dev, dev.to_device(arr.astype(np.int64)))
        assert total == arr.sum()
        assert len(records) >= 5  # blocks + sums-scan(+) + applies

    def test_work_efficiency(self, rng):
        """O(n) shared-memory traffic, not O(n log n) per element."""
        n = 4 * SCAN_BLOCK
        dev = Device()
        g = dev.to_device(rng.integers(0, 5, n).astype(np.int64))
        _, _, records = exclusive_scan(dev, g)
        shm = sum(
            r.counters.total(MemSpace.SHARED) for r in records
        )
        assert shm < 12 * n  # a few accesses per element, not ~log2(256)*4


class TestTwoPassJoin:
    def test_matches_oracle(self):
        vals = data.join_values(500, duplicates=0.25, seed=3).reshape(-1, 1)
        problem = apps.join.make_problem(3.0, dims=1)
        kernel = TwoPassJoinKernel(problem, "register-shm", block_size=64)
        res = kernel.execute(Device(), vals)
        got = np.sort(res.pairs, axis=1)
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        assert np.array_equal(got, brute.band_join(vals.ravel(), 3.0))

    def test_spatial(self, small_points):
        problem = apps.join.make_problem(1.5, dims=3)
        kernel = TwoPassJoinKernel(problem, "register-roc", block_size=64)
        res = kernel.execute(Device(), small_points)
        got = np.sort(res.pairs, axis=1)
        got = got[np.lexsort((got[:, 1], got[:, 0]))]
        assert np.array_equal(got, brute.spatial_band_join(small_points, 1.5))

    def test_no_matches(self):
        vals = np.arange(0.0, 5000.0, 100.0).reshape(-1, 1)
        problem = apps.join.make_problem(1.0, dims=1)
        res = TwoPassJoinKernel(problem, block_size=32).execute(Device(), vals)
        assert res.total == 0
        assert res.pairs.shape[0] == 0

    def test_no_global_atomics_in_write_pass(self):
        vals = data.join_values(300, seed=5).reshape(-1, 1)
        problem = apps.join.make_problem(10.0, dims=1)
        dev = Device()
        TwoPassJoinKernel(problem, block_size=64).execute(dev, vals)
        write = [r for r in dev.launches if r.kernel_name.endswith("-write")][0]
        assert write.counters.atomic_count(MemSpace.GLOBAL) == 0

    def test_rejects_non_emit_problems(self):
        problem = apps.sdh.make_problem(16, math.sqrt(3) * 10)
        with pytest.raises(ValueError, match="EMIT_PAIRS"):
            TwoPassJoinKernel(problem)

    def test_two_passes_cost_double_compute(self):
        problem = apps.join.make_problem(1.0, dims=1, selectivity=0.01)
        two = TwoPassJoinKernel(problem, "register-shm", block_size=256)
        t = two.traffic(100_000)
        geom_pairs = 100_000 * 99_999 / 2
        assert t.pairs == pytest.approx(2 * geom_pairs, rel=1e-6)

    def test_simulate(self):
        problem = apps.join.make_problem(1.0, dims=1)
        rep = TwoPassJoinKernel(problem).simulate(500_000)
        assert rep.seconds > 0
        assert rep.kernel.endswith("2Pass")


class TestMultiCopyPrivatization:
    MAXD = 10.0 * math.sqrt(3.0)

    @pytest.mark.parametrize("copies", [1, 2, 4, 8])
    def test_exact_results_and_counts(self, small_points, copies):
        from repro.core import make_kernel

        problem = apps.sdh.make_problem(64, self.MAXD)
        kernel = make_kernel(
            problem, "register-roc", "privatized-shm", block_size=64,
            output_kwargs={"copies_per_block": copies},
        )
        dev = Device()
        result, rec = kernel.execute(dev, small_points)
        assert np.array_equal(
            result, brute.sdh_histogram(small_points, 64, self.MAXD / 64)
        )
        assert rec.counters.as_dict() == kernel.traffic(300).expected_counters().as_dict()

    def test_copies_reduce_conflicts(self, small_points):
        from repro.core import make_kernel

        problem = apps.sdh.make_problem(64, self.MAXD)
        degrees = []
        for copies in (1, 4):
            kernel = make_kernel(
                problem, "register-roc", "privatized-shm", block_size=64,
                output_kwargs={"copies_per_block": copies},
            )
            dev = Device()
            kernel.execute(dev, small_points)
            degrees.append(dev.launches[0].counters.mean_conflict_degree())
        assert degrees[1] < degrees[0]

    def test_copies_cost_shared_memory(self):
        from repro.core import make_kernel

        problem = apps.sdh.make_problem(1000, self.MAXD)
        k1 = make_kernel(problem, "register-roc", "privatized-shm",
                         output_kwargs={"copies_per_block": 1})
        k4 = make_kernel(problem, "register-roc", "privatized-shm",
                         output_kwargs={"copies_per_block": 4})
        assert k4.shared_bytes_per_block() == 4 * k1.shared_bytes_per_block()

    def test_paper_config_prefers_single_copy(self):
        """The paper's 'data not shown' claim: at 2500 buckets more
        copies do NOT help (occupancy loss beats contention relief)."""
        from repro.core import make_kernel

        problem = apps.sdh.make_problem(2500, self.MAXD, box=10.0)
        times = {}
        for copies in (1, 2, 4):
            kernel = make_kernel(
                problem, "register-roc", "privatized-shm", block_size=256,
                output_kwargs={"copies_per_block": copies},
            )
            times[copies] = kernel.simulate(1_000_000).seconds
        assert times[1] < times[2] < times[4]

    def test_invalid_copies(self):
        from repro.core.kernels import PrivatizedSharedOutput

        with pytest.raises(ValueError):
            PrivatizedSharedOutput(copies_per_block=0)
