"""Unit tests for the model-driven planner (the paper's framework vision)."""

import math

import pytest

from repro import apps
from repro.core import plan_kernel
from repro.gpusim import FERMI_M2090, TITAN_X

MAXD = 10.0 * math.sqrt(3.0)


def test_type1_gets_register_output(pcf_problem):
    plan = plan_kernel(pcf_problem, 1_000_000)
    assert plan.chosen.kernel.output.name == "register"


def test_type1_prefers_shared_tiling(pcf_problem):
    # Section V: "tiling via shared memory and register outperforms other
    # techniques for ... type-I"
    plan = plan_kernel(pcf_problem, 1_000_000)
    assert plan.chosen.kernel.input.name in ("Register-SHM", "SHM-SHM")


def test_type2_gets_privatized_output():
    problem = apps.sdh.make_problem(2500, MAXD, box=10.0)
    plan = plan_kernel(problem, 1_000_000)
    assert plan.chosen.kernel.output.name == "privatized-shm"


def test_type2_prefers_roc_when_histogram_is_large():
    # Section V: "tiling via data cache can significantly improve ...
    # type-II 2-BSs" — the ROC frees shared memory for the histogram
    problem = apps.sdh.make_problem(4000, MAXD, box=10.0)
    plan = plan_kernel(problem, 1_000_000, block_sizes=(256,))
    assert plan.chosen.kernel.input.name in ("Register-ROC", "Shuffle")


def test_huge_histogram_falls_back_to_global_atomics():
    problem = apps.sdh.make_problem(200_000, MAXD)  # 800 KB: no shm fit
    plan = plan_kernel(problem, 100_000)
    assert plan.chosen.kernel.output.name == "global-atomic"


def test_type3_gets_global_direct():
    problem = apps.gram.make_problem(apps.gram.gaussian_kernel(1.0), dims=8)
    plan = plan_kernel(problem, 50_000)
    assert plan.chosen.kernel.output.name == "global-direct"


def test_naive_never_wins(pcf_problem):
    plan = plan_kernel(pcf_problem, 500_000)
    assert plan.chosen.kernel.input.name != "Naive"
    # and naive appears in the ranking, priced slower
    naive_times = [
        c.predicted_seconds for c in plan.ranking if c.kernel.input.name == "Naive"
    ]
    assert min(naive_times) > plan.chosen.predicted_seconds * 3


def test_fermi_excludes_shuffle(pcf_problem):
    plan = plan_kernel(pcf_problem, 100_000, spec=FERMI_M2090)
    assert all(c.kernel.input.name != "Shuffle" for c in plan.ranking)


def test_ranking_is_sorted(pcf_problem):
    plan = plan_kernel(pcf_problem, 100_000)
    times = [c.predicted_seconds for c in plan.ranking]
    assert times == sorted(times)


def test_oversized_blocks_rejected_not_fatal():
    problem = apps.sdh.make_problem(11_000, MAXD)  # 44 KB histogram
    plan = plan_kernel(problem, 100_000, block_sizes=(256, 1024))
    # privatized + 1024-block SHM tiling cannot fit: must appear in
    # rejected, while some composition still wins
    assert plan.chosen is not None
    assert plan.rejected


def test_explain_mentions_choice(pcf_problem):
    plan = plan_kernel(pcf_problem, 100_000)
    text = plan.explain()
    assert "chosen:" in text and pcf_problem.name in text


# -- host backend pricing (the GIL-ceiling PR) --------------------------------

from repro.core.planner import (  # noqa: E402
    DISPATCH_RESIDUAL_BATCHED,
    DISPATCH_RESIDUAL_MEGA,
    THREAD_EFFICIENCY,
    VECTOR_FRACTION,
    BackendChoice,
    plan_backend,
)


def _speedups(choices):
    return {c.backend: c.predicted_speedup for c in choices}


def test_plan_backend_covers_every_engine():
    ranked = plan_backend(8192, cpu_count=4, workers=4)
    assert [c.backend for c in ranked] == sorted(
        (c.backend for c in ranked),
        key=lambda b: -_speedups(ranked)[b],
    )
    assert {c.backend for c in ranked} == {
        "sequential", "threads", "processes", "megabatch"
    }
    assert _speedups(ranked)["sequential"] == 1.0
    assert ranked[-1].backend == "sequential"


def test_plan_backend_single_core_ranking():
    """On one core nothing runs concurrently: the win comes purely from
    dispatch amortization, so mega-batch leads and processes trail threads
    (same serialized math plus the fork toll)."""
    ranked = plan_backend(8192, cpu_count=1, workers=8)
    names = [c.backend for c in ranked]
    assert names[0] == "megabatch"
    assert names.index("threads") < names.index("processes")
    s = _speedups(ranked)
    assert s["megabatch"] == pytest.approx(
        1.0 / (DISPATCH_RESIDUAL_MEGA + VECTOR_FRACTION), abs=1e-3
    )
    assert s["threads"] == pytest.approx(
        1.0 / (DISPATCH_RESIDUAL_BATCHED + VECTOR_FRACTION), abs=1e-3
    )


def test_plan_backend_scales_with_cores():
    one = _speedups(plan_backend(8192, workers=8, cpu_count=1))
    four = _speedups(plan_backend(8192, workers=8, cpu_count=4))
    for backend in ("threads", "processes", "megabatch"):
        assert four[backend] > one[backend]
    assert four["sequential"] == one["sequential"] == 1.0
    # processes shed the GIL: their per-worker scaling efficiency prices
    # higher than the thread pool's
    thread_gain = four["threads"] / one["threads"]
    process_gain = four["processes"] / one["processes"]
    assert process_gain > thread_gain


def test_plan_backend_clamps_workers_to_grid():
    # 256 points in 256-wide blocks is one block: no parallelism to buy
    ranked = _speedups(plan_backend(256, block_size=256, workers=8,
                                    cpu_count=8))
    assert ranked["threads"] == pytest.approx(
        1.0 / (DISPATCH_RESIDUAL_BATCHED + VECTOR_FRACTION), abs=1e-3
    )


def test_plan_backend_honors_workers_env(monkeypatch):
    from repro.gpusim import WORKERS_ENV

    monkeypatch.setenv(WORKERS_ENV, "3")
    s = _speedups(plan_backend(8192, cpu_count=8))
    expected = 1.0 / (
        DISPATCH_RESIDUAL_BATCHED
        + VECTOR_FRACTION / (1.0 + 2 * THREAD_EFFICIENCY)
    )
    assert s["threads"] == pytest.approx(expected, abs=1e-3)


def test_plan_kernel_recommends_backend(pcf_problem):
    plan = plan_kernel(pcf_problem, 100_000)
    assert plan.backends
    assert isinstance(plan.backend, BackendChoice)
    assert plan.backend is plan.backends[0]
    speeds = [c.predicted_speedup for c in plan.backends]
    assert speeds == sorted(speeds, reverse=True)
    assert "backend:" in plan.explain()
