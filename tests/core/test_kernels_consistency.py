"""Consistency tests: the analytical traffic model must predict the
functional simulator's access counters exactly — the invariant that makes
paper-scale timing trustworthy.
"""

import math

import numpy as np
import pytest

from repro import apps
from repro.core import PAPER_PCF, PAPER_SDH, make_kernel
from repro.gpusim import Device, MemSpace

MAXD = 10.0 * math.sqrt(3.0)


def assert_counts_match(kernel, points):
    dev = Device()
    kernel.execute(dev, points)
    got = dev.launches[0].counters.as_dict()
    expected = kernel.traffic(len(points)).expected_counters().as_dict()
    assert got == expected, f"{kernel.name}: {got} != {expected}"


@pytest.mark.parametrize("display,inp,out", PAPER_SDH)
def test_sdh_lineup_counts(small_points, display, inp, out):
    problem = apps.sdh.make_problem(64, MAXD)
    assert_counts_match(
        make_kernel(problem, inp, out, block_size=64, name=display), small_points
    )


@pytest.mark.parametrize("display,inp,out", PAPER_PCF)
def test_pcf_lineup_counts(small_points, display, inp, out):
    problem = apps.pcf.make_problem(2.0)
    assert_counts_match(
        make_kernel(problem, inp, out, block_size=64, name=display), small_points
    )


@pytest.mark.parametrize("block_size", [32, 64, 128])
@pytest.mark.parametrize("n", [65, 128, 300])
def test_ragged_geometries(block_size, n):
    """Counts must stay exact for every padding/raggedness combination."""
    pts = np.random.default_rng(n).uniform(0, 10, (n, 3))
    problem = apps.sdh.make_problem(32, MAXD)
    for inp in ("naive", "shm-shm", "register-shm", "register-roc", "shuffle"):
        assert_counts_match(
            make_kernel(problem, inp, "privatized-shm", block_size=block_size), pts
        )


def test_full_row_mode_counts(small_points):
    """kNN runs full-row (every pair seen twice): counts must still match."""
    problem = apps.knn.make_problem(4)
    assert_counts_match(
        make_kernel(problem, "register-shm", "register", block_size=64), small_points
    )


def test_full_row_roc_counts(small_points):
    problem = apps.kde.make_problem(1.0)
    assert_counts_match(
        make_kernel(problem, "register-roc", "register", block_size=64), small_points
    )


def test_matrix_output_counts(rng):
    pts = rng.normal(size=(150, 4))
    problem = apps.gram.make_problem(apps.gram.gaussian_kernel(1.0), dims=4)
    assert_counts_match(
        make_kernel(problem, "register-shm", "global-direct", block_size=64), pts
    )


def test_load_balanced_counts_unchanged(aligned_points):
    """The cyclic schedule reorders work but touches the same data."""
    problem = apps.sdh.make_problem(32, MAXD)
    assert_counts_match(
        make_kernel(
            problem, "register-shm", "privatized-shm",
            block_size=128, load_balanced=True,
        ),
        aligned_points,
    )


def test_reduction_launch_traffic(small_points):
    """The Fig. 3 reduction kernel reads M copies + writes Hs elements."""
    problem = apps.sdh.make_problem(64, MAXD)
    kernel = make_kernel(problem, "register-shm", "privatized-shm", block_size=64)
    dev = Device()
    kernel.execute(dev, small_points)
    assert len(dev.launches) == 2
    red = dev.launches[1]
    m = kernel.geometry(300).num_blocks
    assert red.counters.read_count(MemSpace.GLOBAL) == 64 * m
    assert red.counters.write_count(MemSpace.GLOBAL) == 64


def test_intra_part_is_subset_of_both(small_points):
    problem = apps.sdh.make_problem(64, MAXD)
    kernel = make_kernel(problem, "register-shm", "privatized-shm", block_size=64)
    both = kernel.traffic(300)
    intra = kernel.traffic(300, part="intra")
    assert intra.shm_atomics < both.shm_atomics
    assert intra.shm_reads < both.shm_reads
    assert intra.pairs == kernel.geometry(300).intra_pairs


def test_traffic_rejects_unknown_part(sdh_problem):
    kernel = make_kernel(sdh_problem, "register-shm", "privatized-shm")
    with pytest.raises(ValueError, match="part"):
        kernel.traffic(1000, part="outer")
