"""Differential tests for the bounds-pruned tile engine.

The contract under test: enabling ``prune=True`` changes *how much work*
the engine does — never a single output bit.  Every test compares a pruned
run against its unpruned twin (same data, same kernel shape) and demands
exact equality, across engine modes (sequential, batched, parallel
workers, ``blocks=`` stripes) and across the app surface (SDH, RDF, PCF,
band join, KDE).  The companion consistency checks pin the analytical
model: ``traffic(n, prune=record.prune)`` must predict the pruned launch's
functional counters access-for-access.
"""

import math

import numpy as np
import pytest

from repro import apps
from repro.core import make_kernel, plan_kernel
from repro.core.bounds import prune_stats, spatial_sort
from repro.data import gaussian_clusters, uniform_points
from repro.gpusim import Device, MemSpace

#: clustered, spatially sorted dataset with many 64-point blocks — tight,
#: well-separated clusters so both skip (cutoff) and bulk (one-bucket)
#: tiles actually occur
N_CLUSTERED = 1600
BLOCK = 64


@pytest.fixture(scope="module")
def clustered_points():
    pts = gaussian_clusters(
        N_CLUSTERED, dims=3, n_clusters=8, box=60.0, spread=0.4, seed=42
    )
    return pts[spatial_sort(pts)]


def _pair_evals(record) -> int:
    """Distance evaluations actually performed, from the access counters
    (register-anchored strategies charge exactly one partner read per
    evaluation, in ROC or shared memory)."""
    c = record.counters
    reads = c.reads[MemSpace.ROC] + c.reads[MemSpace.SHARED]
    return reads


def _run_pair(problem, inp, out, points, block_size=BLOCK, **kw):
    """Execute the unpruned and pruned twins; returns both results and
    both launch records."""
    base = make_kernel(problem, inp, out, block_size=block_size)
    pruned = make_kernel(problem, inp, out, block_size=block_size, prune=True)
    dev_b, dev_p = Device(), Device()
    res_b, rec_b = base.execute(dev_b, points, **kw)
    res_p, rec_p = pruned.execute(dev_p, points, **kw)
    return res_b, res_p, rec_b, rec_p


class TestBitIdentity:
    """Pruned output == unpruned output, bit for bit."""

    def test_sdh_histogram(self, clustered_points):
        problem = apps.sdh.make_problem(32, 8.0)  # most tiles beyond max
        hist, hist_p, _, rec_p = _run_pair(
            problem, "register-roc", "privatized-shm", clustered_points
        )
        assert np.array_equal(hist, hist_p)
        assert rec_p.prune is not None and rec_p.prune.tiles_bulk > 0

    def test_sdh_global_atomic_output(self, clustered_points):
        problem = apps.sdh.make_problem(32, 8.0)
        hist, hist_p, _, _ = _run_pair(
            problem, "register-shm", "global-atomic", clustered_points
        )
        assert np.array_equal(hist, hist_p)

    def test_rdf_curve(self, clustered_points):
        r, g, res = apps.rdf.compute(
            clustered_points, 24, 6.0, box_volume=60.0**3
        )
        r_p, g_p, res_p = apps.rdf.compute(
            clustered_points, 24, 6.0, box_volume=60.0**3, prune=True
        )
        assert np.array_equal(r, r_p)
        assert np.array_equal(g, g_p)
        assert res_p.record.prune.tiles_pruned > 0

    def test_pcf_count(self, clustered_points):
        problem = apps.pcf.make_problem(2.0)
        cnt, cnt_p, _, rec_p = _run_pair(
            problem, "register-shm", "register", clustered_points
        )
        assert cnt == cnt_p
        # separated clusters: far tiles skip, intra-cluster tiles may bulk
        assert rec_p.prune.tiles_skipped > 0

    def test_join_pair_set(self, clustered_points):
        # sorted 1-D keys, small blocks: inter-cluster tiles skip, dense
        # same-cluster tiles bulk-emit their whole cross product
        keys = np.sort(clustered_points[:600, 0])
        problem = apps.join.make_problem(0.5, dims=1)
        base = apps.join.default_kernel(problem, block_size=BLOCK)
        pruned = apps.join.default_kernel(problem, block_size=BLOCK, prune=True)
        pairs, _ = apps.join.band_join(keys, 0.5, kernel=base)
        pairs_p, res_p = apps.join.band_join(keys, 0.5, kernel=pruned)
        assert np.array_equal(pairs, pairs_p)
        assert res_p.record.prune.tiles_skipped > 0

    def test_kde_underflow_skip(self):
        # tiny bandwidth: the underflow horizon (h * sqrt(1520)) sits well
        # inside the inter-cluster gaps, so far tiles skip exactly.  The
        # tile-at-a-time engine is bit-identical (each skipped tile's
        # contribution is an exact += 0.0); the batched and mega engines
        # regroup surviving tiles, so they get the engine's usual
        # re-association tolerance — same rule the seed applies across
        # engine modes.  The sequential backend is pinned explicitly so a
        # REPRO_SIM_BACKEND override (the CI backend matrix) cannot swap
        # the engine this exactness claim is about.
        pts = gaussian_clusters(
            800, dims=3, n_clusters=4, box=200.0, spread=0.2, seed=7
        )
        pts = pts[spatial_sort(pts)]
        problem = apps.kde.make_problem(0.05, dims=3)
        base = apps.kde.default_kernel(problem)
        pruned = apps.kde.default_kernel(problem, prune=True)
        sums, _ = base.execute(
            Device(), pts, batch_tiles=1, backend="sequential"
        )
        sums_p, rec_p = pruned.execute(
            Device(), pts, batch_tiles=1, backend="sequential"
        )
        assert np.array_equal(sums, sums_p)
        assert rec_p.prune.tiles_skipped > 0 and rec_p.prune.tiles_bulk == 0
        dens, _ = apps.kde.density(pts, bandwidth=0.05)
        dens_p, _ = apps.kde.density(pts, bandwidth=0.05, prune=True)
        np.testing.assert_allclose(dens_p, dens, rtol=1e-12)

    def test_uniform_data_still_identical(self):
        """No prunable tiles is the degenerate case — still exact."""
        pts = uniform_points(500, dims=3, box=4.0, seed=0)
        problem = apps.sdh.make_problem(64, 4.0 * math.sqrt(3.0))
        hist, hist_p, _, _ = _run_pair(
            problem, "register-roc", "privatized-shm", pts
        )
        assert np.array_equal(hist, hist_p)


class TestEngineModes:
    """Identity must survive every execution engine the kernel offers."""

    @pytest.mark.parametrize("workers", [2, 4])
    def test_parallel_workers(self, clustered_points, workers):
        problem = apps.sdh.make_problem(32, 8.0)
        hist, hist_p, _, _ = _run_pair(
            problem, "register-roc", "privatized-shm", clustered_points,
            workers=workers,
        )
        assert np.array_equal(hist, hist_p)

    @pytest.mark.parametrize("batch_tiles", [1, 3, 8])
    def test_tile_batching(self, clustered_points, batch_tiles):
        problem = apps.pcf.make_problem(2.0)
        cnt, cnt_p, _, _ = _run_pair(
            problem, "register-shm", "register", clustered_points,
            batch_tiles=batch_tiles,
        )
        assert cnt == cnt_p

    def test_blocks_stripes_merge(self, clustered_points):
        """Disjoint blocks= stripes of a pruned run merge to the full
        result — and each stripe equals its unpruned twin."""
        problem = apps.sdh.make_problem(32, 8.0)
        full, full_p, _, _ = _run_pair(
            problem, "register-roc", "privatized-shm", clustered_points
        )
        m = (len(clustered_points) + BLOCK - 1) // BLOCK
        half = m // 2
        merged = None
        for stripe in (range(half), range(half, m)):
            part, part_p, _, rec_p = _run_pair(
                problem, "register-roc", "privatized-shm", clustered_points,
                blocks=list(stripe),
            )
            assert np.array_equal(part, part_p)
            # the record's stats cover exactly this stripe's anchors
            assert rec_p.prune == prune_stats(
                clustered_points, BLOCK, problem, anchors=list(stripe)
            )
            merged = part_p if merged is None else merged + part_p
        assert np.array_equal(merged, full)
        assert np.array_equal(merged, full_p)

    def test_workers_and_batching_combined(self, clustered_points):
        problem = apps.sdh.make_problem(32, 8.0)
        hist, hist_p, _, _ = _run_pair(
            problem, "register-shm", "global-atomic", clustered_points,
            workers=3, batch_tiles=4,
        )
        assert np.array_equal(hist, hist_p)


class TestWorkReduction:
    """Pruning must actually remove work on clustered data."""

    def test_strictly_fewer_pair_evaluations(self, clustered_points):
        problem = apps.sdh.make_problem(32, 8.0)
        _, _, rec_b, rec_p = _run_pair(
            problem, "register-roc", "privatized-shm", clustered_points
        )
        assert _pair_evals(rec_p) < _pair_evals(rec_b)
        stats = rec_p.prune
        assert stats.pairs_pruned > 0
        # the counter delta is exactly dims * pruned pair population
        assert _pair_evals(rec_b) - _pair_evals(rec_p) == 3 * stats.pairs_pruned

    def test_fewer_shared_atomics_when_tiles_bulk(self, clustered_points):
        problem = apps.sdh.make_problem(32, 8.0)
        _, _, rec_b, rec_p = _run_pair(
            problem, "register-roc", "privatized-shm", clustered_points
        )
        a_b = rec_b.counters.atomics[MemSpace.SHARED]
        a_p = rec_p.counters.atomics[MemSpace.SHARED]
        stats = rec_p.prune
        # each bulk tile costs one shared atomic instead of nL*nR
        assert a_b - a_p == stats.pairs_pruned - stats.tiles_bulk

    def test_record_stats_match_pure_prediction(self, clustered_points):
        """The launch-recorded stats equal what prune_stats() predicts
        from the data alone (classification is execution-independent)."""
        problem = apps.pcf.make_problem(2.0)
        _, _, _, rec_p = _run_pair(
            problem, "register-shm", "register", clustered_points
        )
        assert rec_p.prune == prune_stats(clustered_points, BLOCK, problem)


class TestModelConsistency:
    """traffic(n, prune=stats) predicts pruned functional counters."""

    @pytest.mark.parametrize(
        "inp,out",
        [
            ("register-roc", "privatized-shm"),
            ("register-shm", "global-atomic"),
            ("register-shm", "register"),
        ],
    )
    def test_sdh_pcf_counter_agreement(self, clustered_points, inp, out):
        problem = (
            apps.sdh.make_problem(32, 8.0)
            if out != "register"
            else apps.pcf.make_problem(2.0)
        )
        kernel = make_kernel(problem, inp, out, block_size=BLOCK, prune=True)
        dev = Device()
        kernel.execute(dev, clustered_points)
        rec = dev.launches[0]
        got = rec.counters.as_dict()
        want = kernel.traffic(
            len(clustered_points), prune=rec.prune
        ).expected_counters().as_dict()
        assert got == want

    def test_simulate_reports_prune_extras(self, clustered_points):
        problem = apps.sdh.make_problem(32, 8.0)
        kernel = make_kernel(
            problem, "register-roc", "privatized-shm",
            block_size=BLOCK, prune=True,
        )
        dev = Device()
        _, rec = kernel.execute(dev, clustered_points)
        report = kernel.simulate(len(clustered_points), prune=rec.prune)
        assert report.extras["pairs_pruned"] == rec.prune.pairs_pruned
        assert report.extras["tiles_pruned"] == rec.prune.tiles_pruned
        # pruned prediction must beat the unpruned one
        base = make_kernel(
            problem, "register-roc", "privatized-shm", block_size=BLOCK
        )
        assert report.seconds < base.simulate(len(clustered_points)).seconds


class TestGuards:
    def test_prune_without_spec_raises(self):
        import dataclasses

        problem = dataclasses.replace(
            apps.sdh.make_problem(16, 10.0), pruning=None
        )
        with pytest.raises(ValueError, match="no PruningSpec"):
            make_kernel(problem, "register-roc", "privatized-shm", prune=True)

    def test_prune_on_shuffle_input_raises(self):
        problem = apps.pcf.make_problem(1.0)
        with pytest.raises(ValueError, match="does not support"):
            make_kernel(problem, "shuffle", "register", prune=True)

    def test_traffic_prune_on_shuffle_raises(self):
        problem = apps.pcf.make_problem(1.0)
        kernel = make_kernel(problem, "shuffle", "register")
        stats = prune_stats(
            uniform_points(200, dims=3, box=5.0, seed=1), 64, problem
        )
        with pytest.raises(ValueError, match="effective-geometry"):
            kernel.traffic(200, prune=stats)

    def test_pruned_kernel_name_tagged(self):
        problem = apps.pcf.make_problem(1.0)
        kernel = make_kernel(problem, "register-shm", "register", prune=True)
        assert "+prune" in kernel.name


class TestPlanner:
    def test_planner_ranks_pruned_candidates(self, clustered_points):
        problem = apps.sdh.make_problem(32, 8.0)
        plan = plan_kernel(
            problem, len(clustered_points), points=clustered_points
        )
        labels = [c.label for c in plan.ranking]
        assert any("+prune" in lbl for lbl in labels)
        # clustered data: the winner should be a pruned variant, and its
        # candidate carries the stats it was priced with
        best = plan.ranking[0]
        if best.kernel.prune:
            assert best.prune is not None and best.prune.tiles_pruned > 0

    def test_planner_without_points_has_no_pruned_candidates(self):
        problem = apps.sdh.make_problem(32, 8.0)
        plan = plan_kernel(problem, 1024)
        assert not any("+prune" in c.label for c in plan.ranking)

    def test_planner_rejects_mismatched_points(self):
        problem = apps.pcf.make_problem(1.0)
        pts = uniform_points(100, dims=3, box=5.0, seed=0)
        with pytest.raises(ValueError, match="100 rows"):
            plan_kernel(problem, 200, points=pts)
