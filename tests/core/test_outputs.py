"""Unit tests for the output strategies (Section IV-C machinery)."""

import math

import numpy as np
import pytest

from repro import apps
from repro.core import (
    OutputClass,
    OutputSpec,
    TwoBodyProblem,
    UpdateKind,
    EUCLIDEAN,
    analytic_conflict_degree,
    make_kernel,
    reduce_private_copies,
)
from repro.cpu_ref import brute
from repro.gpusim import Device, LaunchConfig, MemSpace

MAXD = 10.0 * math.sqrt(3.0)


class TestReduction:
    def test_sums_private_copies(self, device):
        m, hs = 7, 300
        rng = np.random.default_rng(1)
        host = rng.integers(0, 50, size=(m, hs))
        private = device.to_device(host)
        out = device.alloc(hs, np.int64)
        record = reduce_private_copies(device, private, out)
        assert (device.to_host(out) == host.sum(axis=0)).all()
        # one thread per output element (Section IV-C)
        assert record.config.grid_dim == (hs + 255) // 256

    def test_shape_mismatch(self, device):
        private = device.to_device(np.zeros((2, 10), dtype=np.int64))
        out = device.alloc(8, np.int64)
        with pytest.raises(ValueError, match="Hs"):
            reduce_private_copies(device, private, out)


class TestPrivatizedShared:
    def test_private_copies_flushed_per_block(self, small_points):
        problem = apps.sdh.make_problem(32, MAXD)
        kernel = make_kernel(problem, "register-shm", "privatized-shm", block_size=64)
        dev = Device()
        result, _ = kernel.execute(dev, small_points)
        # the staging buffer holds one private copy per block whose rows
        # sum to the final histogram
        private = [a for n, a in dev._allocations.items() if "private" in n][0]
        assert private.shape == (5, 32)
        assert (private.raw().sum(axis=0) == result).all()

    def test_shared_footprint_is_bins_times_4(self, sdh_problem):
        kernel = make_kernel(sdh_problem, "register-roc", "privatized-shm")
        assert kernel.output.shared_out_bytes(sdh_problem, 256) == 64 * 4

    def test_roc_plus_privatized_frees_tile_space(self, sdh_problem):
        roc = make_kernel(sdh_problem, "register-roc", "privatized-shm", block_size=256)
        shm = make_kernel(sdh_problem, "register-shm", "privatized-shm", block_size=256)
        # Section IV-D's whole point: the ROC kernel's shared usage is the
        # histogram only; the SHM kernel adds the tile on top
        assert roc.shared_bytes_per_block() == 64 * 4
        assert shm.shared_bytes_per_block() == 64 * 4 + 256 * 3 * 4


class TestGlobalAtomic:
    def test_conflict_degree_scalar_sum_is_warp(self, pcf_problem):
        assert analytic_conflict_degree(pcf_problem) == 32.0

    def test_conflict_degree_histogram_uniform(self):
        problem = apps.sdh.make_problem(1000, MAXD)
        d = analytic_conflict_degree(problem)
        assert 1.0 < d < 2.0

    def test_conflict_degree_matrix_is_one(self):
        problem = apps.gram.make_problem(EUCLIDEAN, dims=3)
        assert analytic_conflict_degree(problem) == 1.0

    def test_atomics_recorded_per_pair(self, small_points):
        problem = apps.sdh.make_problem(32, MAXD)
        kernel = make_kernel(problem, "register-shm", "global-atomic", block_size=64)
        dev = Device()
        kernel.execute(dev, small_points)
        n = len(small_points)
        assert dev.counters.atomic_count(MemSpace.GLOBAL) == n * (n - 1) // 2


class TestRegisterOutput:
    def test_scalar_partials_then_host_fold(self, small_points):
        problem = apps.pcf.make_problem(2.0)
        kernel = make_kernel(problem, "register-shm", "register", block_size=64)
        dev = Device()
        result, rec = kernel.execute(dev, small_points)
        # one global write per thread at kernel exit
        assert rec.counters.write_count(MemSpace.GLOBAL) == len(small_points)
        assert int(round(result)) == brute.pcf_count(small_points, 2.0)

    def test_topk_register_footprint_grows_with_k(self):
        p4 = apps.knn.make_problem(4)
        p16 = apps.knn.make_problem(16)
        k4 = make_kernel(p4, "register-shm", "register")
        k16 = make_kernel(p16, "register-shm", "register")
        assert k16.regs_per_thread() > k4.regs_per_thread()


class TestGlobalDirect:
    def test_emit_ticket_counter_consistency(self, rng):
        vals = rng.uniform(0, 100, size=200)
        pairs, res = apps.join.band_join(vals, 3.0)
        assert np.array_equal(pairs, brute.band_join(vals, 3.0))

    def test_emit_no_matches(self):
        vals = np.arange(0.0, 1000.0, 100.0)
        pairs, _ = apps.join.band_join(vals, 1.0)
        assert pairs.shape == (0, 2)

    def test_matrix_write_counts(self, rng):
        pts = rng.normal(size=(128, 3))
        problem = apps.gram.make_problem(EUCLIDEAN, dims=3)
        kernel = make_kernel(problem, "register-shm", "global-direct", block_size=64)
        dev = Device()
        kernel.execute(dev, pts)
        pairs = 128 * 127 // 2
        assert dev.launches[0].counters.write_count(MemSpace.GLOBAL) == 2 * pairs
