"""Tests for the kernel (Gram) matrix application."""

import numpy as np
import pytest
from scipy.linalg import eigvalsh

from repro.apps import gram
from repro.cpu_ref import brute
from repro.data import feature_vectors


@pytest.fixture
def feats():
    return feature_vectors(120, dims=6, seed=3)


def test_rbf_gram_matches_oracle(feats):
    G, _ = gram.compute(feats, bandwidth=1.5)
    assert np.allclose(G, brute.gram_matrix(feats, 1.5))


def test_gram_is_symmetric(feats):
    G, _ = gram.compute(feats, bandwidth=2.0)
    assert np.allclose(G, G.T)


def test_rbf_gram_is_positive_semidefinite(feats):
    """Mercer condition: the SVM substrate needs PSD kernels."""
    G, _ = gram.compute(feats, bandwidth=1.0)
    assert eigvalsh(G).min() > -1e-8


def test_unit_diagonal(feats):
    G, _ = gram.compute(feats, bandwidth=0.8)
    assert np.allclose(np.diag(G), 1.0)


def test_poly_gram(feats):
    G, _ = gram.poly_gram(feats, degree=2, c=1.0)
    ref = (feats @ feats.T + 1.0) ** 2
    assert np.allclose(G, ref)


def test_custom_kernel_diagonal_evaluated(feats):
    G, _ = gram.compute(
        feats, kernel_fn=gram.polynomial_kernel(1, c=0.0), unit_diagonal=False
    )
    assert np.allclose(np.diag(G), (feats * feats).sum(axis=1))
