"""Tests for the spatial distance histogram application."""

import math

import numpy as np
import pytest

from repro.apps import sdh
from repro.cpu_ref import brute, vectorized
from repro.data import uniform_points

MAXD = 10.0 * math.sqrt(3.0)


def test_compute_matches_oracle(small_points):
    hist, _ = sdh.compute(small_points, bins=80)
    span = small_points.max(axis=0) - small_points.min(axis=0)
    ref = brute.sdh_histogram(small_points, 80, float(np.linalg.norm(span)) / 80)
    assert np.array_equal(hist, ref)


def test_explicit_max_distance(small_points):
    hist, _ = sdh.compute(small_points, bins=64, max_distance=MAXD)
    ref = brute.sdh_histogram(small_points, 64, MAXD / 64)
    assert np.array_equal(hist, ref)


def test_distances_beyond_max_clamp_to_last_bucket(small_points):
    hist, _ = sdh.compute(small_points, bins=10, max_distance=1.0)
    n = len(small_points)
    assert hist.sum() == n * (n - 1) // 2
    assert hist[-1] > 0  # nearly everything lands in the clamp bucket


def test_bucket_map_edges():
    to_bucket = sdh.bucket_map(0.5, 8)
    d = np.array([0.0, 0.49, 0.5, 3.99, 4.0, 100.0])
    assert to_bucket(d).tolist() == [0, 0, 1, 7, 7, 7]


def test_bucket_map_validation():
    with pytest.raises(ValueError):
        sdh.bucket_map(0.0, 8)
    with pytest.raises(ValueError):
        sdh.make_problem(0, 1.0)
    with pytest.raises(ValueError):
        sdh.make_problem(8, -1.0)


def test_bin_probabilities_estimated_from_box():
    problem = sdh.make_problem(100, MAXD, box=10.0)
    probs = problem.output.bin_probabilities
    assert probs is not None
    assert probs.sum() == pytest.approx(1.0)
    # uniform-box distance distribution peaks mid-range
    assert np.argmax(probs) > 10


def test_matches_threaded_host_implementation(small_points):
    hist, _ = sdh.compute(small_points, bins=64, max_distance=MAXD)
    host = vectorized.sdh_histogram(small_points, 64, MAXD / 64, n_threads=3)
    assert np.array_equal(hist, host)


def test_default_kernel_is_reg_roc_out():
    problem = sdh.make_problem(64, MAXD)
    kernel = sdh.default_kernel(problem)
    assert kernel.name == "Reg-ROC-Out"
    assert kernel.input.name == "Register-ROC"
    assert kernel.output.name == "privatized-shm"
