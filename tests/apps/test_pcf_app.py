"""Tests for the 2-point correlation function application."""

import numpy as np
import pytest

from repro.apps import pcf
from repro.cpu_ref import brute
from repro.data import galaxy_mock, uniform_points


def test_count_matches_oracle(small_points):
    count, res = pcf.count_pairs(small_points, 1.5)
    assert count == brute.pcf_count(small_points, 1.5)
    assert res.seconds > 0


def test_radius_validation():
    with pytest.raises(ValueError, match="radius"):
        pcf.make_problem(0.0)


def test_monotone_in_radius(small_points):
    counts = [pcf.count_pairs(small_points, r)[0] for r in (0.5, 1.0, 2.0, 4.0)]
    assert counts == sorted(counts)


def test_clustered_data_shows_positive_correlation():
    """The astrophysics use case: a clustered catalogue must show
    xi(r) > 0 against a random catalogue at small separations."""
    data = galaxy_mock(600, box=50.0, seed=3)
    randoms = uniform_points(600, dims=3, box=50.0, seed=4)
    xi, _, _ = pcf.correlation_estimate(data, randoms, radius=2.0)
    assert xi > 0.5


def test_uniform_data_shows_no_correlation():
    a = uniform_points(600, dims=3, box=50.0, seed=5)
    b = uniform_points(600, dims=3, box=50.0, seed=6)
    xi, _, _ = pcf.correlation_estimate(a, b, radius=5.0)
    assert abs(xi) < 0.3


def test_correlation_rejects_empty_rr():
    a = uniform_points(50, dims=3, box=1000.0, seed=1)
    b = uniform_points(50, dims=3, box=1000.0, seed=2) + 1e6
    with pytest.raises(ValueError, match="zero pairs"):
        pcf.correlation_estimate(a, b, radius=1e-9)


def test_2d_points():
    pts = uniform_points(200, dims=2, box=10.0, seed=9)
    count, _ = pcf.count_pairs(pts, 1.0)
    assert count == brute.pcf_count(pts, 1.0)
