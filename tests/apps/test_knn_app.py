"""Tests for the all-point k-nearest-neighbours application."""

import numpy as np
import pytest

from repro.apps import knn
from repro.cpu_ref import brute, vectorized
from repro.data import gaussian_clusters, uniform_points


def test_matches_oracle(small_points):
    d, ids, _ = knn.compute(small_points, 5)
    rd, rids = brute.knn(small_points, 5)
    assert np.allclose(d, rd)
    # ties can permute ids at equal distance; compare distances strictly
    # and id sets per row
    assert all(set(a) == set(b) for a, b in zip(np.sort(ids, 1), np.sort(rids, 1)))


def test_matches_threaded_host(small_points):
    d, _, _ = knn.compute(small_points, 4)
    hd, _ = vectorized.knn(small_points, 4, n_threads=2)
    assert np.allclose(d, hd)


def test_k_one(small_points):
    d, ids, _ = knn.compute(small_points, 1)
    rd, _ = brute.knn(small_points, 1)
    assert np.allclose(d[:, 0], rd[:, 0])


def test_never_returns_self(small_points):
    _, ids, _ = knn.compute(small_points, 3)
    own = np.arange(len(small_points))[:, None]
    assert not (ids == own).any()


def test_sorted_ascending(small_points):
    d, _, _ = knn.compute(small_points, 6)
    assert (np.diff(d, axis=1) >= 0).all()


def test_k_validation(small_points):
    with pytest.raises(ValueError):
        knn.make_problem(0)
    with pytest.raises(ValueError, match="k="):
        knn.compute(small_points[:5], 5)


def test_outlier_scores_flag_injected_outlier():
    pts = gaussian_clusters(300, dims=3, n_clusters=4, spread=0.2, seed=1)
    pts = np.vstack([pts, [[50.0, 50.0, 50.0]]])  # far outside the box
    scores, _ = knn.outlier_scores(pts, k=5)
    assert np.argmax(scores) == len(pts) - 1
    assert scores[-1] > 10 * np.median(scores)
