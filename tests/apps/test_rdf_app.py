"""Tests for the radial distribution function application."""

import numpy as np
import pytest

from repro.apps import rdf
from repro.cpu_ref import brute
from repro.data import liquid_configuration, uniform_points


def test_matches_reference_normalization():
    pts, box = liquid_configuration(216, seed=2)
    r, g, _ = rdf.compute(pts, bins=40, r_max=box / 2, box_volume=box**3)
    ref = brute.rdf(pts, 40, box / 2, box**3)
    assert np.allclose(g, ref)
    assert len(r) == 40
    assert r[0] == pytest.approx(box / 160)


def test_liquid_structure_has_first_shell_peak():
    pts, box = liquid_configuration(512, density=0.9, jitter=0.05, seed=4)
    r, g, _ = rdf.compute(pts, bins=60, r_max=box / 2, box_volume=box**3)
    spacing = (1 / 0.9) ** (1 / 3)
    # the nearest-neighbour shell sits near the lattice spacing
    peak_r = r[np.argmax(g)]
    assert abs(peak_r - spacing) < 0.35 * spacing
    assert g.max() > 1.5


def test_excluded_volume_near_zero():
    pts, box = liquid_configuration(512, density=0.9, jitter=0.05, seed=4)
    r, g, _ = rdf.compute(pts, bins=60, r_max=box / 2, box_volume=box**3)
    assert g[0] == pytest.approx(0.0, abs=0.2)


def test_ideal_gas_is_flat():
    pts = uniform_points(800, dims=3, box=12.0, seed=8)
    r, g, _ = rdf.compute(pts, bins=20, r_max=4.0, box_volume=12.0**3)
    # away from r=0 noise, uniform data hovers around g=1 (minus modest
    # edge depletion for a non-periodic box)
    mid = g[3:15]
    assert 0.7 < mid.mean() < 1.15


def test_box_volume_validation():
    with pytest.raises(ValueError, match="box_volume"):
        rdf.compute(np.zeros((10, 3)), bins=8, r_max=1.0, box_volume=0.0)


def test_normalize_zero_safe():
    out = rdf.normalize(np.zeros(5, dtype=np.int64), 10, 1.0, 100.0)
    assert (out == 0).all()
