"""Tests for the kernel density / regression application."""

import numpy as np
import pytest

from repro.apps import kde
from repro.cpu_ref import brute
from repro.data import gaussian_clusters, uniform_points


def test_density_matches_oracle(small_points):
    dens, _ = kde.density(small_points, 1.2, normalize=False)
    assert np.allclose(dens, brute.kde_estimate(small_points, 1.2))


def test_normalization_constant(small_points):
    raw, _ = kde.density(small_points, 1.0, normalize=False)
    norm, _ = kde.density(small_points, 1.0, normalize=True)
    n = len(small_points)
    const = (2 * np.pi) ** 1.5
    assert np.allclose(norm, raw / ((n - 1) * const))


def test_density_higher_in_clusters():
    pts = gaussian_clusters(400, dims=3, n_clusters=2, spread=0.3, box=20.0, seed=2)
    lone = np.array([[10.0, 19.5, 0.5]])
    allpts = np.vstack([pts, lone])
    dens, _ = kde.density(allpts, 1.0)
    assert dens[-1] < np.percentile(dens[:-1], 20)


def test_regression_recovers_smooth_function():
    rng = np.random.default_rng(5)
    x = rng.uniform(0, 10, size=(400, 1))
    y = np.sin(x[:, 0]) + rng.normal(0, 0.05, 400)
    yhat, _, _ = kde.regression(x, y, bandwidth=0.4)
    rmse = np.sqrt(np.mean((yhat - np.sin(x[:, 0])) ** 2))
    assert rmse < 0.12


def test_regression_length_mismatch():
    with pytest.raises(ValueError, match="targets"):
        kde.regression(np.zeros((10, 2)), np.zeros(9), 1.0)


def test_density_positive(small_points):
    dens, _ = kde.density(small_points, 0.5)
    assert (dens >= 0).all()
