"""Tests for the relational band / spatial join application."""

import numpy as np
import pytest

from repro.apps import join
from repro.cpu_ref import brute
from repro.data import join_values, uniform_points


def test_band_join_matches_oracle():
    vals = join_values(250, duplicates=0.2, seed=1)
    pairs, res = join.band_join(vals, 8.0)
    assert np.array_equal(pairs, brute.band_join(vals, 8.0))
    assert res.seconds > 0


def test_duplicates_join_at_zero_eps():
    vals = np.array([1.0, 2.0, 1.0, 3.0, 1.0])
    pairs, _ = join.band_join(vals, 0.0)
    assert {tuple(p) for p in pairs.tolist()} == {(0, 2), (0, 4), (2, 4)}


def test_wide_band_joins_everything():
    vals = join_values(60, seed=2)
    pairs, _ = join.band_join(vals, 1e9)
    assert len(pairs) == 60 * 59 // 2


def test_spatial_join_matches_oracle():
    pts = uniform_points(200, dims=3, box=10.0, seed=3)
    pairs, _ = join.spatial_join(pts, 1.5)
    assert np.array_equal(pairs, brute.spatial_band_join(pts, 1.5))


def test_eps_validation():
    with pytest.raises(ValueError, match="eps"):
        join.make_problem(-1.0)


def test_selectivity_parameter_flows_to_problem():
    problem = join.make_problem(1.0, selectivity=0.25)
    assert problem.output.selectivity == 0.25


def test_emitted_pairs_are_unique():
    vals = join_values(300, duplicates=0.3, seed=4)
    pairs, _ = join.band_join(vals, 5.0)
    assert len({tuple(p) for p in pairs.tolist()}) == len(pairs)
