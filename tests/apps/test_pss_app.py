"""Tests for the pairwise statistical significance application."""

import numpy as np
import pytest

from repro.apps import pss
from repro.cpu_ref import brute
from repro.data import feature_vectors


@pytest.fixture
def profiles(rng):
    return feature_vectors(80, dims=20, seed=6)


def test_scores_match_oracle(profiles):
    scores, _, _ = pss.significance(profiles, n_perm=3)
    assert np.allclose(scores, brute.pss_scores(profiles))


def test_scores_symmetric(profiles):
    scores, _, _ = pss.significance(profiles, n_perm=3)
    assert np.allclose(scores, scores.T)


def test_null_moments_reasonable(profiles):
    mu0, sigma0 = pss.null_moments(profiles, n_perm=5)
    assert sigma0 > 0
    assert -1.0 <= mu0 <= 1.0


def test_related_pair_is_significant(rng):
    base = feature_vectors(60, dims=30, seed=7)
    # plant a near-duplicate pair
    planted = base.copy()
    planted[1] = planted[0] + rng.normal(0, 0.01, 30)
    _, z, _ = pss.significance(planted, n_perm=5)
    zs = z[~np.eye(60, dtype=bool)]
    assert z[0, 1] > np.percentile(zs, 99.5)
    assert z[0, 1] > 3.0


def test_determinism(profiles):
    a = pss.significance(profiles, n_perm=3, seed=1)[1]
    b = pss.significance(profiles, n_perm=3, seed=1)[1]
    assert np.array_equal(a, b)
