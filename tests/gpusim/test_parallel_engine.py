"""Differential tests for the parallel, batched execution engine.

The contract (ISSUE 1): for every kernel composition, the batched tile
path and the block-parallel launch loop must produce outputs equal to the
sequential tile-at-a-time engine and *identical* merged ``AccessCounters``.
Integer outputs (histograms, emitted pairs, kNN ids) must match exactly;
float accumulations are compared under the documented re-association
tolerance (batching and worker grouping change the summation order of
commutative float atomics, nothing else).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import apps
from repro.core.distances import EUCLIDEAN
from repro.core.kernels import make_kernel
from repro.core.kernels.base import compute_geometry
from repro.core.tiling import (
    cyclic_schedule,
    cyclic_trips,
    triangular_pair_mask,
    triangular_trips,
)
from repro.gpusim import (
    Device,
    LaunchConfig,
    MemSpace,
    ParallelLaunchError,
    TITAN_X,
    calculate_occupancy,
    resolve_workers,
)
from repro.gpusim.parallel import WORKERS_ENV

BLOCK = 64

#: (problem factory, input strategy, output strategy, load_balanced)
COMPOSITIONS = [
    # SDH (Type-II histogram): every input x both atomic output designs
    *[("sdh", inp, out, False)
      for inp in ("naive", "shm-shm", "register-shm", "register-roc", "shuffle")
      for out in ("global-atomic", "privatized-shm")],
    ("sdh", "register-roc", "privatized-shm", True),  # cyclic schedule
    # PCF (Type-I scalar sum): register accumulation and the atomic baseline
    *[("pcf", inp, "register", False)
      for inp in ("naive", "shm-shm", "register-shm", "register-roc", "shuffle")],
    ("pcf", "register-shm", "global-atomic", False),
    # full-row Type-I kinds
    ("kde", "register-shm", "register", False),
    ("knn", "register-roc", "register", False),
    # Type-III direct outputs
    ("gram", "register-shm", "global-direct", False),
    ("join", "register-shm", "global-direct", False),
]

#: (workers, batch_tiles) engine modes checked against (1, 1)
MODES = [(1, 3), (4, 1), (4, 3)]


def _problem(name: str):
    if name == "sdh":
        return apps.sdh.make_problem(64, 10.0 * math.sqrt(3.0), dims=3)
    if name == "pcf":
        return apps.pcf.make_problem(2.0, dims=3)
    if name == "kde":
        return apps.kde.make_problem(1.5, dims=3)
    if name == "knn":
        return apps.knn.make_problem(4, dims=3)
    if name == "gram":
        return apps.gram.make_problem(EUCLIDEAN, dims=3)
    if name == "join":
        return apps.join.make_problem(1.0, dims=3)
    raise KeyError(name)


def _run(problem, inp, out, lb, points, workers, batch_tiles):
    kernel = make_kernel(
        problem, inp, out, block_size=BLOCK, load_balanced=lb
    )
    device = Device(TITAN_X)
    result, record = kernel.execute(
        device, points, workers=workers, batch_tiles=batch_tiles
    )
    return result, record


def _assert_result_equal(expected, got, *, exact_float=False):
    if isinstance(expected, tuple):
        assert isinstance(got, tuple) and len(got) == len(expected)
        for e, g in zip(expected, got):
            _assert_result_equal(e, g, exact_float=exact_float)
        return
    if isinstance(expected, float):
        assert got == pytest.approx(expected, rel=1e-12, abs=1e-12)
        return
    e = np.asarray(expected)
    g = np.asarray(got)
    assert e.shape == g.shape
    if np.issubdtype(e.dtype, np.integer) or e.dtype == bool or exact_float:
        np.testing.assert_array_equal(e, g)
    else:
        np.testing.assert_allclose(e, g, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("prob,inp,out,lb", COMPOSITIONS)
@pytest.mark.parametrize("workers,batch", MODES)
def test_engine_matches_sequential(
    small_points, prob, inp, out, lb, workers, batch
):
    problem = _problem(prob)
    base_result, base_record = _run(problem, inp, out, lb, small_points, 1, 1)
    result, record = _run(problem, inp, out, lb, small_points, workers, batch)
    # merged access counters are identical (exact integer equality by space)
    assert record.counters == base_record.counters, (
        f"{prob}/{inp}/{out}: counters diverge\n"
        f"  base: {base_record.counters.as_dict()}\n"
        f"  got:  {record.counters.as_dict()}"
    )
    # conflict statistics agree too (float sums: tolerance for ordering)
    assert record.counters.atomic_conflict_issues == \
        base_record.counters.atomic_conflict_issues
    assert record.counters.atomic_conflict_degree == pytest.approx(
        base_record.counters.atomic_conflict_degree, rel=1e-9
    )
    assert record.workers == min(workers, base_record.blocks_run)
    assert record.blocks_run == base_record.blocks_run
    assert record.sync_counts == base_record.sync_counts
    assert record.max_shared_bytes == base_record.max_shared_bytes
    _assert_result_equal(base_result, result)


def test_emitted_pairs_deterministic_under_workers(small_points):
    problem = _problem("join")
    base, _ = _run(problem, "register-shm", "global-direct", False,
                   small_points, 1, 1)
    for _ in range(3):
        got, _ = _run(problem, "register-shm", "global-direct", False,
                      small_points, 4, 1)
        np.testing.assert_array_equal(base, got)


def test_workers_env_override(small_points, monkeypatch):
    problem = _problem("sdh")
    monkeypatch.setenv(WORKERS_ENV, "4")
    _, record = _run(problem, "register-roc", "privatized-shm", False,
                     small_points, None, 1)
    assert record.workers == 4
    monkeypatch.setenv(WORKERS_ENV, "auto")
    _, record = _run(problem, "register-roc", "privatized-shm", False,
                     small_points, None, 1)
    assert record.workers >= 1
    monkeypatch.delenv(WORKERS_ENV)
    _, record = _run(problem, "register-roc", "privatized-shm", False,
                     small_points, None, 1)
    assert record.workers == 1


def test_resolve_workers():
    assert resolve_workers(1, 10) == 1
    assert resolve_workers(8, 3) == 3  # clamped to the grid
    assert resolve_workers(0, 10) >= 1  # auto: one per core
    with pytest.raises(ValueError):
        resolve_workers(-2, 10)


def test_parallel_write_overlap_raises():
    """Two blocks writing the same global element violates the
    block-independence invariant and must be detected, not merged."""
    device = Device(TITAN_X)
    out = device.alloc(4, np.float64, name="clash")

    def kernel(ctx):
        out.st(0, float(ctx.block_id))  # every block writes element 0

    config = LaunchConfig(grid_dim=4, block_dim=32)
    with pytest.raises(ParallelLaunchError, match="written by more than one"):
        device.launch(kernel, config, workers=2)


def test_parallel_write_plus_atomic_raises():
    device = Device(TITAN_X)
    out = device.alloc(4, np.float64, name="mixed")

    def kernel(ctx):
        out.st(ctx.block_id, 1.0)
        out.atomic_add_at(np.array([ctx.block_id]), np.array([1.0]))

    config = LaunchConfig(grid_dim=4, block_dim=32)
    with pytest.raises(ParallelLaunchError, match="mixed with atomic"):
        device.launch(kernel, config, workers=2)


def test_parallel_disjoint_writes_and_tickets_merge_exactly():
    device = Device(TITAN_X)
    out = device.alloc(8, np.float64, name="rows")
    hist = device.alloc(4, np.int64, name="h")
    ticket = device.alloc(1, np.int64, name="t")

    def kernel(ctx):
        b = ctx.block_id
        out.st(b, float(b + 1))
        hist.atomic_add_at(np.array([b % 4]), np.array([1]))
        hist.counters.add_atomic(MemSpace.GLOBAL, 1)
        ticket.fetch_add0(2)

    config = LaunchConfig(grid_dim=8, block_dim=32)
    device.launch(kernel, config, workers=3)
    np.testing.assert_array_equal(
        device.to_host(out), np.arange(1.0, 9.0)
    )
    np.testing.assert_array_equal(device.to_host(hist), np.full(4, 2))
    assert int(device.to_host(ticket)[0]) == 16


def test_device_counters_accumulate_across_parallel_launches(small_points):
    problem = _problem("sdh")
    kernel = make_kernel(problem, "register-roc", "privatized-shm",
                         block_size=BLOCK)
    device = Device(TITAN_X)
    _, record = kernel.execute(device, small_points, workers=4)
    # device ledger includes the launch's counters (plus the reduction pass)
    for space, n in record.counters.reads.items():
        assert device.counters.reads.get(space, 0) >= n


# -- memoization layer ---------------------------------------------------------

def test_tiling_caches_return_frozen_singletons():
    a = triangular_pair_mask(32)
    b = triangular_pair_mask(32)
    assert a is b and not a.flags.writeable
    s1 = cyclic_schedule(32)
    s2 = cyclic_schedule(32)
    assert s1 is s2 and isinstance(s1, tuple)
    assert all(not p.flags.writeable for p in s1)
    assert triangular_trips(32) is triangular_trips(32)
    assert cyclic_trips(32) is cyclic_trips(32)
    with pytest.raises((ValueError, RuntimeError)):
        a[0, 0] = True  # read-only: cached buffers cannot be corrupted


def test_geometry_and_occupancy_memoized():
    g1 = compute_geometry(10_000, 256, False)
    g2 = compute_geometry(10_000, 256, False)
    assert g1 is g2
    assert compute_geometry.cache_info().hits >= 1
    o1 = calculate_occupancy(TITAN_X, 256, 32, 1024)
    o2 = calculate_occupancy(TITAN_X, 256, 32, 1024)
    assert o1 is o2


def test_geometry_is_immutable():
    g = compute_geometry(1000, 128, False)
    with pytest.raises(AttributeError):
        g.n = 5
