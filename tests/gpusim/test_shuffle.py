"""Unit tests for warp shuffle semantics (Algorithm 4's primitive)."""

import numpy as np
import pytest

from repro.gpusim import (
    GpuSimError,
    LaunchConfigError,
    shfl_broadcast,
    shfl_down,
    shfl_up,
    shfl_xor,
    warp_reduce_sum,
)


def test_broadcast_within_each_warp():
    regs = np.arange(64.0)
    out = shfl_broadcast(regs, 5)
    assert (out[:32] == 5.0).all()
    assert (out[32:] == 37.0).all()


def test_broadcast_matches_paper_figure8():
    # Fig. 8: lanes hold 32..39 (warp of 8); broadcast from tid 0 -> all 32
    regs = np.arange(32, 40, dtype=float)
    out = shfl_broadcast(regs, 0, warp_size=8)
    assert (out == 32.0).all()
    out1 = shfl_broadcast(regs, 1, warp_size=8)
    assert (out1 == 33.0).all()


def test_broadcast_leaves_input_untouched():
    regs = np.arange(32.0)
    shfl_broadcast(regs, 3)
    assert regs[0] == 0.0


def test_broadcast_vector_payload():
    regs = np.stack([np.arange(32.0), np.arange(32.0) * 10], axis=1)
    out = shfl_broadcast(regs, 2)
    assert (out[:, 0] == 2.0).all()
    assert (out[:, 1] == 20.0).all()


def test_broadcast_rejects_bad_lane():
    with pytest.raises(GpuSimError):
        shfl_broadcast(np.arange(32.0), 32)


def test_requires_whole_warps():
    with pytest.raises(LaunchConfigError):
        shfl_broadcast(np.arange(33.0), 0)


def test_shfl_down():
    regs = np.arange(32.0)
    out = shfl_down(regs, 4)
    assert out[0] == 4.0
    assert out[27] == 31.0
    # lanes past the end keep their own value
    assert (out[28:] == regs[28:]).all()


def test_shfl_up():
    regs = np.arange(32.0)
    out = shfl_up(regs, 4)
    assert out[4] == 0.0
    assert (out[:4] == regs[:4]).all()


def test_shfl_xor_is_involution():
    regs = np.arange(64.0)
    once = shfl_xor(regs, 5)
    twice = shfl_xor(once, 5)
    assert (twice == regs).all()


def test_shfl_xor_rejects_escaping_mask():
    with pytest.raises(GpuSimError):
        shfl_xor(np.arange(16.0), 16, warp_size=16)


def test_warp_reduce_sum_every_lane_gets_total():
    rng = np.random.default_rng(3)
    regs = rng.normal(size=64)
    out = warp_reduce_sum(regs)
    assert np.allclose(out[:32], regs[:32].sum())
    assert np.allclose(out[32:], regs[32:].sum())


def test_warp_reduce_sum_int():
    regs = np.arange(32)
    assert (warp_reduce_sum(regs) == 496).all()
