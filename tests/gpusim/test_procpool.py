"""Differential tests for the process-parallel launch backend.

Contract (the GIL-ceiling PR): for every kernel composition, forked
shared-memory worker processes must produce outputs, merged
``AccessCounters``, sync counts and shard reductions identical to the
thread backend — which the parallel-engine suite already pins to the
sequential engine.  Host-side state that lives outside device allocations
(emitted-pair buffers, per-block sync counts) must cross the process
boundary through :class:`~repro.gpusim.procpool.HostChannel` without
changing a byte.
"""

from __future__ import annotations

import math
import os

import numpy as np
import pytest

from repro import apps
from repro.core.distances import EUCLIDEAN
from repro.core.kernels import make_kernel
from repro.gpusim import (
    Device,
    LaunchConfig,
    MemSpace,
    ParallelLaunchError,
    TITAN_X,
    WorkerCrashError,
)
from repro.gpusim.parallel import CrashRecovery

BLOCK = 64

#: representative (problem, input, output, load_balanced) compositions —
#: one per output mechanism the shard reduction and host channels handle
COMPOSITIONS = [
    ("sdh", "naive", "global-atomic", False),       # global atomic histogram
    ("sdh", "register-roc", "privatized-shm", False),  # privatized copies
    ("sdh", "shuffle", "privatized-shm", True),     # cyclic schedule
    ("pcf", "register-shm", "register", False),     # register scalar sum
    ("pcf", "register-shm", "global-atomic", False),   # atomic scalar
    ("kde", "register-shm", "register", False),     # full-row per-point sums
    ("knn", "register-roc", "register", False),     # TOPK order statistics
    ("gram", "register-shm", "global-direct", False),  # direct matrix rows
    ("join", "register-shm", "global-direct", False),  # EMIT_PAIRS tickets
]


def _problem(name: str):
    if name == "sdh":
        return apps.sdh.make_problem(64, 10.0 * math.sqrt(3.0), dims=3)
    if name == "pcf":
        return apps.pcf.make_problem(2.0, dims=3)
    if name == "kde":
        return apps.kde.make_problem(1.5, dims=3)
    if name == "knn":
        return apps.knn.make_problem(4, dims=3)
    if name == "gram":
        return apps.gram.make_problem(EUCLIDEAN, dims=3)
    if name == "join":
        return apps.join.make_problem(1.0, dims=3)
    raise KeyError(name)


def _run(problem, inp, out, lb, points, *, backend, workers, batch_tiles=1):
    kernel = make_kernel(problem, inp, out, block_size=BLOCK, load_balanced=lb)
    return kernel.execute(
        Device(TITAN_X), points, workers=workers, batch_tiles=batch_tiles,
        backend=backend,
    )


def _assert_result_equal(expected, got):
    if isinstance(expected, tuple):
        assert isinstance(got, tuple) and len(got) == len(expected)
        for e, g in zip(expected, got):
            _assert_result_equal(e, g)
        return
    if isinstance(expected, float):
        assert got == pytest.approx(expected, rel=1e-12, abs=1e-12)
        return
    e = np.asarray(expected)
    g = np.asarray(got)
    assert e.shape == g.shape
    if np.issubdtype(e.dtype, np.integer) or e.dtype == bool:
        np.testing.assert_array_equal(e, g)
    else:
        np.testing.assert_allclose(e, g, rtol=1e-9, atol=1e-12)


@pytest.mark.parametrize("prob,inp,out,lb", COMPOSITIONS)
def test_process_backend_matches_thread_backend(small_points, prob, inp, out, lb):
    problem = _problem(prob)
    base_result, base_record = _run(
        problem, inp, out, lb, small_points, backend="threads", workers=3
    )
    result, record = _run(
        problem, inp, out, lb, small_points, backend="processes", workers=3
    )
    assert record.backend == "processes"
    assert record.counters == base_record.counters, (
        f"{prob}/{inp}/{out}: counters diverge\n"
        f"  threads:   {base_record.counters.as_dict()}\n"
        f"  processes: {record.counters.as_dict()}"
    )
    assert record.counters.atomic_conflict_issues == \
        base_record.counters.atomic_conflict_issues
    assert record.counters.atomic_conflict_degree == pytest.approx(
        base_record.counters.atomic_conflict_degree, rel=1e-9
    )
    assert record.workers == base_record.workers
    assert record.blocks_run == base_record.blocks_run
    assert record.sync_counts == base_record.sync_counts
    assert record.max_shared_bytes == base_record.max_shared_bytes
    _assert_result_equal(base_result, result)


def test_process_backend_matches_sequential(small_points):
    problem = _problem("sdh")
    seq, _ = _run(problem, "register-roc", "privatized-shm", False,
                  small_points, backend="sequential", workers=1)
    proc, _ = _run(problem, "register-roc", "privatized-shm", False,
                   small_points, backend="processes", workers=4)
    np.testing.assert_array_equal(seq, proc)


def test_single_worker_processes_degrades_to_serial(small_points):
    """One worker never pays the fork toll: the dispatcher falls back to
    the block-serial loop and records it honestly."""
    problem = _problem("pcf")
    _, record = _run(problem, "register-shm", "register", False,
                     small_points, backend="processes", workers=1)
    assert record.backend == "sequential"


def test_emitted_pairs_cross_process_deterministic(small_points):
    """EMIT_PAIRS writes host-side python dict state; the HostChannel must
    replay it in worker order so repeated runs are byte-identical."""
    problem = _problem("join")
    base, _ = _run(problem, "register-shm", "global-direct", False,
                   small_points, backend="threads", workers=1)
    for _ in range(3):
        got, _ = _run(problem, "register-shm", "global-direct", False,
                      small_points, backend="processes", workers=3)
        np.testing.assert_array_equal(base, got)


def test_process_backend_with_tile_batching(small_points):
    problem = _problem("sdh")
    base, base_rec = _run(problem, "register-shm", "global-atomic", False,
                          small_points, backend="sequential", workers=1)
    got, rec = _run(problem, "register-shm", "global-atomic", False,
                    small_points, backend="processes", workers=3,
                    batch_tiles=3)
    assert rec.counters == base_rec.counters
    np.testing.assert_array_equal(base, got)


def test_parallel_write_overlap_raises_across_processes():
    """The block-independence invariant is enforced by the shard merge in
    the parent, so a violation inside a child still surfaces."""
    device = Device(TITAN_X)
    out = device.alloc(4, np.float64, name="clash")

    def kernel(ctx):
        out.st(0, float(ctx.block_id))  # every block writes element 0

    config = LaunchConfig(grid_dim=4, block_dim=32)
    with pytest.raises(ParallelLaunchError, match="written by more than one"):
        device.launch(kernel, config, workers=2, backend="processes")


def test_disjoint_writes_and_tickets_merge_exactly_across_processes():
    device = Device(TITAN_X)
    out = device.alloc(8, np.float64, name="rows")
    hist = device.alloc(4, np.int64, name="h")
    ticket = device.alloc(1, np.int64, name="t")

    def kernel(ctx):
        b = ctx.block_id
        out.st(b, float(b + 1))
        hist.atomic_add_at(np.array([b % 4]), np.array([1]))
        hist.counters.add_atomic(MemSpace.GLOBAL, 1)
        ticket.fetch_add0(2)

    config = LaunchConfig(grid_dim=8, block_dim=32)
    record = device.launch(kernel, config, workers=3, backend="processes")
    assert record.backend == "processes"
    np.testing.assert_array_equal(device.to_host(out), np.arange(1.0, 9.0))
    np.testing.assert_array_equal(device.to_host(hist), np.full(4, 2))
    assert int(device.to_host(ticket)[0]) == 16


def test_child_exception_propagates_to_parent():
    device = Device(TITAN_X)

    def kernel(ctx):
        if ctx.block_id == 2:
            raise RuntimeError("boom in child")

    config = LaunchConfig(grid_dim=4, block_dim=32)
    with pytest.raises(RuntimeError, match="boom in child"):
        device.launch(kernel, config, workers=2, backend="processes")


def test_hard_worker_death_raises_crash_error():
    """A child that dies without reporting (here: ``os._exit``) must become
    a WorkerCrashError, not a hang or a silently-partial result."""
    device = Device(TITAN_X)

    def kernel(ctx):
        if ctx.block_id == 1:
            os._exit(17)

    config = LaunchConfig(grid_dim=4, block_dim=32)
    with pytest.raises(WorkerCrashError, match="died before reporting"):
        device.launch(kernel, config, workers=2, backend="processes")


def test_hard_worker_death_recovers_with_budget():
    """With a CrashRecovery budget the dead worker's whole deal re-runs in
    the parent and the result is complete."""
    events = []
    device = Device(
        TITAN_X,
        crash_recovery=CrashRecovery(max_retries=2, on_recover=events.append),
    )
    out = device.alloc(6, np.int64, name="done")
    parent_pid = os.getpid()

    def kernel(ctx):
        if ctx.block_id == 3 and os.getpid() != parent_pid:
            os._exit(11)  # dies only in the child; the parent re-run survives
        out.st(ctx.block_id, ctx.block_id + 1)

    config = LaunchConfig(grid_dim=6, block_dim=32)
    record = device.launch(kernel, config, workers=2, backend="processes")
    np.testing.assert_array_equal(device.to_host(out), np.arange(1, 7))
    assert record.counters.recoveries >= 1
    assert events and 3 in events[0]["blocks"]
