"""Unit tests for warp-divergence accounting (Section IV-E.1)."""

import numpy as np
import pytest

from repro.gpusim import (
    balanced_trip_counts,
    intra_block_divergence_gain,
    triangular_trip_counts,
    warp_loop_cycles,
)


def brute_force_warp_iterations(trips, warp=32):
    """Reference: simulate the SIMD machine lane by lane."""
    trips = np.asarray(trips)
    pad = (-trips.size) % warp
    trips = np.concatenate([trips, np.zeros(pad, dtype=int)])
    total = 0
    for w in range(0, trips.size, warp):
        total += trips[w : w + warp].max()
    return int(total)


def test_uniform_trips_no_divergence():
    prof = warp_loop_cycles(np.full(64, 10))
    assert prof.efficiency == 1.0
    assert prof.penalty == 1.0
    assert prof.warp_iterations == 20


def test_matches_brute_force_on_random_trips():
    rng = np.random.default_rng(0)
    for _ in range(10):
        trips = rng.integers(0, 50, size=96)
        prof = warp_loop_cycles(trips)
        assert prof.warp_iterations == brute_force_warp_iterations(trips)
        assert prof.thread_iterations == trips.sum()


def test_partial_warp_padded():
    trips = np.array([5, 3, 7])  # one ragged warp
    prof = warp_loop_cycles(trips)
    assert prof.warp_iterations == 7
    assert prof.lane_slots == 7 * 32


def test_negative_trips_rejected():
    with pytest.raises(ValueError):
        warp_loop_cycles(np.array([1, -1]))


def test_triangular_trips_shape():
    trips = triangular_trip_counts(256)
    assert trips[0] == 255 and trips[-1] == 0
    assert trips.sum() == 256 * 255 // 2


def test_balanced_trips_cover_same_pairs():
    plain = triangular_trip_counts(256).sum()
    balanced = balanced_trip_counts(256).sum()
    assert plain == balanced  # same number of evaluations


def test_balanced_requires_even_block():
    with pytest.raises(ValueError):
        balanced_trip_counts(255)


def test_gain_at_paper_block_size():
    """Fig. 7: 12-13% improvement at the SDH configuration (B=256)."""
    gain = intra_block_divergence_gain(256)
    assert 1.11 <= gain <= 1.14


def test_gain_shrinks_with_block_size():
    # the (1 + 32/B) law: bigger blocks divergence-amortize better
    g128 = intra_block_divergence_gain(128)
    g256 = intra_block_divergence_gain(256)
    g1024 = intra_block_divergence_gain(1024)
    assert g128 > g256 > g1024 > 1.0
    assert g1024 == pytest.approx(1.0 + 32 / 1024, rel=0.05)


def test_balanced_profile_is_divergence_free():
    prof = warp_loop_cycles(balanced_trip_counts(256))
    # the cyclic schedule's only imbalance is the half-block final step,
    # which is block-level, not intra-warp: efficiency stays ~1
    assert prof.penalty == pytest.approx(1.0, abs=1e-9)
