"""Unit tests for the access-counter ledger."""

import pytest

from repro.gpusim import AccessCounters, ELEMENT_BYTES, MemSpace


def test_counts_start_empty():
    c = AccessCounters()
    for space in MemSpace:
        assert c.total(space) == 0
    assert c.mean_conflict_degree() == 1.0


def test_add_and_query():
    c = AccessCounters()
    c.add_read(MemSpace.SHARED, 10)
    c.add_write(MemSpace.SHARED, 3)
    c.add_atomic(MemSpace.SHARED, 4)
    assert c.read_count(MemSpace.SHARED) == 10
    assert c.write_count(MemSpace.SHARED) == 3
    assert c.atomic_count(MemSpace.SHARED) == 4
    assert c.total(MemSpace.SHARED) == 17
    assert c.total(MemSpace.GLOBAL) == 0


def test_bytes_counts_atomics_twice():
    c = AccessCounters()
    c.add_read(MemSpace.GLOBAL, 5)
    c.add_atomic(MemSpace.GLOBAL, 2)
    assert c.bytes_for(MemSpace.GLOBAL) == ELEMENT_BYTES * (5 + 4)


def test_merge_accumulates():
    a = AccessCounters()
    a.add_read(MemSpace.ROC, 7)
    b = AccessCounters()
    b.add_read(MemSpace.ROC, 5)
    b.add_write(MemSpace.GLOBAL, 2)
    a.merge(b)
    assert a.read_count(MemSpace.ROC) == 12
    assert a.write_count(MemSpace.GLOBAL) == 2


def test_sum_classmethod():
    parts = []
    for i in range(4):
        c = AccessCounters()
        c.add_read(MemSpace.SHARED, i + 1)
        parts.append(c)
    total = AccessCounters.sum(parts)
    assert total.read_count(MemSpace.SHARED) == 10


def test_conflict_sample_mean():
    c = AccessCounters()
    c.add_conflict_sample(2.0, issues=3)
    c.add_conflict_sample(1.0, issues=1)
    assert c.mean_conflict_degree() == pytest.approx(7.0 / 4.0)


def test_conflict_sample_rejects_degree_below_one():
    c = AccessCounters()
    with pytest.raises(ValueError):
        c.add_conflict_sample(0.5)


def test_equality_compares_counts_only():
    a = AccessCounters()
    a.add_read(MemSpace.SHARED, 3)
    a.add_conflict_sample(4.0, 2)
    b = AccessCounters()
    b.add_read(MemSpace.SHARED, 3)
    assert a == b
    b.add_write(MemSpace.SHARED, 1)
    assert a != b


def test_as_dict_omits_empty_spaces():
    c = AccessCounters()
    c.add_read(MemSpace.SHARED, 1)
    d = c.as_dict()
    assert d["reads"] == {"shared": 1}
    assert d["writes"] == {}
