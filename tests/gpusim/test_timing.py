"""Unit tests for the pipeline timing model."""

import numpy as np
import pytest

from repro.gpusim import (
    Calibration,
    ComputeCost,
    MemSpace,
    PipelineCycles,
    TITAN_X,
    TrafficProfile,
    cycles_from_traffic,
    reduction_stage_seconds,
    scale_profile,
    simulate_time,
)

CAL = Calibration()


def test_cycles_from_compute_only():
    t = TrafficProfile(pairs=100, compute=ComputeCost(10, 2, 3))
    c = cycles_from_traffic(t, CAL)
    assert c.arith == 1000
    assert c.ctrl == 200
    assert c.compute == 1500
    assert c.shared == 0


def test_issue_scale_inflates_compute():
    t = TrafficProfile(pairs=100, compute=ComputeCost(10, 0, 0), issue_scale=1.5)
    assert cycles_from_traffic(t, CAL).arith == 1500


def test_memory_pipelines_use_calibration():
    t = TrafficProfile(shm_reads=10, shm_writes=5, roc_reads=4, global_scattered=2)
    c = cycles_from_traffic(t, CAL)
    assert c.shared == pytest.approx(15 * CAL.shm_issue)
    assert c.roc == pytest.approx(4 * CAL.roc_issue)
    assert c.global_ == pytest.approx(2 * CAL.global_issue)


def test_atomic_contention_scales_cost():
    base = cycles_from_traffic(TrafficProfile(shm_atomics=100), CAL).shared
    contended = cycles_from_traffic(
        TrafficProfile(shm_atomics=100, conflict_degree=2.0), CAL
    ).shared
    assert contended == pytest.approx(2.0 * base)


def test_stream_writes_priced_like_stream_reads():
    a = cycles_from_traffic(TrafficProfile(global_stream=10), CAL).global_
    b = cycles_from_traffic(TrafficProfile(global_stream_writes=10), CAL).global_
    assert a == b


def test_profile_addition_merges_counts():
    a = TrafficProfile(pairs=10, compute=ComputeCost(1, 1, 1), shm_reads=5)
    b = TrafficProfile(pairs=20, compute=ComputeCost(1, 1, 1), shm_reads=7)
    c = a + b
    assert c.pairs == 30
    assert c.shm_reads == 12


def test_profile_addition_weights_issue_scale():
    a = TrafficProfile(pairs=10, issue_scale=1.0)
    b = TrafficProfile(pairs=10, issue_scale=2.0)
    assert (a + b).issue_scale == pytest.approx(1.5)


def test_profile_addition_weights_conflicts_by_atomics():
    a = TrafficProfile(shm_atomics=10, conflict_degree=1.0)
    b = TrafficProfile(shm_atomics=30, conflict_degree=3.0)
    assert (a + b).conflict_degree == pytest.approx(2.5)


def test_profile_addition_rejects_different_compute():
    a = TrafficProfile(pairs=1, compute=ComputeCost(1, 1, 1))
    b = TrafficProfile(pairs=1, compute=ComputeCost(2, 2, 2))
    with pytest.raises(ValueError):
        a + b


def test_expected_counters_roundtrip():
    t = TrafficProfile(
        shm_reads=10, shm_writes=3, roc_reads=7,
        global_stream=5, global_stream_writes=4, global_scattered=2,
        shm_atomics=6, global_atomics=1, shuffles=9,
    )
    c = t.expected_counters()
    assert c.read_count(MemSpace.SHARED) == 10
    assert c.write_count(MemSpace.SHARED) == 3
    assert c.read_count(MemSpace.ROC) == 7
    assert c.read_count(MemSpace.GLOBAL) == 7
    assert c.write_count(MemSpace.GLOBAL) == 4
    assert c.atomic_count(MemSpace.SHARED) == 6
    assert c.atomic_count(MemSpace.GLOBAL) == 1
    assert c.read_count(MemSpace.REGISTER) == 9


def test_scale_profile():
    t = TrafficProfile(pairs=10, shm_reads=4, global_atomics=2)
    s = scale_profile(t, 2.5)
    assert s.pairs == 25
    assert s.shm_reads == 10
    assert s.global_atomics == 5


class TestSimulateTime:
    def test_dominant_pipeline_sets_time(self):
        c = PipelineCycles(arith=3.072e12)  # exactly 1 second of lane work
        t = simulate_time(c, spec=TITAN_X, fixed_overhead_s=0.0)
        assert t.seconds == pytest.approx(1.0)
        assert t.dominant == "compute"

    def test_interference_adds_secondary_pipelines(self):
        c = PipelineCycles(arith=1e9, shared=1e8)
        t = simulate_time(c, spec=TITAN_X, fixed_overhead_s=0.0)
        expected = (1e9 + CAL.interference_kappa * 1e8) / TITAN_X.peak_lane_cycles_per_sec
        assert t.seconds == pytest.approx(expected)

    def test_low_occupancy_slows_down(self):
        c = PipelineCycles(arith=1e9)
        full = simulate_time(c, spec=TITAN_X, occupancy=1.0, fixed_overhead_s=0.0)
        half = simulate_time(c, spec=TITAN_X, occupancy=0.5, fixed_overhead_s=0.0)
        assert half.seconds == pytest.approx(
            full.seconds * 2.0 ** CAL.occupancy_gamma
        )

    def test_invalid_occupancy_rejected(self):
        with pytest.raises(ValueError):
            simulate_time(PipelineCycles(), spec=TITAN_X, occupancy=0.0)
        with pytest.raises(ValueError):
            simulate_time(PipelineCycles(), spec=TITAN_X, occupancy=1.5)

    def test_utilization_fractions(self):
        c = PipelineCycles(arith=50, ctrl=10, other=20, shared=100)
        t = simulate_time(c, spec=TITAN_X, fixed_overhead_s=0.0)
        assert t.dominant == "shared"
        assert t.utilization["shared"] > t.utilization["compute"]
        assert t.utilization["arith"] == pytest.approx(
            50 / t.total_issue_cycles
        )

    def test_extra_seconds_added(self):
        c = PipelineCycles(arith=1e6)
        base = simulate_time(c, spec=TITAN_X, fixed_overhead_s=0.0)
        plus = simulate_time(c, spec=TITAN_X, fixed_overhead_s=0.0, extra_seconds=0.5)
        assert plus.seconds == pytest.approx(base.seconds + 0.5)


def test_pipeline_cycles_add_and_scale():
    a = PipelineCycles(arith=1, shared=2)
    b = PipelineCycles(arith=3, roc=4)
    c = a + b
    assert c.arith == 4 and c.shared == 2 and c.roc == 4
    s = c.scaled(2.0)
    assert s.arith == 8 and s.roc == 8


def test_reduction_stage_is_cheap():
    # Eq. 7's point: the combine stage is negligible against the O(N^2) pass
    secs = reduction_stage_seconds(2500, 4000, TITAN_X)
    assert secs < 0.01
