"""Shared-memory hygiene for the process-pool backend.

The multiprocessing resource tracker reclaims segments on any orderly
interpreter exit, but a SIGKILL of the whole process tree runs nothing —
/dev/shm keeps the files forever.  ``cleanup_stale_segments`` closes that
hole by parsing the owner pid out of every ``repro-pp-*`` segment name
and unlinking the ones whose owner is gone.  These tests reproduce the
leak with a real SIGKILLed child and verify the sweeper reclaims exactly
the orphans, never live segments.
"""

from __future__ import annotations

import os
import signal
import time
from multiprocessing import shared_memory

import pytest

from repro.gpusim.procpool import (
    _SEG_PREFIX,
    _create_segment,
    _forget_segment,
    _LIVE_SEGMENTS,
    _pid_alive,
    _unlink_by_name,
    cleanup_stale_segments,
)


def _shm_exists(name: str) -> bool:
    return os.path.exists(f"/dev/shm/{name}")


def test_segment_names_embed_owner_pid():
    seg = _create_segment(64)
    try:
        assert seg.name.startswith(f"{_SEG_PREFIX}-{os.getpid()}-")
        assert seg.name in _LIVE_SEGMENTS
    finally:
        seg.close()
        seg.unlink()
        _forget_segment(seg.name)
    assert seg.name not in _LIVE_SEGMENTS


def test_explicit_owner_overrides_creator():
    seg = _create_segment(64, owner=1)  # pid 1 is init: always alive
    try:
        owner, creator = seg.name[len(_SEG_PREFIX) + 1:].split("-")[:2]
        assert owner == "1" and creator == str(os.getpid())
    finally:
        seg.close()
        seg.unlink()
        _forget_segment(seg.name)


def test_pid_alive():
    assert _pid_alive(os.getpid())
    child = os.fork()
    if child == 0:  # pragma: no cover - exits immediately
        os._exit(0)
    os.waitpid(child, 0)
    assert not _pid_alive(child)


def test_unlink_by_name_missing_segment_is_false():
    assert not _unlink_by_name(f"{_SEG_PREFIX}-0-0-missing")


def test_cleanup_spares_live_segments():
    seg = _create_segment(64)
    try:
        removed = cleanup_stale_segments()
        assert seg.name not in removed
        assert _shm_exists(seg.name)
    finally:
        seg.close()
        seg.unlink()
        _forget_segment(seg.name)


def test_sigkill_orphan_is_reclaimed():
    """The hole the sweeper exists for: a SIGKILLed process leaves its
    segment in /dev/shm with no tracker alive to reclaim it."""
    r, w = os.pipe()
    pid = os.fork()
    if pid == 0:  # pragma: no cover - SIGKILLed while holding the segment
        os.close(r)
        seg = _create_segment(256)
        os.write(w, seg.name.encode())
        os.close(w)
        time.sleep(30)  # parent kills us long before this returns
        os._exit(1)
    os.close(w)
    name = os.read(r, 256).decode()
    os.close(r)
    assert name.startswith(f"{_SEG_PREFIX}-{pid}-")
    assert _shm_exists(name)

    os.kill(pid, signal.SIGKILL)
    _, status = os.waitpid(pid, 0)
    assert os.WIFSIGNALED(status) and os.WTERMSIG(status) == signal.SIGKILL
    # SIGKILL ran no cleanup: the segment is now an orphan on disk
    assert _shm_exists(name)

    removed = cleanup_stale_segments()
    assert name in removed
    assert not _shm_exists(name)
    # idempotent: a second sweep finds nothing of ours to do
    assert name not in cleanup_stale_segments()


def test_process_backend_launch_sweeps_orphans(sdh_problem, small_points):
    """Every process-pool launch starts with a sweep, so a crashed earlier
    run cannot poison /dev/shm for its successors."""
    # plant an orphan attributed to a pid that is certainly dead
    child = os.fork()
    if child == 0:  # pragma: no cover - exits immediately
        os._exit(0)
    os.waitpid(child, 0)
    name = f"{_SEG_PREFIX}-{child}-{child}-0"
    seg = shared_memory.SharedMemory(name=name, create=True, size=64)
    seg.close()
    assert _shm_exists(name)

    from repro.core import make_kernel
    from repro.gpusim import Device, TITAN_X

    kernel = make_kernel(sdh_problem, block_size=64)
    kernel.execute(Device(TITAN_X), small_points, workers=2,
                   backend="processes")
    assert not _shm_exists(name)


def test_launch_leaves_no_segments_behind(sdh_problem, small_points):
    from repro.core import make_kernel
    from repro.gpusim import Device, TITAN_X

    kernel = make_kernel(sdh_problem, block_size=64)
    kernel.execute(Device(TITAN_X), small_points, workers=2,
                   backend="processes")
    mine = [f for f in os.listdir("/dev/shm")
            if f.startswith(f"{_SEG_PREFIX}-{os.getpid()}-")]
    assert mine == []
    assert not _LIVE_SEGMENTS
