"""Unit tests for device specifications."""

import pytest

from repro.gpusim import (
    FERMI_M2090,
    GTX_980,
    MemSpace,
    PRESETS,
    TESLA_K40,
    TITAN_X,
    get_device_spec,
)


def test_titan_x_matches_paper_testbed():
    # Section IV-B: Titan X with 12 GB of global memory
    assert TITAN_X.global_mem_bytes == 12 * 1024**3
    assert TITAN_X.sm_count == 24
    assert TITAN_X.cores_per_sm == 128
    assert TITAN_X.total_cores == 3072
    assert TITAN_X.warp_size == 32
    # Section III-A: shared memory of size 96KB per multiprocessor
    assert TITAN_X.shared_mem_per_sm == 96 * 1024


def test_paper_latencies():
    # Section IV-B: "350, 92, and 28 clock cycles, respectively"
    lat = TITAN_X.latency
    assert lat.for_space(MemSpace.GLOBAL) == 350.0
    assert lat.for_space(MemSpace.ROC) == 92.0
    assert lat.for_space(MemSpace.SHARED) == 28.0
    assert lat.for_space(MemSpace.REGISTER) == 1.0


def test_paper_bandwidth_ordering():
    # "3TB/s vs 1TB/s for the ROC", global far below both
    assert TITAN_X.shared_bandwidth > TITAN_X.roc_bandwidth > TITAN_X.global_bandwidth
    assert TITAN_X.bandwidth_for(MemSpace.SHARED) == 3e12


def test_generations_feature_gate():
    # Section III-A: shuffle instructions start with Kepler
    assert not FERMI_M2090.supports_shuffle
    assert TESLA_K40.supports_shuffle
    assert TITAN_X.supports_shuffle


def test_gtx980_has_paper_quoted_bandwidth():
    # Section III-A quotes "up to 224 GB/sec" from the GTX 980 whitepaper
    assert GTX_980.global_bandwidth == 224e9


def test_preset_lookup():
    assert get_device_spec("titan-x") is TITAN_X
    with pytest.raises(KeyError, match="unknown device preset"):
        get_device_spec("gtx-9999")
    assert set(PRESETS) == {"titan-x", "gtx-980", "k40", "fermi"}


def test_with_overrides_returns_copy():
    slow = TITAN_X.with_overrides(clock_hz=5e8)
    assert slow.clock_hz == 5e8
    assert TITAN_X.clock_hz == 1e9
    assert slow.sm_count == TITAN_X.sm_count


def test_peak_lane_cycles():
    assert TITAN_X.peak_lane_cycles_per_sec == 3072 * 1e9
