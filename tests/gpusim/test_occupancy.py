"""Unit tests for the occupancy calculator (the engine behind Fig. 5)."""

import pytest

from repro.gpusim import (
    LaunchConfigError,
    RegisterPressureError,
    SharedMemoryError,
    TITAN_X,
    calculate_occupancy,
    max_block_size_for_shared,
)


def test_full_occupancy_small_kernel():
    occ = calculate_occupancy(TITAN_X, 256, regs_per_thread=32, shared_per_block=0)
    assert occ.occupancy == 1.0
    assert occ.blocks_per_sm == 8
    assert occ.active_warps_per_sm == 64


def test_thread_limit():
    occ = calculate_occupancy(TITAN_X, 1024, regs_per_thread=16, shared_per_block=0)
    assert occ.blocks_per_sm == 2  # 2048 / 1024


def test_shared_memory_steps():
    """The Fig. 5 staircase: growing shared usage knocks out blocks."""
    prev_blocks = None
    drops = 0
    for hist_bytes in (4_000, 13_000, 17_000, 20_000, 33_000):
        occ = calculate_occupancy(
            TITAN_X, 256, regs_per_thread=32, shared_per_block=hist_bytes
        )
        if prev_blocks is not None and occ.blocks_per_sm < prev_blocks:
            drops += 1
        prev_blocks = occ.blocks_per_sm
    assert drops >= 3  # several distinct steps


def test_shared_limited_reports_limiter():
    occ = calculate_occupancy(TITAN_X, 256, regs_per_thread=32, shared_per_block=20_000)
    assert occ.limiter == "shared"
    assert occ.blocks_per_sm == 4  # 96KB / 20KB (rounded to 20,224 B)
    assert occ.occupancy == 0.5


def test_register_limited():
    occ = calculate_occupancy(TITAN_X, 256, regs_per_thread=128, shared_per_block=0)
    # 128 regs x 256 thr = 32768 per block -> 2 blocks on a 64K-reg SM
    assert occ.blocks_per_sm == 2
    assert occ.limiter == "registers"


def test_register_granularity_rounding():
    a = calculate_occupancy(TITAN_X, 256, regs_per_thread=33)
    b = calculate_occupancy(TITAN_X, 256, regs_per_thread=40)
    assert a.blocks_per_sm == b.blocks_per_sm  # 33 rounds up to 40


def test_partial_warp_rounds_up():
    occ = calculate_occupancy(TITAN_X, 48, regs_per_thread=32)
    # 48 threads allocate 2 warps
    assert occ.active_threads_per_sm % 32 == 0


def test_block_too_large_raises():
    with pytest.raises(LaunchConfigError):
        calculate_occupancy(TITAN_X, 2048)


def test_zero_threads_raises():
    with pytest.raises(LaunchConfigError):
        calculate_occupancy(TITAN_X, 0)


def test_too_many_registers_raises():
    with pytest.raises(RegisterPressureError):
        calculate_occupancy(TITAN_X, 256, regs_per_thread=300)


def test_shared_over_block_limit_raises():
    with pytest.raises(SharedMemoryError):
        calculate_occupancy(TITAN_X, 256, shared_per_block=49 * 1024)


def test_occupancy_monotone_in_shared_usage():
    values = [
        calculate_occupancy(TITAN_X, 256, 32, s).occupancy
        for s in range(0, 40_000, 2_000)
    ]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_max_block_size_for_shared():
    # 12 bytes/thread tiles (3-d fp32): full blocks still fit
    assert max_block_size_for_shared(TITAN_X, 12) == 1024
    # enormous per-thread footprint: block shrinks to a warp multiple
    b = max_block_size_for_shared(TITAN_X, 100.0)
    assert b % 32 == 0
    assert b * 100 <= TITAN_X.shared_mem_per_block
    assert max_block_size_for_shared(TITAN_X, 0) == 1024


def test_str_mentions_limiter():
    occ = calculate_occupancy(TITAN_X, 256, 32, 20_000)
    assert "shared" in str(occ)
