"""Unit tests for profiler-style reporting (Tables II-IV machinery)."""

import pytest

from repro.gpusim import (
    AccessCounters,
    MemSpace,
    PipelineCycles,
    TITAN_X,
    bandwidth_table,
    build_report,
    format_bandwidth,
    simulate_time,
    utilization_table,
)


def make_report(shared_reads=1000, seconds_scale=1.0):
    counters = AccessCounters()
    counters.add_read(MemSpace.SHARED, shared_reads)
    counters.add_read(MemSpace.GLOBAL, 10)
    timing = simulate_time(
        PipelineCycles(arith=1e9 * seconds_scale, shared=5e8),
        spec=TITAN_X,
        fixed_overhead_s=0.0,
    )
    return build_report("Test", 1000, timing, TITAN_X, counters=counters)


def test_bandwidth_derivation():
    rep = make_report(shared_reads=1000)
    expected = 1000 * 4 / rep.seconds
    assert rep.achieved_bandwidth["shared"] == pytest.approx(expected)


def test_memory_summary_picks_busiest_unit():
    rep = make_report()
    assert "Shared Memory" in rep.memory_summary


def test_format_bandwidth_units():
    assert format_bandwidth(2.86e12) == "2.86 TB/s"
    assert format_bandwidth(270e9) == "270 GB/s"
    assert format_bandwidth(5e6) == "5 MB/s"
    assert format_bandwidth(10) == "10 B/s"


def test_utilization_table_renders_all_kernels():
    reps = [make_report(), make_report(shared_reads=5)]
    reps[1].kernel = "Other"
    table = utilization_table(reps)
    assert "Test" in table and "Other" in table
    assert "Arithmetic" in table and "Control-flow" in table


def test_bandwidth_table_has_paper_columns():
    table = bandwidth_table([make_report()])
    for col in ("Shared Memory", "L2 Cache", "Data cache", "Global Load"):
        assert col in table


def test_report_without_counters_has_no_bandwidth():
    timing = simulate_time(
        PipelineCycles(arith=1e9), spec=TITAN_X, fixed_overhead_s=0.0
    )
    rep = build_report("NoCounters", 10, timing, TITAN_X)
    assert rep.achieved_bandwidth == {}


def _summary_for(utilization):
    rep = make_report()
    rep.utilization = utilization
    return rep.memory_summary


def test_memory_summary_tie_breaks_deterministically():
    # exact ties resolve by the fixed priority shared > roc > global,
    # regardless of the utilization dict's insertion order
    tied = {"shared": 0.5, "roc": 0.5, "global": 0.5}
    reordered = {"global": 0.5, "roc": 0.5, "shared": 0.5}
    assert _summary_for(tied) == _summary_for(reordered)
    assert "Shared Memory" in _summary_for(tied)
    assert "Data cache" in _summary_for({"roc": 0.4, "global": 0.4})


def test_memory_summary_idle_when_all_zero():
    assert _summary_for({}) == "idle"
    assert _summary_for({"shared": 0.0, "global": 0.0}) == "idle"


def test_memory_summary_strict_maximum_still_wins():
    assert "Global" in _summary_for({"shared": 0.1, "global": 0.9})
