"""Tests for the L2 cache model."""

import numpy as np
import pytest

from repro.gpusim import DEFAULT_CALIBRATION, TITAN_X
from repro.gpusim.l2cache import (
    NaiveL2Analysis,
    SetAssociativeCache,
    analyze_naive_kernel,
)


def small_cache():
    # 4 sets x 2 ways x 32-byte lines = 256 bytes
    return SetAssociativeCache(size_bytes=256, line_bytes=32, ways=2)


class TestSetAssociativeCache:
    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=100, line_bytes=32, ways=2)
        with pytest.raises(ValueError):
            SetAssociativeCache(size_bytes=0)

    def test_cold_miss_then_hit(self):
        c = small_cache()
        stats = c.access([0, 4, 8, 31])  # same 32-byte line
        assert stats.accesses == 4
        assert stats.hits == 3
        assert stats.misses == 1

    def test_distinct_lines_all_miss(self):
        c = small_cache()
        stats = c.access([0, 32, 64, 96])
        assert stats.hits == 0

    def test_lru_eviction(self):
        c = small_cache()
        # set 0 holds lines 0 and 4 (stride num_sets * line = 128)
        c.access([0, 128, 256])  # third line evicts line 0
        stats = c.access([0])
        assert stats.hits == 0 + 3 - 3  # line 0 was evicted: miss
        assert c.stats.misses == 4

    def test_lru_order_updated_on_hit(self):
        c = small_cache()
        c.access([0, 128])  # set 0: [0, 128]
        c.access([0])  # touch 0: LRU is now 128
        c.access([256])  # evicts 128, not 0
        stats = c.access([0])
        assert stats.hits >= 2  # the touch and this final access hit

    def test_streaming_over_capacity(self):
        c = small_cache()
        addrs = np.arange(0, 4096, 4)  # 16x the capacity, sequential
        stats = c.access(addrs)
        # one miss per 32-byte line, hits for the 7 other words
        assert stats.hit_rate == pytest.approx(7 / 8)

    def test_flush(self):
        c = small_cache()
        c.access([0])
        c.flush()
        assert c.stats.accesses == 0
        assert c.access([0]).hits == 0


class TestNaiveAnalysis:
    def test_high_hit_rate_within_l2(self):
        a = analyze_naive_kernel(100_000)
        assert a.fits_in_l2
        assert a.hit_rate > 0.95

    def test_effective_latency_far_below_raw_dram(self):
        """The point of the analysis: even at paper scale the L2 keeps
        the mean pre-hiding latency far below the raw 350 cycles, which
        is why the calibrated ``global_issue`` (53 cycles, pinned by
        Fig. 2's 5.5x) is physically plausible."""
        a = analyze_naive_kernel(1_000_000)
        assert a.effective_cycles < TITAN_X.latency.global_mem / 2.5
        assert a.effective_cycles > DEFAULT_CALIBRATION.global_issue

    def test_degrades_when_working_set_overflows(self):
        small = analyze_naive_kernel(100_000)  # 1.2 MB: fits 3 MB L2
        huge = analyze_naive_kernel(5_000_000)  # 60 MB: does not
        assert not huge.fits_in_l2
        assert huge.hit_rate < small.hit_rate
        assert huge.effective_cycles > small.effective_cycles

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_naive_kernel(0)

    def test_simulated_warp_stream_confirms_model(self):
        """Drive the exact cache with the Naive pattern (whole warps
        reading consecutive elements) and compare hit rates."""
        cache = SetAssociativeCache(size_bytes=8192, line_bytes=32, ways=4)
        # a warp reads element j (4 bytes) 32 times, j advancing
        addrs = []
        for j in range(512):
            addrs.extend([4 * j] * 32)
        stats = cache.access(addrs)
        model = analyze_naive_kernel(512, dims=1, l2_bytes=8192)
        assert stats.hit_rate == pytest.approx(model.hit_rate, abs=0.01)
