"""Unit tests for atomic operations and conflict accounting."""

import numpy as np
import pytest

from repro.gpusim import (
    AccessCounters,
    MemSpace,
    MemorySpaceError,
    TrackedArray,
    atomic_add,
    atomic_max,
    atomic_ticket,
)


def shared(n=16, dtype=np.int64):
    c = AccessCounters()
    return TrackedArray(np.zeros(n, dtype=dtype), MemSpace.SHARED, c, "shm"), c


def test_atomic_add_is_correct_under_duplicates():
    arr, c = shared(4)
    idx = np.array([0, 0, 1, 3, 3, 3])
    atomic_add(arr, idx, np.ones(6, dtype=np.int64))
    assert arr.raw().tolist() == [2, 1, 0, 3]
    assert c.atomic_count(MemSpace.SHARED) == 6


def test_atomic_add_scalar_value_broadcast():
    arr, _ = shared(4)
    atomic_add(arr, np.array([1, 1]), 5)
    assert arr.raw()[1] == 10


def test_atomic_add_shape_mismatch():
    arr, _ = shared(4)
    with pytest.raises(ValueError, match="differ"):
        atomic_add(arr, np.array([0, 1]), np.ones(3))


def test_conflict_degree_all_same_address():
    arr, c = shared(4)
    atomic_add(arr, np.zeros(32, dtype=int), np.ones(32, dtype=np.int64))
    assert c.mean_conflict_degree() == pytest.approx(32.0)


def test_conflict_degree_distinct_addresses():
    arr, c = shared(32)
    atomic_add(arr, np.arange(32), np.ones(32, dtype=np.int64))
    assert c.mean_conflict_degree() == pytest.approx(1.0)


def test_conflict_degree_two_warps_mixed():
    arr, c = shared(64)
    idx = np.concatenate([np.zeros(32, dtype=int), np.arange(32)])
    atomic_add(arr, idx, np.ones(64, dtype=np.int64))
    # warp 0 fully serialized (32), warp 1 conflict-free (1)
    assert c.mean_conflict_degree() == pytest.approx(16.5)
    assert c.atomic_conflict_issues == 2


def test_conflict_sample_override():
    arr, c = shared(8)
    atomic_add(arr, np.arange(8), np.ones(8, dtype=np.int64), conflict_sample=(6.0, 2))
    assert c.mean_conflict_degree() == pytest.approx(3.0)


def test_atomics_rejected_on_roc():
    c = AccessCounters()
    roc = TrackedArray(np.zeros(4), MemSpace.ROC, c, "roc")
    with pytest.raises(MemorySpaceError):
        atomic_add(roc, np.array([0]), np.array([1.0]))


def test_atomic_max():
    arr, c = shared(4, dtype=np.float64)
    atomic_max(arr, np.array([0, 0, 1]), np.array([3.0, 7.0, 2.0]))
    assert arr.raw()[0] == 7.0
    assert arr.raw()[1] == 2.0
    assert c.atomic_count(MemSpace.SHARED) == 3


class TestTicket:
    def make_counter(self):
        c = AccessCounters()
        return TrackedArray(np.zeros(1, dtype=np.int64), MemSpace.GLOBAL, c, "tk"), c

    def test_reservations_are_consecutive(self):
        counter, c = self.make_counter()
        assert atomic_ticket(counter, 5) == 0
        assert atomic_ticket(counter, 3) == 5
        assert atomic_ticket(counter, 1) == 8
        assert c.atomic_count(MemSpace.GLOBAL) == 3

    def test_ticket_requires_global(self):
        c = AccessCounters()
        shm = TrackedArray(np.zeros(1, dtype=np.int64), MemSpace.SHARED, c, "s")
        with pytest.raises(MemorySpaceError):
            atomic_ticket(shm, 1)
