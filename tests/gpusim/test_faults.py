"""Unit tests for the deterministic fault-injection framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import (
    DeviceAllocationError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedAllocationFailure,
    SharedMemoryError,
    TransientFault,
    WorkerCrashError,
    as_injector,
)


# -- plans --------------------------------------------------------------------
def test_chaos_plan_is_deterministic_per_seed():
    a = FaultPlan.chaos(7, num_devices=3)
    b = FaultPlan.chaos(7, num_devices=3)
    assert [(s.kind, s.device, s.launch, s.block, s.count) for s in a.specs] \
        == [(s.kind, s.device, s.launch, s.block, s.count) for s in b.specs]
    c = FaultPlan.chaos(8, num_devices=3)
    assert [(s.kind, s.device) for s in a.specs] != [
        (s.kind, s.device) for s in c.specs
    ] or a.seed != c.seed


def test_chaos_plan_contents():
    plan = FaultPlan.chaos(0, num_devices=2)
    kinds = [s.kind for s in plan.specs]
    assert kinds == [
        FaultKind.ALLOC_TRANSIENT,
        FaultKind.WORKER_CRASH,
        FaultKind.CORRUPT_SHARD,
        FaultKind.DEVICE_DEAD,
    ]
    dead = plan.specs[-1]
    assert dead.device != 0  # device 0 always survives as failover target
    assert dead.count is None  # dead forever
    alloc = plan.specs[0]
    assert alloc.device != dead.device  # targets a survivor
    # single device: no dead-device trigger
    assert FaultKind.DEVICE_DEAD not in [
        s.kind for s in FaultPlan.chaos(0, num_devices=1).specs
    ]


def test_spec_matching_wildcards():
    spec = FaultSpec(FaultKind.WORKER_CRASH, device=None, block=3)
    assert spec.matches(device=0, block=3)
    assert spec.matches(device=5, block=3)
    assert not spec.matches(device=0, block=2)


# -- hooks --------------------------------------------------------------------
def test_on_launch_raises_and_consumes_transient():
    inj = FaultInjector(FaultPlan(
        [FaultSpec(FaultKind.ALLOC_TRANSIENT, device=0, launch=0)]
    ))
    with pytest.raises(InjectedAllocationFailure):
        inj.on_launch(0, 0)
    inj.on_launch(0, 0)  # consumed: second identical launch is clean
    assert [e.kind for e in inj.events] == [FaultKind.ALLOC_TRANSIENT]


def test_on_launch_dead_device_never_exhausts():
    inj = FaultInjector(FaultPlan(
        [FaultSpec(FaultKind.DEVICE_DEAD, device=1, count=None)]
    ))
    for _ in range(4):
        with pytest.raises(DeviceAllocationError):
            inj.on_launch(1, 0)
    inj.on_launch(0, 0)  # other devices unaffected
    assert len(inj.events) == 4


def test_on_launch_shm_overflow():
    inj = FaultInjector(FaultPlan(
        [FaultSpec(FaultKind.SHM_OVERFLOW, device=0, launch=1)]
    ))
    inj.on_launch(0, 0)
    with pytest.raises(SharedMemoryError):
        inj.on_launch(0, 1)


def test_on_block_crash_is_block_pinned():
    inj = FaultInjector(FaultPlan(
        [FaultSpec(FaultKind.WORKER_CRASH, block=2)]
    ))
    inj.on_block(0, 0)
    inj.on_block(0, 1)
    with pytest.raises(WorkerCrashError):
        inj.on_block(0, 2)
    inj.on_block(0, 2)  # consumed


def test_on_merge_poisons_float_with_nan():
    inj = FaultInjector(FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)], seed=5))
    arr = np.zeros(16, dtype=np.float64)
    inj.on_merge(0, {"out": arr})
    assert np.isnan(arr).sum() == 1
    ev = inj.events[0]
    assert ev.kind is FaultKind.CORRUPT_SHARD
    assert ev.array == "out"
    assert np.isnan(arr[ev.index])


def test_on_merge_flips_bit_in_int_buffer():
    inj = FaultInjector(FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)], seed=5))
    arr = np.zeros(16, dtype=np.int64)
    inj.on_merge(0, {"hist": arr})
    assert arr.sum() == 1 << 30


def test_on_merge_target_deterministic_per_seed():
    picks = []
    for _ in range(2):
        inj = FaultInjector(
            FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)], seed=9)
        )
        a = np.zeros(64)
        b = np.zeros(64)
        inj.on_merge(0, {"a": a, "b": b})
        ev = inj.events[0]
        picks.append((ev.array, ev.index))
    assert picks[0] == picks[1]


def test_on_merge_skips_when_nothing_mutated():
    inj = FaultInjector(FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)]))
    inj.on_merge(0, {})
    assert inj.events == []  # trigger not consumed either
    arr = np.zeros(4)
    inj.on_merge(0, {"x": arr})
    assert len(inj.events) == 1


def test_straggler_delays_without_error():
    inj = FaultInjector(FaultPlan(
        [FaultSpec(FaultKind.STRAGGLER, block=0, delay_seconds=0.0)]
    ))
    inj.on_block(0, 0)  # sleeps 0s, records, no raise
    assert [e.kind for e in inj.events] == [FaultKind.STRAGGLER]


# -- coercion -----------------------------------------------------------------
def test_as_injector_coercions():
    assert as_injector(None) is None
    inj = FaultInjector(FaultPlan(seed=3))
    assert as_injector(inj) is inj
    plan = FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)], seed=2)
    wrapped = as_injector(plan)
    assert isinstance(wrapped, FaultInjector) and wrapped.plan is plan
    seeded = as_injector(4, num_devices=2)
    assert isinstance(seeded, FaultInjector)
    assert seeded.plan.seed == 4
    assert FaultKind.DEVICE_DEAD in [s.kind for s in seeded.plan.specs]


def test_injected_failure_is_transient_and_allocation_error():
    exc = InjectedAllocationFailure("x")
    assert isinstance(exc, TransientFault)
    assert isinstance(exc, DeviceAllocationError)
