"""Unit tests for the deterministic fault-injection framework."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import (
    DeviceAllocationError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedAllocationFailure,
    SharedMemoryError,
    TransientFault,
    WorkerCrashError,
    as_injector,
)


# -- plans --------------------------------------------------------------------
def test_chaos_plan_is_deterministic_per_seed():
    a = FaultPlan.chaos(7, num_devices=3)
    b = FaultPlan.chaos(7, num_devices=3)
    assert [(s.kind, s.device, s.launch, s.block, s.count) for s in a.specs] \
        == [(s.kind, s.device, s.launch, s.block, s.count) for s in b.specs]
    c = FaultPlan.chaos(8, num_devices=3)
    assert [(s.kind, s.device) for s in a.specs] != [
        (s.kind, s.device) for s in c.specs
    ] or a.seed != c.seed


def test_chaos_plan_contents():
    plan = FaultPlan.chaos(0, num_devices=2)
    kinds = [s.kind for s in plan.specs]
    assert kinds == [
        FaultKind.ALLOC_TRANSIENT,
        FaultKind.WORKER_CRASH,
        FaultKind.CORRUPT_SHARD,
        FaultKind.DEVICE_DEAD,
    ]
    dead = plan.specs[-1]
    assert dead.device != 0  # device 0 always survives as failover target
    assert dead.count is None  # dead forever
    alloc = plan.specs[0]
    assert alloc.device != dead.device  # targets a survivor
    # single device: no dead-device trigger
    assert FaultKind.DEVICE_DEAD not in [
        s.kind for s in FaultPlan.chaos(0, num_devices=1).specs
    ]


def test_spec_matching_wildcards():
    spec = FaultSpec(FaultKind.WORKER_CRASH, device=None, block=3)
    assert spec.matches(device=0, block=3)
    assert spec.matches(device=5, block=3)
    assert not spec.matches(device=0, block=2)


# -- hooks --------------------------------------------------------------------
def test_on_launch_raises_and_consumes_transient():
    inj = FaultInjector(FaultPlan(
        [FaultSpec(FaultKind.ALLOC_TRANSIENT, device=0, launch=0)]
    ))
    with pytest.raises(InjectedAllocationFailure):
        inj.on_launch(0, 0)
    inj.on_launch(0, 0)  # consumed: second identical launch is clean
    assert [e.kind for e in inj.events] == [FaultKind.ALLOC_TRANSIENT]


def test_on_launch_dead_device_never_exhausts():
    inj = FaultInjector(FaultPlan(
        [FaultSpec(FaultKind.DEVICE_DEAD, device=1, count=None)]
    ))
    for _ in range(4):
        with pytest.raises(DeviceAllocationError):
            inj.on_launch(1, 0)
    inj.on_launch(0, 0)  # other devices unaffected
    assert len(inj.events) == 4


def test_on_launch_shm_overflow():
    inj = FaultInjector(FaultPlan(
        [FaultSpec(FaultKind.SHM_OVERFLOW, device=0, launch=1)]
    ))
    inj.on_launch(0, 0)
    with pytest.raises(SharedMemoryError):
        inj.on_launch(0, 1)


def test_on_block_crash_is_block_pinned():
    inj = FaultInjector(FaultPlan(
        [FaultSpec(FaultKind.WORKER_CRASH, block=2)]
    ))
    inj.on_block(0, 0)
    inj.on_block(0, 1)
    with pytest.raises(WorkerCrashError):
        inj.on_block(0, 2)
    inj.on_block(0, 2)  # consumed


def test_on_merge_poisons_float_with_nan():
    inj = FaultInjector(FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)], seed=5))
    arr = np.zeros(16, dtype=np.float64)
    inj.on_merge(0, {"out": arr})
    assert np.isnan(arr).sum() == 1
    ev = inj.events[0]
    assert ev.kind is FaultKind.CORRUPT_SHARD
    assert ev.array == "out"
    assert np.isnan(arr[ev.index])


def test_on_merge_flips_bit_in_int_buffer():
    inj = FaultInjector(FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)], seed=5))
    arr = np.zeros(16, dtype=np.int64)
    inj.on_merge(0, {"hist": arr})
    assert arr.sum() == 1 << 30


def test_on_merge_target_deterministic_per_seed():
    picks = []
    for _ in range(2):
        inj = FaultInjector(
            FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)], seed=9)
        )
        a = np.zeros(64)
        b = np.zeros(64)
        inj.on_merge(0, {"a": a, "b": b})
        ev = inj.events[0]
        picks.append((ev.array, ev.index))
    assert picks[0] == picks[1]


def test_on_merge_skips_when_nothing_mutated():
    inj = FaultInjector(FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)]))
    inj.on_merge(0, {})
    assert inj.events == []  # trigger not consumed either
    arr = np.zeros(4)
    inj.on_merge(0, {"x": arr})
    assert len(inj.events) == 1


def test_straggler_delays_without_error():
    inj = FaultInjector(FaultPlan(
        [FaultSpec(FaultKind.STRAGGLER, block=0, delay_seconds=0.0)]
    ))
    inj.on_block(0, 0)  # sleeps 0s, records, no raise
    assert [e.kind for e in inj.events] == [FaultKind.STRAGGLER]


# -- coercion -----------------------------------------------------------------
def test_as_injector_coercions():
    assert as_injector(None) is None
    inj = FaultInjector(FaultPlan(seed=3))
    assert as_injector(inj) is inj
    plan = FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)], seed=2)
    wrapped = as_injector(plan)
    assert isinstance(wrapped, FaultInjector) and wrapped.plan is plan
    seeded = as_injector(4, num_devices=2)
    assert isinstance(seeded, FaultInjector)
    assert seeded.plan.seed == 4
    assert FaultKind.DEVICE_DEAD in [s.kind for s in seeded.plan.specs]


def test_injected_failure_is_transient_and_allocation_error():
    exc = InjectedAllocationFailure("x")
    assert isinstance(exc, TransientFault)
    assert isinstance(exc, DeviceAllocationError)


# -- thread pool vs process pool / megabatch under injected faults -------------
#
# The process backend snapshots the injector before the fork and replays
# each child's fault delta in worker order, and the megabatch backend runs
# one stacked evaluation per kernel stage, so a given plan must fire the
# same faults, trigger the same recoveries and leave the same bits as the
# thread pool on either engine.

import math  # noqa: E402

from repro import apps  # noqa: E402
from repro.core.kernels import make_kernel  # noqa: E402
from repro.core.resilience import RetryPolicy, resilient_run  # noqa: E402
from repro.gpusim import Device, TITAN_X  # noqa: E402
from repro.gpusim.parallel import CrashRecovery  # noqa: E402


def _sdh_kernel():
    problem = apps.sdh.make_problem(64, 10.0 * math.sqrt(3.0), dims=3)
    return problem, make_kernel(
        problem, "register-roc", "privatized-shm", block_size=64
    )


def _crash_run(points, backend, plan):
    _, kernel = _sdh_kernel()
    recoveries = []
    device = Device(
        TITAN_X,
        faults=FaultInjector(plan),
        crash_recovery=CrashRecovery(
            max_retries=3, on_recover=recoveries.append
        ),
    )
    hist, record = kernel.execute(
        device, points, workers=3, backend=backend
    )
    return hist, record, device.faults.events, recoveries


@pytest.mark.parametrize("backend", ["processes", "megabatch"])
def test_block_crash_recovery_identical_across_pools(small_points, backend):
    """A block-pinned worker crash kills one deal per engine flavour; after
    re-execution every engine must hold identical bits and ledgers."""
    plan = FaultPlan(
        [FaultSpec(FaultKind.WORKER_CRASH, block=2),
         FaultSpec(FaultKind.WORKER_CRASH, block=4)],
        seed=3,
    )
    h_thr, rec_thr, ev_thr, rcv_thr = _crash_run(small_points, "threads", plan)
    h_alt, rec_alt, ev_alt, rcv_alt = _crash_run(small_points, backend, plan)
    np.testing.assert_array_equal(h_thr, h_alt)
    assert rec_alt.counters == rec_thr.counters
    assert rec_alt.counters.recoveries == rec_thr.counters.recoveries >= 1
    # two blocks crash on distinct workers, so the two events' relative
    # order follows scheduling (thread pool: execution order; process
    # pool: worker-index delta replay) — compare as sets, bits above are
    # already exact
    assert sorted((e.kind, e.device, e.block) for e in ev_alt) == \
        sorted((e.kind, e.device, e.block) for e in ev_thr)
    assert sorted(sorted(r["blocks"]) for r in rcv_alt) == \
        sorted(sorted(r["blocks"]) for r in rcv_thr)


@pytest.mark.parametrize("backend", ["processes", "megabatch"])
def test_corrupt_shard_fires_identically_across_pools(small_points, backend):
    """CORRUPT_SHARD consumes parent-side RNG at merge time; neither the
    fork nor the stacked megabatch evaluation may desynchronize the
    stream, so even the *corrupted* output matches."""
    plan = FaultPlan([FaultSpec(FaultKind.CORRUPT_SHARD)], seed=11)
    h_thr, _, ev_thr, _ = _crash_run(small_points, "threads", plan)
    h_alt, _, ev_alt, _ = _crash_run(small_points, backend, plan)
    assert [(e.kind, e.array, e.index) for e in ev_alt] == \
        [(e.kind, e.array, e.index) for e in ev_thr]
    np.testing.assert_array_equal(h_thr, h_alt)


@pytest.mark.parametrize("backend", ["processes", "megabatch"])
@pytest.mark.parametrize("seed", [1, 9])
def test_supervised_chaos_identical_across_pools(small_points, seed, backend):
    """The full resilience supervisor (retries + crash recovery +
    corruption re-execution) lands on the same bits whichever engine runs
    the blocks."""
    problem, kernel = _sdh_kernel()
    kw = dict(kernel=kernel, workers=2, retry=RetryPolicy(sleep=False))
    thr = resilient_run(problem, small_points, faults=seed,
                        backend="threads", **kw)
    alt = resilient_run(problem, small_points, faults=seed,
                        backend=backend, **kw)
    clean = resilient_run(problem, small_points, faults=None,
                          backend=backend, **kw)
    np.testing.assert_array_equal(thr.result, alt.result)
    np.testing.assert_array_equal(clean.result, alt.result)
    assert alt.recovered
    assert {e.kind for e in alt.report.faults} == \
        {e.kind for e in thr.report.faults}


def test_supervised_process_report_deterministic(small_points):
    problem, kernel = _sdh_kernel()
    kw = dict(kernel=kernel, workers=2, retry=RetryPolicy(sleep=False),
              backend="processes")
    a = resilient_run(problem, small_points, faults=4, **kw)
    b = resilient_run(problem, small_points, faults=4, **kw)
    assert a.report.to_dict() == b.report.to_dict()
    np.testing.assert_array_equal(a.result, b.result)
