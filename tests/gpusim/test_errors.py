"""One test per GpuSimError subclass, pinning the exact raising condition.

The error hierarchy is part of the simulator's public contract (the
resilience supervisor dispatches on it), so each class is exercised at a
representative raise site and its place in the hierarchy asserted.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.gpusim import (
    AccessCounters,
    BlockContext,
    Device,
    DeviceAllocationError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    GpuSimError,
    InjectedAllocationFailure,
    LaunchConfig,
    LaunchConfigError,
    MemorySpaceError,
    OutOfBoundsError,
    OutputCorruptionError,
    ParallelLaunchError,
    ParallelSession,
    RegisterPressureError,
    SharedMemoryError,
    TITAN_X,
    TransientFault,
    WorkerCrashError,
    calculate_occupancy,
)


def _ctx(config=None):
    cfg = config or LaunchConfig(grid_dim=1, block_dim=32)
    return BlockContext(
        spec=TITAN_X, config=cfg, block_id=0, counters=AccessCounters()
    )


def test_launch_config_error_on_oversized_block():
    cfg = LaunchConfig(grid_dim=1, block_dim=TITAN_X.max_threads_per_block + 1)
    with pytest.raises(LaunchConfigError):
        cfg.validate(TITAN_X)
    assert issubclass(LaunchConfigError, GpuSimError)


def test_shared_memory_error_on_over_allocation():
    ctx = _ctx()
    with pytest.raises(SharedMemoryError):
        ctx.alloc_shared(TITAN_X.shared_mem_per_block + 1, dtype=np.int8)
    assert issubclass(SharedMemoryError, GpuSimError)


def test_register_pressure_error_on_impossible_occupancy():
    with pytest.raises(RegisterPressureError):
        calculate_occupancy(TITAN_X, 256, regs_per_thread=100_000)
    assert issubclass(RegisterPressureError, GpuSimError)


def test_memory_space_error_on_readonly_write():
    device = Device(TITAN_X)
    arr = device.to_device(np.zeros(8, dtype=np.float64), name="ro")
    view = device.readonly(arr)
    with pytest.raises(MemorySpaceError):
        view.st(0, 1.0)
    assert issubclass(MemorySpaceError, GpuSimError)


def test_out_of_bounds_error_on_bad_load():
    device = Device(TITAN_X)
    arr = device.alloc(4, dtype=np.float64, name="small")
    with pytest.raises(OutOfBoundsError):
        arr.ld(np.array([0, 7]))
    assert issubclass(OutOfBoundsError, GpuSimError)


def test_device_allocation_error_on_exhausted_global_memory():
    device = Device(TITAN_X)
    too_big = TITAN_X.global_mem_bytes // 8 + 1
    with pytest.raises(DeviceAllocationError):
        device.alloc(too_big, dtype=np.float64)
    assert issubclass(DeviceAllocationError, GpuSimError)


def test_device_allocation_error_on_foreign_free():
    device = Device(TITAN_X)
    other = Device(TITAN_X)
    arr = other.alloc(4, name="foreign")
    with pytest.raises(DeviceAllocationError):
        device.free(arr)


def test_parallel_launch_error_outside_worker_thread():
    session = ParallelSession(num_workers=2)
    with pytest.raises(ParallelLaunchError):
        session.worker()
    assert issubclass(ParallelLaunchError, GpuSimError)


def test_transient_fault_raised_by_injected_alloc_failure():
    plan = FaultPlan([FaultSpec(FaultKind.ALLOC_TRANSIENT, device=0, launch=0)])
    injector = FaultInjector(plan)
    with pytest.raises(TransientFault) as exc:
        injector.on_launch(0, 0)
    # doubly classified: transient (retry it) AND an allocation error
    assert isinstance(exc.value, InjectedAllocationFailure)
    assert isinstance(exc.value, DeviceAllocationError)
    assert issubclass(TransientFault, GpuSimError)


def test_worker_crash_error_carries_crash_site():
    plan = FaultPlan([FaultSpec(FaultKind.WORKER_CRASH, device=1, block=3)])
    injector = FaultInjector(plan)
    injector.on_block(1, 2)  # wrong block: no fire
    with pytest.raises(WorkerCrashError) as exc:
        injector.on_block(1, 3)
    assert exc.value.device == 1
    assert exc.value.block == 3
    assert issubclass(WorkerCrashError, GpuSimError)


def test_output_corruption_error_on_ticket_mismatch():
    from repro.apps import join
    from repro.core import make_kernel

    problem = join.make_problem(0.5, dims=3)
    kernel = make_kernel(problem, "register-shm", "global-direct",
                         block_size=32)
    device = Device(TITAN_X)
    pts = np.random.default_rng(3).uniform(0, 4.0, size=(96, 3))
    # corrupt the ticket counter between execution and finalize by
    # replaying the kernel with a poisoned buffer: easiest determinate
    # path is executing normally, then re-finalizing with a bumped ticket
    result, _ = kernel.execute(device, pts)
    ticket = device._allocations["emit-ticket"]
    ticket.data[0] += 1 << 30
    bufs = {"ticket": ticket, "emitted": {0: [np.asarray(result)]}}
    with pytest.raises(OutputCorruptionError):
        kernel.output.finalize(device, bufs, problem, len(pts))
    assert issubclass(OutputCorruptionError, GpuSimError)
