"""Unit tests for the simulated device and kernel launches."""

import numpy as np
import pytest

from repro.gpusim import (
    Device,
    DeviceAllocationError,
    LaunchConfig,
    LaunchConfigError,
    MemSpace,
    SharedMemoryError,
    TITAN_X,
)


def test_alloc_and_transfer(device):
    host = np.arange(10, dtype=np.float32)
    arr = device.to_device(host)
    assert (device.to_host(arr) == host).all()
    assert device.bytes_allocated == host.nbytes


def test_alloc_respects_capacity():
    small = TITAN_X.with_overrides(global_mem_bytes=1024)
    dev = Device(small)
    with pytest.raises(DeviceAllocationError):
        dev.alloc((1024,), np.float64)


def test_free_returns_capacity(device):
    arr = device.alloc((1000,), np.float32)
    assert device.bytes_allocated == 4000
    device.free(arr)
    assert device.bytes_allocated == 0
    with pytest.raises(DeviceAllocationError):
        device.free(arr)


def test_launch_runs_every_block(device):
    seen = []

    def kernel(ctx):
        seen.append(ctx.block_id)
        assert ctx.nthreads == 64
        assert (ctx.global_thread_ids == ctx.block_id * 64 + np.arange(64)).all()

    record = device.launch(kernel, LaunchConfig(5, 64))
    assert seen == list(range(5))
    assert record.blocks_run == 5


def test_launch_validates_config(device):
    with pytest.raises(LaunchConfigError):
        device.launch(lambda ctx: None, LaunchConfig(0, 64))
    with pytest.raises(LaunchConfigError):
        device.launch(lambda ctx: None, LaunchConfig(1, 4096))


def test_launch_counters_include_global_traffic(device):
    data = device.to_device(np.zeros(64, dtype=np.float32))

    def kernel(ctx):
        data.ld(np.arange(64))

    record = device.launch(kernel, LaunchConfig(2, 32))
    assert record.counters.read_count(MemSpace.GLOBAL) == 128
    # and the device total agrees
    assert device.counters.read_count(MemSpace.GLOBAL) == 128


def test_per_launch_counters_are_isolated(device):
    data = device.to_device(np.zeros(8, dtype=np.float32))

    def k1(ctx):
        data.ld(np.arange(8))

    def k2(ctx):
        data.ld(np.arange(4))

    r1 = device.launch(k1, LaunchConfig(1, 32))
    r2 = device.launch(k2, LaunchConfig(1, 32))
    assert r1.counters.read_count(MemSpace.GLOBAL) == 8
    assert r2.counters.read_count(MemSpace.GLOBAL) == 4
    assert device.counters.read_count(MemSpace.GLOBAL) == 12


def test_shared_allocation_budget(device):
    def kernel(ctx):
        ctx.alloc_shared((TITAN_X.shared_mem_per_block // 4 + 1,), np.float32)

    with pytest.raises(SharedMemoryError):
        device.launch(kernel, LaunchConfig(1, 32))


def test_shared_budget_accumulates(device):
    def kernel(ctx):
        ctx.alloc_shared((6000,), np.float32)  # 24,000 B
        ctx.alloc_shared((6000,), np.float32)  # 48,000 of 49,152 B used
        with pytest.raises(SharedMemoryError):
            ctx.alloc_shared((300,), np.float32)  # 1,200 B more: over

    device.launch(kernel, LaunchConfig(1, 32))


def test_free_shared_releases_budget(device):
    def kernel(ctx):
        tile = ctx.alloc_shared((6000,), np.float32)
        ctx.free_shared(tile)
        ctx.alloc_shared((6000,), np.float32)  # fits again

    record = device.launch(kernel, LaunchConfig(1, 32))
    assert record.max_shared_bytes == 24000


def test_sync_counts_recorded(device):
    def kernel(ctx):
        ctx.syncthreads()
        ctx.syncthreads()

    record = device.launch(kernel, LaunchConfig(3, 32))
    assert record.sync_counts == [2, 2, 2]


def test_warp_partitioning(device):
    def kernel(ctx):
        warps = ctx.warps()
        assert len(warps) == 2
        assert (warps[0] == np.arange(32)).all()
        assert (warps[1] == np.arange(32, 64)).all()

    device.launch(kernel, LaunchConfig(1, 64))


def test_readonly_binding_counts_roc(device):
    data = device.to_device(np.zeros(16, dtype=np.float32))
    view = device.readonly(data)

    def kernel(ctx):
        view.ld(np.arange(16))

    record = device.launch(kernel, LaunchConfig(1, 32))
    assert record.counters.read_count(MemSpace.ROC) == 16


def test_reset_counters(device):
    data = device.to_device(np.zeros(8, dtype=np.float32))
    device.launch(lambda ctx: data.ld(np.arange(8)), LaunchConfig(1, 32))
    device.reset_counters()
    assert device.counters.read_count(MemSpace.GLOBAL) == 0
    assert device.launches == []
