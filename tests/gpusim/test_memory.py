"""Unit tests for tracked memory spaces."""

import numpy as np
import pytest

from repro.gpusim import (
    AccessCounters,
    MemSpace,
    MemorySpaceError,
    OutOfBoundsError,
    ReadOnlyView,
    TrackedArray,
    bank_conflict_degree,
)


def make(shape=(16,), space=MemSpace.SHARED):
    c = AccessCounters()
    return TrackedArray(np.zeros(shape, dtype=np.float32), space, c, "t"), c


def test_ld_counts_element_accesses():
    arr, c = make((8,))
    arr.ld(np.array([0, 1, 2]))
    assert c.read_count(MemSpace.SHARED) == 3


def test_ld_fanout_multiplies():
    arr, c = make((8,))
    arr.ld(np.array([5]), fanout=32)  # one element broadcast to 32 threads
    assert c.read_count(MemSpace.SHARED) == 32


def test_ld_returns_copy():
    arr, _ = make((4,))
    out = arr.ld(slice(None))
    out[0] = 99.0
    assert arr.raw()[0] == 0.0


def test_st_counts_and_writes():
    arr, c = make((4, 8))
    arr.st((slice(None), slice(0, 3)), 1.0)
    assert c.write_count(MemSpace.SHARED) == 12
    assert arr.raw()[:, :3].sum() == 12.0


def test_fill_counts_every_element():
    arr, c = make((4, 4))
    arr.fill(2.0)
    assert c.write_count(MemSpace.SHARED) == 16
    assert (arr.raw() == 2.0).all()


def test_out_of_bounds_read_raises():
    arr, _ = make((4,))
    with pytest.raises(OutOfBoundsError):
        arr.ld(np.array([10]))


def test_out_of_bounds_write_raises():
    arr, _ = make((4,))
    with pytest.raises(OutOfBoundsError):
        arr.st(np.array([10]), 1.0)


def test_readonly_view_counts_as_roc():
    base, c = make((8,), MemSpace.GLOBAL)
    view = ReadOnlyView(base)
    view.ld(np.array([1, 2]))
    assert c.read_count(MemSpace.ROC) == 2
    assert c.read_count(MemSpace.GLOBAL) == 0


def test_readonly_view_forbids_writes():
    base, _ = make((8,), MemSpace.GLOBAL)
    view = ReadOnlyView(base)
    with pytest.raises(MemorySpaceError):
        view.st(np.array([0]), 1.0)
    with pytest.raises(MemorySpaceError):
        view.fill(0.0)


def test_readonly_view_shares_buffer():
    base, _ = make((8,), MemSpace.GLOBAL)
    view = ReadOnlyView(base)
    base.st(np.array([3]), 7.0)
    assert view.ld(np.array([3]))[0] == 7.0


class TestBankConflicts:
    def test_sequential_access_conflict_free(self):
        # lane i -> word i: each bank hit once
        assert bank_conflict_degree(np.arange(32)) == 1.0

    def test_same_address_broadcasts(self):
        # all lanes read word 0: hardware broadcast, no replay
        assert bank_conflict_degree(np.zeros(32, dtype=int)) == 1.0

    def test_stride_two_doubles(self):
        assert bank_conflict_degree(np.arange(32) * 2) == 2.0

    def test_stride_32_fully_serializes(self):
        assert bank_conflict_degree(np.arange(32) * 32) == 32.0

    def test_multiword_elements(self):
        # float2 elements (2 words) behave like stride 2
        assert bank_conflict_degree(np.arange(32), element_words=2) == 2.0

    def test_empty_indices(self):
        assert bank_conflict_degree(np.array([])) == 1.0
