"""Sanity tests for the calibration layer: the pins must stay honest."""

import pytest

from repro.gpusim import (
    Calibration,
    DEFAULT_CALIBRATION,
    DEFAULT_CPU_CALIBRATION,
    PCF_COMPUTE,
    SDH_COMPUTE,
)


def test_cache_cost_ordering():
    """Effective per-access costs must respect the hardware hierarchy the
    paper quotes: shared < ROC < streamed global < scattered global."""
    c = DEFAULT_CALIBRATION
    assert c.shm_issue < c.roc_issue < c.global_stream_issue < c.global_issue


def test_atomic_costs_dominate_plain_access():
    c = DEFAULT_CALIBRATION
    assert c.shared_atomic > c.shm_issue
    assert c.global_atomic > c.global_issue
    assert c.global_atomic > 5 * c.shared_atomic  # the privatization gap


def test_shuffle_close_to_shared():
    """Fig. 9's pin: register shuffles cost about a shared access."""
    c = DEFAULT_CALIBRATION
    assert c.shuffle_issue == pytest.approx(c.shm_issue, rel=0.25)


def test_interference_is_a_small_fraction():
    assert 0.0 < DEFAULT_CALIBRATION.interference_kappa < 0.5


def test_occupancy_gamma_sublinear():
    assert 0.0 < DEFAULT_CALIBRATION.occupancy_gamma <= 1.0


def test_compute_cost_totals_match_profiler_shares():
    """Table II/IV pins: arith share of the per-pair compute budget."""
    assert PCF_COMPUTE.arith / PCF_COMPUTE.total == pytest.approx(0.54, abs=0.1)
    assert SDH_COMPUTE.arith / SDH_COMPUTE.total == pytest.approx(0.32, abs=0.1)


def test_calibration_is_frozen():
    with pytest.raises(Exception):
        DEFAULT_CALIBRATION.shm_issue = 1.0


def test_custom_calibration_changes_predictions():
    from repro.gpusim import PipelineCycles, TITAN_X, simulate_time

    cheap = Calibration(interference_kappa=0.0)
    c = PipelineCycles(arith=1e9, shared=5e8)
    with_k = simulate_time(c, spec=TITAN_X, fixed_overhead_s=0.0)
    without_k = simulate_time(c, spec=TITAN_X, calib=cheap, fixed_overhead_s=0.0)
    assert without_k.seconds < with_k.seconds


def test_cpu_calibration_magnitudes():
    c = DEFAULT_CPU_CALIBRATION
    # vectorized histogram loop: order 10 cycles/pair, chunk grabs ~1000x
    assert 5 < c.cycles_per_pair_sdh < 30
    assert c.chunk_overhead_cycles > 100 * c.cycles_per_pair_sdh
