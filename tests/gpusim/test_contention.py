"""Unit tests for the atomic-contention statistics."""

import numpy as np
import pytest

from repro.gpusim import (
    collision_rate,
    effective_bins,
    expected_max_multiplicity,
    monte_carlo_max_multiplicity,
    warp_conflict_degrees,
    warp_conflict_degrees_dense,
)


def test_collision_rate_uniform():
    p = np.full(10, 0.1)
    assert collision_rate(p) == pytest.approx(0.1)
    assert effective_bins(p) == pytest.approx(10.0)


def test_collision_rate_concentrated():
    p = np.array([0.9, 0.1])
    assert effective_bins(p) < 2.0


def test_collision_rate_unnormalized_input():
    assert collision_rate(np.array([2.0, 2.0])) == pytest.approx(0.5)


def test_expected_max_bounds():
    p = np.full(100, 0.01)
    e = expected_max_multiplicity(p, 32)
    assert 1.0 <= e <= 32.0


def test_expected_max_single_bin():
    assert expected_max_multiplicity(np.array([1.0]), 32) == 32.0


def test_expected_max_one_thrower():
    assert expected_max_multiplicity(np.full(4, 0.25), 1) == 1.0


@pytest.mark.parametrize("k", [8, 32, 100, 1000, 5000])
def test_expected_max_matches_monte_carlo_uniform(k):
    p = np.full(k, 1.0 / k)
    analytic = expected_max_multiplicity(p, 32)
    mc = monte_carlo_max_multiplicity(p, 32, trials=600, seed=1)
    assert analytic == pytest.approx(mc, rel=0.12)


def test_expected_max_matches_monte_carlo_skewed():
    rng = np.random.default_rng(2)
    p = rng.dirichlet(np.full(64, 0.3))
    analytic = expected_max_multiplicity(p, 32)
    mc = monte_carlo_max_multiplicity(p, 32, trials=800, seed=3)
    assert analytic == pytest.approx(mc, rel=0.35)


def test_expected_max_decreases_with_bins():
    values = [
        expected_max_multiplicity(np.full(k, 1.0 / k), 32)
        for k in (4, 16, 64, 256, 1024)
    ]
    assert all(a > b for a, b in zip(values, values[1:]))


class TestWarpConflictDegrees:
    def test_conflict_free_matrix(self):
        bins = np.arange(32)[:, None] * np.ones((1, 4), dtype=int)
        degree_sum, issues = warp_conflict_degrees(bins)
        assert issues == 4
        assert degree_sum == 4.0  # every column conflict-free

    def test_fully_conflicting_column(self):
        bins = np.zeros((32, 1), dtype=int)
        degree_sum, issues = warp_conflict_degrees(bins)
        assert (degree_sum, issues) == (32.0, 1)

    def test_two_warps(self):
        bins = np.concatenate([np.zeros(32, dtype=int), np.arange(32)])[:, None]
        degree_sum, issues = warp_conflict_degrees(bins)
        assert issues == 2
        assert degree_sum == 33.0

    def test_padding_does_not_conflict(self):
        bins = np.zeros((8, 3), dtype=int)  # 8 threads padded to one warp
        degree_sum, issues = warp_conflict_degrees(bins)
        assert issues == 3
        assert degree_sum == 3 * 8.0

    def test_matches_bincount_reference(self):
        rng = np.random.default_rng(5)
        bins = rng.integers(0, 7, size=(64, 5))
        degree_sum, issues = warp_conflict_degrees(bins)
        ref = 0.0
        for col in range(5):
            for w in range(2):
                warp = bins[w * 32 : (w + 1) * 32, col]
                ref += np.bincount(warp).max()
        assert degree_sum == ref
        assert issues == 10

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            warp_conflict_degrees(np.zeros(32, dtype=int))


class TestWarpConflictDegreesDense:
    """The batched engine's fast profiler must return exactly the
    reference statistic for every input shape."""

    @pytest.mark.parametrize("threads", [8, 32, 64, 100, 256])
    @pytest.mark.parametrize("iters", [1, 5, 33])
    @pytest.mark.parametrize("nbins", [1, 4, 300])
    def test_matches_reference(self, threads, iters, nbins):
        rng = np.random.default_rng(threads * 1000 + iters * 10 + nbins)
        bins = rng.integers(0, nbins, size=(threads, iters))
        assert warp_conflict_degrees_dense(bins) == warp_conflict_degrees(
            bins
        )

    @pytest.mark.parametrize("warp_size", [1, 2, 8, 32])
    def test_matches_reference_warp_sizes(self, warp_size):
        rng = np.random.default_rng(9)
        bins = rng.integers(0, 11, size=(96, 7))
        assert warp_conflict_degrees_dense(
            bins, warp_size
        ) == warp_conflict_degrees(bins, warp_size)

    @pytest.mark.parametrize("dtype", [np.int16, np.int32, np.int64])
    def test_matches_reference_dtypes(self, dtype):
        rng = np.random.default_rng(10)
        bins = rng.integers(0, 50, size=(40, 6)).astype(dtype)
        assert warp_conflict_degrees_dense(bins) == warp_conflict_degrees(
            bins
        )

    def test_all_equal(self):
        bins = np.zeros((64, 3), dtype=np.int32)
        assert warp_conflict_degrees_dense(bins) == (3 * 2 * 32.0, 6)

    def test_empty_iterations(self):
        bins = np.zeros((32, 0), dtype=np.int64)
        assert warp_conflict_degrees_dense(bins) == (0.0, 0)

    def test_lane_offsets_equal_materialized(self):
        rng = np.random.default_rng(11)
        for threads in (32, 40, 128):
            bins = rng.integers(0, 16, size=(threads, 9)).astype(np.int32)
            offsets = (
                (np.arange(threads, dtype=np.int32) % 4) * 16
            )
            assert warp_conflict_degrees_dense(
                bins, lane_offsets=offsets
            ) == warp_conflict_degrees(bins + offsets[:, None])

    def test_lane_offsets_do_not_mutate_input(self):
        bins = np.zeros((32, 2), dtype=np.int32)
        offsets = np.arange(32, dtype=np.int32)
        warp_conflict_degrees_dense(bins, lane_offsets=offsets)
        assert np.array_equal(bins, np.zeros((32, 2), dtype=np.int32))

    def test_lane_offsets_shape_checked(self):
        with pytest.raises(ValueError, match="one entry per thread"):
            warp_conflict_degrees_dense(
                np.zeros((32, 2), dtype=np.int32),
                lane_offsets=np.zeros(8, dtype=np.int32),
            )

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            warp_conflict_degrees_dense(np.zeros(32, dtype=int))
