"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


def run(args, capsys):
    code = main(args)
    return code, capsys.readouterr().out


def test_devices(capsys):
    code, out = run(["devices"], capsys)
    assert code == 0
    assert "Titan X" in out and "paper testbed" in out
    assert "shuffle=no" in out  # Fermi


def test_estimate_sdh(capsys):
    code, out = run(["estimate", "-n", "500000", "--problem", "sdh"], capsys)
    assert code == 0
    assert "predicted time" in out
    assert "occupancy" in out


def test_estimate_pcf_explicit_kernel(capsys):
    code, out = run(
        ["estimate", "-n", "200000", "--problem", "pcf", "--input",
         "register-shm", "--output", "register", "--block-size", "1024"],
        capsys,
    )
    assert code == 0
    assert "Register-SHM" in out


def test_estimate_on_other_device(capsys):
    code, out = run(
        ["estimate", "-n", "200000", "--device", "fermi"], capsys
    )
    assert code == 0
    assert "Fermi" in out


def test_plan(capsys):
    code, out = run(["plan", "-n", "500000", "--bins", "2500"], capsys)
    assert code == 0
    assert "chosen:" in out


def test_sdh_compute(capsys):
    code, out = run(["sdh", "-n", "512", "--bins", "32"], capsys)
    assert code == 0
    assert "total pairs 130,816" in out  # 512*511/2


def test_pcf_compute(capsys):
    code, out = run(["pcf", "-n", "512", "--radius", "2.0"], capsys)
    assert code == 0
    assert "pairs within radius" in out


def test_figures_single(capsys):
    code, out = run(["figures", "table2"], capsys)
    assert code == 0
    assert "Reg-SHM" in out


def test_figures_unknown(capsys):
    code = main(["figures", "fig99"])
    assert code == 2


def test_stats_json_format(capsys):
    code, out = run(["stats", "--problem", "sdh", "-n", "300",
                     "--format", "json"], capsys)
    assert code == 0
    doc = json.loads(out)
    assert doc["manifest"]["n"] == 300
    assert "counters" in doc["metrics"]


def test_stats_missing_trace_file_exits_nonzero(capsys):
    code = main(["stats", "--problem", "sdh", "-n", "300",
                 "--trace", "/no/such/dir/trace.json"])
    err = capsys.readouterr().err
    assert code == 2
    assert "error:" in err


def test_profile_table(capsys):
    code, out = run(["profile", "--problem", "sdh", "-n", "300"], capsys)
    assert code == 0
    assert "profile:" in out
    assert "tile-eval" in out
    assert "roofline" in out


def test_profile_json_validates(capsys):
    code, out = run(["profile", "--problem", "pcf", "-n", "300",
                     "--prune", "--format", "json"], capsys)
    assert code == 0
    doc = json.loads(out)
    assert doc["schema"] == "repro-profile-v1"
    assert doc["conservation"]["other_us"] == 0


def test_progress_flag_emits_status_lines(capsys):
    code = main(["sdh", "-n", "512", "--progress"])
    captured = capsys.readouterr()
    assert code == 0
    assert "done" in captured.err


def test_blackbox_roundtrip(tmp_path, capsys):
    store = tmp_path / "ck"
    code, _ = run(["sdh", "-n", "512", "--checkpoint-dir", str(store),
                   "--checkpoint-every", "1", "--progress"], capsys)
    assert code == 0
    code, out = run(["blackbox", str(store), "--last", "8"], capsys)
    assert code == 0
    assert "block" in out
    code, out = run(["blackbox", str(store), "--json"], capsys)
    assert code == 0
    doc = json.loads(out)
    assert doc["events"]
    seqs = [e["seq"] for e in doc["events"]]
    assert seqs == sorted(seqs)


def test_blackbox_missing_store_exits_nonzero(tmp_path, capsys):
    code = main(["blackbox", str(tmp_path / "nowhere")])
    assert code == 2
    assert "no checkpoint" in capsys.readouterr().err
