"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def run(args, capsys):
    code = main(args)
    return code, capsys.readouterr().out


def test_devices(capsys):
    code, out = run(["devices"], capsys)
    assert code == 0
    assert "Titan X" in out and "paper testbed" in out
    assert "shuffle=no" in out  # Fermi


def test_estimate_sdh(capsys):
    code, out = run(["estimate", "-n", "500000", "--problem", "sdh"], capsys)
    assert code == 0
    assert "predicted time" in out
    assert "occupancy" in out


def test_estimate_pcf_explicit_kernel(capsys):
    code, out = run(
        ["estimate", "-n", "200000", "--problem", "pcf", "--input",
         "register-shm", "--output", "register", "--block-size", "1024"],
        capsys,
    )
    assert code == 0
    assert "Register-SHM" in out


def test_estimate_on_other_device(capsys):
    code, out = run(
        ["estimate", "-n", "200000", "--device", "fermi"], capsys
    )
    assert code == 0
    assert "Fermi" in out


def test_plan(capsys):
    code, out = run(["plan", "-n", "500000", "--bins", "2500"], capsys)
    assert code == 0
    assert "chosen:" in out


def test_sdh_compute(capsys):
    code, out = run(["sdh", "-n", "512", "--bins", "32"], capsys)
    assert code == 0
    assert "total pairs 130,816" in out  # 512*511/2


def test_pcf_compute(capsys):
    code, out = run(["pcf", "-n", "512", "--radius", "2.0"], capsys)
    assert code == 0
    assert "pairs within radius" in out


def test_figures_single(capsys):
    code, out = run(["figures", "table2"], capsys)
    assert code == 0
    assert "Reg-SHM" in out


def test_figures_unknown(capsys):
    code = main(["figures", "fig99"])
    assert code == 2
