"""Tracing determinism for the process and mega-batch backends.

A forked worker records its span subtree in its own interpreter and ships
it over a pipe; the parent adopts each subtree under the launch span in
worker-index order, renumbering span sequence ids deterministically.  So
a process-backend Chrome-trace export must be byte-identical across
repeated runs of one configuration — and must match the thread backend's
export byte for byte, because nothing pid- or wall-clock-shaped is ever
recorded.
"""

import json

import numpy as np

from repro.apps import sdh as sdh_app
from repro.core.runner import run
from repro.data import uniform_points


def _traced_run(backend, trace=True, workers=3, prune=False):
    pts = uniform_points(384, dims=3, box=10.0, seed=5)
    problem = sdh_app.make_problem(32, 10.0 * np.sqrt(3), dims=3)
    kernel = sdh_app.default_kernel(problem, prune=prune)
    return run(
        problem, pts, kernel=kernel, workers=workers, prune=prune,
        trace=trace, backend=backend,
    )


def test_process_trace_bytes_identical_across_runs(tmp_path):
    j1 = _traced_run("processes").trace.chrome_json()
    j2 = _traced_run("processes").trace.chrome_json()
    assert j1 == j2
    # and through the file-export path
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    _traced_run("processes", trace=p1)
    _traced_run("processes", trace=p2)
    assert p1.read_bytes() == p2.read_bytes()


def test_process_trace_structurally_matches_thread_trace():
    """The two pool flavours run the same deal, so the span vocabulary,
    per-name counts and worker-lane structure must agree (bytes may not:
    the manifest names the backend, and adoption order shifts layout)."""
    thr = _traced_run("threads").trace
    prc = _traced_run("processes").trace
    count = lambda tr: sorted(
        (s.name, s.cat, s.kind) for s in tr.all_spans()
    )
    assert count(thr) == count(prc)
    lanes = lambda tr: sorted(
        (s.lane, tuple(s.args["blocks"]))
        for L in tr.find("launch") for s in L.children if s.name == "worker"
    )
    assert lanes(thr) == lanes(prc)


def test_megabatch_trace_bytes_identical_across_runs():
    a = _traced_run("megabatch", prune=True).trace.chrome_json()
    b = _traced_run("megabatch", prune=True).trace.chrome_json()
    assert a == b
    names = {s.name for s in _traced_run("megabatch", prune=True)
             .trace.all_spans()}
    assert "mega" in names      # the stacked-evaluation stage is visible
    assert "prune" in names     # pruning decisions still traced per block


def test_adopted_worker_spans_nest_with_lanes_and_blocks():
    tr = _traced_run("processes").trace
    launches = tr.find("launch")
    assert launches
    assert launches[0].args.get("backend") == "processes"
    workers = [s for L in launches for s in L.children if s.name == "worker"]
    assert workers
    lanes = sorted(s.lane for s in workers)
    assert lanes == list(range(len(workers)))  # worker ids, no pids
    assert all("blocks" in s.args for s in workers)
    # every dealt block appears exactly once across the worker subtrees
    dealt = sorted(b for s in workers for b in s.args["blocks"])
    assert dealt == list(range(len(dealt)))


def test_process_manifest_has_no_pids_or_timestamps(tmp_path):
    out = tmp_path / "trace.json"
    _traced_run("processes", trace=out)
    doc = json.loads(out.read_text())
    man = doc["otherData"]["manifest"]
    assert man["backend"] == "processes"
    # (clock_hz is a static device-spec constant, not a wall-clock value)
    text = json.dumps(man).lower()
    for forbidden in ("pid", "time", "date", "wall", "seconds"):
        assert forbidden not in text, f"manifest leaks {forbidden!r}"
    # chrome events use the synthetic device pid (1), never os pids
    assert {e["pid"] for e in doc["traceEvents"]} == {1}


def test_process_trace_results_unchanged():
    plain = _traced_run("processes", trace=False)
    traced = _traced_run("processes", trace=True)
    np.testing.assert_array_equal(plain.result, traced.result)
