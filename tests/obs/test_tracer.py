"""Unit tests for the deterministic tracer: nesting, ordering, layout."""

import pytest

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    PHASE_MERGE,
    PHASE_WORKERS,
    Span,
    Tracer,
    resolve_trace,
)


def test_span_nesting_follows_thread_stack():
    tr = Tracer()
    with tr.span("launch") as launch:
        with tr.span("block", key=0):
            tr.instant("fault:test", cat="fault")
        with tr.span("block", key=1):
            pass
    assert [s.name for s in tr.roots] == ["launch"]
    assert [c.name for c in launch.children] == ["block", "block"]
    assert [c.name for c in launch.children[0].children] == ["fault:test"]


def test_explicit_parent_overrides_stack():
    tr = Tracer()
    with tr.span("launch") as launch:
        pass
    # worker spans on pool threads pass the launch span explicitly
    with tr.span("worker", phase=PHASE_WORKERS, lane=0, parent=launch):
        pass
    assert [c.name for c in launch.children] == ["worker"]


def test_canonical_order_is_phase_key_seq():
    tr = Tracer()
    with tr.span("launch") as launch:
        tr.begin("merge", phase=PHASE_MERGE)
        tr.begin("worker", phase=PHASE_WORKERS, key=1, lane=1)
        tr.begin("worker", phase=PHASE_WORKERS, key=0, lane=0)
        tr.begin("block", key=3)
    ordered = sorted(launch.children, key=Span.sort_key)
    assert [(s.name, s.key) for s in ordered] == [
        ("block", 3), ("worker", 0), ("worker", 1), ("merge", 0),
    ]


def test_layout_sequential_children_advance_cursor():
    tr = Tracer()
    with tr.span("launch", cost_us=5.0):
        with tr.span("block", key=0, cost_us=2.0):
            pass
        with tr.span("block", key=1, cost_us=3.0):
            pass
    tr.layout()
    launch = tr.roots[0]
    b0, b1 = sorted(launch.children, key=Span.sort_key)
    assert launch.ts == 0.0
    assert b0.ts == pytest.approx(5.0)
    assert b1.ts == pytest.approx(7.0)
    assert launch.dur == pytest.approx(10.0)


def test_layout_lane_siblings_run_concurrently():
    tr = Tracer()
    with tr.span("launch", cost_us=1.0) as launch:
        pass
    for w, cost in enumerate((4.0, 7.0)):
        tr.begin(
            "worker", phase=PHASE_WORKERS, key=w, lane=w,
            cost_us=cost, parent=launch,
        )
    tr.begin("merge", phase=PHASE_MERGE, cost_us=2.0, parent=launch)
    tr.layout()
    w0, w1, merge = sorted(launch.children, key=Span.sort_key)
    assert w0.ts == w1.ts == pytest.approx(1.0)  # concurrent start
    # the parent resumes at the slowest worker's end
    assert merge.ts == pytest.approx(1.0 + 7.0)
    assert launch.dur == pytest.approx(1.0 + 7.0 + 2.0)


def test_layout_is_idempotent():
    tr = Tracer()
    with tr.span("launch", cost_us=5.0):
        with tr.span("block", cost_us=2.0):
            pass
    tr.layout()
    first = [(s.ts, s.dur) for s in tr.all_spans()]
    tr.layout()
    assert [(s.ts, s.dur) for s in tr.all_spans()] == first


def test_mismatched_exit_does_not_corrupt_stack():
    tr = Tracer()
    ctx_outer = tr.span("outer")
    outer = ctx_outer.__enter__()
    ctx_inner = tr.span("inner")
    ctx_inner.__enter__()
    # exiting the outer span first pops the inner one too
    ctx_outer.__exit__(None, None, None)
    assert tr.current() is None
    assert outer in tr.roots


def test_null_tracer_is_inert():
    assert NULL_TRACER.enabled is False
    ctx = NULL_TRACER.span("anything")
    with ctx as s:
        assert s is None
    assert NULL_TRACER.span("x") is ctx  # one reusable context object
    assert NULL_TRACER.instant("x") is None
    assert NULL_TRACER.begin("x") is None


def test_resolve_trace_coercions(tmp_path):
    tracer, path = resolve_trace(None)
    assert tracer is NULL_TRACER and path is None
    tracer, path = resolve_trace(False)
    assert tracer is NULL_TRACER and path is None
    tracer, path = resolve_trace(True)
    assert isinstance(tracer, Tracer) and path is None
    live = Tracer()
    tracer, path = resolve_trace(live)
    assert tracer is live and path is None
    null = NullTracer()
    tracer, path = resolve_trace(null)
    assert tracer is null and path is None
    out = tmp_path / "t.json"
    tracer, path = resolve_trace(out)
    assert isinstance(tracer, Tracer) and path == str(out)


def test_find_and_all_spans():
    tr = Tracer()
    with tr.span("launch"):
        with tr.span("block", key=1):
            tr.instant("prune", cat="prune")
        with tr.span("block", key=0):
            pass
    assert len(tr.find("block")) == 2
    names = [s.name for s in tr.all_spans()]
    # canonical depth-first order: key 0 block before key 1 block
    assert names == ["launch", "block", "block", "prune"]
