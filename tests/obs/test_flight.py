"""Flight recorder ring semantics and live telemetry accounting."""

import numpy as np
import pytest

from repro.apps import sdh as sdh_app
from repro.core.runner import run
from repro.data import uniform_points
from repro.obs.flight import (
    FLIGHT_CAPACITY,
    FlightRecorder,
    ProgressEvent,
    RunTelemetry,
    resolve_telemetry,
)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t


# -- FlightRecorder ----------------------------------------------------------

def test_ring_records_and_orders_events():
    fr = FlightRecorder(clock=FakeClock(5.0))
    fr.record("block", block=0)
    fr.record("retry", attempt=1)
    events = fr.snapshot()
    assert [e["kind"] for e in events] == ["block", "retry"]
    assert [e["seq"] for e in events] == [1, 2]
    assert all(e["t"] == 5.0 for e in events)
    assert events[1]["attempt"] == 1


def test_ring_eviction_keeps_seq():
    fr = FlightRecorder(capacity=4)
    for i in range(10):
        fr.record("block", block=i)
    events = fr.snapshot()
    assert len(fr) == 4
    # the oldest six were evicted but numbering is preserved
    assert [e["seq"] for e in events] == [7, 8, 9, 10]
    assert [e["block"] for e in events] == [6, 7, 8, 9]


def test_snapshot_returns_copies():
    fr = FlightRecorder()
    fr.record("block", block=0)
    snap = fr.snapshot()
    snap[0]["block"] = 99
    assert fr.snapshot()[0]["block"] == 0


def test_restore_resumes_numbering_monotonically():
    fr = FlightRecorder()
    fr.record("early")  # will be wiped by the restore
    fr.restore([
        {"seq": 41, "t": 1.0, "kind": "block"},
        {"seq": 42, "t": 2.0, "kind": "checkpoint-write"},
    ])
    fr.record("resumed")
    seqs = [e["seq"] for e in fr.snapshot()]
    assert seqs == [41, 42, 43]


def test_restore_none_is_noop():
    fr = FlightRecorder()
    fr.record("block")
    fr.restore(None)
    fr.restore([])
    assert len(fr) == 1


def test_default_capacity_covers_postmortem_floor():
    assert FLIGHT_CAPACITY >= 64


# -- RunTelemetry ------------------------------------------------------------

def _telemetry(events, interval=0.0, clock=None):
    return RunTelemetry(events.append, interval=interval,
                        clock=clock or FakeClock())


def test_on_block_credits_pair_mass_once():
    events = []
    t = _telemetry(events)
    t.configure(blocks_total=2, block_pairs={0: 70, 1: 30})
    t.on_block(0, 0)
    t.on_block(0, 1)
    t.on_block(0, 0)  # reduce launch / retry re-dispatch: no new mass
    assert t.blocks_done == 2
    assert t.pairs_done == 100
    assert t.pairs_total == 100
    assert events[-1].fraction_done == 1.0


def test_advance_credits_replayed_chunks_without_flight_events():
    fr = FlightRecorder()
    t = RunTelemetry(flight=fr)
    t.configure(blocks_total=4, block_pairs={0: 10, 1: 10, 2: 10, 3: 10})
    t.advance(blocks=[0, 1], chunks=2)
    assert t.blocks_done == 2 and t.chunks_done == 2
    assert t.pairs_done == 20
    assert len(fr) == 0  # replay is not history: nothing recorded
    t.on_block(0, 2)
    assert len(fr) == 1
    t.on_block(0, 0)  # replayed block re-dispatched: no double credit
    assert t.pairs_done == 30


def test_eta_and_throughput_from_fake_clock():
    clock = FakeClock()
    events = []
    t = _telemetry(events, clock=clock)
    t.configure(blocks_total=2, block_pairs={0: 50, 1: 50})
    clock.t = 2.0  # 2 wall seconds in
    t.on_block(0, 0)
    ev = events[-1]
    assert ev.pairs_per_second == pytest.approx(25.0)
    assert ev.eta_seconds == pytest.approx(2.0)  # 50 pairs left at 25/s
    clock.t = 4.0
    t.on_block(0, 1)
    assert events[-1].eta_seconds == 0.0


def test_deadline_fit_flag():
    clock = FakeClock()

    class Budget:
        def remaining(self):
            return 1.0

    events = []
    t = _telemetry(events, clock=clock)
    t.configure(blocks_total=2, block_pairs={0: 50, 1: 50},
                deadline=Budget())
    clock.t = 2.0
    t.on_block(0, 0)  # eta 2.0 s > 1.0 s remaining
    assert events[-1].deadline_remaining == 1.0
    assert events[-1].deadline_fits is False


def test_throttling_by_interval():
    clock = FakeClock()
    events = []
    t = RunTelemetry(events.append, interval=10.0, clock=clock)
    t.configure(blocks_total=3, block_pairs={0: 1, 1: 1, 2: 1})
    clock.t = 1.0
    t.on_block(0, 0)  # first emit
    clock.t = 2.0
    t.on_block(0, 1)  # throttled
    assert len(events) == 1
    t.on_chunk(0, 3)  # forced
    t.finish()        # forced
    assert [e.phase for e in events] == ["run", "chunk", "done"]


def test_on_event_tracks_degradation_state():
    events = []
    t = _telemetry(events)
    t.on_event("degrade-input", device=0, detail="register-roc -> shm")
    t.on_event("node-lost", device=2, detail="node 2 evicted")
    t.on_event("degrade-topology", device=-1, detail="ring -> tree")
    t.on_event("failover", device=1)
    state = events[-1].state
    assert state["kernel"] == "shm"
    assert state["dead_nodes"] == [2]
    assert state["topology"] == "tree"
    assert state["device"] == 1
    assert state["events"]["node-lost"] == 1
    # every degradation forces an emission
    assert [e.phase for e in events] == ["event"] * 4


def test_progress_event_fraction_fallback():
    ev = ProgressEvent(phase="run", wall_seconds=1.0, blocks_done=1,
                       blocks_total=4)
    assert ev.fraction_done == 0.25
    assert ProgressEvent(phase="run", wall_seconds=0.0).fraction_done is None


def test_resolve_telemetry_coercions():
    assert resolve_telemetry(None) is None
    assert resolve_telemetry(False) is None
    t = RunTelemetry()
    assert resolve_telemetry(t) is t
    silent = resolve_telemetry(True)
    assert isinstance(silent, RunTelemetry) and silent.callback is None
    sink = []
    wrapped = resolve_telemetry(sink.append)
    assert wrapped.callback == sink.append
    with pytest.raises(TypeError):
        resolve_telemetry(42)


# -- engine integration ------------------------------------------------------

def _problem_points(n=300):
    pts = uniform_points(n, dims=3, box=10.0, seed=3)
    problem = sdh_app.make_problem(32, 10.0 * np.sqrt(3), dims=3)
    return problem, pts


@pytest.mark.parametrize("backend", ["sequential", "threads", "processes",
                                     "megabatch"])
def test_run_progress_accounts_every_backend(backend):
    problem, pts = _problem_points()
    t = RunTelemetry(flight=FlightRecorder())
    res = run(problem, pts, backend=backend, progress=t)
    n = pts.shape[0]
    assert t.pairs_total == n * (n - 1) // 2
    assert t.pairs_done == t.pairs_total
    assert t.blocks_done == t.blocks_total
    assert any(e["kind"] == "block" for e in t.flight.snapshot())
    assert res.result.sum() == n * (n - 1) // 2


def test_run_progress_callback_reaches_done():
    problem, pts = _problem_points()
    events = []
    run(problem, pts, progress=events.append)
    assert events[-1].phase == "done"
    assert events[-1].fraction_done == 1.0


def test_cluster_run_progress_accounts_pair_mass():
    problem, pts = _problem_points()
    t = RunTelemetry(flight=FlightRecorder())
    res = run(problem, pts, cluster="ring", nodes=3, progress=t)
    assert t.pairs_done == t.pairs_total
    assert res.cluster is not None


def test_checkpoint_run_records_chunks_and_resume_restores_ring(tmp_path):
    problem, pts = _problem_points(600)
    store = tmp_path / "ck"

    calls = []

    def bomb(index, entry):
        calls.append(index)
        if len(calls) == 2:
            raise KeyboardInterrupt

    from repro.core.checkpoint import CheckpointConfig

    with pytest.raises(KeyboardInterrupt):
        run(problem, pts,
            checkpoint_dir=CheckpointConfig(store, every=1,
                                            after_chunk=bomb))

    t = RunTelemetry(flight=FlightRecorder())
    res = run(problem, pts, checkpoint_dir=store, checkpoint_every=1,
              resume=True, progress=t)
    assert t.pairs_done == t.pairs_total
    assert t.chunks_done == t.chunks_total
    events = t.flight.snapshot()
    kinds = [e["kind"] for e in events]
    # pre-kill history survived the restore, then the resume marker
    assert "resumed" in kinds
    assert kinds.index("resumed") > 0
    seqs = [e["seq"] for e in events]
    assert seqs == sorted(seqs)
    assert res.result.sum() == 600 * 599 // 2


def test_faulted_run_forwards_recovery_events_to_flight():
    problem, pts = _problem_points()
    t = RunTelemetry(flight=FlightRecorder())
    res = run(problem, pts, faults=1, retries=3, workers=2, progress=t)
    kinds = {e["kind"] for e in t.flight.snapshot()}
    assert "block" in kinds
    # chaos seed 1 injects at least one recoverable fault
    assert res.resilience is not None
    recovery = {e.action for e in res.resilience.events}
    assert recovery & kinds
