"""Byte-stability regression: every JSON export the repo emits must be
byte-identical across reruns of the same configuration and carry sorted
keys at every nesting level — diffs between runs mean behaviour changed,
never serialization order."""

import json

import numpy as np
import pytest

from repro.apps import sdh as sdh_app
from repro.core.runner import run
from repro.data import uniform_points
from repro.obs.export import chrome_json, jsonl_events
from repro.obs.profile import profile_run


def _run_small(**kw):
    pts = uniform_points(300, dims=3, box=10.0, seed=3)
    problem = sdh_app.make_problem(32, 10.0 * np.sqrt(3), dims=3)
    kernel = sdh_app.default_kernel(problem, block_size=32)
    return run(problem, pts, kernel=kernel, **kw)


def _canonical(doc) -> str:
    return json.dumps(doc, sort_keys=True, separators=(",", ":"))


def _assert_sorted_everywhere(doc, path="$"):
    if isinstance(doc, dict):
        assert list(doc) == sorted(doc), f"unsorted keys at {path}"
        for key, value in doc.items():
            _assert_sorted_everywhere(value, f"{path}.{key}")
    elif isinstance(doc, list):
        for i, value in enumerate(doc):
            _assert_sorted_everywhere(value, f"{path}[{i}]")


def test_metrics_and_manifest_bytes_stable():
    a, b = _run_small(), _run_small()
    assert _canonical(a.metrics.to_dict()) == _canonical(b.metrics.to_dict())
    assert _canonical(a.manifest) == _canonical(b.manifest)


def test_chrome_trace_bytes_stable_and_sorted():
    a = _run_small(trace=True)
    b = _run_small(trace=True)
    ja, jb = chrome_json(a.trace), chrome_json(b.trace)
    assert ja == jb
    assert ja.endswith("\n")
    doc = json.loads(ja)
    _assert_sorted_everywhere(doc)
    # and re-dumping canonically is the identity: nothing was unsorted
    assert _canonical(doc) + "\n" == ja


def test_jsonl_events_bytes_stable():
    a = _run_small(trace=True)
    b = _run_small(trace=True)
    la, lb = jsonl_events(a.trace), jsonl_events(b.trace)
    assert la == lb
    for line in la.splitlines():
        _assert_sorted_everywhere(json.loads(line))


def test_profile_report_bytes_stable_and_sorted():
    a = profile_run(_run_small(trace=True)).to_json()
    b = profile_run(_run_small(trace=True)).to_json()
    assert a == b
    doc = json.loads(a)
    _assert_sorted_everywhere(doc)


@pytest.mark.parametrize("mode", ["prune", "cluster", "faults"])
def test_variant_configs_stay_stable(mode):
    kw = {
        "prune": {"prune": True},
        "cluster": {"cluster": "ring", "nodes": 3},
        "faults": {"faults": 1, "retries": 3, "workers": 2},
    }[mode]
    a = _run_small(trace=True, **kw)
    b = _run_small(trace=True, **kw)
    assert chrome_json(a.trace) == chrome_json(b.trace)
    assert _canonical(a.metrics.to_dict()) == _canonical(b.metrics.to_dict())
    assert profile_run(a).to_json() == profile_run(b).to_json()


def test_cli_stats_json_bytes_stable(capsys):
    from repro.cli import main

    argv = ["stats", "--problem", "sdh", "-n", "300", "--format", "json"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second
    _assert_sorted_everywhere(json.loads(first))


def test_cli_profile_json_bytes_stable(capsys):
    from repro.cli import main

    argv = ["profile", "--problem", "sdh", "-n", "300", "--format", "json"]
    assert main(argv) == 0
    first = capsys.readouterr().out
    assert main(argv) == 0
    second = capsys.readouterr().out
    assert first == second
    _assert_sorted_everywhere(json.loads(first))


def test_benchmark_exports_pass_sort_keys():
    """Every benchmark json.dumps site must opt into sorted keys — the
    committed BENCH_*.json baselines are diffed byte-for-byte by CI."""
    import pathlib

    bench_dir = pathlib.Path(__file__).resolve().parents[2] / "benchmarks"
    offenders = []
    for path in sorted(bench_dir.glob("*.py")):
        text = path.read_text()
        idx = 0
        while True:
            idx = text.find("json.dumps(", idx)
            if idx < 0:
                break
            call = text[idx:text.index(")", idx) + 1]
            if "sort_keys" not in call:
                offenders.append(f"{path.name}: {call}")
            idx += 1
    assert not offenders, f"json.dumps without sort_keys: {offenders}"
