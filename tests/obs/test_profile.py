"""Attribution profiler: conservation, roofline, byte-stable reports."""

import json

import numpy as np
import pytest

from repro.apps import pcf as pcf_app, sdh as sdh_app
from repro.core.runner import run
from repro.data import uniform_points
from repro.gpusim.counters import AccessCounters, MemSpace
from repro.gpusim.spec import TITAN_X
from repro.obs.profile import (
    PROFILE_SCHEMA,
    layer_for_span,
    measured_costs,
    profile_run,
    roofline_placement,
)

BACKENDS = ["sequential", "threads", "processes", "megabatch"]


def _traced_run(n=300, cutoff=None, **kw):
    pts = uniform_points(n, dims=3, box=10.0, seed=3)
    maxd = cutoff or 10.0 * np.sqrt(3)
    problem = sdh_app.make_problem(32, maxd, dims=3, cell_cutoff=cutoff)
    # small blocks so smoke-sized runs still exercise tiles/merges/stripes
    kernel = sdh_app.default_kernel(problem, block_size=32,
                                    prune=kw.pop("prune", False))
    return run(problem, pts, kernel=kernel, trace=True, **kw)


def _assert_conserved(rep):
    cons = rep.conservation
    assert cons["other_us"] == 0.0, "unmapped span names leaked"
    assert cons["error_us"] <= 1e-6 * max(1.0, cons["total_us"])
    assert sum(info["share"] for info in rep.layers.values()) == (
        pytest.approx(1.0)
    )


# -- conservation matrix (the acceptance grid) -------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_conservation_plain(backend):
    rep = profile_run(_traced_run(backend=backend))
    _assert_conserved(rep)
    assert rep.layers["tile-eval"]["us"] > 0
    assert rep.pairs_evaluated == pytest.approx(300 * 299 // 2)


@pytest.mark.parametrize("backend", BACKENDS)
def test_conservation_pruned(backend):
    rep = profile_run(_traced_run(backend=backend, prune=True))
    _assert_conserved(rep)


@pytest.mark.parametrize("backend", BACKENDS)
def test_conservation_cells(backend):
    rep = profile_run(_traced_run(backend=backend, cutoff=2.0,
                                  cells="force"))
    _assert_conserved(rep)
    assert "cell-index" in rep.layers
    # the cell grid skipped far pairs: fewer evaluations than the full grid
    assert rep.pairs_evaluated < 300 * 299 // 2
    assert rep.avoided["cells_pairs_skipped"] > 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_conservation_cluster(backend):
    rep = profile_run(_traced_run(backend=backend, cluster="ring", nodes=3))
    _assert_conserved(rep)
    assert "cluster" in rep.layers
    assert rep.run_seconds["cluster_merge"] > 0


def test_conservation_faulted_recovery():
    rep = profile_run(_traced_run(faults=1, retries=3, workers=2))
    _assert_conserved(rep)
    assert rep.run_seconds["retry_backoff"] >= 0


def test_conservation_checkpointed(tmp_path):
    rep = profile_run(_traced_run(checkpoint_dir=tmp_path / "ck",
                                  checkpoint_every=2))
    _assert_conserved(rep)
    # durable chunk bytes are priced into the decomposition
    assert rep.run_seconds["checkpoint_io"] > 0


# -- report content ----------------------------------------------------------

def test_layer_mapping_covers_engine_spans():
    assert layer_for_span("tile") == "tile-eval"
    assert layer_for_span("tile-batch") == "tile-eval"
    assert layer_for_span("mega") == "tile-eval"
    assert layer_for_span("intra") == "intra-eval"
    assert layer_for_span("launch") == "launch"
    assert layer_for_span("worker") == "worker-dispatch"
    assert layer_for_span("block") == "block-dispatch"
    assert layer_for_span("merge") == "reduce-merge"
    assert layer_for_span("recovery") == "recovery"
    assert layer_for_span("cluster:node3") == "cluster"
    assert layer_for_span("no-such-span") == "other"


def test_profile_requires_trace():
    res = _traced_run()
    res.trace = None
    with pytest.raises(ValueError, match="trace"):
        profile_run(res)


def test_report_identity_fields_and_schema():
    res = _traced_run()
    rep = profile_run(res)
    d = rep.to_dict()
    assert d["schema"] == PROFILE_SCHEMA
    assert d["kernel"] == res.kernel.name
    assert d["n"] == 300
    assert d["dims"] == 3
    assert d["device"] == TITAN_X.name
    assert rep.total_us == pytest.approx(
        sum(info["us"] for info in rep.layers.values())
    )


def test_measured_costs_flat_view():
    costs = measured_costs(_traced_run())
    assert costs["tile-eval"] > 0
    assert set(costs) == set(profile_run(_traced_run()).layers)


def test_pruning_shows_in_avoided_and_pairs():
    # two tight clusters + a PCF cutoff: inter-cluster tiles prove zero
    # contribution (dmin > cutoff) and are skipped outright
    rng = np.random.default_rng(5)
    pts = np.concatenate([
        rng.normal(loc, 0.05, size=(150, 3))
        for loc in ((0.0, 0.0, 0.0), (9.0, 9.0, 9.0))
    ])
    problem = pcf_app.make_problem(1.0)
    kernel = pcf_app.default_kernel(problem, block_size=32, prune=True)
    res = run(problem, pts, kernel=kernel, trace=True)
    rep = profile_run(res)
    _assert_conserved(rep)
    assert rep.avoided["prune_pairs_skipped"] > 0
    assert rep.avoided["prune_saved_us"] == pytest.approx(
        rep.avoided["prune_pairs_skipped"] * 1e-3
    )
    assert rep.pairs_evaluated < 300 * 299 // 2


# -- roofline ----------------------------------------------------------------

def test_roofline_compute_bound_without_traffic():
    roof = roofline_placement(pairs=1e6, dims=3, counters=None, spec=TITAN_X)
    assert roof["bound"] == "compute"
    assert roof["binding"] == "compute"
    assert roof["flops_per_pair"] == 11
    assert roof["flops"] == pytest.approx(1.1e7)
    assert roof["spaces"] == {}


def test_roofline_memory_bound_under_heavy_global_traffic():
    c = AccessCounters()
    c.add_read(MemSpace.GLOBAL, 10**9)  # 4 GB of global reads
    roof = roofline_placement(pairs=100, dims=3, counters=c, spec=TITAN_X)
    assert roof["bound"] == "memory"
    assert roof["binding"] == "global"
    placement = roof["spaces"]["global"]
    assert placement["bytes"] == 4 * 10**9
    assert placement["seconds"] > roof["compute_seconds"]
    # ridge = peak flops / bandwidth; intensity below it => memory bound
    assert placement["intensity"] < placement["ridge"]


def test_roofline_binding_ties_break_deterministically():
    roof = roofline_placement(pairs=0, dims=3, counters=AccessCounters(),
                              spec=TITAN_X)
    assert roof["binding"] == "compute"  # all-zero times: compute wins ties


def test_run_roofline_reflects_measured_ledger():
    rep = profile_run(_traced_run())
    roof = rep.roofline
    assert roof["flops"] == pytest.approx(rep.pairs_evaluated * 11)
    assert roof["binding"] in roof["spaces"] or roof["binding"] == "compute"
    for placement in roof["spaces"].values():
        assert placement["bytes"] > 0


# -- byte-identity -----------------------------------------------------------

def test_report_json_byte_identical_across_reruns():
    a = profile_run(_traced_run()).to_json()
    b = profile_run(_traced_run()).to_json()
    assert a == b
    # and it parses with every nesting level sorted
    doc = json.loads(a)
    assert json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n" == a


def test_report_json_excludes_wall_by_default():
    res = _traced_run()
    rep = profile_run(res, wall_seconds=1.23)
    assert "wall" not in rep.to_dict()
    assert rep.to_dict(include_wall=True)["wall"]["seconds"] == 1.23
    assert "wall" in rep.render()


def test_render_mentions_every_layer():
    rep = profile_run(_traced_run(cluster="ring", nodes=3))
    table = rep.render()
    for layer in rep.layers:
        assert layer in table
    assert "roofline" in table
