"""Unit tests for the metrics registry and the run manifest."""

import numpy as np
import pytest

from repro.apps import sdh as sdh_app
from repro.core.runner import run
from repro.data import uniform_points
from repro.gpusim.counters import AccessCounters, MemSpace
from repro.obs.manifest import build_manifest, git_describe
from repro.obs.metrics import MetricsRegistry, collect_metrics


def test_primitive_instruments():
    m = MetricsRegistry()
    m.inc("a")
    m.inc("a", 4)
    m.set_gauge("g", 1.5)
    m.observe("h", 1.0)
    m.observe("h", 3.0)
    m.set_label("k", "v")
    assert m.counter_value("a") == 5
    assert m.counter_value("missing") == 0
    assert m.gauge_value("g") == 1.5
    assert m.histograms["h"] == [1.0, 3.0]
    assert m.labels["k"] == "v"


def test_ingest_access_counters():
    c = AccessCounters()
    c.add_read(MemSpace.SHARED, 10)
    c.add_write(MemSpace.GLOBAL, 3)
    c.add_atomic(MemSpace.SHARED, 7)
    c.add_conflict_sample(4.0, 2)
    m = MetricsRegistry()
    m.ingest_access_counters(c)
    assert m.counter_value("mem.reads.shared") == 10
    assert m.counter_value("mem.writes.global") == 3
    assert m.counter_value("mem.atomics.shared") == 7
    assert m.gauge_value("mem.conflict_degree") == pytest.approx(4.0)


def _run_small(**kw):
    prune = kw.pop("prune", False)
    pts = uniform_points(300, dims=3, box=10.0, seed=3)
    problem = sdh_app.make_problem(32, 10.0 * np.sqrt(3), dims=3)
    kernel = sdh_app.default_kernel(problem, prune=prune)
    return run(problem, pts, kernel=kernel, prune=prune, **kw)


def test_collect_metrics_populates_run_views():
    res = _run_small(workers=2, prune=True)
    m = res.metrics
    assert m.labels["kernel"] == res.kernel.name
    assert m.gauge_value("engine.workers") == 2
    assert m.counter_value("engine.blocks_run") == res.record.blocks_run
    assert m.counter_value("prune.tiles") == res.record.prune.tiles
    # traffic must not be double-counted through report + record
    assert (m.counter_value("mem.atomics.shared")
            == res.record.counters.atomics.get(MemSpace.SHARED, 0))


def test_sim_report_round_trip():
    res = _run_small()
    rebuilt = res.metrics.sim_report()
    assert rebuilt.kernel == res.report.kernel
    assert rebuilt.n == res.report.n
    assert rebuilt.seconds == pytest.approx(res.report.seconds)
    assert rebuilt.occupancy == pytest.approx(res.report.occupancy)
    assert rebuilt.dominant == res.report.dominant
    for pipe, util in res.report.utilization.items():
        assert rebuilt.utilization[pipe] == pytest.approx(util)
    assert rebuilt.memory_summary == res.report.memory_summary


def test_resilience_metrics():
    res = _run_small(workers=2, faults=1, retries=3)
    m = res.metrics
    assert m.gauge_value("fault.seed") == 1
    assert m.counter_value("fault.alloc-transient") == 1
    assert m.counter_value("fault.worker-crash") == 1
    assert m.counter_value("recovery.retry-transient") == 1


def test_to_dict_and_render_deterministic():
    a = _run_small(workers=2).metrics
    b = _run_small(workers=2).metrics
    assert a.to_dict() == b.to_dict()
    assert a.render() == b.render()
    assert "counters:" in a.render()


def test_manifest_contents_are_plain_and_complete():
    res = _run_small(workers=2, prune=True)
    man = res.manifest
    assert man["schema"] == "repro-manifest-v1"
    assert man["n"] == 300
    assert man["workers"] == 2
    assert man["prune"] is True
    assert man["problem"]["dims"] == 3
    assert man["kernel"]["name"] == res.kernel.name
    assert man["device"]["name"]
    assert "calibration" in man
    # reproducibility: no wall-clock / timestamp fields anywhere
    flat = repr(sorted(man))
    assert "time" not in flat and "date" not in flat


def test_manifest_fault_seed():
    res = _run_small(workers=2, faults=7, retries=3)
    assert res.manifest["fault_seed"] == 7


def test_git_describe_returns_string():
    assert isinstance(git_describe(), str)
    assert git_describe()  # non-empty ("unknown" fallback at worst)


def test_build_manifest_direct():
    man = build_manifest(n=10)
    assert man["n"] == 10
    assert "problem" not in man and "kernel" not in man
    man2 = build_manifest(n=10, faults=7, retries=2)
    assert man2["fault_seed"] == 7
    assert man2["retries"] == 2


# -- registry merge (cluster / process-pool composition) ----------------------

def test_merge_unit_semantics():
    a = MetricsRegistry()
    a.inc("c", 2)
    a.set_gauge("g", 1.0)
    a.observe("h", 1.0)
    a.set_label("k", "a")
    b = MetricsRegistry()
    b.inc("c", 3)
    b.inc("only_b")
    b.set_gauge("g", 2.5)
    b.observe("h", 2.0)
    b.set_label("k", "b")
    out = a.merge(b)
    assert out is a
    # counters are extensive: they add
    assert a.counter_value("c") == 5
    assert a.counter_value("only_b") == 1
    # gauges and labels are last-writer-wins, histograms concatenate
    assert a.gauge_value("g") == 2.5
    assert a.histograms["h"] == [1.0, 2.0]
    assert a.labels["k"] == "b"
    # the source registry is untouched
    assert b.counter_value("c") == 3


@pytest.mark.parametrize("backend", ["sequential", "processes"])
def test_merge_cluster_stripes_sum_to_single_node(backend):
    """Per-node counter registries merged across the stripe records must
    equal the single-node run's totals — the composition law the merge
    exists for, under both the in-process and process-pool engines."""
    from repro.core.cluster import ClusterSpec, cluster_run

    pts = uniform_points(300, dims=3, box=10.0, seed=3)
    problem = sdh_app.make_problem(32, 10.0 * np.sqrt(3), dims=3)
    kernel = sdh_app.default_kernel(problem, block_size=32)
    single = run(problem, pts, kernel=kernel, backend=backend)
    cr = cluster_run(problem, pts, cluster=ClusterSpec(nodes=3),
                     kernel=kernel, backend=backend)

    merged = MetricsRegistry()
    for record in cr.records:
        part = MetricsRegistry()
        part.ingest_access_counters(record.counters)
        merged.merge(part)
    baseline = MetricsRegistry()
    baseline.ingest_access_counters(single.record.counters)

    mem_names = [n for n in baseline.counters if n.startswith("mem.")]
    assert mem_names, "baseline registry recorded no memory counters"
    for name in mem_names:
        assert merged.counter_value(name) == baseline.counter_value(name), name
    assert np.array_equal(cr.result, single.result)


def test_merge_identity_and_empty():
    m = MetricsRegistry()
    m.inc("c", 7)
    m.merge(MetricsRegistry())
    assert m.counter_value("c") == 7
    fresh = MetricsRegistry().merge(m)
    assert fresh.counter_value("c") == 7
