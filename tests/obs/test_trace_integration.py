"""End-to-end tracing acceptance: a supervised, pruned, parallel run
exports a Chrome trace with the full event vocabulary, byte-identical
across reruns, and the default (no tracing) path stays allocation-free."""

import json

import numpy as np
import pytest

from repro.apps import sdh as sdh_app
from repro.core.runner import run
from repro.data import uniform_points
from repro.gpusim.device import Device
from repro.obs.tracer import NULL_TRACER, Tracer


def _traced_run(trace=True, workers=4, seed=5):
    pts = uniform_points(384, dims=3, box=10.0, seed=seed)
    problem = sdh_app.make_problem(32, 10.0 * np.sqrt(3), dims=3)
    kernel = sdh_app.default_kernel(problem, prune=True)
    return run(
        problem, pts, kernel=kernel, workers=workers, prune=True,
        faults=1, retries=3, trace=trace,
    )


def test_supervised_trace_has_full_vocabulary():
    res = _traced_run()
    tr = res.trace
    assert isinstance(tr, Tracer)
    names = {s.name for s in tr.all_spans()}
    # structural spans
    for required in ("launch", "worker", "merge"):
        assert required in names, f"missing {required} span"
    # fault + recovery instants from the chaos plan (seed 1 injects a
    # transient allocation failure, a worker crash and a corrupt shard)
    assert "fault:alloc-transient" in names
    assert "fault:worker-crash" in names
    assert "recovery:retry-transient" in names
    # prune decisions
    assert "prune" in names
    assert "prune-classify" in names


def test_trace_bytes_identical_across_runs(tmp_path):
    j1 = _traced_run().trace.chrome_json()
    j2 = _traced_run().trace.chrome_json()
    assert j1 == j2
    # and through the file-export path
    p1, p2 = tmp_path / "a.json", tmp_path / "b.json"
    _traced_run(trace=p1)
    _traced_run(trace=p2)
    assert p1.read_bytes() == p2.read_bytes()


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_trace_reproducible_per_worker_count(workers):
    a = _traced_run(workers=workers).trace.chrome_json()
    b = _traced_run(workers=workers).trace.chrome_json()
    assert a == b


def test_chrome_trace_schema(tmp_path):
    out = tmp_path / "trace.json"
    res = _traced_run(trace=out)
    doc = json.loads(out.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    assert doc["otherData"]["schema"] == "repro-trace-v1"
    # the manifest rides inside the trace
    man = doc["otherData"]["manifest"]
    assert man["schema"] == "repro-manifest-v1"
    assert man["prune"] is True and man["fault_seed"] == 1
    events = doc["traceEvents"]
    assert events, "trace must contain events"
    phases = {e["ph"] for e in events}
    assert phases <= {"X", "i", "M"}
    for e in events:
        assert isinstance(e["name"], str) and "pid" in e and "tid" in e
        if e["ph"] == "X":
            assert e["dur"] >= 0 and e["ts"] >= 0
        if e["ph"] == "i":
            assert e["s"] == "t"
    # metadata names both the device process and the worker lanes
    meta = {(e["pid"], e["tid"]): e["args"]["name"]
            for e in events if e["ph"] == "M" and e["name"] == "thread_name"}
    assert meta[(1, 0)] == "engine"
    assert any(v.startswith("worker-") for v in meta.values())


def test_worker_spans_nest_under_launch_with_lanes():
    res = _traced_run()
    tr = res.trace
    launches = tr.find("launch")
    assert launches
    workers = [s for L in launches for s in L.children if s.name == "worker"]
    assert workers
    assert all(s.lane is not None for s in workers)
    # every worker span records the blocks it was dealt
    assert all("blocks" in s.args for s in workers)


def test_layout_timestamps_are_simulated_not_wall():
    res = _traced_run()
    tr = res.trace
    tr.layout()
    spans = [s for s in tr.all_spans() if s.kind == "span"]
    # children stay inside their parent's extent
    def check(span):
        for c in span.children:
            if c.kind == "span":
                assert c.ts >= span.ts - 1e-9
                assert c.ts + c.dur <= span.ts + span.dur + 1e-9
                check(c)
    for root in tr.roots:
        check(root)
    assert all(s.dur >= 0 for s in spans)


def test_default_run_has_no_trace():
    pts = uniform_points(256, dims=3, box=10.0, seed=2)
    problem = sdh_app.make_problem(16, 10.0 * np.sqrt(3), dims=3)
    res = run(problem, pts)
    assert res.trace is None
    assert res.metrics is not None  # metrics are always collected


def test_null_tracer_is_default_on_device():
    dev = Device()
    assert dev.tracer is NULL_TRACER


def test_results_unchanged_by_tracing():
    pts = uniform_points(300, dims=3, box=10.0, seed=9)
    problem = sdh_app.make_problem(24, 10.0 * np.sqrt(3), dims=3)
    kernel = sdh_app.default_kernel(problem, prune=True)
    plain = run(problem, pts, kernel=kernel, workers=2, prune=True)
    traced = run(problem, pts, kernel=kernel, workers=2, prune=True,
                 trace=True)
    np.testing.assert_array_equal(plain.result, traced.result)


def test_jsonl_export(tmp_path):
    res = _traced_run()
    out = tmp_path / "events.jsonl"
    res.trace.export_jsonl(out)
    lines = out.read_text().strip().splitlines()
    assert lines
    for line in lines:
        ev = json.loads(line)
        assert {"name", "cat", "kind", "ts", "dur", "args"} <= set(ev)
