"""Tests for the density-map (tree-based) SDH algorithm."""

import math

import numpy as np
import pytest

from repro.algos import TreeSdh, TreeSdhStats
from repro.algos.treesdh import _ragged_cartesian
from repro.cpu_ref import brute
from repro.data import gaussian_clusters, uniform_points

BOX = 10.0
MAXD = BOX * math.sqrt(3.0)


def make_tree(bins, dims=3, **kw):
    maxd = BOX * math.sqrt(dims)
    return TreeSdh(bins, maxd / bins, BOX, dims=dims, **kw), maxd / bins


class TestRaggedCartesian:
    def test_basic(self):
        ci, li, ri = _ragged_cartesian(np.array([2, 1]), np.array([3, 2]))
        assert ci.size == 8
        assert (ci[:6] == 0).all() and (ci[6:] == 1).all()
        assert li[:6].tolist() == [0, 0, 0, 1, 1, 1]
        assert ri[:6].tolist() == [0, 1, 2, 0, 1, 2]

    def test_empty(self):
        ci, li, ri = _ragged_cartesian(np.array([0, 3]), np.array([5, 0]))
        assert ci.size == 0


class TestExactness:
    @pytest.mark.parametrize("bins", [4, 16, 64])
    def test_uniform_matches_brute(self, bins):
        pts = uniform_points(2000, 3, BOX, seed=1)
        tree, w = make_tree(bins)
        assert np.array_equal(
            tree.compute(pts), brute.sdh_histogram(pts, bins, w)
        )

    def test_clustered_matches_brute(self):
        pts = np.clip(
            gaussian_clusters(1500, 3, n_clusters=4, box=BOX, seed=2), 0, BOX
        )
        tree, w = make_tree(16)
        assert np.array_equal(
            tree.compute(pts), brute.sdh_histogram(pts, 16, w)
        )

    def test_2d(self):
        pts = uniform_points(3000, 2, BOX, seed=3)
        tree, w = make_tree(16, dims=2)
        assert np.array_equal(
            tree.compute(pts), brute.sdh_histogram(pts, 16, w)
        )

    def test_boundary_points(self):
        pts = np.array(
            [[0.0, 0.0, 0.0], [BOX, BOX, BOX], [BOX, 0.0, 0.0], [5.0, 5.0, 5.0]]
        )
        tree, w = make_tree(8)
        assert np.array_equal(
            tree.compute(pts), brute.sdh_histogram(pts, 8, w)
        )

    def test_duplicate_points(self):
        pts = np.tile(uniform_points(50, 3, BOX, seed=4), (3, 1))
        tree, w = make_tree(16)
        assert np.array_equal(
            tree.compute(pts), brute.sdh_histogram(pts, 16, w)
        )

    def test_frontier_cap_keeps_exactness(self):
        pts = uniform_points(4000, 3, BOX, seed=5)
        tree, w = make_tree(8, max_frontier=5_000)  # absurdly tight
        assert np.array_equal(
            tree.compute(pts), brute.sdh_histogram(pts, 8, w)
        )

    def test_mass_conservation(self):
        pts = uniform_points(3000, 3, BOX, seed=6)
        tree, _ = make_tree(32)
        stats = TreeSdhStats()
        hist = tree.compute(pts, stats)
        n = len(pts)
        assert hist.sum() == n * (n - 1) // 2
        assert stats.total_pairs == n * (n - 1) // 2


class TestWorkSavings:
    def test_resolution_happens(self):
        pts = uniform_points(8000, 3, BOX, seed=7)
        tree, _ = make_tree(8)
        stats = TreeSdhStats()
        tree.compute(pts, stats)
        assert stats.resolved_fraction > 0.3
        assert stats.work < 8000 * 7999 // 2  # strictly beats brute force

    def test_savings_grow_with_n(self):
        ratios = []
        for n in (2000, 8000):
            pts = uniform_points(n, 3, BOX, seed=8)
            tree, _ = make_tree(8)
            stats = TreeSdhStats()
            tree.compute(pts, stats)
            ratios.append(stats.work / (n * (n - 1) // 2))
        assert ratios[1] < ratios[0]

    def test_start_level_geometry(self):
        tree, w = make_tree(8)
        lvl = tree.start_level()
        edge = BOX / 2**lvl
        assert 2 * edge * math.sqrt(3) <= w
        assert 4 * edge * math.sqrt(3) > w  # one level up would not do


class TestGpuPricing:
    def test_tree_plus_gpu_beats_brute_kernel(self):
        """Section II: the advanced algorithm shares the same pairwise
        primitive — priced with the same model, fewer pairs means less
        simulated time than the brute O(N^2) kernel."""
        from repro import apps
        from repro.core import make_kernel

        n = 10_000
        pts = uniform_points(n, 3, BOX, seed=9)
        tree, w = make_tree(8)
        stats = TreeSdhStats()
        tree.compute(pts, stats)
        tree_gpu = tree.simulate_gpu(stats)
        problem = apps.sdh.make_problem(8, MAXD, box=BOX)
        brute_gpu = make_kernel(
            problem, "register-roc", "privatized-shm", 256
        ).simulate(n).seconds
        assert tree_gpu < brute_gpu


class TestValidation:
    def test_bad_params(self):
        with pytest.raises(ValueError):
            TreeSdh(0, 1.0, BOX)
        with pytest.raises(ValueError):
            TreeSdh(8, -1.0, BOX)
        with pytest.raises(ValueError):
            TreeSdh(8, 1.0, BOX, dims=4)

    def test_points_outside_region(self):
        tree, _ = make_tree(8)
        with pytest.raises(ValueError, match="inside"):
            tree.compute(np.array([[11.0, 0.0, 0.0]]))

    def test_wrong_shape(self):
        tree, _ = make_tree(8)
        with pytest.raises(ValueError, match=r"\(n, 3\)"):
            tree.compute(np.zeros((10, 2)))
