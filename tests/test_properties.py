"""Property-based tests (hypothesis) on core data structures & invariants."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import apps
from repro.core import (
    BlockDecomposition,
    compute_geometry,
    cyclic_pair_list,
    make_kernel,
)
from repro.cpusim import (
    dynamic_schedule,
    guided_schedule,
    static_schedule,
    triangular_weight,
)
from repro.cpu_ref import brute
from repro.gpusim import (
    Device,
    TITAN_X,
    calculate_occupancy,
    shfl_broadcast,
    shfl_xor,
    warp_loop_cycles,
)

MAXD = 10.0 * math.sqrt(3.0)


# -- tiling geometry ------------------------------------------------------------

@given(n=st.integers(1, 5000), b=st.integers(1, 1024))
def test_block_decomposition_partitions_points(n, b):
    dec = BlockDecomposition(n, b)
    total = sum(dec.block_size_of(i) for i in range(dec.num_blocks))
    assert total == n
    assert dec.num_blocks * b >= n > (dec.num_blocks - 1) * b


@given(n=st.integers(2, 2000), b=st.integers(1, 256), full=st.booleans())
def test_geometry_pair_conservation(n, b, full):
    """inter + intra pairs always equals the problem's total pair count."""
    geom = compute_geometry(n, b, full)
    expected = n * (n - 1) if full else n * (n - 1) // 2
    assert geom.pairs == expected


@given(b=st.integers(1, 128).map(lambda x: 2 * x))
def test_cyclic_schedule_is_a_perfect_matching_sequence(b):
    pairs = cyclic_pair_list(b)
    canon = {tuple(sorted(p)) for p in pairs.tolist()}
    assert len(canon) == len(pairs) == b * (b - 1) // 2


# -- divergence ------------------------------------------------------------------

@given(
    trips=st.lists(st.integers(0, 200), min_size=1, max_size=256).map(np.array)
)
def test_divergence_bounds(trips):
    prof = warp_loop_cycles(trips)
    assert prof.warp_iterations >= math.ceil(trips.max() if trips.size else 0)
    assert prof.thread_iterations <= prof.lane_slots
    assert 0.0 <= prof.efficiency <= 1.0


# -- occupancy --------------------------------------------------------------------

@given(
    threads=st.integers(1, 32).map(lambda w: w * 32),
    regs=st.integers(16, 128),
    shared=st.integers(0, 48 * 1024),
)
def test_occupancy_in_unit_range(threads, regs, shared):
    from repro.gpusim import LaunchConfigError

    try:
        occ = calculate_occupancy(TITAN_X, threads, regs, shared)
    except LaunchConfigError:
        # legal only when a single block genuinely exceeds the SM's
        # register file (the real driver rejects such launches too)
        granulated = ((regs + 7) // 8) * 8
        assert granulated * threads > TITAN_X.registers_per_sm
        return
    assert 0.0 < occ.occupancy <= 1.0
    assert occ.blocks_per_sm >= 1
    assert occ.active_warps_per_sm <= TITAN_X.max_warps_per_sm


@given(threads=st.sampled_from([128, 256, 512]), regs=st.integers(16, 64))
def test_occupancy_antitone_in_shared(threads, regs):
    prev = None
    for shared in (0, 8_192, 20_480, 32_768, 45_056):
        occ = calculate_occupancy(TITAN_X, threads, regs, shared).occupancy
        if prev is not None:
            assert occ <= prev
        prev = occ


# -- shuffle ----------------------------------------------------------------------

@given(
    data=st.lists(
        st.floats(-1e6, 1e6, allow_nan=False), min_size=32, max_size=32
    ),
    lane=st.integers(0, 31),
)
def test_shuffle_broadcast_delivers_source_lane(data, lane):
    regs = np.array(data)
    out = shfl_broadcast(regs, lane)
    assert (out == regs[lane]).all()


@given(
    data=st.lists(st.integers(-1000, 1000), min_size=64, max_size=64),
    mask=st.sampled_from([1, 2, 4, 8, 16]),
)
def test_shuffle_xor_involution(data, mask):
    regs = np.array(data)
    assert (shfl_xor(shfl_xor(regs, mask), mask) == regs).all()


# -- schedulers --------------------------------------------------------------------

schedule_strategy = st.sampled_from(
    [
        lambda n, t: static_schedule(n, t),
        lambda n, t: static_schedule(n, t, chunk=13),
        lambda n, t: dynamic_schedule(n, t, chunk=17),
        lambda n, t: guided_schedule(n, t, min_chunk=8),
        lambda n, t: guided_schedule(
            n, t, min_chunk=4, weight_fn=triangular_weight(n)
        ),
    ]
)


@given(n=st.integers(0, 3000), t=st.integers(1, 16), make=schedule_strategy)
def test_schedules_tile_iteration_space(n, t, make):
    a = make(n, t)
    chunks = a.coverage()
    assert sum(e - s for s, e in chunks) == n
    for (s1, e1), (s2, e2) in zip(chunks, chunks[1:]):
        assert e1 == s2
    assert all(s < e for s, e in chunks)


# -- histogram invariants (functional kernels) ------------------------------------

@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(20, 140),
    bins=st.integers(4, 48),
    seed=st.integers(0, 1000),
    inp=st.sampled_from(["naive", "register-shm", "register-roc", "shuffle"]),
)
def test_sdh_mass_conservation_and_oracle(n, bins, seed, inp):
    pts = np.random.default_rng(seed).uniform(0, 10, (n, 3))
    problem = apps.sdh.make_problem(bins, MAXD)
    kernel = make_kernel(problem, inp, "privatized-shm", block_size=32)
    result, _ = kernel.execute(Device(), pts)
    assert result.sum() == n * (n - 1) // 2
    assert np.array_equal(result, brute.sdh_histogram(pts, bins, MAXD / bins))


@settings(max_examples=10, deadline=None)
@given(n=st.integers(10, 120), r=st.floats(0.1, 20.0), seed=st.integers(0, 100))
def test_pcf_count_bounds_and_oracle(n, r, seed):
    pts = np.random.default_rng(seed).uniform(0, 10, (n, 3))
    count, _ = apps.pcf.count_pairs(pts, r)
    assert 0 <= count <= n * (n - 1) // 2
    assert count == brute.pcf_count(pts, r)


@settings(max_examples=8, deadline=None)
@given(n=st.integers(30, 100), k=st.integers(1, 6), seed=st.integers(0, 50))
def test_knn_distance_properties(n, k, seed):
    pts = np.random.default_rng(seed).uniform(0, 10, (n, 3))
    d, ids, _ = apps.knn.compute(pts, k)
    assert (np.diff(d, axis=1) >= 0).all()  # sorted
    assert (ids != np.arange(n)[:, None]).all()  # never self
    rd, _ = brute.knn(pts, k)
    assert np.allclose(d, rd)


@settings(max_examples=8, deadline=None)
@given(n=st.integers(20, 90), eps=st.floats(0.0, 50.0), seed=st.integers(0, 50))
def test_join_symmetric_and_complete(n, eps, seed):
    vals = np.random.default_rng(seed).uniform(0, 100, n)
    pairs, _ = apps.join.band_join(vals, eps)
    assert np.array_equal(pairs, brute.band_join(vals, eps))
    # every emitted pair satisfies the predicate
    if len(pairs):
        assert (np.abs(vals[pairs[:, 0]] - vals[pairs[:, 1]]) <= eps).all()
