"""Backend benchmark: the GIL-ceiling modes on the flagship SDH kernel.

Times the host execution backends behind ``Device.launch`` on the paper's
flagship SDH composition (Register-ROC x Privatized-SHM, B=256):

* ``sequential`` — ``backend="sequential"``, batch_tiles=1: the seed's
  tile-at-a-time loop (the 1.0x reference);
* ``threads``    — the block-parallel thread pool with auto tile
  batching: the 2-3x dispatch-amortization plateau this PR targets;
* ``processes``  — forked shared-memory workers, one interpreter each
  (:mod:`repro.gpusim.procpool`): pays a fork/segment toll per launch,
  then scales with *cores* instead of sharing one GIL;
* ``megabatch``  — every surviving partner tile stacked into one staged
  evaluation per kernel stage (:mod:`repro.core.kernels.megabatch`).

All four produce bit-identical histograms (asserted before any time is
reported).  The modes are timed **interleaved** — round-robin over modes
inside each repeat round, keeping the best round per mode — so slow
drift on a busy machine biases every mode equally instead of whichever
ran last.  On a single-core host the process backend cannot beat the
thread pool (same serialized math plus the fork toll) and mega-batch's
edge over threads is the dispatch residual only; the committed baseline
records whatever the build machine honestly measured.  Run as a script
to produce ``BENCH_backend.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_backend.py

or the CI-sized subset::

    PYTHONPATH=src python -m pytest benchmarks -m bench_smoke -q
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import numpy as np
import pytest

from repro import apps
from repro.core.kernels import make_kernel
from repro.gpusim import Device, TITAN_X

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_backend.json"

SDH_BINS = 256
BLOCK = 256
SIZES = (4096, 8192, 16384)
WORKERS = 4

#: (row name, backend, workers, batch_tiles) — batch None = engine auto
MODES = (
    ("sequential", "sequential", 1, 1),
    ("threads", "threads", WORKERS, None),
    ("processes", "processes", WORKERS, None),
    ("megabatch", "megabatch", 1, None),
)


def _points(n: int) -> np.ndarray:
    rng = np.random.default_rng(20160808)
    return rng.uniform(0.0, 10.0, size=(n, 3))


def _kernel():
    problem = apps.sdh.make_problem(SDH_BINS, 10.0 * math.sqrt(3.0), dims=3)
    return make_kernel(
        problem, "register-roc", "privatized-shm", block_size=BLOCK
    )


def _time_once(kernel, points, backend, workers, batch):
    device = Device(TITAN_X)
    t0 = time.perf_counter()
    result, _ = kernel.execute(
        device, points, workers=workers, batch_tiles=batch, backend=backend
    )
    return time.perf_counter() - t0, result


def run_suite(sizes=SIZES, repeats: int = 3):
    """Time every backend at every size; returns BENCH_backend.json rows."""
    rows = []
    for n in sizes:
        points = _points(n)
        kernel = _kernel()
        best = {name: math.inf for name, _, _, _ in MODES}
        baseline_hist = None
        for _ in range(repeats):
            # interleave: one shot per mode per round, best round wins
            for name, backend, workers, batch in MODES:
                seconds, hist = _time_once(
                    kernel, points, backend, workers, batch
                )
                best[name] = min(best[name], seconds)
                if baseline_hist is None:
                    baseline_hist = hist
                else:
                    np.testing.assert_array_equal(baseline_hist, hist)
        baseline_seconds = best["sequential"]
        for name, _, _, _ in MODES:
            rows.append({
                "bench": name,
                "n": n,
                "seconds": round(best[name], 6),
                "speedup": round(baseline_seconds / best[name], 3),
            })
    return rows


def main() -> None:
    rows = run_suite()
    OUT_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    width = max(len(r["bench"]) for r in rows)
    for r in rows:
        print(
            f"N={r['n']:>6}  {r['bench']:<{width}}  "
            f"{r['seconds']:>9.4f}s  {r['speedup']:>6.2f}x"
        )
    print(f"wrote {OUT_PATH}")


# -- CI smoke subset -----------------------------------------------------------

@pytest.mark.bench_smoke
def test_backend_bench_smoke(save_artifact):
    """Quick cross-check at N=4096: every backend agrees bit-for-bit and
    the amortized paths clear the sequential loop."""
    rows = run_suite(sizes=(4096,), repeats=1)
    by_mode = {r["bench"]: r for r in rows}
    assert set(by_mode) == {m[0] for m in MODES}
    # run_suite already asserted bit-identity; pin the perf contract at a
    # CI-safe floor (machines and core counts vary widely)
    assert by_mode["megabatch"]["speedup"] > 1.2
    assert by_mode["threads"]["speedup"] > 1.2
    save_artifact(
        "bench_backend_smoke",
        json.dumps(rows, indent=2, sort_keys=True),
    )


if __name__ == "__main__":
    main()
