"""Benchmark regression guard: fresh run vs the committed baselines.

Re-runs the engine and pruning benchmark suites and diffs them against
the committed ``BENCH_engine.json`` / ``BENCH_pruning.json``.  The
comparison is on *speedup ratios* (batched-vs-sequential, pruned-vs-
unpruned), not absolute seconds — ratios are a property of the code,
absolute times are a property of the machine, so the guard is meaningful
on any CI runner.  A drop of more than ``--tolerance`` (default 20%) on
any ``(bench, n)`` pair present in both sets exits nonzero.

Usage::

    PYTHONPATH=src python benchmarks/compare.py            # full suites
    PYTHONPATH=src python benchmarks/compare.py --smoke    # CI-sized
    PYTHONPATH=src python benchmarks/compare.py --smoke --trace trace.json

``--trace`` additionally exports a Chrome trace of one supervised,
pruned, parallel run (the observability acceptance configuration) so CI
can upload it as an artifact.
"""

from __future__ import annotations

import argparse
import json
import math
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))

import bench_backend  # noqa: E402
import bench_cells  # noqa: E402
import bench_checkpoint  # noqa: E402
import bench_cluster  # noqa: E402
import bench_engine  # noqa: E402
import bench_pruning  # noqa: E402

#: (label, baseline file, fresh-rows thunk, smoke thunk, speedup key)
SUITES = {
    "engine": (
        REPO_ROOT / "BENCH_engine.json",
        lambda: bench_engine.run_suite(),
        lambda: bench_engine.run_suite(sizes=(2048,), repeats=2),
    ),
    "pruning": (
        REPO_ROOT / "BENCH_pruning.json",
        lambda: bench_pruning.run_suite(),
        # repeats=2: pruned-vs-unpruned ratios at a single size are noisy
        # enough at repeats=1 to trip the 20% floor on an idle machine
        lambda: bench_pruning.run_suite(sizes=(2048,), repeats=2),
    ),
    "backend": (
        REPO_ROOT / "BENCH_backend.json",
        lambda: bench_backend.run_suite(),
        # interleaved rounds already even out drift; two keep the best-of
        # stable enough for the 20% floor on a loaded CI runner
        lambda: bench_backend.run_suite(sizes=(4096,), repeats=2),
    ),
    "checkpoint": (
        REPO_ROOT / "BENCH_checkpoint.json",
        lambda: bench_checkpoint.run_suite(),
        lambda: bench_checkpoint.run_suite(sizes=(4096,), repeats=2),
    ),
    "cells": (
        REPO_ROOT / "BENCH_cells.json",
        lambda: bench_cells.run_suite(),
        # the smallest committed size so the smoke run intersects the
        # baseline; repeats=2 (best-of) because single-shot ratios on a
        # loaded 1-core runner can drift past the 20% floor
        lambda: bench_cells.run_suite(sizes=(20_000,), repeats=2),
    ),
    "cluster": (
        REPO_ROOT / "BENCH_cluster.json",
        lambda: bench_cluster.run_suite(),
        # fully modelled (no wall clocks): one size is enough and the
        # 20% floor can never trip on machine noise
        lambda: bench_cluster.run_suite(sizes=(200_000,)),
    ),
}


def _by_key(rows):
    return {(r["bench"], r["n"]): r for r in rows}


def compare_rows(baseline, fresh, tolerance: float):
    """Diff two row sets on their (bench, n) intersection.

    Returns ``(lines, regressions)``: human-readable report lines and the
    list of keys whose fresh speedup fell more than ``tolerance`` below
    the committed one.
    """
    base = _by_key(baseline)
    new = _by_key(fresh)
    lines, regressions = [], []
    for key in sorted(new):
        if key not in base:
            lines.append(f"  {key[0]:<16} n={key[1]:<6} (no baseline, skipped)")
            continue
        b, f = base[key]["speedup"], new[key]["speedup"]
        floor = b * (1.0 - tolerance)
        status = "ok"
        if f < floor:
            status = "REGRESSION"
            regressions.append(key)
        lines.append(
            f"  {key[0]:<16} n={key[1]:<6} baseline {b:>6.2f}x  "
            f"fresh {f:>6.2f}x  floor {floor:>6.2f}x  {status}"
        )
    return lines, regressions


def export_acceptance_trace(path: str) -> None:
    """One supervised + pruned + parallel run, exported as a Chrome trace."""
    import numpy as np

    from repro.apps import sdh as sdh_app
    from repro.core.runner import run
    from repro.data import uniform_points

    pts = uniform_points(1024, dims=3, box=10.0, seed=5)
    problem = sdh_app.make_problem(64, 10.0 * math.sqrt(3), dims=3)
    kernel = sdh_app.default_kernel(problem, prune=True)
    res = run(
        problem, pts, kernel=kernel, workers=4, prune=True,
        faults=1, retries=3, trace=path,
    )
    assert np.all(res.result >= 0)
    events = len(res.trace.all_spans())
    print(f"acceptance trace written to {path} ({events} events)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="CI-sized run: smallest size, fewest repeats")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional speedup drop (default 0.2)")
    parser.add_argument("--suite", choices=[*SUITES, "all"], default="all")
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="also export the acceptance Chrome trace here")
    args = parser.parse_args(argv)

    wanted = list(SUITES) if args.suite == "all" else [args.suite]
    failed = False
    for name in wanted:
        baseline_path, full, smoke = SUITES[name]
        if not baseline_path.exists():
            print(f"{name}: no committed baseline at {baseline_path}, skipped")
            continue
        baseline = json.loads(baseline_path.read_text())
        print(f"{name}: running {'smoke' if args.smoke else 'full'} suite ...")
        fresh = smoke() if args.smoke else full()
        lines, regressions = compare_rows(baseline, fresh, args.tolerance)
        print("\n".join(lines))
        if regressions:
            failed = True
            print(f"{name}: {len(regressions)} regression(s) beyond "
                  f"{args.tolerance:.0%}: {regressions}")
        else:
            print(f"{name}: within {args.tolerance:.0%} of baseline")
    if args.trace:
        export_acceptance_trace(args.trace)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
