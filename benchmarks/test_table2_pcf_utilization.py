"""Table II — utilization of GPU resources for the 2-PCF kernels.

Paper claims reproduced: Naive memory-starved (~15% arithmetic, memory
maxed); SHM-SHM / Reg-SHM compute-bound at >50% arithmetic with moderate
shared-memory pressure; Reg-ROC dominated by the data cache.
"""

import pytest

from repro.bench import table2_pcf_utilization


@pytest.mark.benchmark(group="table2")
def test_table2(benchmark, save_artifact):
    reports, text = benchmark(table2_pcf_utilization, 1_048_576)
    save_artifact("table2_pcf_utilization", text)
    reps = {r.kernel: r for r in reports}
    assert reps["Naive"].utilization["arith"] < reps["Reg-SHM"].utilization["arith"]
    assert reps["Reg-SHM"].utilization["arith"] > 0.45
    assert reps["Reg-ROC"].utilization["roc"] > 0.6
