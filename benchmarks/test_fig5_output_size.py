"""Fig. 5 — Reg-ROC-Out under different SDH bucket counts.

Paper claims reproduced: runtime rises as a *step function* of output
size (each step = one fewer resident block as the shared-memory histogram
grows); occupancy falls in the same steps; very small bucket counts
degrade again from atomic contention.
"""

import numpy as np
import pytest

from repro.bench import fig5_output_size


@pytest.mark.benchmark(group="fig5")
def test_fig5(benchmark, save_artifact):
    fig = benchmark(fig5_output_size)
    save_artifact("fig5_output_size", fig.render(unit=""))
    x = fig.x_values
    t = dict(zip(x, fig.series["time"].values))
    occ = dict(zip(x, fig.series["occupancy %"].values))
    # occupancy staircase
    assert occ[1000] == 100.0 and occ[5000] == 50.0
    # runtime steps with occupancy
    assert t[5000] > 1.4 * t[2500]
    # contention penalty at the small end
    assert t[16] > 1.8 * t[1000]


@pytest.mark.benchmark(group="fig5")
def test_fig5_step_positions(benchmark, save_artifact):
    """The steps must land where the occupancy calculator predicts: at
    96KB/(4*bins) crossings for B=256."""
    fig = benchmark(
        fig5_output_size,
        (3000, 3100, 3500, 4000, 4200, 4900, 5000),
    )
    occ = dict(zip(fig.x_values, fig.series["occupancy %"].values))
    assert occ[3000] == 100.0  # 8 blocks (thread-limited)
    assert occ[3100] == 87.5  # 7 blocks: 96KB / ~12.4KB histograms
    assert occ[3500] == 75.0  # 6 blocks
    assert occ[4200] == 62.5  # 5 blocks
    assert occ[5000] == 50.0  # 4 blocks
