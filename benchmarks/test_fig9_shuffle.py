"""Fig. 9 — tiling with shuffle instructions vs cache tiling vs CPU.

Paper claims reproduced: shuffle tiling runs within a few percent of the
shared-memory and read-only-cache tiled kernels (it is the fallback when
both caches are claimed by concurrent kernels), and all three stay more
than an order of magnitude ahead of the CPU.
"""

import numpy as np
import pytest

from repro.bench import PAPER_SIZES, fig9_shuffle


@pytest.mark.benchmark(group="fig9")
def test_fig9(benchmark, save_artifact):
    fig = benchmark(fig9_shuffle, PAPER_SIZES)
    save_artifact("fig9_shuffle", fig.render())
    sh = np.array(fig.series["Shuffle"].values)
    shm = np.array(fig.series["Reg-SHM-Out"].values)
    roc = np.array(fig.series["Reg-ROC-Out"].values)
    cpu = np.array(fig.series["CPU"].values)
    assert np.allclose(sh, shm, rtol=0.15)
    assert np.allclose(sh, roc, rtol=0.25)
    assert (cpu / sh > 10).all()
