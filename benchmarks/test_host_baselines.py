"""Real wall-clock benchmarks of the threaded host implementations.

These are the genuinely-executing analogue of the paper's CPU baseline:
chunked NumPy + thread pool + private histograms + reduction.  The thread
scaling assertion is deliberately loose (CI machines vary), but 4 threads
must never be slower than 1 by more than a small margin.
"""

import math

import pytest

from repro.cpu_ref import vectorized
from repro.data import uniform_points

MAXD = 10.0 * math.sqrt(3.0)
N = 6000


@pytest.fixture(scope="module")
def pts():
    return uniform_points(N, dims=3, box=10.0, seed=21)


@pytest.mark.benchmark(group="host-cpu")
@pytest.mark.parametrize("n_threads", [1, 2, 4])
def test_host_sdh(benchmark, pts, n_threads):
    hist = benchmark(
        vectorized.sdh_histogram, pts, 2500, MAXD / 2500, n_threads, 512
    )
    assert hist.sum() == N * (N - 1) // 2


@pytest.mark.benchmark(group="host-cpu")
def test_host_pcf(benchmark, pts):
    count = benchmark(vectorized.pcf_count, pts, 1.0, 4, 512)
    assert count > 0


@pytest.mark.benchmark(group="host-cpu")
def test_host_knn(benchmark, pts):
    d, _ = benchmark(vectorized.knn, pts, 8, 4, 512)
    assert d.shape == (N, 8)
