"""Simulated-cluster scaling benchmark: striping, merge topology, loss.

Prices SDH runs on the modelled multi-node cluster (DESIGN.md Section 12)
with the analytical cost model — per-node triangular stripes, the
pipelined input broadcast and the topology-priced all-reduce — and
records three scaling stories:

* ``strong-p{p}`` — fixed problem size spread over more nodes.  The
  O(n^2) pair work divides by p while the O(n) broadcast and the
  O(log p)..O(p) merge do not, so efficiency decays with p; the model
  must keep it >= 0.8 at 8 nodes for paper-scale inputs.
* ``weak-p{p}``   — pair work held constant per node (n_p = n1 * sqrt(p)).
  Efficiency here isolates the communication overhead alone.
* ``node-loss-p8`` — one of 8 nodes dies halfway through its stripe and
  its unfinished rows re-stripe onto the survivors.  The acceptance bar
  is <= 25% slowdown over the fault-free run.
* ``merge-{topology}`` — the all-reduce schedules priced head-to-head at
  8 nodes (speedup is relative to the serialized star floor).

Every row is *modelled* (no wall clocks), so the numbers are exactly
reproducible and the compare.py regression floor is noise-free.

Run as a script to produce ``BENCH_cluster.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_cluster.py

or run the ``bench_smoke`` subset in CI::

    PYTHONPATH=src python -m pytest benchmarks -m bench_smoke -q
"""

from __future__ import annotations

import json
import math
import pathlib

import pytest

from repro import apps
from repro.core.cluster import ClusterSpec, TOPOLOGIES, simulate_cluster

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_cluster.json"

BLOCK = 256
BINS = 64
#: paper-scale sizes: the O(n^2) compute must dominate the O(n) input
#: broadcast for the 8-node efficiency floor to be meaningful — below
#: ~1e5 points the model is honest about being overhead-bound
SIZES = (200_000, 1_000_000)
NODE_COUNTS = (2, 4, 8)
LOSS_NODES = 8
LOST_AT = 0.5


def _kernel():
    problem = apps.sdh.make_problem(BINS, 10.0 * math.sqrt(3.0), dims=3)
    return apps.sdh.default_kernel(problem, block_size=BLOCK)


def _seconds(kernel, n, p, **kw):
    return simulate_cluster(kernel, n, ClusterSpec(nodes=p), **kw)


def run_suite(sizes=SIZES, node_counts=NODE_COUNTS):
    """Model the scaling curves; returns the BENCH_cluster.json rows."""
    kernel = _kernel()
    rows = []
    for n in sizes:
        t1 = _seconds(kernel, n, 1)["seconds"]
        for p in node_counts:
            sim = _seconds(kernel, n, p)
            speedup = t1 / sim["seconds"]
            rows.append({
                "bench": f"strong-p{p}",
                "n": n,
                "nodes": p,
                "seconds": round(sim["seconds"], 6),
                "merge_seconds": round(sim["merge_seconds"], 9),
                "speedup": round(speedup, 3),
                "efficiency": round(speedup / p, 4),
            })
        for p in node_counts:
            # hold per-node pair work constant: n_p^2 / p == n^2
            n_p = int(round(n * math.sqrt(p)))
            t_p = _seconds(kernel, n_p, p)["seconds"]
            eff = t1 / t_p
            rows.append({
                "bench": f"weak-p{p}",
                "n": n,
                "nodes": p,
                "scaled_n": n_p,
                "seconds": round(t_p, 6),
                "speedup": round(eff, 3),
                "efficiency": round(eff, 4),
            })
        clean = _seconds(kernel, n, LOSS_NODES)["seconds"]
        lossy = _seconds(kernel, n, LOSS_NODES, lost_node=3,
                         lost_at=LOST_AT)["seconds"]
        rows.append({
            "bench": f"node-loss-p{LOSS_NODES}",
            "n": n,
            "nodes": LOSS_NODES,
            "seconds": round(lossy, 6),
            "clean_seconds": round(clean, 6),
            "slowdown": round(lossy / clean, 4),
            "speedup": round(clean / lossy, 3),
        })
        star = None
        for topology in reversed(TOPOLOGIES):  # star first: the baseline
            sim = simulate_cluster(
                kernel, n, ClusterSpec(nodes=LOSS_NODES, topology=topology)
            )
            if topology == "star":
                star = sim["merge_seconds"]
            rows.append({
                "bench": f"merge-{topology}",
                "n": n,
                "nodes": LOSS_NODES,
                "merge_seconds": round(sim["merge_seconds"], 9),
                "speedup": round(star / sim["merge_seconds"], 3),
            })
    return rows


def main() -> None:
    rows = run_suite()
    OUT_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    width = max(len(r["bench"]) for r in rows)
    for r in rows:
        extra = ""
        if "efficiency" in r:
            extra = f"  eff {r['efficiency']:.3f}"
        elif "slowdown" in r:
            extra = f"  slowdown {r['slowdown']:.3f}"
        seconds = r.get("seconds", r.get("merge_seconds"))
        print(
            f"N={r['n']:>8}  {r['bench']:<{width}}  "
            f"{seconds:>12.6f}s  {r['speedup']:>7.2f}x{extra}"
        )
    print(f"wrote {OUT_PATH}")


# -- CI smoke subset ----------------------------------------------------------

@pytest.mark.bench_smoke
def test_cluster_bench_smoke(save_artifact):
    """The model at the smallest paper-scale size must clear the issue's
    acceptance bars: >= 0.8 efficiency at 8 fault-free nodes and <= 25%
    slowdown after losing 1 of 8 nodes mid-run."""
    rows = run_suite(sizes=(200_000,))
    by_bench = {r["bench"]: r for r in rows}
    assert by_bench["strong-p8"]["efficiency"] >= 0.8
    assert by_bench["weak-p8"]["efficiency"] >= 0.8
    # efficiency decays monotonically with node count, never exceeds 1
    effs = [by_bench[f"strong-p{p}"]["efficiency"] for p in NODE_COUNTS]
    assert effs == sorted(effs, reverse=True)
    assert all(0.0 < e <= 1.0 for e in effs)
    assert by_bench["node-loss-p8"]["slowdown"] <= 1.25
    assert by_bench["node-loss-p8"]["slowdown"] > 1.0
    # the concurrent schedules must beat the serialized star floor
    assert by_bench["merge-ring"]["speedup"] > 1.0
    assert by_bench["merge-tree"]["speedup"] > 1.0
    save_artifact("bench_cluster_smoke", json.dumps(rows, indent=2, sort_keys=True))


@pytest.mark.bench_smoke
def test_cluster_bench_regression_guard():
    """The committed artifact must keep the issue's acceptance bars at
    every recorded size."""
    if not OUT_PATH.exists():
        pytest.skip("BENCH_cluster.json not generated on this checkout")
    rows = json.loads(OUT_PATH.read_text())
    assert rows, "empty BENCH_cluster.json"
    for row in rows:
        if row["bench"] == "strong-p8":
            assert row["efficiency"] >= 0.8, (
                f"strong-scaling efficiency at N={row['n']} regressed to "
                f"{row['efficiency']} (< 0.8 floor)"
            )
        if row["bench"].startswith("weak-"):
            assert row["efficiency"] >= 0.8
        if row["bench"] == "node-loss-p8":
            assert row["slowdown"] <= 1.25, (
                f"node-loss slowdown at N={row['n']} regressed to "
                f"{row['slowdown']} (> 1.25 ceiling)"
            )


if __name__ == "__main__":
    main()
