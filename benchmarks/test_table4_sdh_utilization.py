"""Table IV — utilization of GPU resources for SDH kernels.

Paper claims reproduced: Naive ~5% arithmetic with memory maxed;
Naive-Out/Reg-SHM-Out/Reg-ROC-Out around 20-25% arithmetic; Reg-SHM-Out
bound by shared memory; Reg-ROC-Out splitting load between shared memory
and the data cache.
"""

import pytest

from repro.bench import table4_sdh_utilization


@pytest.mark.benchmark(group="table4")
def test_table4(benchmark, save_artifact):
    reports, text = benchmark(table4_sdh_utilization, 512_000)
    save_artifact("table4_sdh_utilization", text)
    reps = {r.kernel: r for r in reports}
    assert reps["Naive"].utilization["arith"] < 0.1
    assert reps["Reg-SHM-Out"].dominant == "shared"
    assert reps["Reg-ROC-Out"].utilization["roc"] > 0.25
    assert 0.15 < reps["Reg-ROC-Out"].utilization["arith"] < 0.35
