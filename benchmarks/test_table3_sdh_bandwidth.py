"""Table III — achieved bandwidth per memory unit for SDH kernels.

Paper claims reproduced (as orderings; absolute TB/s depend on the
hardware): Naive drives no shared memory; the privatized kernels saturate
shared memory at TB/s scale with Reg-SHM-Out highest; only the ROC kernel
moves data-cache traffic; Naive-Out has the heaviest global load.
"""

import pytest

from repro.bench import table3_sdh_bandwidth


@pytest.mark.benchmark(group="table3")
def test_table3(benchmark, save_artifact):
    reports, text = benchmark(table3_sdh_bandwidth, 512_000)
    save_artifact("table3_sdh_bandwidth", text)
    reps = {r.kernel: r for r in reports}
    assert reps["Naive"].achieved_bandwidth.get("shared", 0) == 0
    assert reps["Reg-SHM-Out"].achieved_bandwidth["shared"] > 1e12
    assert reps["Reg-ROC-Out"].achieved_bandwidth["roc"] > 1e11
    assert (
        reps["Naive-Out"].achieved_bandwidth["global"]
        > reps["Reg-ROC-Out"].achieved_bandwidth["global"]
    )
