"""Checkpoint overhead benchmark: durability tax vs chunk granularity.

Times the flagship SDH composition (Register-ROC x Privatized-SHM,
B=256) through the chunked checkpoint driver at three granularities
against the same run with no checkpointing:

* ``no-checkpoint`` — ``run_checkpointed`` bypassed entirely (1.0x);
* ``k1``  — a durable chunk after every anchor block: worst-case tax,
  every block pays a pickle + fsync + manifest rewrite;
* ``k8``  — the default granularity; the acceptance bar is <= 5%
  overhead here (speedup >= 0.95x);
* ``k64`` — chunks larger than the grid: one payload for the whole run,
  the floor of the durability cost.

Every mode must produce the bit-identical histogram (asserted before any
time is reported).  Checkpointed shots write into a **fresh** temporary
store each time — reusing a store would let resume replay finished
chunks and time a no-op.  Modes are interleaved round-robin per repeat
round, best round per mode, same as the other suites.  Run as a script
to produce ``BENCH_checkpoint.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_checkpoint.py

or the CI-sized subset::

    PYTHONPATH=src python -m pytest benchmarks -m bench_smoke -q
"""

from __future__ import annotations

import json
import math
import pathlib
import shutil
import tempfile
import time

import numpy as np
import pytest

from repro import apps
from repro.core.checkpoint import CheckpointConfig, run_checkpointed
from repro.core.kernels import make_kernel
from repro.gpusim import Device, TITAN_X

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_checkpoint.json"

SDH_BINS = 256
BLOCK = 256
SIZES = (4096, 8192)

#: (row name, checkpoint_every) — None = no checkpointing at all
MODES = (
    ("no-checkpoint", None),
    ("k1", 1),
    ("k8", 8),
    ("k64", 64),
)


def _points(n: int) -> np.ndarray:
    rng = np.random.default_rng(20160808)
    return rng.uniform(0.0, 10.0, size=(n, 3))


def _problem_kernel():
    problem = apps.sdh.make_problem(SDH_BINS, 10.0 * math.sqrt(3.0), dims=3)
    return problem, make_kernel(
        problem, "register-roc", "privatized-shm", block_size=BLOCK
    )


def _time_once(problem, kernel, points, every):
    if every is None:
        device = Device(TITAN_X)
        t0 = time.perf_counter()
        result, _ = kernel.execute(device, points)
        return time.perf_counter() - t0, result
    store = tempfile.mkdtemp(prefix="bench-ckpt-")
    try:
        t0 = time.perf_counter()
        result, _, _, _ = run_checkpointed(
            problem, points, kernel,
            config=CheckpointConfig(store, every=every),
        )
        return time.perf_counter() - t0, result
    finally:
        shutil.rmtree(store, ignore_errors=True)


def run_suite(sizes=SIZES, repeats: int = 3):
    """Time every granularity at every size; BENCH_checkpoint.json rows."""
    rows = []
    for n in sizes:
        points = _points(n)
        problem, kernel = _problem_kernel()
        best = {name: math.inf for name, _ in MODES}
        baseline_hist = None
        for _ in range(repeats):
            for name, every in MODES:
                seconds, hist = _time_once(problem, kernel, points, every)
                best[name] = min(best[name], seconds)
                if baseline_hist is None:
                    baseline_hist = hist
                else:
                    np.testing.assert_array_equal(baseline_hist, hist)
        baseline_seconds = best["no-checkpoint"]
        for name, _ in MODES:
            rows.append({
                "bench": name,
                "n": n,
                "seconds": round(best[name], 6),
                "speedup": round(baseline_seconds / best[name], 3),
            })
    return rows


def main() -> None:
    rows = run_suite()
    OUT_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    width = max(len(r["bench"]) for r in rows)
    for r in rows:
        print(
            f"N={r['n']:>6}  {r['bench']:<{width}}  "
            f"{r['seconds']:>9.4f}s  {r['speedup']:>6.2f}x"
        )
    print(f"wrote {OUT_PATH}")


# -- CI smoke subset -----------------------------------------------------------

@pytest.mark.bench_smoke
def test_checkpoint_bench_smoke(save_artifact):
    """Quick cross-check at N=4096: every granularity agrees bit-for-bit
    and the default chunking clears the <=5% overhead acceptance bar."""
    # three interleaved rounds: at repeats=2 a single noisy no-checkpoint
    # round can push the k8 ratio past the 5% envelope on a busy runner
    rows = run_suite(sizes=(4096,), repeats=3)
    by_mode = {r["bench"]: r for r in rows}
    assert set(by_mode) == {m[0] for m in MODES}
    # run_suite already asserted bit-identity; the durability tax at the
    # default granularity must stay within the acceptance envelope
    assert by_mode["k8"]["speedup"] >= 0.95
    assert by_mode["k64"]["speedup"] >= by_mode["k1"]["speedup"] * 0.8
    save_artifact(
        "bench_checkpoint_smoke",
        json.dumps(rows, indent=2, sort_keys=True),
    )


if __name__ == "__main__":
    main()
