"""Cell-list benchmark: uniform-grid engine vs the full tile engine.

Times the functional simulator's host wall time on cutoff-bounded RDF
(the cell list's flagship case) with the grid on and off:

* ``rdf-uniform``   — uniform points at a fixed density of ~4 per cell
  (the box grows with n), the regime the O(n·density) claim is about;
* ``rdf-clustered`` — Gaussian clusters in the same box: occupancy is
  skewed, but non-adjacent cluster pairs skip wholesale;
* ``rdf-dense``     — the honest control: the cutoff spans a large
  fraction of a small box, the grid proves little and must cost ~nothing
  (the ``auto`` heuristic would decline this regime — ``force`` is used
  here precisely to measure the overhead it protects against).

The tile engine touches all N(N-1)/2 pairs, so it is *measured* only up
to ``TILE_MEASURE_MAX`` points and extrapolated quadratically beyond
(``tile_measured: false`` rows carry the reference size the extrapolation
is anchored to).  Wherever the tile engine is actually run, the cell
result is checked bit-identical against it before a time is reported.

Run as a script to produce ``BENCH_cells.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_cells.py

or run the ``bench_smoke`` subset in CI::

    PYTHONPATH=src python -m pytest benchmarks -m bench_smoke -q
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import numpy as np
import pytest

from repro import apps
from repro.core.cells import cell_stats
from repro.core.kernels import make_kernel
from repro.data import gaussian_clusters, uniform_points
from repro.gpusim import Device, TITAN_X

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_cells.json"

BLOCK = 256
SIZES = (20_000, 100_000, 1_000_000)
#: largest size the all-pairs tile engine is actually run at; beyond it
#: the control is extrapolated as seconds * (n / ref_n)^2
TILE_MEASURE_MAX = 20_000
CUTOFF = 1.0
BINS = 64
DENSITY = 4.0  # points per cell in the uniform/clustered scenarios


def _box_for_density(n: int, density: float = DENSITY) -> float:
    """Box side putting ``density`` points in each cutoff-wide cell."""
    return CUTOFF * (n / density) ** (1.0 / 3.0)


def _uniform(n: int) -> np.ndarray:
    return uniform_points(n, dims=3, box=_box_for_density(n), seed=2016)


def _clustered(n: int) -> np.ndarray:
    return gaussian_clusters(
        n, dims=3, n_clusters=32, box=_box_for_density(n),
        spread=2.5 * CUTOFF, seed=2016,
    )


def _dense(n: int) -> np.ndarray:
    # 2 cells per axis: every cell pair is adjacent, nothing can skip
    return uniform_points(n, dims=3, box=2.0 * CUTOFF, seed=2016)


#: (row name, points factory, size cap) — the dense control examines
#: ~every pair by construction, so sweeping it to 1e6 would just re-run
#: the quadratic tile workload; its overhead question is answered at the
#: smallest size
SCENARIOS = (
    ("rdf-uniform", _uniform, max(SIZES)),
    ("rdf-clustered", _clustered, max(SIZES)),
    ("rdf-dense", _dense, min(SIZES)),
)


def _problem():
    # RDF's underlying SDH: histogram range == cell cutoff, so every
    # beyond-cutoff pair clamps into the (one) top bucket
    return apps.sdh.make_problem(BINS, CUTOFF, cell_cutoff=CUTOFF)


def _time_kernel(kernel, points: np.ndarray, repeats: int):
    best = math.inf
    result = None
    for _ in range(repeats):
        device = Device(TITAN_X)
        t0 = time.perf_counter()
        result, _ = kernel.execute(device, points)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_suite(sizes=SIZES, repeats: int = 2,
              tile_measure_max: int = TILE_MEASURE_MAX):
    """Time cell vs tile engine per scenario; BENCH_cells.json rows."""
    problem = _problem()
    rows = []
    for bench, points_fn, size_cap in SCENARIOS:
        tile_ref = None  # (n, seconds) anchor for extrapolation
        for n in sizes:
            if n > size_cap:
                continue
            points = points_fn(n)
            stats = cell_stats(points, BLOCK, problem)
            celled = make_kernel(
                problem, "register-roc", "privatized-shm",
                block_size=BLOCK, cells=True,
            )
            cell_s, cell_res = _time_kernel(celled, points, repeats)
            if n <= tile_measure_max:
                base = make_kernel(
                    problem, "register-roc", "privatized-shm",
                    block_size=BLOCK,
                )
                tile_s, tile_res = _time_kernel(base, points, repeats)
                np.testing.assert_array_equal(tile_res, cell_res)
                tile_ref = (n, tile_s)
                measured = True
            else:
                if tile_ref is None:
                    raise RuntimeError(
                        "no measured tile anchor below "
                        f"{tile_measure_max}; add a smaller size"
                    )
                ref_n, ref_s = tile_ref
                tile_s = ref_s * (n / ref_n) ** 2
                measured = False
            rows.append({
                "bench": bench,
                "n": n,
                "cells_seconds": round(cell_s, 6),
                "tile_seconds": round(tile_s, 6),
                "tile_measured": measured,
                "tile_ref_n": None if measured else tile_ref[0],
                "speedup": round(tile_s / cell_s, 3),
                "examined_fraction": round(stats.examined_fraction, 4),
                "density": round(
                    len(points) / max(stats.cells_occupied, 1), 2
                ),
            })
    return rows


def main() -> None:
    rows = run_suite()
    OUT_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    width = max(len(r["bench"]) for r in rows)
    for r in rows:
        tag = "" if r["tile_measured"] else " (extrapolated)"
        print(
            f"N={r['n']:>8}  {r['bench']:<{width}}  "
            f"tile {r['tile_seconds']:>9.3f}s{tag}  "
            f"cells {r['cells_seconds']:>8.3f}s  "
            f"{r['speedup']:>7.2f}x  "
            f"({r['examined_fraction']:.1%} of pairs examined)"
        )
    print(f"wrote {OUT_PATH}")


# -- CI smoke subset ----------------------------------------------------------

@pytest.mark.bench_smoke
def test_cells_bench_smoke(save_artifact):
    """Quick cell-vs-tile cross-check at N=8192: results identical, the
    sparse scenarios skip most pairs and actually speed up, the dense
    control stays within a sane overhead envelope."""
    rows = run_suite(sizes=(8192,), repeats=1)
    by_bench = {r["bench"]: r for r in rows}
    assert set(by_bench) == {s[0] for s in SCENARIOS}
    for name in ("rdf-uniform", "rdf-clustered"):
        assert by_bench[name]["examined_fraction"] < 0.5
        # acceptance bar is 5x at n >= 1e5; smoke keeps a CI-safe margin
        assert by_bench[name]["speedup"] > 1.3
    assert by_bench["rdf-dense"]["examined_fraction"] > 0.9
    assert by_bench["rdf-dense"]["speedup"] > 0.7
    save_artifact("bench_cells_smoke", json.dumps(rows, indent=2, sort_keys=True))


@pytest.mark.bench_smoke
def test_cells_bench_regression_guard():
    """The committed artifact must keep the O(n·density) win: uniform RDF
    at n >= 1e5 and density <= 4 must hold >= 5x over the tile control,
    and no scenario may fall below the 1.0x floor at full scale."""
    if not OUT_PATH.exists():
        pytest.skip("BENCH_cells.json not generated on this checkout")
    rows = json.loads(OUT_PATH.read_text())
    for row in rows:
        if (row["bench"] == "rdf-uniform" and row["n"] >= 100_000
                and row["density"] <= 4.0):
            assert row["speedup"] >= 5.0, (
                f"rdf-uniform at N={row['n']} regressed to "
                f"{row['speedup']}x (< 5x floor)"
            )
        if row["n"] >= SIZES[-1]:
            assert row["speedup"] >= 1.0, (
                f"{row['bench']} at N={row['n']} fell below the "
                f"1.0x full-scale floor ({row['speedup']}x)"
            )


if __name__ == "__main__":
    main()
