"""Fig. 7 — intra-block load balancing (cyclic schedule vs plain).

Paper claims reproduced: timing only the intra-block pass of the
Register-SHM SDH kernel, the cyclic schedule is 12-13% faster, flat in N.
"""

import numpy as np
import pytest

from repro.bench import fig7_load_balance
from repro.bench.figures import SDH_BLOCK, _sdh_problem
from repro.core import make_kernel
from repro.gpusim import intra_block_divergence_gain


@pytest.mark.benchmark(group="fig7")
def test_fig7(benchmark, save_artifact):
    fig = benchmark(fig7_load_balance)
    plain = np.array(fig.series["Register-SHM"].values)
    lb = np.array(fig.series["Register-SHM-LB"].values)
    gains = plain / lb
    lines = [fig.render(precision=5)]
    lines.append(
        f"intra-block speedup: {gains.min():.3f}-{gains.max():.3f} "
        f"(paper: 1.12-1.13)"
    )
    save_artifact("fig7_load_balance", "\n".join(lines))
    assert (gains > 1.10).all() and (gains < 1.14).all()


@pytest.mark.benchmark(group="fig7")
def test_fig7_gain_matches_divergence_model(benchmark):
    """The measured gain equals the pure warp-divergence prediction."""
    problem = _sdh_problem()
    plain = make_kernel(
        problem, "register-shm", "privatized-shm", block_size=SDH_BLOCK
    )
    lb = make_kernel(
        problem, "register-shm", "privatized-shm", block_size=SDH_BLOCK,
        load_balanced=True,
    )

    def measure():
        return (
            plain.simulate_intra(1_228_800).seconds
            / lb.simulate_intra(1_228_800).seconds
        )

    gain = benchmark(measure)
    assert gain == pytest.approx(intra_block_divergence_gain(SDH_BLOCK), rel=0.01)
