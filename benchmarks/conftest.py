"""Benchmark-suite helpers.

Every benchmark regenerates one of the paper's tables/figures.  The
rendered artifact is printed (visible with ``pytest -s``) and written to
``benchmarks/results/`` so EXPERIMENTS.md can reference concrete runs.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def save_artifact():
    RESULTS_DIR.mkdir(exist_ok=True)

    def _save(name: str, text: str) -> None:
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return _save
