"""Fig. 4 — SDH: GPU kernel line-up vs the multi-core CPU baseline.

Paper claims reproduced: privatized-output kernels ~an order of magnitude
over direct global atomics; Reg-ROC-Out ~11x Register-SHM and ~50x the
CPU; even the least-optimized GPU kernel beats the CPU ~3.5x.
"""

import numpy as np
import pytest

from repro.bench import PAPER_SIZES, SDH_BINS, SDH_BLOCK, fig4_sdh_kernels
from repro.bench.figures import _sdh_problem
from repro.core import PAPER_SDH, make_kernel
from repro.cpusim import CpuTwoBodyRunner


@pytest.mark.benchmark(group="fig4")
@pytest.mark.parametrize("display,inp,out", PAPER_SDH)
def test_fig4_kernel_simulation(benchmark, display, inp, out):
    problem = _sdh_problem(SDH_BINS)
    kernel = make_kernel(problem, inp, out, block_size=SDH_BLOCK, name=display)
    report = benchmark(kernel.simulate, 1_048_576)
    benchmark.extra_info["simulated_seconds"] = report.seconds


@pytest.mark.benchmark(group="fig4")
def test_fig4_cpu_baseline(benchmark):
    problem = _sdh_problem(SDH_BINS)
    runner = CpuTwoBodyRunner(problem)
    info = benchmark(runner.simulate, 1_048_576)
    benchmark.extra_info["simulated_seconds"] = info.seconds
    benchmark.extra_info["imbalance"] = info.imbalance


@pytest.mark.benchmark(group="fig4")
def test_fig4_full_series(benchmark, save_artifact):
    fig = benchmark(fig4_sdh_kernels, PAPER_SIZES)
    cpu = np.array(fig.series["CPU"].values)
    best = np.array(fig.series["Reg-ROC-Out"].values)
    worst = np.array(fig.series["Register-SHM"].values)
    lines = [fig.render()]
    lines.append(
        f"speedup over CPU: Reg-ROC-Out avg {np.mean(cpu / best):.1f}x "
        f"(paper ~50x); Register-SHM avg {np.mean(cpu / worst):.1f}x "
        f"(paper ~3.5x); privatization gain {np.mean(worst / best):.1f}x "
        f"(paper ~11x)"
    )
    save_artifact("fig4_sdh_kernels", "\n".join(lines))
    assert 35 < np.mean(cpu / best) < 70
    assert 2.5 < np.mean(cpu / worst) < 5.0
