"""Tracing overhead benchmark: the NullTracer hot-path contract.

The observability layer promises that an *untraced* run (the default —
``Device.tracer`` is the shared :data:`~repro.obs.tracer.NULL_TRACER`)
pays essentially nothing for the span hooks threaded through the engine:
the target is <2% wall-time overhead versus a build with no hooks at all,
which in practice means "within measurement noise of itself".

Three configurations are timed on the engine benchmark's flagship SDH
kernel (Register-ROC x Privatized-SHM, B=256):

* ``untraced``  — plain ``run(...)``: NullTracer, no trace requested;
* ``traced``    — ``run(..., trace=True)``: live spans + layout + export
  to an in-memory Chrome trace (the price of turning tracing ON);
* ``traced+io`` — ``run(..., trace=path)``: as above plus the JSON write.

Since the no-hook baseline is not present in the same build, the smoke
test pins the contract differently: interleaved untraced pairs must agree
with each other within noise, and the *reference* numbers recorded in
``benchmarks/results/bench_trace_overhead.txt`` document the measured
untraced-vs-HEAD-without-hooks comparison (see that file).  Run as a
script to regenerate the result table::

    PYTHONPATH=src python benchmarks/bench_trace_overhead.py

or the CI smoke subset::

    PYTHONPATH=src python -m pytest benchmarks/bench_trace_overhead.py -m bench_smoke -q
"""

from __future__ import annotations

import json
import math
import pathlib
import tempfile
import time

import numpy as np
import pytest

from repro import apps
from repro.core.runner import run

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

SDH_BINS = 256
N = 2048
REPEATS = 5


def _points(n: int = N) -> np.ndarray:
    rng = np.random.default_rng(20160808)
    return rng.uniform(0.0, 10.0, size=(n, 3))


def _problem():
    return apps.sdh.make_problem(SDH_BINS, 10.0 * math.sqrt(3.0), dims=3)


def _time_once(points, trace) -> float:
    problem = _problem()
    t0 = time.perf_counter()
    run(problem, points, trace=trace)
    return time.perf_counter() - t0


def run_suite(repeats: int = REPEATS, n: int = N):
    """Best-of-``repeats`` per mode, interleaved so slow drift (thermal,
    page cache) hits every mode equally; returns rows for the table."""
    points = _points(n)
    with tempfile.TemporaryDirectory() as td:
        trace_path = str(pathlib.Path(td) / "trace.json")
        modes = (
            ("untraced", None),
            ("traced", True),
            ("traced+io", trace_path),
        )
        best = {name: math.inf for name, _ in modes}
        for name, trace in modes:  # warm-up round, not timed
            _time_once(points, trace)
        for _ in range(repeats):
            for name, trace in modes:
                best[name] = min(best[name], _time_once(points, trace))
    base = best["untraced"]
    return [
        {
            "bench": name,
            "n": n,
            "seconds": round(best[name], 6),
            "overhead": round(best[name] / base - 1.0, 4),
        }
        for name, _ in modes
    ]


def render(rows) -> str:
    lines = [f"{'mode':<12} {'seconds':>10} {'overhead':>10}"]
    for r in rows:
        lines.append(
            f"{r['bench']:<12} {r['seconds']:>10.4f} {r['overhead']:>9.1%}"
        )
    return "\n".join(lines)


def main() -> None:
    rows = run_suite()
    print(render(rows))


# -- CI smoke subset -----------------------------------------------------------

@pytest.mark.bench_smoke
def test_trace_overhead_smoke(save_artifact):
    """Untraced runs are self-consistent and live tracing stays bounded.

    The <2% NullTracer contract is against a hook-free build and cannot be
    re-measured here; what CI pins is (a) two interleaved untraced runs
    agree within generous noise and (b) full tracing costs less than 60%
    even with export — i.e. nobody accidentally made spans mandatory.
    """
    rows = run_suite(repeats=2)
    by_mode = {r["bench"]: r for r in rows}
    points = _points()
    a = min(_time_once(points, None) for _ in range(2))
    b = min(_time_once(points, None) for _ in range(2))
    assert abs(a / b - 1.0) < 0.5  # noise bound, not a perf assertion
    assert by_mode["traced+io"]["overhead"] < 0.6
    save_artifact(
        "bench_trace_overhead_smoke",
        json.dumps(rows, indent=2, sort_keys=True),
    )


if __name__ == "__main__":
    main()
