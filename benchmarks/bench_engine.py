"""Engine benchmark: sequential vs batched vs parallel simulator launch.

Times the functional simulator itself (host wall time, not simulated GPU
time) on the paper's flagship SDH kernel (Register-ROC x Privatized-SHM,
B=256) across the three engine modes:

* ``sequential`` — workers=1, batch_tiles=1: the seed's tile-at-a-time loop;
* ``batched``    — workers=1, batch auto: R-tiles stacked per pair_fn call;
* ``parallel``   — workers=4, batch auto: block-parallel launch on top.

Every mode's histogram is checked against the sequential result before a
time is reported.  Run as a script to produce ``BENCH_engine.json`` at the
repo root::

    PYTHONPATH=src python benchmarks/bench_engine.py

or run the ``bench_smoke`` subset in CI::

    PYTHONPATH=src python -m pytest benchmarks -m bench_smoke -q
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import numpy as np
import pytest

from repro import apps
from repro.core.kernels import make_kernel
from repro.gpusim import Device, TITAN_X

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_engine.json"

SDH_BINS = 256
BLOCK = 256
SIZES = (2048, 4096, 8192)
WORKERS = 4

#: (row name, workers, batch_tiles) — batch None = engine auto
MODES = (
    ("sequential", 1, 1),
    ("batched", 1, None),
    ("parallel", WORKERS, None),
)


def _points(n: int) -> np.ndarray:
    rng = np.random.default_rng(20160808)
    return rng.uniform(0.0, 10.0, size=(n, 3))


def _kernel():
    problem = apps.sdh.make_problem(SDH_BINS, 10.0 * math.sqrt(3.0), dims=3)
    return make_kernel(
        problem, "register-roc", "privatized-shm", block_size=BLOCK
    )


def _time_mode(points: np.ndarray, workers: int, batch, repeats: int = 1):
    """Best-of-``repeats`` wall time plus the histogram for verification."""
    kernel = _kernel()
    best = math.inf
    result = None
    for _ in range(repeats):
        device = Device(TITAN_X)
        t0 = time.perf_counter()
        result, _ = kernel.execute(
            device, points, workers=workers, batch_tiles=batch
        )
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_suite(sizes=SIZES, repeats: int = 4):
    """Time every mode at every size; returns the BENCH_engine.json rows."""
    rows = []
    for n in sizes:
        points = _points(n)
        baseline_seconds = None
        baseline_hist = None
        for bench, workers, batch in MODES:
            seconds, hist = _time_mode(points, workers, batch, repeats)
            if baseline_seconds is None:
                baseline_seconds, baseline_hist = seconds, hist
            else:
                np.testing.assert_array_equal(baseline_hist, hist)
            rows.append({
                "bench": bench,
                "n": n,
                "seconds": round(seconds, 6),
                "speedup": round(baseline_seconds / seconds, 3),
            })
    return rows


def main() -> None:
    rows = run_suite()
    OUT_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    width = max(len(r["bench"]) for r in rows)
    for r in rows:
        print(
            f"N={r['n']:>6}  {r['bench']:<{width}}  "
            f"{r['seconds']:>9.4f}s  {r['speedup']:>6.2f}x"
        )
    print(f"wrote {OUT_PATH}")


# -- CI smoke subset -----------------------------------------------------------

@pytest.mark.bench_smoke
def test_engine_bench_smoke(save_artifact):
    """Quick cross-check at N=2048: all modes agree, batching is faster."""
    rows = run_suite(sizes=(2048,), repeats=1)
    by_mode = {r["bench"]: r for r in rows}
    assert set(by_mode) == {m[0] for m in MODES}
    # run_suite already asserted the histograms are identical; here we pin
    # the perf contract at smoke scale (generous bound: CI machines vary)
    assert by_mode["batched"]["speedup"] > 1.2
    save_artifact(
        "bench_engine_smoke",
        json.dumps(rows, indent=2, sort_keys=True),
    )


if __name__ == "__main__":
    main()
