"""Ablation benches for the design choices DESIGN.md calls out.

Each test isolates one technique the paper advocates and quantifies what
turning it off costs, at the paper's scale:

* output privatization (Section IV-C) — the 10x headline;
* ROC-vs-SHM tile placement under a shared-memory-hungry output;
* block size (the paper picks 1024 for 2-PCF via its model [23]);
* CPU scheduler and affinity choices (Section IV-D);
* planner vs fixed kernel (the Section V framework vision).
"""

import math

import numpy as np
import pytest

from repro.apps import pcf, sdh
from repro.core import make_kernel, plan_kernel
from repro.cpusim import CpuTwoBodyRunner

MAXD = 10.0 * math.sqrt(3.0)
N = 1_048_576


def sdh_problem(bins=2500):
    return sdh.make_problem(bins, MAXD, box=10.0)


@pytest.mark.benchmark(group="ablation")
def test_ablation_output_privatization(benchmark, save_artifact):
    problem = sdh_problem()
    direct = make_kernel(problem, "register-shm", "global-atomic", block_size=256)
    private = make_kernel(problem, "register-shm", "privatized-shm", block_size=256)

    def ratio():
        return direct.simulate(N).seconds / private.simulate(N).seconds

    r = benchmark(ratio)
    save_artifact(
        "ablation_privatization",
        f"output privatization gain at N={N}: {r:.1f}x (paper: ~10x)",
    )
    assert 7 < r < 18


@pytest.mark.benchmark(group="ablation")
def test_ablation_tile_placement_vs_histogram_size(benchmark, save_artifact):
    """ROC tiling wins exactly when the output claims shared memory."""

    def gains():
        out = []
        for bins in (500, 2500, 5000):
            problem = sdh_problem(bins)
            shm = make_kernel(problem, "register-shm", "privatized-shm", 256)
            roc = make_kernel(problem, "register-roc", "privatized-shm", 256)
            out.append((bins, shm.simulate(N).seconds / roc.simulate(N).seconds))
        return out

    rows = benchmark(gains)
    text = "\n".join(
        f"bins={b}: Reg-SHM-Out / Reg-ROC-Out = {g:.3f}" for b, g in rows
    )
    save_artifact("ablation_tile_placement", text)
    # at the paper's 2500-bucket configuration ROC tiling wins, because
    # freeing the tile's shared memory buys a whole extra resident block;
    # the advantage is NOT monotone in bucket count — when both variants
    # round to the same blocks-per-SM (e.g. 5000 buckets) the cheaper
    # shared-memory reads win the pipeline race instead
    gains_by_bins = dict(rows)
    assert gains_by_bins[2500] > 1.0
    assert gains_by_bins[500] > 1.0


@pytest.mark.benchmark(group="ablation")
def test_ablation_block_size(benchmark, save_artifact):
    problem = pcf.make_problem(1.0)

    def sweep():
        return {
            b: make_kernel(problem, "register-shm", "register", b).simulate(N).seconds
            for b in (32, 64, 128, 256, 512, 1024)
        }

    times = benchmark(sweep)
    save_artifact(
        "ablation_block_size",
        "\n".join(f"B={b}: {t:.3f}s" for b, t in times.items()),
    )
    # B=32 cannot fill an SM (32-blocks-per-SM cap x 32 threads = 50%
    # occupancy) and pays ~1.7x; every B >= 64 keeps full occupancy and
    # times stay flat — consistent with the paper's choice of large blocks
    flat = np.array([t for b, t in times.items() if b >= 64])
    assert flat.max() / flat.min() < 1.1
    assert times[32] > 1.4 * flat.min()


@pytest.mark.benchmark(group="ablation")
def test_ablation_cpu_scheduler(benchmark, save_artifact):
    problem = sdh_problem()

    def sweep():
        return {
            s: CpuTwoBodyRunner(problem, scheduler=s).simulate(N).seconds
            for s in ("static", "dynamic", "guided")
        }

    times = benchmark(sweep)
    save_artifact(
        "ablation_cpu_scheduler",
        "\n".join(f"{s}: {t:.1f}s" for s, t in times.items()),
    )
    # the paper picked guided; static's triangular imbalance costs ~2x
    assert times["static"] > 1.5 * times["guided"]
    assert times["dynamic"] == pytest.approx(times["guided"], rel=0.15)


@pytest.mark.benchmark(group="ablation")
def test_ablation_cpu_affinity(benchmark, save_artifact):
    problem = sdh_problem()

    def sweep():
        return {
            a: CpuTwoBodyRunner(problem, n_threads=8, affinity=a).simulate(N).seconds
            for a in ("compact", "scatter", "balanced")
        }

    times = benchmark(sweep)
    save_artifact(
        "ablation_cpu_affinity",
        "\n".join(f"{a}: {t:.1f}s" for a, t in times.items()),
    )
    assert times["compact"] > 1.2 * times["balanced"]


@pytest.mark.benchmark(group="ablation")
def test_ablation_planner_vs_fixed(benchmark, save_artifact):
    """The framework vision: the planner must never lose badly to the
    fixed paper kernels, and must beat naive compositions soundly."""
    problem = sdh_problem()

    def compare():
        plan = plan_kernel(problem, N, block_sizes=(128, 256, 512))
        fixed = make_kernel(problem, "register-roc", "privatized-shm", 256)
        naive = make_kernel(problem, "naive", "global-atomic", 256)
        return (
            plan.chosen.predicted_seconds,
            fixed.simulate(N).seconds,
            naive.simulate(N).seconds,
        )

    planned, fixed, naive = benchmark(compare)
    save_artifact(
        "ablation_planner",
        f"planner: {planned:.2f}s  paper-fixed: {fixed:.2f}s  naive: {naive:.2f}s",
    )
    assert planned <= fixed * 1.02
    assert planned < naive / 8
