"""Fig. 2 — 2-PCF pairwise-stage kernels: runtime + speedup over Naive.

Paper claims reproduced: quadratic growth; Register-SHM best (avg 5.5x,
max 6x over Naive); SHM-SHM 5.3x; Register-ROC 4.7x.
"""

import numpy as np
import pytest

from repro.apps import pcf
from repro.bench import PAPER_SIZES, fig2_pcf_kernels
from repro.core import PAPER_PCF, make_kernel


@pytest.mark.benchmark(group="fig2")
@pytest.mark.parametrize("display,inp,out", PAPER_PCF)
def test_fig2_kernel_simulation(benchmark, display, inp, out):
    """Per-kernel prediction at N=1M (benchmark times the model itself)."""
    problem = pcf.make_problem(1.0)
    kernel = make_kernel(problem, inp, out, block_size=1024, name=display)
    report = benchmark(kernel.simulate, 1_048_576)
    benchmark.extra_info["simulated_seconds"] = report.seconds
    benchmark.extra_info["arith_utilization"] = report.utilization["arith"]


@pytest.mark.benchmark(group="fig2")
def test_fig2_full_series(benchmark, save_artifact):
    fig = benchmark(fig2_pcf_kernels, PAPER_SIZES)
    speedups = fig.speedup_over("Naive")
    lines = [fig.render()]
    lines.append("speedup over Naive (paper: 5.5x / 5.3x / 4.7x):")
    for label in ("Register-SHM", "SHM-SHM", "Register-ROC"):
        lines.append(f"  {label}: avg {np.mean(speedups[label]):.2f}x "
                     f"max {np.max(speedups[label]):.2f}x")
    save_artifact("fig2_pcf_kernels", "\n".join(lines))
    assert np.mean(speedups["Register-SHM"]) > np.mean(speedups["SHM-SHM"])
    assert np.mean(speedups["SHM-SHM"]) > np.mean(speedups["Register-ROC"]) > 1
