"""Pruning benchmark: bounds-pruned vs unpruned batched engine.

Times the functional simulator's host wall time on the two flagship
statistics with bounds pruning on and off:

* ``pcf-clustered`` — 2-PCF at a realistic correlation radius on
  clustered data: far tiles *skip* (zero weight beyond the radius);
* ``sdh-clustered`` — SDH with a short max distance on the same data:
  beyond-max tiles *bulk-resolve* into the clamped top bucket;
* ``sdh-uniform``   — the honest control: dense uniform data where the
  bounds prove almost nothing, so pruning must cost ~nothing.

Every pruned result is checked bit-identical against its unpruned twin
before a time is reported.  Run as a script to produce
``BENCH_pruning.json`` at the repo root::

    PYTHONPATH=src python benchmarks/bench_pruning.py

or run the ``bench_smoke`` subset in CI::

    PYTHONPATH=src python -m pytest benchmarks -m bench_smoke -q
"""

from __future__ import annotations

import json
import math
import pathlib
import time

import numpy as np
import pytest

from repro import apps
from repro.core.bounds import prune_stats, spatial_sort
from repro.core.kernels import make_kernel
from repro.data import gaussian_clusters, uniform_points
from repro.gpusim import Device, TITAN_X

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT_PATH = REPO_ROOT / "BENCH_pruning.json"
ENGINE_JSON = REPO_ROOT / "BENCH_engine.json"

BLOCK = 64
SIZES = (2048, 4096)
BOX = 100.0
PCF_RADIUS = 2.5
SDH_BINS = 64
SDH_MAXD = 12.0


def _clustered(n: int) -> np.ndarray:
    pts = gaussian_clusters(
        n, dims=3, n_clusters=12, box=BOX, spread=0.6, seed=2016
    )
    return pts[spatial_sort(pts)]


def _uniform(n: int) -> np.ndarray:
    return uniform_points(n, dims=3, box=BOX, seed=2016)


#: (row name, points factory, problem factory, input, output)
SCENARIOS = (
    (
        "pcf-clustered",
        _clustered,
        lambda: apps.pcf.make_problem(PCF_RADIUS),
        "register-shm",
        "register",
    ),
    (
        "sdh-clustered",
        _clustered,
        lambda: apps.sdh.make_problem(SDH_BINS, SDH_MAXD),
        "register-roc",
        "privatized-shm",
    ),
    (
        "sdh-uniform",
        _uniform,
        lambda: apps.sdh.make_problem(SDH_BINS, BOX * math.sqrt(3.0)),
        "register-roc",
        "privatized-shm",
    ),
)


def _time_kernel(kernel, points: np.ndarray, repeats: int):
    best = math.inf
    result = None
    for _ in range(repeats):
        device = Device(TITAN_X)
        t0 = time.perf_counter()
        result, _ = kernel.execute(device, points)
        best = min(best, time.perf_counter() - t0)
    return best, result


def run_suite(sizes=SIZES, repeats: int = 3):
    """Time pruned vs unpruned per scenario; BENCH_pruning.json rows."""
    rows = []
    for bench, points_fn, problem_fn, inp, out in SCENARIOS:
        problem = problem_fn()
        for n in sizes:
            points = points_fn(n)
            stats = prune_stats(points, BLOCK, problem)
            base = make_kernel(problem, inp, out, block_size=BLOCK)
            pruned = make_kernel(
                problem, inp, out, block_size=BLOCK, prune=True
            )
            base_s, base_res = _time_kernel(base, points, repeats)
            prune_s, prune_res = _time_kernel(pruned, points, repeats)
            np.testing.assert_array_equal(base_res, prune_res)
            rows.append({
                "bench": bench,
                "n": n,
                "unpruned_seconds": round(base_s, 6),
                "pruned_seconds": round(prune_s, 6),
                "speedup": round(base_s / prune_s, 3),
                "prune_fraction": round(stats.prune_fraction, 4),
                "tiles_skipped": stats.tiles_skipped,
                "tiles_bulk": stats.tiles_bulk,
            })
    return rows


def main() -> None:
    rows = run_suite()
    OUT_PATH.write_text(json.dumps(rows, indent=2, sort_keys=True) + "\n")
    width = max(len(r["bench"]) for r in rows)
    for r in rows:
        print(
            f"N={r['n']:>6}  {r['bench']:<{width}}  "
            f"base {r['unpruned_seconds']:>8.4f}s  "
            f"pruned {r['pruned_seconds']:>8.4f}s  "
            f"{r['speedup']:>6.2f}x  "
            f"({r['prune_fraction']:.0%} of tiles pruned)"
        )
    print(f"wrote {OUT_PATH}")


# -- CI smoke subset -----------------------------------------------------------

@pytest.mark.bench_smoke
def test_pruning_bench_smoke(save_artifact):
    """Quick pruned-vs-unpruned cross-check at N=2048: results identical,
    clustered scenarios actually prune and actually speed up."""
    rows = run_suite(sizes=(2048,), repeats=1)
    by_bench = {r["bench"]: r for r in rows}
    assert set(by_bench) == {s[0] for s in SCENARIOS}
    for name in ("pcf-clustered", "sdh-clustered"):
        assert by_bench[name]["prune_fraction"] > 0.5
        # acceptance bar is 2x at full scale; smoke keeps a CI-safe margin
        assert by_bench[name]["speedup"] > 1.5
    save_artifact("bench_pruning_smoke", json.dumps(rows, indent=2, sort_keys=True))


@pytest.mark.bench_smoke
def test_engine_bench_regression_guard():
    """The engine-benchmark artifact must keep its batching/parallel win:
    a refactor that drags any recorded speedup below 1.5x is a perf
    regression, not a cleanup."""
    if not ENGINE_JSON.exists():
        pytest.skip("BENCH_engine.json not generated on this checkout")
    rows = json.loads(ENGINE_JSON.read_text())
    for row in rows:
        if row["bench"] == "sequential":
            continue
        assert row["speedup"] >= 1.5, (
            f"{row['bench']} at N={row['n']} regressed to "
            f"{row['speedup']}x (< 1.5x floor)"
        )


if __name__ == "__main__":
    main()
