"""Real wall-clock micro-benchmarks of the functional simulator itself.

Not a paper figure: these track the *reproduction's* own performance —
pairs/second the block-vectorized functional path sustains, so regressions
in the simulator are caught by pytest-benchmark history.
"""

import math

import numpy as np
import pytest

from repro import apps
from repro.core import make_kernel
from repro.data import uniform_points
from repro.gpusim import Device

MAXD = 10.0 * math.sqrt(3.0)
N = 2048


@pytest.fixture(scope="module")
def pts():
    return uniform_points(N, dims=3, box=10.0, seed=42)


@pytest.mark.benchmark(group="functional")
@pytest.mark.parametrize("inp", ["naive", "register-shm", "register-roc", "shuffle"])
def test_functional_sdh_kernel(benchmark, pts, inp):
    problem = apps.sdh.make_problem(256, MAXD)
    kernel = make_kernel(problem, inp, "privatized-shm", block_size=256)

    def run():
        result, _ = kernel.execute(Device(), pts)
        return result

    result = benchmark(run)
    assert result.sum() == N * (N - 1) // 2
    benchmark.extra_info["pairs_per_second"] = (
        N * (N - 1) / 2 / benchmark.stats["mean"]
        if benchmark.stats
        else None
    )


@pytest.mark.benchmark(group="functional")
def test_functional_pcf_kernel(benchmark, pts):
    problem = apps.pcf.make_problem(1.0)
    kernel = make_kernel(problem, "register-shm", "register", block_size=256)
    result = benchmark(lambda: kernel.execute(Device(), pts)[0])
    assert result >= 0


@pytest.mark.benchmark(group="functional")
def test_functional_knn_kernel(benchmark, pts):
    result = benchmark(lambda: apps.knn.compute(pts[:1024], 8)[0])
    assert result.shape == (1024, 8)
