"""Ablation: SoA vs AoS input layout (Section IV-A's first decision).

"The input data is stored in the form of multiple arrays of
single-dimension values instead of using an array of structures ... This
will ensure coalesced memory access when loading the input data."

With AoS, a warp loading dimension ``d`` of 32 consecutive points touches
addresses strided by ``dims`` elements: the 32 requests span ``dims`` x
as many 32-byte sectors, multiplying the effective cost of every global
load (tile staging and naive per-pair reads alike).  We model that as a
``dims``-fold inflation of the global-pipeline costs and measure what the
paper's SoA choice is worth per kernel.
"""

import dataclasses
import math

import pytest

from repro.apps import sdh
from repro.core import PAPER_SDH, make_kernel
from repro.gpusim import DEFAULT_CALIBRATION, cycles_from_traffic, simulate_time
from repro.gpusim import TITAN_X

MAXD = 10.0 * math.sqrt(3.0)
N = 1_048_576


def aos_calibration(dims: int):
    """Global pipeline costs inflated by the AoS stride factor."""
    c = DEFAULT_CALIBRATION
    return dataclasses.replace(
        c,
        global_stream_issue=c.global_stream_issue * dims,
        global_issue=c.global_issue * dims,
    )


def simulate_layout(kernel, calib):
    cycles = kernel.pipeline_cycles(N, calib)
    occ = kernel.occupancy(TITAN_X)
    geom = kernel.geometry(N)
    extra = kernel.output.extra_seconds(geom, kernel.problem, TITAN_X, calib)
    return simulate_time(
        cycles, spec=TITAN_X, occupancy=occ.occupancy, calib=calib,
        extra_seconds=extra,
    ).seconds


@pytest.mark.benchmark(group="ablation")
def test_ablation_soa_vs_aos(benchmark, save_artifact):
    problem = sdh.make_problem(2500, MAXD, box=10.0)
    aos = aos_calibration(problem.dims)

    def sweep():
        rows = {}
        for display, inp, out in PAPER_SDH:
            if display == "Shuffle":
                continue
            kernel = make_kernel(problem, inp, out, 256, name=display)
            soa_t = simulate_layout(kernel, DEFAULT_CALIBRATION)
            aos_t = simulate_layout(kernel, aos)
            rows[display] = (soa_t, aos_t)
        return rows

    rows = benchmark(sweep)
    text = "\n".join(
        f"{k:14s} SoA {s:8.3f}s  AoS {a:8.3f}s  penalty {a / s:.2f}x"
        for k, (s, a) in rows.items()
    )
    save_artifact("ablation_soa_vs_aos", text)
    # SDH-Naive is atomic-bound, so AoS "only" costs ~1.5x there ...
    assert rows["Naive"][1] / rows["Naive"][0] > 1.4
    # ... but the read-bound 2-PCF Naive kernel pays nearly the full
    # dims-fold stride penalty
    from repro.apps import pcf

    pcf_naive = make_kernel(pcf.make_problem(1.0), "naive", "register", 1024)
    pcf_ratio = simulate_layout(pcf_naive, aos_calibration(3)) / simulate_layout(
        pcf_naive, DEFAULT_CALIBRATION
    )
    assert pcf_ratio > 2.0
    # cache-tiled kernels only pay on the (small) staging traffic
    assert rows["Reg-ROC-Out"][1] / rows["Reg-ROC-Out"][0] < 1.3
    # and the paper's ordering conclusions survive either layout
    assert rows["Reg-ROC-Out"][1] < rows["Reg-SHM-Out"][1] < rows["Naive-Out"][1]
