"""Benches for the beyond-the-paper extensions (its Section V agenda).

* tree-based SDH (Section II's advanced algorithm) vs the brute kernel;
* two-pass compaction vs atomic-ticket output for Type-III joins;
* multi-copy privatization (the paper's "data not shown" variant);
* multi-GPU scaling.
"""

import math

import numpy as np
import pytest

from repro import apps
from repro.algos import TreeSdh, TreeSdhStats
from repro.core import MultiGpuRunner, make_kernel
from repro.core.kernels import TwoPassJoinKernel
from repro.data import uniform_points

BOX = 10.0
MAXD = BOX * math.sqrt(3.0)


@pytest.mark.benchmark(group="extensions")
def test_tree_sdh_vs_brute_kernel(benchmark, save_artifact):
    """Work and simulated-GPU-time savings of node-pair resolution."""
    n, bins = 12_000, 8
    pts = uniform_points(n, 3, BOX, seed=11)
    tree = TreeSdh(bins, MAXD / bins, BOX)

    def run():
        stats = TreeSdhStats()
        tree.compute(pts, stats)
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    total = n * (n - 1) // 2
    tree_gpu = tree.simulate_gpu(stats)
    problem = apps.sdh.make_problem(bins, MAXD, box=BOX)
    brute_gpu = make_kernel(problem, "register-roc", "privatized-shm", 256)\
        .simulate(n).seconds
    save_artifact(
        "extension_tree_sdh",
        f"tree SDH at N={n}, {bins} buckets: resolved "
        f"{stats.resolved_fraction:.1%} of {total:,} pairs; work ratio "
        f"{stats.work / total:.3f} vs brute; simulated GPU time "
        f"{tree_gpu * 1e3:.2f} ms vs brute kernel {brute_gpu * 1e3:.2f} ms",
    )
    assert stats.work < total
    assert tree_gpu < brute_gpu


@pytest.mark.benchmark(group="extensions")
def test_two_pass_vs_ticket_join(benchmark, save_artifact):
    """Compaction vs global-atomic ticket across selectivities."""
    problem_lo = apps.join.make_problem(1.0, dims=1, selectivity=0.001)

    def compare():
        out = {}
        for sel in (0.001, 0.05, 0.3):
            import dataclasses

            problem = dataclasses.replace(
                problem_lo,
                output=dataclasses.replace(problem_lo.output, selectivity=sel),
            )
            ticket = make_kernel(
                problem, "register-shm", "global-direct", 256
            ).simulate(500_000).seconds
            twopass = TwoPassJoinKernel(
                problem, "register-shm", 256
            ).simulate(500_000).seconds
            out[sel] = (ticket, twopass)
        return out

    rows = benchmark(compare)
    text = "\n".join(
        f"selectivity={s}: ticket {t:.3f}s, two-pass {p:.3f}s"
        for s, (t, p) in rows.items()
    )
    save_artifact("extension_two_pass_join", text)
    # two identical pairwise passes: never better than ~2x the single-pass
    # compute, and the relative gap narrows as output volume grows
    for s, (ticket, twopass) in rows.items():
        assert twopass < 3 * ticket


@pytest.mark.benchmark(group="extensions")
def test_multicopy_privatization(benchmark, save_artifact):
    """The paper's 'data not shown': copies don't pay at 2500 buckets —
    but they DO pay for small, contended histograms."""

    def sweep():
        out = {}
        for bins in (64, 2500):
            problem = apps.sdh.make_problem(bins, MAXD, box=BOX)
            out[bins] = {
                c: make_kernel(
                    problem, "register-roc", "privatized-shm", 256,
                    output_kwargs={"copies_per_block": c},
                ).simulate(1_000_000).seconds
                for c in (1, 2, 4)
            }
        return out

    rows = benchmark(sweep)
    text = "\n".join(
        f"bins={b}: " + ", ".join(f"{c} copies {t:.2f}s" for c, t in r.items())
        for b, r in rows.items()
    )
    save_artifact("extension_multicopy", text)
    assert rows[2500][1] < rows[2500][2]  # paper's claim at its config
    assert rows[64][2] < rows[64][1]  # contention relief wins when small


@pytest.mark.benchmark(group="extensions")
def test_multigpu_scaling(benchmark, save_artifact):
    problem = apps.sdh.make_problem(2500, MAXD, box=BOX)
    kernel = make_kernel(problem, "register-roc", "privatized-shm", 256)

    def sweep():
        base = MultiGpuRunner(kernel, 1).simulate(2_000_000).seconds
        return {
            g: base / MultiGpuRunner(kernel, g).simulate(2_000_000).seconds
            for g in (1, 2, 4, 8)
        }

    speedups = benchmark(sweep)
    save_artifact(
        "extension_multigpu",
        "\n".join(f"{g} GPUs: {s:.2f}x" for g, s in speedups.items()),
    )
    assert speedups[2] > 1.8 and speedups[4] > 3.3 and speedups[8] > 5.5
