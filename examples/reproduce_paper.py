#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Prints the reproduced series/tables (Figs. 2, 4, 5, 7, 9; Tables II-IV)
with the paper's headline numbers alongside, and writes everything to
``examples/paper_outputs/``.  This is the one-command reproduction entry
point; the pytest benchmarks assert the same shapes piecewise.

Run:  python examples/reproduce_paper.py            (full, ~1 min)
      python examples/reproduce_paper.py --quick    (coarser grids)
"""

import argparse
import pathlib
import sys

import numpy as np

from repro import bench

OUT = pathlib.Path(__file__).parent / "paper_outputs"


def emit(name: str, text: str) -> None:
    OUT.mkdir(exist_ok=True)
    (OUT / f"{name}.txt").write_text(text + "\n")
    print(f"\n{'=' * 72}\n{text}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="coarser sweeps")
    args = parser.parse_args(argv)
    sizes = (204_800, 819_200) if args.quick else bench.PAPER_SIZES

    # Fig. 2 ---------------------------------------------------------------
    fig2 = bench.fig2_pcf_kernels(sizes=sizes)
    sp = fig2.speedup_over("Naive")
    lines = [fig2.render(), "", "speedups over Naive (avg / max; paper values):"]
    for label, paper in (("Register-SHM", "5.5 / 6"), ("SHM-SHM", "5.3 / 6"),
                         ("Register-ROC", "4.7 / 5")):
        lines.append(f"  {label:13s} {np.mean(sp[label]):.2f} / "
                     f"{np.max(sp[label]):.2f}   (paper {paper})")
    emit("fig2", "\n".join(lines))

    # Table II ---------------------------------------------------------------
    _, t2 = bench.table2_pcf_utilization()
    emit("table2", t2 + "\n(paper: Naive 15%/3%/76% L2; SHM-SHM 50%/7%/35% shm;"
         "\n Reg-SHM 52%/11%/35% shm; Reg-ROC 24%/10%/65% data cache)")

    # Fig. 4 ---------------------------------------------------------------
    fig4 = bench.fig4_sdh_kernels(sizes=sizes)
    cpu = np.array(fig4.series["CPU"].values)
    best = np.array(fig4.series["Reg-ROC-Out"].values)
    worst = np.array(fig4.series["Register-SHM"].values)
    emit(
        "fig4",
        fig4.render()
        + f"\n\nReg-ROC-Out over CPU : {np.mean(cpu / best):.1f}x (paper ~50x)"
        + f"\nRegister-SHM over CPU: {np.mean(cpu / worst):.1f}x (paper ~3.5x)"
        + f"\nprivatization gain   : {np.mean(worst / best):.1f}x (paper ~11x)",
    )

    # Tables III & IV ---------------------------------------------------------
    _, t3 = bench.table3_sdh_bandwidth()
    emit("table3", t3 + "\n(paper: Naive 0 shm; Naive-Out 1.66 TB/s shm; "
         "Reg-SHM-Out 2.86 TB/s shm;\n Reg-ROC-Out 2.59 TB/s shm + 267 GB/s ROC "
         "-- orderings reproduced)")
    _, t4 = bench.table4_sdh_utilization()
    emit("table4", t4 + "\n(paper: Naive 5% arith; -Out kernels 20-25% arith; "
         "Reg-SHM-Out 95% shm;\n Reg-ROC-Out 86% shm + 27% ROC)")

    # Fig. 5 ---------------------------------------------------------------
    fig5 = bench.fig5_output_size()
    emit("fig5", fig5.render(unit="")
         + "\n(paper: runtime a step function of bucket count, driven by "
         "occupancy;\n degradation at very small counts from atomic contention)")

    # Fig. 7 ---------------------------------------------------------------
    fig7 = bench.fig7_load_balance()
    gains = np.array(fig7.series["Register-SHM"].values) / np.array(
        fig7.series["Register-SHM-LB"].values
    )
    emit("fig7", fig7.render(precision=5)
         + f"\n\nload-balancing gain: {gains.min() - 1:.1%}-"
         f"{gains.max() - 1:.1%} over plain (paper: 12-13%)")

    # Fig. 9 ---------------------------------------------------------------
    fig9 = bench.fig9_shuffle(sizes=sizes)
    sh = np.array(fig9.series["Shuffle"].values)
    shm = np.array(fig9.series["Reg-SHM-Out"].values)
    emit("fig9", fig9.render()
         + f"\n\nShuffle vs Reg-SHM-Out: within "
         f"{np.max(np.abs(sh - shm) / shm):.1%} "
         "(paper: 'almost the same performance')")

    print(f"\nall outputs written to {OUT}/")
    return 0


if __name__ == "__main__":
    sys.exit(main())
