#!/usr/bin/env python
"""Quickstart: compute a spatial distance histogram three ways.

Demonstrates the library's three layers on one problem:

1. functional GPU simulation — exact result + per-memory access counts;
2. analytical prediction at paper scale (no execution needed);
3. the planner choosing a kernel composition automatically.

Run:  python examples/quickstart.py
"""

import math

import numpy as np

from repro import apps, data
from repro.core import estimate, plan_kernel
from repro.gpusim import Device, MemSpace


def main() -> None:
    # --- 1. functional: exact SDH of 4096 points on the simulated GPU ----
    points = data.uniform_points(4096, dims=3, box=10.0, seed=0)
    hist, result = apps.sdh.compute(points, bins=256)

    n = len(points)
    assert hist.sum() == n * (n - 1) // 2  # every pair lands in a bucket
    print(f"SDH of {n} points, 256 buckets")
    print(f"  kernel          : {result.kernel.name}")
    print(f"  simulated time  : {result.seconds * 1e3:.3f} ms on a Titan X model")
    print(f"  busiest buckets : {np.argsort(hist)[-3:][::-1].tolist()}")
    counters = result.record.counters
    print(
        "  accesses        : "
        f"{counters.total(MemSpace.ROC):,} read-only cache, "
        f"{counters.total(MemSpace.SHARED):,} shared memory, "
        f"{counters.total(MemSpace.GLOBAL):,} global"
    )

    # --- 2. analytical: what would 2 million points cost? ------------------
    problem = apps.sdh.make_problem(2500, 10 * math.sqrt(3), box=10.0)
    report = estimate(problem, 2_000_000, kernel=apps.sdh.default_kernel(problem))
    print(f"\npredicted Reg-ROC-Out time at N=2,000,000: {report.seconds:.1f} s")
    print(f"  occupancy {report.occupancy:.0%}, dominant pipeline: {report.dominant}")

    # --- 3. the planner: the paper's framework vision ----------------------
    plan = plan_kernel(problem, 2_000_000)
    print("\n" + plan.explain())


if __name__ == "__main__":
    main()
