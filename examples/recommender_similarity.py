#!/usr/bin/env python
"""Recommender-style all-pairs similarity: Type-III 2-BS workloads.

Section II motivates 2-BS with recommendation systems: content-based
filtering compares all item pairs, collaborative filtering all user
pairs.  Both are quadratic-output problems.  This example:

1. computes the full RBF Gram matrix over item feature vectors
   (kernel-methods substrate, paper's Type-III example 3);
2. runs a band self-join on item popularity scores (relational join,
   Type-III example 1) to shortlist candidate substitute pairs;
3. ranks the most similar item pairs for recommendation.

Run:  python examples/recommender_similarity.py
"""

import numpy as np

from repro import data
from repro.apps import gram, join


def main() -> None:
    n_items = 1200
    feats = data.feature_vectors(n_items, dims=24, sparsity=0.3, seed=5)
    popularity = data.join_values(n_items, duplicates=0.15, seed=6)

    # --- all-pairs item similarity (Gram matrix) ---------------------------
    K, res = gram.compute(feats, bandwidth=4.0)
    print(f"item-item Gram matrix {K.shape}: "
          f"kernel {res.kernel.name}, simulated {res.seconds * 1e3:.2f} ms")

    sim = K.copy()
    np.fill_diagonal(sim, -np.inf)
    flat = np.argsort(sim, axis=None)[::-1]
    print("\ntop substitute recommendations (most similar item pairs):")
    seen = set()
    shown = 0
    for idx in flat:
        i, j = divmod(int(idx), n_items)
        if (j, i) in seen:
            continue
        seen.add((i, j))
        print(f"  item {i:4d} ~ item {j:4d}   similarity {sim[i, j]:.4f}")
        shown += 1
        if shown == 5:
            break

    # --- popularity band join: candidate pairs in the same demand tier ----
    pairs, res_join = join.band_join(popularity, eps=1.0)
    print(f"\npopularity band join (|p_i - p_j| <= 1.0): "
          f"{len(pairs)} candidate pairs "
          f"(selectivity {len(pairs) / (n_items * (n_items - 1) / 2):.4%})")
    print(f"  kernel {res_join.kernel.name}, "
          f"simulated {res_join.seconds * 1e3:.2f} ms")

    # --- combine: same-tier AND similar -----------------------------------
    tiered = [(i, j) for i, j in pairs[:200000] if K[i, j] > 0.98]
    print(f"  of which highly similar: {len(tiered)}")


if __name__ == "__main__":
    main()
