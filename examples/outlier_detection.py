#!/usr/bin/env python
"""Nonparametric outlier detection and density estimation (Type-I).

Section I lists "nonparametric outlier detection and denoising" and
"kernel density regression" among the 2-BS family.  This example plants
outliers in clustered sensor-like data, then flags them two independent
ways — mean kNN distance and leave-one-out kernel density — and checks
the two detectors agree.

Run:  python examples/outlier_detection.py
"""

import numpy as np

from repro import data
from repro.apps import kde, knn


def main() -> None:
    rng = np.random.default_rng(3)
    inliers = data.gaussian_clusters(
        1500, dims=3, n_clusters=5, box=20.0, spread=0.5, seed=2
    )
    outliers = rng.uniform(30.0, 45.0, size=(12, 3))  # far outside the box
    points = np.vstack([inliers, outliers])
    truth = np.zeros(len(points), dtype=bool)
    truth[len(inliers):] = True

    # detector 1: mean distance to k nearest neighbours
    scores, res_knn = knn.outlier_scores(points, k=8)
    flag_knn = scores > np.percentile(scores, 99)

    # detector 2: leave-one-out kernel density
    dens, res_kde = kde.density(points, bandwidth=1.0)
    flag_kde = dens < np.percentile(dens, 1)

    def report(name, flags, res):
        hits = (flags & truth).sum()
        false = (flags & ~truth).sum()
        print(f"{name:12s} kernel {res.kernel.name:14s} "
              f"simulated {res.seconds * 1e3:7.2f} ms   "
              f"caught {hits}/{truth.sum()} planted, {false} false alarms")

    print(f"{len(points)} points, {truth.sum()} planted outliers\n")
    report("kNN score", flag_knn, res_knn)
    report("KDE density", flag_kde, res_kde)

    agreement = (flag_knn & flag_kde).sum() / max(1, (flag_knn | flag_kde).sum())
    print(f"\ndetector agreement (Jaccard): {agreement:.2f}")
    assert (flag_knn & truth).sum() >= 10, "kNN detector must catch outliers"
    assert (flag_kde & truth).sum() >= 10, "KDE detector must catch outliers"


if __name__ == "__main__":
    main()
