#!/usr/bin/env python
"""Two-point correlation function of a mock galaxy catalogue.

The paper's Type-I flagship (Section IV-B evaluates its kernels on the
2-PCF, "fundamental in astrophysics").  We generate a clustered galaxy
mock plus a random catalogue over the same volume and estimate
xi(r) = DD/RR - 1 across separations: positive and falling for the
clustered catalogue, ~0 for a uniform control.

Run:  python examples/astro_correlation.py
"""

import numpy as np

from repro import data
from repro.apps import pcf


def xi_curve(galaxies, randoms, radii):
    """Differential xi per separation shell via cumulative pair counts."""
    dd_prev = rr_prev = 0
    nd, nr = len(galaxies), len(randoms)
    norm = (nr * (nr - 1)) / (nd * (nd - 1))
    out = []
    for r in radii:
        dd, _ = pcf.count_pairs(galaxies, r)
        rr, _ = pcf.count_pairs(randoms, r)
        shell_dd, shell_rr = dd - dd_prev, rr - rr_prev
        out.append(shell_dd / shell_rr * norm - 1.0 if shell_rr else np.nan)
        dd_prev, rr_prev = dd, rr
    return out


def main() -> None:
    box, n = 80.0, 3000
    galaxies = data.galaxy_mock(n, box=box, clustered_fraction=0.5, seed=11)
    randoms = data.uniform_points(n, dims=3, box=box, seed=12)
    control = data.uniform_points(n, dims=3, box=box, seed=13)

    radii = [1.0, 2.0, 4.0, 8.0, 16.0]
    print(f"{n} mock galaxies vs {n} randoms in a {box:.0f}^3 box")
    print(f"{'r':>6}  {'xi(r) clustered':>16}  {'xi(r) uniform':>14}")
    xi_gal = xi_curve(galaxies, randoms, radii)
    xi_ctl = xi_curve(control, randoms, radii)
    for r, xg, xc in zip(radii, xi_gal, xi_ctl):
        bar = "#" * max(0, int(xg * 4))
        print(f"{r:6.1f}  {xg:16.3f}  {xc:14.3f}  {bar}")

    assert xi_gal[0] > 1.0, "clustered mock must correlate at small r"
    assert abs(xi_ctl[0]) < 0.5, "uniform control must not"
    print("\nclustering signal detected at small separations, "
          "decaying with r — as a correlation function should.")


if __name__ == "__main__":
    main()
