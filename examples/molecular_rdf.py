#!/usr/bin/env python
"""Radial distribution function of a simulated molecular liquid.

The paper's Type-II flagship (SDH/RDF, after Levine et al.): analyze the
structure of a liquid-like particle configuration.  A crystal-adjacent
liquid shows the classic g(r) signature — an excluded-volume hole at
r -> 0, a sharp first coordination shell, damped oscillations toward
g(r) = 1.

Run:  python examples/molecular_rdf.py
"""

import numpy as np

from repro import data
from repro.apps import rdf


def ascii_plot(x, y, width=60, height=12, label="g(r)"):
    """Terminal plot, one row per quantile band."""
    top = max(y.max(), 1.2)
    rows = []
    for level in range(height, 0, -1):
        lo = top * (level - 1) / height
        hi = top * level / height
        cells = ["*" if lo < v <= hi else " " for v in y[:width]]
        marker = "-" if lo < 1.0 <= hi else " "
        rows.append(f"{hi:5.2f} |" + "".join(cells) + marker)
    rows.append("      +" + "-" * width)
    rows.append(f"       r = {x[0]:.2f} .. {x[min(width, len(x)) - 1]:.2f}  ({label})")
    return "\n".join(rows)


def main() -> None:
    n, density = 4096, 0.85
    points, box = data.liquid_configuration(n, density=density, jitter=0.07, seed=1)
    print(f"liquid configuration: {n} particles, density {density}, box {box:.2f}")

    r, g, result = rdf.compute(
        points, bins=60, r_max=box / 2, box_volume=box**3
    )
    print(f"kernel {result.kernel.name}: simulated {result.seconds * 1e3:.2f} ms\n")
    print(ascii_plot(r, g))

    spacing = (1.0 / density) ** (1.0 / 3.0)
    first_peak = r[np.argmax(g)]
    print(f"\nfirst coordination shell at r = {first_peak:.2f} "
          f"(lattice spacing {spacing:.2f})")
    print(f"g(r->0) = {g[0]:.2f} (excluded volume), "
          f"max g = {g.max():.2f}")


if __name__ == "__main__":
    main()
