#!/usr/bin/env python
"""Kill-and-resume acceptance harness (CI's interrupted-run matrix).

Proves the DESIGN.md Section 10 determinism contract end to end for one
backend, against a *real* torn process:

1. runs a checkpointed, traced SDH computation uninterrupted (baseline);
2. re-runs it as a subprocess that SIGKILLs **itself** from the
   ``after_chunk`` hook — i.e. right after a chunk payload and manifest
   are durably on disk — and verifies the child died by SIGKILL;
3. resumes from the torn store and asserts the result, the exported
   Chrome trace and the resilience report are **byte-identical** to the
   uninterrupted baseline;
4. runs a second, finer-chunked child (75 one-block chunks), SIGKILLs
   it deep into the run and asserts ``repro blackbox`` replays at least
   64 flight-recorder events from the torn store — the post-mortem
   floor the observability acceptance demands.

The checkpoint stores live under ``--workdir`` (default
``interrupted-run-artifacts/``) so CI can upload them when the
differential fails.  Exit code 0 on success, 1 on any mismatch.

Usage::

    PYTHONPATH=src python tools/interrupted_run.py --backend processes
    PYTHONPATH=src python tools/interrupted_run.py --backend megabatch \
        --prune --faults 5
"""

from __future__ import annotations

import argparse
import json
import math
import os
import pathlib
import shutil
import signal
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import apps, data  # noqa: E402
from repro.core import make_kernel, run  # noqa: E402
from repro.core.checkpoint import CheckpointConfig, CheckpointStore  # noqa: E402

N = 300
BLOCK = 32  # 10 anchor blocks -> 5 chunks at --every 2
EVERY = 2

# flight-recorder check: 75 one-block chunks, killed at chunk 70 -> the
# last durable payload's ring holds well over the 64-event floor
FLIGHT_N = 600
FLIGHT_BLOCK = 8
FLIGHT_EVERY = 1
FLIGHT_KILL_AT = 70
FLIGHT_MIN_EVENTS = 64


def _run(args, store, after_chunk=None):
    problem = apps.sdh.make_problem(64, 10.0 * math.sqrt(3.0), dims=3)
    pts = data.uniform_points(args.n, dims=3, box=10.0, seed=7)
    kernel = make_kernel(problem, "register-roc", "privatized-shm",
                         block_size=args.block_size, prune=args.prune)
    return run(
        problem, pts, kernel=kernel,
        checkpoint_dir=CheckpointConfig(store, every=args.every,
                                        after_chunk=after_chunk),
        backend=args.backend, workers=2, faults=args.faults,
        retries=3 if args.faults is not None else None,
        trace=True, resume=True if CheckpointStore(store).exists() else None,
    )


def child_main(args) -> int:  # pragma: no cover - SIGKILLed mid-run
    def killer(index, entry):
        if index == args.kill_at:
            os.kill(os.getpid(), signal.SIGKILL)

    _run(args, args.store, after_chunk=killer)
    print("child survived to completion: after_chunk never fired",
          file=sys.stderr)
    return 1


def _signature(res):
    return {
        "result": res.result.tobytes(),
        "trace": res.trace.chrome_json(),
        "resilience": res.resilience.to_dict(),
        "sync": list(res.record.sync_counts),
        "counters": res.record.counters,
        "prune": res.record.prune,
    }


def parent_main(args) -> int:
    workdir = pathlib.Path(args.workdir)
    if workdir.exists():
        shutil.rmtree(workdir)
    workdir.mkdir(parents=True)
    clean_store = workdir / f"clean-{args.backend}"
    kill_store = workdir / f"killed-{args.backend}"

    print(f"[1/4] uninterrupted baseline ({args.backend}) ...")
    baseline = _signature(_run(args, clean_store))

    print(f"[2/4] child run, SIGKILL after chunk {args.kill_at} ...")
    proc = subprocess.run(_child_cmd(args, kill_store, args.kill_at))
    if proc.returncode != -signal.SIGKILL:
        print(f"FAIL: child exited {proc.returncode}, expected SIGKILL "
              f"({-signal.SIGKILL})")
        return 1
    store = CheckpointStore(kill_store)
    if not store.exists():
        print(f"FAIL: no manifest in {kill_store} after the kill")
        return 1
    durable = len(store.load_manifest()["chunks"])
    print(f"      child died holding {durable} durable chunk(s)")

    print(f"[3/4] resume from {kill_store} ...")
    resumed = _signature(_run(args, kill_store))

    failures = [k for k in baseline if baseline[k] != resumed[k]]
    if failures:
        print(f"FAIL: resumed run differs from baseline in: {failures}")
        print(f"      stores kept for inspection under {workdir}")
        return 1
    trace_bytes = len(baseline["trace"])
    print(f"PASS: result, trace ({trace_bytes} bytes) and resilience "
          f"report are byte-identical after kill + resume")

    rc = flight_check(args, workdir)
    if rc != 0:
        print(f"      stores kept for inspection under {workdir}")
        return rc
    if not args.keep:
        shutil.rmtree(workdir)
    return 0


def flight_check(args, workdir: pathlib.Path) -> int:
    """SIGKILL a finer-chunked child deep into the run, then post-mortem
    the torn store through ``repro blackbox`` exactly like an operator
    would, asserting the ring replays ≥ ``FLIGHT_MIN_EVENTS`` events."""
    flight_store = workdir / f"flight-{args.backend}"
    print(f"[4/4] flight recorder: {FLIGHT_N // FLIGHT_BLOCK} one-block "
          f"chunks, SIGKILL after chunk {FLIGHT_KILL_AT} ...")
    proc = subprocess.run(_child_cmd(
        args, flight_store, FLIGHT_KILL_AT,
        n=FLIGHT_N, block_size=FLIGHT_BLOCK, every=FLIGHT_EVERY,
    ))
    if proc.returncode != -signal.SIGKILL:
        print(f"FAIL: flight child exited {proc.returncode}, expected "
              f"SIGKILL ({-signal.SIGKILL})")
        return 1
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    out = subprocess.run(
        [sys.executable, "-m", "repro", "blackbox", str(flight_store),
         "--json"],
        capture_output=True, text=True, env=env,
    )
    if out.returncode != 0:
        print(f"FAIL: repro blackbox exited {out.returncode}: {out.stderr}")
        return 1
    events = json.loads(out.stdout)["events"]
    kinds = {ev["kind"] for ev in events}
    if len(events) < FLIGHT_MIN_EVENTS:
        print(f"FAIL: blackbox replayed only {len(events)} flight events, "
              f"need >= {FLIGHT_MIN_EVENTS}")
        return 1
    if "block" not in kinds or "checkpoint-write" not in kinds:
        print(f"FAIL: flight ring is missing expected event kinds "
              f"(got {sorted(kinds)})")
        return 1
    print(f"PASS: blackbox replayed {len(events)} flight events "
          f"({', '.join(sorted(kinds))}) from the torn store")
    return 0


def _child_cmd(args, store, kill_at, n=None, block_size=None, every=None):
    cmd = [
        sys.executable, str(pathlib.Path(__file__).resolve()), "--child",
        "--backend", args.backend, "--kill-at", str(kill_at),
        "--store", str(store),
        "--n", str(n if n is not None else args.n),
        "--block-size",
        str(block_size if block_size is not None else args.block_size),
        "--every", str(every if every is not None else args.every),
    ]
    if args.prune:
        cmd.append("--prune")
    if args.faults is not None:
        cmd += ["--faults", str(args.faults)]
    return cmd


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.split("\n\n")[0]
    )
    parser.add_argument("--backend", default="sequential",
                        choices=["sequential", "threads", "processes",
                                 "megabatch"])
    parser.add_argument("--prune", action="store_true")
    parser.add_argument("--faults", type=int, default=None, metavar="SEED")
    parser.add_argument("--kill-at", type=int, default=1, metavar="CHUNK",
                        help="chunk index whose after_chunk hook SIGKILLs "
                             "the child (default 1)")
    parser.add_argument("--workdir", default="interrupted-run-artifacts",
                        help="where the checkpoint stores live (uploaded "
                             "by CI on failure)")
    parser.add_argument("--keep", action="store_true",
                        help="keep the stores even on success")
    parser.add_argument("--n", type=int, default=N, help=argparse.SUPPRESS)
    parser.add_argument("--block-size", type=int, default=BLOCK,
                        help=argparse.SUPPRESS)
    parser.add_argument("--every", type=int, default=EVERY,
                        help=argparse.SUPPRESS)
    parser.add_argument("--child", action="store_true",
                        help=argparse.SUPPRESS)
    parser.add_argument("--store", default=None, help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        return child_main(args)
    return parent_main(args)


if __name__ == "__main__":
    sys.exit(main())
