#!/usr/bin/env python
"""Validate a ``repro profile --format json`` report against the
checked-in schema (``tools/profile_schema.json``).

The container has no ``jsonschema`` package, so this implements the
small subset the schema uses — ``type`` (including union lists),
``enum``, ``required``, ``properties``, ``additionalProperties`` (bool
or sub-schema) and ``minimum`` — plus the semantic invariants a schema
cannot express:

* conservation: attributed layer µs sum to the run total (±1e-6 rel)
  and the ``other`` bucket is empty;
* layer shares sum to 1 (±1e-6) when any time was attributed;
* the roofline binding resource appears in the measured spaces (or is
  ``compute``).

Usage: ``python tools/validate_profile.py report.json [...]`` (or - for
stdin).  Exits non-zero listing every violation.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SCHEMA_PATH = Path(__file__).with_name("profile_schema.json")

_TYPES = {
    "object": dict,
    "string": str,
    "number": (int, float),
    "integer": int,
    "null": type(None),
    "array": list,
    "boolean": bool,
}


def _check_type(value, expected) -> bool:
    names = expected if isinstance(expected, list) else [expected]
    for name in names:
        py = _TYPES[name]
        if isinstance(value, py):
            # bool is an int subclass; "integer"/"number" must not accept it
            if name in ("integer", "number") and isinstance(value, bool):
                continue
            return True
    return False


def validate(value, schema, path="$", errors=None):
    """Collect violations of the supported schema subset into ``errors``."""
    if errors is None:
        errors = []
    expected = schema.get("type")
    if expected is not None and not _check_type(value, expected):
        errors.append(f"{path}: expected {expected}, got "
                      f"{type(value).__name__}")
        return errors
    enum = schema.get("enum")
    if enum is not None and value not in enum:
        errors.append(f"{path}: {value!r} not in {enum}")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        minimum = schema.get("minimum")
        if minimum is not None and value < minimum:
            errors.append(f"{path}: {value} < minimum {minimum}")
    if isinstance(value, dict):
        for key in schema.get("required", ()):
            if key not in value:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        extra = schema.get("additionalProperties", True)
        for key, item in value.items():
            if key in props:
                validate(item, props[key], f"{path}.{key}", errors)
            elif isinstance(extra, dict):
                validate(item, extra, f"{path}.{key}", errors)
            elif extra is False:
                errors.append(f"{path}: unexpected key {key!r}")
    return errors


def semantic_checks(report) -> list:
    """Invariants beyond the schema's reach."""
    errors = []
    cons = report.get("conservation", {})
    total = cons.get("total_us", 0.0)
    tol = 1e-6 * max(1.0, abs(total))
    if abs(cons.get("error_us", 0.0)) > tol:
        errors.append(
            f"conservation: attributed != total "
            f"(error {cons.get('error_us')} µs > tolerance {tol})"
        )
    if cons.get("other_us", 0.0) > 0:
        errors.append(
            f"conservation: non-empty 'other' bucket "
            f"({cons.get('other_us')} µs of unmapped spans)"
        )
    layers = report.get("layers", {})
    if total > 0 and layers:
        share_sum = sum(info.get("share", 0.0) for info in layers.values())
        # shares are serialized rounded to 6 digits: allow one half-ulp
        # of that rounding per layer
        if abs(share_sum - 1.0) > 5e-7 * len(layers) + 1e-9:
            errors.append(f"layers: shares sum to {share_sum}, not 1")
    roof = report.get("roofline", {})
    binding = roof.get("binding")
    if binding not in (None, "compute") and binding not in roof.get(
        "spaces", {}
    ):
        errors.append(
            f"roofline: binding {binding!r} has no measured space entry"
        )
    return errors


def main(argv=None) -> int:
    paths = (argv if argv is not None else sys.argv[1:]) or ["-"]
    schema = json.loads(SCHEMA_PATH.read_text())
    status = 0
    for path in paths:
        text = sys.stdin.read() if path == "-" else Path(path).read_text()
        try:
            report = json.loads(text)
        except json.JSONDecodeError as exc:
            print(f"{path}: not valid JSON: {exc}", file=sys.stderr)
            status = 1
            continue
        errors = validate(report, schema) + semantic_checks(report)
        if errors:
            status = 1
            for err in errors:
                print(f"{path}: {err}", file=sys.stderr)
        else:
            print(f"{path}: OK ({len(report.get('layers', {}))} layers, "
                  f"schema {report.get('schema')})")
    return status


if __name__ == "__main__":
    sys.exit(main())
