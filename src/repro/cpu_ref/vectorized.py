"""Chunked, multi-threaded host implementations ("best known CPU program").

Unlike :mod:`repro.cpusim` (the simulated OpenMP model), these run at real
wall-clock speed: the triangular loop is chunked, each chunk evaluated as
one vectorized NumPy block (NumPy releases the GIL inside BLAS/ufuncs, so
a thread pool gives genuine parallelism), every worker owns a private
output, and a final reduction folds privates together — the exact
structure of the paper's OpenMP C code.  These power the real-time
micro-benchmarks and double as scalable oracles.
"""

from __future__ import annotations

import math
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np


def _row_chunks(n: int, chunk: int) -> Iterable[Tuple[int, int]]:
    for s in range(0, n, chunk):
        yield s, min(s + chunk, n)


def _sq_dists(block: np.ndarray, pts: np.ndarray) -> np.ndarray:
    aa = (block * block).sum(axis=1)[:, None]
    bb = (pts * pts).sum(axis=1)[None, :]
    return np.maximum(aa + bb - 2.0 * (block @ pts.T), 0.0)


def sdh_histogram(
    points: np.ndarray,
    bins: int,
    bucket_width: float,
    n_threads: int = 4,
    chunk: int = 512,
) -> np.ndarray:
    """Threaded SDH with private histograms + reduction."""
    pts = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    n = len(pts)
    inv_w = 1.0 / bucket_width

    def worker(rows: List[Tuple[int, int]]) -> np.ndarray:
        priv = np.zeros(bins, dtype=np.int64)
        for s, e in rows:
            d2 = _sq_dists(pts[s:e], pts[s + 1 :])
            # keep only j > i within the rectangular block
            cols = np.arange(s + 1, n)
            mask = cols[None, :] > np.arange(s, e)[:, None]
            d = np.sqrt(d2[mask])
            idx = np.minimum((d * inv_w).astype(np.int64), bins - 1)
            priv += np.bincount(idx, minlength=bins)
        return priv

    assignments: List[List[Tuple[int, int]]] = [[] for _ in range(n_threads)]
    for k, (s, e) in enumerate(_row_chunks(n, chunk)):
        assignments[k % n_threads].append((s, e))
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        privates = list(pool.map(worker, assignments))
    return np.sum(privates, axis=0)


def pcf_count(
    points: np.ndarray, radius: float, n_threads: int = 4, chunk: int = 512
) -> int:
    """Threaded 2-PCF pair count."""
    pts = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    n = len(pts)
    r2 = radius * radius

    def worker(rows: List[Tuple[int, int]]) -> int:
        total = 0
        for s, e in rows:
            d2 = _sq_dists(pts[s:e], pts[s + 1 :])
            cols = np.arange(s + 1, n)
            mask = cols[None, :] > np.arange(s, e)[:, None]
            total += int((d2[mask] <= r2).sum())
        return total

    assignments: List[List[Tuple[int, int]]] = [[] for _ in range(n_threads)]
    for k, (s, e) in enumerate(_row_chunks(n, chunk)):
        assignments[k % n_threads].append((s, e))
    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        return sum(pool.map(worker, assignments))


def knn(
    points: np.ndarray, k: int, n_threads: int = 4, chunk: int = 256
) -> Tuple[np.ndarray, np.ndarray]:
    """Threaded all-point kNN."""
    pts = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    n = len(pts)
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    out_d = np.empty((n, k))
    out_i = np.empty((n, k), dtype=np.int64)

    def worker(span: Tuple[int, int]) -> None:
        s, e = span
        d2 = _sq_dists(pts[s:e], pts)
        rows_local = np.arange(e - s)
        d2[rows_local, np.arange(s, e)] = np.inf  # exclude self
        idx = np.argpartition(d2, k - 1, axis=1)[:, :k]
        d = np.sqrt(d2[rows_local[:, None], idx])
        order = np.argsort(d, axis=1, kind="stable")
        out_d[s:e] = d[rows_local[:, None], order]
        out_i[s:e] = idx[rows_local[:, None], order]

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        list(pool.map(worker, _row_chunks(n, chunk)))
    return out_d, out_i


def kde_estimate(
    points: np.ndarray, bandwidth: float, n_threads: int = 4, chunk: int = 512
) -> np.ndarray:
    """Threaded Gaussian KDE sums (self excluded)."""
    pts = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
    n = len(pts)
    inv = 1.0 / (2.0 * bandwidth * bandwidth)
    out = np.empty(n)

    def worker(span: Tuple[int, int]) -> None:
        s, e = span
        w = np.exp(-_sq_dists(pts[s:e], pts) * inv)
        w[np.arange(e - s), np.arange(s, e)] = 0.0
        out[s:e] = w.sum(axis=1)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        list(pool.map(worker, _row_chunks(n, chunk)))
    return out
