"""Brute-force reference implementations (oracles).

Direct NumPy evaluations of every 2-BS the library computes, written for
clarity over speed.  Tests compare every kernel variant, the CPU-model
runner and the vectorized host implementations against these.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.spatial.distance import cdist, pdist


def pair_distances(points: np.ndarray) -> np.ndarray:
    """All N(N-1)/2 pairwise Euclidean distances (condensed form)."""
    return pdist(np.asarray(points, dtype=np.float64))


def pcf_count(points: np.ndarray, radius: float) -> int:
    """2-point correlation function numerator: pairs within ``radius``."""
    return int((pair_distances(points) <= radius).sum())


def sdh_histogram(points: np.ndarray, bins: int, bucket_width: float) -> np.ndarray:
    """Spatial distance histogram: counts of pair distances per bucket.

    Distances at or beyond ``bins * bucket_width`` are clamped into the
    last bucket (matching the kernels' map function).
    """
    d = pair_distances(points)
    idx = np.minimum((d / bucket_width).astype(np.int64), bins - 1)
    return np.bincount(idx, minlength=bins)


def rdf(points: np.ndarray, bins: int, r_max: float, box_volume: float) -> np.ndarray:
    """Radial distribution function g(r): SDH normalized by shell volume
    and density (Levine et al.'s target quantity)."""
    n = len(points)
    width = r_max / bins
    d = pair_distances(points)
    d = d[d < r_max]  # pairs beyond r_max are outside the analyzed range
    hist = np.bincount(
        (d / width).astype(np.int64), minlength=bins
    ).astype(np.float64)
    edges = np.arange(bins + 1) * width
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n / box_volume
    # each pair counted once; per-particle pair density needs the factor 2
    ideal = shell_vol * density * n / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(ideal > 0, hist / ideal, 0.0)


def knn(points: np.ndarray, k: int) -> Tuple[np.ndarray, np.ndarray]:
    """All-point k-nearest neighbours: (distances, indices), each (N, k)."""
    pts = np.asarray(points, dtype=np.float64)
    n = len(pts)
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, {n - 1}], got {k}")
    full = cdist(pts, pts)
    np.fill_diagonal(full, np.inf)
    idx = np.argpartition(full, k - 1, axis=1)[:, :k]
    rows = np.arange(n)[:, None]
    d = full[rows, idx]
    order = np.argsort(d, axis=1, kind="stable")
    return d[rows, order], idx[rows, order]


def kde_estimate(points: np.ndarray, bandwidth: float) -> np.ndarray:
    """Gaussian kernel density sums: f(i) = sum_{j != i} K_h(||xi - xj||)."""
    pts = np.asarray(points, dtype=np.float64)
    d2 = cdist(pts, pts, metric="sqeuclidean")
    w = np.exp(-d2 / (2.0 * bandwidth * bandwidth))
    np.fill_diagonal(w, 0.0)
    return w.sum(axis=1)


def band_join(values: np.ndarray, eps: float) -> np.ndarray:
    """Self band-join: unordered index pairs (i < j) with |v_i - v_j| <= eps.

    Returned sorted lexicographically, shape (P, 2).
    """
    v = np.asarray(values, dtype=np.float64).ravel()
    n = v.size
    ii, jj = np.nonzero(np.abs(v[:, None] - v[None, :]) <= eps)
    keep = ii < jj
    pairs = np.stack([ii[keep], jj[keep]], axis=1)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def spatial_band_join(points: np.ndarray, eps: float) -> np.ndarray:
    """Self spatial join: pairs (i < j) with Euclidean distance <= eps."""
    pts = np.asarray(points, dtype=np.float64)
    d = cdist(pts, pts)
    ii, jj = np.nonzero(d <= eps)
    keep = ii < jj
    pairs = np.stack([ii[keep], jj[keep]], axis=1)
    return pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]


def gram_matrix(points: np.ndarray, bandwidth: float) -> np.ndarray:
    """Gaussian-kernel Gram matrix with unit diagonal."""
    pts = np.asarray(points, dtype=np.float64)
    d2 = cdist(pts, pts, metric="sqeuclidean")
    return np.exp(-d2 / (2.0 * bandwidth * bandwidth))


def pss_scores(profiles: np.ndarray, shift: float = 0.0) -> np.ndarray:
    """Pairwise similarity scores for the statistical-significance app:
    a capped correlation score standing in for pairwise alignment (see
    DESIGN.md substitutions; the paper's PSS computes one alignment score
    per sequence pair — quadratic output, Type-III)."""
    p = np.asarray(profiles, dtype=np.float64)
    norms = np.linalg.norm(p, axis=1, keepdims=True)
    norms = np.where(norms > 0, norms, 1.0)
    unit = p / norms
    scores = unit @ unit.T - shift
    np.fill_diagonal(scores, 0.0)
    return scores
