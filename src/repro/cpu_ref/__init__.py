"""Host-side reference implementations.

:mod:`~repro.cpu_ref.brute` — clarity-first oracles for every 2-BS;
:mod:`~repro.cpu_ref.vectorized` — chunked threaded versions mirroring the
paper's optimized OpenMP C program at real wall-clock speed.
"""

from . import brute, vectorized

__all__ = ["brute", "vectorized"]
