"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``estimate`` — predict a kernel's runtime/utilization at any data size;
* ``plan``     — run the model-driven planner for a problem;
* ``sdh`` / ``pcf`` — compute a statistic over generated data on the
  simulated device;
* ``stats``    — run a problem and print the full metrics registry (the
  paper-style utilization table plus every counter/gauge);
* ``profile``  — run a problem and print the hierarchical performance
  attribution report (per-layer simulated time, roofline placement,
  simulated-vs-wall split);
* ``blackbox`` — post-mortem the flight recorder persisted in a
  checkpoint store (works on stores torn by SIGKILL);
* ``figures``  — regenerate the paper's figures/tables (see also
  ``examples/reproduce_paper.py``);
* ``devices``  — list the built-in GPU presets.

Long-running subcommands accept ``--progress`` for live telemetry on
stderr (throughput, ETA, deadline budget, degradation state).
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import time
from typing import List, Optional

import numpy as np

from . import bench
from .apps import pcf as pcf_app
from .apps import sdh as sdh_app
from .core import DEFAULT_NODES, TOPOLOGIES, make_kernel, plan_kernel, run
from .core.kernels import INPUT_STRATEGIES, OUTPUT_STRATEGIES
from .core.lifecycle import RunAbandoned
from .data import uniform_points
from .gpusim import BACKENDS, PRESETS, get_device_spec, utilization_table
from .obs import profile_run


def _problem(args):
    if args.problem == "sdh":
        maxd = args.box * math.sqrt(3)
        return sdh_app.make_problem(args.bins, maxd, box=args.box)
    return pcf_app.make_problem(args.radius)


def cmd_estimate(args) -> int:
    spec = get_device_spec(args.device)
    problem = _problem(args)
    kernel = make_kernel(
        problem, args.input, args.output or None, block_size=args.block_size
    )
    report = kernel.simulate(args.n, spec=spec)
    print(f"kernel        : {kernel.name} (B={args.block_size}) on {spec.name}")
    print(f"data size     : {args.n:,} points -> {report.extras['pairs']:,.0f} pairs")
    print(f"predicted time: {report.seconds:.4g} s")
    print(f"occupancy     : {report.occupancy:.0%}")
    print(f"dominant      : {report.dominant}")
    util = ", ".join(
        f"{k}={v:.0%}" for k, v in sorted(report.utilization.items()) if v > 0.005
    )
    print(f"utilization   : {util}")
    return 0


def cmd_plan(args) -> int:
    spec = get_device_spec(args.device)
    plan = plan_kernel(_problem(args), args.n, spec=spec)
    print(plan.explain())
    return 0


def _report_run(args, res) -> None:
    """Shared post-run report: pruning, fault injection and trace export,
    driven by the run's metrics registry (the same numbers the trace and
    ``stats`` views aggregate)."""
    m = res.metrics
    tiles = m.counter_value("prune.tiles")
    if tiles:
        pruned = (m.counter_value("prune.tiles_skipped")
                  + m.counter_value("prune.tiles_bulk"))
        pairs = (m.counter_value("prune.pairs_skipped")
                 + m.counter_value("prune.pairs_bulk"))
        print(f"pruned {pruned}/{tiles} tiles "
              f"({pairs:,} pair evaluations avoided)")
    ctiles = m.counter_value("cells.tiles")
    if ctiles:
        print(f"cell list: examined {m.counter_value('cells.tiles_examined')}"
              f"/{ctiles} tiles over "
              f"{int(m.gauge_value('cells.occupied'))} occupied cells "
              f"(mean occupancy {m.gauge_value('cells.mean_occupancy'):.1f}; "
              f"{m.counter_value('cells.pairs_skipped'):,} pair "
              f"evaluations avoided)")
    if res.cluster is not None:
        t = res.cluster
        alive = [n for n in sorted(t.node_seconds) if t.node_seconds[n] > 0]
        print(f"-- cluster ({t.nodes} nodes; modelled "
              f"{t.seconds * 1e3:.3f} ms, merge {t.merge_seconds * 1e6:.1f} "
              f"us over {t.transfers} transfers / "
              f"{t.bytes_moved / 1024:.1f} KiB) --")
        for node in sorted(t.node_seconds):
            mark = "" if node in alive else "  (idle or lost)"
            print(f"node {node}: {t.node_seconds[node] * 1e3:.3f} ms "
                  f"simulated compute{mark}")
    if res.resilience is not None:
        if getattr(args, "faults", None) is not None:
            print(f"-- fault injection (seed {args.faults}) --")
        else:
            print("-- run lifecycle --")
        print(res.resilience.summary())
    if args.trace and res.trace is not None:
        events = len(res.trace.all_spans())
        print(f"trace written to {args.trace} ({events} events; load in "
              "Perfetto or chrome://tracing)")


def cmd_sdh(args) -> int:
    pts = uniform_points(args.n, dims=3, box=args.box, seed=args.seed)
    lk = _lifecycle_kwargs(args)
    lk.update(_cluster_kwargs(args))
    if args.faults is not None or lk:
        span = pts.max(axis=0) - pts.min(axis=0)
        # a declared cell cutoff doubles as the histogram range so that
        # every beyond-cutoff pair clamps into the (one) top bucket
        maxd = args.cell_cutoff or float(np.linalg.norm(span)) or 1.0
        problem = sdh_app.make_problem(args.bins, maxd, dims=3,
                                       cell_cutoff=args.cell_cutoff)
        # workers=2 keeps the parallel engine (hence the worker-crash and
        # shard-corruption fault sites) live under the chaos plan
        res = run(problem,
                  pts,
                  kernel=sdh_app.default_kernel(problem, prune=args.prune),
                  faults=args.faults,
                  retries=args.retries if args.faults is not None else None,
                  workers=2, trace=args.trace, backend=args.backend,
                  cells=args.cells, progress=_progress_arg(args), **lk)
        hist = res.result
    else:
        hist, res = sdh_app.compute(pts, bins=args.bins,
                                    max_distance=args.cell_cutoff,
                                    prune=args.prune,
                                    trace=args.trace, backend=args.backend,
                                    cells=args.cells,
                                    cell_cutoff=args.cell_cutoff,
                                    progress=_progress_arg(args))
    print(f"SDH of {args.n} uniform points, {args.bins} buckets "
          f"({res.kernel.name}, simulated {res.seconds * 1e3:.2f} ms)")
    peak = int(np.argmax(hist))
    print(f"total pairs {hist.sum():,}; busiest bucket {peak} "
          f"({hist[peak]:,} pairs)")
    _report_run(args, res)
    return 0


def cmd_pcf(args) -> int:
    pts = uniform_points(args.n, dims=3, box=args.box, seed=args.seed)
    lk = _lifecycle_kwargs(args)
    lk.update(_cluster_kwargs(args))
    if args.faults is not None or lk:
        problem = pcf_app.make_problem(args.radius)
        res = run(problem, pts, kernel=make_kernel(problem, prune=args.prune),
                  faults=args.faults,
                  retries=args.retries if args.faults is not None else None,
                  workers=2, trace=args.trace, backend=args.backend,
                  cells=args.cells, progress=_progress_arg(args), **lk)
        count = int(round(res.result))
    else:
        count, res = pcf_app.count_pairs(pts, args.radius, prune=args.prune,
                                         trace=args.trace,
                                         backend=args.backend,
                                         cells=args.cells,
                                         progress=_progress_arg(args))
    total = args.n * (args.n - 1) // 2
    print(f"2-PCF of {args.n} uniform points at r={args.radius:g} "
          f"({res.kernel.name}, simulated {res.seconds * 1e3:.2f} ms)")
    print(f"pairs within radius: {count:,} of {total:,} ({count / total:.3%})")
    _report_run(args, res)
    return 0


def cmd_stats(args) -> int:
    pts = uniform_points(args.n, dims=3, box=args.box, seed=args.seed)
    if args.problem == "sdh":
        maxd = args.cell_cutoff or args.box * math.sqrt(3)
        problem = sdh_app.make_problem(args.bins, maxd, box=args.box, dims=3,
                                       cell_cutoff=args.cell_cutoff)
        kernel = sdh_app.default_kernel(problem, prune=args.prune)
    else:
        problem = pcf_app.make_problem(args.radius)
        kernel = pcf_app.default_kernel(problem, prune=args.prune)
    spec = get_device_spec(args.device)
    # retries only matter under fault injection; passing them alone would
    # route a fault-free run through the supervisor
    extra = {}
    if args.faults is not None:
        extra = {"faults": args.faults, "retries": args.retries}
    res = run(problem, pts, kernel=kernel, spec=spec, workers=args.workers,
              backend=args.backend, prune=args.prune, trace=args.trace,
              cells=args.cells, progress=_progress_arg(args), **extra,
              **_lifecycle_kwargs(args), **_cluster_kwargs(args))
    if getattr(args, "format", "table") == "json":
        # machine view: the registry plus the attribution manifest, with
        # sorted keys so identical configurations emit identical bytes
        print(json.dumps(
            {"metrics": res.metrics.to_dict(), "manifest": res.manifest},
            sort_keys=True, indent=1,
        ))
        return 0
    # the utilization table and the registry dump below are two views of
    # the same MetricsRegistry the trace was built from
    print(utilization_table([res.metrics.sim_report()]))
    print()
    print(res.metrics.render())
    _report_run(args, res)
    return 0


def _progress_printer(ev) -> None:
    """Default ``--progress`` sink: one status line per emission, stderr."""
    parts = [f"[{ev.phase}]"]
    frac = ev.fraction_done
    if frac is not None:
        parts.append(f"{frac:6.1%}")
    total = ev.blocks_total if ev.blocks_total is not None else "?"
    parts.append(f"blocks {ev.blocks_done}/{total}")
    if ev.chunks_total:
        parts.append(f"chunks {ev.chunks_done}/{ev.chunks_total}")
    parts.append(f"{ev.pairs_per_second:,.0f} pairs/s")
    if ev.eta_seconds is not None:
        parts.append(f"eta {ev.eta_seconds:.1f}s")
    if ev.deadline_remaining is not None:
        fit = ("fits" if ev.deadline_fits
               else "OVER" if ev.deadline_fits is False else "?")
        parts.append(f"deadline {ev.deadline_remaining:.1f}s {fit}")
    state = ev.state
    if state.get("kernel"):
        parts.append(f"degraded->{state['kernel']}")
    if state.get("dead_nodes"):
        parts.append(f"dead-nodes {state['dead_nodes']}")
    if state.get("topology"):
        parts.append(f"topology {state['topology']}")
    print("  ".join(str(p) for p in parts), file=sys.stderr)


def _progress_arg(args):
    """``run(progress=...)`` value for the ``--progress`` flag."""
    return _progress_printer if getattr(args, "progress", False) else None


def cmd_profile(args) -> int:
    pts = uniform_points(args.n, dims=3, box=args.box, seed=args.seed)
    if args.problem == "sdh":
        maxd = args.cell_cutoff or args.box * math.sqrt(3)
        problem = sdh_app.make_problem(args.bins, maxd, box=args.box, dims=3,
                                       cell_cutoff=args.cell_cutoff)
        kernel = sdh_app.default_kernel(problem, prune=args.prune)
    else:
        problem = pcf_app.make_problem(args.radius)
        kernel = pcf_app.default_kernel(problem, prune=args.prune)
    spec = get_device_spec(args.device)
    extra = {}
    if args.faults is not None:
        extra = {"faults": args.faults, "retries": args.retries}
    # the profiler needs the span tree: trace in memory even when no
    # --trace path was requested
    t0 = time.perf_counter()
    res = run(problem, pts, kernel=kernel, spec=spec, workers=args.workers,
              backend=args.backend, prune=args.prune,
              trace=args.trace or True, cells=args.cells,
              progress=_progress_arg(args), **extra,
              **_lifecycle_kwargs(args), **_cluster_kwargs(args))
    wall = time.perf_counter() - t0
    rep = profile_run(res, spec=spec, wall_seconds=wall)
    if args.format == "json":
        # stable-sorted, wall-free: byte-identical per configuration
        print(rep.to_json(), end="")
    else:
        print(rep.render())
    return 0


def cmd_blackbox(args) -> int:
    from .core.checkpoint import CheckpointCorrupt, CheckpointStore

    store = CheckpointStore(args.dir)
    if not store.exists():
        print(f"blackbox: no checkpoint store at {args.dir} "
              f"(missing {store.MANIFEST})", file=sys.stderr)
        return 2
    try:
        manifest = store.load_manifest()
        entries = sorted(manifest.get("chunks") or [],
                         key=lambda e: e["index"])
        payload = store.load_chunk(entries[-1]) if entries else None
    except Exception as exc:  # pickle/json/OSError: store is torn — report
        print(f"blackbox: cannot read store {args.dir}: {exc}",
              file=sys.stderr)
        return 2
    events = list((payload or {}).get("flight") or [])
    if args.last is not None:
        events = events[-args.last:]
    if args.json:
        out = {
            "dir": str(store.dir),
            "chunks_durable": len(entries),
            "num_chunks": manifest.get("num_chunks"),
            "fingerprint": manifest.get("fingerprint"),
            "events": events,
        }
        print(json.dumps(out, sort_keys=True, indent=1))
        return 0
    fp = manifest.get("fingerprint") or {}
    print(f"flight recorder: {store.dir}")
    print(f"run: kernel={fp.get('kernel')} n={fp.get('n')} "
          f"backend={fp.get('backend')} every={fp.get('every')}")
    total = manifest.get("num_chunks")
    print(f"durable chunks: {len(entries)}/{total} "
          f"(last covers blocks {entries[-1]['blocks'] if entries else '-'})")
    if not events:
        print("no flight events persisted (store predates the recorder "
              "or no chunk committed)")
        return 0
    t0 = events[0]["t"]
    print(f"last {len(events)} events (of {events[-1]['seq']} recorded):")
    for ev in events:
        extra = {k: v for k, v in ev.items()
                 if k not in ("seq", "t", "kind")}
        detail = " ".join(f"{k}={v}" for k, v in sorted(extra.items()))
        print(f"  #{ev['seq']:<6d} +{ev['t'] - t0:9.3f}s  "
              f"{ev['kind']:<18s} {detail}")
    return 0


def cmd_figures(args) -> int:
    builders = {
        "fig2": lambda: bench.fig2_pcf_kernels().render(),
        "fig4": lambda: bench.fig4_sdh_kernels().render(),
        "fig5": lambda: bench.fig5_output_size().render(unit=""),
        "fig7": lambda: bench.fig7_load_balance().render(precision=5),
        "fig9": lambda: bench.fig9_shuffle().render(),
        "table2": lambda: bench.table2_pcf_utilization()[1],
        "table3": lambda: bench.table3_sdh_bandwidth()[1],
        "table4": lambda: bench.table4_sdh_utilization()[1],
    }
    wanted = args.which or sorted(builders)
    for name in wanted:
        if name not in builders:
            print(f"unknown figure {name!r}; available: {sorted(builders)}",
                  file=sys.stderr)
            return 2
        print(builders[name]())
        print()
    return 0


def cmd_devices(args) -> int:
    for key, spec in PRESETS.items():
        flag = " (paper testbed)" if key == "titan-x" else ""
        print(f"{key:9s} {spec.name}{flag}")
        print(f"          {spec.sm_count} SMs x {spec.cores_per_sm} cores @ "
              f"{spec.clock_hz / 1e9:.2f} GHz, "
              f"{spec.shared_mem_per_sm // 1024} KB shm/SM, "
              f"shuffle={'yes' if spec.supports_shuffle else 'no'}")
    return 0


def _add_cells_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cells", choices=["off", "auto", "force"], default=None,
        help="uniform-grid cell-list engine: auto engages it when the "
             "problem declares a cutoff and the dataset's cell adjacency "
             "predicts a win; force demands it; default follows "
             "REPRO_SIM_CELLS.  Results are bit-identical to the tile "
             "engine",
    )


def _add_backend_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend", choices=BACKENDS, default=None,
        help="host execution engine: sequential, threads, processes "
             "(shared-memory worker processes) or megabatch (one stacked "
             "evaluation per kernel stage); default follows "
             "REPRO_SIM_BACKEND / auto.  Results are bit-identical across "
             "backends; only wall time differs",
    )


def _add_progress_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--progress", action="store_true",
        help="emit live telemetry on stderr: throughput, ETA (from block "
             "pair mass and checkpoint cursors), deadline budget and the "
             "current degradation state.  Off the hot path — one guard "
             "per completed block",
    )


def _add_trace_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="PATH", default=None,
        help="write a Chrome-trace JSON of the run to PATH (open in "
             "Perfetto or chrome://tracing); timestamps come from "
             "simulated kernel time, so the file is reproducible",
    )


def _add_fault_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--faults", type=int, default=None, metavar="SEED",
        help="inject the deterministic chaos fault plan for SEED and run "
             "under the resilience supervisor",
    )
    p.add_argument(
        "--retries", type=int, default=3,
        help="supervisor retry budget per fault site (with --faults)",
    )


def _add_cluster_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--nodes", type=int, default=None, metavar="P",
        help="stripe the run across P simulated cluster nodes with a "
             "priced histogram merge; outputs stay bit-identical to one "
             "node.  Default follows REPRO_SIM_NODES",
    )
    p.add_argument(
        "--topology", choices=list(TOPOLOGIES), default=None,
        help="cluster merge topology (implies --nodes, default "
             f"{DEFAULT_NODES}); degrades ring -> tree -> star under link "
             "failures.  Default follows REPRO_SIM_CLUSTER",
    )


def _cluster_kwargs(args) -> dict:
    kw = {}
    if getattr(args, "topology", None) is not None:
        kw["cluster"] = args.topology
    if getattr(args, "nodes", None) is not None:
        kw["nodes"] = args.nodes
    return kw


def _add_lifecycle_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--checkpoint-dir", metavar="DIR", default=None,
        help="checkpoint the run into DIR, one durable chunk every "
             "--checkpoint-every anchor blocks; an interrupted run can be "
             "finished later with --resume DIR",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="K",
        help="anchor blocks per checkpoint chunk (default 8)",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget; on breach the run stops cooperatively "
             "(leaving a resumable checkpoint when --checkpoint-dir is set) "
             "and exits with status 3",
    )
    p.add_argument(
        "--resume", metavar="DIR", default=None,
        help="resume from the checkpoint store at DIR: completed chunks "
             "are replayed, only the remainder executes, and outputs are "
             "bit-identical to an uninterrupted run",
    )


def _lifecycle_kwargs(args) -> dict:
    kw = {}
    if getattr(args, "checkpoint_dir", None) is not None:
        kw["checkpoint_dir"] = args.checkpoint_dir
    if getattr(args, "checkpoint_every", None) is not None:
        kw["checkpoint_every"] = args.checkpoint_every
    if getattr(args, "deadline", None) is not None:
        kw["deadline"] = args.deadline
    if getattr(args, "resume", None) is not None:
        kw["resume"] = args.resume
    return kw


def _add_problem_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--problem", choices=["sdh", "pcf"], default="sdh")
    p.add_argument("--bins", type=int, default=2500, help="SDH buckets")
    p.add_argument("--radius", type=float, default=1.0, help="2-PCF radius")
    p.add_argument("--box", type=float, default=10.0)
    p.add_argument("--device", choices=sorted(PRESETS), default="titan-x")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("estimate", help="predict kernel performance")
    _add_problem_args(p)
    p.add_argument("-n", type=int, default=1_000_000)
    p.add_argument("--input", choices=sorted(INPUT_STRATEGIES),
                   default="register-roc")
    p.add_argument("--output", choices=sorted(OUTPUT_STRATEGIES), default="")
    p.add_argument("--block-size", type=int, default=256)
    p.set_defaults(fn=cmd_estimate)

    p = sub.add_parser("plan", help="model-driven kernel selection")
    _add_problem_args(p)
    p.add_argument("-n", type=int, default=1_000_000)
    p.set_defaults(fn=cmd_plan)

    p = sub.add_parser("sdh", help="compute an SDH on generated data")
    p.add_argument("-n", type=int, default=4096)
    p.add_argument("--bins", type=int, default=256)
    p.add_argument("--box", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prune", action="store_true",
                   help="enable bounds-based tile pruning")
    p.add_argument("--cell-cutoff", type=float, default=None, metavar="R",
                   help="declare cutoff semantics for --cells: every pair "
                        "beyond R clamps into the top bucket")
    _add_cells_arg(p)
    _add_backend_arg(p)
    _add_fault_args(p)
    _add_cluster_args(p)
    _add_trace_arg(p)
    _add_lifecycle_args(p)
    _add_progress_arg(p)
    p.set_defaults(fn=cmd_sdh)

    p = sub.add_parser("pcf", help="compute a 2-PCF on generated data")
    p.add_argument("-n", type=int, default=4096)
    p.add_argument("--radius", type=float, default=1.0)
    p.add_argument("--box", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--prune", action="store_true",
                   help="enable bounds-based tile pruning")
    _add_cells_arg(p)
    _add_backend_arg(p)
    _add_fault_args(p)
    _add_cluster_args(p)
    _add_trace_arg(p)
    _add_lifecycle_args(p)
    _add_progress_arg(p)
    p.set_defaults(fn=cmd_pcf)

    p = sub.add_parser(
        "stats",
        help="run a problem and print its full metrics registry",
        description="Execute a problem on the simulated device and print "
                    "the paper-style utilization table plus every counter, "
                    "gauge and histogram the run produced — the same "
                    "registry a --trace export is built from.",
    )
    p.add_argument("--problem", choices=["sdh", "pcf"], default="sdh")
    p.add_argument("-n", type=int, default=4096)
    p.add_argument("--bins", type=int, default=256, help="SDH buckets")
    p.add_argument("--radius", type=float, default=1.0, help="2-PCF radius")
    p.add_argument("--box", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--device", choices=sorted(PRESETS), default="titan-x")
    p.add_argument("--workers", type=int, default=None,
                   help="simulator worker threads (default: env/serial)")
    p.add_argument("--prune", action="store_true",
                   help="enable bounds-based tile pruning")
    p.add_argument("--cell-cutoff", type=float, default=None, metavar="R",
                   help="declare cutoff semantics for --cells (SDH only): "
                        "every pair beyond R clamps into the top bucket")
    p.add_argument("--format", choices=["table", "json"], default="table",
                   help="output format: the human tables (default) or a "
                        "stable-sorted JSON document carrying the metrics "
                        "registry and the run manifest")
    _add_cells_arg(p)
    _add_backend_arg(p)
    _add_fault_args(p)
    _add_cluster_args(p)
    _add_trace_arg(p)
    _add_lifecycle_args(p)
    _add_progress_arg(p)
    p.set_defaults(fn=cmd_stats)

    p = sub.add_parser(
        "profile",
        help="run a problem and print the performance attribution report",
        description="Execute a problem with tracing on and fold the span "
                    "tree plus the access/prune/cluster counters into a "
                    "hierarchical attribution report: simulated time per "
                    "engine layer, a roofline placement (memory- vs "
                    "compute-bound from measured arithmetic intensity), "
                    "the simulated run-seconds decomposition and the "
                    "wall-clock comparison.",
    )
    p.add_argument("--problem", choices=["sdh", "pcf"], default="sdh")
    p.add_argument("-n", type=int, default=4096)
    p.add_argument("--bins", type=int, default=256, help="SDH buckets")
    p.add_argument("--radius", type=float, default=1.0, help="2-PCF radius")
    p.add_argument("--box", type=float, default=10.0)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--device", choices=sorted(PRESETS), default="titan-x")
    p.add_argument("--workers", type=int, default=None,
                   help="simulator worker threads (default: env/serial)")
    p.add_argument("--prune", action="store_true",
                   help="enable bounds-based tile pruning")
    p.add_argument("--cell-cutoff", type=float, default=None, metavar="R",
                   help="declare cutoff semantics for --cells (SDH only)")
    p.add_argument("--format", choices=["table", "json"], default="table",
                   help="output format: the human table (default) or the "
                        "stable-sorted JSON report (byte-identical per "
                        "configuration; wall time excluded)")
    _add_cells_arg(p)
    _add_backend_arg(p)
    _add_fault_args(p)
    _add_cluster_args(p)
    _add_trace_arg(p)
    _add_lifecycle_args(p)
    _add_progress_arg(p)
    p.set_defaults(fn=cmd_profile)

    p = sub.add_parser(
        "blackbox",
        help="post-mortem a checkpoint store's flight recorder",
        description="Read the flight-recorder ring persisted in the last "
                    "durable chunk of a checkpoint store and replay its "
                    "lifecycle events (block progress, retries, failover, "
                    "node losses, chunk commits).  Works on stores torn "
                    "by SIGKILL — the last committed chunk always carries "
                    "the ring as of just before its commit.",
    )
    p.add_argument("dir", help="checkpoint store directory")
    p.add_argument("--last", type=int, default=None, metavar="N",
                   help="show only the last N events")
    p.add_argument("--json", action="store_true",
                   help="emit the events plus store summary as JSON")
    p.set_defaults(fn=cmd_blackbox)

    p = sub.add_parser("figures", help="regenerate paper figures/tables")
    p.add_argument("which", nargs="*", help="fig2 fig4 fig5 fig7 fig9 "
                   "table2 table3 table4 (default: all)")
    p.set_defaults(fn=cmd_figures)

    p = sub.add_parser("devices", help="list GPU presets")
    p.set_defaults(fn=cmd_devices)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except OSError as exc:
        # e.g. an unwritable --trace path or an unreadable store: a
        # message and a status code, not a traceback
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except RunAbandoned as exc:
        print(f"run abandoned: {exc}", file=sys.stderr)
        if getattr(exc, "checkpoint", None) is not None:
            print(
                f"completed chunks are checkpointed in {exc.checkpoint}; "
                f"finish the run with --resume {exc.checkpoint}",
                file=sys.stderr,
            )
        return 3


if __name__ == "__main__":
    sys.exit(main())
