"""repro — reproduction of "Efficient 2-Body Statistics Computation on
GPUs: Parallelization & Beyond" (Pitaksirianan, Nouri & Tu, ICPP 2016).

Layout
------
:mod:`repro.gpusim`
    GPU execution simulator: tracked memory spaces, atomics, warp shuffle,
    occupancy, divergence, contention and the calibrated timing model
    standing in for the paper's Titan X testbed.
:mod:`repro.core`
    The 2-BS framework — problem descriptors, the Naive / SHM-SHM /
    Register-SHM / Register-ROC / shuffle input strategies, the register /
    global-atomic / privatized-shared / direct output strategies, the
    load-balanced intra-block schedule, the analytical model (paper
    Eqs. 2-7) and the model-driven planner.
:mod:`repro.cpusim`
    The multi-core CPU baseline model (OpenMP schedulers + affinity).
:mod:`repro.cpu_ref`
    Real NumPy reference implementations (oracles + wall-clock baselines).
:mod:`repro.apps`
    The 2-BS family: 2-PCF, SDH, RDF, kNN, KDE, joins, Gram matrices, PSS.
:mod:`repro.data`
    Synthetic dataset generators.
:mod:`repro.obs`
    Observability: deterministic execution tracing (Chrome-trace export),
    the run-wide metrics registry and reproducibility manifests.
:mod:`repro.bench`
    Harness regenerating every table and figure of the paper's evaluation.

Quickstart
----------
>>> from repro import apps, data
>>> pts = data.uniform_points(2048, dims=3, box=10.0, seed=1)
>>> hist, res = apps.sdh.compute(pts, bins=128)
>>> hist.sum() == 2048 * 2047 // 2
True
"""

from . import apps, core, cpu_ref, cpusim, data, gpusim, obs

__version__ = "1.0.0"

__all__ = [
    "gpusim", "core", "cpusim", "cpu_ref", "apps", "data", "obs",
    "__version__",
]
