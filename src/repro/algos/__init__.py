"""Advanced (sub-quadratic) 2-BS algorithms layered on the framework.

Section II of the paper: lower-complexity algorithms "share common
computational primitives with the quadratic algorithms therefore they can
be put into the same parallel computing framework."
"""

from .treesdh import TreeSdh, TreeSdhStats

__all__ = ["TreeSdh", "TreeSdhStats"]
