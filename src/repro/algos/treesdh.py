"""Density-map (tree-based) SDH — the advanced algorithm of Section II.

The paper's related work (its own prior line: Tu et al. ICDE'09 [5],
Kumar et al. EDBT'12 [13]) computes the spatial distance histogram by
"pairwise comparisons of tree nodes (instead of individual particles)",
cutting complexity to ~O(N^(3/2)) in 2-D / O(N^(5/3)) in 3-D, and notes
that "the core procedure of pairwise comparison as well as the strategy
to parallelize the algorithm remains the same" — which is why it belongs
in this framework.

Algorithm (DM-SDH):

1. partition space into a uniform grid (one level of the region quad/oct
   tree), counting points per cell;
2. for every cell pair, bound the inter-point distance by the cell
   geometry: if the [min, max] range falls inside a single histogram
   bucket, the pair is *resolved* — add ``count_a * count_b`` to that
   bucket without touching any point;
3. unresolved pairs descend to the next grid level (halved cells);
4. pairs still unresolved at the finest level fall back to exact
   point-to-point computation — the very pairwise primitive the GPU
   kernels of this library accelerate, so :meth:`TreeSdh.simulate_gpu`
   prices the fallback with the same cost model.

The engine is fully array-based: cell pairs live in integer arrays, the
split to children and the point-level fallback both use ragged cartesian
expansion, so million-pair frontiers stay in NumPy.

Exactness: resolution is a certainty argument, not an approximation —
the result equals the brute-force SDH bit for bit (tested).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..gpusim.calibration import (
    Calibration,
    DEFAULT_CALIBRATION,
    SDH_COMPUTE,
)
from ..gpusim.spec import DeviceSpec, TITAN_X
from ..gpusim.timing import TrafficProfile, cycles_from_traffic, simulate_time


@dataclass
class TreeSdhStats:
    """Work accounting: what the tree resolved vs what fell through."""

    levels_used: int = 0
    cell_pair_tests: int = 0  # node-to-node bound evaluations
    resolved_pairs: int = 0  # point pairs settled by node resolution
    fallback_pairs: int = 0  # point pairs computed exactly
    fallback_distance_calls: int = 0

    @property
    def total_pairs(self) -> int:
        return self.resolved_pairs + self.fallback_pairs

    @property
    def resolved_fraction(self) -> float:
        return self.resolved_pairs / self.total_pairs if self.total_pairs else 0.0

    @property
    def work(self) -> int:
        """Comparable 'operations' figure: bound tests + exact distances."""
        return self.cell_pair_tests + self.fallback_distance_calls


def _ragged_cartesian(
    na: np.ndarray, nb: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """For P ragged pairs with group sizes (na[p], nb[p]) return
    (pair index, left rank, right rank) arrays enumerating every
    cross-product element — the workhorse of split and fallback."""
    rep = (na * nb).astype(np.int64)
    total = int(rep.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    pair_idx = np.repeat(np.arange(rep.size), rep)
    base = np.repeat(np.concatenate([[0], np.cumsum(rep)[:-1]]), rep)
    rank = np.arange(total) - base
    nb_of = nb[pair_idx]
    return pair_idx, rank // nb_of, rank % nb_of


class _Level:
    """One grid level: cells as sorted linear ids + per-cell point spans.

    Besides the grid geometry, each occupied cell carries its tight
    axis-aligned bounding box (the spatial-uniformity tightening of the
    paper's ref. [13]): AABB-based distance bounds resolve far more node
    pairs per level than raw cell geometry.
    """

    def __init__(self, points: np.ndarray, box: float, level: int) -> None:
        self.k = 2**level
        self.edge = box / self.k
        dims = points.shape[1]
        coords = np.clip((points / self.edge).astype(np.int64), 0, self.k - 1)
        linear = coords[:, 0]
        for d in range(1, dims):
            linear = linear * self.k + coords[:, d]
        self.order = np.argsort(linear, kind="stable")
        sorted_linear = linear[self.order]
        ids, starts = np.unique(sorted_linear, return_index=True)
        self.cell_ids = ids  # sorted linear ids of occupied cells
        self.starts = np.concatenate([starts, [points.shape[0]]])
        self.counts = np.diff(self.starts)
        # integer coordinates per occupied cell
        self.coords = np.empty((ids.size, dims), dtype=np.int64)
        rem = ids.copy()
        for d in range(dims - 1, -1, -1):
            self.coords[:, d] = rem % self.k
            rem //= self.k
        # tight per-cell bounding boxes
        sorted_pts = points[self.order]
        self.lo = np.minimum.reduceat(sorted_pts, self.starts[:-1], axis=0)
        self.hi = np.maximum.reduceat(sorted_pts, self.starts[:-1], axis=0)

    def points_of(self, cell: int) -> np.ndarray:
        """Original point indices of occupied-cell index ``cell``."""
        return self.order[self.starts[cell] : self.starts[cell + 1]]

    def children_of(self, finer: "_Level") -> Tuple[np.ndarray, np.ndarray]:
        """(flat child indices, offsets) grouping the finer level's
        occupied cells under this level's occupied cells."""
        parent_coords = finer.coords // 2
        parent_linear = parent_coords[:, 0]
        for d in range(1, parent_coords.shape[1]):
            parent_linear = parent_linear * self.k + parent_coords[:, d]
        # finer.cell_ids are sorted by linear id; parents of a sorted
        # child sequence are sorted too, so grouping is a searchsorted
        pos = np.searchsorted(self.cell_ids, parent_linear)
        order = np.argsort(pos, kind="stable")
        flat = order.astype(np.int64)
        offsets = np.searchsorted(pos[order], np.arange(self.cell_ids.size + 1))
        return flat, offsets


class TreeSdh:
    """Density-map SDH over points in a [0, box]^dims region."""

    def __init__(
        self,
        bins: int,
        bucket_width: float,
        box: float,
        dims: int = 3,
        max_levels: int = 8,
        leaf_work: int = 4,
        chunk: int = 2_000_000,
        max_frontier: int = 8_000_000,
    ) -> None:
        if bins <= 0 or bucket_width <= 0 or box <= 0:
            raise ValueError("bins, bucket_width and box must be positive")
        if dims not in (2, 3):
            raise ValueError(f"density-map SDH supports 2-D/3-D, got {dims}-D")
        self.bins = bins
        self.width = bucket_width
        self.box = box
        self.dims = dims
        self.max_levels = max_levels
        #: cell pairs whose point-pair count is at or below this go
        #: straight to exact computation (bound tests would cost more).
        self.leaf_work = leaf_work
        self.chunk = chunk
        #: memory guard: if splitting would push the cell-pair frontier
        #: past this, the heaviest pairs keep descending and the rest
        #: fall back to exact computation.
        self.max_frontier = max_frontier

    def start_level(self) -> int:
        """First level at which node pairs can possibly resolve: the
        worst-case bound spread (~2 cell diagonals) must fit one bucket."""
        level = 1
        while level < self.max_levels:
            edge = self.box / 2**level
            if 2.0 * edge * np.sqrt(self.dims) <= self.width:
                break
            level += 1
        return level

    def _bucket(self, d: np.ndarray) -> np.ndarray:
        return np.minimum((d / self.width).astype(np.int64), self.bins - 1)

    # -- main ----------------------------------------------------------------------
    def compute(
        self, points: np.ndarray, stats: Optional[TreeSdhStats] = None
    ) -> np.ndarray:
        pts = np.ascontiguousarray(np.asarray(points, dtype=np.float64))
        if pts.ndim != 2 or pts.shape[1] != self.dims:
            raise ValueError(f"points must be (n, {self.dims})")
        if (pts < 0).any() or (pts > self.box).any():
            raise ValueError("points must lie inside the [0, box] region")
        stats = stats if stats is not None else TreeSdhStats()
        hist = np.zeros(self.bins, dtype=np.int64)

        level_no = min(self.start_level(), self.max_levels)
        level = _Level(pts, self.box, level_no)
        k = level.cell_ids.size
        ii, jj = np.triu_indices(k)  # includes same-cell pairs
        pa, pb = ii.astype(np.int64), jj.astype(np.int64)

        while pa.size:
            stats.levels_used = level_no
            counts = level.counts
            same = pa == pb
            # -- resolution test on distinct pairs (tight AABB bounds) ----------
            distinct = ~same
            if distinct.any():
                a, b = pa[distinct], pb[distinct]
                gap = np.maximum(
                    np.maximum(level.lo[a] - level.hi[b], level.lo[b] - level.hi[a]),
                    0.0,
                )
                spread = np.maximum(
                    np.abs(level.hi[a] - level.lo[b]),
                    np.abs(level.hi[b] - level.lo[a]),
                )
                lo_d = np.sqrt((gap * gap).sum(axis=1))
                hi_d = np.sqrt((spread * spread).sum(axis=1))
                stats.cell_pair_tests += a.size
                lo_b, hi_b = self._bucket(lo_d), self._bucket(hi_d)
                resolved = lo_b == hi_b
                if resolved.any():
                    w = counts[a[resolved]] * counts[b[resolved]]
                    hist += np.bincount(
                        lo_b[resolved], weights=w, minlength=self.bins
                    ).astype(np.int64)
                    stats.resolved_pairs += int(w.sum())
                keep = np.zeros(pa.size, dtype=bool)
                keep[np.nonzero(distinct)[0][~resolved]] = True
                keep |= same
            else:
                keep = same.copy()
            pa, pb, same = pa[keep], pb[keep], same[keep]
            if pa.size == 0:
                break

            # -- peel off small work to exact fallback ----------------------------
            work = np.where(
                same,
                counts[pa] * (counts[pa] - 1) // 2,
                counts[pa] * counts[pb],
            )
            tiny = (work <= self.leaf_work) | (
                np.full(pa.size, level_no >= self.max_levels)
            )
            if tiny.any():
                self._fallback(pts, level, pa[tiny], pb[tiny], hist, stats)
            pa, pb, same, work = pa[~tiny], pb[~tiny], same[~tiny], work[~tiny]
            if pa.size == 0:
                break

            # -- memory guard: descend only what the frontier can hold -----------
            finer = _Level(pts, self.box, level_no + 1)
            flat, offsets = level.children_of(finer)
            nchild = np.diff(offsets)
            growth = nchild[pa] * nchild[pb]
            if int(growth.sum()) > self.max_frontier:
                # keep the heaviest pairs (most point-work saved per split)
                order = np.argsort(-work, kind="stable")
                allowed = np.cumsum(growth[order]) <= self.max_frontier
                descend = np.zeros(pa.size, dtype=bool)
                descend[order[allowed]] = True
                self._fallback(
                    pts, level, pa[~descend], pb[~descend], hist, stats
                )
                pa, pb, same = pa[descend], pb[descend], same[descend]
                if pa.size == 0:
                    break

            # -- split survivors to the next level ---------------------------------
            ci, li, ri = _ragged_cartesian(nchild[pa], nchild[pb])
            child_a = flat[offsets[pa[ci]] + li]
            child_b = flat[offsets[pb[ci]] + ri]
            # same-parent expansions keep each unordered child pair once
            keep_children = (~same[ci]) | (child_a <= child_b)
            pa = child_a[keep_children]
            pb = child_b[keep_children]
            level = finer
            level_no += 1

        return hist

    # -- exact fallback -------------------------------------------------------------
    def _fallback(self, pts, level: "_Level", pa, pb, hist, stats) -> None:
        """Vectorized exact computation for unresolved cell pairs.

        Processed in batches whose expanded point-pair volume stays under
        ``chunk``, so a large frontier never materializes billions of
        index entries at once.
        """
        counts = level.counts
        same_all = pa == pb
        volume = np.where(
            same_all, counts[pa] * counts[pa], counts[pa] * counts[pb]
        ).astype(np.int64)
        batch_id = np.zeros(pa.size, dtype=np.int64)
        if pa.size:
            cum = np.cumsum(volume)
            batch_id = cum // max(self.chunk, 1)
        for batch in np.unique(batch_id):
            sel = batch_id == batch
            self._fallback_batch(
                pts, level, pa[sel], pb[sel], same_all[sel], hist, stats
            )

    def _fallback_batch(self, pts, level, pa, pb, same, hist, stats) -> None:
        counts = level.counts
        for mask, is_same in ((same, True), (~same, False)):
            if not mask.any():
                continue
            a, b = pa[mask], pb[mask]
            na, nb = counts[a], counts[b]
            ci, li, ri = _ragged_cartesian(na, nb)
            if ci.size == 0:
                continue
            # map ranks to original point indices via the level's spans
            ia = level.order[level.starts[a[ci]] + li]
            ib = level.order[level.starts[b[ci]] + ri]
            if is_same:
                keep = li < ri  # each intra-cell pair once
                ia, ib = ia[keep], ib[keep]
            for s in range(0, ia.size, self.chunk):
                sa = ia[s : s + self.chunk]
                sb = ib[s : s + self.chunk]
                delta = pts[sa] - pts[sb]
                d = np.sqrt((delta * delta).sum(axis=1))
                hist += np.bincount(self._bucket(d), minlength=self.bins)
            stats.fallback_distance_calls += ia.size
            stats.fallback_pairs += ia.size

    # -- GPU pricing ------------------------------------------------------------------
    def simulate_gpu(
        self,
        stats: TreeSdhStats,
        spec: DeviceSpec = TITAN_X,
        calib: Calibration = DEFAULT_CALIBRATION,
    ) -> float:
        """Predicted GPU time for the tree algorithm's heavy stages.

        Section II's point: the fallback stage *is* the pairwise
        primitive, so it is priced with the same Reg-ROC-Out-style traffic
        (per exact pair: ROC reads + one shared atomic); node-pair bound
        tests are priced as compute-plus-stream work.
        """
        fallback = TrafficProfile(
            pairs=stats.fallback_distance_calls,
            compute=SDH_COMPUTE,
            roc_reads=self.dims * stats.fallback_distance_calls,
            shm_atomics=stats.fallback_distance_calls,
        )
        node_tests = TrafficProfile(
            pairs=stats.cell_pair_tests,
            compute=SDH_COMPUTE,
            global_stream=2 * stats.cell_pair_tests,
        )
        seconds = 0.0
        for profile in (fallback, node_tests):
            timing = simulate_time(
                cycles_from_traffic(profile, calib), spec=spec, calib=calib
            )
            seconds += timing.seconds
        return seconds
