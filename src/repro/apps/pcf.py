"""Two-point correlation function (2-PCF) — Type-I 2-BS.

"The 2-PCF requires computation of all pairwise Euclidean distances and
the output is of very small size: one scalar describing the number of
points within a radius" (Section IV-B).  This is the paper's vehicle for
evaluating the pairwise-computation stage (Fig. 2, Table II).

Besides the raw pair count, :func:`correlation_estimate` provides the
standard natural estimator xi(r) = DD/RR - 1 used by the astrophysics
example (data pairs against a random catalogue of the same size).
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from ..core.distances import EUCLIDEAN
from ..core.kernels import ComposedKernel, make_kernel
from ..core.problem import (
    CellSpec,
    OutputClass,
    OutputSpec,
    PruningSpec,
    TwoBodyProblem,
    UpdateKind,
)
from ..core.runner import RunResult, run
from ..gpusim.calibration import PCF_COMPUTE
from ..gpusim.device import Device


def make_problem(radius: float, dims: int = 3) -> TwoBodyProblem:
    """The 2-PCF as a framework problem: count pairs within ``radius``."""
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")

    def within(d: np.ndarray) -> np.ndarray:
        return (d <= radius).astype(np.float64)

    spec = OutputSpec(
        klass=OutputClass.TYPE_I,
        kind=UpdateKind.SCALAR_SUM,
        size_fn=lambda n: 1,
        map_fn=within,
    )
    return TwoBodyProblem(
        name=f"2pcf(r={radius:g})",
        dims=dims,
        pair_fn=EUCLIDEAN,
        output=spec,
        compute_cost=PCF_COMPUTE,
        # the 0/1 indicator is monotone in the distance and exactly zero
        # past the radius: tiles beyond it skip, tiles entirely within it
        # bulk-resolve to nl*nr counted pairs
        pruning=PruningSpec(
            cutoff=radius,
            monotone_map=True,
            metric="euclidean",
            note="indicator weight is 0 beyond the radius, 1 within",
        ),
        # pairs beyond the radius contribute exactly 0 to the count, so
        # the cell-list engine can drop beyond-neighborhood tiles outright
        cells=CellSpec(
            cutoff=radius,
            beyond="zero",
            note="indicator weight is exactly 0 beyond the radius",
        ),
    )


def default_kernel(
    problem: TwoBodyProblem, block_size: int = 1024, prune: bool = False
) -> ComposedKernel:
    """The paper's winner for Type-I: Register-SHM with register output
    (B=1024 per the optimization model the paper cites [23])."""
    return make_kernel(
        problem, "register-shm", "register", block_size=block_size,
        name="Register-SHM+prune" if prune else "Register-SHM", prune=prune,
    )


def count_pairs(
    points: np.ndarray,
    radius: float,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
    prune: bool = False,
    cells: Optional[Any] = None,
    trace=None,
    backend: Optional[str] = None,
    progress=None,
) -> Tuple[int, RunResult]:
    """Count pairs within ``radius`` on the simulated GPU.  ``trace``
    enables execution tracing, ``backend`` selects the host execution
    engine, and ``cells`` selects the uniform-grid cell-list engine
    (see :func:`repro.core.runner.run`)."""
    pts = np.asarray(points, dtype=np.float64)
    problem = make_problem(radius, dims=pts.shape[1])
    k = kernel or default_kernel(problem, prune=prune)
    res = run(problem, pts, kernel=k, device=device, trace=trace,
              backend=backend, cells=cells, progress=progress)
    return int(round(res.result)), res


def correlation_estimate(
    data: np.ndarray,
    randoms: np.ndarray,
    radius: float,
    kernel: Optional[ComposedKernel] = None,
) -> Tuple[float, RunResult, RunResult]:
    """Natural 2-PCF estimator xi(r) = (DD / RR) * (Nr(Nr-1))/(Nd(Nd-1)) - 1.

    ``data`` and ``randoms`` are point sets over the same volume; a
    positive value means clustering in excess of random.
    """
    dd, res_d = count_pairs(data, radius, kernel=kernel)
    rr, res_r = count_pairs(randoms, radius, kernel=kernel)
    nd, nr = len(data), len(randoms)
    if rr == 0:
        raise ValueError("random catalogue produced zero pairs at this radius")
    norm = (nr * (nr - 1)) / (nd * (nd - 1))
    return dd / rr * norm - 1.0, res_d, res_r


def cross_count(
    data_a: np.ndarray,
    data_b: np.ndarray,
    radius: float,
    device: Optional[Device] = None,
) -> int:
    """Pairs within ``radius`` *between* two catalogues (the DR term),
    via the cross-dataset kernel — no self pairs, every (a, b) once."""
    from ..core.cross import CrossKernel

    a = np.asarray(data_a, dtype=np.float64)
    b = np.asarray(data_b, dtype=np.float64)
    problem = make_problem(radius, dims=a.shape[1])
    kernel = CrossKernel(problem, "register-shm", block_size=256)
    result, _ = kernel.execute(device or Device(), a, b)
    return int(round(result))


def landy_szalay(
    data: np.ndarray,
    randoms: np.ndarray,
    radius: float,
) -> float:
    """Landy-Szalay estimator xi = (DD - 2 DR + RR) / RR with all three
    terms normalized per pair — lower variance than the natural
    estimator, and the DR term exercises the cross-dataset kernel."""
    nd, nr = len(data), len(randoms)
    dd, _ = count_pairs(data, radius)
    rr, _ = count_pairs(randoms, radius)
    dr = cross_count(data, randoms, radius)
    if rr == 0:
        raise ValueError("random catalogue produced zero pairs at this radius")
    dd_n = dd / (nd * (nd - 1) / 2)
    rr_n = rr / (nr * (nr - 1) / 2)
    dr_n = dr / (nd * nr)
    return (dd_n - 2 * dr_n + rr_n) / rr_n
