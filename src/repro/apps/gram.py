"""Kernel (Gram) matrix computation — Type-III 2-BS.

"Kernel methods which compute kernel functions for all pairs of data in
the feature space" (Section III-B; the SVM kernel case [7] the paper notes
"can only be solved in quadratic time").  Output is the dense N x N
matrix, written straight to global memory — the quadratic-output extreme
of the paper's taxonomy.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.distances import PairFunction, gaussian_kernel, polynomial_kernel
from ..core.kernels import ComposedKernel, make_kernel
from ..core.problem import OutputClass, OutputSpec, TwoBodyProblem, UpdateKind
from ..core.runner import RunResult, run
from ..gpusim.calibration import GRAM_COMPUTE
from ..gpusim.device import Device


def make_problem(pair_fn: PairFunction, dims: int) -> TwoBodyProblem:
    """Gram-matrix computation for an arbitrary Mercer kernel."""
    spec = OutputSpec(
        klass=OutputClass.TYPE_III,
        kind=UpdateKind.MATRIX,
        size_fn=lambda n: n * n,
    )
    return TwoBodyProblem(
        name=f"gram[{pair_fn.name}]",
        dims=dims,
        pair_fn=pair_fn,
        output=spec,
        compute_cost=GRAM_COMPUTE,
    )


def default_kernel(problem: TwoBodyProblem, block_size: int = 256) -> ComposedKernel:
    return make_kernel(
        problem, "register-shm", "global-direct", block_size=block_size,
        name="Reg-SHM-Gmem",
    )


def compute(
    points: np.ndarray,
    kernel_fn: Optional[PairFunction] = None,
    bandwidth: float = 1.0,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
    unit_diagonal: bool = True,
) -> Tuple[np.ndarray, RunResult]:
    """Dense Gram matrix of ``points`` under ``kernel_fn`` (default RBF).

    Off-diagonal entries come from the pairwise kernel; the diagonal is
    filled on the host (K(x, x) = 1 for the RBF, or evaluated directly).
    """
    pts = np.asarray(points, dtype=np.float64)
    fn = kernel_fn or gaussian_kernel(bandwidth)
    problem = make_problem(fn, dims=pts.shape[1])
    krn = kernel or default_kernel(problem)
    res = run(problem, pts, kernel=krn, device=device)
    matrix = np.asarray(res.result)
    if unit_diagonal:
        np.fill_diagonal(matrix, 1.0)
    else:
        soa = pts.T
        np.fill_diagonal(matrix, np.diag(fn(soa, soa)))
    return matrix, res


def poly_gram(
    points: np.ndarray, degree: int = 2, c: float = 1.0, **kwargs
) -> Tuple[np.ndarray, RunResult]:
    """Polynomial-kernel Gram matrix convenience wrapper."""
    return compute(
        points,
        kernel_fn=polynomial_kernel(degree, c),
        unit_diagonal=False,
        **kwargs,
    )


def cross(
    points_a: np.ndarray,
    points_b: np.ndarray,
    kernel_fn: Optional[PairFunction] = None,
    bandwidth: float = 1.0,
    device: Optional[Device] = None,
) -> np.ndarray:
    """Rectangular kernel matrix K(A, B) — the SVM prediction /
    collaborative-filtering case (users x items) — via the cross kernel."""
    from ..core.cross import CrossKernel

    a = np.asarray(points_a, dtype=np.float64)
    b = np.asarray(points_b, dtype=np.float64)
    fn = kernel_fn or gaussian_kernel(bandwidth)
    problem = make_problem(fn, dims=a.shape[1])
    kernel = CrossKernel(problem, "register-shm", block_size=256)
    matrix, _ = kernel.execute(device or Device(), a, b)
    return matrix
