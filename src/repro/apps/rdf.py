"""Radial distribution function (RDF) — Type-II 2-BS.

"Radial distribution function (RDF), which outputs a normalized form of
SDH" (Section III-B; Levine et al. [4] is the GPU prior art the paper
builds on).  The heavy lifting is the SDH kernel; normalization by ideal-
gas shell counts happens on the host.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.kernels import ComposedKernel
from ..core.runner import RunResult
from ..gpusim.device import Device
from . import sdh as sdh_app


def normalize(
    hist: np.ndarray, n: int, r_max: float, box_volume: float
) -> np.ndarray:
    """g(r) from a distance histogram: counts over ideal-gas expectation."""
    bins = len(hist)
    width = r_max / bins
    edges = np.arange(bins + 1) * width
    shell_vol = 4.0 / 3.0 * np.pi * (edges[1:] ** 3 - edges[:-1] ** 3)
    density = n / box_volume
    ideal = shell_vol * density * n / 2.0
    with np.errstate(divide="ignore", invalid="ignore"):
        return np.where(ideal > 0, hist.astype(np.float64) / ideal, 0.0)


def compute(
    points: np.ndarray,
    bins: int,
    r_max: float,
    box_volume: float,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
    prune: bool = False,
    cells=None,
    periodic_box: Optional[float] = None,
    backend: Optional[str] = None,
) -> Tuple[np.ndarray, np.ndarray, RunResult]:
    """RDF of a particle configuration.

    Returns ``(r_centers, g_of_r, run_result)``.  Distances beyond
    ``r_max`` land in the clamped top bucket, which is dropped from the
    normalized curve (standard practice: analyze r < r_max only).
    ``prune`` enables bounds-based tile pruning on the underlying SDH —
    especially effective here, since every beyond-``r_max`` tile
    bulk-resolves into the overflow bucket.

    ``cells`` selects the uniform-grid cell-list engine — the natural fit
    for RDF, whose declared cutoff is ``r_max``: only 27-neighborhood
    cell pairs are examined, and every skipped pair folds into the
    dropped overflow bucket, leaving the analyzed bins exact.
    ``periodic_box`` (a cubic box side) switches distances to
    minimum-image wrapping — the molecular-dynamics convention — with
    cell adjacency wrapped at the box faces.
    """
    if box_volume <= 0:
        raise ValueError(f"box_volume must be positive, got {box_volume}")
    pts = np.asarray(points, dtype=np.float64)
    # one extra overflow bucket absorbs the SDH clamp (every pair beyond
    # r_max), so the analyzed bins hold exact counts; it is then dropped
    width = r_max / bins
    hist, res = sdh_app.compute(
        pts, bins=bins + 1, max_distance=r_max + width, kernel=kernel,
        device=device, prune=prune, cells=cells, cell_cutoff=r_max,
        periodic_box=periodic_box, backend=backend,
    )
    g = normalize(hist[:bins], len(pts), r_max, box_volume)
    centers = (np.arange(bins) + 0.5) * width
    return centers, g, res
