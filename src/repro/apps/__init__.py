"""2-body-statistics applications built on the framework.

One module per member of the paper's 2-BS family (Sections I and III-B):

======================  =======  ==================================
module                  type     statistic
======================  =======  ==================================
:mod:`~repro.apps.pcf`  Type-I   two-point correlation function
:mod:`~repro.apps.knn`  Type-I   all-point k-nearest neighbours
:mod:`~repro.apps.kde`  Type-I   kernel density / regression
:mod:`~repro.apps.sdh`  Type-II  spatial distance histogram
:mod:`~repro.apps.rdf`  Type-II  radial distribution function
:mod:`~repro.apps.join` Type-III relational band / spatial join
:mod:`~repro.apps.gram` Type-III kernel (Gram) matrix
:mod:`~repro.apps.pss`  Type-III pairwise statistical significance
======================  =======  ==================================
"""

from . import gram, join, kde, knn, pcf, pss, rdf, sdh

__all__ = ["pcf", "sdh", "rdf", "knn", "kde", "join", "gram", "pss"]
