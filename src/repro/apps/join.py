"""Relational (band / theta) join — Type-III 2-BS.

"Relational join, which outputs concatenated tuples ... total number of
output tuples can be quadratic (especially in non-equality joins)"
(Section III-B; He et al. [2] is the GPU prior art).  A self band-join
emits every pair whose key difference is within ``eps``; a spatial
variant joins on Euclidean distance.  Output goes straight to global
memory through an atomic ticket counter.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.distances import EUCLIDEAN, MANHATTAN
from ..core.kernels import ComposedKernel, make_kernel
from ..core.problem import (
    CellSpec,
    OutputClass,
    OutputSpec,
    PruningSpec,
    TwoBodyProblem,
    UpdateKind,
)
from ..core.runner import RunResult, run
from ..gpusim.calibration import JOIN_COMPUTE
from ..gpusim.device import Device


def make_problem(
    eps: float, dims: int = 1, selectivity: float = 0.05
) -> TwoBodyProblem:
    """Self band-join as a framework problem: emit pairs with distance
    (1-D: |a-b|) at most ``eps``."""
    if eps < 0:
        raise ValueError(f"eps must be non-negative, got {eps}")
    spec = OutputSpec(
        klass=OutputClass.TYPE_III,
        kind=UpdateKind.EMIT_PAIRS,
        size_fn=lambda n: n * n,  # worst case
        map_fn=lambda d: d <= eps,
        selectivity=selectivity,
    )
    pair_fn = MANHATTAN if dims == 1 else EUCLIDEAN
    return TwoBodyProblem(
        name=f"band-join(eps={eps:g})",
        dims=dims,
        pair_fn=pair_fn,
        output=spec,
        compute_cost=JOIN_COMPUTE,
        # the join predicate is a monotone indicator: tiles beyond eps
        # skip (constant-False), tiles entirely within eps bulk-emit the
        # full nl*nr cross product without evaluating a distance
        pruning=PruningSpec(
            cutoff=eps,
            monotone_map=True,
            metric="manhattan" if dims == 1 else "euclidean",
            note="band predicate is constant outside/inside eps",
        ),
        # no pair beyond eps is ever emitted, so the cell-list engine can
        # drop beyond-neighborhood tiles without changing the output
        # (eps=0 carries no grid: CellSpec needs a positive cutoff)
        cells=CellSpec(
            cutoff=eps,
            beyond="zero",
            metric="manhattan" if dims == 1 else "euclidean",
            note="band predicate matches nothing beyond eps",
        ) if eps > 0 else None,
    )


def default_kernel(
    problem: TwoBodyProblem, block_size: int = 256, prune: bool = False
) -> ComposedKernel:
    """Type-III default: Register-SHM input (shared memory is free — the
    output needs none) with direct global output."""
    return make_kernel(
        problem, "register-shm", "global-direct", block_size=block_size,
        name="Reg-SHM-Gmem+prune" if prune else "Reg-SHM-Gmem", prune=prune,
    )


def band_join(
    values: np.ndarray,
    eps: float,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
    prune: bool = False,
    cells=None,
) -> Tuple[np.ndarray, RunResult]:
    """Self band-join over 1-D keys; returns sorted (P, 2) index pairs."""
    v = np.asarray(values, dtype=np.float64).reshape(-1, 1)
    problem = make_problem(eps, dims=1)
    krn = kernel or default_kernel(problem, prune=prune)
    res = run(problem, v, kernel=krn, device=device, cells=cells)
    pairs = np.asarray(res.result)
    if pairs.size:
        pairs = np.sort(pairs, axis=1)
        pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
    return pairs, res


def spatial_join(
    points: np.ndarray,
    eps: float,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
    prune: bool = False,
    cells=None,
) -> Tuple[np.ndarray, RunResult]:
    """Self spatial join: pairs within Euclidean distance ``eps``."""
    pts = np.asarray(points, dtype=np.float64)
    problem = make_problem(eps, dims=pts.shape[1])
    krn = kernel or default_kernel(problem, prune=prune)
    res = run(problem, pts, kernel=krn, device=device, cells=cells)
    pairs = np.asarray(res.result)
    if pairs.size:
        pairs = np.sort(pairs, axis=1)
        pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
    return pairs, res


def cross_band_join(
    values_a: np.ndarray,
    values_b: np.ndarray,
    eps: float,
    device: Optional[Device] = None,
) -> np.ndarray:
    """Band join *between two tables* — the paper's actual relational-join
    case ("concatenated tuples from two tables").  Returns (i, j) index
    pairs with |a_i - b_j| <= eps, lexicographically sorted."""
    from ..core.cross import CrossKernel

    a = np.asarray(values_a, dtype=np.float64).reshape(-1, 1)
    b = np.asarray(values_b, dtype=np.float64).reshape(-1, 1)
    problem = make_problem(eps, dims=1)
    kernel = CrossKernel(problem, "register-shm", block_size=256)
    pairs, _ = kernel.execute(device or Device(), a, b)
    if len(pairs):
        pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
    return pairs
