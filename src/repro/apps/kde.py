"""Kernel density estimation / regression — Type-I 2-BS.

"Kernel density/regression, which output ... approximation numbers from
regression" (Section III-B).  Per-point Gaussian kernel sums accumulate in
registers (full-row mode); Nadaraya-Watson regression reuses the same
kernel with weighted sums.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.distances import gaussian_kernel
from ..core.kernels import ComposedKernel, make_kernel
from ..core.problem import (
    CellSpec,
    OutputClass,
    OutputSpec,
    PruningSpec,
    TwoBodyProblem,
    UpdateKind,
)
from ..core.runner import RunResult, run
from ..gpusim.calibration import KDE_COMPUTE
from ..gpusim.device import Device

#: exp(-x) is *exactly* 0.0 in float64 once x exceeds ~745.1 (past the
#: smallest subnormal); at d^2/(2h^2) >= 760 the Gaussian weight underflows
#: to the additive identity, so tiles beyond h*sqrt(2*760) contribute
#: nothing and can be skipped without changing a single output bit.
_UNDERFLOW_EXPONENT = 760.0


def underflow_cutoff(bandwidth: float) -> float:
    """Distance beyond which the Gaussian kernel is exactly 0.0."""
    return bandwidth * float(np.sqrt(2.0 * _UNDERFLOW_EXPONENT))


def make_problem(bandwidth: float, dims: int = 3) -> TwoBodyProblem:
    """Per-point Gaussian kernel sums as a framework problem."""
    spec = OutputSpec(
        klass=OutputClass.TYPE_I,
        kind=UpdateKind.PER_POINT_SUM,
        size_fn=lambda n: n,
    )
    return TwoBodyProblem(
        name=f"kde(h={bandwidth:g})",
        dims=dims,
        pair_fn=gaussian_kernel(bandwidth),
        output=spec,
        compute_cost=KDE_COMPUTE,
        # beyond the float64 underflow horizon the kernel weight is exactly
        # zero, so skipping those tiles preserves bit-identity; no
        # monotone_map — per-point sums have no bulk-resolvable cell
        pruning=PruningSpec(
            cutoff=underflow_cutoff(bandwidth),
            metric="euclidean",
            note="Gaussian weight underflows to exactly 0.0",
        ),
        # same horizon feeds the cell-list engine: every skipped tile
        # would have added exactly 0.0 to each per-point sum
        cells=CellSpec(
            cutoff=underflow_cutoff(bandwidth),
            beyond="zero",
            note="Gaussian weight underflows to exactly 0.0",
        ),
    )


def default_kernel(
    problem: TwoBodyProblem, block_size: int = 256, prune: bool = False
) -> ComposedKernel:
    return make_kernel(
        problem, "register-shm", "register", block_size=block_size,
        name="Register-SHM+prune" if prune else "Register-SHM", prune=prune,
    )


def density(
    points: np.ndarray,
    bandwidth: float,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
    normalize: bool = True,
    prune: bool = False,
    cells=None,
) -> Tuple[np.ndarray, RunResult]:
    """Leave-one-out KDE at every data point.

    With ``normalize`` the raw kernel sums are scaled by the Gaussian
    normalization constant and (N-1).  ``prune`` skips tiles past the
    kernel's float64 underflow horizon — bit-identical under the
    tile-at-a-time engine (``batch_tiles=1``; each skipped tile is an
    exact ``+= 0.0``); the batched engine regroups surviving tiles, so
    its usual float re-association tolerance applies.  ``cells``
    selects the uniform-grid cell-list engine over the same horizon
    (per-point sums re-associate likewise: allclose, not bit-identical,
    against the tile engine — exact within the cell engine itself).
    """
    pts = np.asarray(points, dtype=np.float64)
    n, dims = pts.shape
    problem = make_problem(bandwidth, dims=dims)
    krn = kernel or default_kernel(problem, prune=prune)
    res = run(problem, pts, kernel=krn, device=device, cells=cells)
    sums = res.result
    if normalize:
        const = (2.0 * np.pi * bandwidth * bandwidth) ** (dims / 2.0)
        sums = sums / ((n - 1) * const)
    return sums, res


def regression(
    points: np.ndarray,
    targets: np.ndarray,
    bandwidth: float,
    device: Optional[Device] = None,
) -> Tuple[np.ndarray, RunResult, RunResult]:
    """Leave-one-out Nadaraya-Watson regression.

    yhat(i) = sum_{j != i} K(xi, xj) y_j / sum_{j != i} K(xi, xj),
    computed as two Type-I kernel passes (weighted and unweighted sums).
    """
    pts = np.asarray(points, dtype=np.float64)
    y = np.asarray(targets, dtype=np.float64).ravel()
    if len(y) != len(pts):
        raise ValueError(f"{len(pts)} points but {len(y)} targets")
    denom, res_den = density(pts, bandwidth, device=device, normalize=False)

    # weighted pass: fold the target into an extra coordinate trick is not
    # exact for a product kernel, so run the weighted sum as its own
    # problem with a pair function that scales by the partner's target.
    base = gaussian_kernel(bandwidth)

    def weighted(A: np.ndarray, B: np.ndarray) -> np.ndarray:
        # identify partner columns by matching coordinates is fragile;
        # instead we exploit that the kernel evaluates blocks of the SAME
        # dataset: the last row of the (dims+1)-d input carries y.
        k = base.fn(A[:-1], B[:-1])
        return k * B[-1][None, :]

    from ..core.distances import PairFunction

    wf = PairFunction("gaussian*y", weighted, flops=15, symmetric=False)
    spec = OutputSpec(
        klass=OutputClass.TYPE_I,
        kind=UpdateKind.PER_POINT_SUM,
        size_fn=lambda n: n,
    )
    problem = TwoBodyProblem(
        name="nadaraya-watson",
        dims=pts.shape[1] + 1,
        pair_fn=wf,
        output=spec,
        compute_cost=KDE_COMPUTE,
    )
    krn = make_kernel(problem, "register-shm", "register", block_size=256)
    aug = np.hstack([pts, y[:, None]])
    res_num = run(problem, aug, kernel=krn, device=device)
    numer = res_num.result
    with np.errstate(divide="ignore", invalid="ignore"):
        yhat = np.where(denom > 0, numer / np.where(denom > 0, denom, 1.0), 0.0)
    return yhat, res_num, res_den
