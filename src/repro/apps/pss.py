"""Pairwise statistical significance (PSS) — Type-III 2-BS.

The paper cites Agrawal & Huang [19]: pairwise *alignment* significance
between all sequence pairs, with quadratic output.  True Smith-Waterman
alignment needs sequence data we substitute per DESIGN.md: sequences are
represented by composition profiles (k-mer/position frequency vectors) and
the pair score is a normalized correlation — the same all-pairs access
pattern, compute-per-pair and quadratic-output behaviour, which is what
the paper's Type-III analysis exercises.

Significance is assessed per pair against a permutation-derived null:
z = (s - mu0) / sigma0, with the null moments estimated once on shuffled
profiles.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.distances import PairFunction
from ..core.kernels import ComposedKernel, make_kernel
from ..core.problem import OutputClass, OutputSpec, TwoBodyProblem, UpdateKind
from ..core.runner import RunResult, run
from ..gpusim.calibration import PSS_COMPUTE
from ..gpusim.device import Device


def _score_fn() -> PairFunction:
    def score(A: np.ndarray, B: np.ndarray) -> np.ndarray:
        na = np.linalg.norm(A, axis=0)
        nb = np.linalg.norm(B, axis=0)
        na = np.where(na > 0, na, 1.0)
        nb = np.where(nb > 0, nb, 1.0)
        return (A / na).T @ (B / nb)

    return PairFunction("profile-score", score, flops=20)


def make_problem(dims: int) -> TwoBodyProblem:
    """All-pairs profile-alignment scores as a framework problem."""
    spec = OutputSpec(
        klass=OutputClass.TYPE_III,
        kind=UpdateKind.MATRIX,
        size_fn=lambda n: n * n,
    )
    return TwoBodyProblem(
        name="pss",
        dims=dims,
        pair_fn=_score_fn(),
        output=spec,
        compute_cost=PSS_COMPUTE,
    )


def default_kernel(problem: TwoBodyProblem, block_size: int = 256) -> ComposedKernel:
    return make_kernel(
        problem, "register-roc", "global-direct", block_size=block_size,
        name="Reg-ROC-Gmem",
    )


def null_moments(
    profiles: np.ndarray, n_perm: int = 20, seed: int = 0
) -> Tuple[float, float]:
    """(mu0, sigma0) of the score null: columns of each profile shuffled
    independently, destroying alignment while preserving composition."""
    rng = np.random.default_rng(seed)
    p = np.asarray(profiles, dtype=np.float64)
    fn = _score_fn()
    samples = []
    for _ in range(n_perm):
        shuffled = p.copy()
        for col in range(shuffled.shape[1]):
            rng.shuffle(shuffled[:, col])
        s = fn(shuffled.T, p.T)
        samples.append(s[~np.eye(len(p), dtype=bool)])
    flat = np.concatenate(samples)
    return float(flat.mean()), float(flat.std() + 1e-12)


def significance(
    profiles: np.ndarray,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
    n_perm: int = 20,
    seed: int = 0,
) -> Tuple[np.ndarray, np.ndarray, RunResult]:
    """(scores, z-scores, run result) for all profile pairs."""
    p = np.asarray(profiles, dtype=np.float64)
    problem = make_problem(dims=p.shape[1])
    krn = kernel or default_kernel(problem)
    res = run(problem, p, kernel=krn, device=device)
    scores = np.asarray(res.result)
    np.fill_diagonal(scores, 0.0)
    mu0, sigma0 = null_moments(p, n_perm=n_perm, seed=seed)
    z = (scores - mu0) / sigma0
    np.fill_diagonal(z, 0.0)
    return scores, z, res
