"""Spatial distance histogram (SDH) — Type-II 2-BS.

"SDH also requires computing all pairwise Euclidean distances, but it
outputs a histogram that shows the distribution of all distances computed.
The output size ... normally comes at the level of tens of kilobytes
therefore can be placed in shared memory" (Section IV-D).  This is the
paper's vehicle for the output-stage evaluation (Figs. 4, 5, 7, 9 and
Tables III, IV).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.distances import EUCLIDEAN, periodic_euclidean
from ..core.kernels import ComposedKernel, make_kernel
from ..core.problem import (
    CellSpec,
    OutputClass,
    OutputSpec,
    PruningSpec,
    TwoBodyProblem,
    UpdateKind,
)
from ..core.runner import RunResult, run
from ..data.generators import sdh_bucket_probabilities
from ..gpusim.calibration import SDH_COMPUTE
from ..gpusim.device import Device


def bucket_map(bucket_width: float, bins: int):
    """Distance -> bucket index, clamping the (measure-zero) top edge."""
    if bucket_width <= 0:
        raise ValueError(f"bucket width must be positive, got {bucket_width}")

    def to_bucket(d: np.ndarray) -> np.ndarray:
        # int32 buckets: the histogram fast path sorts/bincounts these by
        # the batch, and the narrow dtype halves that memory traffic.
        # Dividing straight into the int32 buffer (the 'unsafe' cast is
        # the same truncation `.astype` performs) skips the float64
        # intermediate entirely.
        b = np.empty(np.shape(d), dtype=np.int32)
        np.divide(d, bucket_width, out=b, casting="unsafe")
        return np.minimum(b, bins - 1, out=b)

    return to_bucket


def make_problem(
    bins: int,
    max_distance: float,
    dims: int = 3,
    bin_probabilities: Optional[np.ndarray] = None,
    box: Optional[float] = None,
    cell_cutoff: Optional[float] = None,
    periodic_box: Optional[float] = None,
) -> TwoBodyProblem:
    """The SDH as a framework problem.

    ``bin_probabilities`` feeds the analytical contention model; when a
    ``box`` is given for uniform data it is estimated automatically.

    ``cell_cutoff`` declares cutoff semantics for the uniform-grid cell
    engine: every pair farther apart than it must land in the clamped top
    bucket (validated at kernel construction).  ``periodic_box`` switches
    the distance to minimum-image under a cubic box of that side — which
    rules out axis-aligned bounds pruning, so the problem then carries no
    :class:`~repro.core.problem.PruningSpec`.
    """
    if bins <= 0:
        raise ValueError(f"bins must be positive, got {bins}")
    if max_distance <= 0:
        raise ValueError(f"max_distance must be positive, got {max_distance}")
    width = max_distance / bins
    probs = bin_probabilities
    if probs is None and box is not None:
        probs = sdh_bucket_probabilities(bins, box=box, dims=dims)
    spec = OutputSpec(
        klass=OutputClass.TYPE_II,
        kind=UpdateKind.HISTOGRAM,
        size_fn=lambda n: bins,
        map_fn=bucket_map(width, bins),
        bins=bins,
        bin_probabilities=probs,
    )
    if periodic_box is not None:
        pair_fn = periodic_euclidean(periodic_box)
        # axis-aligned block bounds are not valid distance bounds under
        # minimum image (a pair can be close across the box faces)
        pruning = None
    else:
        pair_fn = EUCLIDEAN
        # the bucket map is monotone in the Euclidean distance, so a tile
        # whose distance bounds fall in one bucket (including the clamped
        # top bucket every beyond-max tile lands in) bulk-resolves exactly
        # — the DM-SDH property the tree algorithm exploits
        pruning = PruningSpec(
            monotone_map=True,
            metric="euclidean",
            note="bucket map monotone; beyond-max tiles clamp to top bucket",
        )
    cells = None
    if cell_cutoff is not None:
        cells = CellSpec(
            cutoff=cell_cutoff,
            beyond="clamp",
            box=periodic_box,
            note="beyond-cutoff pairs clamp into the top bucket",
        )
    return TwoBodyProblem(
        name=f"sdh({bins} buckets)",
        dims=dims,
        pair_fn=pair_fn,
        output=spec,
        compute_cost=SDH_COMPUTE,
        pruning=pruning,
        cells=cells,
    )


def default_kernel(
    problem: TwoBodyProblem, block_size: int = 256, prune: bool = False
) -> ComposedKernel:
    """The paper's winner for Type-II: Reg-ROC-Out — ROC tiling keeps
    shared memory free for the privatized histogram (Section IV-D)."""
    return make_kernel(
        problem, "register-roc", "privatized-shm", block_size=block_size,
        name="Reg-ROC-Out+prune" if prune else "Reg-ROC-Out", prune=prune,
    )


def compute(
    points: np.ndarray,
    bins: int,
    max_distance: Optional[float] = None,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
    prune: bool = False,
    cells=None,
    cell_cutoff: Optional[float] = None,
    periodic_box: Optional[float] = None,
    trace=None,
    backend: Optional[str] = None,
    progress=None,
) -> Tuple[np.ndarray, RunResult]:
    """Compute the SDH on the simulated GPU.

    ``max_distance`` defaults to the data's bounding-box diagonal (so no
    distance is clamped).  ``prune`` turns on bounds-based tile pruning
    (bit-identical histogram, fewer pair evaluations on clustered data).
    ``cell_cutoff`` / ``periodic_box`` declare cutoff/periodic semantics
    (see :func:`make_problem`); ``cells`` then selects the uniform-grid
    cell-list engine.  ``trace`` enables execution tracing and
    ``backend`` selects the host execution engine (see
    :func:`repro.core.runner.run`).
    """
    pts = np.asarray(points, dtype=np.float64)
    if max_distance is None:
        span = pts.max(axis=0) - pts.min(axis=0)
        max_distance = float(np.linalg.norm(span)) or 1.0
    problem = make_problem(
        bins, max_distance, dims=pts.shape[1],
        cell_cutoff=cell_cutoff, periodic_box=periodic_box,
    )
    k = kernel or default_kernel(problem, prune=prune)
    res = run(problem, pts, kernel=k, device=device, trace=trace,
              backend=backend, cells=cells, progress=progress)
    return res.result, res
