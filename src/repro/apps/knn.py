"""All-point k-nearest neighbours — Type-I 2-BS (small k).

"Other examples are all-point k-nearest neighbors (when k is small) ...
which output classification results" (Section III-B).  Each thread keeps
its k best candidates in registers; because the output is per-point, every
point must see *all* partners, so the kernel runs in full-row mode (each
unordered pair is evaluated from both endpoints).
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.distances import EUCLIDEAN
from ..core.kernels import ComposedKernel, make_kernel
from ..core.problem import OutputClass, OutputSpec, TwoBodyProblem, UpdateKind
from ..core.runner import RunResult, run
from ..gpusim.calibration import KNN_COMPUTE
from ..gpusim.device import Device


def make_problem(k: int, dims: int = 3) -> TwoBodyProblem:
    """All-point kNN as a framework problem."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    spec = OutputSpec(
        klass=OutputClass.TYPE_I,
        kind=UpdateKind.TOPK,
        size_fn=lambda n: 2 * k * n,
        k=k,
    )
    return TwoBodyProblem(
        name=f"knn(k={k})",
        dims=dims,
        pair_fn=EUCLIDEAN,
        output=spec,
        compute_cost=KNN_COMPUTE,
    )


def default_kernel(problem: TwoBodyProblem, block_size: int = 256) -> ComposedKernel:
    return make_kernel(
        problem, "register-shm", "register", block_size=block_size,
        name="Register-SHM",
    )


def compute(
    points: np.ndarray,
    k: int,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
) -> Tuple[np.ndarray, np.ndarray, RunResult]:
    """(distances, neighbour ids, run result), each array (N, k)."""
    pts = np.asarray(points, dtype=np.float64)
    if k >= len(pts):
        raise ValueError(f"k={k} needs at least k+1 points, got {len(pts)}")
    problem = make_problem(k, dims=pts.shape[1])
    krn = kernel or default_kernel(problem)
    res = run(problem, pts, kernel=krn, device=device)
    dists, ids = res.result
    return dists, ids, res


def outlier_scores(
    points: np.ndarray, k: int, **kwargs
) -> Tuple[np.ndarray, RunResult]:
    """Nonparametric outlier score: mean distance to the k nearest
    neighbours (one of the paper's Section I motivating applications)."""
    dists, _, res = compute(points, k, **kwargs)
    return dists.mean(axis=1), res


def query(
    queries: np.ndarray,
    corpus: np.ndarray,
    k: int,
    device: Optional[Device] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """k nearest corpus points for each query point (classification /
    retrieval form of kNN) via the cross-dataset kernel."""
    from ..core.cross import CrossKernel

    q = np.asarray(queries, dtype=np.float64)
    c = np.asarray(corpus, dtype=np.float64)
    if k > len(c):
        raise ValueError(f"k={k} exceeds corpus size {len(c)}")
    problem = make_problem(k, dims=q.shape[1])
    kernel = CrossKernel(problem, "register-shm", block_size=256)
    (dists, ids), _ = kernel.execute(device or Device(), q, c)
    return dists, ids
