"""Multi-core CPU substrate: the paper's OpenMP baseline, simulated.

Provides the three OpenMP loop schedulers (static/dynamic/guided), the
three thread-affinity policies (scatter/compact/balanced), and a runner
that executes 2-BS problems with per-thread private outputs plus a tree
reduction — functionally exact and with a mechanistic timing model (load
imbalance and SMT contention emerge from the actual schedule/placement).
"""

from .affinity import (
    AFFINITIES,
    AffinityMap,
    balanced_affinity,
    compact_affinity,
    make_affinity,
    scatter_affinity,
)
from .pool import CpuRunInfo, CpuTwoBodyRunner, SUPPORTED_KINDS
from .schedule import (
    Assignment,
    SCHEDULERS,
    dynamic_schedule,
    guided_schedule,
    make_schedule,
    static_schedule,
    triangular_weight,
)
from .spec import CpuSpec, XEON_E5_2640V2

__all__ = [
    "CpuSpec", "XEON_E5_2640V2", "Assignment", "static_schedule",
    "dynamic_schedule", "guided_schedule", "make_schedule", "SCHEDULERS",
    "triangular_weight", "AffinityMap", "compact_affinity",
    "scatter_affinity", "balanced_affinity", "make_affinity", "AFFINITIES",
    "CpuTwoBodyRunner", "CpuRunInfo", "SUPPORTED_KINDS",
]
