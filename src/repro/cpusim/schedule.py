"""OpenMP loop schedulers: static, dynamic, guided.

The paper tunes its CPU baseline across the three OpenMP scheduling modes
and picks *guided* ("selecting a scheduling mode is usually a trade-off
between overhead and load imbalance").  The 2-BS outer loop is triangular —
row ``i`` of an N-point dataset pairs with ``N-1-i`` partners — so static
contiguous partitioning is badly imbalanced, dynamic balances at the price
of one queue transaction per chunk, and guided starts with large chunks
and shrinks them toward the tail.

Each scheduler returns per-thread assignments of ``[start, end)`` chunks
over the iteration space; they are deterministic so tests can assert
coverage, disjointness and the guided decay law.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

Chunk = Tuple[int, int]


@dataclass
class Assignment:
    """Chunks per thread plus bookkeeping for the cost model."""

    per_thread: List[List[Chunk]]

    @property
    def n_threads(self) -> int:
        return len(self.per_thread)

    def chunks_of(self, tid: int) -> List[Chunk]:
        return self.per_thread[tid]

    def total_chunks(self) -> int:
        return sum(len(c) for c in self.per_thread)

    def iterations_of(self, tid: int) -> int:
        return sum(e - s for s, e in self.per_thread[tid])

    def coverage(self) -> List[Chunk]:
        """All chunks, sorted — tests use this for exactness checks."""
        return sorted(c for lst in self.per_thread for c in lst)

    def thread_work(self, weight_fn: Callable[[int, int], float]) -> np.ndarray:
        """Per-thread work under a chunk weight function w(start, end)."""
        return np.array(
            [sum(weight_fn(s, e) for s, e in lst) for lst in self.per_thread]
        )


def static_schedule(
    n_iters: int, n_threads: int, chunk: Optional[int] = None
) -> Assignment:
    """OpenMP ``schedule(static[, chunk])``.

    Without a chunk size the space is split into one contiguous block per
    thread (OpenMP default); with one, chunks are dealt round-robin.
    """
    _check(n_iters, n_threads)
    per: List[List[Chunk]] = [[] for _ in range(n_threads)]
    if chunk is None:
        base = n_iters // n_threads
        rem = n_iters % n_threads
        start = 0
        for t in range(n_threads):
            size = base + (1 if t < rem else 0)
            if size:
                per[t].append((start, start + size))
            start += size
    else:
        if chunk <= 0:
            raise ValueError(f"chunk must be positive, got {chunk}")
        for idx, start in enumerate(range(0, n_iters, chunk)):
            per[idx % n_threads].append((start, min(start + chunk, n_iters)))
    return Assignment(per)


def dynamic_schedule(
    n_iters: int,
    n_threads: int,
    chunk: int = 64,
    weight_fn: Optional[Callable[[int, int], float]] = None,
) -> Assignment:
    """OpenMP ``schedule(dynamic, chunk)``.

    Chunks are handed to whichever thread is idle first.  We simulate the
    race deterministically: each grab goes to the thread with the least
    accumulated work (ties to the lowest id), using ``weight_fn`` as the
    chunk cost (defaults to iteration count).
    """
    _check(n_iters, n_threads)
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    w = weight_fn or (lambda s, e: float(e - s))
    per: List[List[Chunk]] = [[] for _ in range(n_threads)]
    load = np.zeros(n_threads)
    for start in range(0, n_iters, chunk):
        end = min(start + chunk, n_iters)
        t = int(np.argmin(load))
        per[t].append((start, end))
        load[t] += w(start, end)
    return Assignment(per)


def guided_schedule(
    n_iters: int,
    n_threads: int,
    min_chunk: int = 1,
    weight_fn: Optional[Callable[[int, int], float]] = None,
) -> Assignment:
    """OpenMP ``schedule(guided[, min_chunk])``.

    Chunk sizes decay geometrically: each grab takes
    ``max(remaining / (2 * n_threads), min_chunk)`` iterations — the
    Intel-runtime division by 2T, which keeps even a maximally
    front-loaded loop (like the 2-BS triangular loop, whose early rows
    carry the most pairs) from overloading whoever grabs the first chunk.
    Assignment uses the same least-loaded simulation as
    :func:`dynamic_schedule`.
    """
    _check(n_iters, n_threads)
    if min_chunk <= 0:
        raise ValueError(f"min_chunk must be positive, got {min_chunk}")
    w = weight_fn or (lambda s, e: float(e - s))
    per: List[List[Chunk]] = [[] for _ in range(n_threads)]
    load = np.zeros(n_threads)
    start = 0
    while start < n_iters:
        remaining = n_iters - start
        denom = 2 * n_threads
        size = max((remaining + denom - 1) // denom, min_chunk)
        size = min(size, remaining)
        end = start + size
        t = int(np.argmin(load))
        per[t].append((start, end))
        load[t] += w(start, end)
        start = end
    return Assignment(per)


SCHEDULERS = {
    "static": static_schedule,
    "dynamic": dynamic_schedule,
    "guided": guided_schedule,
}


def make_schedule(
    name: str, n_iters: int, n_threads: int, **kwargs
) -> Assignment:
    """Build a schedule by OpenMP mode name."""
    try:
        fn = SCHEDULERS[name]
    except KeyError:
        raise KeyError(
            f"unknown scheduler {name!r}; available: {sorted(SCHEDULERS)}"
        ) from None
    return fn(n_iters, n_threads, **kwargs)


def triangular_weight(n: int) -> Callable[[int, int], float]:
    """Chunk cost for the 2-BS outer loop: row i costs N-1-i pairs."""

    def weight(s: int, e: int) -> float:
        # sum_{i=s}^{e-1} (n - 1 - i)
        cnt = e - s
        return cnt * (n - 1) - (s + e - 1) * cnt / 2.0

    return weight


def _check(n_iters: int, n_threads: int) -> None:
    if n_iters < 0:
        raise ValueError(f"n_iters must be >= 0, got {n_iters}")
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
