"""Thread-affinity policies: scatter, compact, balanced.

The paper compares the three OpenMP/KMP affinity modes and selects
*balanced* for its CPU baseline.  A policy maps T software threads onto
(core, hyper-thread) slots:

* **compact** — fill every hardware thread of a core before moving on
  (good locality, poor throughput while cores sit idle);
* **scatter** — round-robin across cores first, then across sockets, so
  siblings land far apart (thread i and i+1 never share a core until all
  cores are taken);
* **balanced** — spread across cores like scatter, but keep consecutive
  thread ids adjacent (siblings share a core once threads exceed cores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .spec import CpuSpec

Placement = Tuple[int, int]  # (core, hw_thread)


@dataclass(frozen=True)
class AffinityMap:
    """Thread id -> (core, hw-thread) placement."""

    policy: str
    placements: Tuple[Placement, ...]

    def core_of(self, tid: int) -> int:
        return self.placements[tid][0]

    def threads_per_core_used(self, spec: CpuSpec) -> List[int]:
        counts = [0] * spec.physical_cores
        for core, _ in self.placements:
            counts[core] += 1
        return counts

    def effective_parallelism(self, spec: CpuSpec) -> float:
        """Core-equivalents delivered: the first hw thread of a core is
        worth 1.0, each extra sibling adds ``smt_yield``."""
        total = 0.0
        for used in self.threads_per_core_used(spec):
            if used:
                total += 1.0 + spec.smt_yield * (used - 1)
        return total


def _check(spec: CpuSpec, n_threads: int) -> None:
    if n_threads <= 0:
        raise ValueError(f"n_threads must be positive, got {n_threads}")
    if n_threads > spec.hardware_threads:
        raise ValueError(
            f"{n_threads} threads exceed {spec.hardware_threads} hardware threads"
        )


def compact_affinity(spec: CpuSpec, n_threads: int) -> AffinityMap:
    _check(spec, n_threads)
    placements = []
    for tid in range(n_threads):
        placements.append((tid // spec.threads_per_core, tid % spec.threads_per_core))
    return AffinityMap("compact", tuple(placements))


def scatter_affinity(spec: CpuSpec, n_threads: int) -> AffinityMap:
    _check(spec, n_threads)
    placements = []
    for tid in range(n_threads):
        core = tid % spec.physical_cores
        hw = tid // spec.physical_cores
        placements.append((core, hw))
    return AffinityMap("scatter", tuple(placements))


def balanced_affinity(spec: CpuSpec, n_threads: int) -> AffinityMap:
    _check(spec, n_threads)
    # distribute threads as evenly as possible over cores, consecutive ids
    # staying adjacent: core c receives ceil/floor(n/cores) consecutive ids
    cores = spec.physical_cores
    used_cores = min(cores, n_threads)
    base = n_threads // used_cores
    rem = n_threads % used_cores
    placements: List[Placement] = []
    tid = 0
    for core in range(used_cores):
        count = base + (1 if core < rem else 0)
        for hw in range(count):
            placements.append((core, hw))
            tid += 1
    return AffinityMap("balanced", tuple(placements))


AFFINITIES = {
    "compact": compact_affinity,
    "scatter": scatter_affinity,
    "balanced": balanced_affinity,
}


def make_affinity(policy: str, spec: CpuSpec, n_threads: int) -> AffinityMap:
    """Build an affinity map by policy name."""
    try:
        fn = AFFINITIES[policy]
    except KeyError:
        raise KeyError(
            f"unknown affinity policy {policy!r}; available: {sorted(AFFINITIES)}"
        ) from None
    return fn(spec, n_threads)
