"""Functional multi-threaded CPU 2-BS execution (the OpenMP-model runner).

Mirrors the paper's optimized CPU program (Section IV-D): the triangular
outer loop is partitioned by an OpenMP scheduler, every thread accumulates
into a *private* copy of the output ("every thread is given an independent
copy of the output histogram"), and a parallel reduction combines the
copies after all distance calls return.

Execution is deterministic and chunk-faithful: the work each simulated
thread performs is exactly its scheduled chunks, so load-imbalance numbers
come from real assignments, not constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

import numpy as np

from ..core.problem import TwoBodyProblem, UpdateKind, as_soa
from ..gpusim.calibration import CpuCalibration, DEFAULT_CPU_CALIBRATION
from .affinity import AffinityMap, make_affinity
from .schedule import Assignment, make_schedule, triangular_weight
from .spec import CpuSpec, XEON_E5_2640V2

SUPPORTED_KINDS = frozenset({UpdateKind.HISTOGRAM, UpdateKind.SCALAR_SUM})


@dataclass
class CpuRunInfo:
    """Execution metadata: schedule, placements, imbalance, simulated time."""

    n_threads: int
    scheduler: str
    affinity: str
    assignment: Assignment
    affinity_map: AffinityMap
    thread_pairs: np.ndarray  # useful work per thread
    seconds: float

    @property
    def makespan_pairs(self) -> float:
        return float(self.thread_pairs.max()) if self.thread_pairs.size else 0.0

    @property
    def imbalance(self) -> float:
        """makespan / mean: 1.0 is perfectly balanced."""
        mean = self.thread_pairs.mean() if self.thread_pairs.size else 0.0
        return float(self.makespan_pairs / mean) if mean else 1.0


class CpuTwoBodyRunner:
    """The paper's CPU baseline: schedulers x affinity x privatization."""

    def __init__(
        self,
        problem: TwoBodyProblem,
        spec: CpuSpec = XEON_E5_2640V2,
        n_threads: Optional[int] = None,
        scheduler: str = "guided",
        affinity: str = "balanced",
        chunk: Optional[int] = None,
        calib: CpuCalibration = DEFAULT_CPU_CALIBRATION,
        cycles_per_pair: Optional[float] = None,
    ) -> None:
        if problem.output.kind not in SUPPORTED_KINDS:
            raise ValueError(
                f"CPU baseline supports {sorted(k.value for k in SUPPORTED_KINDS)}"
                f" outputs, not {problem.output.kind.value!r}"
            )
        self.problem = problem
        self.spec = spec
        self.n_threads = n_threads or spec.hardware_threads
        self.scheduler = scheduler
        self.affinity = affinity
        self.chunk = chunk
        self.calib = calib
        if cycles_per_pair is not None:
            self.cycles_per_pair = cycles_per_pair
        elif problem.output.kind is UpdateKind.HISTOGRAM:
            self.cycles_per_pair = calib.cycles_per_pair_sdh
        else:
            self.cycles_per_pair = calib.cycles_per_pair_pcf

    # -- scheduling -------------------------------------------------------------
    def schedule(self, n: int) -> Assignment:
        kwargs: Dict[str, Any] = {}
        weight = triangular_weight(n)
        if self.scheduler == "static":
            if self.chunk is not None:
                kwargs["chunk"] = self.chunk
        elif self.scheduler == "dynamic":
            kwargs["chunk"] = self.chunk or 64
            kwargs["weight_fn"] = weight
        else:  # guided
            kwargs["min_chunk"] = self.chunk or 16
            kwargs["weight_fn"] = weight
        return make_schedule(self.scheduler, n, self.n_threads, **kwargs)

    # -- functional execution ------------------------------------------------------
    def run(self, points: np.ndarray) -> tuple[Any, CpuRunInfo]:
        """Execute exactly as scheduled; returns (result, run info)."""
        soa = as_soa(points)
        dims, n = soa.shape
        if dims != self.problem.dims:
            raise ValueError(
                f"problem expects {self.problem.dims}-d points, got {dims}-d"
            )
        assignment = self.schedule(n)
        out = self.problem.output
        privates = []
        for tid in range(self.n_threads):
            if out.kind is UpdateKind.HISTOGRAM:
                priv = np.zeros(out.bins, dtype=np.int64)
            else:
                priv = np.zeros(1)
            for s, e in assignment.chunks_of(tid):
                self._process_chunk(soa, s, e, priv)
            privates.append(priv)
        # parallel reduction of private copies (here: a tree fold)
        result = self._reduce(privates)
        info = self._info(n, assignment)
        return result, info

    def _process_chunk(self, soa: np.ndarray, s: int, e: int, priv: np.ndarray) -> None:
        n = soa.shape[1]
        if s >= n - 1:
            return
        rows = soa[:, s:e]
        vals = self.problem.pair_fn(rows, soa)  # (e-s, n)
        i_idx = np.arange(s, e)[:, None]
        mask = np.arange(n)[None, :] > i_idx
        out = self.problem.output
        if out.kind is UpdateKind.HISTOGRAM:
            bins = np.asarray(out.map_fn(vals), dtype=np.int64)[mask]
            if bins.size:
                if bins.min() < 0 or bins.max() >= out.bins:
                    raise IndexError(
                        f"bin index outside [0, {out.bins}): "
                        f"[{bins.min()}, {bins.max()}]"
                    )
                priv += np.bincount(bins, minlength=out.bins)
        else:
            weights = np.asarray(out.map_fn(vals), dtype=np.float64)
            priv[0] += float(np.where(mask, weights, 0.0).sum())

    def _reduce(self, privates):
        """Pairwise tree reduction, as a real parallel combine would run."""
        work = list(privates)
        while len(work) > 1:
            merged = []
            for a, b in zip(work[::2], work[1::2]):
                merged.append(a + b)
            if len(work) % 2:
                merged.append(work[-1])
            work = merged
        total = work[0]
        if self.problem.output.kind is UpdateKind.SCALAR_SUM:
            return float(total[0])
        return total

    # -- analytical timing ---------------------------------------------------------
    def _info(self, n: int, assignment: Assignment) -> CpuRunInfo:
        weight = triangular_weight(n)
        thread_pairs = assignment.thread_work(weight)
        amap = make_affinity(self.affinity, self.spec, self.n_threads)
        seconds = self._seconds(n, assignment, thread_pairs, amap)
        return CpuRunInfo(
            n_threads=self.n_threads,
            scheduler=self.scheduler,
            affinity=self.affinity,
            assignment=assignment,
            affinity_map=amap,
            thread_pairs=thread_pairs,
            seconds=seconds,
        )

    def _seconds(
        self,
        n: int,
        assignment: Assignment,
        thread_pairs: np.ndarray,
        amap: AffinityMap,
    ) -> float:
        spec, calib = self.spec, self.calib
        # rate of each thread: sharing a core splits it, SMT gives some back
        core_occupancy = amap.threads_per_core_used(spec)
        thread_seconds = np.zeros(self.n_threads)
        for tid in range(self.n_threads):
            core = amap.core_of(tid)
            k = core_occupancy[core]
            rate = spec.clock_hz * (1.0 + spec.smt_yield * (k - 1)) / k
            cycles = (
                thread_pairs[tid] * self.cycles_per_pair
                + len(assignment.chunks_of(tid)) * calib.chunk_overhead_cycles
            )
            thread_seconds[tid] = cycles / rate
        out_elems = self.problem.output.size(n)
        reduction = (
            out_elems
            * np.ceil(np.log2(max(self.n_threads, 2)))
            * calib.reduction_cycles_per_elem
            / spec.clock_hz
        )
        return float(thread_seconds.max() + reduction)

    def simulate(self, n: int) -> CpuRunInfo:
        """Timing/imbalance prediction without executing the pair loop."""
        return self._info(n, self.schedule(n))
