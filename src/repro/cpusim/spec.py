"""CPU specification for the multi-core baseline (Section IV-D).

The paper's testbed CPU is an Intel Xeon E5-2640 v2: 8 cores / 16
hyper-threads at 2.0 GHz.  The topology matters for the thread-affinity
policies (scatter / compact / balanced) the paper compares.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CpuSpec:
    """Static description of a simulated multi-core CPU."""

    name: str = "Intel Xeon E5-2640 v2"
    sockets: int = 1
    cores_per_socket: int = 8
    threads_per_core: int = 2  # hyper-threading
    clock_hz: float = 2.0e9
    #: throughput gain of the second hardware thread on one core (an HT
    #: sibling adds ~25-30%, not 100%).
    smt_yield: float = 0.3

    @property
    def physical_cores(self) -> int:
        return self.sockets * self.cores_per_socket

    @property
    def hardware_threads(self) -> int:
        return self.physical_cores * self.threads_per_core

    def slot(self, core: int, hw_thread: int) -> tuple[int, int]:
        """(socket, global hw-thread id) of a placement, with checks."""
        if not 0 <= core < self.physical_cores:
            raise ValueError(f"core {core} out of range [0, {self.physical_cores})")
        if not 0 <= hw_thread < self.threads_per_core:
            raise ValueError(
                f"hw thread {hw_thread} out of range [0, {self.threads_per_core})"
            )
        return core // self.cores_per_socket, core * self.threads_per_core + hw_thread


XEON_E5_2640V2 = CpuSpec()
