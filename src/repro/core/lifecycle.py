"""Run-lifecycle controls: deadlines, cooperative cancellation, watchdog.

Long 2-BS runs (cosmology-scale SDH/2PCF, the service layer's admitted
jobs) need to stop *cleanly*: a deadline breach or an operator cancel
must not tear the process down mid-merge, it must surface at a safe
point — between blocks, between checkpoint chunks, between supervisor
retries — with every completed unit of work still intact.  This module
holds the primitives the engine threads through those safe points:

* :class:`Deadline` — a wall-clock budget.  ``check()`` raises
  :class:`DeadlineExceeded` once the budget is spent; ``fits(extra)``
  lets the resilience supervisor refuse to *start* a retry that cannot
  finish inside the remaining budget.
* :class:`CancelToken` — a thread-safe cooperative cancel flag.
  ``check()`` raises :class:`RunCancelled` after ``cancel()`` was
  called (from another thread, a signal handler, a service scheduler).
* :class:`RunAbandoned` — the common base of both exceptions.  When a
  checkpointed run is abandoned, the checkpoint driver attaches the run
  directory (``exc.checkpoint``) and the lifecycle-annotated
  :class:`~repro.core.resilience.ResilienceReport` (``exc.report``) so
  callers can print a resume hint instead of losing the work.

The engine layers (``gpusim.device``, ``gpusim.parallel``,
``gpusim.procpool``) never import this module: they duck-type the
objects — anything with a ``check()`` method works — which keeps the
``gpusim`` package free of ``core`` imports.  Deadlines survive a
``fork`` (the process-pool backend) because ``time.monotonic`` is a
system-wide clock on the platforms the pool supports.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional


class RunAbandoned(RuntimeError):
    """A run stopped before completing.

    ``checkpoint`` is the run directory holding the completed chunks
    (``None`` when the run was not checkpointed) and ``report`` the
    resilience report recorded up to the stop — both attached by the
    checkpoint driver before the exception leaves :func:`~repro.core.
    runner.run`.
    """

    def __init__(self, message: str, *, checkpoint=None, report=None):
        super().__init__(message)
        self.checkpoint = checkpoint
        self.report = report


class RunCancelled(RunAbandoned):
    """The run's :class:`CancelToken` was cancelled."""


class DeadlineExceeded(RunAbandoned):
    """The run's :class:`Deadline` budget is spent."""


class CancelToken:
    """Cooperative cancellation flag, safe to trip from any thread.

    The engine polls ``check()`` at block boundaries; the process-pool
    parent polls it while waiting on workers.  The flag does **not**
    propagate into already-forked pool workers (each child has its own
    copy of the event) — the parent kills and reaps them instead.
    """

    def __init__(self) -> None:
        self._event = threading.Event()

    def cancel(self) -> None:
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        if self._event.is_set():
            raise RunCancelled("run cancelled")


class Deadline:
    """Wall-clock budget for one run, started at construction.

    ``clock`` is injectable for deterministic tests (defaults to
    ``time.monotonic``, which is shared across ``fork`` children so the
    process-pool backend observes the same budget as its parent).
    """

    def __init__(
        self,
        seconds: float,
        *,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.seconds = float(seconds)
        if self.seconds <= 0.0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        self._clock = clock
        self._t0 = clock()

    def remaining(self) -> float:
        """Seconds left in the budget (negative once spent)."""
        return self.seconds - (self._clock() - self._t0)

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0

    def fits(self, extra: float) -> bool:
        """Whether ``extra`` more seconds fit inside the budget — the
        supervisor's pre-retry gate."""
        return self.remaining() > extra

    def check(self) -> None:
        if self.expired:
            raise DeadlineExceeded(
                f"deadline of {self.seconds:.3f}s exceeded"
            )

    @classmethod
    def coerce(cls, value) -> "Optional[Deadline]":
        """``None`` passes through, a :class:`Deadline` is used as-is, a
        number becomes a fresh budget starting now."""
        if value is None or isinstance(value, cls):
            return value
        return cls(float(value))


def check_lifecycle(deadline=None, cancel=None) -> None:
    """Poll both controls (either may be ``None``).  Cancellation wins
    over the deadline when both have tripped — an operator's explicit
    cancel is the more specific signal."""
    if cancel is not None:
        cancel.check()
    if deadline is not None:
        deadline.check()
