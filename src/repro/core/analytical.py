"""The paper's analytical access-count model (Section IV-B/IV-D, Eqs. 2-7).

Two layers:

* ``paper_eq*`` — the formulas exactly as printed, in the paper's units
  (accesses counted per *datum*, i.e. per multi-dimensional point);
* ``exact_*`` — closed-form counts matching the simulator's functional
  counters access-for-access (element units = datum units x dims, plus the
  tile-load writes and the intra-block reload the printed formulas elide).

Tests cross-validate the exact layer against functional runs, and check
the paper-layer formulas agree with the exact layer on the terms they
model (the dominant O(N^2) read terms).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

import numpy as np

from .tiling import BlockDecomposition


# -- formulas as printed -------------------------------------------------------

def paper_eq1_num_blocks(n: int, b: int) -> float:
    """Eq. 1: M = N / B."""
    return n / b


def paper_eq2_naive_global(n: int) -> int:
    """Eq. 2: N + sum_{i=1..N} (N - i) global accesses for Naive."""
    return n + n * (n - 1) // 2


def paper_eq3_tiled_global(n: int, b: int) -> int:
    """Eq. 3: N + sum_{i=1..M} (M - i) B global accesses for the tiled
    kernels (tile loads only)."""
    m = n // b
    return n + b * m * (m - 1) // 2


def paper_eq4_shm_shm_shared(n: int, b: int) -> int:
    """Eq. 4: shared-memory accesses of SHM-SHM — two reads (L[t] and R[j])
    per distance evaluation, inter- plus intra-block."""
    m = n // b
    inter = b * b * m * (m - 1) // 2
    intra = m * b * (b - 1) // 2
    return 2 * (inter + intra)


def paper_eq5_register_shm_shared(n: int, b: int) -> int:
    """Eq. 5: Register-SHM halves Eq. 4 — one shared read per evaluation."""
    return paper_eq4_shm_shm_shared(n, b) // 2


def paper_eq6_update_stage(n: int, b: int, c_shm_atomic: float) -> float:
    """Eq. 6: cost of the privatized update stage — one shared-memory
    atomic per distance evaluation (the printed sum's intent), priced at
    C_shmAtomic."""
    return (n * (n - 1) / 2) * c_shm_atomic


def paper_eq7_reduction_stage(
    hs: int, m: int, c_gw: float, c_shm_r: float, c_gr: float
) -> float:
    """Eq. 7: Hs * [M (Cgw + Cshmr + Cgr) + Cgw] — combining M private
    output copies into the final Hs-element result."""
    return hs * (m * (c_gw + c_shm_r + c_gr) + c_gw)


def global_access_reduction(n: int, b: int, hs: int) -> tuple[int, int]:
    """Section IV-D's headline: privatization cuts global accesses in the
    output path from N^2-scale to Hs (2M + 1).  Returns (before, after)."""
    m = n // b
    return n * (n - 1) // 2, hs * (2 * m + 1)


# -- exact counts (element units, validated against functional runs) ---------

@dataclass(frozen=True)
class StageCounts:
    """Exact per-space access counts for the pairwise stage of one kernel."""

    global_reads: int = 0
    global_writes: int = 0
    shm_reads: int = 0
    shm_writes: int = 0
    roc_reads: int = 0
    shuffles: int = 0


def _block_sizes(n: int, b: int) -> np.ndarray:
    dec = BlockDecomposition(n, b)
    sizes = np.full(dec.num_blocks, b, dtype=np.int64)
    sizes[-1] = n - (dec.num_blocks - 1) * b
    return sizes


def _geometry(n: int, b: int) -> tuple[BlockDecomposition, int, int, int]:
    """(decomposition, inter pairs, intra pairs, M) in closed/vectorized
    O(M) form — figure sweeps evaluate this at M in the thousands."""
    dec = BlockDecomposition(n, b)
    sizes = _block_sizes(n, b)
    intra_pairs = int((sizes * (sizes - 1) // 2).sum())
    inter_pairs = n * (n - 1) // 2 - intra_pairs
    return dec, inter_pairs, intra_pairs, dec.num_blocks


def _tile_points(n: int, b: int) -> int:
    """Points staged by R-tile loads: block r is streamed once per
    lower-indexed anchor, so the total is sum_r r * size_r."""
    sizes = _block_sizes(n, b)
    return int((np.arange(sizes.size, dtype=np.int64) * sizes).sum())


@lru_cache(maxsize=4096)
def exact_naive(n: int, dims: int) -> StageCounts:
    """Naive (Algorithm 1): one global point-read for currentPt, then one
    global point-read per pair."""
    pairs = n * (n - 1) // 2
    return StageCounts(global_reads=dims * (n + pairs))


@lru_cache(maxsize=4096)
def exact_shm_shm(n: int, b: int, dims: int) -> StageCounts:
    """SHM-SHM: cooperative tile loads (global read + shared write) for L
    and every R; two shared point-reads per pair."""
    _, inter, intra, m = _geometry(n, b)
    loads = n + _tile_points(n, b)  # L once per block + each streamed R tile
    return StageCounts(
        global_reads=dims * loads,
        shm_writes=dims * loads,
        shm_reads=dims * 2 * (inter + intra),
    )


@lru_cache(maxsize=4096)
def exact_register_shm(n: int, b: int, dims: int) -> StageCounts:
    """Register-SHM (Algorithm 3): anchor datum read straight into
    registers (global), R tiles staged in shared memory, one shared
    point-read per pair; the intra-block pass reloads L into R's buffer
    (Algorithm 3 line 10)."""
    _, inter, intra, m = _geometry(n, b)
    sizes = _block_sizes(n, b)
    # R tiles + the L reload for the intra pass (blocks of a single point
    # have no intra pass and skip the reload)
    reload_points = int(sizes[sizes > 1].sum())
    staged = _tile_points(n, b) + reload_points
    return StageCounts(
        global_reads=dims * (n + staged),
        shm_writes=dims * staged,
        shm_reads=dims * (inter + intra),
    )


@lru_cache(maxsize=4096)
def exact_register_roc(n: int, b: int, dims: int) -> StageCounts:
    """Register-ROC: anchor in registers, every partner read served by the
    read-only data cache (no staging writes — the ROC is hardware-managed)."""
    _, inter, intra, m = _geometry(n, b)
    return StageCounts(
        global_reads=dims * n,
        roc_reads=dims * (inter + intra),
    )


@lru_cache(maxsize=4096)
def exact_shuffle(n: int, b: int, dims: int, warp: int = 32) -> StageCounts:
    """Shuffle tiling (Algorithm 4): partner data moves through registers.

    Every warp must walk the whole partner block itself —
    ``ceil(nL/warp) * nR`` loads per block pair — then broadcasts each
    loaded datum to all ``warp`` lanes; broadcasts are issued for every
    evaluation slot regardless of the intra-block mask.

    Vectorized over blocks: with ``suffix[blk] = sum_{r>blk} size_r`` and
    ``suffix_ceil[blk] = sum_{r>blk} ceil(size_r/warp)`` the double loop
    collapses to O(M) prefix sums.
    """
    sizes = _block_sizes(n, b)
    wl = (sizes + warp - 1) // warp
    ceil_r = wl  # ceil(size_r / warp), same array
    suffix = n - np.cumsum(sizes)  # sum of sizes after each block
    suffix_ceil = ceil_r.sum() - np.cumsum(ceil_r)
    inner = sizes > 1  # single-point blocks skip the intra pass
    loads = int((wl * suffix).sum() + (wl * sizes)[inner].sum())
    shuffles = int(
        (sizes * warp * suffix_ceil).sum()
        + (sizes * warp * ceil_r)[inner].sum()
    )
    return StageCounts(
        global_reads=dims * (n + loads),
        shuffles=dims * shuffles,
    )


# -- pruned-tile accounting ----------------------------------------------------
#
# Bounds pruning (core/bounds.py) removes whole inter-block tiles from the
# pairwise stage before any per-point work: *skipped* tiles vanish, and
# *bulk-resolved* tiles shrink to one O(1) output update.  The analytical
# model absorbs this through an *effective geometry*: the same closed-form
# per-strategy traffic expressions, evaluated on pair/tile-load counts
# with the pruned population subtracted.  Bulk updates themselves are
# data-output work and are priced by the output strategies (one atomic per
# bulk tile), keeping ``simulate()`` predictions and functional counters
# in exact agreement.


def pruned_geometry(geom, stats):
    """Effective :class:`~repro.core.kernels.base.PairGeometry` after
    pruning: inter pairs and R-tile staging shrink by what the bounds
    eliminated (``stats`` is a :class:`~repro.core.bounds.PruneStats`).
    Intra-block work is untouched — the diagonal tile's lower distance
    bound is always zero, so it is never pruned."""
    inter = geom.inter_pairs - stats.pairs_skipped - stats.pairs_bulk
    loads = geom.tile_loads_points - stats.tile_points_pruned
    if inter < 0 or loads < 0:
        raise ValueError(
            f"prune stats exceed geometry: inter={inter}, tile_loads={loads}"
        )
    return replace(geom, inter_pairs=inter, tile_loads_points=loads)


def cells_geometry(geom, stats):
    """Effective :class:`~repro.core.kernels.base.PairGeometry` under the
    cell-list engine: inter pairs and R-tile staging shrink by what cell
    adjacency ruled out (``stats`` is a
    :class:`~repro.core.cells.CellStats`).  Residual clamp folds are
    data-output work, priced by the output strategies — mirroring how
    :func:`pruned_geometry` leaves bulk updates to them.  Intra-block
    work is untouched: a block is always in its own neighborhood."""
    inter = geom.inter_pairs - stats.pairs_skipped
    loads = geom.tile_loads_points - stats.tile_points_skipped
    if inter < 0 or loads < 0:
        raise ValueError(
            f"cell stats exceed geometry: inter={inter}, tile_loads={loads}"
        )
    return replace(geom, inter_pairs=inter, tile_loads_points=loads)


EXACT_BY_STRATEGY = {
    "naive": exact_naive,
    "shm-shm": exact_shm_shm,
    "register-shm": exact_register_shm,
    "register-roc": exact_register_roc,
    "shuffle": exact_shuffle,
}
