"""Block decomposition and pair-enumeration schedules (Fig. 1 / Fig. 6).

The paper divides the input into ``M = N/B`` blocks (Eq. 1); each thread
block anchors one data block ``L`` and streams the higher-indexed blocks
``R`` past it (inter-block computation), then pairs datum within ``L``
(intra-block computation).  This module owns that geometry plus the two
intra-block schedules: the plain triangular loop and the cyclic
load-balanced schedule of Section IV-E.1.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterator, List, Tuple

import numpy as np

from ..gpusim.errors import LaunchConfigError


@dataclass(frozen=True)
class BlockDecomposition:
    """Tiling geometry for an N-point dataset with block size B."""

    n: int
    block_size: int

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise LaunchConfigError(f"need at least one point, got n={self.n}")
        if self.block_size <= 0:
            raise LaunchConfigError(f"block size must be positive, got {self.block_size}")

    @property
    def num_blocks(self) -> int:
        """M = ceil(N / B); the paper assumes B | N (Eq. 1), we pad."""
        return (self.n + self.block_size - 1) // self.block_size

    @property
    def padded_n(self) -> int:
        return self.num_blocks * self.block_size

    def block_range(self, b: int) -> Tuple[int, int]:
        """[start, end) point indices of block b (end clipped to n)."""
        if not 0 <= b < self.num_blocks:
            raise IndexError(f"block {b} out of range [0, {self.num_blocks})")
        start = b * self.block_size
        return start, min(start + self.block_size, self.n)

    def block_size_of(self, b: int) -> int:
        start, end = self.block_range(b)
        return end - start

    def block_indices(self, b: int) -> np.ndarray:
        start, end = self.block_range(b)
        return np.arange(start, end)

    def inter_block_pairs(self) -> Iterator[Tuple[int, int]]:
        """All (L, R) block pairs with R index above L (Algorithm 2 line 2)."""
        m = self.num_blocks
        for b in range(m):
            for i in range(b + 1, m):
                yield b, i

    def num_inter_block_tile_loads(self) -> int:
        """Total R-tile loads across the grid: sum over blocks of (M-1-b)."""
        m = self.num_blocks
        return m * (m - 1) // 2

    def total_pairs(self) -> int:
        return self.n * (self.n - 1) // 2


# -- intra-block schedules ----------------------------------------------------
#
# These are pure functions of the block size, called once per simulated
# block with identical arguments; every one is memoized and returns
# *read-only* arrays so the cached buffers cannot be corrupted by callers.


def _frozen(arr: np.ndarray) -> np.ndarray:
    arr.setflags(write=False)
    return arr


@lru_cache(maxsize=1024)
def triangular_pair_mask(nL: int, nR: int | None = None) -> np.ndarray:
    """(nL, nR) boolean mask selecting j > t — the plain intra-block loop
    (Algorithm 2 lines 9-12).  With nR defaulting to nL this is the strict
    upper triangle.  Cached; the returned array is read-only."""
    nR = nL if nR is None else nR
    t = np.arange(nL)[:, None]
    j = np.arange(nR)[None, :]
    return _frozen(j > t)


@lru_cache(maxsize=1024)
def cyclic_schedule(block_size: int) -> Tuple[np.ndarray, ...]:
    """The load-balanced intra-block schedule (Fig. 6, right).

    Returns one partner array per iteration: at iteration j (1-based),
    thread t pairs with datum ``(t + j) % B``; in the final iteration
    (j = B/2) only the lower half of the threads are active, so entries for
    the upper half are -1.  Every unordered pair within the block is
    produced exactly once — validated in tests.  Cached; the returned
    arrays are read-only.
    """
    if block_size % 2 != 0:
        raise LaunchConfigError("cyclic schedule requires an even block size")
    b = block_size
    threads = np.arange(b)
    schedule: List[np.ndarray] = []
    for j in range(1, b // 2 + 1):
        partners = (threads + j) % b
        if j == b // 2:
            partners = partners.copy()
            partners[b // 2 :] = -1  # upper half idles in the last iteration
        schedule.append(_frozen(partners))
    return tuple(schedule)


@lru_cache(maxsize=1024)
def cyclic_pair_list(block_size: int) -> np.ndarray:
    """All (t, partner) pairs the cyclic schedule emits, shape (P, 2)."""
    pairs = []
    for partners in cyclic_schedule(block_size):
        active = partners >= 0
        t = np.nonzero(active)[0]
        pairs.append(np.stack([t, partners[active]], axis=1))
    return _frozen(np.concatenate(pairs, axis=0))


@lru_cache(maxsize=1024)
def triangular_trips(block_size: int) -> np.ndarray:
    """Per-thread trip counts of the plain schedule: B-1-t."""
    return _frozen(np.arange(block_size - 1, -1, -1))


@lru_cache(maxsize=1024)
def cyclic_trips(block_size: int) -> np.ndarray:
    """Per-thread trip counts of the cyclic schedule."""
    if block_size % 2 != 0:
        raise LaunchConfigError("cyclic schedule requires an even block size")
    half = block_size // 2
    trips = np.full(block_size, half, dtype=np.int64)
    trips[half:] = half - 1
    return _frozen(trips)
