"""Problem descriptors: the paper's 2-BS taxonomy as data.

Section III-B classifies 2-body statistics by *output pattern*:

* **Type-I** — output small enough for registers (2-PCF, small-k kNN,
  kernel density/regression);
* **Type-II** — output fits in shared memory (SDH, RDF);
* **Type-III** — output only fits in global memory, up to quadratic
  (relational joins, pairwise statistical significance, Gram matrices).

A :class:`TwoBodyProblem` bundles the pair function with an
:class:`OutputSpec` describing what "update output with d" (Algorithm 1,
line 4) means.  The kernel layer and the planner dispatch on this
descriptor — it is the seed of the paper's envisioned auto-optimizing
framework.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Optional

import numpy as np

from ..gpusim.calibration import ComputeCost
from .distances import PairFunction


class OutputClass(enum.Enum):
    """The paper's three output classes."""

    TYPE_I = "type-1"
    TYPE_II = "type-2"
    TYPE_III = "type-3"


class UpdateKind(enum.Enum):
    """The computational primitive behind the output update."""

    SCALAR_SUM = "scalar-sum"  # one global accumulator (2-PCF)
    PER_POINT_SUM = "per-point-sum"  # one accumulator per point (KDE)
    HISTOGRAM = "histogram"  # binned counts (SDH / RDF)
    TOPK = "topk"  # per-point k best (kNN)
    EMIT_PAIRS = "emit-pairs"  # predicate join output
    MATRIX = "matrix"  # dense pairwise value matrix (Gram / PSS)


@dataclass(frozen=True)
class OutputSpec:
    """What the output is and how one pair's value updates it."""

    klass: OutputClass
    kind: UpdateKind
    #: output elements as a function of N (e.g. histogram bins, N*k, N^2).
    size_fn: Callable[[int], int]
    #: maps the pair-value matrix to update quantities; semantics per kind:
    #:   SCALAR_SUM / PER_POINT_SUM -> contribution weights,
    #:   HISTOGRAM -> integer bin indices,
    #:   EMIT_PAIRS -> boolean predicate mask,
    #:   TOPK / MATRIX -> identity (values used directly).
    map_fn: Callable[[np.ndarray], np.ndarray] = lambda v: v
    #: HISTOGRAM: bin count;  TOPK: k.
    bins: int = 0
    k: int = 0
    #: expected bin-occupancy distribution (HISTOGRAM only) used by the
    #: analytical contention model; defaults to uniform over ``bins``.
    bin_probabilities: Optional[np.ndarray] = None
    #: EMIT_PAIRS: expected fraction of pairs matching the predicate, used
    #: by the analytical output-traffic model.
    selectivity: float = 0.05

    def size(self, n: int) -> int:
        return int(self.size_fn(n))

    def validate(self) -> None:
        if self.kind is UpdateKind.HISTOGRAM and self.bins <= 0:
            raise ValueError("HISTOGRAM output needs a positive bin count")
        if self.kind is UpdateKind.TOPK and self.k <= 0:
            raise ValueError("TOPK output needs a positive k")


@dataclass(frozen=True)
class PruningSpec:
    """What distance-bound tile pruning may legally do to this problem.

    Attaching a spec asserts two app-level facts the engine cannot derive:

    * ``cutoff`` — every pair at distance strictly greater than ``cutoff``
      contributes *exactly nothing* to the output (a weight of ``0.0``, a
      False join predicate), so a tile whose lower distance bound exceeds
      it can be skipped outright;
    * ``monotone_map`` — the pair function equals the declared ``metric``
      and ``map_fn`` is monotone in it, so a tile whose bounds map to the
      same output cell is constant over the tile and can be bulk-resolved
      (``nL * nR`` folded into that cell with zero pair evaluations).

    ``metric`` names the distance the bounding-box bounds are derived in;
    it must match the pair function (or, for KDE-style kernels, the
    monotone distance underlying it).  See :mod:`repro.core.bounds` for
    the exactness argument.
    """

    cutoff: Optional[float] = None
    monotone_map: bool = False
    metric: str = "euclidean"
    note: str = ""

    def validate(self) -> None:
        if self.metric not in ("euclidean", "manhattan", "chebyshev"):
            raise ValueError(
                f"unsupported pruning metric {self.metric!r}"
            )
        if self.cutoff is not None and self.cutoff < 0:
            raise ValueError(
                f"pruning cutoff must be non-negative, got {self.cutoff}"
            )
        if self.cutoff is None and not self.monotone_map:
            raise ValueError(
                "PruningSpec needs a cutoff, a monotone map, or both"
            )


@dataclass(frozen=True)
class CellSpec:
    """What a uniform-grid cell list may legally do to this problem.

    Attaching a spec asserts the app-level cutoff semantics the grid
    engine builds on (see :mod:`repro.core.cells`):

    * ``cutoff`` — the interaction radius.  Cells are sized at least this
      wide (plus the evaluator's rounding pad), so points in cells that do
      not touch — outside each other's 27-neighborhood — are certified
      farther apart than ``cutoff``;
    * ``beyond`` — what a pair strictly beyond the cutoff contributes:
      ``"zero"`` means exactly nothing (a ``0.0`` weight, a False join
      predicate), so skipped tiles simply never update the output;
      ``"clamp"`` means every such pair lands in one fixed output cell
      (the SDH/RDF clamped top bucket), so skipped tiles are folded in as
      a single counted residual instead of being evaluated;
    * ``box`` — periodic box edge length (same along every axis).  When
      set, distances are minimum-image (the pair function must agree —
      e.g. :func:`~repro.core.distances.periodic_euclidean`) and the cell
      grid wraps at the box faces.  Periodic problems must not carry a
      :class:`PruningSpec`: axis-aligned box bounds are not valid under
      minimum-image distances.
    """

    cutoff: float = 0.0
    beyond: str = "zero"
    box: Optional[float] = None
    metric: str = "euclidean"
    note: str = ""

    def validate(self) -> None:
        if self.cutoff <= 0:
            raise ValueError(
                f"cell cutoff must be positive, got {self.cutoff}"
            )
        if self.beyond not in ("zero", "clamp"):
            raise ValueError(
                f"cell beyond-cutoff mode must be 'zero' or 'clamp', "
                f"got {self.beyond!r}"
            )
        if self.metric not in ("euclidean", "manhattan", "chebyshev"):
            raise ValueError(f"unsupported cell metric {self.metric!r}")
        if self.box is not None and self.box <= 0:
            raise ValueError(
                f"periodic box edge must be positive, got {self.box}"
            )


@dataclass(frozen=True)
class TwoBodyProblem:
    """A complete 2-BS instance: data shape, pair function, output."""

    name: str
    dims: int
    pair_fn: PairFunction
    output: OutputSpec
    #: per-pair compute pipeline cost for the timing model (calibration.py
    #: provides per-application presets).
    compute_cost: ComputeCost = field(
        default_factory=lambda: ComputeCost(arith=12.0, ctrl=3.0, other=12.0)
    )
    #: what bounds-based tile pruning may legally do; ``None`` (default)
    #: means the composed engine never prunes this problem.
    pruning: Optional[PruningSpec] = None
    #: what a uniform-grid cell list may legally do; ``None`` (default)
    #: means the composed engine never routes this problem through the
    #: cell-list engine (see :mod:`repro.core.cells`).
    cells: Optional[CellSpec] = None

    def __post_init__(self) -> None:
        if self.dims <= 0:
            raise ValueError(f"dims must be positive, got {self.dims}")
        self.output.validate()
        if self.pruning is not None:
            self.pruning.validate()
        if self.cells is not None:
            self.cells.validate()
            if self.cells.box is not None and self.pruning is not None:
                raise ValueError(
                    "periodic problems cannot carry a PruningSpec: "
                    "axis-aligned block bounds are not valid under "
                    "minimum-image distances"
                )

    @property
    def output_class(self) -> OutputClass:
        return self.output.klass

    def total_pairs(self, n: int) -> int:
        """All unordered pairs among n points: the paper's N(N-1)/2."""
        return n * (n - 1) // 2


def as_soa(points: np.ndarray) -> np.ndarray:
    """Convert (n, dims) host points to the SoA (dims, n) device layout.

    Section IV-A: "the input data is stored in the form of multiple arrays
    of single-dimension values instead of using an array of structures ...
    This will ensure coalesced memory access."
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts[:, None]
    if pts.ndim != 2:
        raise ValueError(f"points must be (n, dims), got shape {pts.shape}")
    return np.ascontiguousarray(pts.T)


def as_aos(soa: np.ndarray) -> np.ndarray:
    """Inverse of :func:`as_soa`."""
    return np.ascontiguousarray(np.asarray(soa).T)
