"""Cross-dataset (A x B) 2-body kernels.

Several members of the paper's 2-BS family are *two-dataset* problems:
relational joins concatenate "tuples from two tables" (Section III-B),
pairwise statistical significance aligns "all pairs between two datasets",
collaborative filtering compares users against items, and the 2-PCF's DR
term counts data-random pairs.  The kernel structure is Algorithm 2
without the triangular part: every A-block anchors in registers and
streams *all* B-blocks — no intra-block pass, hence no divergence and no
load-balancing concern.

Input strategies are reused from the self-join framework (shuffle tiling
excluded: its warp-walk accounting is self-join-shaped); output handling
reuses the register / privatized strategies and implements the
rectangular MATRIX and EMIT_PAIRS paths directly.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.counters import MemSpace
from ..gpusim.device import Device, LaunchRecord
from ..gpusim.grid import BlockContext, LaunchConfig
from ..gpusim.occupancy import calculate_occupancy
from ..gpusim.profiler import SimReport, build_report
from ..gpusim.spec import DeviceSpec, TITAN_X
from ..gpusim.timing import TrafficProfile, cycles_from_traffic, simulate_time
from .kernels import INPUT_STRATEGIES
from .kernels.base import PairGeometry
from .kernels.outputs import (
    GlobalAtomicOutput,
    PrivatizedSharedOutput,
    RegisterOutput,
    analytic_conflict_degree,
)
from .problem import TwoBodyProblem, UpdateKind, as_soa
from .tiling import BlockDecomposition

_REUSED_OUTPUTS = {
    UpdateKind.SCALAR_SUM: RegisterOutput,
    UpdateKind.PER_POINT_SUM: RegisterOutput,
    UpdateKind.TOPK: RegisterOutput,
    UpdateKind.HISTOGRAM: PrivatizedSharedOutput,
}

_CROSS_INPUTS = ("naive", "shm-shm", "register-shm", "register-roc")


class CrossKernel:
    """All-pairs computation between two datasets A (anchors) and B."""

    def __init__(
        self,
        problem: TwoBodyProblem,
        input_strategy: str = "register-shm",
        block_size: int = 256,
        name: Optional[str] = None,
        output_kwargs: Optional[dict] = None,
    ) -> None:
        if input_strategy not in _CROSS_INPUTS:
            raise ValueError(
                f"cross kernels support inputs {_CROSS_INPUTS}, "
                f"got {input_strategy!r}"
            )
        self.problem = problem
        self.input = INPUT_STRATEGIES[input_strategy]()
        self.block_size = block_size
        kind = problem.output.kind
        if kind in _REUSED_OUTPUTS:
            self.output = _REUSED_OUTPUTS[kind](**(output_kwargs or {}))
            self.output.check(problem)
        elif kind in (UpdateKind.MATRIX, UpdateKind.EMIT_PAIRS):
            self.output = None  # handled inline
        else:
            raise ValueError(f"unsupported output kind {kind.value!r}")
        self.name = name or f"{self.input.name}-Cross"

    # -- geometry ----------------------------------------------------------------
    def geometry(self, n_a: int, n_b: int) -> PairGeometry:
        dec_a = BlockDecomposition(n_a, self.block_size)
        return PairGeometry(
            n=n_a,
            block_size=self.block_size,
            num_blocks=dec_a.num_blocks,
            inter_pairs=n_a * n_b,
            intra_pairs=0,
            tile_loads_points=dec_a.num_blocks * n_b,
            full_rows=False,
        )

    # -- functional --------------------------------------------------------------
    def execute(
        self,
        device: Device,
        points_a: np.ndarray,
        points_b: np.ndarray,
        *,
        workers: Optional[int] = None,
    ) -> Tuple[Any, LaunchRecord]:
        problem = self.problem
        soa_a, soa_b = as_soa(points_a), as_soa(points_b)
        if soa_a.shape[0] != problem.dims or soa_b.shape[0] != problem.dims:
            raise ValueError(f"both datasets must be {problem.dims}-d")
        dims, n_a = soa_a.shape
        n_b = soa_b.shape[1]
        dec_a = BlockDecomposition(n_a, self.block_size)
        dec_b = BlockDecomposition(n_b, self.block_size)
        a_g = device.to_device(soa_a, name="cross-A")
        b_g = device.to_device(soa_b, name="cross-B")
        in_state = self.input.prepare(device, b_g)
        kind = problem.output.kind
        if self.output is not None:
            bufs = self.output.create(device, problem, n_a, dec_a.num_blocks,
                                      self.block_size)
        elif kind is UpdateKind.MATRIX:
            bufs = {"matrix": device.alloc((n_a, n_b), np.float64, name="cross-out")}
        else:
            bufs = {
                "ticket": device.alloc(1, np.int64, name="cross-ticket"),
                "emitted": {},  # keyed by block id: deterministic under workers
            }

        def kernel(ctx: BlockContext) -> None:
            ba = ctx.block_id
            ids_a = dec_a.block_indices(ba)
            nl = ids_a.size
            block_state = self.input.block_setup(ctx, dims)
            reg_a = self.input.load_anchor(ctx, a_g, in_state, block_state, ids_a)
            state = (
                self.output.block_init(ctx, bufs, problem, ids_a)
                if self.output is not None
                else None
            )
            for bb in range(dec_b.num_blocks):
                ids_b = dec_b.block_indices(bb)
                vals_b = self.input.load_tile(
                    ctx, b_g, in_state, block_state, ids_b, nl
                )
                values = problem.pair_fn(reg_a, vals_b)
                self.input.charge_pair_reads(
                    ctx, nl, ids_b.size, nl * ids_b.size, dims
                )
                if self.output is not None:
                    # mask=None: every cross pair is active, skip the mask
                    self.output.update(
                        ctx, state, bufs, problem, ids_a, ids_b, values, None
                    )
                elif kind is UpdateKind.MATRIX:
                    vals = np.asarray(problem.output.map_fn(values), dtype=np.float64)
                    bufs["matrix"].st((ids_a[:, None], ids_b[None, :]), vals)
                else:
                    pred = np.asarray(problem.output.map_fn(values), dtype=bool)
                    ii, jj = np.nonzero(pred)
                    if ii.size:
                        from ..gpusim.atomics import atomic_ticket

                        atomic_ticket(bufs["ticket"], ii.size)
                        bufs["emitted"].setdefault(int(ba), []).append(
                            np.stack([ids_a[ii], ids_b[jj]], axis=1)
                        )
                        ctx.counters.add_write(MemSpace.GLOBAL, 2 * ii.size)
            if self.output is not None:
                self.output.block_fini(ctx, state, bufs, problem, ids_a, ba)

        record = device.launch(
            kernel,
            LaunchConfig(
                dec_a.num_blocks,
                self.block_size,
                shared_bytes=self.shared_bytes_per_block(),
            ),
            name=self.name,
            workers=workers,
        )
        if self.output is not None:
            result = self.output.finalize(device, bufs, problem, n_a)
        elif kind is UpdateKind.MATRIX:
            result = device.to_host(bufs["matrix"])
        else:
            chunks = [
                arr
                for bid in sorted(bufs["emitted"])
                for arr in bufs["emitted"][bid]
            ]
            result = (
                np.concatenate(chunks, axis=0)
                if chunks
                else np.empty((0, 2), dtype=np.int64)
            )
        return result, record

    # -- analytical ----------------------------------------------------------------
    def shared_bytes_per_block(self) -> int:
        tile = self.input.shared_tile_bytes(self.block_size, self.problem.dims)
        out = (
            self.output.shared_out_bytes(self.problem, self.block_size)
            if self.output is not None
            else 0
        )
        return tile + out

    def traffic(self, n_a: int, n_b: int) -> TrafficProfile:
        geom = self.geometry(n_a, n_b)
        profile = TrafficProfile(
            pairs=geom.inter_pairs, compute=self.problem.compute_cost
        )
        profile = profile + self.input.traffic(geom, self.problem.dims)
        kind = self.problem.output.kind
        if self.output is not None:
            profile = profile + self.output.traffic(
                geom, self.problem.dims, self.problem
            )
        elif kind is UpdateKind.MATRIX:
            profile = profile + TrafficProfile(global_stream_writes=geom.pairs)
        else:
            matches = self.problem.output.selectivity * geom.pairs
            batches = geom.num_blocks * BlockDecomposition(
                n_b, self.block_size
            ).num_blocks
            profile = profile + TrafficProfile(
                global_atomics=batches, global_stream_writes=2 * matches
            )
        return profile

    def simulate(
        self,
        n_a: int,
        n_b: int,
        spec: DeviceSpec = TITAN_X,
        calib: Calibration = DEFAULT_CALIBRATION,
    ) -> SimReport:
        profile = self.traffic(n_a, n_b)
        cycles = cycles_from_traffic(profile, calib)
        occ = calculate_occupancy(
            spec,
            self.block_size,
            regs_per_thread=self.input.regs_per_thread(self.problem.dims) + 2,
            shared_per_block=self.shared_bytes_per_block(),
        )
        geom = self.geometry(n_a, n_b)
        extra = (
            self.output.extra_seconds(geom, self.problem, spec, calib)
            if self.output is not None
            else 0.0
        )
        timing = simulate_time(
            cycles, spec=spec, occupancy=occ.occupancy, calib=calib,
            extra_seconds=extra,
        )
        return build_report(
            kernel=self.name, n=n_a * n_b, timing=timing, spec=spec,
            counters=profile.expected_counters(),
        )
