"""Resilient execution supervisor: retry, degrade, re-execute, fail over.

The ROADMAP's north star is production-scale operation, and production
runs fail: devices go briefly out of memory, worker threads die mid-block,
a DMA engine corrupts a merged shard, a whole device drops off the bus.
The fault injector (:mod:`repro.gpusim.faults`) makes those failures
deterministic simulated events; this module is the *policy* layer that
turns them into recovered runs:

* **Retry with backoff.**  :class:`TransientFault` launches are retried
  under an exponential backoff with deterministic, plan-seeded jitter.
* **Targeted re-execution.**  A crashed worker loses only its own
  privatized shards, so recovery re-runs just its block deal
  (:class:`~repro.gpusim.parallel.CrashRecovery`); a corrupted stripe is
  detected by output invariants and re-executed whole.
* **Degradation.**  Resource exhaustion (shared-memory overflow, register
  pressure) walks the input-strategy ladder Register-ROC -> Register-SHM
  -> SHM-SHM -> Naive; allocation failure halves the tile batch first.
* **Failover.**  A dead simulated device's anchor-block stripe is
  re-striped across the survivors with the same triangular-weighted
  :func:`~repro.core.multigpu.plan_shards` math, and partial outputs merge
  exactly like the privatized copies of paper Fig. 3 — so the recovered
  result is bit-identical to the fault-free run for every integer output,
  and exact for the framework's float outputs too (disjoint-support adds
  and integer-valued sums; see DESIGN.md Section 6).
* **Verification.**  Every stripe result and the final merge pass output
  invariants (histogram mass equals the stripe's pair count, Gram
  symmetry, finiteness, emitted-pair canonical form) so silent corruption
  becomes a detected, re-executable event.

Everything that happened — injected faults and the actions taken — lands
in a :class:`ResilienceReport` whose :meth:`~ResilienceReport.to_dict` is
deterministic for a given fault seed.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gpusim.device import Device, LaunchRecord
from ..gpusim.errors import (
    DeviceAllocationError,
    OutputCorruptionError,
    RegisterPressureError,
    SharedMemoryError,
    TransientFault,
    WorkerCrashError,
)
from ..gpusim.faults import FaultInjector, as_injector
from ..gpusim.parallel import CrashRecovery
from ..gpusim.spec import DeviceSpec, TITAN_X
from ..obs.tracer import NULL_TRACER
from .kernels import ComposedKernel, make_kernel
from .kernels.base import block_sizes
from .lifecycle import DeadlineExceeded
from .multigpu import ShardPlan, _combine, plan_shards
from .problem import TwoBodyProblem, UpdateKind

#: Input strategies ordered by resource appetite; resource exhaustion
#: degrades to the next entry (same output strategy, same block size).
DEGRADATION_LADDER: Tuple[str, ...] = (
    "register-roc", "register-shm", "shm-shm", "naive",
)


@dataclass
class RetryPolicy:
    """Backoff/retry knobs for the supervisor.

    The jitter multiplier is drawn from the plan-seeded generator, so the
    recorded delays (hence the whole report) are deterministic per seed.
    ``sleep=False`` records the computed delays without actually sleeping
    — what the test suite uses.
    """

    max_retries: int = 3
    backoff_base: float = 0.001
    backoff_factor: float = 2.0
    jitter: float = 0.25
    sleep: bool = True

    def delay(self, attempt: int, rng: np.random.Generator) -> float:
        scale = self.backoff_base * self.backoff_factor ** attempt
        return scale * (1.0 + self.jitter * float(rng.random()))


@dataclass
class ResilienceEvent:
    """One recovery action the supervisor took."""

    action: str  # retry-transient | retry-alloc | halve-batch |
    #             degrade-input | re-executed-blocks | re-execute-corrupt |
    #             failover | verified
    device: int
    detail: str = ""
    data: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "action": self.action,
            "device": self.device,
            "detail": self.detail,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ResilienceEvent":
        return cls(
            action=d["action"], device=int(d["device"]),
            detail=d.get("detail", ""), data=dict(d.get("data") or {}),
        )


class ResilienceReport:
    """Flight recorder for one supervised run: every injected fault (from
    the shared injector) plus every recovery action, in firing order.

    A third stream, ``lifecycle``, records run-lifecycle events —
    checkpoint writes/loads, deadline breaches, cancellations, watchdog
    kills.  They are kept separate from ``events`` because they are
    *not* part of the deterministic fault/recovery history: a resumed
    run legitimately has different lifecycle traffic (loads instead of
    writes) while its fault and recovery streams match the uninterrupted
    run bit for bit.
    """

    def __init__(
        self,
        injector: Optional[FaultInjector] = None,
        tracer=None,
    ) -> None:
        self.injector = injector
        self.events: List[ResilienceEvent] = []
        self.lifecycle: List[ResilienceEvent] = []
        #: execution tracer; recovery actions land as ``recovery:<action>``
        #: instant events at the trace position where they were taken.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: optional bounded flight recorder
        #: (:class:`~repro.obs.flight.FlightRecorder`): every recorded
        #: event is mirrored into the ring, which checkpoint chunks
        #: persist for post-mortems.  Wall-history, never byte-compared.
        self.flight = None
        #: optional live-telemetry adapter
        #: (:class:`~repro.obs.flight.RunTelemetry`): recorded events
        #: feed its degradation-state tracking and progress emissions.
        self.telemetry = None
        # detached state carried by deserialized reports (no live injector)
        self._seed: Optional[int] = None
        self._faults: List[Any] = []

    @property
    def faults(self):
        if self.injector is not None:
            return list(self.injector.events)
        return list(self._faults)

    @property
    def seed(self) -> Optional[int]:
        if self.injector is not None:
            return self.injector.plan.seed
        return self._seed

    def record(
        self, action: str, device: int, detail: str = "", **data: Any
    ) -> None:
        self.events.append(
            ResilienceEvent(action=action, device=device, detail=detail,
                            data=data)
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "recovery:" + action, cat="resilience",
                args={"device": device, "detail": detail, **data},
            )
        if self.flight is not None:
            self.flight.record(action, device=device, detail=detail, **data)
        if self.telemetry is not None:
            self.telemetry.on_event(action, device=device, detail=detail,
                                    data=data)

    def record_lifecycle(
        self, action: str, device: int = -1, detail: str = "", **data: Any
    ) -> None:
        """Record a lifecycle event (checkpoint-write / checkpoint-load /
        deadline-breach / cancelled / watchdog-kill / resumed).  Emitted
        to the tracer under ``cat="lifecycle"`` — a category the Chrome
        export drops by default, so traces stay byte-identical between
        interrupted-and-resumed and uninterrupted runs."""
        self.lifecycle.append(
            ResilienceEvent(action=action, device=device, detail=detail,
                            data=data)
        )
        if self.tracer.enabled:
            self.tracer.instant(
                "lifecycle:" + action, cat="lifecycle",
                args={"device": device, "detail": detail, **data},
            )
        if self.flight is not None:
            self.flight.record(action, device=device, detail=detail, **data)
        if self.telemetry is not None:
            self.telemetry.on_event(action, device=device, detail=detail,
                                    data=data)

    def actions(self) -> List[str]:
        return [e.action for e in self.events]

    def lifecycle_actions(self) -> List[str]:
        return [e.action for e in self.lifecycle]

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic serialization: no timestamps, no object ids —
        the same seed and run configuration reproduce it byte for byte.
        (The ``lifecycle`` section is excluded: it is wall-history, not
        run configuration — see :meth:`to_full_dict`.)"""
        return {
            "seed": self.seed,
            "faults": [f.as_dict() for f in self.faults],
            "recoveries": [e.as_dict() for e in self.events],
        }

    def to_full_dict(self) -> Dict[str, Any]:
        """:meth:`to_dict` plus the lifecycle section — the round-trip
        form checkpoints persist."""
        d = self.to_dict()
        d["lifecycle"] = [e.as_dict() for e in self.lifecycle]
        return d

    def to_json(self) -> str:
        return json.dumps(self.to_full_dict(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ResilienceReport":
        """Rebuild a detached report (no live injector, no tracer) from
        :meth:`to_dict` / :meth:`to_full_dict` output.  Event order is
        preserved exactly, so a round-tripped report re-serializes byte
        for byte."""
        from ..gpusim.faults import FaultEvent

        report = cls()
        report._seed = d.get("seed")
        report._faults = [
            FaultEvent.from_dict(f) for f in d.get("faults") or []
        ]
        report.events = [
            ResilienceEvent.from_dict(e) for e in d.get("recoveries") or []
        ]
        report.lifecycle = [
            ResilienceEvent.from_dict(e) for e in d.get("lifecycle") or []
        ]
        return report

    @classmethod
    def from_json(cls, text: str) -> "ResilienceReport":
        return cls.from_dict(json.loads(text))

    def summary(self) -> str:
        lines = [f"faults injected : {len(self.faults)}"]
        for f in self.faults:
            where = f"device {f.device}"
            if f.launch is not None:
                where += f" launch {f.launch}"
            if f.block is not None:
                where += f" block {f.block}"
            if f.array is not None:
                where += f" array {f.array!r}[{f.index}]"
            lines.append(f"  - {f.kind.value:15s} @ {where}: {f.detail}")
        lines.append(f"recovery actions: {len(self.events)}")
        for e in self.events:
            lines.append(f"  - {e.action:15s} @ device {e.device}: {e.detail}")
        if self.lifecycle:
            lines.append(f"lifecycle events: {len(self.lifecycle)}")
            for e in self.lifecycle:
                lines.append(f"  - {e.action:15s}: {e.detail}")
        return "\n".join(lines)


def expected_pair_count(
    n: int,
    block_size: int,
    blocks: Optional[Sequence[int]] = None,
    full_rows: bool = False,
) -> int:
    """Distance evaluations anchored in ``blocks`` (default: the full grid).

    Non-full-row kernels evaluate each unordered pair once, from the
    lower-indexed anchor block; full-row kernels evaluate it from both
    endpoints.  This is the reference mass a histogram stripe must hit.
    """
    sizes = block_sizes(n, block_size)
    ids = range(sizes.size) if blocks is None else blocks
    total = 0
    for b in ids:
        nb = int(sizes[b])
        if full_rows:
            total += nb * (n - nb) + nb * (nb - 1)
        else:
            total += nb * int(sizes[b + 1:].sum()) + nb * (nb - 1) // 2
    return total


def verify_result(
    problem: TwoBodyProblem,
    result: Any,
    *,
    n: Optional[int] = None,
    expected_pairs: Optional[int] = None,
) -> None:
    """Check output invariants; raise :class:`OutputCorruptionError` if any
    fail.  These are exactly the checks that catch the injector's two
    corruption modes: NaN poison (finiteness) and a flipped high bit
    (histogram mass / emitted-pair bounds reconciliation)."""
    kind = problem.output.kind
    if kind is UpdateKind.HISTOGRAM:
        hist = np.asarray(result)
        if np.issubdtype(hist.dtype, np.floating) and not np.all(
            np.isfinite(hist)
        ):
            raise OutputCorruptionError("histogram contains non-finite counts")
        if (hist < 0).any():
            raise OutputCorruptionError("histogram contains negative counts")
        if expected_pairs is not None and int(hist.sum()) != expected_pairs:
            raise OutputCorruptionError(
                f"histogram mass {int(hist.sum())} != expected pair count "
                f"{expected_pairs}"
            )
    elif kind is UpdateKind.SCALAR_SUM:
        if not np.isfinite(result):
            raise OutputCorruptionError(f"scalar sum is non-finite: {result!r}")
    elif kind is UpdateKind.PER_POINT_SUM:
        arr = np.asarray(result)
        if not np.all(np.isfinite(arr)):
            raise OutputCorruptionError("per-point sums contain non-finite values")
    elif kind is UpdateKind.MATRIX:
        mat = np.asarray(result)
        if not np.all(np.isfinite(mat)):
            raise OutputCorruptionError("matrix contains non-finite values")
        if mat.ndim == 2 and mat.shape[0] == mat.shape[1] and not np.array_equal(
            mat, mat.T
        ):
            raise OutputCorruptionError("matrix is not symmetric")
    elif kind is UpdateKind.EMIT_PAIRS:
        pairs = np.asarray(result)
        if pairs.size:
            if (pairs[:, 0] >= pairs[:, 1]).any():
                raise OutputCorruptionError("emitted pair with i >= j")
            if (pairs < 0).any() or (n is not None and (pairs >= n).any()):
                raise OutputCorruptionError("emitted pair index out of bounds")
            if np.unique(pairs, axis=0).shape[0] != pairs.shape[0]:
                raise OutputCorruptionError("duplicate emitted pairs")
    # TOPK: order statistics carry no cheap global invariant; the ticket
    # reconciliation inside finalize is the only corruption net there.


def degrade_kernel(kernel: ComposedKernel) -> Optional[ComposedKernel]:
    """The next-weaker kernel on the degradation ladder, or ``None`` if
    the kernel is already at the bottom (Naive).  Output strategy, block
    size, load balancing, pruning and the cell-list engine are preserved —
    only the input staging (the resource-hungry half) steps down.  The
    cell flag in particular MUST survive degradation: block ids under the
    cell engine index the cell-sorted point order, so mixing engines
    across anchor subsets of one run would change block semantics."""
    name = kernel.input.name.lower()  # display names are cased (Register-SHM)
    if name in DEGRADATION_LADDER:
        candidates = DEGRADATION_LADDER[DEGRADATION_LADDER.index(name) + 1:]
    else:  # shuffle or a custom strategy: fall onto the standard ladder
        candidates = DEGRADATION_LADDER[1:]
    if not candidates:
        return None
    return make_kernel(
        kernel.problem,
        candidates[0],
        kernel.output.name,
        block_size=kernel.block_size,
        load_balanced=kernel.load_balanced,
        prune=kernel.prune,
        cells=kernel.cells,
    )


@dataclass
class ResilientResult:
    """Outcome of a supervised (possibly multi-device) run."""

    result: Any
    report: ResilienceReport
    records: List[LaunchRecord]
    kernel: ComposedKernel  # the kernel that actually completed (may have degraded)
    plan: Optional[ShardPlan] = None

    @property
    def recovered(self) -> bool:
        return bool(self.report.faults)


def _supervised_execute(
    kernel: ComposedKernel,
    points: np.ndarray,
    *,
    injector: Optional[FaultInjector],
    policy: RetryPolicy,
    report: ResilienceReport,
    rng: np.random.Generator,
    spec: DeviceSpec,
    ordinal: int,
    blocks: Optional[List[int]],
    workers: Optional[int],
    batch_tiles: Optional[int],
    backend: Optional[str],
    expected_pairs: Optional[int],
    n: int,
    tracer=None,
    deadline=None,
    cancel=None,
    watchdog: Optional[float] = None,
) -> Tuple[Any, LaunchRecord, ComposedKernel, Optional[int]]:
    """Execute one stripe (or the whole grid) under supervision.

    Returns ``(result, record, kernel, batch_tiles)`` — the kernel and
    tile batch that actually completed, which may differ from the inputs
    after degradation / batch halving.  Checkpointing persists both so a
    resumed run continues from the degraded state instead of re-walking
    the ladder.

    Retries transient faults, degrades the kernel on resource exhaustion,
    halves the tile batch on allocation failure, re-executes on detected
    corruption.  Raises :class:`DeviceAllocationError` once the retry
    budget is spent — the caller's signal to declare the device dead.

    ``deadline`` / ``cancel`` (:class:`~repro.core.lifecycle.Deadline` /
    :class:`~repro.core.lifecycle.CancelToken`) are polled before every
    attempt, and a backoff retry whose delay does not fit the remaining
    budget is refused up front (the deadline surfaces *before* the sleep
    is wasted, with completed work — checkpoint chunks, earlier stripes —
    intact).  ``watchdog`` is the process-pool hung-worker timeout.
    """
    current = kernel
    bt = batch_tiles
    transient = alloc = corrupt = 0

    def gate_retry(delay: float, action: str) -> None:
        # refuse to start a retry that cannot fit the remaining budget
        if deadline is not None and not deadline.fits(delay):
            detail = (
                f"{action} delay {delay:.6f}s does not fit remaining "
                f"budget {max(0.0, deadline.remaining()):.6f}s"
            )
            report.record_lifecycle("deadline-breach", ordinal, detail=detail)
            raise DeadlineExceeded(detail)

    while True:
        if cancel is not None:
            cancel.check()
        if deadline is not None:
            deadline.check()

        def note_recovery(ev: Dict[str, Any]) -> None:
            report.record(
                "re-executed-blocks",
                int(ev.get("device", ordinal)),
                detail=(
                    f"worker crash absorbed: re-ran blocks "
                    f"{ev.get('blocks')} (attempt {ev.get('attempt')})"
                ),
                blocks=list(ev.get("blocks") or []),
                workers_lost=list(ev.get("workers_lost") or []),
                attempt=ev.get("attempt"),
            )

        telemetry = getattr(report, "telemetry", None)
        device = Device(
            spec,
            ordinal=ordinal,
            faults=injector,
            crash_recovery=CrashRecovery(
                max_retries=policy.max_retries, on_recover=note_recovery
            ),
            tracer=tracer,
            deadline=deadline,
            cancel=cancel,
            watchdog=watchdog,
            on_watchdog=lambda info: report.record_lifecycle(
                "watchdog-kill", ordinal,
                detail=(
                    f"killed hung worker(s) {info.get('workers')} after "
                    f"{info.get('timeout')}s without progress"
                ),
                workers=list(info.get("workers") or []),
            ),
            progress=telemetry.on_block if telemetry is not None else None,
        )
        try:
            result, record = current.execute(
                device, points, workers=workers, batch_tiles=bt,
                blocks=blocks, backend=backend,
            )
            verify_result(
                current.problem, result, n=n, expected_pairs=expected_pairs
            )
            return result, record, current, bt
        except TransientFault as exc:
            transient += 1
            if transient > policy.max_retries:
                raise
            d = policy.delay(transient - 1, rng)
            gate_retry(d, "retry-transient")
            report.record(
                "retry-transient", ordinal, detail=str(exc),
                attempt=transient, delay=round(d, 6),
            )
            if policy.sleep:
                time.sleep(d)
        except (SharedMemoryError, RegisterPressureError) as exc:
            nxt = degrade_kernel(current)
            if nxt is None:
                raise
            report.record(
                "degrade-input", ordinal,
                detail=f"{current.input.name} -> {nxt.input.name}: {exc}",
            )
            current = nxt
        except DeviceAllocationError as exc:
            alloc += 1
            if bt is not None and bt > 1:
                bt = max(1, bt // 2)
                report.record(
                    "halve-batch", ordinal,
                    detail=f"batch_tiles -> {bt}: {exc}", batch_tiles=bt,
                )
            elif alloc > policy.max_retries:
                raise
            else:
                d = policy.delay(alloc - 1, rng)
                gate_retry(d, "retry-alloc")
                report.record(
                    "retry-alloc", ordinal, detail=str(exc),
                    attempt=alloc, delay=round(d, 6),
                )
                if policy.sleep:
                    time.sleep(d)
        except OutputCorruptionError as exc:
            corrupt += 1
            if corrupt > policy.max_retries:
                raise
            report.record(
                "re-execute-corrupt", ordinal,
                detail=f"invariant check failed, re-executing stripe: {exc}",
                blocks=list(blocks) if blocks is not None else None,
            )


def resilient_run(
    problem: TwoBodyProblem,
    points: np.ndarray,
    *,
    kernel: Optional[ComposedKernel] = None,
    num_devices: int = 1,
    faults: "FaultInjector | int | None" = None,
    retry: Optional[RetryPolicy] = None,
    spec: DeviceSpec = TITAN_X,
    workers: Optional[int] = None,
    batch_tiles: Optional[int] = None,
    backend: Optional[str] = None,
    tracer=None,
    deadline=None,
    cancel=None,
    watchdog: Optional[float] = None,
    telemetry=None,
) -> ResilientResult:
    """Run ``problem`` under the resilience supervisor.

    ``faults`` is a :class:`~repro.gpusim.faults.FaultInjector`, a
    :class:`~repro.gpusim.faults.FaultPlan`, an ``int`` seed (builds the
    chaos plan: transient allocation failure + worker crash + corrupted
    shard + dead device when ``num_devices > 1``) or ``None``.

    With ``num_devices > 1`` the grid's anchor blocks are striped across
    simulated devices by :func:`~repro.core.multigpu.plan_shards` (block
    units), each stripe runs supervised on its own :class:`Device`, a
    device whose retry budget is exhausted is declared dead and its block
    range is re-striped across the survivors, and the partial outputs are
    merged canonically.  Integer outputs are bit-identical to the
    fault-free run; the framework's float outputs are too, because every
    output element is produced by exactly one block (disjoint-support
    adds) or is an integer-valued sum (see DESIGN.md Section 6).
    """
    pts = np.asarray(points, dtype=np.float64)
    n = pts.shape[0]
    k = kernel if kernel is not None else make_kernel(problem)
    injector = as_injector(faults, num_devices=num_devices)
    policy = retry if retry is not None else RetryPolicy()
    tracer = tracer if tracer is not None else NULL_TRACER
    if injector is not None and tracer.enabled:
        injector.tracer = tracer
    report = ResilienceReport(injector, tracer=tracer)
    if telemetry is not None:
        report.telemetry = telemetry
        report.flight = telemetry.flight
    seed = injector.plan.seed if injector is not None else 0
    # jitter stream decoupled from the injector's corruption stream
    rng = np.random.default_rng(seed + 0x5EED)
    full = k.full_rows
    m = k.geometry(n).num_blocks
    common = dict(
        injector=injector, policy=policy, report=report, rng=rng, spec=spec,
        workers=workers, batch_tiles=batch_tiles, backend=backend, n=n,
        tracer=tracer, deadline=deadline, cancel=cancel, watchdog=watchdog,
    )

    if num_devices <= 1 or m < 2:
        result, record, kfinal, _ = _supervised_execute(
            k, pts, ordinal=0, blocks=None,
            expected_pairs=expected_pair_count(n, k.block_size, None, full),
            **common,
        )
        report.record(
            "verified", 0,
            detail=f"{problem.output.kind.value} invariants hold",
        )
        return ResilientResult(result, report, [record], kfinal, None)

    plan = plan_shards(m, num_devices)
    pending: List[Tuple[int, int, int]] = [
        (d, s, e) for d, (s, e) in enumerate(plan.boundaries)
    ]
    parts: Dict[Tuple[int, int], Any] = {}
    records: List[LaunchRecord] = []
    dead: List[int] = []
    kfinal = k
    while pending:
        d, s, e = pending.pop(0)
        stripe = list(range(s, e))
        try:
            result, record, kfinal, _ = _supervised_execute(
                k, pts, ordinal=d, blocks=stripe,
                expected_pairs=expected_pair_count(
                    n, k.block_size, stripe, full
                ),
                **common,
            )
        except (DeviceAllocationError, WorkerCrashError) as exc:
            # retry budget spent (or crashes keep recurring): the device
            # is dead.  Re-stripe its anchor-block range across survivors.
            dead.append(d)
            survivors = [x for x in range(num_devices) if x not in dead]
            if not survivors:
                raise
            sub = plan_shards(m, len(survivors), rows=(s, e))
            report.record(
                "failover", d,
                detail=(
                    f"device {d} lost ({exc}); re-striping blocks "
                    f"[{s}, {e}) across devices {survivors}"
                ),
                blocks=[s, e], survivors=survivors,
            )
            pending.extend(
                (survivors[i % len(survivors)], ss, se)
                for i, (ss, se) in enumerate(sub.boundaries)
            )
            continue
        parts[(s, e)] = result
        records.append(record)

    merged = _combine(problem, [parts[key] for key in sorted(parts)])
    verify_result(
        problem, merged, n=n,
        expected_pairs=expected_pair_count(n, k.block_size, None, full),
    )
    report.record(
        "verified", -1,
        detail=(
            f"merged {len(parts)} stripe(s); "
            f"{problem.output.kind.value} invariants hold"
        ),
    )
    return ResilientResult(merged, report, records, kfinal, plan)
