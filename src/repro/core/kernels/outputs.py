"""Output-stage strategies (Section IV-C).

Three designs matching the paper's taxonomy plus the Type-III direct path:

* :class:`RegisterOutput` — Type-I: per-thread accumulators in registers,
  flushed once when the kernel exits;
* :class:`GlobalAtomicOutput` — the "straightforward way": every update is
  an atomic on a single global structure (the 10x-slower baseline of
  Fig. 4);
* :class:`PrivatizedSharedOutput` — Type-II: one private copy per block in
  shared memory, atomic within the block, then the Fig. 3 reduction;
* :class:`GlobalDirectOutput` — Type-III: results written straight to
  their global destination (dense matrices) or compacted via an atomic
  ticket counter (joins).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

import numpy as np

from ...gpusim.atomics import atomic_add, atomic_add_dense, atomic_ticket
from ...gpusim.calibration import Calibration
from ...gpusim.contention import (
    expected_max_multiplicity,
    warp_conflict_degrees,
    warp_conflict_degrees_dense,
)
from ...gpusim.counters import MemSpace
from ...gpusim.device import Device
from ...gpusim.errors import OutputCorruptionError
from ...gpusim.grid import BlockContext
from ...gpusim.procpool import HostChannel
from ...gpusim.spec import DeviceSpec
from ...gpusim.timing import TrafficProfile, reduction_stage_seconds
from ...obs.tracer import NULL_TRACER, PHASE_MERGE
from ..problem import OutputSpec, TwoBodyProblem, UpdateKind
from .base import OutputStrategy, PairGeometry
from .reduction import reduce_private_copies


def analytic_conflict_degree(
    problem: TwoBodyProblem, warp: int = 32, lanes_per_copy: int | None = None
) -> float:
    """Expected warp serialization of this problem's atomic updates.

    ``lanes_per_copy`` models lane-interleaved multi-copy privatization:
    only the lanes sharing an output copy can conflict.
    """
    out = problem.output
    m = lanes_per_copy if lanes_per_copy is not None else warp
    if out.kind is UpdateKind.SCALAR_SUM:
        return float(m)  # every lane of a copy group hits the same address
    if out.kind is UpdateKind.HISTOGRAM:
        probs = (
            np.asarray(out.bin_probabilities, dtype=np.float64)
            if out.bin_probabilities is not None
            else np.full(out.bins, 1.0 / out.bins)
        )
        return expected_max_multiplicity(probs, m)
    return 1.0


_INT32_MAX = np.iinfo(np.int32).max


def _masked_bins_with_sentinels(
    bins: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Replace masked-out entries with per-lane negative sentinels so the
    conflict profiler sees inactive lanes as conflict-free."""
    lanes = np.arange(bins.shape[0])[:, None]
    return np.where(mask, bins, -(lanes + 1))


def _histogram_update(
    ctx: BlockContext,
    target,
    problem: TwoBodyProblem,
    values: np.ndarray,
    mask: Optional[np.ndarray],
    copies: int = 1,
    dense_masked: bool = False,
) -> None:
    """Shared HISTOGRAM update path: bin, bounds-check, atomic, profile.

    With ``copies > 1`` the target is a flat (copies * bins) array and
    lane t updates copy ``t % copies`` — the lane-interleaved multi-copy
    privatization whose conflict reduction the profiler then measures.

    ``mask=None`` ("all pairs active") takes the dense fast path: no
    sentinel substitution, no masked gather, and the scatter-add becomes a
    ``bincount`` folded in with one aggregated charge.  The recorded
    counters are identical to the masked path with an all-true mask
    (:func:`~repro.gpusim.contention.warp_conflict_degrees` is computed
    per (warp, column), so column-stacked tiles sum exactly).
    """
    bins = np.asarray(problem.output.map_fn(values))
    if bins.dtype.kind not in "iu":
        bins = bins.astype(np.int64)
    if bins.shape != values.shape:
        raise ValueError(
            f"histogram map_fn changed shape: {values.shape} -> {bins.shape}"
        )
    if mask is None:
        nbins = problem.output.bins
        total = copies * nbins
        narrow = total < _INT32_MAX
        if bins.dtype.itemsize > 4:
            # values wider than int32 are bounds-checked BEFORE narrowing
            # (a wrapped value could alias into range); natively-narrow
            # bins rely on the per-copy bincount faults below instead
            if bins.size:
                lo, hi = int(bins.min()), int(bins.max())
                if lo < 0 or hi >= nbins:
                    raise IndexError(
                        f"bin index outside [0, {nbins}): [{lo}, {hi}]"
                    )
            if narrow:
                bins = bins.astype(np.int32)
        if copies > 1:
            # conflicts are profiled on composite (copy, bin) keys; the
            # per-lane offsets are folded into the profiler's transpose
            # buffer so no offset matrix is materialized, and the
            # scatter-add runs per copy so an out-of-range bin faults
            # loudly (no silent aliasing into a neighbour copy's range)
            if np.iinfo(bins.dtype).max < total:
                bins = bins.astype(np.int32 if narrow else np.int64)
            lane_offsets = (
                np.arange(bins.shape[0], dtype=bins.dtype) % copies
            ) * nbins
            degree_sum, issues = warp_conflict_degrees_dense(
                bins, ctx.warp_size, lane_offsets=lane_offsets
            )
            slabs = []
            for c in range(copies):
                try:
                    cnt = np.bincount(
                        bins[c::copies, :].ravel(), minlength=nbins
                    )
                except ValueError:  # negative bin: loud, like the min check
                    raise IndexError(
                        f"bin index outside [0, {nbins}): negative bin"
                    ) from None
                if cnt.size > nbins:
                    raise IndexError(
                        f"bin index outside [0, {nbins}): {cnt.size - 1}"
                    )
                slabs.append(cnt)
            counts = np.concatenate(slabs)
        else:
            degree_sum, issues = warp_conflict_degrees_dense(
                bins, ctx.warp_size
            )
            try:
                counts = np.bincount(bins.ravel(), minlength=target.size)
            except ValueError:  # negative bin: loud, like the min check
                raise IndexError(
                    f"bin index outside [0, {nbins}): negative bin"
                ) from None
            if counts.size > target.size:
                raise IndexError(
                    f"bin index outside [0, {nbins}): {counts.size - 1}"
                )
        atomic_add_dense(
            target, counts, bins.size, conflict_sample=(degree_sum, issues)
        )
        return
    active = mask
    if dense_masked:
        # Batched-engine flavour of the masked update: same bounds check,
        # same conflict sample (the dense profiler returns exactly the
        # reference per-(warp, issue) maxima), and the scatter-add folded
        # into a bincount with one aggregated ledger charge.  Only the
        # batched engine routes here; the sequential path below is the
        # seed's, untouched.
        nbins = problem.output.bins
        flat_bins = bins[active]
        if flat_bins.size:
            lo, hi = flat_bins.min(), flat_bins.max()
            if lo < 0 or hi >= nbins:
                raise IndexError(
                    f"bin index outside [0, {nbins}): [{lo}, {hi}]"
                )
        if copies > 1:
            lane_copy = (np.arange(bins.shape[0]) % copies)[:, None]
            bins = bins + lane_copy * nbins
            flat_bins = bins[active]
        # sentinels in the narrowest dtype that can hold them, so the
        # profiler's sort stays on the fast int32 path
        if (
            np.issubdtype(bins.dtype, np.signedinteger)
            and np.iinfo(bins.dtype).min < -bins.shape[0]
        ):
            lanes = np.arange(bins.shape[0], dtype=bins.dtype)[:, None]
        else:
            lanes = np.arange(bins.shape[0])[:, None]
        degree_sum, issues = warp_conflict_degrees_dense(
            np.where(active, bins, -(lanes + 1)), ctx.warp_size
        )
        counts = np.bincount(flat_bins, minlength=target.size)
        atomic_add_dense(
            target,
            counts,
            flat_bins.size,
            conflict_sample=(degree_sum, issues),
        )
        return
    if bins[active].size:
        lo, hi = bins[active].min(), bins[active].max()
        if lo < 0 or hi >= problem.output.bins:
            raise IndexError(
                f"bin index outside [0, {problem.output.bins}): [{lo}, {hi}]"
            )
    if copies > 1:
        lane_copy = (np.arange(bins.shape[0]) % copies)[:, None]
        bins = bins + lane_copy * problem.output.bins
    degree_sum, issues = warp_conflict_degrees(
        _masked_bins_with_sentinels(bins, active), ctx.warp_size
    )
    flat_bins = bins[active]
    atomic_add(
        target,
        flat_bins,
        np.ones(flat_bins.size, dtype=target.dtype),
        warp_size=ctx.warp_size,
        conflict_sample=(degree_sum, issues),
    )


def _histogram_update_mega(
    ctx: BlockContext,
    target,
    problem: TwoBodyProblem,
    panels,
    copies: int = 1,
) -> None:
    """Mega-batch HISTOGRAM fold: stream lazy value panels into ONE
    aggregated atomic charge.

    Each panel runs exactly the ``mask=None`` dense path of
    :func:`_histogram_update` (map, bounds check, conflict profile,
    bincount), but instead of issuing one :func:`atomic_add_dense` per
    panel the counts and conflict samples accumulate across the whole
    stack and land in a single call.  The conflict profile is computed
    per (warp, column) group, so panel sums equal the per-tile sums no
    matter where the panel boundaries fall; the recorded op count is the
    total pair count — identical totals to the tile-at-a-time engine,
    with the whole (block, n) value matrix never materialized.
    """
    nbins = problem.output.bins
    total = copies * nbins
    narrow = total < _INT32_MAX
    counts = np.zeros(target.size, dtype=np.int64)
    degree_sum = 0.0
    issues = 0
    n_ops = 0
    lane_offsets: Optional[np.ndarray] = None
    for _, values in panels.panels():
        bins = np.asarray(problem.output.map_fn(values))
        if bins.dtype.kind not in "iu":
            bins = bins.astype(np.int64)
        if bins.shape != values.shape:
            raise ValueError(
                f"histogram map_fn changed shape: {values.shape} -> {bins.shape}"
            )
        if bins.dtype.itemsize > 4:
            if bins.size:
                lo, hi = int(bins.min()), int(bins.max())
                if lo < 0 or hi >= nbins:
                    raise IndexError(
                        f"bin index outside [0, {nbins}): [{lo}, {hi}]"
                    )
            if narrow:
                bins = bins.astype(np.int32)
        if copies > 1:
            if np.iinfo(bins.dtype).max < total:
                bins = bins.astype(np.int32 if narrow else np.int64)
            if lane_offsets is None or lane_offsets.dtype != bins.dtype:
                lane_offsets = (
                    np.arange(bins.shape[0], dtype=bins.dtype) % copies
                ) * nbins
            d, i = warp_conflict_degrees_dense(
                bins, ctx.warp_size, lane_offsets=lane_offsets
            )
            for c in range(copies):
                try:
                    cnt = np.bincount(
                        bins[c::copies, :].ravel(), minlength=nbins
                    )
                except ValueError:  # negative bin: loud, like the min check
                    raise IndexError(
                        f"bin index outside [0, {nbins}): negative bin"
                    ) from None
                if cnt.size > nbins:
                    raise IndexError(
                        f"bin index outside [0, {nbins}): {cnt.size - 1}"
                    )
                counts[c * nbins : (c + 1) * nbins] += cnt
        else:
            d, i = warp_conflict_degrees_dense(bins, ctx.warp_size)
            try:
                cnt = np.bincount(bins.ravel(), minlength=target.size)
            except ValueError:  # negative bin: loud, like the min check
                raise IndexError(
                    f"bin index outside [0, {nbins}): negative bin"
                ) from None
            if cnt.size > target.size:
                raise IndexError(
                    f"bin index outside [0, {nbins}): {cnt.size - 1}"
                )
            counts += cnt
        degree_sum += d
        issues += i
        n_ops += bins.size
    atomic_add_dense(
        target, counts, n_ops, conflict_sample=(degree_sum, issues)
    )


class RegisterOutput(OutputStrategy):
    """Type-I: output lives in per-thread registers until kernel exit."""

    name = "register"
    suffix = ""
    supported_kinds = frozenset(
        {UpdateKind.SCALAR_SUM, UpdateKind.PER_POINT_SUM, UpdateKind.TOPK}
    )

    def create(self, device, problem, n, m, block_size) -> Dict[str, Any]:
        kind = problem.output.kind
        if kind is UpdateKind.TOPK:
            k = problem.output.k
            return {
                "dists": device.alloc((n, k), np.float64, name="knn-dists"),
                "ids": device.alloc((n, k), np.int64, name="knn-ids"),
            }
        return {"partials": device.alloc(n, np.float64, name="partials")}

    def block_init(self, ctx, bufs, problem, ids_l):
        nl = ids_l.size
        if problem.output.kind is UpdateKind.TOPK:
            k = problem.output.k
            return {
                "d": np.full((nl, k), np.inf),
                "i": np.full((nl, k), -1, dtype=np.int64),
            }
        return {"acc": np.zeros(nl)}

    def update(self, ctx, state, bufs, problem, ids_l, ids_r, values, mask):
        kind = problem.output.kind
        if kind is UpdateKind.TOPK:
            k = problem.output.k
            cand = values if mask is None else np.where(mask, values, np.inf)
            all_d = np.concatenate([state["d"], cand], axis=1)
            all_i = np.concatenate(
                [state["i"], np.broadcast_to(ids_r, cand.shape)], axis=1
            )
            pick = np.argpartition(all_d, k - 1, axis=1)[:, :k]
            rows = np.arange(all_d.shape[0])[:, None]
            state["d"] = all_d[rows, pick]
            state["i"] = all_i[rows, pick]
        else:
            weights = np.asarray(problem.output.map_fn(values), dtype=np.float64)
            if mask is None:
                state["acc"] += weights.sum(axis=1)
            else:
                state["acc"] += np.where(mask, weights, 0.0).sum(axis=1)

    def update_batch(self, ctx, state, bufs, problem, ids_l, ids_r_tiles, values):
        if problem.output.kind is UpdateKind.TOPK:
            # per-tile selection keeps tie-breaking identical to the
            # sequential engine on equidistant neighbours
            super().update_batch(
                ctx, state, bufs, problem, ids_l, ids_r_tiles, values
            )
            return
        weights = np.asarray(problem.output.map_fn(values), dtype=np.float64)
        state["acc"] += weights.sum(axis=1)

    def bulk_update(self, ctx, state, bufs, problem, ids_l, ids_r, value):
        # only SCALAR_SUM tiles are ever bulk-resolved here: each lane's
        # constant row sum folds into its register accumulator for free
        if problem.output.kind is not UpdateKind.SCALAR_SUM:
            super().bulk_update(ctx, state, bufs, problem, ids_l, ids_r, value)
            return
        state["acc"] += float(value) * ids_r.size

    def block_fini(self, ctx, state, bufs, problem, ids_l, block_id):
        if problem.output.kind is UpdateKind.TOPK:
            order = np.argsort(state["d"], axis=1, kind="stable")
            rows = np.arange(ids_l.size)[:, None]
            bufs["dists"].st((ids_l, slice(None)), state["d"][rows, order])
            bufs["ids"].st((ids_l, slice(None)), state["i"][rows, order])
        else:
            bufs["partials"].st(ids_l, state["acc"])

    def finalize(self, device, bufs, problem, n):
        kind = problem.output.kind
        if kind is UpdateKind.TOPK:
            return device.to_host(bufs["dists"]), device.to_host(bufs["ids"])
        partials = device.to_host(bufs["partials"])
        if kind is UpdateKind.SCALAR_SUM:
            return float(partials.sum())  # final fold on the host
        return partials

    def regs_overhead(self, problem) -> int:
        if problem.output.kind is UpdateKind.TOPK:
            return 2 * problem.output.k + 2
        return 3

    def traffic(
        self, geom, dims, problem, part="both", prune=None, cells=None
    ) -> TrafficProfile:
        if part == "intra":
            return TrafficProfile()  # register updates cost nothing extra
        # bulk resolves land in registers too: nothing extra to charge,
        # and register kinds are all beyond="zero" so cell-list residuals
        # fold nothing
        kind = problem.output.kind
        writes = 2 * problem.output.k * geom.n if kind is UpdateKind.TOPK else geom.n
        return TrafficProfile(global_stream_writes=writes)


class GlobalAtomicOutput(OutputStrategy):
    """Every update is an atomic against one global output structure."""

    name = "global-atomic"
    suffix = ""
    supported_kinds = frozenset({UpdateKind.HISTOGRAM, UpdateKind.SCALAR_SUM})

    def create(self, device, problem, n, m, block_size):
        if problem.output.kind is UpdateKind.HISTOGRAM:
            return {"hist": device.alloc(problem.output.bins, np.int64, name="hist")}
        return {"acc": device.alloc(1, np.float64, name="acc")}

    def block_init(self, ctx, bufs, problem, ids_l):
        return None

    def update(self, ctx, state, bufs, problem, ids_l, ids_r, values, mask):
        if problem.output.kind is UpdateKind.HISTOGRAM:
            _histogram_update(ctx, bufs["hist"], problem, values, mask)
        else:
            weights = np.asarray(problem.output.map_fn(values), dtype=np.float64)
            flat = weights.ravel() if mask is None else weights[mask]
            # one atomic per pair, all to the same address: worst case
            atomic_add(
                bufs["acc"],
                np.zeros(flat.size, dtype=np.int64),
                flat,
                warp_size=ctx.warp_size,
                conflict_sample=(
                    float(min(flat.size, ctx.warp_size))
                    * ((flat.size + ctx.warp_size - 1) // ctx.warp_size),
                    (flat.size + ctx.warp_size - 1) // ctx.warp_size,
                ),
            )

    def update_dense(self, ctx, state, bufs, problem, ids_l, ids_r, values, mask):
        if problem.output.kind is UpdateKind.HISTOGRAM:
            _histogram_update(
                ctx, bufs["hist"], problem, values, mask, dense_masked=True
            )
        else:
            self.update(ctx, state, bufs, problem, ids_l, ids_r, values, mask)

    def update_batch(self, ctx, state, bufs, problem, ids_l, ids_r_tiles, values):
        if problem.output.kind is UpdateKind.HISTOGRAM:
            _histogram_update(ctx, bufs["hist"], problem, values, None)
            return
        # aggregated scalar path: fold the whole batch's weight sum in with
        # one single-slot add, but charge the ledger exactly what the
        # per-tile loop would have — one atomic per pair, and the per-tile
        # worst-case conflict samples summed
        weights = np.asarray(problem.output.map_fn(values), dtype=np.float64)
        nl = values.shape[0]
        ws = ctx.warp_size
        degree_sum = 0.0
        issues = 0
        for ids_r in ids_r_tiles:
            sz = nl * ids_r.size
            iss = (sz + ws - 1) // ws
            degree_sum += float(min(sz, ws)) * iss
            issues += iss
        acc = bufs["acc"]
        acc.atomic_add_at(
            np.zeros(1, dtype=np.int64),
            np.asarray([weights.sum()], dtype=np.float64),
        )
        acc.counters.add_atomic(acc.space, weights.size)
        if issues:
            acc.counters.add_conflict_sample(degree_sum / issues, issues)

    def update_mega(self, ctx, state, bufs, problem, ids_l, ids_r_tiles, panels):
        if problem.output.kind is UpdateKind.HISTOGRAM:
            _histogram_update_mega(ctx, bufs["hist"], problem, panels)
        else:
            # scalar sums ride the aggregated update_batch fold
            super().update_mega(
                ctx, state, bufs, problem, ids_l, ids_r_tiles, panels
            )

    def bulk_update(self, ctx, state, bufs, problem, ids_l, ids_r, value):
        # one folded atomic for the whole tile — single lane, conflict-free
        npairs = ids_l.size * ids_r.size
        if problem.output.kind is UpdateKind.HISTOGRAM:
            atomic_add(
                bufs["hist"],
                np.asarray([int(value)], dtype=np.int64),
                np.asarray([npairs], dtype=np.int64),
                warp_size=ctx.warp_size,
                conflict_sample=(1.0, 1),
            )
        else:
            atomic_add(
                bufs["acc"],
                np.zeros(1, dtype=np.int64),
                np.asarray([float(value) * npairs]),
                warp_size=ctx.warp_size,
                conflict_sample=(1.0, 1),
            )

    def residual_update(self, ctx, state, bufs, problem, ids_l, count, value):
        # the anchor's whole beyond-cutoff residual lands in the clamp
        # bucket with one conflict-free atomic, like a bulk resolve
        atomic_add(
            bufs["hist"],
            np.asarray([int(value)], dtype=np.int64),
            np.asarray([int(count)], dtype=np.int64),
            warp_size=ctx.warp_size,
            conflict_sample=(1.0, 1),
        )

    def block_fini(self, ctx, state, bufs, problem, ids_l, block_id):
        pass

    def finalize(self, device, bufs, problem, n):
        if problem.output.kind is UpdateKind.HISTOGRAM:
            return device.to_host(bufs["hist"])
        return float(device.to_host(bufs["acc"])[0])

    def traffic(
        self, geom, dims, problem, part="both", prune=None, cells=None
    ) -> TrafficProfile:
        pairs = geom.pairs if part == "both" else geom.intra_pairs
        atomics = pairs
        if prune is not None and part == "both":
            atomics += prune.tiles_bulk  # one folded add per bulk tile
        if cells is not None and part == "both":
            atomics += cells.residual_folds  # one clamp fold per anchor
        return TrafficProfile(
            global_atomics=atomics,
            conflict_degree=analytic_conflict_degree(problem),
        )


class PrivatizedSharedOutput(OutputStrategy):
    """Type-II: per-block private copy in shared memory + Fig. 3 reduction.

    ``copies_per_block`` generalizes to several lane-interleaved private
    copies per block — the variant the paper tested and dismissed ("we
    tested more private copies per block and found that it does not bring
    overall performance advantage (data not shown)").  More copies lower
    the warp conflict degree but multiply the shared footprint (hurting
    occupancy) and the init/flush traffic; the ablation bench quantifies
    the trade-off.
    """

    name = "privatized-shm"
    suffix = "-Out"
    supported_kinds = frozenset({UpdateKind.HISTOGRAM})

    def __init__(self, copies_per_block: int = 1) -> None:
        if copies_per_block < 1:
            raise ValueError(
                f"need at least one private copy, got {copies_per_block}"
            )
        self.copies = copies_per_block

    def create(self, device, problem, n, m, block_size):
        hs = problem.output.bins
        return {
            "private": device.alloc((m, hs), np.int64, name="private-out"),
            "final": device.alloc(hs, np.int64, name="final-out"),
        }

    def block_init(self, ctx, bufs, problem, ids_l):
        # Algorithm 3 line 1: initialize shared memory to zero
        return ctx.alloc_shared(
            self.copies * problem.output.bins,
            dtype=np.int64,
            name="shm-out",
            zero=True,
        )

    def update(self, ctx, state, bufs, problem, ids_l, ids_r, values, mask):
        _histogram_update(ctx, state, problem, values, mask, copies=self.copies)

    def update_dense(self, ctx, state, bufs, problem, ids_l, ids_r, values, mask):
        _histogram_update(
            ctx, state, problem, values, mask,
            copies=self.copies, dense_masked=True,
        )

    def update_batch(self, ctx, state, bufs, problem, ids_l, ids_r_tiles, values):
        _histogram_update(ctx, state, problem, values, None, copies=self.copies)

    def update_mega(self, ctx, state, bufs, problem, ids_l, ids_r_tiles, panels):
        _histogram_update_mega(
            ctx, state, problem, panels, copies=self.copies
        )

    def bulk_update(self, ctx, state, bufs, problem, ids_l, ids_r, value):
        # fold the whole tile into copy 0 of the private histogram with
        # one conflict-free shared atomic; block_fini sums the copies, so
        # the flushed result is identical whichever copy receives it
        atomic_add(
            state,
            np.asarray([int(value)], dtype=np.int64),
            np.asarray([ids_l.size * ids_r.size], dtype=np.int64),
            warp_size=ctx.warp_size,
            conflict_sample=(1.0, 1),
        )

    def residual_update(self, ctx, state, bufs, problem, ids_l, count, value):
        # the cell-list residual folds into copy 0 of the private
        # histogram exactly like a bulk resolve: one conflict-free
        # shared atomic, summed into the flush by block_fini
        atomic_add(
            state,
            np.asarray([int(value)], dtype=np.int64),
            np.asarray([int(count)], dtype=np.int64),
            warp_size=ctx.warp_size,
            conflict_sample=(1.0, 1),
        )

    def block_fini(self, ctx, state, bufs, problem, ids_l, block_id):
        # Algorithm 3 line 15: copy the private output to global scope,
        # folding the block's lane-interleaved copies first
        vals = state.ld().reshape(self.copies, problem.output.bins).sum(axis=0)
        bufs["private"].st((block_id, slice(None)), vals)

    def finalize(self, device, bufs, problem, n):
        tr = getattr(device, "tracer", NULL_TRACER)
        if tr.enabled:
            # the tree-reduction launches recorded inside nest under this
            # span, so the trace shows the output stage as one unit
            ctx = tr.span(
                "reduce-output", cat="engine", phase=PHASE_MERGE,
                args={
                    "bins": problem.output.bins,
                    "copies": int(bufs["private"].shape[0]),
                },
            )
        else:
            ctx = tr.span("reduce-output")
        with ctx:
            reduce_private_copies(device, bufs["private"], bufs["final"])
        return device.to_host(bufs["final"])

    def shared_out_bytes(self, problem, block_size) -> int:
        return self.copies * problem.output.bins * 4  # 32-bit counters

    def _degree(self, problem) -> float:
        return analytic_conflict_degree(
            problem, lanes_per_copy=max(32 // self.copies, 1)
        )

    def traffic(
        self, geom, dims, problem, part="both", prune=None, cells=None
    ) -> TrafficProfile:
        if part == "intra":
            return TrafficProfile(
                shm_atomics=geom.intra_pairs,
                conflict_degree=self._degree(problem),
            )
        hs = problem.output.bins * self.copies
        m = geom.num_blocks
        shm_atomics = geom.pairs
        if prune is not None:
            shm_atomics += prune.tiles_bulk  # one folded add per bulk tile
        if cells is not None:
            shm_atomics += cells.residual_folds  # one clamp fold per anchor
        return TrafficProfile(
            shm_writes=hs * m,  # zero-initialization, every block
            shm_atomics=shm_atomics,
            shm_reads=hs * m,  # flush reads
            global_stream_writes=problem.output.bins * m,  # flush writes
            conflict_degree=self._degree(problem),
        )

    def extra_seconds(self, geom, problem, spec, calib) -> float:
        return reduction_stage_seconds(
            problem.output.bins, geom.num_blocks, spec, calib
        )


class GlobalDirectOutput(OutputStrategy):
    """Type-III: output streamed to global memory destinations."""

    name = "global-direct"
    suffix = "-Gmem"
    supported_kinds = frozenset({UpdateKind.MATRIX, UpdateKind.EMIT_PAIRS})

    def create(self, device, problem, n, m, block_size):
        if problem.output.kind is UpdateKind.MATRIX:
            return {"matrix": device.alloc((n, n), np.float64, name="pair-matrix")}
        return {
            "ticket": device.alloc(1, np.int64, name="emit-ticket"),
            # host-side spill of the emitted pair list, keyed by block id so
            # the concatenation order is deterministic under block-parallel
            # launches (each block is handled by exactly one worker)
            "emitted": {},
        }

    def block_init(self, ctx, bufs, problem, ids_l):
        if problem.output.kind is UpdateKind.EMIT_PAIRS:
            # a re-executed block (crash recovery) must not duplicate the
            # pairs it spilled before dying: starting a block resets its
            # spill list, making block re-execution idempotent
            bufs["emitted"][int(ctx.block_id)] = []
        return None

    def update(self, ctx, state, bufs, problem, ids_l, ids_r, values, mask):
        if problem.output.kind is UpdateKind.MATRIX:
            vals = np.asarray(problem.output.map_fn(values), dtype=np.float64)
            if mask is None:
                gi = np.repeat(ids_l, ids_r.size)
                gj = np.tile(ids_r, ids_l.size)
                flat = vals.ravel()
            else:
                ii, jj = np.nonzero(mask)
                gi, gj = ids_l[ii], ids_r[jj]
                flat = vals[ii, jj]
            bufs["matrix"].st((gi, gj), flat)
            bufs["matrix"].st((gj, gi), flat)  # symmetric fill
        else:
            pred = np.asarray(problem.output.map_fn(values), dtype=bool)
            if mask is not None:
                pred = pred & mask
            ii, jj = np.nonzero(pred)
            nm = ii.size
            if nm == 0:
                return
            atomic_ticket(bufs["ticket"], nm)  # reserve nm output slots
            bufs["emitted"].setdefault(int(ctx.block_id), []).append(
                np.stack([ids_l[ii], ids_r[jj]], axis=1).astype(np.int64)
            )
            # the pair writes themselves (two int columns per match)
            ctx.counters.add_write(MemSpace.GLOBAL, 2 * nm)

    def update_batch(self, ctx, state, bufs, problem, ids_l, ids_r_tiles, values):
        if problem.output.kind is UpdateKind.MATRIX:
            self.update(
                ctx, state, bufs, problem, ids_l,
                np.concatenate(ids_r_tiles), values, None,
            )
        else:  # EMIT_PAIRS is never batched (ticket-per-tile contract)
            super().update_batch(
                ctx, state, bufs, problem, ids_l, ids_r_tiles, values
            )

    def bulk_update(self, ctx, state, bufs, problem, ids_l, ids_r, value):
        # EMIT_PAIRS with a constant-True predicate: reserve nl*nr slots
        # with one ticket (the per-tile atomic contract holds) and spill
        # the full cross product without evaluating a single distance
        if problem.output.kind is not UpdateKind.EMIT_PAIRS:
            super().bulk_update(ctx, state, bufs, problem, ids_l, ids_r, value)
            return
        nm = ids_l.size * ids_r.size
        atomic_ticket(bufs["ticket"], nm)
        bufs["emitted"].setdefault(int(ctx.block_id), []).append(
            np.stack(
                [np.repeat(ids_l, ids_r.size), np.tile(ids_r, ids_l.size)],
                axis=1,
            ).astype(np.int64)
        )
        ctx.counters.add_write(MemSpace.GLOBAL, 2 * nm)

    def block_fini(self, ctx, state, bufs, problem, ids_l, block_id):
        pass

    def host_channels(self, bufs) -> tuple:
        # the EMIT_PAIRS spill dict is plain host state: under the process
        # engine each worker ships its deal's entries back explicitly (the
        # shared-memory shard path only carries device allocations)
        if "emitted" not in bufs:
            return ()
        emitted = bufs["emitted"]

        def collect(deal):
            return {int(b): emitted.get(int(b), []) for b in deal}

        def install(worker, deal, payload):
            emitted.update(payload)

        return (HostChannel(collect=collect, install=install),)

    def finalize(self, device, bufs, problem, n):
        if problem.output.kind is UpdateKind.MATRIX:
            return device.to_host(bufs["matrix"])
        tr = getattr(device, "tracer", NULL_TRACER)
        if tr.enabled:
            ctx = tr.span(
                "finalize-pairs", cat="engine", phase=PHASE_MERGE,
                args={"blocks": len(bufs["emitted"])},
            )
        else:
            ctx = tr.span("finalize-pairs")
        with ctx:
            return self._finalize_pairs(device, bufs)

    def _finalize_pairs(self, device, bufs):
        chunks = [
            arr for bid in sorted(bufs["emitted"]) for arr in bufs["emitted"][bid]
        ]
        if chunks:
            pairs = np.concatenate(chunks, axis=0)
            # canonical lexicographic order: emitted pairs are bit-identical
            # no matter how blocks were dealt to workers or striped across
            # devices (block-id concatenation alone would differ per stripe)
            pairs = pairs[np.lexsort((pairs[:, 1], pairs[:, 0]))]
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        count = int(device.to_host(bufs["ticket"])[0])
        if count != pairs.shape[0]:
            raise OutputCorruptionError(
                f"emit ticket counter out of sync: reserved {count} slots "
                f"but {pairs.shape[0]} pairs were emitted — output shard "
                "corrupted"
            )
        return pairs

    def traffic(
        self, geom, dims, problem, part="both", prune=None, cells=None
    ) -> TrafficProfile:
        pairs = geom.pairs if part == "both" else geom.intra_pairs
        if problem.output.kind is UpdateKind.MATRIX:
            return TrafficProfile(global_stream_writes=2 * pairs)
        # one ticket per (block, tile) batch + two words per emitted pair
        m = geom.num_blocks
        if part == "intra":
            batches = m
        elif geom.full_rows:
            batches = m * m
        else:
            batches = m * (m - 1) // 2 + m
        matches = problem.output.selectivity * pairs
        if cells is not None and part == "both":
            # only adjacency-surviving tiles are ever visited (skipped
            # tiles are beyond the cutoff: constant-False predicate, no
            # ticket, no residual)
            batches = cells.tiles_examined + m
        if prune is not None and part == "both":
            # skipped tiles never issue a ticket; bulk tiles keep their one
            # ticket and emit every pair (constant-True predicate)
            batches -= prune.tiles_skipped
            matches += prune.pairs_bulk
        return TrafficProfile(
            global_atomics=batches,
            global_stream_writes=2 * matches,
        )
