"""Output-stage strategies (Section IV-C).

Three designs matching the paper's taxonomy plus the Type-III direct path:

* :class:`RegisterOutput` — Type-I: per-thread accumulators in registers,
  flushed once when the kernel exits;
* :class:`GlobalAtomicOutput` — the "straightforward way": every update is
  an atomic on a single global structure (the 10x-slower baseline of
  Fig. 4);
* :class:`PrivatizedSharedOutput` — Type-II: one private copy per block in
  shared memory, atomic within the block, then the Fig. 3 reduction;
* :class:`GlobalDirectOutput` — Type-III: results written straight to
  their global destination (dense matrices) or compacted via an atomic
  ticket counter (joins).
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ...gpusim.atomics import atomic_add, atomic_ticket
from ...gpusim.calibration import Calibration
from ...gpusim.contention import expected_max_multiplicity, warp_conflict_degrees
from ...gpusim.counters import MemSpace
from ...gpusim.device import Device
from ...gpusim.grid import BlockContext
from ...gpusim.spec import DeviceSpec
from ...gpusim.timing import TrafficProfile, reduction_stage_seconds
from ..problem import OutputSpec, TwoBodyProblem, UpdateKind
from .base import OutputStrategy, PairGeometry
from .reduction import reduce_private_copies


def analytic_conflict_degree(
    problem: TwoBodyProblem, warp: int = 32, lanes_per_copy: int | None = None
) -> float:
    """Expected warp serialization of this problem's atomic updates.

    ``lanes_per_copy`` models lane-interleaved multi-copy privatization:
    only the lanes sharing an output copy can conflict.
    """
    out = problem.output
    m = lanes_per_copy if lanes_per_copy is not None else warp
    if out.kind is UpdateKind.SCALAR_SUM:
        return float(m)  # every lane of a copy group hits the same address
    if out.kind is UpdateKind.HISTOGRAM:
        probs = (
            np.asarray(out.bin_probabilities, dtype=np.float64)
            if out.bin_probabilities is not None
            else np.full(out.bins, 1.0 / out.bins)
        )
        return expected_max_multiplicity(probs, m)
    return 1.0


def _masked_bins_with_sentinels(
    bins: np.ndarray, mask: np.ndarray
) -> np.ndarray:
    """Replace masked-out entries with per-lane negative sentinels so the
    conflict profiler sees inactive lanes as conflict-free."""
    lanes = np.arange(bins.shape[0])[:, None]
    return np.where(mask, bins, -(lanes + 1))


def _histogram_update(
    ctx: BlockContext,
    target,
    problem: TwoBodyProblem,
    values: np.ndarray,
    mask: np.ndarray,
    copies: int = 1,
) -> None:
    """Shared HISTOGRAM update path: bin, bounds-check, atomic, profile.

    With ``copies > 1`` the target is a flat (copies * bins) array and
    lane t updates copy ``t % copies`` — the lane-interleaved multi-copy
    privatization whose conflict reduction the profiler then measures.
    """
    bins = np.asarray(problem.output.map_fn(values), dtype=np.int64)
    if bins.shape != values.shape:
        raise ValueError(
            f"histogram map_fn changed shape: {values.shape} -> {bins.shape}"
        )
    active = mask
    if bins[active].size:
        lo, hi = bins[active].min(), bins[active].max()
        if lo < 0 or hi >= problem.output.bins:
            raise IndexError(
                f"bin index outside [0, {problem.output.bins}): [{lo}, {hi}]"
            )
    if copies > 1:
        lane_copy = (np.arange(bins.shape[0]) % copies)[:, None]
        bins = bins + lane_copy * problem.output.bins
    degree_sum, issues = warp_conflict_degrees(
        _masked_bins_with_sentinels(bins, active), ctx.warp_size
    )
    flat_bins = bins[active]
    atomic_add(
        target,
        flat_bins,
        np.ones(flat_bins.size, dtype=target.dtype),
        warp_size=ctx.warp_size,
        conflict_sample=(degree_sum, issues),
    )


class RegisterOutput(OutputStrategy):
    """Type-I: output lives in per-thread registers until kernel exit."""

    name = "register"
    suffix = ""
    supported_kinds = frozenset(
        {UpdateKind.SCALAR_SUM, UpdateKind.PER_POINT_SUM, UpdateKind.TOPK}
    )

    def create(self, device, problem, n, m, block_size) -> Dict[str, Any]:
        kind = problem.output.kind
        if kind is UpdateKind.TOPK:
            k = problem.output.k
            return {
                "dists": device.alloc((n, k), np.float64, name="knn-dists"),
                "ids": device.alloc((n, k), np.int64, name="knn-ids"),
            }
        return {"partials": device.alloc(n, np.float64, name="partials")}

    def block_init(self, ctx, bufs, problem, ids_l):
        nl = ids_l.size
        if problem.output.kind is UpdateKind.TOPK:
            k = problem.output.k
            return {
                "d": np.full((nl, k), np.inf),
                "i": np.full((nl, k), -1, dtype=np.int64),
            }
        return {"acc": np.zeros(nl)}

    def update(self, ctx, state, bufs, problem, ids_l, ids_r, values, mask):
        kind = problem.output.kind
        if kind is UpdateKind.TOPK:
            k = problem.output.k
            cand = np.where(mask, values, np.inf)
            all_d = np.concatenate([state["d"], cand], axis=1)
            all_i = np.concatenate(
                [state["i"], np.broadcast_to(ids_r, cand.shape)], axis=1
            )
            pick = np.argpartition(all_d, k - 1, axis=1)[:, :k]
            rows = np.arange(all_d.shape[0])[:, None]
            state["d"] = all_d[rows, pick]
            state["i"] = all_i[rows, pick]
        else:
            weights = np.asarray(problem.output.map_fn(values), dtype=np.float64)
            state["acc"] += np.where(mask, weights, 0.0).sum(axis=1)

    def block_fini(self, ctx, state, bufs, problem, ids_l, block_id):
        if problem.output.kind is UpdateKind.TOPK:
            order = np.argsort(state["d"], axis=1, kind="stable")
            rows = np.arange(ids_l.size)[:, None]
            bufs["dists"].st((ids_l, slice(None)), state["d"][rows, order])
            bufs["ids"].st((ids_l, slice(None)), state["i"][rows, order])
        else:
            bufs["partials"].st(ids_l, state["acc"])

    def finalize(self, device, bufs, problem, n):
        kind = problem.output.kind
        if kind is UpdateKind.TOPK:
            return device.to_host(bufs["dists"]), device.to_host(bufs["ids"])
        partials = device.to_host(bufs["partials"])
        if kind is UpdateKind.SCALAR_SUM:
            return float(partials.sum())  # final fold on the host
        return partials

    def regs_overhead(self, problem) -> int:
        if problem.output.kind is UpdateKind.TOPK:
            return 2 * problem.output.k + 2
        return 3

    def traffic(self, geom, dims, problem, part="both") -> TrafficProfile:
        if part == "intra":
            return TrafficProfile()  # register updates cost nothing extra
        kind = problem.output.kind
        writes = 2 * problem.output.k * geom.n if kind is UpdateKind.TOPK else geom.n
        return TrafficProfile(global_stream_writes=writes)


class GlobalAtomicOutput(OutputStrategy):
    """Every update is an atomic against one global output structure."""

    name = "global-atomic"
    suffix = ""
    supported_kinds = frozenset({UpdateKind.HISTOGRAM, UpdateKind.SCALAR_SUM})

    def create(self, device, problem, n, m, block_size):
        if problem.output.kind is UpdateKind.HISTOGRAM:
            return {"hist": device.alloc(problem.output.bins, np.int64, name="hist")}
        return {"acc": device.alloc(1, np.float64, name="acc")}

    def block_init(self, ctx, bufs, problem, ids_l):
        return None

    def update(self, ctx, state, bufs, problem, ids_l, ids_r, values, mask):
        if problem.output.kind is UpdateKind.HISTOGRAM:
            _histogram_update(ctx, bufs["hist"], problem, values, mask)
        else:
            weights = np.asarray(problem.output.map_fn(values), dtype=np.float64)
            flat = weights[mask]
            # one atomic per pair, all to the same address: worst case
            atomic_add(
                bufs["acc"],
                np.zeros(flat.size, dtype=np.int64),
                flat,
                warp_size=ctx.warp_size,
                conflict_sample=(
                    float(min(flat.size, ctx.warp_size))
                    * ((flat.size + ctx.warp_size - 1) // ctx.warp_size),
                    (flat.size + ctx.warp_size - 1) // ctx.warp_size,
                ),
            )

    def block_fini(self, ctx, state, bufs, problem, ids_l, block_id):
        pass

    def finalize(self, device, bufs, problem, n):
        if problem.output.kind is UpdateKind.HISTOGRAM:
            return device.to_host(bufs["hist"])
        return float(device.to_host(bufs["acc"])[0])

    def traffic(self, geom, dims, problem, part="both") -> TrafficProfile:
        pairs = geom.pairs if part == "both" else geom.intra_pairs
        return TrafficProfile(
            global_atomics=pairs,
            conflict_degree=analytic_conflict_degree(problem),
        )


class PrivatizedSharedOutput(OutputStrategy):
    """Type-II: per-block private copy in shared memory + Fig. 3 reduction.

    ``copies_per_block`` generalizes to several lane-interleaved private
    copies per block — the variant the paper tested and dismissed ("we
    tested more private copies per block and found that it does not bring
    overall performance advantage (data not shown)").  More copies lower
    the warp conflict degree but multiply the shared footprint (hurting
    occupancy) and the init/flush traffic; the ablation bench quantifies
    the trade-off.
    """

    name = "privatized-shm"
    suffix = "-Out"
    supported_kinds = frozenset({UpdateKind.HISTOGRAM})

    def __init__(self, copies_per_block: int = 1) -> None:
        if copies_per_block < 1:
            raise ValueError(
                f"need at least one private copy, got {copies_per_block}"
            )
        self.copies = copies_per_block

    def create(self, device, problem, n, m, block_size):
        hs = problem.output.bins
        return {
            "private": device.alloc((m, hs), np.int64, name="private-out"),
            "final": device.alloc(hs, np.int64, name="final-out"),
        }

    def block_init(self, ctx, bufs, problem, ids_l):
        # Algorithm 3 line 1: initialize shared memory to zero
        return ctx.alloc_shared(
            self.copies * problem.output.bins,
            dtype=np.int64,
            name="shm-out",
            zero=True,
        )

    def update(self, ctx, state, bufs, problem, ids_l, ids_r, values, mask):
        _histogram_update(ctx, state, problem, values, mask, copies=self.copies)

    def block_fini(self, ctx, state, bufs, problem, ids_l, block_id):
        # Algorithm 3 line 15: copy the private output to global scope,
        # folding the block's lane-interleaved copies first
        vals = state.ld().reshape(self.copies, problem.output.bins).sum(axis=0)
        bufs["private"].st((block_id, slice(None)), vals)

    def finalize(self, device, bufs, problem, n):
        reduce_private_copies(device, bufs["private"], bufs["final"])
        return device.to_host(bufs["final"])

    def shared_out_bytes(self, problem, block_size) -> int:
        return self.copies * problem.output.bins * 4  # 32-bit counters

    def _degree(self, problem) -> float:
        return analytic_conflict_degree(
            problem, lanes_per_copy=max(32 // self.copies, 1)
        )

    def traffic(self, geom, dims, problem, part="both") -> TrafficProfile:
        if part == "intra":
            return TrafficProfile(
                shm_atomics=geom.intra_pairs,
                conflict_degree=self._degree(problem),
            )
        hs = problem.output.bins * self.copies
        m = geom.num_blocks
        return TrafficProfile(
            shm_writes=hs * m,  # zero-initialization, every block
            shm_atomics=geom.pairs,
            shm_reads=hs * m,  # flush reads
            global_stream_writes=problem.output.bins * m,  # flush writes
            conflict_degree=self._degree(problem),
        )

    def extra_seconds(self, geom, problem, spec, calib) -> float:
        return reduction_stage_seconds(
            problem.output.bins, geom.num_blocks, spec, calib
        )


class GlobalDirectOutput(OutputStrategy):
    """Type-III: output streamed to global memory destinations."""

    name = "global-direct"
    suffix = "-Gmem"
    supported_kinds = frozenset({UpdateKind.MATRIX, UpdateKind.EMIT_PAIRS})

    def create(self, device, problem, n, m, block_size):
        if problem.output.kind is UpdateKind.MATRIX:
            return {"matrix": device.alloc((n, n), np.float64, name="pair-matrix")}
        return {
            "ticket": device.alloc(1, np.int64, name="emit-ticket"),
            "emitted": [],  # host-side spill of the emitted pair list
        }

    def block_init(self, ctx, bufs, problem, ids_l):
        return None

    def update(self, ctx, state, bufs, problem, ids_l, ids_r, values, mask):
        if problem.output.kind is UpdateKind.MATRIX:
            vals = np.asarray(problem.output.map_fn(values), dtype=np.float64)
            ii, jj = np.nonzero(mask)
            gi, gj = ids_l[ii], ids_r[jj]
            bufs["matrix"].st((gi, gj), vals[ii, jj])
            bufs["matrix"].st((gj, gi), vals[ii, jj])  # symmetric fill
        else:
            pred = np.asarray(problem.output.map_fn(values), dtype=bool) & mask
            ii, jj = np.nonzero(pred)
            nm = ii.size
            if nm == 0:
                return
            atomic_ticket(bufs["ticket"], nm)  # reserve nm output slots
            bufs["emitted"].append(
                np.stack([ids_l[ii], ids_r[jj]], axis=1).astype(np.int64)
            )
            # the pair writes themselves (two int columns per match)
            ctx.counters.add_write(MemSpace.GLOBAL, 2 * nm)

    def block_fini(self, ctx, state, bufs, problem, ids_l, block_id):
        pass

    def finalize(self, device, bufs, problem, n):
        if problem.output.kind is UpdateKind.MATRIX:
            return device.to_host(bufs["matrix"])
        if bufs["emitted"]:
            pairs = np.concatenate(bufs["emitted"], axis=0)
        else:
            pairs = np.empty((0, 2), dtype=np.int64)
        count = int(device.to_host(bufs["ticket"])[0])
        assert count == pairs.shape[0], "ticket counter out of sync"
        return pairs

    def traffic(self, geom, dims, problem, part="both") -> TrafficProfile:
        pairs = geom.pairs if part == "both" else geom.intra_pairs
        if problem.output.kind is UpdateKind.MATRIX:
            return TrafficProfile(global_stream_writes=2 * pairs)
        # one ticket per (block, tile) batch + two words per emitted pair
        m = geom.num_blocks
        if part == "intra":
            batches = m
        elif geom.full_rows:
            batches = m * m
        else:
            batches = m * (m - 1) // 2 + m
        matches = problem.output.selectivity * pairs
        return TrafficProfile(
            global_atomics=batches,
            global_stream_writes=2 * matches,
        )
