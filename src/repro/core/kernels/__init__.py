"""Kernel variants and the composition factory.

``make_kernel`` assembles any (input x output) combination; ``PAPER_PCF``
and ``PAPER_SDH`` name the exact kernel line-ups of the paper's two
evaluation sections (Figs. 2 and 4/9).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

from ..problem import OutputClass, TwoBodyProblem, UpdateKind
from .base import (
    ComposedKernel,
    FULL_ROW_KINDS,
    InputStrategy,
    OutputStrategy,
    PairGeometry,
    compute_geometry,
)
from .naive import NaiveInput
from .outputs import (
    GlobalAtomicOutput,
    GlobalDirectOutput,
    PrivatizedSharedOutput,
    RegisterOutput,
    analytic_conflict_degree,
)
from .reduction import REDUCE_BLOCK, reduce_private_copies
from .register_roc import RegisterRocInput
from .register_shm import RegisterShmInput
from .shm_shm import ShmShmInput
from .shuffle_tile import ShuffleInput

INPUT_STRATEGIES: Dict[str, Type[InputStrategy]] = {
    "naive": NaiveInput,
    "shm-shm": ShmShmInput,
    "register-shm": RegisterShmInput,
    "register-roc": RegisterRocInput,
    "shuffle": ShuffleInput,
}

OUTPUT_STRATEGIES: Dict[str, Type[OutputStrategy]] = {
    "register": RegisterOutput,
    "global-atomic": GlobalAtomicOutput,
    "privatized-shm": PrivatizedSharedOutput,
    "global-direct": GlobalDirectOutput,
}

#: sensible default output strategy per output class (paper Section IV-C)
DEFAULT_OUTPUT_FOR_CLASS = {
    OutputClass.TYPE_I: "register",
    OutputClass.TYPE_II: "privatized-shm",
    OutputClass.TYPE_III: "global-direct",
}


def make_kernel(
    problem: TwoBodyProblem,
    input_strategy: str = "register-shm",
    output_strategy: Optional[str] = None,
    block_size: int = 256,
    load_balanced: bool = False,
    name: Optional[str] = None,
    output_kwargs: Optional[dict] = None,
    prune: bool = False,
    cells: bool = False,
) -> ComposedKernel:
    """Compose a 2-BS kernel by strategy names.

    ``output_strategy`` defaults by the problem's output class; for Type-I
    problems whose kind the register path cannot hold that is an error the
    strategy's ``check`` reports.  ``output_kwargs`` are forwarded to the
    output strategy's constructor (e.g. ``copies_per_block`` for
    privatized-shm).  ``prune`` enables bounds-based tile pruning — the
    problem must carry a :class:`~repro.core.problem.PruningSpec`.
    ``cells`` enables the uniform-grid cell-list engine — the problem
    must carry a :class:`~repro.core.problem.CellSpec`.
    """
    try:
        input_cls = INPUT_STRATEGIES[input_strategy]
    except KeyError:
        raise KeyError(
            f"unknown input strategy {input_strategy!r}; "
            f"available: {sorted(INPUT_STRATEGIES)}"
        ) from None
    out_name = output_strategy or DEFAULT_OUTPUT_FOR_CLASS[problem.output.klass]
    try:
        output_cls = OUTPUT_STRATEGIES[out_name]
    except KeyError:
        raise KeyError(
            f"unknown output strategy {out_name!r}; "
            f"available: {sorted(OUTPUT_STRATEGIES)}"
        ) from None
    return ComposedKernel(
        problem,
        input_cls(),
        output_cls(**(output_kwargs or {})),
        block_size=block_size,
        load_balanced=load_balanced,
        name=name,
        prune=prune,
        cells=cells,
    )


#: Fig. 2's kernel line-up for Type-I problems: (display name, input, output)
PAPER_PCF: Tuple[Tuple[str, str, str], ...] = (
    ("Naive", "naive", "register"),
    ("SHM-SHM", "shm-shm", "register"),
    ("Register-SHM", "register-shm", "register"),
    ("Register-ROC", "register-roc", "register"),
)

#: Fig. 4 / Fig. 9's kernel line-up for SDH (Type-II)
PAPER_SDH: Tuple[Tuple[str, str, str], ...] = (
    ("Naive", "naive", "global-atomic"),
    ("Register-SHM", "register-shm", "global-atomic"),
    ("Register-ROC", "register-roc", "global-atomic"),
    ("Naive-Out", "naive", "privatized-shm"),
    ("Reg-SHM-Out", "register-shm", "privatized-shm"),
    ("Reg-ROC-Out", "register-roc", "privatized-shm"),
    ("Shuffle", "shuffle", "privatized-shm"),
)


# imported after INPUT_STRATEGIES exists (twopass reads the registry)
from .megabatch import MEGA_PANEL_COLUMNS, PanelStack, run_mega_block  # noqa: E402
from .scan import SCAN_BLOCK, exclusive_scan  # noqa: E402
from .twopass import TwoPassJoinKernel, TwoPassResult  # noqa: E402


def paper_kernels(
    problem: TwoBodyProblem,
    lineup: Tuple[Tuple[str, str, str], ...],
    block_size: int = 256,
) -> Dict[str, ComposedKernel]:
    """Instantiate a named kernel line-up against one problem."""
    return {
        display: make_kernel(
            problem, inp, out, block_size=block_size, name=display
        )
        for display, inp, out in lineup
    }


__all__ = [
    "ComposedKernel", "InputStrategy", "OutputStrategy", "PairGeometry",
    "compute_geometry", "FULL_ROW_KINDS", "NaiveInput", "ShmShmInput",
    "RegisterShmInput", "RegisterRocInput", "ShuffleInput", "RegisterOutput",
    "GlobalAtomicOutput", "PrivatizedSharedOutput", "GlobalDirectOutput",
    "analytic_conflict_degree", "reduce_private_copies", "REDUCE_BLOCK",
    "INPUT_STRATEGIES", "OUTPUT_STRATEGIES", "DEFAULT_OUTPUT_FOR_CLASS",
    "make_kernel", "PAPER_PCF", "PAPER_SDH", "paper_kernels",
    "exclusive_scan", "SCAN_BLOCK", "TwoPassJoinKernel", "TwoPassResult",
    "MEGA_PANEL_COLUMNS", "PanelStack", "run_mega_block",
]
