"""Register-ROC input strategy (Section IV-A, third solution).

The anchor datum stays in registers; every partner read is served by the
read-only data cache (the ``const __restrict__`` path).  Slower per access
than shared memory (92 vs 28 cycles, 1 vs 3 TB/s) but it leaves shared
memory entirely free — which is exactly what the privatized output stage
wants, making Reg-ROC-Out the paper's best SDH kernel (Section IV-D).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...gpusim.counters import MemSpace
from ...gpusim.device import Device
from ...gpusim.grid import BlockContext
from ...gpusim.memory import ReadOnlyView, TrackedArray
from ...gpusim.timing import TrafficProfile
from .base import InputStrategy, PairGeometry


class RegisterRocInput(InputStrategy):
    """Anchor in registers, partner reads through the read-only cache."""

    name = "Register-ROC"
    reads_per_pair = 1
    uses_shared_tile = False

    def prepare(self, device: Device, data_g: TrackedArray) -> ReadOnlyView:
        # bind the input to the texture path for the kernel's lifetime
        return device.readonly(data_g)

    def load_tile(self, ctx, data_g, state: ReadOnlyView, block_state, ids, anchor_n):
        # the ROC is hardware-managed: no staging traffic; per-pair reads
        # are charged in charge_pair_reads
        return state.raw()[:, ids]

    def load_tile_batch(
        self, ctx, data_g, state: ReadOnlyView, block_state, ids_r_tiles, anchor_n
    ):
        # cache-served gather with no staging charge: fancy-index the whole
        # partner stack at once (per-pair ROC reads still charged per tile)
        ids = (
            ids_r_tiles[0]
            if len(ids_r_tiles) == 1
            else np.concatenate(ids_r_tiles)
        )
        return state.raw()[:, ids]

    def load_intra(self, ctx, data_g, state: ReadOnlyView, block_state, ids):
        return state.raw()[:, ids]

    def charge_pair_reads(self, ctx, n_l, n_r, n_pairs, dims) -> None:
        ctx.counters.add_read(MemSpace.ROC, n_pairs * dims)

    def regs_per_thread(self, dims: int) -> int:
        return 22 + 2 * dims  # same register footprint as Register-SHM

    def traffic(
        self, geom: PairGeometry, dims: int, part: str = "both"
    ) -> TrafficProfile:
        if part == "intra":
            return TrafficProfile(roc_reads=dims * geom.intra_pairs)
        return TrafficProfile(
            global_stream=dims * geom.n,  # anchor register loads
            roc_reads=dims * (geom.inter_pairs + geom.intra_pairs),
        )
