"""Register-SHM input strategy (Algorithm 3, pairwise stage).

The anchor datum is held in registers ("the register modifier in CUDA"),
the streamed block R in shared memory — one shared point-read per distance
evaluation (Eq. 5, half of SHM-SHM's Eq. 4).  For the intra-block pass the
anchor block is re-loaded *into the same shared buffer R used* (Algorithm 3
line 10), keeping total shared consumption at one tile.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...gpusim.counters import MemSpace
from ...gpusim.grid import BlockContext
from ...gpusim.memory import TrackedArray
from ...gpusim.timing import TrafficProfile
from .base import InputStrategy, PairGeometry


class RegisterShmInput(InputStrategy):
    """Anchor in registers, R tile in shared memory."""

    name = "Register-SHM"
    reads_per_pair = 1
    uses_shared_tile = True

    def block_setup(self, ctx: BlockContext, dims: int) -> dict:
        # a single tile buffer; the intra pass overwrites it with L
        return {"R": ctx.alloc_shared((dims, ctx.nthreads), name="tileR")}

    def _stage(self, ctx, data_g, tile: TrackedArray, ids: np.ndarray) -> np.ndarray:
        vals = data_g.ld((slice(None), ids))
        tile.st((slice(None), slice(0, ids.size)), vals)
        ctx.syncthreads()
        return vals

    def load_tile(self, ctx, data_g, state, block_state, ids, anchor_n) -> np.ndarray:
        return self._stage(ctx, data_g, block_state["R"], ids)

    def load_intra(self, ctx, data_g, state, block_state, ids) -> np.ndarray:
        # Algorithm 3 line 10: overwrite R's cache location with L
        return self._stage(ctx, data_g, block_state["R"], ids)

    def charge_pair_reads(self, ctx, n_l, n_r, n_pairs, dims) -> None:
        ctx.counters.add_read(MemSpace.SHARED, n_pairs * dims)

    def shared_tile_bytes(self, block_size: int, dims: int) -> int:
        return block_size * dims * 4  # a single tile buffer

    def regs_per_thread(self, dims: int) -> int:
        return 22 + 2 * dims

    def traffic(
        self, geom: PairGeometry, dims: int, part: str = "both"
    ) -> TrafficProfile:
        if part == "intra":
            # the pass reloads L into the tile buffer, then reads per pair
            return TrafficProfile(
                global_stream=dims * geom.n,
                shm_writes=dims * geom.n,
                shm_reads=dims * geom.intra_pairs,
            )
        # anchor register loads + R tiles + the intra-pass L reload (the
        # reload only exists where there IS an intra pass: cross-dataset
        # kernels have none, and a single-point tail block skips it too)
        if geom.intra_pairs:
            tail = geom.n - (geom.num_blocks - 1) * geom.block_size
            reload_points = geom.n - (1 if tail == 1 else 0)
        else:
            reload_points = 0
        staged = geom.tile_loads_points + reload_points
        return TrafficProfile(
            global_stream=dims * (geom.n + staged),
            shm_writes=dims * staged,
            shm_reads=dims * (geom.inter_pairs + geom.intra_pairs),
        )
