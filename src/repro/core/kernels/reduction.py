"""Parallel reduction kernel combining privatized outputs (Fig. 3).

After the pairwise stage, each thread block has flushed its private output
copy to a row of a global ``(M, Hs)`` staging buffer.  A second kernel —
"configured to have one thread handle one element in the output array"
(Section IV-C) — folds the M copies into the final Hs-element result.
"""

from __future__ import annotations

import numpy as np

from ...gpusim.device import Device, LaunchRecord
from ...gpusim.grid import BlockContext, LaunchConfig
from ...gpusim.memory import TrackedArray

#: block size of the reduction launch (a typical choice; any warp multiple
#: works — the stage is negligible either way, which is Eq. 7's point).
REDUCE_BLOCK = 256


def reduce_private_copies(
    device: Device,
    private_g: TrackedArray,
    out_g: TrackedArray,
    *,
    name: str = "reduce-output",
) -> LaunchRecord:
    """Launch the combine kernel: ``out[h] = sum_m private[m][h]``."""
    m, hs = private_g.shape
    if out_g.shape != (hs,):
        raise ValueError(
            f"final buffer shape {out_g.shape} does not match Hs={hs}"
        )
    grid = (hs + REDUCE_BLOCK - 1) // REDUCE_BLOCK

    def kernel(ctx: BlockContext) -> None:
        base = ctx.block_id * REDUCE_BLOCK
        cols = np.arange(base, min(base + REDUCE_BLOCK, hs))
        if cols.size == 0:
            return
        # each thread reads its element from all M private copies ...
        chunk = private_g.ld((slice(None), cols))  # M reads per thread
        # ... and writes one final element
        out_g.st(cols, chunk.sum(axis=0))

    return device.launch(
        kernel, LaunchConfig(grid_dim=grid, block_dim=REDUCE_BLOCK), name=name
    )
