"""Kernel composition framework.

The paper factors every 2-BS kernel into two nearly-independent stages —
*pairwise computation* (Section IV-A: Naive / SHM-SHM / Register-SHM /
Register-ROC / shuffle tiling) and *data output* (Section IV-C: register
accumulation, direct global atomics, privatized shared memory + reduction).
Its stated long-term vision is a framework that composes the right
technique per stage automatically.  This module is that composition seam:

* :class:`InputStrategy` — where partner data is staged and how many cache
  accesses each distance evaluation costs;
* :class:`OutputStrategy` — what "update output with d" does and where the
  result lives;
* :class:`ComposedKernel` — Algorithm 2/3's block structure, generic over
  both strategies, with a functional ``execute`` (exact outputs + exact
  access counts on the simulated device) and an analytical
  ``traffic``/``simulate`` path (paper-scale timing).

Kernels the paper names map to compositions:
``Naive = naive x direct``, ``Register-SHM = register-shm x <any>``,
``Reg-ROC-Out = register-roc x privatized-shm``, etc.
"""

from __future__ import annotations

import math
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ...gpusim.counters import ELEMENT_BYTES
from ...gpusim.device import Device, LaunchRecord
from ...gpusim.divergence import warp_loop_cycles
from ...gpusim.grid import BlockContext, LaunchConfig
from ...gpusim.memory import TrackedArray
from ...gpusim.occupancy import Occupancy, calculate_occupancy
from ...gpusim.parallel import resolve_backend, resolve_workers
from ...gpusim.profiler import SimReport, build_report
from ...gpusim.spec import DeviceSpec, TITAN_X
from ...gpusim.timing import (
    PipelineCycles,
    TrafficProfile,
    cycles_from_traffic,
    simulate_time,
)
from ...obs.tracer import NULL_TRACER, US_PER_PAIR
from ..analytical import cells_geometry, pruned_geometry
from ..bounds import PruneStats, TilePruner
from ..cells import (
    CellStats,
    cells_eligible,
    get_cell_index,
    resolve_clamp_bin,
)
from ..problem import OutputSpec, TwoBodyProblem, UpdateKind, as_soa
from ..tiling import (
    BlockDecomposition,
    cyclic_schedule,
    cyclic_trips,
    triangular_pair_mask,
    triangular_trips,
)

#: Output kinds whose per-point results force every thread to see *all*
#: partners (each unordered pair is evaluated from both endpoints).
FULL_ROW_KINDS = frozenset({UpdateKind.TOPK, UpdateKind.PER_POINT_SUM})

#: Column budget for one batched tile evaluation: the auto tile-batch width
#: is ``TILE_BATCH_COLUMNS // block_size`` R-tiles, so a whole batch of
#: pair values is evaluated (and its output charged) in one vectorized
#: call regardless of the block size.  The budget is deliberately modest:
#: a batch's float64 value matrix plus its bin/sort shadows must stay
#: cache-resident per worker, and sweeps on the reference host show wide
#: batches (32+ tiles) losing ~15% to cache misses versus 2-4 tiles.
TILE_BATCH_COLUMNS = 512

#: Environment override for the tile batch width ("auto" or an integer
#: number of R-tiles per batch; "1" disables batching).
TILE_BATCH_ENV = "REPRO_SIM_TILE_BATCH"

#: memoized (raw env string, parsed value) pair — sweeps call ``execute``
#: thousands of times and must not re-parse the environment each time.
_TILE_BATCH_CACHE: Tuple[str, Optional[int]] = ("", None)


def _tile_batch_from_env() -> Optional[int]:
    """Parsed ``REPRO_SIM_TILE_BATCH`` (``None`` = unset / ``"auto"``).

    The parse is memoized on the raw string: repeated ``execute()`` calls
    pay one dict lookup, not a strip/lower/int round-trip, while an env
    change between calls (tests monkeypatching, sweep drivers) is still
    picked up.  A malformed value names the variable and the accepted
    forms instead of surfacing a bare ``int()`` ValueError.
    """
    global _TILE_BATCH_CACHE
    raw = os.environ.get(TILE_BATCH_ENV, "")
    cached_raw, cached_val = _TILE_BATCH_CACHE
    if raw == cached_raw:
        return cached_val
    env = raw.strip().lower()
    if not env or env == "auto":
        value: Optional[int] = None
    else:
        try:
            value = int(env)
        except ValueError:
            raise ValueError(
                f"invalid {TILE_BATCH_ENV}={raw!r}: expected 'auto' or a "
                "positive integer number of R-tiles per batch"
            ) from None
        if value < 1:
            raise ValueError(
                f"invalid {TILE_BATCH_ENV}={raw!r}: expected 'auto' or a "
                "positive integer number of R-tiles per batch"
            )
    _TILE_BATCH_CACHE = (raw, value)
    return value


@dataclass(frozen=True)
class PairGeometry:
    """Pair/tile counts for one launch, shared by both strategy kinds."""

    n: int
    block_size: int
    num_blocks: int
    inter_pairs: int  # distance evaluations across block pairs
    intra_pairs: int  # distance evaluations within blocks
    tile_loads_points: int  # points staged by R-tile loads, summed
    full_rows: bool

    @property
    def pairs(self) -> int:
        return self.inter_pairs + self.intra_pairs


def block_sizes(n: int, block_size: int) -> np.ndarray:
    """Per-block point counts (all ``block_size`` except a ragged tail)."""
    dec = BlockDecomposition(n, block_size)
    sizes = np.full(dec.num_blocks, block_size, dtype=np.int64)
    sizes[-1] = n - (dec.num_blocks - 1) * block_size
    return sizes


@lru_cache(maxsize=4096)
def compute_geometry(n: int, block_size: int, full_rows: bool) -> PairGeometry:
    """Exact pair/tile-load counts, ragged last block included.

    Closed/vectorized forms (O(M), not O(M^2)) — benchmarks call this at
    M in the thousands.  Memoized (:class:`PairGeometry` is frozen):
    planner and figure sweeps re-derive the same geometry constantly.
    """
    sizes = block_sizes(n, block_size)
    m = sizes.size
    if full_rows:
        intra = int((sizes * (sizes - 1)).sum())
        inter = n * (n - 1) - intra
        tiles = int((n - sizes).sum())  # each block streams all others
    else:
        intra = int((sizes * (sizes - 1) // 2).sum())
        inter = n * (n - 1) // 2 - intra
        # block i is loaded as an R tile once per lower-indexed block
        tiles = int((np.arange(m) * sizes).sum())
    return PairGeometry(
        n=n,
        block_size=block_size,
        num_blocks=m,
        inter_pairs=inter,
        intra_pairs=intra,
        tile_loads_points=tiles,
        full_rows=full_rows,
    )


def _translate_cell_result(result, problem: TwoBodyProblem, perm: np.ndarray):
    """Map a cell-engine result from grid (Morton-sorted) point order back
    to the caller's original order.  Aggregate outputs (histograms, scalar
    sums) are order-free; per-point results are inverse-permuted; emitted
    pairs are id-mapped, row-normalized to ``i < j`` and lexsorted — the
    tile engine's canonical pair order."""
    kind = problem.output.kind
    if kind is UpdateKind.PER_POINT_SUM:
        out = np.empty_like(result)
        out[perm] = result
        return out
    if kind is UpdateKind.EMIT_PAIRS:
        pairs = np.asarray(result)
        if pairs.size == 0:
            return pairs
        mapped = np.sort(perm[pairs], axis=1)
        return mapped[np.lexsort((mapped[:, 1], mapped[:, 0]))]
    return result


@lru_cache(maxsize=256)
def _offdiag_mask(n: int) -> np.ndarray:
    """Cached, read-only (n, n) mask excluding the diagonal — the intra
    mask of full-row kernels (each pair seen from both endpoints)."""
    mask = ~np.eye(n, dtype=bool)
    mask.setflags(write=False)
    return mask


class InputStrategy(ABC):
    """Where partner data lives during the pairwise stage."""

    name: str = "abstract"
    #: partner-point reads charged per distance evaluation (SHM-SHM pays 2:
    #: L[t] and R[j]; register-anchored strategies pay 1).
    reads_per_pair: int = 1
    uses_shared_tile: bool = False
    #: whether the analytical traffic model can account for bounds-pruned
    #: tiles through the effective geometry (shuffle tiling cannot: its
    #: warp-padded loads depend on *which* tiles survive, not how many).
    supports_pruning: bool = True

    def prepare(self, device: Device, data_g: TrackedArray) -> Any:
        """Launch-level setup (e.g. bind the ROC view).  Returns state."""
        return None

    def block_setup(self, ctx: BlockContext, dims: int) -> Any:
        """Block-level setup (e.g. allocate the shared tile buffers)."""
        return None

    def load_anchor(
        self,
        ctx: BlockContext,
        data_g: TrackedArray,
        state: Any,
        block_state: Any,
        ids: np.ndarray,
    ) -> np.ndarray:
        """Bring the anchor block L where this strategy keeps it.

        Default: each thread loads its own datum straight into registers
        (Algorithm 3 line 2) — one coalesced global element-read per dim.
        """
        return data_g.ld((slice(None), ids))

    @abstractmethod
    def load_tile(
        self,
        ctx: BlockContext,
        data_g: TrackedArray,
        state: Any,
        block_state: Any,
        ids: np.ndarray,
        anchor_n: int,
    ) -> np.ndarray:
        """Stage partner block ``ids`` and return its values (dims, nR),
        counting whatever traffic the staging costs."""

    def load_tile_batch(
        self,
        ctx: BlockContext,
        data_g: TrackedArray,
        state: Any,
        block_state: Any,
        ids_r_tiles: List[np.ndarray],
        anchor_n: int,
    ) -> np.ndarray:
        """Stage several partner tiles and return their values stacked
        column-wise, ``(dims, sum of tile widths)``.

        Default: per-tile :meth:`load_tile` calls concatenated — same
        staging traffic and sync counts as the tile-at-a-time engine, so
        shared-memory strategies inherit a bit-identical ledger for free.
        Strategies whose staging is a pure uncharged-or-aggregable gather
        override this with one fancy-indexed gather over the concatenated
        ids (identical recorded totals, one numpy call).
        """
        tiles = [
            self.load_tile(ctx, data_g, state, block_state, ids, anchor_n)
            for ids in ids_r_tiles
        ]
        return tiles[0] if len(tiles) == 1 else np.concatenate(tiles, axis=1)

    @abstractmethod
    def load_intra(
        self,
        ctx: BlockContext,
        data_g: TrackedArray,
        state: Any,
        block_state: Any,
        ids: np.ndarray,
    ) -> np.ndarray:
        """Make the anchor block readable for the intra-block pass
        (Algorithm 3 line 10 for Register-SHM)."""

    @abstractmethod
    def charge_pair_reads(
        self, ctx: BlockContext, n_l: int, n_r: int, n_pairs: int, dims: int
    ) -> None:
        """Count the per-evaluation partner reads for one tile pass."""

    def shared_tile_bytes(self, block_size: int, dims: int) -> int:
        return 0

    def regs_per_thread(self, dims: int) -> int:
        """Register footprint estimate for the occupancy calculator."""
        return 24 + 2 * dims

    @abstractmethod
    def traffic(
        self, geom: PairGeometry, dims: int, part: str = "both"
    ) -> TrafficProfile:
        """Analytical input-side traffic for one launch.

        ``part`` selects the whole launch (``"both"``) or only the
        intra-block pass (``"intra"``) — the slice the paper times in its
        load-balancing experiment (Fig. 7).
        """


class OutputStrategy(ABC):
    """What "update output with d" means and where results accumulate."""

    name: str = "abstract"
    suffix: str = ""  # appended to kernel display names, e.g. "-Out"
    supported_kinds: frozenset = frozenset()

    def check(self, problem: TwoBodyProblem) -> None:
        if problem.output.kind not in self.supported_kinds:
            raise ValueError(
                f"output strategy {self.name!r} does not support "
                f"{problem.output.kind.value!r} outputs"
            )

    @abstractmethod
    def create(
        self, device: Device, problem: TwoBodyProblem, n: int, m: int, block_size: int
    ) -> Dict[str, Any]:
        """Allocate launch-level output buffers on the device."""

    @abstractmethod
    def block_init(
        self,
        ctx: BlockContext,
        bufs: Dict[str, Any],
        problem: TwoBodyProblem,
        ids_l: np.ndarray,
    ) -> Any:
        """Per-block output state (registers or a private shared copy)."""

    @abstractmethod
    def update(
        self,
        ctx: BlockContext,
        state: Any,
        bufs: Dict[str, Any],
        problem: TwoBodyProblem,
        ids_l: np.ndarray,
        ids_r: np.ndarray,
        values: np.ndarray,
        mask: Optional[np.ndarray],
    ) -> None:
        """Fold a (nL, nR) value matrix (restricted to ``mask``) in.

        ``mask=None`` means "all pairs active" — strategies take a fast
        path that skips masked fancy-indexing entirely (the inter-block
        tiles, which dominate, are always all-active).
        """

    def update_batch(
        self,
        ctx: BlockContext,
        state: Any,
        bufs: Dict[str, Any],
        problem: TwoBodyProblem,
        ids_l: np.ndarray,
        ids_r_tiles: List[np.ndarray],
        values: np.ndarray,
    ) -> None:
        """Fold a horizontal stack of all-active partner tiles in.

        ``values`` is ``(nL, sum of tile widths)`` — the per-tile value
        matrices concatenated along axis 1, every pair active.  The
        default walks the tiles and charges per tile (bit-identical to the
        unbatched engine); strategies override it to charge the ledger in
        aggregated form — one vectorized charge per batch — while keeping
        the recorded counts equal to the per-tile sum.
        """
        off = 0
        for ids_r in ids_r_tiles:
            w = ids_r.size
            self.update(
                ctx, state, bufs, problem, ids_l, ids_r,
                values[:, off:off + w], None,
            )
            off += w

    def update_mega(
        self,
        ctx: BlockContext,
        state: Any,
        bufs: Dict[str, Any],
        problem: TwoBodyProblem,
        ids_l: np.ndarray,
        ids_r_tiles: List[np.ndarray],
        panels: "PanelStack",
    ) -> None:
        """Fold one block's entire surviving partner stack in at once.

        ``panels`` is a lazy :class:`~.megabatch.PanelStack` over the
        column-stacked partner values (every pair active).  The default
        materializes the full value matrix and reuses the batched fold —
        bit-identical charges by construction.  Histogram strategies
        override this to stream fixed-width panels into one aggregated
        accumulate, never holding the whole matrix.
        """
        values = panels.materialize()
        if len(ids_r_tiles) == 1:
            self.update(
                ctx, state, bufs, problem, ids_l, ids_r_tiles[0], values, None
            )
        else:
            self.update_batch(
                ctx, state, bufs, problem, ids_l, ids_r_tiles, values
            )

    def host_channels(self, bufs: Dict[str, Any]) -> tuple:
        """Transport hooks for host-side (non-device) output state, for
        engines that run blocks in worker *processes* (see
        :class:`repro.gpusim.procpool.HostChannel`).  Device allocations
        travel through the shared-memory shard path automatically; only
        strategies whose kernels mutate plain host objects override this.
        """
        return ()

    def update_dense(
        self,
        ctx: BlockContext,
        state: Any,
        bufs: Dict[str, Any],
        problem: TwoBodyProblem,
        ids_l: np.ndarray,
        ids_r: np.ndarray,
        values: np.ndarray,
        mask: Optional[np.ndarray],
    ) -> None:
        """Masked update, batched-engine flavour.

        Semantically identical to :meth:`update` (same results, same
        ledger charges); strategies may override it with vectorized
        profiling fast paths that only pay off on the batched engine's
        dense intra-block masks.  The sequential engine never calls this,
        so the seed's tile-at-a-time behaviour stays byte-for-byte.
        """
        self.update(ctx, state, bufs, problem, ids_l, ids_r, values, mask)

    def bulk_update(
        self,
        ctx: BlockContext,
        state: Any,
        bufs: Dict[str, Any],
        problem: TwoBodyProblem,
        ids_l: np.ndarray,
        ids_r: np.ndarray,
        value: Any,
    ) -> None:
        """Resolve a whole all-active tile whose map value is constant.

        The bounds layer proved every pair of this (L, R) tile maps to the
        same output cell ``value``; fold ``len(ids_l) * len(ids_r)`` pairs
        in with one O(1) update (and one ledger charge) instead of
        evaluating the tile.  Only the kinds the pruner marks bulk ever
        arrive here, so strategies implement exactly those.
        """
        raise NotImplementedError(
            f"output strategy {self.name!r} cannot bulk-resolve "
            f"{problem.output.kind.value!r} tiles"
        )

    def residual_update(
        self,
        ctx: BlockContext,
        state: Any,
        bufs: Dict[str, Any],
        problem: TwoBodyProblem,
        ids_l: np.ndarray,
        count: int,
        value: Any,
    ) -> None:
        """Fold one anchor block's cell-list residual into the output.

        The cell layer certified that ``count`` pairs of this anchor sit
        beyond the cutoff, and the problem declared (``beyond="clamp"``)
        that every such pair lands in output cell ``value``; fold the
        count in with one O(1) update instead of evaluating the pairs.
        Only clamp-mode histograms ever arrive here.
        """
        raise NotImplementedError(
            f"output strategy {self.name!r} cannot fold cell-list "
            f"residuals for {problem.output.kind.value!r} outputs"
        )

    @abstractmethod
    def block_fini(
        self,
        ctx: BlockContext,
        state: Any,
        bufs: Dict[str, Any],
        problem: TwoBodyProblem,
        ids_l: np.ndarray,
        block_id: int,
    ) -> None:
        """Flush block-private state to global memory."""

    @abstractmethod
    def finalize(
        self, device: Device, bufs: Dict[str, Any], problem: TwoBodyProblem, n: int
    ):
        """Combine/transfer the final result to the host (may launch the
        reduction kernel of Fig. 3)."""

    def shared_out_bytes(self, problem: TwoBodyProblem, block_size: int) -> int:
        return 0

    def regs_overhead(self, problem: TwoBodyProblem) -> int:
        return 2

    @abstractmethod
    def traffic(
        self,
        geom: PairGeometry,
        dims: int,
        problem: TwoBodyProblem,
        part: str = "both",
        prune: Optional[PruneStats] = None,
        cells: Optional[CellStats] = None,
    ) -> TrafficProfile:
        """Analytical output-side traffic for the main launch (``part`` as
        in :meth:`InputStrategy.traffic`).

        With ``prune`` or ``cells`` the geometry is already *effective*
        (pruned / adjacency-skipped pairs subtracted); strategies add the
        O(1) bulk-resolve and residual-fold charges — typically one
        atomic each — on top.
        """

    def extra_seconds(
        self,
        geom: PairGeometry,
        problem: TwoBodyProblem,
        spec: DeviceSpec,
        calib: Calibration,
    ) -> float:
        """Sequential post-passes (reduction kernel etc.)."""
        return 0.0


class ComposedKernel:
    """Algorithm 2/3's block-tiled 2-BS kernel, generic over strategies."""

    def __init__(
        self,
        problem: TwoBodyProblem,
        input_strategy: InputStrategy,
        output_strategy: OutputStrategy,
        block_size: int = 256,
        load_balanced: bool = False,
        name: Optional[str] = None,
        prune: bool = False,
        cells: bool = False,
    ) -> None:
        output_strategy.check(problem)
        if block_size <= 0:
            raise ValueError(f"block size must be positive, got {block_size}")
        if prune:
            if problem.pruning is None:
                raise ValueError(
                    f"bounds pruning requested but problem {problem.name!r} "
                    "carries no PruningSpec"
                )
            if not input_strategy.supports_pruning:
                raise ValueError(
                    f"input strategy {input_strategy.name!r} does not "
                    "support bounds pruning"
                )
        if cells:
            ok, why = cells_eligible(problem)
            if not ok:
                raise ValueError(why)
            if not input_strategy.supports_pruning:
                # same constraint as pruning: the strategy's traffic model
                # must price effective (reduced) geometry
                raise ValueError(
                    f"input strategy {input_strategy.name!r} has no "
                    "effective-geometry traffic model for cell lists"
                )
            # validates the clamp declaration at construction time (the
            # satellite fix: a misdeclared cutoff fails loudly here, not
            # as a stray histogram bucket at runtime)
            resolve_clamp_bin(problem)
        self.problem = problem
        self.input = input_strategy
        self.output = output_strategy
        self.block_size = block_size
        self.load_balanced = load_balanced
        self.prune = prune
        self.cells = cells
        if name is None:
            name = f"{input_strategy.name}{output_strategy.suffix}"
            if prune:
                name += "+prune"
            if cells:
                name += "+cells"
        self.name = name
        self._traffic_cache: Dict[
            Tuple[int, str, Optional[PruneStats], Optional[CellStats]],
            TrafficProfile,
        ] = {}

    # -- properties -----------------------------------------------------------
    @property
    def full_rows(self) -> bool:
        return self.problem.output.kind in FULL_ROW_KINDS

    def geometry(self, n: int) -> PairGeometry:
        return compute_geometry(n, self.block_size, self.full_rows)

    def shared_bytes_per_block(self) -> int:
        return self.input.shared_tile_bytes(
            self.block_size, self.problem.dims
        ) + self.output.shared_out_bytes(self.problem, self.block_size)

    def regs_per_thread(self) -> int:
        return self.input.regs_per_thread(self.problem.dims) + self.output.regs_overhead(
            self.problem
        )

    def launch_config(self, n: int) -> LaunchConfig:
        geom = self.geometry(n)
        return LaunchConfig(
            grid_dim=geom.num_blocks,
            block_dim=self.block_size,
            shared_bytes=self.shared_bytes_per_block(),
            regs_per_thread=self.regs_per_thread(),
        )

    def occupancy(self, spec: DeviceSpec = TITAN_X) -> Occupancy:
        return calculate_occupancy(
            spec,
            self.block_size,
            regs_per_thread=self.regs_per_thread(),
            shared_per_block=self.shared_bytes_per_block(),
        )

    # -- functional path --------------------------------------------------------
    def _resolve_tile_batch(
        self, batch_tiles: Optional[int], workers: int = 1
    ) -> int:
        """R-tiles stacked per pair_fn evaluation.

        ``None`` consults ``REPRO_SIM_TILE_BATCH`` and otherwise picks the
        auto width: :data:`TILE_BATCH_COLUMNS` columns *aggregate across
        workers*, so concurrent workers' batch matrices do not blow the
        cache budget a single worker would use.  EMIT_PAIRS kernels always
        run tile-at-a-time: their one-ticket-per-tile atomic count is part
        of the contract with the analytical model.
        """
        if self.problem.output.kind is UpdateKind.EMIT_PAIRS:
            return 1
        if batch_tiles is None:
            batch_tiles = _tile_batch_from_env()
            if batch_tiles is None:
                per_worker = TILE_BATCH_COLUMNS // max(1, workers)
                # floor of 2 keeps the dense batched update path engaged
                # even when many workers split the column budget
                return max(2, per_worker // self.block_size)
        if batch_tiles < 1:
            raise ValueError(f"batch_tiles must be >= 1, got {batch_tiles}")
        return batch_tiles

    def execute(
        self,
        device: Device,
        points: np.ndarray,
        *,
        workers: Optional[int] = None,
        batch_tiles: Optional[int] = None,
        blocks: Optional[Sequence[int]] = None,
        backend: Optional[str] = None,
    ) -> Tuple[Any, LaunchRecord]:
        """Run the kernel on the simulated device.

        Returns ``(result, main_launch_record)``; any reduction launch is
        recorded on the device's launch list.

        ``workers`` selects the block-parallel engine (see
        :meth:`repro.gpusim.device.Device.launch`); ``batch_tiles`` the
        number of partner R-tiles stacked into one pair_fn evaluation
        (``1`` = the legacy tile-at-a-time loop).  Both engines charge
        access counters identical to the legacy path; float outputs may
        differ within the usual re-association tolerance.

        ``backend`` picks the execution engine (``None`` defers to
        ``REPRO_SIM_BACKEND``, then ``"auto"``): ``"sequential"`` forces
        one in-thread worker, ``"threads"``/``"processes"`` select the
        block-parallel engines, and ``"megabatch"`` swaps the per-block
        kernel body for the mega-batch path (one stacked evaluation of
        all surviving partner tiles per stage — see
        :mod:`repro.core.kernels.megabatch`), riding whichever block
        engine the worker count resolves to.

        ``blocks`` restricts execution to a subset of anchor blocks — a
        device stripe in the multi-GPU decomposition, or the failed block
        range the resilience supervisor re-executes.  Each selected block
        still sees the full dataset as partners, so the partial outputs of
        disjoint block subsets merge exactly like the privatized copies of
        paper Fig. 3.
        """
        problem = self.problem
        soa = as_soa(points)
        dims, n = soa.shape
        if dims != problem.dims:
            raise ValueError(
                f"problem {problem.name!r} expects {problem.dims}-d points, "
                f"got {dims}-d"
            )
        dec = BlockDecomposition(n, self.block_size)
        if blocks is not None:
            blocks = list(blocks)
            bad = [b for b in blocks if not 0 <= b < dec.num_blocks]
            if bad:
                raise ValueError(
                    f"block ids {bad} outside grid [0, {dec.num_blocks})"
                )
        grid_blocks = dec.num_blocks if blocks is None else max(1, len(blocks))
        engine = resolve_backend(backend)
        if engine == "sequential":
            resolved_workers = 1
        else:
            resolved_workers = resolve_workers(workers, grid_blocks)
        mega = engine == "megabatch"
        batch = self._resolve_tile_batch(batch_tiles, resolved_workers)
        full = self.full_rows
        tr = getattr(device, "tracer", NULL_TRACER)
        trace_on = tr.enabled
        # cell-list engine: points run in the grid's canonical (Morton)
        # order, so the index, the block structure, and every partner
        # list are pure functions of (points, spec, block size) — the
        # same across worker counts, backends, blocks= stripes, and
        # checkpoint resume.  Results are translated back to the
        # original point order before returning.
        cindex = clamp_bin = None
        perm = None
        if self.cells:
            cindex = get_cell_index(soa, self.block_size, problem.cells)
            clamp_bin = resolve_clamp_bin(problem)
            perm = cindex.perm
            soa = np.ascontiguousarray(soa[:, perm])
            if trace_on:
                with tr.span(
                    "cell-index", cat="cells",
                    args={
                        "cells": cindex.total_cells,
                        "occupied": cindex.cells_occupied,
                        "blocks": cindex.num_blocks,
                    },
                ):
                    pass
        data_g = device.to_device(soa, name="input")
        in_state = self.input.prepare(device, data_g)
        bufs = self.output.create(device, problem, n, dec.num_blocks, self.block_size)
        # classification is a pure function of (data, block size, problem),
        # so pruned execution stays bit-identical across worker counts,
        # tile batching, and blocks= stripes (under cells it classifies
        # the grid-ordered blocks)
        pruner = (
            TilePruner(soa, self.block_size, problem, tracer=tr)
            if self.prune
            else None
        )
        # per-block point counts, used only to price tile spans in
        # simulated time when tracing is live
        bsizes = block_sizes(n, self.block_size) if trace_on else None

        def kernel(ctx: BlockContext) -> None:
            b = ctx.block_id
            ids_l = dec.block_indices(b)
            nl = ids_l.size
            block_state = self.input.block_setup(ctx, dims)
            reg_l = self.input.load_anchor(ctx, data_g, in_state, block_state, ids_l)
            out_state = self.output.block_init(ctx, bufs, problem, ids_l)
            if cindex is not None:
                partner_blocks = cindex.partner_blocks(b, full).tolist()
                resid = cindex.residual_pairs(b, full)
                if trace_on:
                    tr.instant(
                        "cells", cat="cells",
                        args={
                            "block": int(b),
                            "partners": len(partner_blocks),
                            "skipped_pairs": int(resid),
                            "fold": int(
                                clamp_bin is not None and resid > 0
                            ),
                        },
                    )
                if resid and clamp_bin is not None:
                    # the skipped pairs all land in the clamp bucket by
                    # declaration: one conflict-free fold preserves the
                    # histogram's mass invariants exactly
                    self.output.residual_update(
                        ctx, out_state, bufs, problem, ids_l, resid,
                        clamp_bin,
                    )
            else:
                partner_blocks = (
                    [i for i in range(dec.num_blocks) if i != b]
                    if full
                    else list(range(b + 1, dec.num_blocks))
                )
            if pruner is not None:
                cls = pruner.classify(b)
                survivors: List[int] = []
                n_skip = n_bulk = 0
                for i in partner_blocks:
                    if cls.skip[i]:
                        n_skip += 1
                        continue  # certified zero contribution: no work
                    if cls.bulk[i]:
                        # whole tile maps to one output cell: O(1) update,
                        # never staged or evaluated
                        n_bulk += 1
                        self.output.bulk_update(
                            ctx, out_state, bufs, problem, ids_l,
                            dec.block_indices(i), cls.value[i],
                        )
                    else:
                        survivors.append(i)
                if trace_on:
                    tr.instant(
                        "prune", cat="prune",
                        args={
                            "block": int(b), "skipped": n_skip,
                            "bulk": n_bulk, "evaluate": len(survivors),
                        },
                    )
                partner_blocks = survivors

            # NOTE on structure: the tile/batch/intra bodies stay INLINE in
            # this frame rather than factored into helpers.  Their ~1 MB
            # value matrices then live until the next loop iteration
            # rebinds them, so the allocator hands back the same hot pages
            # each time; a helper function would free them at every return
            # and large-block reuse (and its warm pages) would be lost —
            # measured at ~15% wall time on the batched engine.  Tracing
            # wraps each body in a span that is the shared no-op context
            # when disabled, keeping the hot path allocation-free.
            if batch <= 1:
                # legacy tile-at-a-time loop; the all-ones mask is hoisted
                # and reused across equally-sized tiles instead of being
                # re-allocated per tile
                ones_mask: Optional[np.ndarray] = None
                for i in partner_blocks:
                    if trace_on:
                        pairs = nl * int(bsizes[i])
                        span = tr.span(
                            "tile", cat="engine", key=i,
                            cost_us=pairs * US_PER_PAIR,
                            args={
                                "block": int(b), "partner": int(i),
                                "pairs": pairs,
                            },
                        )
                    else:
                        span = tr.span("tile")
                    with span:
                        ids_r = dec.block_indices(i)
                        vals_r = self.input.load_tile(
                            ctx, data_g, in_state, block_state, ids_r, nl
                        )
                        values = problem.pair_fn(reg_l, vals_r)
                        self.input.charge_pair_reads(
                            ctx, nl, ids_r.size, nl * ids_r.size, dims
                        )
                        if ones_mask is None or ones_mask.shape != (nl, ids_r.size):
                            ones_mask = np.ones((nl, ids_r.size), dtype=bool)
                        self.output.update(
                            ctx, out_state, bufs, problem, ids_l, ids_r, values,
                            ones_mask,
                        )
            else:
                # batched tile path: stage `batch` R-tiles (charging their
                # staging traffic per tile, as the hardware would), then
                # evaluate pair_fn once over the stacked columns and fold
                # the whole batch into the output with one aggregated call
                for start in range(0, len(partner_blocks), batch):
                    chunk = partner_blocks[start : start + batch]
                    if trace_on:
                        pairs = nl * int(bsizes[chunk].sum())
                        span = tr.span(
                            "tile-batch", cat="engine", key=start,
                            cost_us=pairs * US_PER_PAIR,
                            args={
                                "block": int(b), "tiles": len(chunk),
                                "pairs": pairs,
                            },
                        )
                    else:
                        span = tr.span("tile-batch")
                    with span:
                        ids_r_tiles: List[np.ndarray] = []
                        val_tiles: List[np.ndarray] = []
                        for i in chunk:
                            ids_r = dec.block_indices(i)
                            vals_r = self.input.load_tile(
                                ctx, data_g, in_state, block_state, ids_r, nl
                            )
                            self.input.charge_pair_reads(
                                ctx, nl, ids_r.size, nl * ids_r.size, dims
                            )
                            ids_r_tiles.append(ids_r)
                            val_tiles.append(vals_r)
                        if not ids_r_tiles:
                            continue
                        stacked = (
                            val_tiles[0]
                            if len(val_tiles) == 1
                            else np.concatenate(val_tiles, axis=1)
                        )
                        values = problem.pair_fn(reg_l, stacked)
                        if len(ids_r_tiles) == 1:
                            self.output.update(
                                ctx, out_state, bufs, problem, ids_l,
                                ids_r_tiles[0], values, None,
                            )
                        else:
                            self.output.update_batch(
                                ctx, out_state, bufs, problem, ids_l,
                                ids_r_tiles, values,
                            )
            # intra-block pass (skipped entirely for single-point blocks,
            # matching the analytical model's zero-intra accounting)
            n_intra = nl * (nl - 1) if full else nl * (nl - 1) // 2
            if n_intra == 0:
                self.output.block_fini(ctx, out_state, bufs, problem, ids_l, b)
                return
            if trace_on:
                span = tr.span(
                    "intra", cat="engine", key=dec.num_blocks,
                    cost_us=n_intra * US_PER_PAIR,
                    args={"block": int(b), "pairs": int(n_intra)},
                )
            else:
                span = tr.span("intra")
            with span:
                vals_l = self.input.load_intra(
                    ctx, data_g, in_state, block_state, ids_l
                )
                values = problem.pair_fn(reg_l, vals_l)
                self.input.charge_pair_reads(ctx, nl, nl, n_intra, dims)
                # the batched engine routes the dense intra-block masks
                # through update_dense (same results and charges, vectorized
                # profiling); the cyclic schedule keeps plain update() — its
                # per-iteration masks are sparse, where the gather path is
                # already cheapest
                intra_update = (
                    self.output.update_dense if batch > 1 else self.output.update
                )
                if full:
                    intra_update(
                        ctx, out_state, bufs, problem, ids_l, ids_l, values,
                        _offdiag_mask(nl),
                    )
                elif self.load_balanced and nl == self.block_size and nl % 2 == 0:
                    # cyclic schedule: one update() per iteration, matching
                    # the hardware's warp-synchronous issue pattern (Fig. 6
                    # right); one mask buffer is reused across iterations
                    # (set the active pairs, update, clear them again)
                    mask_buf = np.zeros((nl, nl), dtype=bool)
                    for partners in cyclic_schedule(nl):
                        active = partners >= 0
                        rows = np.nonzero(active)[0]
                        cols = partners[active]
                        mask_buf[rows, cols] = True
                        self.output.update(
                            ctx, out_state, bufs, problem, ids_l, ids_l,
                            values, mask_buf,
                        )
                        mask_buf[rows, cols] = False
                else:
                    intra_update(
                        ctx, out_state, bufs, problem, ids_l, ids_l, values,
                        triangular_pair_mask(nl),
                    )
            self.output.block_fini(ctx, out_state, bufs, problem, ids_l, b)

        if mega:
            # the mega-batch body replaces the inline tile loop wholesale;
            # the lazy import keeps base <-> megabatch acyclic at load time
            from .megabatch import run_mega_block

            def kernel(ctx: BlockContext) -> None:  # noqa: F811
                run_mega_block(
                    self, ctx, dec, data_g, in_state, bufs, pruner, tr,
                    trace_on, bsizes, dims, full,
                    cells=cindex, clamp_bin=clamp_bin,
                )

        record = device.launch(
            kernel, self.launch_config(n), name=self.name,
            workers=resolved_workers, blocks=blocks, backend=engine,
            host_channels=self.output.host_channels(bufs),
        )
        if pruner is not None:
            record.prune = pruner.stats(
                full_rows=full, anchors=blocks,
                partners_fn=(
                    None
                    if cindex is None
                    else (lambda a: cindex.partner_blocks(a, full))
                ),
            )
        if cindex is not None:
            record.cells = cindex.stats(
                full_rows=full, anchors=blocks,
                clamp=clamp_bin is not None,
            )
        result = self.output.finalize(device, bufs, problem, n)
        if perm is not None:
            result = _translate_cell_result(result, problem, perm)
        return result, record

    # -- analytical path ---------------------------------------------------------
    def intra_issue_scale(self) -> float:
        """Divergence-driven issue inflation of the intra-block pass."""
        b = self.block_size
        if self.full_rows:
            return 1.0  # uniform trip counts: no divergence
        trips = cyclic_trips(b) if (self.load_balanced and b % 2 == 0) else triangular_trips(b)
        return warp_loop_cycles(trips).penalty

    def traffic(
        self,
        n: int,
        part: str = "both",
        prune: Optional[PruneStats] = None,
        cells: Optional[CellStats] = None,
    ) -> TrafficProfile:
        """Analytical traffic profile.

        ``part="both"`` covers the whole launch (what the consistency
        tests compare against functional counters); ``part="intra"``
        isolates the intra-block pass (Fig. 7's measured slice).

        ``prune`` / ``cells`` are the launch's measured (or
        planner-predicted) :class:`~repro.core.bounds.PruneStats` /
        :class:`~repro.core.cells.CellStats`; strategy traffic is then
        evaluated on the *effective* geometry — skipped pairs and tile
        loads subtracted — plus the O(1) bulk-resolve / residual-fold
        charges, keeping the profile equal to the launch's functional
        counters.  The intra slice is never reduced (the diagonal's
        lower bound is 0, and a block is always in its own
        neighborhood).
        """
        if part not in ("both", "intra"):
            raise ValueError(f"part must be 'both' or 'intra', got {part!r}")
        if part == "intra":
            prune = None  # pruning never touches the intra-block pass
            cells = None
        if (prune is not None or cells is not None) and (
            not self.input.supports_pruning
        ):
            raise ValueError(
                f"input strategy {self.input.name!r} has no "
                "effective-geometry traffic model"
            )
        key = (n, part, prune, cells)
        cached = self._traffic_cache.get(key)
        if cached is not None:
            return cached
        geom = self.geometry(n)
        if cells is not None:
            geom = cells_geometry(geom, cells)
        if prune is not None:
            geom = pruned_geometry(geom, prune)
        dims = self.problem.dims
        pairs = geom.pairs if part == "both" else geom.intra_pairs
        profile = TrafficProfile(pairs=pairs, compute=self.problem.compute_cost)
        profile = profile + self.input.traffic(geom, dims, part=part)
        profile = profile + self.output.traffic(
            geom, dims, self.problem, part=part, prune=prune, cells=cells
        )
        self._traffic_cache[key] = profile
        return profile

    def pipeline_cycles(
        self,
        n: int,
        calib: Calibration = DEFAULT_CALIBRATION,
        prune: Optional[PruneStats] = None,
        cells: Optional[CellStats] = None,
    ) -> PipelineCycles:
        """Total per-lane issue cycles, divergence included.

        Divergence inflates the *whole* warp instruction stream of the
        intra-block pass (idle lanes still occupy compute and memory issue
        slots), so the penalty scales every pipeline of the intra slice.
        """
        full = cycles_from_traffic(
            self.traffic(n, prune=prune, cells=cells), calib
        )
        penalty = self.intra_issue_scale()
        if penalty > 1.0:
            intra = cycles_from_traffic(self.traffic(n, part="intra"), calib)
            full = full + intra.scaled(penalty - 1.0)
        return full

    def simulate(
        self,
        n: int,
        spec: DeviceSpec = TITAN_X,
        calib: Calibration = DEFAULT_CALIBRATION,
        prune: Optional[PruneStats] = None,
        cells: Optional[CellStats] = None,
    ) -> SimReport:
        """Predicted performance at paper scale (no functional execution).

        ``prune`` / ``cells`` fold a pruning or cell-adjacency outcome
        (measured on a launch, or predicted by
        :func:`~repro.core.bounds.prune_stats` /
        :func:`~repro.core.cells.cell_stats`) into the traffic and
        timing model.
        """
        geom = self.geometry(n)
        profile = self.traffic(n, prune=prune, cells=cells)
        cycles = self.pipeline_cycles(n, calib, prune=prune, cells=cells)
        occ = self.occupancy(spec)
        extra = self.output.extra_seconds(geom, self.problem, spec, calib)
        timing = simulate_time(
            cycles,
            spec=spec,
            occupancy=occ.occupancy,
            calib=calib,
            extra_seconds=extra,
        )
        report = build_report(
            kernel=self.name,
            n=n,
            timing=timing,
            spec=spec,
            counters=profile.expected_counters(),
            extras={
                "pairs": float(geom.pairs),
                "blocks": float(geom.num_blocks),
            },
        )
        report.extras["shared_bytes_per_block"] = float(self.shared_bytes_per_block())
        if prune is not None:
            report.extras["pairs_pruned"] = float(prune.pairs_pruned)
            report.extras["tiles_pruned"] = float(prune.tiles_pruned)
        if cells is not None:
            report.extras["cells_pairs_skipped"] = float(cells.pairs_skipped)
            report.extras["cells_tiles_skipped"] = float(cells.tiles_skipped)
        return report

    def simulate_intra(
        self,
        n: int,
        spec: DeviceSpec = TITAN_X,
        calib: Calibration = DEFAULT_CALIBRATION,
    ) -> SimReport:
        """Predicted time of the intra-block pass alone — the slice the
        paper's Fig. 7 measures to evaluate load balancing."""
        cycles = cycles_from_traffic(self.traffic(n, part="intra"), calib)
        cycles = cycles.scaled(self.intra_issue_scale())
        occ = self.occupancy(spec)
        timing = simulate_time(
            cycles, spec=spec, occupancy=occ.occupancy, calib=calib
        )
        return build_report(
            kernel=f"{self.name}-intra", n=n, timing=timing, spec=spec
        )

    def __repr__(self) -> str:
        lb = ", load_balanced" if self.load_balanced else ""
        return (
            f"ComposedKernel({self.name}: {self.problem.name}, "
            f"B={self.block_size}{lb})"
        )
