"""Naive input strategy (Algorithm 1).

Every thread keeps its own datum in a local variable (register) and walks
the remaining input directly in global memory — one global point-read per
distance evaluation, no tiling, no cache management.  This is the baseline
all of Section IV-B's speedups are measured against (Eq. 2 counts its
global accesses).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...gpusim.counters import MemSpace
from ...gpusim.device import Device
from ...gpusim.grid import BlockContext
from ...gpusim.memory import TrackedArray
from ...gpusim.timing import TrafficProfile
from .base import InputStrategy, PairGeometry


class NaiveInput(InputStrategy):
    """Partner reads served straight from global memory."""

    name = "Naive"
    reads_per_pair = 1
    uses_shared_tile = False

    def load_tile(
        self,
        ctx: BlockContext,
        data_g: TrackedArray,
        state: Any,
        block_state: Any,
        ids: np.ndarray,
        anchor_n: int,
    ) -> np.ndarray:
        # No staging: values handed to the math untracked; the per-pair
        # global reads are charged in charge_pair_reads.
        return data_g.raw()[:, ids]

    def load_tile_batch(
        self, ctx, data_g, state, block_state, ids_r_tiles, anchor_n
    ) -> np.ndarray:
        # staging is a single uncharged gather, so the whole stack can be
        # fancy-indexed in one call (the per-pair reads are still charged
        # per tile by the engine)
        ids = (
            ids_r_tiles[0]
            if len(ids_r_tiles) == 1
            else np.concatenate(ids_r_tiles)
        )
        return data_g.raw()[:, ids]

    def load_intra(self, ctx, data_g, state, block_state, ids) -> np.ndarray:
        return data_g.raw()[:, ids]

    def charge_pair_reads(
        self, ctx: BlockContext, n_l: int, n_r: int, n_pairs: int, dims: int
    ) -> None:
        ctx.counters.add_read(MemSpace.GLOBAL, n_pairs * dims)

    def regs_per_thread(self, dims: int) -> int:
        return 18 + 2 * dims

    def traffic(
        self, geom: PairGeometry, dims: int, part: str = "both"
    ) -> TrafficProfile:
        if part == "intra":
            return TrafficProfile(global_scattered=dims * geom.intra_pairs)
        return TrafficProfile(
            global_stream=dims * geom.n,  # anchor register loads
            global_scattered=dims * (geom.inter_pairs + geom.intra_pairs),
        )
