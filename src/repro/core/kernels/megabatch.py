"""Mega-batch execution path: one stacked evaluation per kernel stage.

The batched engine (``base.py``, ``batch_tiles > 1``) already amortizes
Python dispatch by stacking a few R-tiles per ``pair_fn`` call, but its
batch width is capped so each batch's value matrix stays cache-resident —
and every batch still pays a full round of interpreter-level staging,
binning and output bookkeeping per anchor block.

This module removes the cap by splitting *evaluation* from *staging*: per
anchor block, ALL surviving partner tiles are staged once (one aggregated
gather for register-anchored strategies) and handed to the output stage as
a :class:`PanelStack` — a **lazy** pair-value provider that evaluates
``pair_fn`` over fixed-width column panels on demand.  Histogram outputs
stream the panels (map, profile, bincount) into one aggregated atomic
charge without ever materializing the full (block, n) value matrix, so the
working set per step stays at the cache-friendly panel width while the
per-tile interpreter overhead is paid exactly once per block.

Bit-identity contract: every pair function in this codebase computes each
matrix element independently of the column slicing (elementwise op trees
over broadcast operands), so panel-evaluated values equal the per-tile
values bit-for-bit — the same invariant the batched engine's column
stacking already relies on, and what keeps the differential suites exact.
Integer outputs (histogram counts, tickets) are therefore bit-identical;
float accumulations re-associate within the usual documented tolerance.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

import numpy as np

from ...gpusim.grid import BlockContext
from ...obs.tracer import US_PER_PAIR
from ..tiling import cyclic_schedule, triangular_pair_mask
from .base import _offdiag_mask

#: Column width of one evaluation/binning panel.  A panel's float64 value
#: matrix plus its bin matrix and sort shadow must stay cache-resident
#: while the histogram fold walks it — sweeps on the reference host put
#: the knee at ~512 columns per 256-lane block, the same cliff that sizes
#: ``TILE_BATCH_COLUMNS``; what the mega path removes is not the panel
#: width but the per-tile staging, per-batch atomics, and output dispatch
#: the batched engine re-pays at every step.
MEGA_PANEL_COLUMNS = 512


class PanelStack:
    """Lazy pair-value provider over one anchor block and its full stack
    of staged partner columns.

    ``partners`` is the (dims, total) column-stack of every surviving
    partner tile.  :meth:`panels` evaluates ``pair_fn`` one ``panel_cols``
    slab at a time and yields ``(column offset, values panel)``.  Slabs
    are plain views: a column slice keeps unit stride along the partner
    axis — the axis every ufunc inner loop walks — so compacting it first
    would cost a full extra memory pass for nothing.
    :meth:`materialize` evaluates the whole stack in one call (the
    fallback for output strategies without a streaming path).
    """

    __slots__ = ("pair_fn", "reg_l", "partners", "panel_cols")

    def __init__(
        self,
        pair_fn,
        reg_l: np.ndarray,
        partners: np.ndarray,
        panel_cols: int = MEGA_PANEL_COLUMNS,
    ) -> None:
        self.pair_fn = pair_fn
        self.reg_l = reg_l
        self.partners = partners
        self.panel_cols = max(1, int(panel_cols))

    @property
    def total_cols(self) -> int:
        return int(self.partners.shape[1])

    def panels(self) -> Iterator[Tuple[int, np.ndarray]]:
        step = self.panel_cols
        partners = self.partners
        total = partners.shape[1]
        for start in range(0, total, step):
            yield start, self.pair_fn(self.reg_l, partners[:, start : start + step])

    def materialize(self) -> np.ndarray:
        return self.pair_fn(self.reg_l, self.partners)


def run_mega_block(
    k,
    ctx: BlockContext,
    dec,
    data_g,
    in_state,
    bufs,
    pruner,
    tr,
    trace_on: bool,
    bsizes,
    dims: int,
    full: bool,
    cells=None,
    clamp_bin=None,
) -> None:
    """Mega-batch body for one anchor block of a :class:`ComposedKernel`.

    Structurally the batched engine's block body with the tile-batch loop
    collapsed to a single stage-everything step: identical pruning
    decisions, identical staging and pair-read charges per tile, identical
    intra-block pass — only the inter-tile evaluation and output fold go
    through :meth:`OutputStrategy.update_mega` once per block.  Runs in
    its own frame (one call per block, not per tile) so the block's staged
    stack and panel shadows stay live until the next block rebinds them.
    """
    problem = k.problem
    b = ctx.block_id
    ids_l = dec.block_indices(b)
    nl = ids_l.size
    block_state = k.input.block_setup(ctx, dims)
    reg_l = k.input.load_anchor(ctx, data_g, in_state, block_state, ids_l)
    out_state = k.output.block_init(ctx, bufs, problem, ids_l)
    if cells is not None:
        # cell-list adjacency replaces the dense partner enumeration;
        # pairs beyond the neighborhood fold into the clamp bin (if any)
        # as one residual update — same position as the sequential engine
        partner_blocks = cells.partner_blocks(b, full).tolist()
        resid = cells.residual_pairs(b, full)
        if trace_on:
            tr.instant(
                "cells", cat="cells",
                args={
                    "block": int(b), "partners": len(partner_blocks),
                    "skipped_pairs": int(resid),
                    "fold": bool(resid and clamp_bin is not None),
                },
            )
        if resid and clamp_bin is not None:
            k.output.residual_update(
                ctx, out_state, bufs, problem, ids_l, resid, clamp_bin
            )
    else:
        partner_blocks = (
            [i for i in range(dec.num_blocks) if i != b]
            if full
            else list(range(b + 1, dec.num_blocks))
        )
    if pruner is not None:
        cls = pruner.classify(b)
        survivors: List[int] = []
        n_skip = n_bulk = 0
        for i in partner_blocks:
            if cls.skip[i]:
                n_skip += 1
                continue
            if cls.bulk[i]:
                n_bulk += 1
                k.output.bulk_update(
                    ctx, out_state, bufs, problem, ids_l,
                    dec.block_indices(i), cls.value[i],
                )
            else:
                survivors.append(i)
        if trace_on:
            tr.instant(
                "prune", cat="prune",
                args={
                    "block": int(b), "skipped": n_skip,
                    "bulk": n_bulk, "evaluate": len(survivors),
                },
            )
        partner_blocks = survivors
    if partner_blocks:
        if trace_on:
            pairs = nl * int(bsizes[partner_blocks].sum())
            span = tr.span(
                "mega", cat="engine", key=0,
                cost_us=pairs * US_PER_PAIR,
                args={
                    "block": int(b), "tiles": len(partner_blocks),
                    "pairs": pairs,
                },
            )
        else:
            span = tr.span("mega")
        with span:
            ids_r_tiles = [dec.block_indices(i) for i in partner_blocks]
            stacked = k.input.load_tile_batch(
                ctx, data_g, in_state, block_state, ids_r_tiles, nl
            )
            for ids_r in ids_r_tiles:
                k.input.charge_pair_reads(
                    ctx, nl, ids_r.size, nl * ids_r.size, dims
                )
            panels = PanelStack(problem.pair_fn, reg_l, stacked)
            k.output.update_mega(
                ctx, out_state, bufs, problem, ids_l, ids_r_tiles, panels
            )
    # intra-block pass: byte-for-byte the batched engine's (megabatching
    # only touches the inter-tile stage; the diagonal is one tile already)
    n_intra = nl * (nl - 1) if full else nl * (nl - 1) // 2
    if n_intra == 0:
        k.output.block_fini(ctx, out_state, bufs, problem, ids_l, b)
        return
    if trace_on:
        span = tr.span(
            "intra", cat="engine", key=dec.num_blocks,
            cost_us=n_intra * US_PER_PAIR,
            args={"block": int(b), "pairs": int(n_intra)},
        )
    else:
        span = tr.span("intra")
    with span:
        vals_l = k.input.load_intra(ctx, data_g, in_state, block_state, ids_l)
        values = problem.pair_fn(reg_l, vals_l)
        k.input.charge_pair_reads(ctx, nl, nl, n_intra, dims)
        if full:
            k.output.update_dense(
                ctx, out_state, bufs, problem, ids_l, ids_l, values,
                _offdiag_mask(nl),
            )
        elif k.load_balanced and nl == k.block_size and nl % 2 == 0:
            mask_buf = np.zeros((nl, nl), dtype=bool)
            for partners in cyclic_schedule(nl):
                active = partners >= 0
                rows = np.nonzero(active)[0]
                cols = partners[active]
                mask_buf[rows, cols] = True
                k.output.update(
                    ctx, out_state, bufs, problem, ids_l, ids_l, values,
                    mask_buf,
                )
                mask_buf[rows, cols] = False
        else:
            k.output.update_dense(
                ctx, out_state, bufs, problem, ids_l, ids_l, values,
                triangular_pair_mask(nl),
            )
    k.output.block_fini(ctx, out_state, bufs, problem, ids_l, b)
