"""SHM-SHM input strategy (Section IV-A's starting point).

Both the anchor block L and the streamed block R are staged in shared
memory; every distance evaluation reads *two* points from shared memory
(L[t] and R[j]), which is exactly why Eq. 4 is double Eq. 5 and why
Register-SHM supersedes this design.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ...gpusim.counters import MemSpace
from ...gpusim.grid import BlockContext
from ...gpusim.memory import TrackedArray
from ...gpusim.timing import TrafficProfile
from .base import InputStrategy, PairGeometry


class ShmShmInput(InputStrategy):
    """L and R tiles both in shared memory; two shared reads per pair."""

    name = "SHM-SHM"
    reads_per_pair = 2
    uses_shared_tile = True

    def block_setup(self, ctx: BlockContext, dims: int) -> dict:
        b = ctx.nthreads
        return {
            "L": ctx.alloc_shared((dims, b), name="tileL"),
            "R": ctx.alloc_shared((dims, b), name="tileR"),
        }

    def _stage(self, ctx, data_g, tile: TrackedArray, ids: np.ndarray) -> np.ndarray:
        vals = data_g.ld((slice(None), ids))  # coalesced global read
        tile.st((slice(None), slice(0, ids.size)), vals)  # shared write
        ctx.syncthreads()
        return vals

    def load_anchor(self, ctx, data_g, state, block_state, ids) -> np.ndarray:
        # the anchor lives in shared memory; the per-pair L[t] read is
        # charged in charge_pair_reads (reads_per_pair = 2)
        return self._stage(ctx, data_g, block_state["L"], ids)

    def load_tile(self, ctx, data_g, state, block_state, ids, anchor_n) -> np.ndarray:
        return self._stage(ctx, data_g, block_state["R"], ids)

    def load_intra(self, ctx, data_g, state, block_state, ids) -> np.ndarray:
        # L already resident in shared memory: no reload
        return block_state["L"].raw()[:, : ids.size]

    def charge_pair_reads(self, ctx, n_l, n_r, n_pairs, dims) -> None:
        ctx.counters.add_read(MemSpace.SHARED, self.reads_per_pair * n_pairs * dims)

    def shared_tile_bytes(self, block_size: int, dims: int) -> int:
        return 2 * block_size * dims * 4  # L and R buffers, fp32

    def regs_per_thread(self, dims: int) -> int:
        return 22 + dims

    def traffic(
        self, geom: PairGeometry, dims: int, part: str = "both"
    ) -> TrafficProfile:
        if part == "intra":
            # L is already resident; the pass only pays per-pair reads
            return TrafficProfile(
                shm_reads=dims * self.reads_per_pair * geom.intra_pairs
            )
        staged = geom.n + geom.tile_loads_points  # L once per block + R tiles
        return TrafficProfile(
            global_stream=dims * staged,
            shm_writes=dims * staged,
            shm_reads=dims * self.reads_per_pair * (geom.inter_pairs + geom.intra_pairs),
        )
