"""Work-efficient parallel prefix scan (Blelchloch) on the simulated GPU.

Substrate for the two-pass Type-III output pipeline (Section V future
work; the compaction idiom of He et al.'s relational join [2]): pass 1
counts matches per block, an exclusive scan turns counts into output
offsets, pass 2 writes results to their final slots with no atomics.

The scan is implemented as real simulated kernels — block-level up-sweep /
down-sweep in shared memory plus a block-sums recursion — so its access
counts and timing participate in the model like any other kernel.
"""

from __future__ import annotations

from typing import List

import numpy as np

from ...gpusim.device import Device, LaunchRecord
from ...gpusim.grid import BlockContext, LaunchConfig
from ...gpusim.memory import TrackedArray

SCAN_BLOCK = 256  # elements per scan block (one thread : one element)


def _scan_block_kernel(
    data_g: TrackedArray,
    out_g: TrackedArray,
    block_sums_g: TrackedArray,
    n: int,
):
    """One launch: each block exclusive-scans its SCAN_BLOCK-element tile
    in shared memory and records its total."""

    def kernel(ctx: BlockContext) -> None:
        base = ctx.block_id * SCAN_BLOCK
        count = min(SCAN_BLOCK, n - base)
        if count <= 0:
            block_sums_g.st(ctx.block_id, 0)
            return
        tile = ctx.alloc_shared(SCAN_BLOCK, dtype=np.int64, name="scan-tile")
        vals = data_g.ld(slice(base, base + count))
        tile.st(slice(0, count), vals)
        if count < SCAN_BLOCK:
            tile.st(slice(count, SCAN_BLOCK), 0)
        ctx.syncthreads()

        # up-sweep (reduce) phase: log2(B) rounds of pairwise sums
        offset = 1
        while offset < SCAN_BLOCK:
            idx = np.arange(offset * 2 - 1, SCAN_BLOCK, offset * 2)
            left = tile.ld(idx - offset)
            right = tile.ld(idx)
            tile.st(idx, left + right)
            ctx.syncthreads()
            offset *= 2

        total = int(tile.ld(SCAN_BLOCK - 1))
        block_sums_g.st(ctx.block_id, total)
        tile.st(SCAN_BLOCK - 1, 0)  # clear the root for the down-sweep
        ctx.syncthreads()

        # down-sweep phase: distribute partial sums back down the tree
        offset = SCAN_BLOCK // 2
        while offset >= 1:
            idx = np.arange(offset * 2 - 1, SCAN_BLOCK, offset * 2)
            left = tile.ld(idx - offset)
            right = tile.ld(idx)
            tile.st(idx - offset, right)
            tile.st(idx, left + right)
            ctx.syncthreads()
            offset //= 2

        out_g.st(slice(base, base + count), tile.ld(slice(0, count)))

    return kernel


def _add_offsets_kernel(out_g: TrackedArray, offsets_g: TrackedArray, n: int):
    def kernel(ctx: BlockContext) -> None:
        base = ctx.block_id * SCAN_BLOCK
        count = min(SCAN_BLOCK, n - base)
        if count <= 0:
            return
        off = offsets_g.ld(ctx.block_id, fanout=count)
        vals = out_g.ld(slice(base, base + count))
        out_g.st(slice(base, base + count), vals + off)

    return kernel


def exclusive_scan(
    device: Device, data_g: TrackedArray, name: str = "scan"
) -> tuple[TrackedArray, int, List[LaunchRecord]]:
    """Exclusive prefix scan of a 1-D int64 device array.

    Returns ``(scanned array, total sum, launch records)``.  Recurses on
    the per-block sums exactly as the classic multi-block scan does.
    """
    n = data_g.size
    if n == 0:
        raise ValueError("cannot scan an empty array")
    num_blocks = (n + SCAN_BLOCK - 1) // SCAN_BLOCK
    out_g = device.alloc(n, np.int64, name=f"{name}-out")
    sums_g = device.alloc(max(num_blocks, 1), np.int64, name=f"{name}-sums")
    records = [
        device.launch(
            _scan_block_kernel(data_g, out_g, sums_g, n),
            LaunchConfig(num_blocks, SCAN_BLOCK),
            name=f"{name}-blocks",
        )
    ]
    if num_blocks == 1:
        total = int(sums_g.raw()[0])
        device.free(sums_g)
        return out_g, total, records
    scanned_sums, total, sub_records = exclusive_scan(
        device, sums_g, name=f"{name}-sums"
    )
    records.extend(sub_records)
    records.append(
        device.launch(
            _add_offsets_kernel(out_g, scanned_sums, n),
            LaunchConfig(num_blocks, SCAN_BLOCK),
            name=f"{name}-apply",
        )
    )
    device.free(sums_g)
    device.free(scanned_sums)
    return out_g, total, records
