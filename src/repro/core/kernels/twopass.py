"""Two-pass Type-III output: count -> scan -> write (no global atomics).

The paper's Section V names Type-III efficiency as future work; the
classical GPU answer — used by the relational-join prior art it cites
(He et al. [2]) — is compaction: a first pairwise pass counts matches per
block, an exclusive prefix scan (``kernels/scan.py``) converts counts to
output offsets, and a second pass re-evaluates the pairs and writes each
match to its pre-assigned slot.  The only atomics left are block-local
cursors in shared memory; global memory sees pure coalesced writes.

Compared with the single-pass ticket design (``GlobalDirectOutput``) this
doubles the pairwise computation but removes global-atomic serialization
and yields deterministic, block-ordered output — the classic trade-off,
measurable here via ``simulate``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ...gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ...gpusim.device import Device, LaunchRecord
from ...gpusim.grid import BlockContext, LaunchConfig
from ...gpusim.profiler import SimReport, build_report
from ...gpusim.spec import DeviceSpec, TITAN_X
from ...gpusim.timing import (
    TrafficProfile,
    cycles_from_traffic,
    simulate_time,
)
from ..problem import TwoBodyProblem, UpdateKind, as_soa
from ..tiling import BlockDecomposition, triangular_pair_mask
from . import INPUT_STRATEGIES
from .base import compute_geometry
from .scan import exclusive_scan


@dataclass
class TwoPassResult:
    pairs: np.ndarray
    total: int
    records: List[LaunchRecord]


class TwoPassJoinKernel:
    """Count/scan/write join over all pairs of one dataset."""

    def __init__(
        self,
        problem: TwoBodyProblem,
        input_strategy: str = "register-shm",
        block_size: int = 256,
        name: Optional[str] = None,
    ) -> None:
        if problem.output.kind is not UpdateKind.EMIT_PAIRS:
            raise ValueError(
                f"two-pass output is for EMIT_PAIRS problems, got "
                f"{problem.output.kind.value!r}"
            )
        self.problem = problem
        self.input = INPUT_STRATEGIES[input_strategy]()
        self.block_size = block_size
        self.name = name or f"{self.input.name}-2Pass"

    # -- functional ------------------------------------------------------------
    def _block_matches(self, ctx, data_g, in_state, dec, charge: bool):
        """Matched (i, j) pairs owned by this block, tile by tile."""
        problem = self.problem
        dims = problem.dims
        b = ctx.block_id
        ids_l = dec.block_indices(b)
        nl = ids_l.size
        block_state = self.input.block_setup(ctx, dims)
        if charge:
            reg_l = self.input.load_anchor(ctx, data_g, in_state, block_state, ids_l)
        else:
            reg_l = data_g.raw()[:, ids_l]
        out = []
        for i in range(b + 1, dec.num_blocks):
            ids_r = dec.block_indices(i)
            if charge:
                vals_r = self.input.load_tile(
                    ctx, data_g, in_state, block_state, ids_r, nl
                )
                self.input.charge_pair_reads(ctx, nl, ids_r.size, nl * ids_r.size, dims)
            else:
                vals_r = data_g.raw()[:, ids_r]
            pred = np.asarray(
                problem.output.map_fn(problem.pair_fn(reg_l, vals_r)), dtype=bool
            )
            ii, jj = np.nonzero(pred)
            if ii.size:
                out.append(np.stack([ids_l[ii], ids_r[jj]], axis=1))
        if charge:
            vals_l = self.input.load_intra(ctx, data_g, in_state, block_state, ids_l)
            self.input.charge_pair_reads(ctx, nl, nl, nl * (nl - 1) // 2, dims)
        else:
            vals_l = data_g.raw()[:, ids_l]
        pred = np.asarray(
            problem.output.map_fn(problem.pair_fn(reg_l, vals_l)), dtype=bool
        ) & triangular_pair_mask(nl)
        ii, jj = np.nonzero(pred)
        if ii.size:
            out.append(np.stack([ids_l[ii], ids_l[jj]], axis=1))
        return (
            np.concatenate(out, axis=0)
            if out
            else np.empty((0, 2), dtype=np.int64)
        )

    def execute(self, device: Device, points: np.ndarray) -> TwoPassResult:
        soa = as_soa(points)
        dims, n = soa.shape
        if dims != self.problem.dims:
            raise ValueError(
                f"problem expects {self.problem.dims}-d points, got {dims}-d"
            )
        dec = BlockDecomposition(n, self.block_size)
        data_g = device.to_device(soa, name="join-input")
        in_state = self.input.prepare(device, data_g)
        counts_g = device.alloc(dec.num_blocks, np.int64, name="join-counts")

        # pass 1: count matches per block
        def count_kernel(ctx: BlockContext) -> None:
            matches = self._block_matches(ctx, data_g, in_state, dec, charge=True)
            counts_g.st(ctx.block_id, len(matches))

        records = [
            device.launch(
                count_kernel,
                LaunchConfig(dec.num_blocks, self.block_size),
                name=f"{self.name}-count",
            )
        ]

        # exclusive scan of the block counts
        offsets_g, total, scan_records = exclusive_scan(device, counts_g, "join")
        records.extend(scan_records)
        out_g = device.alloc((max(total, 1), 2), np.int64, name="join-out")

        # pass 2: re-evaluate and write to pre-assigned slots
        def write_kernel(ctx: BlockContext) -> None:
            matches = self._block_matches(ctx, data_g, in_state, dec, charge=True)
            if not len(matches):
                return
            base = int(offsets_g.ld(ctx.block_id))
            # block-local cursor in shared memory orders the writes
            cursor = ctx.alloc_shared(1, dtype=np.int64, name="cursor", zero=True)
            cursor.counters.add_atomic(cursor.space, len(matches))
            out_g.st(slice(base, base + len(matches)), matches)

        records.append(
            device.launch(
                write_kernel,
                LaunchConfig(dec.num_blocks, self.block_size),
                name=f"{self.name}-write",
            )
        )
        pairs = device.to_host(out_g)[:total]
        return TwoPassResult(pairs=pairs, total=total, records=records)

    # -- analytical -------------------------------------------------------------
    def traffic(self, n: int) -> TrafficProfile:
        geom = compute_geometry(n, self.block_size, full_rows=False)
        in_traffic = self.input.traffic(geom, self.problem.dims)
        matches = self.problem.output.selectivity * geom.pairs
        per_pass = TrafficProfile(
            pairs=geom.pairs, compute=self.problem.compute_cost
        ) + in_traffic
        both = per_pass + per_pass  # two identical pairwise passes
        output_side = TrafficProfile(
            global_stream_writes=2 * matches + geom.num_blocks,
            shm_atomics=matches,  # block-local cursors
            global_stream=geom.num_blocks,  # offset reads
        )
        return both + output_side

    def simulate(
        self,
        n: int,
        spec: DeviceSpec = TITAN_X,
        calib: Calibration = DEFAULT_CALIBRATION,
    ) -> SimReport:
        profile = self.traffic(n)
        cycles = cycles_from_traffic(profile, calib)
        # the scan itself: ~4 element accesses per block count, negligible
        extra = 3 * calib.launch_overhead_s
        timing = simulate_time(
            cycles, spec=spec, occupancy=1.0, calib=calib, extra_seconds=extra
        )
        return build_report(
            kernel=self.name, n=n, timing=timing, spec=spec,
            counters=profile.expected_counters(),
        )
