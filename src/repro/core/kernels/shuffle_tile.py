"""Shuffle-instruction tiling (Algorithm 4, Section IV-E.2).

When shared memory and the read-only cache are both busy (e.g. claimed by
concurrent kernels), partner data can be tiled through the *register file*:
each warp cooperatively loads a 32-wide chunk of the partner block into
per-lane registers (``reg1``), then ``shuffle broadcast`` hands every
lane's datum to all 32 lanes in turn (``regtmp``), at the cost of two extra
registers and zero bytes of cache.

Cost structure this models (validated against the functional counters):

* every warp must walk the *whole* partner block itself — so tile loads
  are ``ceil(nL/warp) * nR`` coalesced global reads per block pair instead
  of the ``nR`` a shared-memory tile needs;
* one broadcast per evaluation slot: ``nL * warp * ceil(nR/warp)``
  shuffles per block pair (issued for all lanes whether or not the
  triangular mask uses the result).
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from ...gpusim.counters import MemSpace
from ...gpusim.errors import GpuSimError
from ...gpusim.grid import BlockContext
from ...gpusim.memory import TrackedArray
from ...gpusim.shuffle import shfl_broadcast
from ...gpusim.timing import TrafficProfile
from .base import InputStrategy, PairGeometry


def _warps(n: int, warp: int) -> int:
    return (n + warp - 1) // warp


class ShuffleInput(InputStrategy):
    """Partner data tiled through registers via warp shuffle broadcast."""

    name = "Shuffle"
    reads_per_pair = 1  # one broadcast receive per evaluation
    uses_shared_tile = False
    # warp-padded loads/broadcasts depend on *which* tiles survive, not how
    # many — aggregate PruneStats cannot reproduce them analytically
    supports_pruning = False

    def __init__(self, warp_size: int = 32, demonstrate: bool = True) -> None:
        """``demonstrate``: run a real shfl_broadcast round on the first
        warp chunk of each tile, so the primitive is genuinely exercised
        (and validated) on the functional path."""
        self.warp_size = warp_size
        self.demonstrate = demonstrate

    def prepare(self, device, data_g):
        if not device.spec.supports_shuffle:
            raise GpuSimError(
                f"{device.spec.name} predates Kepler: shuffle instructions "
                "are unavailable (Section III-A)"
            )
        return None

    def _charge_tile(self, ctx: BlockContext, n_l: int, n_r: int, dims: int) -> None:
        w = self.warp_size
        loads = _warps(n_l, w) * n_r * dims
        ctx.counters.add_read(MemSpace.GLOBAL, loads)

    def load_tile(self, ctx, data_g, state, block_state, ids, anchor_n):
        self._charge_tile(ctx, anchor_n, ids.size, data_g.shape[0])
        vals = data_g.raw()[:, ids]
        if self.demonstrate and ids.size >= self.warp_size:
            # genuinely broadcast the first warp-chunk: lane k's datum to
            # all lanes, checking the network delivers what the math uses
            chunk = np.ascontiguousarray(vals[0, : self.warp_size])
            got = shfl_broadcast(chunk, 0, self.warp_size)
            if not np.all(got == chunk[0]):
                raise GpuSimError("shuffle broadcast self-check failed")
        return vals

    def load_intra(self, ctx, data_g, state, block_state, ids):
        self._charge_tile(ctx, ids.size, ids.size, data_g.shape[0])
        return data_g.raw()[:, ids]

    def charge_pair_reads(self, ctx, n_l, n_r, n_pairs, dims) -> None:
        # broadcasts are issued warp-synchronously for every evaluation
        # slot, independent of the intra-block mask
        w = self.warp_size
        broadcasts = n_l * w * _warps(n_r, w) * dims
        ctx.counters.add_read(MemSpace.REGISTER, broadcasts)

    def regs_per_thread(self, dims: int) -> int:
        # reg0 + reg1 + regtmp per dimension, as in Algorithm 4
        return 22 + 3 * dims

    def traffic(
        self, geom: PairGeometry, dims: int, part: str = "both"
    ) -> TrafficProfile:
        w = self.warp_size
        # vectorized over blocks (O(M)): per-block sizes, warp counts and
        # padded (warp-multiple) partner extents
        from .base import block_sizes

        sizes = block_sizes(geom.n, geom.block_size)
        m = sizes.size
        warps = (sizes + w - 1) // w
        padded = warps * w
        if geom.full_rows:
            partner_points = geom.n - sizes  # every other block
            partner_padded = padded.sum() - padded
        else:
            # partners are the higher-indexed blocks
            partner_points = np.concatenate(
                [np.cumsum(sizes[::-1])[::-1][1:], [0]]
            )
            partner_padded = np.concatenate(
                [np.cumsum(padded[::-1])[::-1][1:], [0]]
            )
        inter_loads = float((warps * partner_points).sum())
        inter_shuffles = float((sizes * partner_padded).sum())
        # single-point blocks skip the intra pass entirely
        active = sizes > 1
        intra_loads = float((warps * sizes)[active].sum())
        intra_shuffles = float((sizes * padded)[active].sum())
        if part == "intra":
            return TrafficProfile(
                global_stream=dims * intra_loads,
                shuffles=dims * intra_shuffles,
            )
        return TrafficProfile(
            global_stream=dims * (geom.n + inter_loads + intra_loads),
            shuffles=dims * (inter_shuffles + intra_shuffles),
        )
