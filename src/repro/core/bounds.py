"""Per-block bounding volumes and distance-bound tile pruning.

The paper's "Beyond" direction (Section II's DM-SDH line) resolves whole
node *pairs* from distance bounds instead of touching points.  This module
brings that idea to the composed-kernel engine: one cheap O(N) pass
derives an axis-aligned bounding box per anchor block, and every
inter-block (L, R) tile pair gets a certified distance interval
``[dmin, dmax]`` from the two boxes.  A tile whose interval proves its
pairs contribute nothing is *skipped*; a tile whose interval maps to a
single output cell is *bulk-resolved* — ``nL * nR`` is folded into that
cell with zero distance evaluations, exactly as DM-SDH resolves tree-node
pairs.  Everything else falls through to the ordinary tile path, so the
result is bit-identical to the unpruned engine while the dominant
O(N^2/B^2) tile population shrinks with data clustering.

Exactness argument (the reason pruning preserves bit-identity):

* **skip** is only taken when every pair's contribution is *exactly* the
  additive identity — a weight the problem maps to ``0.0`` (2-PCF beyond
  the radius, a Gaussian kernel past its float64 underflow horizon) or a
  join predicate that is False — so omitting the update leaves every
  accumulator bit untouched (``x + 0.0 == x`` for the non-negative
  accumulators these kernels keep);
* **bulk** is only taken for *monotone* output maps whose value at
  ``dmin`` equals its value at ``dmax``: the map is then constant over
  the whole interval, and folding ``nL * nR`` into one histogram bucket
  (integer adds commute) or ``value * nR`` into a count accumulator
  (integer-valued floats below 2^53) reproduces the evaluated result
  bit-for-bit;
* bounds are *padded* by the pair function's worst-case rounding slack,
  so a computed distance can never fall outside its certified interval.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..obs.tracer import NULL_TRACER
from .problem import TwoBodyProblem, UpdateKind, as_soa
from .tiling import BlockDecomposition

#: metrics the bound derivation understands (must match the problem's
#: pair function, or the monotone distance underlying it).
SUPPORTED_METRICS = ("euclidean", "manhattan", "chebyshev")

#: rounding-slack multiplier, in units of eps * (coordinate scale): the
#: GEMM-style `a^2 + b^2 - 2ab` evaluation can leave the exact distance by
#: a few ulps of the squared magnitudes, so intervals are widened by a
#: generous multiple before classification.  Orders of magnitude smaller
#: than any realistic bucket width, but it makes skip/bulk certificates
#: robust to the evaluator's rounding.
_PAD_ULPS = 256.0


def array_fingerprint(arr: np.ndarray) -> Tuple:
    """Content identity of an array: (shape, dtype, SHA-256 of bytes).

    The dataset-fingerprint memos below key on this, so repeated
    ``run()`` calls over the same points — planner pricing followed by
    execution, checkpoint chunks, service-layer re-queries — reuse the
    derived structures instead of recomputing them.  Hashing costs one
    linear pass, orders of magnitude cheaper than any of the memoized
    computations."""
    a = np.ascontiguousarray(arr)
    return (a.shape, str(a.dtype), hashlib.sha256(a.tobytes()).hexdigest())


class _FingerprintMemo:
    """Tiny LRU keyed by content fingerprints (arrays can't lru_cache)."""

    def __init__(self, cap: int) -> None:
        self.cap = cap
        self._store: "OrderedDict[Tuple, object]" = OrderedDict()

    def get_or_compute(self, key: Tuple, compute: Callable[[], object]):
        hit = self._store.get(key)
        if hit is not None:
            self._store.move_to_end(key)
            return hit
        value = compute()
        self._store[key] = value
        while len(self._store) > self.cap:
            self._store.popitem(last=False)
        return value


_BOUNDS_MEMO = _FingerprintMemo(cap=16)
_SORT_MEMO = _FingerprintMemo(cap=16)


def block_bounds(
    soa: np.ndarray, block_size: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-block coordinate bounds of SoA data: two (dims, M) arrays
    (lo, hi), ragged tail included.  One vectorized reduceat pass,
    memoized per dataset fingerprint; returned arrays are read-only."""

    def compute() -> Tuple[np.ndarray, np.ndarray]:
        dims, n = soa.shape
        dec = BlockDecomposition(n, block_size)
        starts = np.arange(dec.num_blocks) * block_size
        lo = np.minimum.reduceat(soa, starts, axis=1)
        hi = np.maximum.reduceat(soa, starts, axis=1)
        lo.setflags(write=False)
        hi.setflags(write=False)
        return lo, hi

    key = (array_fingerprint(soa), int(block_size))
    return _BOUNDS_MEMO.get_or_compute(key, compute)


def _rounding_pad(lo: np.ndarray, hi: np.ndarray, metric: str) -> float:
    """Worst-case rounding slack of the pair evaluators, in the metric's
    units (squared units for euclidean)."""
    eps = np.finfo(np.float64).eps
    mag = np.maximum(np.abs(lo), np.abs(hi)).max(axis=1)  # per-dim scale
    if metric == "euclidean":
        return _PAD_ULPS * eps * float((mag * mag).sum() + 1.0)
    if metric == "manhattan":
        return _PAD_ULPS * eps * float(mag.sum() + 1.0)
    return _PAD_ULPS * eps * float(mag.max(initial=0.0) + 1.0)


def tile_distance_bounds(
    lo: np.ndarray,
    hi: np.ndarray,
    b: int,
    metric: str = "euclidean",
    pad: float = 0.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Certified [dmin, dmax] between block ``b``'s box and every block.

    ``pad`` widens the interval (squared units for euclidean) to absorb
    the pair evaluator's rounding, so every *computed* pairwise value is
    guaranteed to land inside its tile's interval.
    """
    if metric not in SUPPORTED_METRICS:
        raise ValueError(
            f"unsupported pruning metric {metric!r}; "
            f"supported: {SUPPORTED_METRICS}"
        )
    gap = np.maximum(lo[:, [b]] - hi, lo - hi[:, [b]])
    np.maximum(gap, 0.0, out=gap)  # overlapping boxes: dmin = 0
    span = np.maximum(hi - lo[:, [b]], hi[:, [b]] - lo)
    if metric == "euclidean":
        dmin2 = (gap * gap).sum(axis=0) - pad
        dmax2 = (span * span).sum(axis=0) + pad
        return (
            np.sqrt(np.maximum(dmin2, 0.0)),
            np.sqrt(np.maximum(dmax2, 0.0)),
        )
    if metric == "manhattan":
        return (
            np.maximum(gap.sum(axis=0) - pad, 0.0),
            span.sum(axis=0) + pad,
        )
    return (
        np.maximum(gap.max(axis=0) - pad, 0.0),
        span.max(axis=0) + pad,
    )


@dataclass(frozen=True)
class TileClasses:
    """Classification of one anchor block's partner tiles (arrays of
    length M, indexed by partner block id)."""

    skip: np.ndarray  # tile proves zero contribution: no work at all
    bulk: np.ndarray  # tile resolves to one output cell: O(1) update
    value: Optional[np.ndarray]  # the resolved map value per bulk tile


@dataclass(frozen=True)
class PruneStats:
    """Whole-launch pruning aggregates, the analytical model's view.

    All counts cover *inter-block* tiles of the anchors considered (both
    (L, R) directions in full-row mode, upper-triangle otherwise).
    ``tile_points_pruned`` is the sum of partner-block sizes over pruned
    tiles — the R-tile staging the engine never performs.
    """

    tiles: int = 0
    tiles_skipped: int = 0
    tiles_bulk: int = 0
    pairs_skipped: int = 0
    pairs_bulk: int = 0
    tile_points_pruned: int = 0

    @property
    def tiles_pruned(self) -> int:
        return self.tiles_skipped + self.tiles_bulk

    @property
    def pairs_pruned(self) -> int:
        return self.pairs_skipped + self.pairs_bulk

    @property
    def prune_fraction(self) -> float:
        return self.tiles_pruned / self.tiles if self.tiles else 0.0


class TilePruner:
    """Launch-lifetime pruning oracle for one (data, block size, problem).

    Classification is a pure function of the inputs — independent of
    worker count, tile batching, and ``blocks=`` stripes — which is what
    keeps pruned execution bit-identical under every engine mode.
    Per-anchor results are cached; with M blocks the whole table costs
    O(M^2 * dims), negligible next to the tiles it eliminates.
    """

    def __init__(
        self,
        soa: np.ndarray,
        block_size: int,
        problem: TwoBodyProblem,
        tracer=None,
    ) -> None:
        spec = problem.pruning
        if spec is None:
            raise ValueError(
                f"problem {problem.name!r} carries no PruningSpec"
            )
        self.problem = problem
        self.spec = spec
        #: execution tracer; first-time classifications land as
        #: ``prune-classify`` instants (the oracle's view, distinct from
        #: the engine's per-anchor ``prune`` decision events).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.block_size = block_size
        self.sizes = np.diff(
            np.append(
                np.arange(0, soa.shape[1], block_size), soa.shape[1]
            )
        ).astype(np.int64)
        self.num_blocks = self.sizes.size
        self.lo, self.hi = block_bounds(soa, block_size)
        self.pad = _rounding_pad(self.lo, self.hi, spec.metric)
        self._cache: Dict[int, TileClasses] = {}

    def classify(self, b: int) -> TileClasses:
        cached = self._cache.get(b)
        if cached is not None:
            return cached
        spec = self.spec
        out = self.problem.output
        dmin, dmax = tile_distance_bounds(
            self.lo, self.hi, b, metric=spec.metric, pad=self.pad
        )
        m = self.num_blocks
        skip = np.zeros(m, dtype=bool)
        bulk = np.zeros(m, dtype=bool)
        value: Optional[np.ndarray] = None
        if spec.cutoff is not None:
            # beyond the cutoff every pair's contribution is exactly zero
            skip = dmin > spec.cutoff
        if spec.monotone_map and out.kind in (
            UpdateKind.HISTOGRAM,
            UpdateKind.SCALAR_SUM,
            UpdateKind.EMIT_PAIRS,
        ):
            vlo = np.asarray(out.map_fn(dmin))
            vhi = np.asarray(out.map_fn(dmax))
            same = vlo == vhi
            if out.kind is UpdateKind.HISTOGRAM:
                # a one-bucket interval bulk-resolves (this covers the
                # clamped top bucket: every beyond-max tile lands there)
                bulk = same & ~skip
            elif out.kind is UpdateKind.SCALAR_SUM:
                # constant zero weight contributes nothing; constant
                # non-zero weight bulk-resolves
                skip |= same & (vlo == 0)
                bulk = same & ~skip
            else:  # EMIT_PAIRS: predicate constant-False / constant-True
                truth = vlo.astype(bool)
                skip |= same & ~truth
                bulk = same & truth & ~skip
            value = vlo
        # the diagonal is the intra pass, never a partner tile
        skip[b] = False
        bulk[b] = False
        result = TileClasses(skip=skip, bulk=bulk, value=value)
        self._cache[b] = result
        if self.tracer.enabled:
            self.tracer.instant(
                "prune-classify", cat="prune",
                args={
                    "block": int(b),
                    "skip": int(skip.sum()),
                    "bulk": int(bulk.sum()),
                },
            )
        return result

    def stats(
        self,
        full_rows: bool = False,
        anchors: Optional[Iterable[int]] = None,
        partners_fn: Optional[Callable[[int], np.ndarray]] = None,
    ) -> PruneStats:
        """Aggregate classification over ``anchors`` (default: the whole
        grid) — the quantity the analytical traffic model consumes.

        ``partners_fn`` restricts each anchor's partner population (the
        cell-list engine passes its adjacency here): classification is
        indexed by absolute block id, so aggregating over a subset is
        exactly what the composed cells+prune execution performs."""
        m = self.num_blocks
        anchor_list = range(m) if anchors is None else anchors
        tiles = tiles_s = tiles_b = 0
        pairs_s = pairs_b = points_p = 0
        for b in anchor_list:
            cls = self.classify(b)
            if partners_fn is not None:
                partners = np.zeros(m, dtype=bool)
                partners[np.asarray(partners_fn(b), dtype=np.int64)] = True
                partners[b] = False
            elif full_rows:
                partners = np.ones(m, dtype=bool)
                partners[b] = False
            else:
                partners = np.zeros(m, dtype=bool)
                partners[b + 1 :] = True
            nl = int(self.sizes[b])
            nr = self.sizes
            skip = cls.skip & partners
            bulk = cls.bulk & partners
            tiles += int(partners.sum())
            tiles_s += int(skip.sum())
            tiles_b += int(bulk.sum())
            pairs_s += nl * int(nr[skip].sum())
            pairs_b += nl * int(nr[bulk].sum())
            points_p += int(nr[skip | bulk].sum())
        return PruneStats(
            tiles=tiles,
            tiles_skipped=tiles_s,
            tiles_bulk=tiles_b,
            pairs_skipped=pairs_s,
            pairs_bulk=pairs_b,
            tile_points_pruned=points_p,
        )


def prune_stats(
    points: np.ndarray,
    block_size: int,
    problem: TwoBodyProblem,
    full_rows: bool = False,
    anchors: Optional[Sequence[int]] = None,
) -> PruneStats:
    """Classification aggregates for ``points`` without executing anything
    — what the planner prices pruned kernel variants with."""
    pruner = TilePruner(as_soa(points), block_size, problem)
    return pruner.stats(full_rows=full_rows, anchors=anchors)


def spatial_sort(points: np.ndarray) -> np.ndarray:
    """Permutation ordering ``points`` along a Morton (Z-order) curve.

    Bounds pruning works on *block* bounding boxes, so it needs spatially
    coherent blocks; data arriving in arbitrary order (e.g. shuffled
    cluster draws) should be permuted by this order first.  Reordering
    input is legal for every self-2-BS statistic except those reporting
    per-point results, whose outputs must be inverse-permuted.
    """
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim == 1:
        pts = pts[:, None]

    def compute() -> np.ndarray:
        n, dims = pts.shape
        # interleaved key must fit a signed int64: bits * dims <= 62; 21
        # bits per axis (2M cells) is ample resolution for ordering
        bits = max(1, min(62 // max(dims, 1), 21))
        cells = np.int64(1) << bits
        lo = pts.min(axis=0)
        span = pts.max(axis=0) - lo
        span = np.where(span > 0, span, 1.0)
        q = ((pts - lo) / span * float(cells)).astype(np.int64)
        np.clip(q, 0, int(cells) - 1, out=q)
        key = np.zeros(n, dtype=np.int64)
        for bit in range(bits):
            for d in range(dims):
                key |= ((q[:, d] >> bit) & 1) << (bit * dims + d)
        order = np.argsort(key, kind="stable")
        order.setflags(write=False)
        return order

    return _SORT_MEMO.get_or_compute((array_fingerprint(pts),), compute)
