"""Block-granular checkpointing: interrupt, resume, and still be exact.

A 2-BS run over a large dataset is hours of work whose entire value is one
final reduction — the worst possible shape for preemptible machines.  This
module makes long runs *restartable* by exploiting the same algebraic seam
the multi-GPU decomposition uses: every anchor block's contribution has
disjoint support (or is a commutative sum), so the grid can be executed as
consecutive **chunks** of anchor blocks, each chunk's partial output
persisted durably, and the final result assembled with exactly the
:func:`~repro.core.multigpu._combine` merge that makes device stripes
bit-identical to a single-device run.

Crash-consistency rules (see DESIGN.md Section 10):

* Every file is written via temp-file + ``fsync`` + ``os.replace``; a
  checkpoint directory never holds a torn file, only a missing one.
* The manifest is rewritten (atomically) *after* each chunk payload lands,
  and names each payload with its SHA-256 — a payload the manifest does
  not reference does not exist, and a corrupted one is detected on load.
* A chunk interrupted mid-flight is simply absent: resume re-executes it
  from the previous chunk's persisted cursor state (fault-injector budgets
  and RNG, backoff-jitter RNG, degraded-kernel descriptor, tile batch), so
  the re-execution replays the exact event stream the lost attempt saw.
* The manifest binds a configuration fingerprint (problem, kernel, device
  spec, dataset digest, engine knobs, fault seed, chunking) — resuming
  under *any* other configuration is refused, not silently merged.

Determinism contract: a run that is killed and resumed any number of times
produces bit-identical outputs, counters, prune stats and exported Chrome
traces to the same checkpointed configuration run uninterrupted.  (A
*chunked* run's integer outputs also match the unchunked run exactly —
disjoint support again — but its counters differ benignly: every chunk
finalizes its own reduction, so checkpointing is a run-shape choice made
up front, recorded in the fingerprint.)

TOPK outputs are rejected: order statistics do not merge by block-disjoint
addition (the same reason they are not supported multi-GPU).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from ..gpusim.counters import AccessCounters
from ..gpusim.device import LaunchRecord
from ..gpusim.faults import as_injector
from ..gpusim.parallel import resolve_backend
from ..gpusim.spec import DeviceSpec, TITAN_X
from ..obs.flight import FlightRecorder, RunTelemetry
from ..obs.manifest import MANIFEST_SCHEMA, git_describe
from ..obs.tracer import NULL_TRACER
from .bounds import PruneStats
from .cells import merge_cell_stats
from .cluster import (
    ClusterSpec,
    ClusterState,
    ClusterTiming,
    _execute_blocks_on_cluster,
)
from .kernels import ComposedKernel, make_kernel
from .lifecycle import RunAbandoned
from .multigpu import _combine
from .problem import TwoBodyProblem, UpdateKind
from .resilience import (
    ResilienceEvent,
    ResilienceReport,
    RetryPolicy,
    _supervised_execute,
    expected_pair_count,
    verify_result,
)

#: Checkpoint store schema version.
CHECKPOINT_SCHEMA = "repro-checkpoint-v1"

#: Default chunk size: checkpoint after every K anchor blocks.
DEFAULT_CHECKPOINT_EVERY = 8


class CheckpointError(RuntimeError):
    """A checkpoint store cannot be used."""


class CheckpointMismatch(CheckpointError):
    """The store was written under a different run configuration."""


class CheckpointCorrupt(CheckpointError):
    """A referenced payload is missing or fails its integrity check."""


@dataclass
class CheckpointConfig:
    """Where and how often to checkpoint.

    ``after_chunk(index, entry)`` is an observation hook called after each
    chunk's payload and manifest are durably on disk — the seam the
    interrupted-run tests use to SIGKILL the process at a chosen chunk.
    """

    dir: Any
    every: int = DEFAULT_CHECKPOINT_EVERY
    after_chunk: Optional[Callable[[int, Dict[str, Any]], None]] = None

    def __post_init__(self) -> None:
        if self.every < 1:
            raise ValueError(
                f"checkpoint_every must be >= 1, got {self.every}"
            )
        self.dir = Path(self.dir)

    @classmethod
    def coerce(
        cls, value: Any, every: Optional[int] = None
    ) -> "CheckpointConfig":
        """A ``CheckpointConfig`` passes through (``every`` overrides if
        given); anything else is treated as a directory path."""
        if isinstance(value, cls):
            if every is not None and every != value.every:
                return cls(value.dir, every=every,
                           after_chunk=value.after_chunk)
            return value
        return cls(value, every=every if every is not None
                   else DEFAULT_CHECKPOINT_EVERY)


def chunk_plan(num_blocks: int, every: int) -> List[List[int]]:
    """Partition anchor block ids into consecutive chunks of ``every``."""
    if num_blocks < 1:
        raise ValueError(f"need at least one block, got {num_blocks}")
    if every < 1:
        raise ValueError(f"chunk size must be >= 1, got {every}")
    return [
        list(range(s, min(s + every, num_blocks)))
        for s in range(0, num_blocks, every)
    ]


def _atomic_write(path: Path, data: bytes) -> None:
    """temp + fsync + rename: the file is whole or absent, never torn."""
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _sha256(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _kernel_descriptor(kernel: ComposedKernel) -> Dict[str, Any]:
    """The rebuildable identity of a kernel — what degradation changes.
    ``prune`` and ``cells`` ride along: both survive degradation, and the
    cell flag in particular binds block ids to the cell-sorted point
    order, so a resumed run must rebuild with it intact."""
    return {
        "input": kernel.input.name.lower(),
        "output": kernel.output.name.lower(),
        "block_size": int(kernel.block_size),
        "load_balanced": bool(kernel.load_balanced),
        "prune": bool(kernel.prune),
        "cells": bool(kernel.cells),
    }


def _rebuild_kernel(
    problem: TwoBodyProblem, desc: Dict[str, Any]
) -> ComposedKernel:
    # same call shape as resilience.degrade_kernel, so a resumed run holds
    # the identical kernel object an uninterrupted degraded run would
    return make_kernel(
        problem,
        desc["input"],
        desc["output"],
        block_size=desc["block_size"],
        load_balanced=desc["load_balanced"],
        prune=bool(desc.get("prune", False)),
        cells=bool(desc.get("cells", False)),
    )


def fingerprint(
    *,
    problem: TwoBodyProblem,
    kernel: ComposedKernel,
    spec: DeviceSpec,
    points: np.ndarray,
    workers: Optional[int],
    batch_tiles: Optional[int],
    backend: Optional[str],
    fault_seed: Optional[int],
    max_retries: int,
    every: int,
    num_blocks: int,
    cluster: Optional[ClusterSpec] = None,
) -> Dict[str, Any]:
    """The configuration subset a store is bound to.

    Everything that changes the computed bits (or the chunking they are
    computed in) is included; everything that is wall-history (git rev,
    timestamps, whether this run is itself a resume) is not.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    fp: Dict[str, Any] = {
        "schema": CHECKPOINT_SCHEMA,
        "problem": {
            "name": problem.name,
            "dims": int(problem.dims),
            "output_kind": problem.output.kind.value,
        },
        "kernel": _kernel_descriptor(kernel),
        "device": spec.name,
        "n": int(pts.shape[0]),
        "points_sha256": _sha256(pts.tobytes()),
        "workers": workers,
        "batch_tiles": batch_tiles,
        "backend": resolve_backend(backend),
        "fault_seed": fault_seed,
        "max_retries": int(max_retries),
        "every": int(every),
        "num_blocks": int(num_blocks),
    }
    if cluster is not None:
        # node count and topology shape the stripe plan and the fault
        # schedule: merging partials across a changed cluster is refused.
        # Keyed only when set so pre-cluster stores keep their digests.
        fp["cluster"] = cluster.descriptor()
    return fp


def _fingerprint_digest(fp: Dict[str, Any]) -> str:
    return _sha256(
        json.dumps(fp, sort_keys=True, separators=(",", ":")).encode()
    )


class CheckpointStore:
    """One run's checkpoint directory: a manifest plus chunk payloads."""

    MANIFEST = "manifest.json"

    def __init__(self, directory) -> None:
        self.dir = Path(directory)

    @property
    def manifest_path(self) -> Path:
        return self.dir / self.MANIFEST

    def exists(self) -> bool:
        return self.manifest_path.is_file()

    def chunk_path(self, index: int) -> Path:
        return self.dir / f"chunk-{index:06d}.pkl"

    def load_manifest(self) -> Dict[str, Any]:
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                return json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointCorrupt(
                f"cannot read checkpoint manifest {self.manifest_path}: {exc}"
            ) from exc

    def write_manifest(self, manifest: Dict[str, Any]) -> None:
        self.dir.mkdir(parents=True, exist_ok=True)
        _atomic_write(
            self.manifest_path,
            (json.dumps(manifest, sort_keys=True, indent=1) + "\n").encode(),
        )

    def write_chunk(self, index: int, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Persist one chunk payload; returns its manifest entry."""
        self.dir.mkdir(parents=True, exist_ok=True)
        data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        path = self.chunk_path(index)
        _atomic_write(path, data)
        return {
            "index": int(index),
            "file": path.name,
            "sha256": _sha256(data),
            "bytes": len(data),
            "blocks": [int(payload["blocks"][0]),
                       int(payload["blocks"][-1]) + 1],
        }

    def load_chunk(self, entry: Dict[str, Any]) -> Dict[str, Any]:
        """Load a payload named by a manifest entry, verifying integrity."""
        path = self.dir / entry["file"]
        try:
            data = path.read_bytes()
        except OSError as exc:
            raise CheckpointCorrupt(
                f"chunk payload {path} is missing or unreadable: {exc}"
            ) from exc
        digest = _sha256(data)
        if digest != entry["sha256"]:
            raise CheckpointCorrupt(
                f"chunk payload {path.name} fails its integrity check: "
                f"sha256 {digest} != recorded {entry['sha256']}"
            )
        return pickle.loads(data)


def _merge_prune(parts: List[Any]) -> Optional[PruneStats]:
    stats = [p for p in parts if p is not None]
    if not stats:
        return None
    return PruneStats(
        tiles=sum(s.tiles for s in stats),
        tiles_skipped=sum(s.tiles_skipped for s in stats),
        tiles_bulk=sum(s.tiles_bulk for s in stats),
        pairs_skipped=sum(s.pairs_skipped for s in stats),
        pairs_bulk=sum(s.pairs_bulk for s in stats),
        tile_points_pruned=sum(s.tile_points_pruned for s in stats),
    )


def _merge_records(
    kernel: ComposedKernel, records: List[LaunchRecord]
) -> LaunchRecord:
    """One launch-record view over all chunks, in chunk (= block) order."""
    counters = AccessCounters()
    sync: List[int] = []
    for rec in records:
        counters.merge(rec.counters)
        sync.extend(rec.sync_counts)
    merged = LaunchRecord(
        kernel_name=kernel.name,
        config=records[-1].config,
        counters=counters,
        blocks_run=sum(r.blocks_run for r in records),
        wall_seconds=sum(r.wall_seconds for r in records),
        sync_counts=sync,
        workers=records[-1].workers,
        prune=_merge_prune([r.prune for r in records]),
        cells=merge_cell_stats([r.cells for r in records]),
        backend=records[-1].backend,
    )
    merged._max_shared = max(r.max_shared_bytes for r in records)
    return merged


def _chunk_spans(tracer, roots_before: int) -> List[Any]:
    """Root spans recorded since ``roots_before``, minus lifecycle instants
    (wall history: a resumed run legitimately differs there)."""
    if not tracer.enabled:
        return []
    return [
        s for s in tracer.roots[roots_before:] if s.cat != "lifecycle"
    ]


def run_checkpointed(
    problem: TwoBodyProblem,
    points: np.ndarray,
    kernel: ComposedKernel,
    *,
    config: CheckpointConfig,
    spec: DeviceSpec = TITAN_X,
    workers: Optional[int] = None,
    batch_tiles: Optional[int] = None,
    backend: Optional[str] = None,
    faults: Any = None,
    retry: Optional[RetryPolicy] = None,
    tracer=None,
    deadline=None,
    cancel=None,
    watchdog: Optional[float] = None,
    resume: bool = False,
    cluster: Optional[ClusterSpec] = None,
    telemetry: Optional[RunTelemetry] = None,
) -> Tuple[Any, LaunchRecord, ComposedKernel, ResilienceReport]:
    """Execute ``kernel`` chunk by chunk, checkpointing after each chunk.

    Returns ``(result, merged_record, final_kernel, report)``.  With
    ``resume=True`` the store must already hold a manifest; its completed
    chunks are verified, loaded and replayed (outputs, counters, trace
    subtrees, fault/RNG cursors), and only the unfinished chunks execute.
    Without ``resume``, an existing manifest for the *same* fingerprint is
    also picked up (idempotent restart); a mismatched one is refused.

    On a deadline breach or cancellation, everything completed so far is
    already durable: the raised :class:`~repro.core.lifecycle.RunAbandoned`
    carries the store path (``exc.checkpoint``) and the flight recorder
    (``exc.report``), and ``resume`` finishes the run later.
    """
    if problem.output.kind is UpdateKind.TOPK:
        raise CheckpointError(
            "TOPK outputs do not merge by block-disjoint addition; "
            "checkpointing is not supported (same reason as multi-GPU)"
        )
    pts = np.ascontiguousarray(points, dtype=np.float64)
    n = int(pts.shape[0])
    tracer = tracer if tracer is not None else NULL_TRACER
    injector = as_injector(
        faults, cluster_nodes=cluster.nodes if cluster is not None else None
    )
    policy = retry if retry is not None else RetryPolicy()
    if injector is not None and tracer.enabled:
        injector.tracer = tracer
    report = ResilienceReport(injector, tracer=tracer)
    # every checkpointed run keeps a flight ring (even without a progress
    # callback): the ring snapshot persists in each chunk payload, so a
    # SIGKILLed run's last durable chunk carries its final events for
    # ``repro blackbox`` — the whole point of the recorder
    if telemetry is None:
        telemetry = RunTelemetry()
    if telemetry.flight is None:
        telemetry.flight = FlightRecorder()
    flight = telemetry.flight
    report.telemetry = telemetry
    report.flight = flight
    seed = injector.plan.seed if injector is not None else 0
    rng = np.random.default_rng(seed + 0x5EED)  # supervisor jitter stream

    m = kernel.geometry(n).num_blocks
    chunks = chunk_plan(m, config.every)
    telemetry.configure(
        blocks_total=m, chunks_total=len(chunks), deadline=deadline,
    )
    fp = fingerprint(
        problem=problem, kernel=kernel, spec=spec, points=pts,
        workers=workers, batch_tiles=batch_tiles, backend=backend,
        fault_seed=injector.plan.seed if injector is not None else None,
        max_retries=policy.max_retries, every=config.every, num_blocks=m,
        cluster=cluster,
    )
    digest = _fingerprint_digest(fp)
    store = CheckpointStore(config.dir)

    entries: List[Dict[str, Any]] = []
    if store.exists():
        manifest = store.load_manifest()
        if manifest.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointMismatch(
                f"store {store.dir} has schema "
                f"{manifest.get('schema')!r}, expected {CHECKPOINT_SCHEMA!r}"
            )
        if manifest.get("fingerprint_sha256") != digest:
            raise CheckpointMismatch(
                f"store {store.dir} was written under a different run "
                "configuration (fingerprint mismatch); refusing to merge "
                "incompatible partial results"
            )
        entries = list(manifest.get("chunks") or [])
        entries.sort(key=lambda e: e["index"])
    elif resume:
        raise CheckpointError(
            f"resume requested but {store.manifest_path} does not exist"
        )

    def write_manifest() -> None:
        store.write_manifest({
            "schema": CHECKPOINT_SCHEMA,
            "manifest_schema": MANIFEST_SCHEMA,
            "git": git_describe(),
            "fingerprint": fp,
            "fingerprint_sha256": digest,
            "num_chunks": len(chunks),
            "chunks": entries,
        })

    full = kernel.full_rows
    # expected-mass verification only holds when every pair is evaluated;
    # pruning legitimately skips out-of-range pairs
    check_mass = not kernel.prune

    # cluster cursor: which nodes are dead, what the merge topology has
    # degraded to, and the accumulated cost model — persisted per chunk so
    # a resumed run carries node losses (and their timing) forward
    cl_state = (
        ClusterState(topology=cluster.topology) if cluster is not None
        else None
    )
    cl_timing = ClusterTiming(cluster.nodes) if cluster is not None else None
    cl_full_seconds = (
        kernel.simulate(n, spec=spec).seconds if cluster is not None else 0.0
    )

    # -- replay completed chunks --------------------------------------------
    parts: List[Any] = []
    records: List[LaunchRecord] = []
    current = kernel
    bt = batch_tiles
    done = 0
    last_payload: Optional[Dict[str, Any]] = None
    for entry in entries:
        payload = store.load_chunk(entry)
        parts.append(payload["part"])
        records.append(payload["record"])
        for span in payload["spans"]:
            tracer.adopt(span)
        last_payload = payload
        done += 1
        telemetry.advance(blocks=payload["blocks"], chunks=1)
        report.record_lifecycle(
            "checkpoint-load", detail=(
                f"chunk {payload['index']} "
                f"(blocks {entry['blocks'][0]}..{entry['blocks'][1] - 1}) "
                f"from {entry['file']}"
            ),
            chunk=int(payload["index"]),
            bytes=int(entry.get("bytes", 0)),
        )
    if last_payload is not None:
        # restore the execution cursor exactly where the last durable
        # chunk left it: degraded kernel + tile batch, fault budgets and
        # corruption RNG, backoff-jitter RNG, recovery event stream
        desc = last_payload["kernel"]
        if desc != _kernel_descriptor(current):
            current = _rebuild_kernel(problem, desc)
        bt = last_payload["batch_tiles"]
        rng.bit_generator.state = last_payload["rng_state"]
        if injector is not None and last_payload["injector"] is not None:
            injector.restore(last_payload["injector"])
        report.events = [
            ResilienceEvent.from_dict(e) for e in last_payload["events"]
        ]
        cl_cursor = last_payload.get("cluster")
        if cluster is not None and cl_cursor is not None:
            cl_state = ClusterState.from_dict(cl_cursor["state"])
            cl_timing = ClusterTiming.from_dict(cl_cursor["timing"])
        # continue the interrupted run's flight ring rather than starting
        # an empty one: the post-mortem history survives the resume (the
        # "resumed" event below lands on top of the restored tail)
        flight.restore(last_payload.get("flight"))
        report.record_lifecycle(
            "resumed", detail=(
                f"{done}/{len(chunks)} chunk(s) restored from {store.dir}"
            ),
            chunks_done=done, chunks_total=len(chunks),
        )

    # -- execute the remaining chunks ---------------------------------------
    # the manifest goes down before any work so that a run abandoned ahead
    # of its first chunk still leaves a valid (empty, fingerprinted) store
    # behind — resume then simply executes everything
    write_manifest()
    try:
        for index in range(done, len(chunks)):
            chunk = chunks[index]
            if cancel is not None:
                cancel.check()
            if deadline is not None:
                deadline.check()
            roots_before = len(tracer.roots) if tracer.enabled else 0
            if cluster is not None:
                part, stripe_records, current, bt = (
                    _execute_blocks_on_cluster(
                        current, pts, chunk,
                        cluster=cluster, state=cl_state, timing=cl_timing,
                        injector=injector, policy=policy, report=report,
                        rng=rng, spec=spec, workers=workers, batch_tiles=bt,
                        backend=backend, n=n, m_total=m,
                        check_mass=check_mass,
                        full_seconds=cl_full_seconds, tracer=tracer,
                        deadline=deadline, cancel=cancel, watchdog=watchdog,
                    )
                )
                record = _merge_records(current, stripe_records)
            else:
                part, record, current, bt = _supervised_execute(
                    current, pts,
                    injector=injector, policy=policy, report=report, rng=rng,
                    spec=spec, ordinal=0, blocks=chunk, workers=workers,
                    batch_tiles=bt, backend=backend,
                    expected_pairs=(
                        expected_pair_count(n, current.block_size, chunk, full)
                        if check_mass else None
                    ),
                    n=n, tracer=tracer, deadline=deadline, cancel=cancel,
                    watchdog=watchdog,
                )
            parts.append(part)
            records.append(record)
            payload = {
                "index": int(index),
                "blocks": [int(b) for b in chunk],
                "part": part,
                "record": record,
                "spans": _chunk_spans(tracer, roots_before),
                "kernel": _kernel_descriptor(current),
                "batch_tiles": bt,
                "injector": injector.state() if injector is not None else None,
                "rng_state": rng.bit_generator.state,
                "events": [e.as_dict() for e in report.events],
                # the flight ring rides in every chunk: the last durable
                # chunk of a SIGKILLed run is the black box
                "flight": flight.snapshot(),
            }
            if cluster is not None:
                payload["cluster"] = {
                    "state": cl_state.as_dict(),
                    "timing": cl_timing.as_dict(),
                }
            entry = store.write_chunk(index, payload)
            entries.append(entry)
            write_manifest()
            report.record_lifecycle(
                "checkpoint-write", detail=(
                    f"chunk {index} (blocks {chunk[0]}..{chunk[-1]}) "
                    f"-> {entry['file']}"
                ),
                chunk=int(index),
                bytes=int(entry["bytes"]),
            )
            telemetry.on_chunk(index, len(chunks))
            if config.after_chunk is not None:
                config.after_chunk(index, entry)
    except RunAbandoned as exc:
        # everything persisted so far is durable and consistent; hand the
        # caller the resume handle alongside the flight recorder
        action = (
            "cancelled" if type(exc).__name__ == "RunCancelled"
            else "deadline-breach"
        )
        if not report.lifecycle or report.lifecycle[-1].action != action:
            report.record_lifecycle(action, detail=str(exc))
        report.record_lifecycle(
            "checkpoint-exit", detail=(
                f"{len(entries)}/{len(chunks)} chunk(s) durable in "
                f"{store.dir}; resume to finish"
            ),
            chunks_done=len(entries), chunks_total=len(chunks),
        )
        exc.checkpoint = store.dir
        exc.report = report
        raise

    # -- merge, verify, report ----------------------------------------------
    result = parts[0] if len(parts) == 1 else _combine(problem, parts)
    verify_result(
        problem, result, n=n,
        expected_pairs=(
            expected_pair_count(n, current.block_size, None, full)
            if check_mass else None
        ),
    )
    report.record(
        "verified", -1,
        detail=(
            f"merged {len(parts)} chunk(s); "
            f"{problem.output.kind.value} invariants hold"
        ),
    )
    if cluster is not None:
        # the runner reads these back off the report (the return shape is
        # shared with the non-cluster path and external callers)
        report.cluster_timing = cl_timing
        report.cluster_state = cl_state
    return result, _merge_records(current, records), current, report
