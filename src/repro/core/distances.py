"""Pairwise distance / kernel functions ("DisFunction" in Algorithm 1).

The paper treats the distance function as a pluggable constant-time
primitive; the family it names spans Euclidean distance (2-PCF, SDH, RDF,
kNN), dot products and Mercer kernels (SVM kernel methods), and similarity
measures used by recommenders (cosine, Jaccard).  Each function here is a
:class:`PairFunction` operating on SoA blocks — arrays of shape
``(dims, n)`` — returning the full ``(nA, nB)`` value matrix, which is how
the block-vectorized simulated kernels consume them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict

import numpy as np


@dataclass(frozen=True)
class PairFunction:
    """A named pairwise function with an SoA block evaluator.

    ``fn(A, B)`` takes blocks shaped ``(dims, nA)`` and ``(dims, nB)`` and
    returns the ``(nA, nB)`` matrix of values.  ``flops`` is the nominal
    floating-point operation count per pair (used for reporting only; the
    timing model's per-pair compute costs are calibrated separately).
    """

    name: str
    fn: Callable[[np.ndarray, np.ndarray], np.ndarray]
    flops: int
    symmetric: bool = True

    def __call__(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        A = np.atleast_2d(np.asarray(A, dtype=np.float64))
        B = np.atleast_2d(np.asarray(B, dtype=np.float64))
        if A.shape[0] != B.shape[0]:
            raise ValueError(
                f"dimension mismatch: A has {A.shape[0]} dims, B has {B.shape[0]}"
            )
        out = self.fn(A, B)
        expected = (A.shape[1], B.shape[1])
        if out.shape != expected:
            raise AssertionError(
                f"{self.name}: evaluator returned {out.shape}, expected {expected}"
            )
        return out


def _sq_euclidean(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    # (a-b)^2 = a^2 + b^2 - 2ab, accumulated per dimension to stay O(dims)
    # in temporaries; clip tiny negatives from cancellation.  In-place ops
    # keep the operation tree (and therefore every result bit) identical
    # to `maximum(aa + bb - 2(A'B), 0)` while avoiding three temporaries.
    # Doubling the (tiny) anchor block instead of the (nA, nB) product is
    # bit-exact — scaling by a power of two commutes with every rounding
    # step of the GEMM — and drops one full pass over the value matrix.
    aa = (A * A).sum(axis=0)[:, None]
    bb = (B * B).sum(axis=0)[None, :]
    ab = (A + A).T @ B
    d2 = aa + bb
    d2 -= ab
    return np.maximum(d2, 0.0, out=d2)


def _euclidean(A, B):
    d2 = _sq_euclidean(A, B)
    return np.sqrt(d2, out=d2)


def _manhattan(A, B):
    return np.abs(A[:, :, None] - B[:, None, :]).sum(axis=0)


def _chebyshev(A, B):
    return np.abs(A[:, :, None] - B[:, None, :]).max(axis=0)


def _dot(A, B):
    return A.T @ B


def _cosine(A, B):
    na = np.linalg.norm(A, axis=0)
    nb = np.linalg.norm(B, axis=0)
    denom = np.outer(na, nb)
    with np.errstate(divide="ignore", invalid="ignore"):
        sim = np.where(denom > 0, (A.T @ B) / np.where(denom > 0, denom, 1.0), 0.0)
    return 1.0 - sim


def _jaccard(A, B):
    """Jaccard distance on binary-ish vectors (values treated as weights:
    1 - sum(min)/sum(max), the weighted Jaccard generalization)."""
    mins = np.minimum(A[:, :, None], B[:, None, :]).sum(axis=0)
    maxs = np.maximum(A[:, :, None], B[:, None, :]).sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        sim = np.where(maxs > 0, mins / np.where(maxs > 0, maxs, 1.0), 1.0)
    return 1.0 - sim


EUCLIDEAN = PairFunction("euclidean", _euclidean, flops=11)
SQ_EUCLIDEAN = PairFunction("sq_euclidean", _sq_euclidean, flops=9)
MANHATTAN = PairFunction("manhattan", _manhattan, flops=9)
CHEBYSHEV = PairFunction("chebyshev", _chebyshev, flops=9)
DOT = PairFunction("dot", _dot, flops=6)
COSINE = PairFunction("cosine", _cosine, flops=14)
JACCARD = PairFunction("jaccard", _jaccard, flops=12)


def periodic_euclidean(box: float) -> PairFunction:
    """Euclidean distance under periodic boundaries (minimum image).

    Molecular-dynamics RDF analysis (the Levine et al. workload the paper
    builds on) wraps coordinates in a periodic box: each displacement
    component is reduced to ``d - box * round(d / box)`` before the norm.
    """
    if box <= 0:
        raise ValueError(f"box must be positive, got {box}")

    def fn(A: np.ndarray, B: np.ndarray) -> np.ndarray:
        delta = A[:, :, None] - B[:, None, :]
        delta -= box * np.round(delta / box)
        return np.sqrt((delta * delta).sum(axis=0))

    return PairFunction(f"periodic-euclidean(L={box:g})", fn, flops=17)


def gaussian_kernel(bandwidth: float) -> PairFunction:
    """RBF kernel exp(-||a-b||^2 / (2 h^2)) — SVM kernels, KDE weights."""
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    inv = 1.0 / (2.0 * bandwidth * bandwidth)

    def fn(A, B):
        return np.exp(-_sq_euclidean(A, B) * inv)

    return PairFunction(f"gaussian(h={bandwidth:g})", fn, flops=13)


def polynomial_kernel(degree: int = 2, c: float = 1.0) -> PairFunction:
    """Polynomial kernel (a.b + c)^degree."""
    if degree < 1:
        raise ValueError("degree must be >= 1")

    def fn(A, B):
        return (A.T @ B + c) ** degree

    return PairFunction(f"poly(d={degree})", fn, flops=8 + degree)


REGISTRY: Dict[str, PairFunction] = {
    f.name: f
    for f in (EUCLIDEAN, SQ_EUCLIDEAN, MANHATTAN, CHEBYSHEV, DOT, COSINE, JACCARD)
}


def get_pair_function(name: str) -> PairFunction:
    """Look up a built-in pair function by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown pair function {name!r}; available: {sorted(REGISTRY)}"
        ) from None
