"""The 2-body-statistics framework: the paper's primary contribution.

Compose a :class:`~repro.core.problem.TwoBodyProblem` (pair function +
output pattern) with an input strategy (where partner data is cached) and
an output strategy (how results accumulate), run it functionally on the
simulated device, and price it analytically at paper scale.
"""

from .analytical import (
    EXACT_BY_STRATEGY,
    StageCounts,
    exact_naive,
    exact_register_roc,
    exact_register_shm,
    exact_shm_shm,
    exact_shuffle,
    global_access_reduction,
    paper_eq1_num_blocks,
    paper_eq2_naive_global,
    paper_eq3_tiled_global,
    paper_eq4_shm_shm_shared,
    paper_eq5_register_shm_shared,
    paper_eq6_update_stage,
    paper_eq7_reduction_stage,
    pruned_geometry,
)
from .bounds import (
    PruneStats,
    TileClasses,
    TilePruner,
    block_bounds,
    prune_stats,
    spatial_sort,
    tile_distance_bounds,
)
from .distances import (
    CHEBYSHEV,
    COSINE,
    DOT,
    EUCLIDEAN,
    JACCARD,
    MANHATTAN,
    PairFunction,
    REGISTRY,
    SQ_EUCLIDEAN,
    gaussian_kernel,
    get_pair_function,
    periodic_euclidean,
    polynomial_kernel,
)
from .cross import CrossKernel
from .multigpu import (
    MultiGpuResult,
    MultiGpuRunner,
    PCIE_BANDWIDTH,
    ShardPlan,
    plan_shards,
)
from .kernels import (
    ComposedKernel,
    DEFAULT_OUTPUT_FOR_CLASS,
    GlobalAtomicOutput,
    GlobalDirectOutput,
    INPUT_STRATEGIES,
    InputStrategy,
    NaiveInput,
    OUTPUT_STRATEGIES,
    OutputStrategy,
    PAPER_PCF,
    PAPER_SDH,
    PairGeometry,
    PrivatizedSharedOutput,
    RegisterOutput,
    RegisterRocInput,
    RegisterShmInput,
    ShmShmInput,
    ShuffleInput,
    analytic_conflict_degree,
    compute_geometry,
    make_kernel,
    paper_kernels,
    reduce_private_copies,
)
from .planner import (
    BackendChoice,
    DEFAULT_BLOCK_SIZES,
    Plan,
    PlanCandidate,
    plan_backend,
    plan_kernel,
)
from .problem import (
    OutputClass,
    OutputSpec,
    PruningSpec,
    TwoBodyProblem,
    UpdateKind,
    as_aos,
    as_soa,
)
from .checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointConfig,
    CheckpointCorrupt,
    CheckpointError,
    CheckpointMismatch,
    CheckpointStore,
    chunk_plan,
    run_checkpointed,
)
from .lifecycle import (
    CancelToken,
    Deadline,
    DeadlineExceeded,
    RunAbandoned,
    RunCancelled,
    check_lifecycle,
)
from .resilience import (
    DEGRADATION_LADDER,
    ResilienceEvent,
    ResilienceReport,
    ResilientResult,
    RetryPolicy,
    degrade_kernel,
    expected_pair_count,
    resilient_run,
    verify_result,
)
from .runner import RunResult, estimate, run
from .tiling import (
    BlockDecomposition,
    cyclic_pair_list,
    cyclic_schedule,
    cyclic_trips,
    triangular_pair_mask,
    triangular_trips,
)

__all__ = [
    "TwoBodyProblem", "OutputSpec", "OutputClass", "UpdateKind", "as_soa",
    "as_aos", "PairFunction", "EUCLIDEAN", "SQ_EUCLIDEAN", "MANHATTAN",
    "CHEBYSHEV", "DOT", "COSINE", "JACCARD", "REGISTRY", "gaussian_kernel",
    "polynomial_kernel", "get_pair_function", "BlockDecomposition",
    "triangular_pair_mask", "cyclic_schedule", "cyclic_pair_list",
    "cyclic_trips", "triangular_trips", "ComposedKernel", "InputStrategy",
    "OutputStrategy", "PairGeometry", "compute_geometry", "NaiveInput",
    "ShmShmInput", "RegisterShmInput", "RegisterRocInput", "ShuffleInput",
    "RegisterOutput", "GlobalAtomicOutput", "PrivatizedSharedOutput",
    "GlobalDirectOutput", "analytic_conflict_degree", "make_kernel",
    "paper_kernels", "PAPER_PCF", "PAPER_SDH", "INPUT_STRATEGIES",
    "OUTPUT_STRATEGIES", "DEFAULT_OUTPUT_FOR_CLASS", "reduce_private_copies",
    "plan_kernel", "Plan", "PlanCandidate", "DEFAULT_BLOCK_SIZES",
    "plan_backend", "BackendChoice",
    "run", "estimate", "RunResult", "periodic_euclidean",
    "MultiGpuRunner", "MultiGpuResult", "ShardPlan", "plan_shards",
    "PCIE_BANDWIDTH", "CrossKernel",
    "DEGRADATION_LADDER", "ResilienceEvent", "ResilienceReport",
    "ResilientResult", "RetryPolicy", "degrade_kernel",
    "expected_pair_count", "resilient_run", "verify_result",
    "StageCounts", "EXACT_BY_STRATEGY", "exact_naive", "exact_shm_shm",
    "exact_register_shm", "exact_register_roc", "exact_shuffle",
    "paper_eq1_num_blocks", "paper_eq2_naive_global",
    "paper_eq3_tiled_global", "paper_eq4_shm_shm_shared",
    "paper_eq5_register_shm_shared", "paper_eq6_update_stage",
    "paper_eq7_reduction_stage", "global_access_reduction",
    "PruningSpec", "PruneStats", "TileClasses", "TilePruner",
    "block_bounds", "tile_distance_bounds", "prune_stats", "spatial_sort",
    "pruned_geometry",
    "CHECKPOINT_SCHEMA", "CheckpointConfig", "CheckpointCorrupt",
    "CheckpointError", "CheckpointMismatch", "CheckpointStore",
    "chunk_plan", "run_checkpointed", "CancelToken", "Deadline",
    "DeadlineExceeded", "RunAbandoned", "RunCancelled", "check_lifecycle",
]
