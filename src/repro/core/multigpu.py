"""Multi-GPU decomposition — the paper's stated future work.

Section V: "Our work can also be extended to a multi-GPU environment or
even cluster-level optimization to handle very large input/output data."

The decomposition follows directly from the block structure: the set of
block pairs (i <= j) is partitioned across devices in contiguous stripes
of anchor blocks, chosen so every device owns (as nearly as possible) the
same number of *pairs* — the triangular weighting problem the CPU
schedulers already solve.  Each device runs the ordinary kernel over its
stripe against the full dataset; partial outputs combine exactly like the
privatized copies of Fig. 3 (histograms add, scalars add, matrices are
disjoint).

Functional execution is exact (validated against single-device runs);
timing is the per-device simulated time plus a PCI-E broadcast term for
shipping the input to every device.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

import numpy as np

from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.device import Device
from ..gpusim.spec import DeviceSpec, TITAN_X
from .kernels import ComposedKernel
from .problem import TwoBodyProblem, UpdateKind, as_soa
from .tiling import BlockDecomposition

#: host-to-device interconnect for input broadcast (PCI-E 3.0 x16).
PCIE_BANDWIDTH = 12e9


@dataclass
class ShardPlan:
    """Anchor-row stripes per device, balanced by pair count."""

    n: int
    boundaries: List[Tuple[int, int]]  # [start, end) anchor-point ranges

    @property
    def num_devices(self) -> int:
        return len(self.boundaries)

    def pairs_of(self, d: int) -> int:
        s, e = self.boundaries[d]
        # anchor i pairs with all j > i
        return int((self.n - 1 - np.arange(s, e)).sum())

    def imbalance(self) -> float:
        pairs = np.array([self.pairs_of(d) for d in range(self.num_devices)])
        return float(pairs.max() / pairs.mean()) if pairs.mean() else 1.0


def plan_shards(
    n: int,
    num_devices: int,
    rows: Optional[Tuple[int, int]] = None,
) -> ShardPlan:
    """Split anchor rows so each device gets ~equal pair counts.

    Row i carries (n-1-i) pairs, so equal-pair boundaries follow
    cumulative triangular mass — same math as the CPU guided scheduler.

    The device count is clamped to the number of pair-bearing rows (rows
    ``0 .. n-2``; the last row anchors no pairs), so no stripe is ever
    degenerate: asking for more devices than there is work returns a plan
    with fewer, non-empty stripes rather than zero-pair stripes whose
    ``imbalance()`` would divide by a near-zero mean.

    ``rows=(s, e)`` plans only the anchor-row range ``[s, e)`` of the full
    n-point triangular workload — the failover path re-striping a dead
    device's rows across the survivors.
    """
    if num_devices <= 0:
        raise ValueError(f"need at least one device, got {num_devices}")
    if n < 2:
        raise ValueError(f"need at least two points, got {n}")
    s, e = (0, n) if rows is None else rows
    if not 0 <= s < e <= n:
        raise ValueError(f"rows must satisfy 0 <= s < e <= {n}, got ({s}, {e})")
    # rows with at least one pair in [s, e): those below n-1
    useful_rows = min(e, n - 1) - s
    num_devices = min(num_devices, max(1, useful_rows))
    weights = (n - 1 - np.arange(s, e)).astype(np.float64)
    cum = np.cumsum(weights)
    total = cum[-1]
    if total <= 0:  # the range holds only the pairless last row
        return ShardPlan(n=n, boundaries=[(s, e)])
    boundaries = []
    start = s
    for d in range(num_devices):
        target = total * (d + 1) / num_devices
        end = (
            s + int(np.searchsorted(cum, target)) + 1
            if d < num_devices - 1
            else e
        )
        end = max(end, start + 1) if start < e else e
        end = min(end, e)
        boundaries.append((start, end))
        start = end
    boundaries = [(bs, be) for bs, be in boundaries if be > bs]
    return ShardPlan(n=n, boundaries=boundaries)


@dataclass
class MultiGpuResult:
    """Combined output plus per-device performance."""

    result: Any
    per_device_seconds: List[float]
    transfer_seconds: float
    plan: ShardPlan
    merge_seconds: float = 0.0

    @property
    def seconds(self) -> float:
        """Wall time: devices run concurrently, the input transfer is a
        broadcast, and the output all-reduce serializes at the end."""
        return (
            max(self.per_device_seconds)
            + self.transfer_seconds
            + self.merge_seconds
        )


def _combine(problem: TwoBodyProblem, parts: List[Any]):
    kind = problem.output.kind
    if kind in (UpdateKind.HISTOGRAM, UpdateKind.PER_POINT_SUM):
        return np.sum(parts, axis=0)
    if kind is UpdateKind.SCALAR_SUM:
        return float(sum(parts))
    if kind is UpdateKind.EMIT_PAIRS:
        stacked = (
            np.concatenate([p for p in parts if len(p)], axis=0)
            if any(len(p) for p in parts)
            else np.empty((0, 2), dtype=np.int64)
        )
        # canonical lexicographic order: bit-identical results no matter
        # how many devices (or recovery re-executions) produced the parts
        if len(stacked):
            stacked = stacked[np.lexsort((stacked[:, 1], stacked[:, 0]))]
        return stacked
    if kind is UpdateKind.MATRIX:
        # every unordered pair belongs to exactly one stripe, so the
        # per-device matrices have disjoint support and simply add
        return np.sum(parts, axis=0)
    raise ValueError(f"multi-GPU combine not defined for {kind.value!r}")


class MultiGpuRunner:
    """Run one 2-BS kernel across several simulated devices."""

    def __init__(
        self,
        kernel: ComposedKernel,
        num_devices: int = 2,
        spec: DeviceSpec = TITAN_X,
        calib: Calibration = DEFAULT_CALIBRATION,
    ) -> None:
        if kernel.problem.output.kind is UpdateKind.TOPK:
            raise ValueError(
                "TOPK outputs need a merge network; not supported multi-GPU"
            )
        self.kernel = kernel
        self.num_devices = num_devices
        self.spec = spec
        self.calib = calib

    # -- functional ------------------------------------------------------------
    def execute(self, points: np.ndarray) -> MultiGpuResult:
        """Exact multi-device execution: each device processes the pairs
        whose lower-indexed endpoint falls in its stripe."""
        pts = np.asarray(points, dtype=np.float64)
        n = len(pts)
        plan = plan_shards(n, self.num_devices)
        parts = []
        secs = []
        for d in range(plan.num_devices):
            s, e = plan.boundaries[d]
            result, _ = self._execute_stripe(pts, s, e)
            parts.append(result)
            secs.append(self.simulate_stripe(n, s, e))
        transfer = self._transfer_seconds(n, pts.shape[1])
        return MultiGpuResult(
            result=_combine(self.kernel.problem, parts),
            per_device_seconds=secs,
            transfer_seconds=transfer,
            plan=plan,
            merge_seconds=self._merge_seconds(n, plan.num_devices),
        )

    def _execute_stripe(self, pts: np.ndarray, s: int, e: int):
        """Run the stripe [s, e) of anchor rows on a fresh device.

        Implemented by restricting the pair predicate: the stripe device
        evaluates pairs (i, j) with s <= i < e, i < j — done exactly by a
        brute pass over the stripe block-vectorized (the single-device
        kernels remain the unit under test; this validates the combine).
        """
        problem = self.kernel.problem
        soa = as_soa(pts)
        n = soa.shape[1]
        out = problem.output
        if out.kind is UpdateKind.HISTOGRAM:
            acc = np.zeros(out.bins, dtype=np.int64)
        elif out.kind is UpdateKind.SCALAR_SUM:
            acc = 0.0
        elif out.kind is UpdateKind.PER_POINT_SUM:
            acc = np.zeros(n)
        elif out.kind is UpdateKind.EMIT_PAIRS:
            acc = []
        else:  # MATRIX
            acc = np.zeros((n, n))
        step = 1024
        for cs in range(s, e, step):
            ce = min(cs + step, e)
            vals = problem.pair_fn(soa[:, cs:ce], soa)
            mask = np.arange(n)[None, :] > np.arange(cs, ce)[:, None]
            if out.kind is UpdateKind.HISTOGRAM:
                bins = np.asarray(out.map_fn(vals), dtype=np.int64)[mask]
                acc += np.bincount(bins, minlength=out.bins)
            elif out.kind is UpdateKind.SCALAR_SUM:
                acc += float(np.where(mask, out.map_fn(vals), 0.0).sum())
            elif out.kind is UpdateKind.PER_POINT_SUM:
                w = np.asarray(out.map_fn(vals), dtype=np.float64)
                contrib = np.where(mask, w, 0.0)
                acc[cs:ce] += contrib.sum(axis=1)
                acc += np.where(mask, w, 0.0).sum(axis=0)  # symmetric side
            elif out.kind is UpdateKind.EMIT_PAIRS:
                pred = np.asarray(out.map_fn(vals), dtype=bool) & mask
                ii, jj = np.nonzero(pred)
                acc.append(np.stack([ii + cs, jj], axis=1))
            else:
                v = np.asarray(out.map_fn(vals), dtype=np.float64)
                ii, jj = np.nonzero(mask)
                acc[ii + cs, jj] = v[ii, jj]
                acc[jj, ii + cs] = v[ii, jj]
        if out.kind is UpdateKind.EMIT_PAIRS:
            acc = (
                np.concatenate(acc, axis=0)
                if acc and any(len(a) for a in acc)
                else np.empty((0, 2), dtype=np.int64)
            )
        return acc, None

    # -- analytical -------------------------------------------------------------
    def simulate_stripe(self, n: int, s: int, e: int) -> float:
        """Predicted stripe time: the stripe's share of the total pairs,
        at the single-device kernel's throughput."""
        full = self.kernel.simulate(n, spec=self.spec, calib=self.calib).seconds
        total_pairs = n * (n - 1) / 2
        stripe_pairs = float((n - 1 - np.arange(s, e)).sum())
        return full * stripe_pairs / total_pairs

    def _transfer_seconds(self, n: int, dims: int) -> float:
        # every device receives the full input over PCI-E
        return n * dims * 4 / PCIE_BANDWIDTH

    def _merge_seconds(self, n: int, num_devices: int) -> float:
        """Topology-priced all-reduce of the partial outputs.

        The devices merge through the host like a star cluster whose
        links are the PCI-E bus: each device ships its partial output up
        and receives the combined result back.  Previously this was free
        and ``simulate()`` under-reported every multi-device run by the
        output traffic.
        """
        if num_devices <= 1:
            return 0.0
        from .cluster import ClusterSpec, merge_seconds, payload_bytes

        fabric = ClusterSpec(
            nodes=num_devices,
            topology="star",
            bandwidth=PCIE_BANDWIDTH,
            latency=5e-6,  # one kernel-launch-ish host hop per transfer
        )
        return merge_seconds(fabric, payload_bytes(self.kernel.problem, n))

    def simulate(self, n: int) -> MultiGpuResult:
        """Timing-only prediction (no data needed)."""
        plan = plan_shards(n, self.num_devices)
        secs = [
            self.simulate_stripe(n, s, e) for s, e in plan.boundaries
        ]
        return MultiGpuResult(
            result=None,
            per_device_seconds=secs,
            transfer_seconds=self._transfer_seconds(n, self.kernel.problem.dims),
            plan=plan,
            merge_seconds=self._merge_seconds(n, plan.num_devices),
        )
