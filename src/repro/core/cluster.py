"""Simulated multi-node cluster: priced merges, node faults, re-striping.

The paper's block decomposition composes across devices for free — every
anchor block's contribution has disjoint support or is a commutative sum —
but :mod:`repro.core.multigpu` stripes anchor rows under a *free-merge*
assumption and dies with the first node.  This module adds the missing
cluster semantics on top of the same :func:`~repro.core.multigpu.
plan_shards` stripe seam, in the spirit of the multi-GPU kNN decomposition
of Kato & Hosino (arXiv:0906.0231) and the cosmology-scale 2PCF runs of
Ponce et al. (arXiv:1204.6630), both of which hinge on merging privatized
histograms across unreliable, bandwidth-limited links:

* **Communication cost model.**  A declared :class:`ClusterSpec` (node
  count, per-link bandwidth/latency, topology) prices the histogram merge
  through an explicit all-reduce schedule — ring (2(p-1) rounds, 1/p of
  the payload per link), binomial tree (2·ceil(log2 p) rounds, full
  payload) or star (2(p-1) transfers serialized through the coordinator)
  — with every transfer charged ``latency + bytes/bandwidth`` on its
  link.  The priced schedule feeds the tracer (``cluster:*`` spans and
  instants), the run metrics and :meth:`~repro.core.multigpu.
  MultiGpuRunner.simulate` timings.
* **Node-level faults.**  :meth:`~repro.gpusim.faults.FaultPlan.
  cluster_chaos` plants permanent node loss, flaky links, link
  degradation and straggler nodes; the injector surfaces them through the
  :meth:`~repro.gpusim.faults.FaultInjector.on_node` /
  :meth:`~repro.gpusim.faults.FaultInjector.on_transfer` /
  :meth:`~repro.gpusim.faults.FaultInjector.link_factor` hooks.
* **Elastic re-striping.**  A node that stops answering heartbeats (or
  exhausts its supervisor budget) is evicted, and its *unfinished* anchor
  rows are re-striped across the survivors with the same triangular
  ``plan_shards(rows=)`` math the PR 2 dead-device failover uses — gated
  by the PR 7 deadline so re-striping refuses work that cannot fit the
  remaining budget.  Because the re-striped ranges partition the lost
  range exactly, every unordered pair is still evaluated exactly once and
  the merged output is bit-identical to the fault-free run.
* **Topology degradation.**  A link that fails past the per-link retry
  budget degrades the merge topology ring -> tree -> star; at the star
  floor an unreachable non-coordinator node is declared lost, its
  (unshipped) parts are discarded and its rows re-striped.  Degradation
  changes only the *priced schedule*; the functional merge is always the
  order-canonical :func:`~repro.core.multigpu._combine`.

Node 0 is the star coordinator and always survives in the seeded chaos
plans — the degradation ladder therefore always terminates.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.device import LaunchRecord
from ..gpusim.errors import (
    DeviceAllocationError,
    LinkTransferError,
    NodeLostError,
    WorkerCrashError,
)
from ..gpusim.faults import as_injector, link_key
from ..gpusim.spec import DeviceSpec, TITAN_X
from ..obs.tracer import NULL_TRACER
from .kernels import ComposedKernel, make_kernel
from .lifecycle import DeadlineExceeded
from .multigpu import _combine, plan_shards
from .problem import TwoBodyProblem, UpdateKind
from .resilience import (
    ResilienceReport,
    RetryPolicy,
    _supervised_execute,
    expected_pair_count,
    verify_result,
)

#: environment override for the run()-level cluster decision.
CLUSTER_ENV = "REPRO_SIM_CLUSTER"
#: environment override for the simulated node count.
NODES_ENV = "REPRO_SIM_NODES"

#: merge topologies, in degradation order (ring falls to tree, tree to
#: star; star is the floor).
TOPOLOGIES: Tuple[str, ...] = ("ring", "tree", "star")

#: node count used when the cluster is enabled without an explicit count.
DEFAULT_NODES = 4
#: per-link bandwidth (bytes/s): 10 GbE, the classic commodity cluster.
DEFAULT_BANDWIDTH = 1.25e9
#: per-transfer latency (seconds): one switch hop of a 10 GbE fabric.
DEFAULT_LATENCY = 25e-6
#: simulated seconds a heartbeat may lag before the node is evicted.
DEFAULT_HEARTBEAT_TIMEOUT = 0.25


@dataclass(frozen=True)
class ClusterSpec:
    """A declared simulated cluster: node count, links, merge topology.

    All times are *simulated* seconds — the cluster layer never sleeps on
    the wall clock.  ``heartbeat_timeout`` bounds how late a node's
    heartbeat may arrive before the supervisor evicts it and re-stripes
    its rows (a straggler below the bound is absorbed into the node's
    simulated time instead).
    """

    nodes: int
    topology: str = "ring"
    bandwidth: float = DEFAULT_BANDWIDTH
    latency: float = DEFAULT_LATENCY
    heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise ValueError(f"need at least one node, got {self.nodes}")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown topology {self.topology!r}: expected one of "
                f"{'/'.join(TOPOLOGIES)}"
            )
        if self.bandwidth <= 0:
            raise ValueError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.latency < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency}")

    def descriptor(self) -> Dict[str, Any]:
        """The fingerprint/manifest form: everything that shapes the run."""
        return {
            "nodes": int(self.nodes),
            "topology": self.topology,
            "bandwidth": float(self.bandwidth),
            "latency": float(self.latency),
            "heartbeat_timeout": float(self.heartbeat_timeout),
        }


# -- environment parsing ------------------------------------------------------

_CLUSTER_CACHE: Tuple[str, Optional[str]] = ("", None)
_NODES_CACHE: Tuple[str, Optional[int]] = ("", None)


def _cluster_from_env() -> Optional[str]:
    """Topology requested by :data:`CLUSTER_ENV`, or ``None`` when off.

    Memoized on the raw string so repeated run() calls do not re-parse;
    the cache tracks environment changes made between calls.
    """
    global _CLUSTER_CACHE
    raw = os.environ.get(CLUSTER_ENV, "")
    if _CLUSTER_CACHE[0] == raw:
        return _CLUSTER_CACHE[1]
    v = raw.strip().lower()
    if v in ("", "0", "off", "false", "no"):
        topology: Optional[str] = None
    elif v in ("1", "on", "auto", "true", "yes"):
        topology = "ring"
    elif v in TOPOLOGIES:
        topology = v
    else:
        raise ValueError(
            f"invalid {CLUSTER_ENV}={raw!r}: expected off/on/auto or a "
            f"merge topology ({'/'.join(TOPOLOGIES)})"
        )
    _CLUSTER_CACHE = (raw, topology)
    return topology


def _nodes_from_env() -> Optional[int]:
    """Node count requested by :data:`NODES_ENV` (memoized), or ``None``."""
    global _NODES_CACHE
    raw = os.environ.get(NODES_ENV, "")
    if _NODES_CACHE[0] == raw:
        return _NODES_CACHE[1]
    v = raw.strip().lower()
    if v == "":
        nodes: Optional[int] = None
    else:
        try:
            nodes = int(v)
        except ValueError:
            nodes = -1
        if nodes < 1:
            raise ValueError(
                f"invalid {NODES_ENV}={raw!r}: expected a positive integer "
                "node count"
            )
    _NODES_CACHE = (raw, nodes)
    return nodes


def resolve_cluster(value=None, nodes: Optional[int] = None) -> Optional[ClusterSpec]:
    """Normalize a run()-level cluster request to a spec or ``None``.

    ``None`` consults :data:`CLUSTER_ENV` / :data:`NODES_ENV`; a
    :class:`ClusterSpec` passes through; ``False``/off disables; ``True``/
    on/auto selects a ring; an int is a node count (ring topology); a
    topology name selects that merge schedule.  ``nodes`` overrides the
    node count wherever the request itself does not carry one.
    """
    if isinstance(value, ClusterSpec):
        return value
    count = nodes
    if value is None:
        topology = _cluster_from_env()
        if topology is None and count is None:
            count = _nodes_from_env()  # a node count alone enables it
            if count is None:
                return None
        topology = topology or "ring"
    elif value is False:
        return None
    elif value is True:
        topology = "ring"
    elif isinstance(value, int):
        if value < 1:
            return None
        count = value if count is None else count
        topology = "ring"
    elif isinstance(value, str):
        v = value.strip().lower()
        if v in ("", "0", "off", "false", "no"):
            return None
        if v in ("1", "on", "auto", "true", "yes"):
            topology = "ring"
        elif v in TOPOLOGIES:
            topology = v
        else:
            raise ValueError(
                f"cluster={value!r}: expected off/on/auto, a topology "
                f"({'/'.join(TOPOLOGIES)}), a node count or a ClusterSpec"
            )
    else:
        raise ValueError(
            f"cluster={value!r}: expected off/on/auto, a topology "
            f"({'/'.join(TOPOLOGIES)}), a node count or a ClusterSpec"
        )
    if count is None:
        count = _nodes_from_env() or DEFAULT_NODES
    return ClusterSpec(nodes=int(count), topology=topology)


# -- all-reduce schedules -----------------------------------------------------

def merge_steps(
    topology: str, alive: Sequence[int]
) -> List[List[Tuple[int, int, float]]]:
    """The transfer schedule realizing an all-reduce over ``alive``.

    Returns rounds of concurrent ``(src, dst, payload_fraction)``
    transfers; a round's cost is the maximum over its transfers, the
    schedule's cost is the sum over rounds.

    * ``ring`` — reduce-scatter + all-gather: ``2(p-1)`` rounds, every
      node forwarding ``1/p`` of the payload to its successor.
    * ``tree`` — binomial reduce to the root then broadcast back:
      ``2·ceil(log2 p)`` rounds of full-payload transfers.
    * ``star`` — every node ships its full payload to the coordinator
      (``alive[0]``) and receives the result back; the coordinator's
      links serialize, so each transfer is its own round.
    """
    alive = list(alive)
    p = len(alive)
    if p <= 1:
        return []
    if topology == "ring":
        frac = 1.0 / p
        round_ = [(alive[i], alive[(i + 1) % p], frac) for i in range(p)]
        return [list(round_) for _ in range(2 * (p - 1))]
    if topology == "tree":
        up: List[List[Tuple[int, int, float]]] = []
        k = 1
        while k < p:
            up.append([
                (alive[i], alive[i - k], 1.0) for i in range(k, p, 2 * k)
            ])
            k *= 2
        down = [
            [(dst, src, frac) for (src, dst, frac) in rnd]
            for rnd in reversed(up)
        ]
        return up + down
    if topology == "star":
        coord = alive[0]
        return (
            [[(m, coord, 1.0)] for m in alive[1:]]
            + [[(coord, m, 1.0)] for m in alive[1:]]
        )
    raise ValueError(
        f"unknown topology {topology!r}: expected one of "
        f"{'/'.join(TOPOLOGIES)}"
    )


def payload_bytes(problem: TwoBodyProblem, n: int) -> float:
    """Bytes one node's partial output occupies on the wire."""
    kind = problem.output.kind
    if kind is UpdateKind.HISTOGRAM:
        return float(problem.output.bins * 8)
    if kind is UpdateKind.SCALAR_SUM:
        return 8.0
    if kind is UpdateKind.PER_POINT_SUM:
        return float(n * 8)
    if kind is UpdateKind.MATRIX:
        return float(n * n * 8)
    if kind is UpdateKind.EMIT_PAIRS:
        # emitted-pair counts are data-dependent; price the O(n) regime
        # distance joins are tuned for (two int64 indices per pair)
        return float(n * 16)
    raise ValueError(f"cluster merge not defined for {kind.value!r}")


def merge_seconds(
    cluster: ClusterSpec,
    payload: float,
    alive: Optional[Sequence[int]] = None,
    topology: Optional[str] = None,
    link_factor=None,
) -> float:
    """Price one all-reduce: ``latency + bytes/bandwidth`` per transfer,
    concurrent within a round, rounds in sequence.  ``link_factor`` is an
    optional ``(src, dst) -> slowdown`` callable (degraded links)."""
    alive = list(range(cluster.nodes)) if alive is None else list(alive)
    topo = topology if topology is not None else cluster.topology
    total = 0.0
    for rnd in merge_steps(topo, alive):
        round_s = 0.0
        for src, dst, frac in rnd:
            factor = float(link_factor(src, dst)) if link_factor else 1.0
            secs = cluster.latency + payload * frac * factor / cluster.bandwidth
            round_s = max(round_s, secs)
        total += round_s
    return total


# -- run state ----------------------------------------------------------------

@dataclass
class ClusterState:
    """The mutable cluster view a run (or resumed run) carries: which
    nodes are gone and which topology the merge has degraded to."""

    dead: List[int] = field(default_factory=list)
    topology: str = "ring"

    def alive(self, nodes: int) -> List[int]:
        return [m for m in range(nodes) if m not in self.dead]

    def lose(self, node: int) -> None:
        if node not in self.dead:
            self.dead.append(node)
            self.dead.sort()

    def as_dict(self) -> Dict[str, Any]:
        return {"dead": list(self.dead), "topology": self.topology}

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ClusterState":
        return cls(
            dead=[int(x) for x in d.get("dead") or []],
            topology=str(d.get("topology", "ring")),
        )


class ClusterTiming:
    """Per-run cluster cost accumulator (simulated seconds, not wall).

    Accumulates across checkpoint chunks; persisted in each chunk's
    payload cursor so a resumed run reports the same totals as an
    uninterrupted one.
    """

    def __init__(self, nodes: int) -> None:
        self.nodes = int(nodes)
        self.node_seconds: Dict[int, float] = {m: 0.0 for m in range(nodes)}
        self.merge_seconds = 0.0
        self.transfers = 0
        self.bytes_moved = 0.0
        self.link_retries = 0

    def add_compute(self, node: int, seconds: float) -> None:
        self.node_seconds[node] = self.node_seconds.get(node, 0.0) + seconds

    @property
    def seconds(self) -> float:
        """Modelled wall: nodes run concurrently, merges serialize."""
        busiest = max(self.node_seconds.values(), default=0.0)
        return busiest + self.merge_seconds

    def as_dict(self) -> Dict[str, Any]:
        return {
            "nodes": self.nodes,
            "node_seconds": {
                str(m): self.node_seconds[m] for m in sorted(self.node_seconds)
            },
            "merge_seconds": self.merge_seconds,
            "transfers": self.transfers,
            "bytes_moved": self.bytes_moved,
            "link_retries": self.link_retries,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ClusterTiming":
        timing = cls(int(d["nodes"]))
        timing.node_seconds = {
            int(m): float(s) for m, s in d.get("node_seconds", {}).items()
        }
        timing.merge_seconds = float(d.get("merge_seconds", 0.0))
        timing.transfers = int(d.get("transfers", 0))
        timing.bytes_moved = float(d.get("bytes_moved", 0.0))
        timing.link_retries = int(d.get("link_retries", 0))
        return timing


class _LinkExhausted(Exception):
    """A link failed past the per-link retry budget (internal signal)."""

    def __init__(self, src: int, dst: int) -> None:
        super().__init__(f"link {link_key(src, dst)} exhausted its retries")
        self.src = src
        self.dst = dst


def _stripe_share(m: int, s: int, e: int) -> float:
    """The stripe's share of the grid's triangular pair mass."""
    total = m * (m - 1) / 2.0
    if total <= 0:
        return 1.0
    return float((m - 1 - np.arange(s, e)).sum()) / total


def _run_transfer_schedule(
    topology: str,
    alive: Sequence[int],
    payload: float,
    *,
    cluster: ClusterSpec,
    injector,
    policy: RetryPolicy,
    report: ResilienceReport,
    rng: np.random.Generator,
    deadline,
    timing: ClusterTiming,
) -> float:
    """Drive one all-reduce schedule through the fault hooks.

    Each transfer retries :class:`LinkTransferError` with backoff up to
    the policy budget (deadline-gated); exhaustion raises
    :class:`_LinkExhausted` for the caller's degradation ladder.  Returns
    the priced simulated seconds (failed attempts charge one extra link
    latency each).
    """
    total = 0.0
    for rnd in merge_steps(topology, alive):
        round_s = 0.0
        for src, dst, frac in rnd:
            attempts = 0
            while injector is not None:
                try:
                    injector.on_transfer(src, dst)
                    break
                except LinkTransferError as exc:
                    attempts += 1
                    if attempts > policy.max_retries:
                        raise _LinkExhausted(src, dst) from exc
                    d = policy.delay(attempts - 1, rng)
                    if deadline is not None and not deadline.fits(d):
                        detail = (
                            f"link-retry delay {d:.6f}s does not fit "
                            f"remaining budget "
                            f"{max(0.0, deadline.remaining()):.6f}s"
                        )
                        report.record_lifecycle(
                            "deadline-breach", -1, detail=detail
                        )
                        raise DeadlineExceeded(detail)
                    timing.link_retries += 1
                    report.record(
                        "link-retry", -1, detail=str(exc),
                        link=link_key(src, dst), attempt=attempts,
                        delay=round(d, 6),
                    )
                    if policy.sleep:
                        time.sleep(d)
            factor = (
                injector.link_factor(src, dst) if injector is not None else 1.0
            )
            secs = (
                cluster.latency
                + payload * frac * factor / cluster.bandwidth
                + attempts * cluster.latency
            )
            round_s = max(round_s, secs)
            timing.transfers += 1
            timing.bytes_moved += payload * frac
        total += round_s
    return total


def _execute_blocks_on_cluster(
    kernel: ComposedKernel,
    pts: np.ndarray,
    blocks: Sequence[int],
    *,
    cluster: ClusterSpec,
    state: ClusterState,
    timing: ClusterTiming,
    injector,
    policy: RetryPolicy,
    report: ResilienceReport,
    rng: np.random.Generator,
    spec: DeviceSpec,
    workers: Optional[int],
    batch_tiles: Optional[int],
    backend: Optional[str],
    n: int,
    m_total: int,
    check_mass: bool,
    full_seconds: float,
    tracer,
    deadline,
    cancel,
    watchdog: Optional[float],
) -> Tuple[Any, List[LaunchRecord], ComposedKernel, Optional[int]]:
    """Execute a contiguous anchor-block range striped across the alive
    nodes and merge it through the priced (fault-driven) topology.

    This is the shared seam under both :func:`cluster_run` (the whole
    grid in one call) and the checkpoint layer (one chunk per call, with
    ``state``/``timing`` persisted between chunks).  Returns
    ``(merged_part, stripe_records, kernel, batch_tiles)``.

    Invariant: the set of (completed + pending) stripe ranges partitions
    ``blocks`` exactly at every step — node loss replaces one range with
    sub-ranges covering it — so every unordered pair is evaluated exactly
    once and the merged part is bit-identical to a fault-free run.
    """
    problem = kernel.problem
    s0, e0 = int(blocks[0]), int(blocks[-1]) + 1
    full = kernel.full_rows
    current = kernel
    bt = batch_tiles

    parts: Dict[Tuple[int, int], Any] = {}
    owners: Dict[Tuple[int, int], int] = {}
    records: Dict[Tuple[int, int], LaunchRecord] = {}
    pending: List[Tuple[int, int, int]] = []

    def plan_over(survivors: List[int], s: int, e: int) -> List[Tuple[int, int, int]]:
        """Stripe [s, e) over ``survivors`` (triangular pair weights)."""
        if e - s < 2 or len(survivors) < 2:
            return [(survivors[0], s, e)]
        sub = plan_shards(m_total, len(survivors), rows=(s, e))
        return [
            (survivors[i % len(survivors)], ss, se)
            for i, (ss, se) in enumerate(sub.boundaries)
        ]

    def gate_restripe(node: int, s: int, e: int) -> None:
        """PR 7 deadline gate: refuse re-striping that cannot fit."""
        if deadline is None:
            return
        done = list(records.values())
        blocks_done = sum(r.blocks_run for r in done)
        if not blocks_done:
            return
        est = sum(r.wall_seconds for r in done) / blocks_done * (e - s)
        if not deadline.fits(est):
            detail = (
                f"re-striping blocks [{s}, {e}) of lost node {node} needs "
                f"~{est:.6f}s but only "
                f"{max(0.0, deadline.remaining()):.6f}s remain"
            )
            report.record_lifecycle("deadline-breach", node, detail=detail)
            raise DeadlineExceeded(detail)

    def lose_node(node: int, s: int, e: int, why: str) -> None:
        state.lose(node)
        report.record(
            "node-lost", node, detail=why, blocks=[s, e],
        )
        survivors = state.alive(cluster.nodes)
        if not survivors:
            raise NodeLostError(
                f"all {cluster.nodes} cluster nodes lost; cannot re-stripe "
                f"blocks [{s}, {e})",
                node=node,
            )
        gate_restripe(node, s, e)
        assignment = plan_over(survivors, s, e)
        report.record(
            "re-stripe", node,
            detail=(
                f"blocks [{s}, {e}) re-striped across nodes {survivors}"
            ),
            blocks=[s, e], survivors=survivors,
            stripes=[[a_s, a_e] for _, a_s, a_e in assignment],
        )
        pending.extend(assignment)

    def run_pending() -> None:
        nonlocal current, bt
        while pending:
            node, s, e = pending.pop(0)
            if cancel is not None:
                cancel.check()
            if deadline is not None:
                deadline.check()
            if node in state.dead:
                survivors = state.alive(cluster.nodes)
                if not survivors:
                    raise NodeLostError(
                        f"all {cluster.nodes} cluster nodes lost", node=node
                    )
                node = survivors[s % len(survivors)]
            delay = 0.0
            if injector is not None:
                try:
                    delay = injector.on_node(node)
                except NodeLostError as exc:
                    lose_node(node, s, e, str(exc))
                    continue
            if delay > cluster.heartbeat_timeout:
                report.record(
                    "heartbeat-timeout", node,
                    detail=(
                        f"heartbeat {delay:.3f}s late exceeds the "
                        f"{cluster.heartbeat_timeout:.3f}s timeout"
                    ),
                    delay=round(delay, 6),
                )
                lose_node(
                    node, s, e,
                    f"evicted after heartbeat timeout ({delay:.3f}s late)",
                )
                continue
            if delay:
                timing.add_compute(node, delay)
            stripe = list(range(s, e))
            with tracer.span(
                f"cluster:node{node}", cat="cluster", key=node,
                args={"node": node, "blocks": [s, e]},
            ):
                try:
                    result, record, current, bt = _supervised_execute(
                        current, pts,
                        injector=injector, policy=policy, report=report,
                        rng=rng, spec=spec, ordinal=node, blocks=stripe,
                        workers=workers, batch_tiles=bt, backend=backend,
                        expected_pairs=(
                            expected_pair_count(
                                n, current.block_size, stripe, full
                            )
                            if check_mass else None
                        ),
                        n=n, tracer=tracer, deadline=deadline, cancel=cancel,
                        watchdog=watchdog,
                    )
                except (DeviceAllocationError, WorkerCrashError) as exc:
                    lose_node(
                        node, s, e, f"supervisor budget exhausted: {exc}"
                    )
                    continue
            parts[(s, e)] = result
            owners[(s, e)] = node
            records[(s, e)] = record
            timing.add_compute(
                node, _stripe_share(m_total, s, e) * full_seconds
            )

    pending.extend(plan_over(state.alive(cluster.nodes), s0, e0))
    run_pending()

    # -- priced merge with topology degradation -------------------------------
    payload = payload_bytes(problem, n)
    while True:
        alive = state.alive(cluster.nodes)
        if len(parts) <= 1 or len(alive) <= 1:
            merge_s = 0.0
            break
        try:
            merge_s = _run_transfer_schedule(
                state.topology, alive, payload,
                cluster=cluster, injector=injector, policy=policy,
                report=report, rng=rng, deadline=deadline, timing=timing,
            )
            break
        except _LinkExhausted as exc:
            idx = TOPOLOGIES.index(state.topology)
            if idx + 1 < len(TOPOLOGIES):
                nxt = TOPOLOGIES[idx + 1]
                report.record(
                    "degrade-topology", -1,
                    detail=(
                        f"{state.topology} -> {nxt}: link "
                        f"{link_key(exc.src, exc.dst)} failed past the "
                        f"retry budget"
                    ),
                    link=link_key(exc.src, exc.dst),
                )
                state.topology = nxt
                continue
            # star floor: the failing link pins the coordinator; its far
            # endpoint is unreachable — that node's (unshipped) parts are
            # lost with it and its rows re-stripe onto the survivors
            coord = alive[0]
            lost = exc.dst if exc.src == coord else exc.src
            lost_keys = sorted(k for k, who in owners.items() if who == lost)
            for k in lost_keys:
                parts.pop(k, None)
                records.pop(k, None)
                owners.pop(k)
            state.lose(lost)
            report.record(
                "node-lost", lost,
                detail=(
                    f"unreachable at the star floor (link "
                    f"{link_key(exc.src, exc.dst)}); discarding "
                    f"{len(lost_keys)} unshipped part(s)"
                ),
                blocks=[list(k) for k in lost_keys],
            )
            survivors = state.alive(cluster.nodes)
            if not survivors:
                raise NodeLostError(
                    f"all {cluster.nodes} cluster nodes lost", node=lost,
                ) from exc
            for ks, ke in lost_keys:
                gate_restripe(lost, ks, ke)
                assignment = plan_over(survivors, ks, ke)
                report.record(
                    "re-stripe", lost,
                    detail=(
                        f"blocks [{ks}, {ke}) re-striped across nodes "
                        f"{survivors}"
                    ),
                    blocks=[ks, ke], survivors=survivors,
                    stripes=[[a_s, a_e] for _, a_s, a_e in assignment],
                )
                pending.extend(assignment)
            run_pending()

    timing.merge_seconds += merge_s
    if tracer.enabled:
        tracer.instant(
            "cluster:merge", cat="cluster",
            args={
                "topology": state.topology,
                "alive": state.alive(cluster.nodes),
                "parts": len(parts),
                "payload_bytes": payload,
                "seconds": merge_s,
            },
        )

    keys = sorted(parts)
    merged = (
        parts[keys[0]] if len(keys) == 1
        else _combine(problem, [parts[k] for k in keys])
    )
    return merged, [records[k] for k in keys], current, bt


@dataclass
class ClusterResult:
    """Outcome of one cluster-supervised run."""

    result: Any
    report: ResilienceReport
    records: List[LaunchRecord]
    kernel: ComposedKernel
    timing: ClusterTiming
    state: ClusterState

    @property
    def recovered(self) -> bool:
        return bool(self.report.faults)


def cluster_run(
    problem: TwoBodyProblem,
    points: np.ndarray,
    *,
    cluster: ClusterSpec,
    kernel: Optional[ComposedKernel] = None,
    faults: Any = None,
    retry: Optional[RetryPolicy] = None,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
    workers: Optional[int] = None,
    batch_tiles: Optional[int] = None,
    backend: Optional[str] = None,
    tracer=None,
    deadline=None,
    cancel=None,
    watchdog: Optional[float] = None,
    telemetry=None,
) -> ClusterResult:
    """Run ``problem`` striped across a simulated multi-node cluster.

    Each node executes its anchor-block stripe under the PR 2 resilience
    supervisor (one simulated :class:`~repro.gpusim.device.Device` per
    node); the partial outputs merge through the priced, fault-driven
    topology schedule.  An ``int`` ``faults`` seed builds the classic
    chaos plan *plus* :meth:`~repro.gpusim.faults.FaultPlan.
    cluster_chaos` — node loss, flaky/degraded links, a straggler.

    The functional result is bit-identical to a fault-free single-node
    run for every output kind (see the module docstring's re-striping
    invariant); only the modelled timing differs.
    """
    if problem.output.kind is UpdateKind.TOPK:
        raise ValueError(
            "TOPK outputs need a merge network; not supported on a "
            "cluster (same reason as multi-GPU)"
        )
    pts = np.asarray(points, dtype=np.float64)
    n = int(pts.shape[0])
    k = kernel if kernel is not None else make_kernel(problem)
    injector = as_injector(faults, cluster_nodes=cluster.nodes)
    policy = retry if retry is not None else RetryPolicy()
    tracer = tracer if tracer is not None else NULL_TRACER
    if injector is not None and tracer.enabled:
        injector.tracer = tracer
    report = ResilienceReport(injector, tracer=tracer)
    if telemetry is not None:
        report.telemetry = telemetry
        report.flight = telemetry.flight
    seed = injector.plan.seed if injector is not None else 0
    rng = np.random.default_rng(seed + 0x5EED)  # supervisor jitter stream

    m = k.geometry(n).num_blocks
    state = ClusterState(topology=cluster.topology)
    timing = ClusterTiming(cluster.nodes)
    full_seconds = k.simulate(n, spec=spec, calib=calib).seconds
    check_mass = not k.prune

    merged, records, kfinal, _ = _execute_blocks_on_cluster(
        k, pts, list(range(m)),
        cluster=cluster, state=state, timing=timing, injector=injector,
        policy=policy, report=report, rng=rng, spec=spec, workers=workers,
        batch_tiles=batch_tiles, backend=backend, n=n, m_total=m,
        check_mass=check_mass, full_seconds=full_seconds, tracer=tracer,
        deadline=deadline, cancel=cancel, watchdog=watchdog,
    )
    verify_result(
        problem, merged, n=n,
        expected_pairs=(
            expected_pair_count(n, kfinal.block_size, None, kfinal.full_rows)
            if check_mass else None
        ),
    )
    report.record(
        "verified", -1,
        detail=(
            f"merged {len(records)} node stripe(s); "
            f"{problem.output.kind.value} invariants hold"
        ),
    )
    return ClusterResult(merged, report, records, kfinal, timing, state)


# -- analytical scaling model -------------------------------------------------

def input_seconds(cluster: ClusterSpec, n: int, dims: int) -> float:
    """Pipelined input broadcast: the payload crosses one link once, plus
    a latency per hop down the distribution chain."""
    return n * dims * 8 / cluster.bandwidth + cluster.nodes * cluster.latency


def simulate_cluster(
    kernel: ComposedKernel,
    n: int,
    cluster: ClusterSpec,
    *,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
    lost_node: Optional[int] = None,
    lost_at: float = 0.5,
) -> Dict[str, float]:
    """Timing-only cluster prediction (no data, no execution).

    Prices one run of ``kernel`` at size ``n`` striped over the cluster:
    per-node compute (balanced triangular stripes), the pipelined input
    broadcast, and the topology-priced all-reduce.  With ``lost_node``
    set, that node dies a fraction ``lost_at`` of the way through its
    stripe: its remaining work re-stripes evenly onto the survivors (the
    elastic re-striping path) and the merge runs over the survivors.
    """
    p = cluster.nodes
    full = kernel.simulate(n, spec=spec, calib=calib).seconds
    payload = payload_bytes(kernel.problem, n)
    per_node = full / p
    inp = input_seconds(cluster, n, kernel.problem.dims)
    if lost_node is None or p < 2:
        merge = merge_seconds(cluster, payload)
        compute = per_node
    else:
        # survivors finish their own stripe, then absorb the dead node's
        # unfinished (1 - lost_at) share re-striped evenly across them
        merge = merge_seconds(
            cluster, payload,
            alive=[m for m in range(p) if m != lost_node],
        )
        compute = per_node + per_node * (1.0 - lost_at) / (p - 1)
    total = inp + compute + merge
    return {
        "nodes": float(p),
        "full_seconds": full,
        "input_seconds": inp,
        "compute_seconds": compute,
        "merge_seconds": merge,
        "seconds": total,
    }
