"""Uniform-grid cell lists: O(n·density) tiling for cutoff-bounded 2-BS.

The tile engine touches all N(N-1)/2 pairs; bounds pruning (PR 3,
:mod:`repro.core.bounds`) removes tiles only where the data is clustered.
For *cutoff-bounded* statistics — 2-PCF counts within a radius, RDF/SDH
with a clamped top bucket, KDE past its underflow horizon, distance joins
— a uniform grid does better regardless of clustering (Algis et al.,
arXiv:2406.16091): bin points into cells at least ``cutoff`` wide, and
every pair *not* in the 27-neighborhood (3^dims adjacent cells) is
certified farther apart than the cutoff.

Design, in the order the engine consumes it:

* **Grid sizing** — cell edge is the declared cutoff widened by the pair
  evaluator's worst-case rounding slack (the :mod:`repro.core.bounds`
  pad), so a computed distance can never contradict an adjacency
  certificate.  Non-periodic grids span the data's bounding box; periodic
  grids span the declared box and wrap at its faces (minimum-image,
  Ponce et al., arXiv:1204.6630).
* **Canonical traversal** — points are stably sorted by the Morton
  (Z-order) code of their cell, making every engine structure downstream
  a pure function of (points, spec, block size): the same blocks, the
  same partner order, the same counters and traces across workers ×
  backends × checkpoint resume.  Morton order also keeps a block's cells
  spatially compact, which keeps its partner-block set small.
* **Block adjacency** — the engine's unit of work stays the existing
  :class:`~repro.core.tiling.BlockDecomposition` tile, so launch
  configs, checkpoint chunking and expected-pair accounting are
  untouched.  A block's partner blocks are those owning at least one
  point in the 27-neighborhood of the block's occupied cells; partner
  tiles are evaluated *in full* (a beyond-cutoff pair inside a partner
  tile lands on the output's declared beyond-cutoff behavior — exactly
  zero, or the clamped top bucket).
* **Residuals** — tiles outside the adjacency are never evaluated.  For
  ``beyond="zero"`` outputs they contribute nothing by declaration; for
  ``beyond="clamp"`` histograms the engine folds the skipped pair count
  into the clamp bucket with one conflict-free atomic per anchor block,
  so histogram mass — and therefore every downstream mass invariant —
  is preserved exactly.

:class:`CellStats` is the frozen, hashable aggregate the analytical
traffic model consumes (``traffic(n, cells=stats)``), mirroring
:class:`~repro.core.bounds.PruneStats` from PR 3.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .bounds import _rounding_pad, array_fingerprint
from .problem import CellSpec, TwoBodyProblem, UpdateKind, as_soa
from .tiling import BlockDecomposition

#: environment override for the run()-level cell-list decision.
CELLS_ENV = "REPRO_SIM_CELLS"

#: 3^dims neighbor cells must stay enumerable.
CELL_MAX_DIMS = 3

#: cells per axis cap — keeps Morton codes in a signed int64.
_MAX_CELLS_AXIS = 1 << 20

#: occupancy-histogram entries kept in CellStats (tail folded into the
#: last entry) — bounded so stats stay cheap to hash and export.
_OCCUPANCY_HIST_CAP = 32

#: update kinds the cell engine supports.  TOPK and MATRIX need every
#: pair (or a per-point dense row) and gain nothing from a cutoff.
SUPPORTED_CELL_KINDS = (
    UpdateKind.HISTOGRAM,
    UpdateKind.SCALAR_SUM,
    UpdateKind.PER_POINT_SUM,
    UpdateKind.EMIT_PAIRS,
)


def resolve_cells(value=None):
    """Normalize a run()-level cells request to False / 'auto' / 'force'.

    ``None`` consults the :data:`CELLS_ENV` environment variable;
    booleans and the strings off/on/auto/force are accepted directly.
    'auto' engages the grid only when the problem is eligible *and* the
    density heuristic predicts a win; 'force' demands the grid and raises
    on ineligible problems.
    """
    if value is None:
        raw = os.environ.get(CELLS_ENV, "")
        source = f"{CELLS_ENV}={raw!r}"
    elif isinstance(value, str):
        raw, source = value, f"cells={value!r}"
    else:
        return "auto" if value else False
    v = raw.strip().lower()
    if v in ("", "0", "off", "false", "no"):
        return False
    if v in ("1", "on", "auto", "true", "yes"):
        return "auto"
    if v == "force":
        return "force"
    raise ValueError(
        f"{source}: expected one of off/on/auto/force (or a boolean)"
    )


def cells_eligible(problem: TwoBodyProblem) -> Tuple[bool, str]:
    """Whether the cell-list engine can run this problem at all."""
    if problem.cells is None:
        return False, (
            f"problem {problem.name!r} declares no CellSpec (no cutoff "
            "semantics to build a grid from)"
        )
    if problem.dims > CELL_MAX_DIMS:
        return False, (
            f"cell lists support at most {CELL_MAX_DIMS} dims "
            f"(3^dims neighbor cells); problem has {problem.dims}"
        )
    if problem.output.kind not in SUPPORTED_CELL_KINDS:
        return False, (
            f"update kind {problem.output.kind.value!r} needs every pair; "
            "the cell engine only serves cutoff-bounded kinds"
        )
    return True, ""


def resolve_clamp_bin(problem: TwoBodyProblem) -> Optional[int]:
    """The histogram bucket beyond-cutoff pairs land in, or ``None`` for
    ``beyond="zero"`` problems.

    This is the satellite-fix validation: a pair just beyond ``cutoff``
    — reachable through a corner neighbor cell — must map to the same
    bucket as pairs much farther out, and that bucket must exist.  Probes
    stay at moderate multiples of the cutoff on purpose: histogram maps
    divide by the bucket width into int32, so a probe at an astronomical
    distance could wrap negative *before* the top-bucket clamp and
    falsely fail (or falsely pass) the check.
    """
    spec = problem.cells
    if spec is None or spec.beyond != "clamp":
        return None
    out = problem.output
    if out.kind is not UpdateKind.HISTOGRAM:
        raise ValueError(
            "CellSpec beyond='clamp' only makes sense for HISTOGRAM "
            f"outputs, not {out.kind.value!r}"
        )
    c = float(spec.cutoff)
    probes = np.array([[c * (1.0 + 1e-9), 2.0 * c, 4.0 * c]])
    vals = np.asarray(out.map_fn(probes)).ravel()
    first = int(vals[0])
    if not np.all(vals == first) or not (0 <= first < out.bins):
        raise ValueError(
            f"problem {problem.name!r}: cell cutoff {c} does not cover "
            f"the histogram range — pairs beyond the cutoff map to "
            f"buckets {sorted(int(v) for v in set(vals.tolist()))} "
            f"instead of one clamped top bucket in [0, {out.bins})"
        )
    return first


@dataclass(frozen=True)
class CellStats:
    """Whole-launch cell-list aggregates, the analytical model's view.

    Tile/pair counts cover the *inter-block* tiles of the anchors
    considered (both (L, R) directions in full-row mode, upper-triangle
    otherwise), mirroring :class:`~repro.core.bounds.PruneStats`.
    ``residual_folds`` counts the clamp-bucket fold updates the engine
    performs (one per anchor block with skipped pairs, clamp mode only).
    Frozen and tuple-valued so it can key the traffic cache.
    """

    cells: int = 0
    cells_occupied: int = 0
    max_occupancy: int = 0
    mean_occupancy: float = 0.0
    occupancy_hist: Tuple[Tuple[int, int], ...] = ()
    tiles: int = 0
    tiles_examined: int = 0
    pairs: int = 0
    pairs_examined: int = 0
    pairs_skipped: int = 0
    tile_points_skipped: int = 0
    residual_folds: int = 0

    @property
    def tiles_skipped(self) -> int:
        return self.tiles - self.tiles_examined

    @property
    def examined_fraction(self) -> float:
        return self.pairs_examined / self.pairs if self.pairs else 1.0


def merge_cell_stats(parts: Sequence[Optional[CellStats]]) -> Optional[CellStats]:
    """Combine per-chunk stats (disjoint anchor sets over one grid):
    work counts add, grid-shape fields are global and taken verbatim."""
    live = [p for p in parts if p is not None]
    if not live:
        return None
    head = live[0]
    return CellStats(
        cells=head.cells,
        cells_occupied=head.cells_occupied,
        max_occupancy=head.max_occupancy,
        mean_occupancy=head.mean_occupancy,
        occupancy_hist=head.occupancy_hist,
        tiles=sum(p.tiles for p in live),
        tiles_examined=sum(p.tiles_examined for p in live),
        pairs=sum(p.pairs for p in live),
        pairs_examined=sum(p.pairs_examined for p in live),
        pairs_skipped=sum(p.pairs_skipped for p in live),
        tile_points_skipped=sum(p.tile_points_skipped for p in live),
        residual_folds=sum(p.residual_folds for p in live),
    )


def _morton_codes(q: np.ndarray, bits: int) -> np.ndarray:
    """Interleave per-axis cell indices (dims, m) into Z-order codes."""
    dims = q.shape[0]
    key = np.zeros(q.shape[1], dtype=np.int64)
    for bit in range(bits):
        for d in range(dims):
            key |= ((q[d] >> bit) & np.int64(1)) << np.int64(bit * dims + d)
    return key


class CellIndex:
    """The uniform-grid view of one (points, block size, CellSpec).

    Everything here is a pure, deterministic function of its inputs —
    no RNG, no wall clock, no worker count — which is what lets the
    engine reuse one index across backends, checkpoint chunks and
    resume while staying bit-identical.
    """

    def __init__(
        self, soa: np.ndarray, block_size: int, spec: CellSpec
    ) -> None:
        spec.validate()
        dims, n = soa.shape
        if dims > CELL_MAX_DIMS:
            raise ValueError(
                f"cell lists support at most {CELL_MAX_DIMS} dims, "
                f"got {dims}"
            )
        if n == 0:
            raise ValueError("cell index needs at least one point")
        self.spec = spec
        self.block_size = int(block_size)
        self.n = n
        self.dims = dims
        self.periodic = spec.box is not None

        # -- grid frame ----------------------------------------------------
        if self.periodic:
            box = float(spec.box)
            coords = soa - box * np.floor(soa / box)  # wrap into [0, box)
            lo = np.zeros(dims)
            span = np.full(dims, box)
        else:
            coords = soa
            lo = soa.min(axis=1)
            span = soa.max(axis=1) - lo
        # widen the edge by the evaluator's rounding slack so adjacency
        # certificates can never be contradicted by a computed distance
        pad = _rounding_pad(lo[:, None], (lo + span)[:, None], spec.metric)
        if spec.metric == "euclidean":
            edge = float(np.sqrt(spec.cutoff * spec.cutoff + pad))
        else:
            edge = float(spec.cutoff + pad)
        ncells = np.maximum(
            1, np.minimum(span // edge, _MAX_CELLS_AXIS - 1).astype(np.int64)
        )
        width = np.where(ncells > 0, span / ncells, 1.0)
        width = np.where(width > 0, width, 1.0)
        self.ncells = ncells
        self.cell_width = width
        self.total_cells = int(np.prod(ncells))

        # -- binning + canonical (Morton) order ----------------------------
        q = ((coords - lo[:, None]) / width[:, None]).astype(np.int64)
        if self.periodic:
            q %= ncells[:, None]
        else:
            np.clip(q, 0, (ncells - 1)[:, None], out=q)
        bits = max(1, int(ncells.max() - 1).bit_length())
        self._bits = bits
        codes = _morton_codes(q, bits)
        perm = np.argsort(codes, kind="stable")
        perm.setflags(write=False)
        self.perm = perm
        codes_sorted = codes[perm]

        occ_codes, occ_first, occ_counts = np.unique(
            codes_sorted, return_index=True, return_counts=True
        )
        self._occ_codes = occ_codes
        self._occ_pos = np.append(occ_first, n).astype(np.int64)
        self._occ_counts = occ_counts.astype(np.int64)
        self.cells_occupied = int(occ_codes.size)
        q_occ = q[:, perm[occ_first]]

        # -- occupied-cell neighbor table (CSR over occupied cells) --------
        anchors: List[np.ndarray] = []
        nbrs: List[np.ndarray] = []
        nocc = self.cells_occupied
        occ_ids = np.arange(nocc, dtype=np.int64)
        for off in product((-1, 0, 1), repeat=dims):
            nb = q_occ + np.asarray(off, dtype=np.int64)[:, None]
            if self.periodic:
                nb %= ncells[:, None]
                keep = occ_ids
            else:
                ok = np.all((nb >= 0) & (nb < ncells[:, None]), axis=0)
                nb = nb[:, ok]
                keep = occ_ids[ok]
            ncode = _morton_codes(nb, bits)
            idx = np.searchsorted(occ_codes, ncode)
            hit = idx < nocc
            hit[hit] = occ_codes[idx[hit]] == ncode[hit]
            anchors.append(keep[hit])
            nbrs.append(idx[hit])
        # dedupe (periodic wrapping on tiny grids aliases offsets) and
        # order by (anchor cell, neighbor cell): the canonical traversal
        flat = np.unique(
            np.concatenate(anchors) * np.int64(nocc) + np.concatenate(nbrs)
        )
        self._nbr_indices = (flat % nocc).astype(np.int64)
        self._nbr_indptr = np.searchsorted(
            flat // nocc, np.arange(nocc + 1, dtype=np.int64)
        )

        # -- block frame ----------------------------------------------------
        dec = BlockDecomposition(n, self.block_size)
        self.num_blocks = dec.num_blocks
        sizes = np.full(dec.num_blocks, self.block_size, dtype=np.int64)
        sizes[-1] = n - (dec.num_blocks - 1) * self.block_size
        self.sizes = sizes
        self._partner_cache: Dict[Tuple[int, bool], np.ndarray] = {}

    # -- adjacency ---------------------------------------------------------

    def partner_blocks(self, b: int, full: bool) -> np.ndarray:
        """Blocks owning at least one point in the 27-neighborhood of
        anchor block ``b``'s cells, ascending (canonical order), filtered
        to the tile engine's eligible set (all-but-b in full-row mode,
        higher-indexed otherwise)."""
        cached = self._partner_cache.get((b, full))
        if cached is not None:
            return cached
        bsz = self.block_size
        start = b * bsz
        end = min(self.n, start + bsz)
        pos = self._occ_pos
        k_lo = int(np.searchsorted(pos, start, side="right")) - 1
        k_hi = int(np.searchsorted(pos, end - 1, side="right")) - 1
        nbr = np.unique(
            self._nbr_indices[
                self._nbr_indptr[k_lo] : self._nbr_indptr[k_hi + 1]
            ]
        )
        starts = pos[nbr]
        ends = pos[nbr + 1]
        lo_blk = starts // bsz
        hi_blk = (ends - 1) // bsz
        counts = hi_blk - lo_blk + 1
        total = int(counts.sum())
        first = np.cumsum(counts) - counts
        expanded = (
            np.repeat(lo_blk - first, counts)
            + np.arange(total, dtype=np.int64)
        )
        blocks = np.unique(expanded)
        blocks = blocks[blocks != b] if full else blocks[blocks > b]
        blocks.setflags(write=False)
        self._partner_cache[(b, full)] = blocks
        return blocks

    def skipped_points(self, b: int, full: bool) -> int:
        """Partner-eligible points of anchor ``b`` that adjacency rules
        out — every pair with them is certified beyond the cutoff."""
        if full:
            eligible = self.n - int(self.sizes[b])
        else:
            eligible = self.n - min(self.n, (b + 1) * self.block_size)
        partner_pts = int(self.sizes[self.partner_blocks(b, full)].sum())
        return eligible - partner_pts

    def residual_pairs(self, b: int, full: bool) -> int:
        """Pairs of anchor ``b`` never evaluated: anchor size × skipped
        partner points.  In clamp mode the engine folds exactly this
        count into the clamp bucket."""
        return int(self.sizes[b]) * self.skipped_points(b, full)

    # -- aggregates --------------------------------------------------------

    def stats(
        self,
        full_rows: bool = False,
        anchors: Optional[Iterable[int]] = None,
        clamp: bool = False,
    ) -> CellStats:
        """Aggregate adjacency over ``anchors`` (default: every block) —
        the quantity the analytical traffic model consumes.  ``clamp``
        states whether skipped work is folded (one residual update per
        anchor with skipped pairs) or dropped (``beyond="zero"``)."""
        m = self.num_blocks
        anchor_list = range(m) if anchors is None else anchors
        tiles = tiles_ex = 0
        pairs = pairs_ex = pairs_sk = pts_sk = folds = 0
        for b in anchor_list:
            partners = self.partner_blocks(b, full_rows)
            nl = int(self.sizes[b])
            if full_rows:
                elig_tiles = m - 1
                elig_pts = self.n - nl
            else:
                elig_tiles = m - 1 - b
                elig_pts = self.n - min(self.n, (b + 1) * self.block_size)
            partner_pts = int(self.sizes[partners].sum())
            skipped_pts = elig_pts - partner_pts
            tiles += elig_tiles
            tiles_ex += int(partners.size)
            pairs += nl * elig_pts
            pairs_ex += nl * partner_pts
            pairs_sk += nl * skipped_pts
            pts_sk += skipped_pts
            if clamp and skipped_pts > 0:
                folds += 1
        occ = self._occ_counts
        uniq, cnt = np.unique(occ, return_counts=True)
        if uniq.size > _OCCUPANCY_HIST_CAP:
            head = _OCCUPANCY_HIST_CAP - 1
            hist = [(int(u), int(c)) for u, c in zip(uniq[:head], cnt[:head])]
            hist.append((int(uniq[-1]), int(cnt[head:].sum())))
        else:
            hist = [(int(u), int(c)) for u, c in zip(uniq, cnt)]
        return CellStats(
            cells=self.total_cells,
            cells_occupied=self.cells_occupied,
            max_occupancy=int(occ.max()),
            mean_occupancy=float(self.n / self.cells_occupied),
            occupancy_hist=tuple(hist),
            tiles=tiles,
            tiles_examined=tiles_ex,
            pairs=pairs,
            pairs_examined=pairs_ex,
            pairs_skipped=pairs_sk,
            tile_points_skipped=pts_sk,
            residual_folds=folds,
        )


# -- dataset-fingerprint memo --------------------------------------------------
#
# Building the index is O(n · 3^dims); repeated run() calls on the same
# points (checkpoint chunks, planner pricing followed by execution, the
# service layer's repeated queries) should pay it once.  Keyed by content
# fingerprint, like the block-bounds/spatial-sort memos in core/bounds.py.

_INDEX_MEMO: "OrderedDict[tuple, CellIndex]" = OrderedDict()
_INDEX_MEMO_CAP = 8


def get_cell_index(
    soa: np.ndarray, block_size: int, spec: CellSpec
) -> CellIndex:
    """Memoized :class:`CellIndex` for one (points, block size, spec)."""
    key = (
        array_fingerprint(soa),
        int(block_size),
        (spec.cutoff, spec.beyond, spec.box, spec.metric),
    )
    hit = _INDEX_MEMO.get(key)
    if hit is not None:
        _INDEX_MEMO.move_to_end(key)
        return hit
    index = CellIndex(soa, block_size, spec)
    _INDEX_MEMO[key] = index
    while len(_INDEX_MEMO) > _INDEX_MEMO_CAP:
        _INDEX_MEMO.popitem(last=False)
    return index


def cells_worthwhile(stats: CellStats) -> bool:
    """Density heuristic: engage the grid only when adjacency removes a
    meaningful share of the pair population.  Deterministic, so the
    auto decision is stable across resume."""
    if stats.tiles == 0:
        return False  # single block: no inter-block work to skip
    return (
        stats.cells_occupied >= 8
        and stats.pairs_examined <= 0.75 * stats.pairs
    )


def cell_stats(
    points: np.ndarray,
    block_size: int,
    problem: TwoBodyProblem,
    full_rows: bool = False,
    anchors: Optional[Sequence[int]] = None,
) -> CellStats:
    """Adjacency aggregates for ``points`` without executing anything —
    what the planner prices ``+cells`` kernel variants with."""
    ok, why = cells_eligible(problem)
    if not ok:
        raise ValueError(why)
    index = get_cell_index(as_soa(points), block_size, problem.cells)
    clamp = resolve_clamp_bin(problem) is not None
    return index.stats(full_rows=full_rows, anchors=anchors, clamp=clamp)
