"""Model-driven kernel selection — the paper's "envisioned framework".

The conclusion of the paper sketches "a framework that automatically
applies different techniques ... to a larger group of 2-BSs".  This module
realizes that step: given a problem descriptor, a device and a data size,
it enumerates the legal (input x output x block-size) compositions, prices
each with the analytical model of Section IV-B/IV-D, applies the paper's
hard rules (ROC cannot hold output; shuffle needs Kepler+; Type-II output
must fit shared memory), and returns the predicted-fastest kernel together
with the full ranking so callers can inspect the rationale.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.errors import GpuSimError, LaunchConfigError, SharedMemoryError
from ..gpusim.parallel import resolve_workers
from ..gpusim.spec import DeviceSpec, TITAN_X
from .bounds import PruneStats, prune_stats
from .cells import CellStats, cell_stats, cells_eligible
from .kernels import ComposedKernel, FULL_ROW_KINDS, make_kernel
from .problem import OutputClass, TwoBodyProblem, UpdateKind

#: candidate block sizes (warp multiples spanning the practical range; the
#: paper uses 1024 for 2-PCF per its prior model [23] and 256 for SDH).
DEFAULT_BLOCK_SIZES: Tuple[int, ...] = (128, 256, 512, 1024)

# ---------------------------------------------------------------------------
# Host execution-backend pricing.
#
# The analytical model above prices *simulated GPU* seconds; the knobs
# below price *host wall time* of the functional run itself, so the
# planner can also recommend which execution engine
# (sequential / threads / processes / megabatch) to hand to ``run``.
# Constants are calibrated against BENCH_backend.json on the reference
# host: the tile-at-a-time sequential engine spends roughly half its wall
# time in per-tile interpreter dispatch, which batching (threads engine)
# and mega-batching amortize almost entirely; the ufunc share then scales
# across cores — imperfectly for threads (the interpreter between ufuncs
# holds the GIL), near-linearly for processes (own interpreters over
# shared-memory buffers, at the price of a fork/segment setup toll).

#: ufunc (vectorized-math) share of the sequential engine's wall time
VECTOR_FRACTION = 0.45
#: per-tile dispatch share left after auto tile batching (threads engine)
DISPATCH_RESIDUAL_BATCHED = 0.05
#: dispatch share left after mega-batch stacking (one stage per block)
DISPATCH_RESIDUAL_MEGA = 0.02
#: marginal per-extra-core scaling of the ufunc share under the GIL
THREAD_EFFICIENCY = 0.55
#: marginal per-extra-core scaling for worker processes (GIL-free)
PROCESS_EFFICIENCY = 0.85
#: fork + shared-memory-segment setup toll, relative to a sequential run
PROCESS_STARTUP_FRACTION = 0.05


@dataclass(frozen=True)
class BackendChoice:
    """One host execution backend with its predicted relative speedup."""

    backend: str
    #: predicted host wall-time speedup over the sequential engine
    predicted_speedup: float
    note: str = ""


def plan_backend(
    n: int,
    block_size: int = 256,
    workers: Optional[int] = None,
    cpu_count: Optional[int] = None,
) -> List[BackendChoice]:
    """Rank the host execution backends for a run of size ``n``.

    Returns every backend with its predicted wall-time speedup over the
    sequential (tile-at-a-time) engine, best first.  ``workers`` follows
    ``REPRO_SIM_WORKERS`` when ``None``; ``cpu_count`` defaults to the
    machine's.  The model is deliberately coarse — its job is picking the
    right engine per host, not predicting milliseconds: on a single-core
    host it correctly refuses to recommend worker processes (fork toll,
    no parallel gain), while on a multi-core host processes and the
    mega-batch path overtake the thread plateau.
    """
    grid_blocks = max(1, -(-int(n) // int(block_size)))
    cores = cpu_count if cpu_count is not None else (os.cpu_count() or 1)
    w = resolve_workers(workers, grid_blocks)
    p = max(1, min(w, cores))
    thread_scale = 1.0 + (p - 1) * THREAD_EFFICIENCY
    process_scale = 1.0 + (p - 1) * PROCESS_EFFICIENCY
    times = {
        "sequential": 1.0,
        "threads": DISPATCH_RESIDUAL_BATCHED + VECTOR_FRACTION / thread_scale,
        "processes": (
            DISPATCH_RESIDUAL_BATCHED
            + VECTOR_FRACTION / process_scale
            + PROCESS_STARTUP_FRACTION
        ),
        "megabatch": DISPATCH_RESIDUAL_MEGA + VECTOR_FRACTION / thread_scale,
    }
    notes = {
        "sequential": "tile-at-a-time baseline",
        "threads": f"auto tile batching, {p} worker thread(s)",
        "processes": (
            f"{p} shared-memory worker process(es) on {cores} core(s)"
        ),
        "megabatch": "one stacked evaluation per kernel stage",
    }
    ranked = sorted(
        (
            BackendChoice(
                backend=name,
                predicted_speedup=round(1.0 / t, 3),
                note=notes[name],
            )
            for name, t in times.items()
        ),
        key=lambda c: (-c.predicted_speedup, c.backend),
    )
    return ranked


@dataclass(frozen=True)
class PlanCandidate:
    """One legal composition with its predicted runtime."""

    kernel: ComposedKernel
    predicted_seconds: float
    note: str = ""
    #: predicted pruning aggregates when this candidate runs with bounds
    #: pruning enabled (None for unpruned candidates)
    prune: Optional[PruneStats] = None
    #: predicted cell-list aggregates when this candidate runs on the
    #: uniform-grid engine (None for tile-engine candidates)
    cells: Optional[CellStats] = None

    @property
    def label(self) -> str:
        tag = "+prune" if self.kernel.prune else ""
        if self.kernel.cells:
            tag += "+cells"
        return (
            f"{self.kernel.input.name} x {self.kernel.output.name}{tag} "
            f"(B={self.kernel.block_size})"
        )


@dataclass
class Plan:
    """The planner's decision and its ranked alternatives."""

    problem: str
    n: int
    chosen: PlanCandidate
    ranking: List[PlanCandidate]
    rejected: List[Tuple[str, str]]  # (label, reason)
    #: host execution backends ranked by predicted wall-time speedup
    #: (:func:`plan_backend`); empty when backend pricing was skipped
    backends: List[BackendChoice] = field(default_factory=list)

    @property
    def backend(self) -> Optional[BackendChoice]:
        """The recommended host execution backend (best-ranked), if priced."""
        return self.backends[0] if self.backends else None

    def explain(self) -> str:
        lines = [
            f"plan for {self.problem!r} at N={self.n}:",
            f"  chosen: {self.chosen.label} "
            f"-> {self.chosen.predicted_seconds:.4g} s",
        ]
        for cand in self.ranking[1:6]:
            lines.append(
                f"  alt:    {cand.label} -> {cand.predicted_seconds:.4g} s"
            )
        for label, reason in self.rejected:
            lines.append(f"  ruled out: {label} ({reason})")
        if self.backends:
            best = self.backends[0]
            lines.append(
                f"  backend: {best.backend} "
                f"(predicted {best.predicted_speedup:.2f}x host speedup; "
                f"{best.note})"
            )
        return "\n".join(lines)


def _legal_outputs(problem: TwoBodyProblem, spec: DeviceSpec) -> List[Tuple[str, str]]:
    """Output strategies legal for this problem, with planner notes."""
    kind = problem.output.kind
    klass = problem.output.klass
    if klass is OutputClass.TYPE_I:
        return [("register", "Type-I output fits registers")]
    if klass is OutputClass.TYPE_II:
        outs = []
        hist_bytes = problem.output.bins * 4
        if hist_bytes <= spec.shared_mem_per_block:
            outs.append(
                ("privatized-shm", "Type-II output fits shared memory")
            )
        outs.append(("global-atomic", "fallback: direct global atomics"))
        return outs
    if kind is UpdateKind.MATRIX or kind is UpdateKind.EMIT_PAIRS:
        return [("global-direct", "Type-III output goes to global memory")]
    return [("global-atomic", "Type-III fallback")]


def plan_kernel(
    problem: TwoBodyProblem,
    n: int,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    allow_shuffle: bool = True,
    load_balanced: bool = True,
    points: Optional[np.ndarray] = None,
) -> Plan:
    """Pick the predicted-fastest legal composition for ``problem`` at
    size ``n`` on ``spec``.

    With ``points`` (a concrete (n, dims) dataset) and a problem carrying
    a :class:`~repro.core.problem.PruningSpec`, the planner additionally
    prices a bounds-pruned variant of every eligible composition — pruning
    outcomes are data-dependent, so they can only be ranked against a
    dataset, not against ``n`` alone.  A problem carrying a
    :class:`~repro.core.problem.CellSpec` likewise gets ``+cells``
    variants priced from the dataset's measured cell adjacency.
    """
    inputs = ["naive", "shm-shm", "register-shm", "register-roc"]
    if allow_shuffle and spec.supports_shuffle:
        inputs.append("shuffle")
    prunable = problem.pruning is not None and points is not None
    cellable = points is not None and cells_eligible(problem)[0]
    if (prunable or cellable) and np.asarray(points).shape[0] != n:
        raise ValueError(
            f"planner points carry {np.asarray(points).shape[0]} rows "
            f"but n={n}"
        )
    #: measured pruning aggregates per block size, shared across candidates
    stats_by_block: Dict[int, PruneStats] = {}
    #: measured cell adjacency per block size, shared across candidates
    cstats_by_block: Dict[int, CellStats] = {}
    full = problem.output.kind in FULL_ROW_KINDS
    candidates: List[PlanCandidate] = []
    rejected: List[Tuple[str, str]] = []
    for out_name, note in _legal_outputs(problem, spec):
        for in_name in inputs:
            for b in block_sizes:
                label = f"{in_name} x {out_name} (B={b})"
                try:
                    kernel = make_kernel(
                        problem,
                        in_name,
                        out_name,
                        block_size=b,
                        load_balanced=load_balanced and b % 2 == 0,
                    )
                    report = kernel.simulate(n, spec=spec, calib=calib)
                except (SharedMemoryError, LaunchConfigError, GpuSimError, ValueError) as exc:
                    rejected.append((label, str(exc)))
                    continue
                candidates.append(
                    PlanCandidate(kernel=kernel, predicted_seconds=report.seconds, note=note)
                )
                if cellable and kernel.input.supports_pruning:
                    try:
                        cstats = cstats_by_block.get(b)
                        if cstats is None:
                            cstats = cell_stats(
                                points, b, problem, full_rows=full
                            )
                            cstats_by_block[b] = cstats
                        kernel_c = make_kernel(
                            problem,
                            in_name,
                            out_name,
                            block_size=b,
                            load_balanced=load_balanced and b % 2 == 0,
                            cells=True,
                        )
                        report_c = kernel_c.simulate(
                            n, spec=spec, calib=calib, cells=cstats
                        )
                    except (SharedMemoryError, LaunchConfigError, GpuSimError,
                            ValueError) as exc:
                        rejected.append((f"{label} +cells", str(exc)))
                    else:
                        candidates.append(
                            PlanCandidate(
                                kernel=kernel_c,
                                predicted_seconds=report_c.seconds,
                                note=f"{note}; cell list examines "
                                f"{cstats.examined_fraction:.0%} of pairs",
                                cells=cstats,
                            )
                        )
                if not prunable or not kernel.input.supports_pruning:
                    continue
                try:
                    stats = stats_by_block.get(b)
                    if stats is None:
                        stats = prune_stats(points, b, problem, full_rows=full)
                        stats_by_block[b] = stats
                    kernel_p = make_kernel(
                        problem,
                        in_name,
                        out_name,
                        block_size=b,
                        load_balanced=load_balanced and b % 2 == 0,
                        prune=True,
                    )
                    report_p = kernel_p.simulate(
                        n, spec=spec, calib=calib, prune=stats
                    )
                except (SharedMemoryError, LaunchConfigError, GpuSimError, ValueError) as exc:
                    rejected.append((f"{label} +prune", str(exc)))
                    continue
                candidates.append(
                    PlanCandidate(
                        kernel=kernel_p,
                        predicted_seconds=report_p.seconds,
                        note=f"{note}; bounds-pruned "
                        f"({stats.prune_fraction:.0%} of tiles)",
                        prune=stats,
                    )
                )
    if not candidates:
        raise GpuSimError(
            f"no legal kernel composition for {problem.name!r} on {spec.name}"
        )
    ranking = sorted(candidates, key=lambda c: c.predicted_seconds)
    return Plan(
        problem=problem.name,
        n=n,
        chosen=ranking[0],
        ranking=ranking,
        rejected=rejected,
        backends=plan_backend(n, block_size=ranking[0].kernel.block_size),
    )
