"""Model-driven kernel selection — the paper's "envisioned framework".

The conclusion of the paper sketches "a framework that automatically
applies different techniques ... to a larger group of 2-BSs".  This module
realizes that step: given a problem descriptor, a device and a data size,
it enumerates the legal (input x output x block-size) compositions, prices
each with the analytical model of Section IV-B/IV-D, applies the paper's
hard rules (ROC cannot hold output; shuffle needs Kepler+; Type-II output
must fit shared memory), and returns the predicted-fastest kernel together
with the full ranking so callers can inspect the rationale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.errors import GpuSimError, LaunchConfigError, SharedMemoryError
from ..gpusim.spec import DeviceSpec, TITAN_X
from .bounds import PruneStats, prune_stats
from .kernels import ComposedKernel, FULL_ROW_KINDS, make_kernel
from .problem import OutputClass, TwoBodyProblem, UpdateKind

#: candidate block sizes (warp multiples spanning the practical range; the
#: paper uses 1024 for 2-PCF per its prior model [23] and 256 for SDH).
DEFAULT_BLOCK_SIZES: Tuple[int, ...] = (128, 256, 512, 1024)


@dataclass(frozen=True)
class PlanCandidate:
    """One legal composition with its predicted runtime."""

    kernel: ComposedKernel
    predicted_seconds: float
    note: str = ""
    #: predicted pruning aggregates when this candidate runs with bounds
    #: pruning enabled (None for unpruned candidates)
    prune: Optional[PruneStats] = None

    @property
    def label(self) -> str:
        tag = "+prune" if self.kernel.prune else ""
        return (
            f"{self.kernel.input.name} x {self.kernel.output.name}{tag} "
            f"(B={self.kernel.block_size})"
        )


@dataclass
class Plan:
    """The planner's decision and its ranked alternatives."""

    problem: str
    n: int
    chosen: PlanCandidate
    ranking: List[PlanCandidate]
    rejected: List[Tuple[str, str]]  # (label, reason)

    def explain(self) -> str:
        lines = [
            f"plan for {self.problem!r} at N={self.n}:",
            f"  chosen: {self.chosen.label} "
            f"-> {self.chosen.predicted_seconds:.4g} s",
        ]
        for cand in self.ranking[1:6]:
            lines.append(
                f"  alt:    {cand.label} -> {cand.predicted_seconds:.4g} s"
            )
        for label, reason in self.rejected:
            lines.append(f"  ruled out: {label} ({reason})")
        return "\n".join(lines)


def _legal_outputs(problem: TwoBodyProblem, spec: DeviceSpec) -> List[Tuple[str, str]]:
    """Output strategies legal for this problem, with planner notes."""
    kind = problem.output.kind
    klass = problem.output.klass
    if klass is OutputClass.TYPE_I:
        return [("register", "Type-I output fits registers")]
    if klass is OutputClass.TYPE_II:
        outs = []
        hist_bytes = problem.output.bins * 4
        if hist_bytes <= spec.shared_mem_per_block:
            outs.append(
                ("privatized-shm", "Type-II output fits shared memory")
            )
        outs.append(("global-atomic", "fallback: direct global atomics"))
        return outs
    if kind is UpdateKind.MATRIX or kind is UpdateKind.EMIT_PAIRS:
        return [("global-direct", "Type-III output goes to global memory")]
    return [("global-atomic", "Type-III fallback")]


def plan_kernel(
    problem: TwoBodyProblem,
    n: int,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
    block_sizes: Sequence[int] = DEFAULT_BLOCK_SIZES,
    allow_shuffle: bool = True,
    load_balanced: bool = True,
    points: Optional[np.ndarray] = None,
) -> Plan:
    """Pick the predicted-fastest legal composition for ``problem`` at
    size ``n`` on ``spec``.

    With ``points`` (a concrete (n, dims) dataset) and a problem carrying
    a :class:`~repro.core.problem.PruningSpec`, the planner additionally
    prices a bounds-pruned variant of every eligible composition — pruning
    outcomes are data-dependent, so they can only be ranked against a
    dataset, not against ``n`` alone.
    """
    inputs = ["naive", "shm-shm", "register-shm", "register-roc"]
    if allow_shuffle and spec.supports_shuffle:
        inputs.append("shuffle")
    prunable = problem.pruning is not None and points is not None
    if prunable and np.asarray(points).shape[0] != n:
        raise ValueError(
            f"planner points carry {np.asarray(points).shape[0]} rows "
            f"but n={n}"
        )
    #: measured pruning aggregates per block size, shared across candidates
    stats_by_block: Dict[int, PruneStats] = {}
    full = problem.output.kind in FULL_ROW_KINDS
    candidates: List[PlanCandidate] = []
    rejected: List[Tuple[str, str]] = []
    for out_name, note in _legal_outputs(problem, spec):
        for in_name in inputs:
            for b in block_sizes:
                label = f"{in_name} x {out_name} (B={b})"
                try:
                    kernel = make_kernel(
                        problem,
                        in_name,
                        out_name,
                        block_size=b,
                        load_balanced=load_balanced and b % 2 == 0,
                    )
                    report = kernel.simulate(n, spec=spec, calib=calib)
                except (SharedMemoryError, LaunchConfigError, GpuSimError, ValueError) as exc:
                    rejected.append((label, str(exc)))
                    continue
                candidates.append(
                    PlanCandidate(kernel=kernel, predicted_seconds=report.seconds, note=note)
                )
                if not prunable or not kernel.input.supports_pruning:
                    continue
                try:
                    stats = stats_by_block.get(b)
                    if stats is None:
                        stats = prune_stats(points, b, problem, full_rows=full)
                        stats_by_block[b] = stats
                    kernel_p = make_kernel(
                        problem,
                        in_name,
                        out_name,
                        block_size=b,
                        load_balanced=load_balanced and b % 2 == 0,
                        prune=True,
                    )
                    report_p = kernel_p.simulate(
                        n, spec=spec, calib=calib, prune=stats
                    )
                except (SharedMemoryError, LaunchConfigError, GpuSimError, ValueError) as exc:
                    rejected.append((f"{label} +prune", str(exc)))
                    continue
                candidates.append(
                    PlanCandidate(
                        kernel=kernel_p,
                        predicted_seconds=report_p.seconds,
                        note=f"{note}; bounds-pruned "
                        f"({stats.prune_fraction:.0%} of tiles)",
                        prune=stats,
                    )
                )
    if not candidates:
        raise GpuSimError(
            f"no legal kernel composition for {problem.name!r} on {spec.name}"
        )
    ranking = sorted(candidates, key=lambda c: c.predicted_seconds)
    return Plan(
        problem=problem.name,
        n=n,
        chosen=ranking[0],
        ranking=ranking,
        rejected=rejected,
    )
