"""End-to-end execution helpers: data in, result + performance report out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.device import Device, LaunchRecord
from ..gpusim.parallel import resolve_backend
from ..gpusim.profiler import SimReport
from ..gpusim.spec import DeviceSpec, TITAN_X
from ..obs.flight import resolve_telemetry
from ..obs.manifest import build_manifest
from ..obs.metrics import MetricsRegistry, collect_metrics
from ..obs.tracer import resolve_trace
from .cells import cell_stats, cells_eligible, cells_worthwhile, resolve_cells
from .cluster import resolve_cluster
from .kernels import ComposedKernel, make_kernel
from .planner import plan_kernel
from .problem import TwoBodyProblem, UpdateKind


@dataclass
class RunResult:
    """Functional result plus the simulated performance view."""

    result: Any
    report: SimReport
    record: LaunchRecord
    kernel: ComposedKernel
    #: recovery flight recorder, populated only on supervised runs
    #: (``faults``/``retries`` arguments); ``None`` otherwise.
    resilience: Optional[Any] = None
    #: the execution tracer (a :class:`~repro.obs.tracer.Tracer` when
    #: ``trace=`` was requested, else the no-op tracer); carries the
    #: span tree and exports Chrome-trace / JSONL views.
    trace: Optional[Any] = None
    #: run-wide :class:`~repro.obs.metrics.MetricsRegistry` aggregating
    #: access counters, prune stats and resilience events.
    metrics: Optional[MetricsRegistry] = None
    #: reproducibility manifest (seed, kernel config, device spec,
    #: calibration, git revision) — also embedded in trace exports.
    manifest: Optional[dict] = None
    #: cluster cost model (:class:`~repro.core.cluster.ClusterTiming`)
    #: when the run was striped across simulated nodes; ``None`` otherwise.
    cluster: Optional[Any] = None

    @property
    def seconds(self) -> float:
        """Simulated GPU seconds (not host wall time)."""
        return self.report.seconds


def _block_pair_weights(n: int, kernel: ComposedKernel) -> dict:
    """Per-anchor-block pair counts for telemetry ETA weighting.

    Mirrors :func:`~repro.core.kernels.base.compute_geometry`'s closed
    forms, broken out per block: full-row kernels evaluate every pair
    twice across blocks, triangular kernels only pair an anchor with
    higher-indexed blocks.  Vectorized — O(M), not O(M^2).
    """
    from .kernels.base import block_sizes

    sizes = block_sizes(n, kernel.block_size).astype(np.int64)
    if kernel.full_rows:
        pairs = sizes * (n - sizes) + sizes * (sizes - 1)
    else:
        suffix = np.concatenate(
            [np.cumsum(sizes[::-1])[::-1][1:], np.zeros(1, dtype=np.int64)]
        )
        pairs = sizes * suffix + sizes * (sizes - 1) // 2
    return {int(b): int(p) for b, p in enumerate(pairs)}


def run(
    problem: TwoBodyProblem,
    points: np.ndarray,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
    auto_plan: bool = False,
    workers: Optional[int] = None,
    batch_tiles: Optional[int] = None,
    backend: Optional[str] = None,
    faults: Optional[Any] = None,
    retries: Optional[Any] = None,
    prune: bool = False,
    cells: Optional[Any] = None,
    trace: Optional[Any] = None,
    checkpoint_dir: Optional[Any] = None,
    checkpoint_every: Optional[int] = None,
    deadline: Optional[Any] = None,
    cancel: Optional[Any] = None,
    resume: Optional[Any] = None,
    watchdog: Optional[float] = None,
    cluster: Optional[Any] = None,
    nodes: Optional[int] = None,
    progress: Optional[Any] = None,
) -> RunResult:
    """Execute ``problem`` over ``points`` on the simulated device.

    With ``auto_plan`` the planner chooses the composition; otherwise a
    default Register-SHM kernel (or the one supplied) is used.  The
    functional result is exact; the report carries the simulated timing.

    ``prune`` enables bounds-based tile pruning (the problem must carry a
    :class:`~repro.core.problem.PruningSpec`); with ``auto_plan`` the
    planner then ranks pruned variants against the concrete dataset.

    ``cells`` selects the uniform-grid cell-list engine: ``"auto"`` (or
    ``True``) engages it when the problem declares a
    :class:`~repro.core.problem.CellSpec` *and* the dataset's measured
    cell adjacency predicts a win; ``"force"`` demands it (raising on
    ineligible problems); ``False`` disables it; ``None`` follows the
    ``REPRO_SIM_CELLS`` environment variable.  Problems without cutoff
    semantics (SDH over the full distance range, Gram matrices, PSS,
    top-k) automatically stay on the tile engine.

    ``workers`` / ``batch_tiles`` tune the simulator's parallel, batched
    execution engine (see :meth:`ComposedKernel.execute`); defaults follow
    the ``REPRO_SIM_WORKERS`` / ``REPRO_SIM_TILE_BATCH`` environment.
    ``backend`` picks the host execution engine — ``"sequential"``,
    ``"threads"``, ``"processes"`` (shared-memory worker processes) or
    ``"megabatch"`` (one stacked evaluation per kernel stage); ``None`` /
    ``"auto"`` follows ``REPRO_SIM_BACKEND``.  All backends produce
    bit-identical results; only host wall time differs.

    ``faults`` (a seed, :class:`~repro.gpusim.faults.FaultPlan` or
    injector) and/or ``retries`` (an int budget or
    :class:`~repro.core.resilience.RetryPolicy`) route execution through
    the resilience supervisor; the returned result carries the
    :class:`~repro.core.resilience.ResilienceReport` in ``resilience``.

    ``trace`` enables execution tracing: ``True`` collects spans in
    memory (``result.trace``), a path string additionally writes a
    Chrome-trace JSON there, and a live :class:`~repro.obs.tracer.Tracer`
    is used as-is.  Timestamps come from *simulated* kernel time, so the
    exported trace is byte-identical for identical run configurations.

    Run-lifecycle controls (see DESIGN.md Section 10):

    ``checkpoint_dir`` (a path or :class:`~repro.core.checkpoint.
    CheckpointConfig`) executes the grid in consecutive anchor-block
    chunks of ``checkpoint_every`` (default 8), persisting each chunk
    durably; ``resume`` (a store path, or ``True`` to reuse
    ``checkpoint_dir``) replays the completed chunks and runs only the
    rest — bit-identical outputs, counters and traces to the same
    checkpointed configuration run uninterrupted.  ``deadline`` (seconds
    or a :class:`~repro.core.lifecycle.Deadline`) and ``cancel`` (a
    :class:`~repro.core.lifecycle.CancelToken`) abort cooperatively with
    :class:`~repro.core.lifecycle.RunAbandoned`; with checkpointing
    active the exception carries the resumable store path.  ``watchdog``
    (seconds) kills and re-deals hung process-pool workers.

    ``cluster`` stripes the run across a simulated multi-node cluster
    (see :mod:`repro.core.cluster`): a :class:`~repro.core.cluster.
    ClusterSpec`, a topology name (``"ring"``/``"tree"``/``"star"``), a
    node count, or ``True``; ``None`` follows ``REPRO_SIM_CLUSTER`` /
    ``REPRO_SIM_NODES``; ``False`` disables even against the environment.
    ``nodes`` overrides the node count.  Outputs stay bit-identical to
    the single-node run; ``result.cluster`` carries the communication
    cost model.

    ``progress`` enables live telemetry: a callable receives throttled
    :class:`~repro.obs.flight.ProgressEvent` emissions (throughput, ETA,
    deadline budget, degradation state); a
    :class:`~repro.obs.flight.RunTelemetry` is used as-is; ``True``
    builds a silent instance (flight recording only).  Hooks are off the
    hot path — one ``is not None`` test per completed block.
    """
    n = np.asarray(points).shape[0]
    tracer, trace_path = resolve_trace(trace)
    telemetry = resolve_telemetry(progress)
    from .lifecycle import Deadline

    deadline = Deadline.coerce(deadline)
    cells_mode = resolve_cells(cells)
    cluster_spec = resolve_cluster(cluster, nodes=nodes)
    if cluster_spec is not None and problem.output.kind is UpdateKind.TOPK:
        if cluster is not None or nodes is not None:
            raise ValueError(
                "TOPK outputs need a merge network; not supported on a "
                "cluster (same reason as multi-GPU)"
            )
        cluster_spec = None  # environment-driven: fall back to one node
    if kernel is None:
        if auto_plan:
            kernel = plan_kernel(
                problem, n, spec=spec, calib=calib,
                points=points if (prune or cells_mode) else None,
            ).chosen.kernel
        else:
            kernel = make_kernel(problem, prune=prune)
    if cells_mode and not kernel.cells:
        ok, why = cells_eligible(problem)
        if not ok:
            if cells_mode == "force":
                raise ValueError(f"cells='force': {why}")
        else:
            engage = cells_mode == "force" or cells_worthwhile(
                cell_stats(points, kernel.block_size, problem,
                           full_rows=kernel.full_rows)
            )
            if engage:
                kernel = make_kernel(
                    problem,
                    kernel.input.name.lower(),
                    kernel.output.name.lower(),
                    block_size=kernel.block_size,
                    load_balanced=kernel.load_balanced,
                    prune=kernel.prune,
                    cells=True,
                )
    if telemetry is not None:
        weights = _block_pair_weights(n, kernel)
        telemetry.configure(blocks_total=len(weights), block_pairs=weights,
                            deadline=deadline)
    if resume is not None and resume is not False and checkpoint_dir is None:
        # resume=True means "reuse checkpoint_dir", so a bare path is the
        # store to both resume from and keep checkpointing into
        if resume is True:
            raise ValueError(
                "resume=True needs checkpoint_dir; or pass the store path "
                "as resume="
            )
        checkpoint_dir = resume
    if checkpoint_dir is not None:
        from .checkpoint import (
            CheckpointConfig,
            CheckpointStore,
            run_checkpointed,
        )
        from .resilience import RetryPolicy

        policy = (
            RetryPolicy(max_retries=retries)
            if isinstance(retries, int)
            else retries
        )
        cfg = CheckpointConfig.coerce(checkpoint_dir, every=checkpoint_every)
        resuming = resume is not None and resume is not False
        if (
            resuming
            and checkpoint_every is None
            and not isinstance(checkpoint_dir, CheckpointConfig)
        ):
            # chunk size is part of the store fingerprint (it shapes the
            # merged counters/trace); an unqualified resume inherits it
            # rather than re-chunking at the default
            store = CheckpointStore(cfg.dir)
            if store.exists():
                prior = store.load_manifest().get("fingerprint", {})
                if prior.get("every"):
                    cfg = CheckpointConfig(
                        cfg.dir, every=int(prior["every"]),
                        after_chunk=cfg.after_chunk,
                    )
        result, record, kfinal, rep = run_checkpointed(
            problem, points, kernel,
            config=cfg, spec=spec, workers=workers,
            batch_tiles=batch_tiles, backend=backend, faults=faults,
            retry=policy, tracer=tracer, deadline=deadline, cancel=cancel,
            watchdog=watchdog, resume=resuming, cluster=cluster_spec,
            telemetry=telemetry,
        )
        report = kfinal.simulate(n, spec=spec, calib=calib,
                                 prune=record.prune, cells=record.cells)
        report.counters = record.counters
        res = RunResult(
            result=result, report=report, record=record, kernel=kfinal,
            resilience=rep, cluster=getattr(rep, "cluster_timing", None),
        )
    elif cluster_spec is not None:
        from .checkpoint import _merge_records
        from .cluster import cluster_run
        from .resilience import RetryPolicy

        policy = (
            RetryPolicy(max_retries=retries)
            if isinstance(retries, int)
            else retries
        )
        cr = cluster_run(
            problem, points, cluster=cluster_spec, kernel=kernel,
            faults=faults, retry=policy, spec=spec, calib=calib,
            workers=workers, batch_tiles=batch_tiles, backend=backend,
            tracer=tracer, deadline=deadline, cancel=cancel,
            watchdog=watchdog, telemetry=telemetry,
        )
        record = _merge_records(cr.kernel, cr.records)
        report = cr.kernel.simulate(n, spec=spec, calib=calib,
                                    prune=record.prune, cells=record.cells)
        report.counters = record.counters
        res = RunResult(
            result=cr.result, report=report, record=record,
            kernel=cr.kernel, resilience=cr.report, cluster=cr.timing,
        )
    elif faults is not None or retries is not None:
        from .resilience import RetryPolicy, resilient_run

        policy = (
            RetryPolicy(max_retries=retries)
            if isinstance(retries, int)
            else retries
        )
        rr = resilient_run(
            problem, points, kernel=kernel, faults=faults, retry=policy,
            spec=spec, workers=workers, batch_tiles=batch_tiles,
            backend=backend, tracer=tracer, deadline=deadline,
            cancel=cancel, watchdog=watchdog, telemetry=telemetry,
        )
        report = rr.kernel.simulate(
            n, spec=spec, calib=calib,
            prune=getattr(rr.records[-1], "prune", None),
            cells=getattr(rr.records[-1], "cells", None),
        )
        report.counters = rr.records[-1].counters
        res = RunResult(
            result=rr.result, report=report, record=rr.records[-1],
            kernel=rr.kernel, resilience=rr.report,
        )
    else:
        dev = device if device is not None else Device(
            spec, tracer=tracer, deadline=deadline, cancel=cancel,
            watchdog=watchdog,
            progress=telemetry.on_block if telemetry is not None else None,
        )
        if device is not None:
            if tracer.enabled:
                dev.tracer = tracer
            if deadline is not None:
                dev.deadline = deadline
            if cancel is not None:
                dev.cancel = cancel
            if watchdog is not None:
                dev.watchdog = watchdog
            if telemetry is not None:
                dev.progress = telemetry.on_block
        result, record = kernel.execute(
            dev, points, workers=workers, batch_tiles=batch_tiles,
            backend=backend,
        )
        report = kernel.simulate(n, spec=spec, calib=calib,
                                 prune=record.prune, cells=record.cells)
        # splice the *measured* counters into the report so profiler tables
        # can be driven by the functional run when one happened
        report.counters = record.counters
        res = RunResult(result=result, report=report, record=record,
                        kernel=kernel)
    res.metrics = collect_metrics(res)
    res.manifest = build_manifest(
        problem=problem, kernel=res.kernel, spec=spec, calib=calib, n=n,
        workers=workers, batch_tiles=batch_tiles, prune=prune,
        cells=bool(res.kernel.cells),
        faults=faults, retries=retries, backend=resolve_backend(backend),
        cluster=cluster_spec,
    )
    if tracer.enabled:
        tracer.manifest = res.manifest
        res.trace = tracer
        if trace_path is not None:
            tracer.export_chrome(trace_path)
    if telemetry is not None:
        telemetry.finish()
    return res


def estimate(
    problem: TwoBodyProblem,
    n: int,
    kernel: Optional[ComposedKernel] = None,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> SimReport:
    """Analytical-only prediction at arbitrary scale (no execution)."""
    k = kernel if kernel is not None else make_kernel(problem)
    return k.simulate(n, spec=spec, calib=calib)
