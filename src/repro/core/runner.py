"""End-to-end execution helpers: data in, result + performance report out."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..gpusim.calibration import Calibration, DEFAULT_CALIBRATION
from ..gpusim.device import Device, LaunchRecord
from ..gpusim.profiler import SimReport
from ..gpusim.spec import DeviceSpec, TITAN_X
from .kernels import ComposedKernel, make_kernel
from .planner import plan_kernel
from .problem import TwoBodyProblem


@dataclass
class RunResult:
    """Functional result plus the simulated performance view."""

    result: Any
    report: SimReport
    record: LaunchRecord
    kernel: ComposedKernel

    @property
    def seconds(self) -> float:
        """Simulated GPU seconds (not host wall time)."""
        return self.report.seconds


def run(
    problem: TwoBodyProblem,
    points: np.ndarray,
    kernel: Optional[ComposedKernel] = None,
    device: Optional[Device] = None,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
    auto_plan: bool = False,
    workers: Optional[int] = None,
    batch_tiles: Optional[int] = None,
) -> RunResult:
    """Execute ``problem`` over ``points`` on the simulated device.

    With ``auto_plan`` the planner chooses the composition; otherwise a
    default Register-SHM kernel (or the one supplied) is used.  The
    functional result is exact; the report carries the simulated timing.

    ``workers`` / ``batch_tiles`` tune the simulator's parallel, batched
    execution engine (see :meth:`ComposedKernel.execute`); defaults follow
    the ``REPRO_SIM_WORKERS`` / ``REPRO_SIM_TILE_BATCH`` environment.
    """
    n = np.asarray(points).shape[0]
    if kernel is None:
        if auto_plan:
            kernel = plan_kernel(problem, n, spec=spec, calib=calib).chosen.kernel
        else:
            kernel = make_kernel(problem)
    dev = device if device is not None else Device(spec)
    result, record = kernel.execute(
        dev, points, workers=workers, batch_tiles=batch_tiles
    )
    report = kernel.simulate(n, spec=spec, calib=calib)
    # splice the *measured* counters into the report so profiler tables can
    # be driven by the functional run when one happened
    report.counters = record.counters
    return RunResult(result=result, report=report, record=record, kernel=kernel)


def estimate(
    problem: TwoBodyProblem,
    n: int,
    kernel: Optional[ComposedKernel] = None,
    spec: DeviceSpec = TITAN_X,
    calib: Calibration = DEFAULT_CALIBRATION,
) -> SimReport:
    """Analytical-only prediction at arbitrary scale (no execution)."""
    k = kernel if kernel is not None else make_kernel(problem)
    return k.simulate(n, spec=spec, calib=calib)
