"""Crash-surviving flight recorder and live run telemetry.

Two small, dependency-free pieces the execution layers hook into:

* :class:`FlightRecorder` — a bounded ring buffer of structured lifecycle
  events (block progress, retries, backoff, device failover, node
  eviction, topology degradation, checkpoint chunk commits).  The ring is
  plain data (a list of dicts), so the checkpoint layer persists its
  snapshot inside every chunk payload: after a SIGKILL or a
  ``RunAbandoned`` the last durable chunk still carries the final N
  events, and ``repro blackbox <dir>`` replays them post-mortem.  Unlike
  the tracer's deterministic streams, flight events carry *wall-clock*
  timestamps — they are forensic history, never compared byte-for-byte.

* :class:`RunTelemetry` — the ``progress=`` callback adapter.  It folds
  per-block completions, checkpoint-chunk commits and resilience events
  into throttled :class:`ProgressEvent` emissions carrying throughput, an
  ETA extrapolated from the completed pair mass, the deadline budget and
  the current degradation state.  All hooks are off the hot path: one
  ``progress is not None`` guard per block at the call sites, and the
  emit itself is rate-limited by wall interval.

Neither class imports from ``repro.core`` or ``repro.gpusim`` — the
engine pushes plain numbers in (block pair weights, chunk counts), so the
observability layer stays import-cycle-free.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

#: Default ring capacity.  Sized so the last durable checkpoint chunk of
#: any non-trivial run retains well over the 64-event post-mortem floor
#: the interrupted-run acceptance enforces, while keeping the per-chunk
#: payload overhead bounded (a few tens of KB at worst).
FLIGHT_CAPACITY = 256


class FlightRecorder:
    """Bounded, thread-safe ring of structured lifecycle events.

    Every event is a plain dict ``{"seq": int, "t": float, "kind": str,
    ...payload}`` — ``seq`` is a monotonically increasing sequence number
    that survives ring eviction (so a post-mortem can tell how many
    events were dropped), ``t`` is a wall-clock timestamp.
    """

    def __init__(
        self,
        capacity: int = FLIGHT_CAPACITY,
        *,
        clock: Callable[[], float] = time.time,
    ) -> None:
        self.capacity = int(capacity)
        self._clock = clock
        self._lock = threading.Lock()
        self._ring: deque = deque(maxlen=self.capacity)
        self._seq = 0

    def record(self, kind: str, **data: Any) -> None:
        """Append one event; evicts the oldest when the ring is full."""
        with self._lock:
            self._seq += 1
            event: Dict[str, Any] = {
                "seq": self._seq, "t": self._clock(), "kind": str(kind),
            }
            event.update(data)
            self._ring.append(event)

    def snapshot(self) -> List[Dict[str, Any]]:
        """The ring contents, oldest first — plain data, safe to persist."""
        with self._lock:
            return [dict(ev) for ev in self._ring]

    def restore(self, events: Optional[Iterable[Dict[str, Any]]]) -> None:
        """Reload a persisted snapshot (resume path): the ring continues
        numbering after the highest restored ``seq``."""
        if not events:
            return
        with self._lock:
            self._ring.clear()
            for ev in events:
                self._ring.append(dict(ev))
                self._seq = max(self._seq, int(ev.get("seq", 0)))

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)


@dataclass
class ProgressEvent:
    """One live-telemetry emission (see :class:`RunTelemetry`)."""

    #: coarse run phase: "run", "chunk", "event", "done"
    phase: str
    wall_seconds: float
    blocks_done: int = 0
    blocks_total: Optional[int] = None
    pairs_done: int = 0
    pairs_total: Optional[int] = None
    chunks_done: int = 0
    chunks_total: Optional[int] = None
    #: measured wall throughput, pair evaluations per second
    pairs_per_second: float = 0.0
    #: wall seconds to completion extrapolated from the pair mass done
    eta_seconds: Optional[float] = None
    #: remaining deadline budget (None when no deadline was declared)
    deadline_remaining: Optional[float] = None
    #: does the ETA fit the remaining deadline budget?
    deadline_fits: Optional[bool] = None
    #: degradation state: resilience/cluster event counts + live details
    #: (kernel downgrades, lost nodes, current merge topology)
    state: Dict[str, Any] = field(default_factory=dict)

    @property
    def fraction_done(self) -> Optional[float]:
        if self.pairs_total:
            return min(1.0, self.pairs_done / self.pairs_total)
        if self.blocks_total:
            return min(1.0, self.blocks_done / self.blocks_total)
        return None


class RunTelemetry:
    """Adapter between engine hooks and a user ``progress=`` callback.

    The runner constructs one per run (or coerces a bare callable into
    one), configures the totals it knows (block pair weights, chunk
    count, deadline), and threads the bound methods through the engine:

    * :meth:`on_block` — called once per completed block by every
      backend (serial loop, thread workers, the process pool's
      parent-side install loop);
    * :meth:`on_chunk` — called by the checkpoint layer after each
      durable chunk commit;
    * :meth:`on_event` — called by the resilience report for every
      recovery/lifecycle action, tracking degradation state.

    Emissions are throttled to one per ``interval`` wall seconds except
    for forced emissions (chunk commits, degradation events, run end).
    """

    def __init__(
        self,
        callback: Optional[Callable[[ProgressEvent], None]] = None,
        *,
        flight: Optional[FlightRecorder] = None,
        interval: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.callback = callback
        self.flight = flight
        self.interval = float(interval)
        self._clock = clock
        self._lock = threading.Lock()
        self._t0 = clock()
        self._last_emit = float("-inf")
        self.blocks_done = 0
        self.blocks_total: Optional[int] = None
        self.pairs_done = 0
        self.pairs_total: Optional[int] = None
        self.chunks_done = 0
        self.chunks_total: Optional[int] = None
        self._block_pairs: Dict[int, int] = {}
        self._blocks_seen: set = set()
        self._deadline: Any = None
        self._state: Dict[str, Any] = {}

    # -- configuration (runner-side) ----------------------------------------
    def configure(
        self,
        *,
        blocks_total: Optional[int] = None,
        block_pairs: Optional[Dict[int, int]] = None,
        chunks_total: Optional[int] = None,
        deadline: Any = None,
    ) -> None:
        with self._lock:
            if blocks_total is not None:
                self.blocks_total = int(blocks_total)
            if block_pairs is not None:
                self._block_pairs = {int(b): int(p) for b, p in block_pairs.items()}
                self.pairs_total = sum(self._block_pairs.values())
            if chunks_total is not None:
                self.chunks_total = int(chunks_total)
            if deadline is not None:
                self._deadline = deadline

    def advance(
        self,
        blocks: Optional[Iterable[int]] = None,
        chunks: int = 0,
    ) -> None:
        """Credit already-completed work without firing flight events —
        the checkpoint replay path uses this for restored chunks, so the
        ETA reflects the true remaining work after a resume."""
        with self._lock:
            for b in blocks or ():
                b = int(b)
                if b not in self._blocks_seen:
                    self._blocks_seen.add(b)
                    self.blocks_done += 1
                    self.pairs_done += self._block_pairs.get(b, 0)
            self.chunks_done += int(chunks)

    # -- engine hooks --------------------------------------------------------
    def on_block(self, device: int, block: int) -> None:
        """Per-block completion hook (any backend, any thread).

        Pair mass is credited once per anchor block id — retries and
        auxiliary launches (the reduce/merge pass re-numbers from 0)
        re-dispatch block ids, which must not inflate the ETA.
        """
        with self._lock:
            b = int(block)
            if b not in self._blocks_seen:
                self._blocks_seen.add(b)
                self.blocks_done += 1
                self.pairs_done += self._block_pairs.get(b, 0)
            done, total = self.blocks_done, self.blocks_total
        if self.flight is not None:
            self.flight.record(
                "block", block=int(block), device=int(device),
                done=done, total=total,
            )
        self._emit("run")

    def on_chunk(self, index: int, total: Optional[int] = None) -> None:
        """Checkpoint chunk-commit hook — always emits (cursor moved)."""
        with self._lock:
            self.chunks_done += 1
            if total is not None:
                self.chunks_total = int(total)
        self._emit("chunk", force=True)

    def on_event(self, action: str, device: Any = None, detail: str = "",
                 data: Optional[Dict[str, Any]] = None) -> None:
        """Resilience/lifecycle event hook: track degradation state."""
        action = str(action)
        with self._lock:
            counts = self._state.setdefault("events", {})
            counts[action] = counts.get(action, 0) + 1
            if action == "degrade-input" and detail:
                self._state["kernel"] = detail.split("->")[-1].strip()
            elif action == "node-lost":
                self._state.setdefault("dead_nodes", []).append(device)
            elif action == "degrade-topology" and detail:
                self._state["topology"] = detail.split("->")[-1].strip()
            elif action == "failover":
                self._state["device"] = device
        # degradations are rare and decision-relevant: always emit
        self._emit("event", force=True)

    def finish(self) -> None:
        """Final emission when the run returns."""
        self._emit("done", force=True)

    # -- emission ------------------------------------------------------------
    def _emit(self, phase: str, force: bool = False) -> None:
        if self.callback is None:
            return
        now = self._clock()
        with self._lock:
            if not force and now - self._last_emit < self.interval:
                return
            self._last_emit = now
            event = self._build(phase, now)
        self.callback(event)

    def _build(self, phase: str, now: float) -> ProgressEvent:
        elapsed = max(now - self._t0, 1e-9)
        rate = self.pairs_done / elapsed
        eta = None
        if self.pairs_total and 0 < self.pairs_done < self.pairs_total:
            eta = (self.pairs_total - self.pairs_done) / max(rate, 1e-9)
        elif self.pairs_total and self.pairs_done >= self.pairs_total:
            eta = 0.0
        remaining = fits = None
        if self._deadline is not None:
            rem = getattr(self._deadline, "remaining", None)
            remaining = rem() if callable(rem) else rem
            if remaining is not None and eta is not None:
                fits = eta <= remaining
        return ProgressEvent(
            phase=phase,
            wall_seconds=elapsed,
            blocks_done=self.blocks_done,
            blocks_total=self.blocks_total,
            pairs_done=self.pairs_done,
            pairs_total=self.pairs_total,
            chunks_done=self.chunks_done,
            chunks_total=self.chunks_total,
            pairs_per_second=rate,
            eta_seconds=eta,
            deadline_remaining=remaining,
            deadline_fits=fits,
            state={k: (dict(v) if isinstance(v, dict) else
                       list(v) if isinstance(v, list) else v)
                   for k, v in self._state.items()},
        )


def resolve_telemetry(progress: Any) -> Optional[RunTelemetry]:
    """Coerce a ``run(progress=...)`` argument.

    ``None``/``False`` disables telemetry; a :class:`RunTelemetry` is used
    as-is; a bare callable becomes the emission callback of a fresh
    instance; ``True`` builds a silent instance (flight/state tracking
    only — useful for tests and the checkpoint layer).
    """
    if progress is None or progress is False:
        return None
    if isinstance(progress, RunTelemetry):
        return progress
    if progress is True:
        return RunTelemetry()
    if callable(progress):
        return RunTelemetry(progress)
    raise TypeError(
        f"progress= expects a callable, RunTelemetry or bool, got {progress!r}"
    )
