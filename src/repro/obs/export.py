"""Trace exporters: Chrome Trace Event JSON and JSONL event logs.

The Chrome format (one ``{"traceEvents": [...]}`` object) loads directly
in ``chrome://tracing`` and https://ui.perfetto.dev.  Spans become complete
events (``ph: "X"``) with microsecond timestamps taken from the tracer's
*simulated* layout — never the wall clock — so the exported bytes are a
pure function of the recorded tree: same seed and run configuration, same
file, byte for byte.  Serialization pins the remaining degrees of freedom
(``sort_keys``, fixed separators, fixed float rounding).

Timeline lanes: ``pid`` is the device ordinal + 1 (Perfetto hides pid 0),
``tid`` 0 is the engine lane and ``tid`` ``w + 1`` is worker ``w``;
metadata events name both so the UI reads "device 0 / worker 3".
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

import numpy as np

from .tracer import Span, Tracer

#: Chrome trace format version stamp carried in ``otherData``.
TRACE_SCHEMA = "repro-trace-v1"


def _jsonable(value: Any) -> Any:
    """Coerce numpy scalars/arrays (and nested containers) to JSON types."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    return value


def _events(
    tracer: Tracer, *, include_lifecycle: bool = False
) -> List[Dict[str, Any]]:
    tracer.layout()
    events: List[Dict[str, Any]] = []
    lanes: Dict[tuple, str] = {}

    def visit(span: Span, lane: int, device: int) -> None:
        if span.cat == "lifecycle" and not include_lifecycle:
            # Run-lifecycle instants (checkpoint writes/loads, deadline
            # breaches, watchdog kills) record *wall history*: a run that
            # was interrupted and resumed legitimately has different
            # lifecycle traffic than an uninterrupted one while computing
            # bit-identical results.  They are zero-duration, so dropping
            # them here keeps the exported timeline bytes a pure function
            # of the computation — opt in to see them.
            return
        lane = span.lane + 1 if span.lane is not None else lane
        device = span.device + 1 if span.device is not None else device
        lanes.setdefault(
            (device, lane),
            "engine" if lane == 0 else f"worker-{lane - 1}",
        )
        ev: Dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "ts": round(span.ts, 4),
            "pid": device,
            "tid": lane,
        }
        if span.args:
            ev["args"] = _jsonable(span.args)
        if span.kind == "instant":
            ev["ph"] = "i"
            ev["s"] = "t"  # thread-scoped instant
        else:
            ev["ph"] = "X"
            ev["dur"] = round(span.dur, 4)
        events.append(ev)
        for child in sorted(span.children, key=Span.sort_key):
            visit(child, lane, device)

    for root in sorted(tracer.roots, key=Span.sort_key):
        visit(root, 0, 1)

    meta: List[Dict[str, Any]] = []
    for (pid, tid), label in sorted(lanes.items()):
        if tid == 0:
            meta.append({
                "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
                "args": {"name": f"device {pid - 1}"},
            })
        meta.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": label},
        })
    return meta + events


def chrome_trace(
    tracer: Tracer, *, include_lifecycle: bool = False
) -> Dict[str, Any]:
    """The Chrome Trace Event object for a recorded tracer.  The run
    manifest rides along under ``otherData.manifest`` (it keeps its own
    schema stamp), so one file carries both the timeline and the exact
    configuration that produced it.  Lifecycle instants are excluded by
    default (see :func:`_events`)."""
    other: Dict[str, Any] = {"schema": TRACE_SCHEMA}
    if tracer.manifest:
        other["manifest"] = tracer.manifest
    return {
        "traceEvents": _events(tracer, include_lifecycle=include_lifecycle),
        "displayTimeUnit": "ms",
        "otherData": _jsonable(other),
    }


def chrome_json(tracer: Tracer, *, include_lifecycle: bool = False) -> str:
    """Canonical serialization: deterministic bytes for a given tree."""
    return json.dumps(
        chrome_trace(tracer, include_lifecycle=include_lifecycle),
        sort_keys=True,
        separators=(",", ":"),
    ) + "\n"


def write_chrome_trace(
    tracer: Tracer, path, *, include_lifecycle: bool = False
) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(chrome_json(tracer, include_lifecycle=include_lifecycle))


def jsonl_events(tracer: Tracer) -> str:
    """One JSON object per line, depth-first in canonical order — the
    grep-friendly flat view of the same tree."""
    tracer.layout()
    lines = []
    for span in tracer.all_spans():
        lines.append(json.dumps(
            {
                "name": span.name,
                "cat": span.cat,
                "kind": span.kind,
                "ts": round(span.ts, 4),
                "dur": round(span.dur, 4),
                "args": _jsonable(span.args),
            },
            sort_keys=True,
            separators=(",", ":"),
        ))
    return "\n".join(lines) + "\n" if lines else ""


def write_jsonl(tracer: Tracer, path) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(jsonl_events(tracer))
