"""Observability subsystem: tracing, metrics, manifests, exporters.

The engine's execution layers (device launches, the block-parallel
engine, the fault injector, the resilience supervisor, the tile pruner)
all carry hooks into this package:

* :class:`~repro.obs.tracer.Tracer` — deterministic nested spans and
  typed instant events; exported as Chrome-trace JSON (Perfetto-loadable)
  or JSONL, timestamped from *simulated* kernel time so traces are
  byte-identical across reruns and worker counts;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges and
  histograms aggregating access ledgers, prune stats, occupancy and
  retry ladders into one queryable view that can also rebuild the
  profiler's paper tables;
* :func:`~repro.obs.manifest.build_manifest` — the per-run attribution
  record (seed, kernel config, device spec, calibration, git describe);
* :func:`~repro.obs.profile.profile_run` — folds the span tree plus the
  access/prune/cluster counters into a hierarchical simulated-vs-wall
  attribution report with a per-run roofline placement;
* :class:`~repro.obs.flight.FlightRecorder` /
  :class:`~repro.obs.flight.RunTelemetry` — the crash-surviving ring of
  lifecycle events (persisted through checkpoints, replayed by
  ``repro blackbox``) and the live ``progress=`` callback adapter.

The default everywhere is :data:`~repro.obs.tracer.NULL_TRACER`, whose
hooks are allocation-free no-ops — tracing costs nothing until asked for
via ``run(trace=...)`` or the CLI's ``--trace``.
"""

from .export import (
    TRACE_SCHEMA,
    chrome_json,
    chrome_trace,
    jsonl_events,
    write_chrome_trace,
    write_jsonl,
)
from .flight import (
    FLIGHT_CAPACITY,
    FlightRecorder,
    ProgressEvent,
    RunTelemetry,
    resolve_telemetry,
)
from .manifest import MANIFEST_SCHEMA, build_manifest, git_describe
from .metrics import MetricsRegistry, collect_metrics
from .profile import (
    CHECKPOINT_BANDWIDTH,
    PROFILE_SCHEMA,
    ProfileReport,
    layer_for_span,
    measured_costs,
    profile_run,
)
from .tracer import (
    BLOCK_OVERHEAD_US,
    LAUNCH_OVERHEAD_US,
    MERGE_OVERHEAD_US,
    NULL_TRACER,
    NullTracer,
    PHASE_BODY,
    PHASE_MERGE,
    PHASE_RECOVERY,
    PHASE_WORKERS,
    Span,
    Tracer,
    US_PER_PAIR,
    WORKER_OVERHEAD_US,
    resolve_trace,
)

__all__ = [
    # tracer
    "Tracer", "NullTracer", "NULL_TRACER", "Span", "resolve_trace",
    "US_PER_PAIR", "LAUNCH_OVERHEAD_US", "WORKER_OVERHEAD_US",
    "BLOCK_OVERHEAD_US", "MERGE_OVERHEAD_US",
    "PHASE_BODY", "PHASE_WORKERS", "PHASE_RECOVERY", "PHASE_MERGE",
    # metrics
    "MetricsRegistry", "collect_metrics",
    # manifest
    "build_manifest", "git_describe", "MANIFEST_SCHEMA",
    # exporters
    "chrome_trace", "chrome_json", "write_chrome_trace",
    "jsonl_events", "write_jsonl", "TRACE_SCHEMA",
    # flight recorder / live telemetry
    "FlightRecorder", "RunTelemetry", "ProgressEvent",
    "resolve_telemetry", "FLIGHT_CAPACITY",
    # profiler
    "ProfileReport", "profile_run", "measured_costs", "layer_for_span",
    "PROFILE_SCHEMA", "CHECKPOINT_BANDWIDTH",
]
